module tilingsched

go 1.24
