#!/usr/bin/env bash
# Run the repository benchmarks and record a BENCH_<date>.json summary.
# Extra arguments are forwarded to cmd/bench, e.g.:
#
#   scripts/bench.sh -bench 'SlotAssignment|SimulatorSlot|DSATUR' -count 5
set -euo pipefail
cd "$(dirname "$0")/.."
go run ./cmd/bench "$@"
