#!/usr/bin/env bash
# Run the repository benchmarks and record a BENCH_<date>.json summary.
# Extra arguments are forwarded to cmd/bench, e.g.:
#
#   scripts/bench.sh -bench 'SlotAssignment|SimulatorSlot|DSATUR' -count 5
#
# The session-persistence overhead baseline (WAL append + the durable
# mutate path vs the plain one, fsync off) is pinned by:
#
#   scripts/bench.sh -bench 'DynamicMutateHTTP|WALAppend' -pkg ./... -out "BENCH_$(date +%F)_wal.json"
set -euo pipefail
cd "$(dirname "$0")/.."
go run ./cmd/bench "$@"
