// Benchmarks regenerating every figure and table of the reproduction (see
// DESIGN.md §4 for the experiment index) plus micro-benchmarks of the
// hot paths. Run with:
//
//	go test -bench=. -benchmem
package tilingsched_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"tilingsched/internal/boundary"
	"tilingsched/internal/core"
	"tilingsched/internal/experiments"
	"tilingsched/internal/graph"
	"tilingsched/internal/intmat"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/service"
	"tilingsched/internal/tiling"
	"tilingsched/internal/wsn"
)

func requirePass(b *testing.B, r *experiments.Result, err error) {
	b.Helper()
	if err != nil {
		b.Fatalf("experiment error: %v", err)
	}
	if !r.Passed() {
		b.Fatalf("experiment failed:\n%s", r.Render())
	}
}

// --- Paper figures -------------------------------------------------------

func BenchmarkFigure1Lattices(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure1Lattices()
		requirePass(b, r, err)
	}
}

func BenchmarkFigure2Neighborhoods(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure2Neighborhoods()
		requirePass(b, r, err)
	}
}

func BenchmarkFigure3Schedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure3Schedule()
		requirePass(b, r, err)
	}
}

func BenchmarkFigure4Voronoi(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure4Voronoi()
		requirePass(b, r, err)
	}
}

func BenchmarkFigure5NonRespectable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Figure5NonRespectable()
		requirePass(b, r, err)
	}
}

// --- Theorems ------------------------------------------------------------

func BenchmarkTheorem1Verify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Theorem1Verification()
		requirePass(b, r, err)
	}
}

func BenchmarkTheorem2Verify(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.Theorem2Verification()
		requirePass(b, r, err)
	}
}

// --- Derived evaluation tables E1–E6 --------------------------------------

func BenchmarkTableSlotCounts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableSlotCounts(1)
		requirePass(b, r, err)
	}
}

func BenchmarkTableSimulator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableSimulator(1)
		requirePass(b, r, err)
	}
}

func BenchmarkTableScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableScaling()
		requirePass(b, r, err)
	}
}

func BenchmarkTableExactness(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableExactness()
		requirePass(b, r, err)
	}
}

func BenchmarkTableRestriction(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableRestriction()
		requirePass(b, r, err)
	}
}

func BenchmarkTableMobile(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableMobile(3)
		requirePass(b, r, err)
	}
}

func BenchmarkTableDimensions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableDimensions()
		requirePass(b, r, err)
	}
}

func BenchmarkTableEnergy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableEnergy(1)
		requirePass(b, r, err)
	}
}

func BenchmarkTableClockSkew(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableClockSkew(1)
		requirePass(b, r, err)
	}
}

func BenchmarkTableConvergecast(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := experiments.TableConvergecast(1)
		requirePass(b, r, err)
	}
}

// --- Micro-benchmarks of the hot paths ------------------------------------

// BenchmarkSlotAssignment measures the per-sensor cost of the Theorem 1
// schedule (one HNF coset reduction), the paper's O(1) claim.
func BenchmarkSlotAssignment(b *testing.B) {
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		b.Fatal("no tiling")
	}
	s := schedule.FromLatticeTiling(lt)
	pts := lattice.CenteredWindow(2, 20).Points()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pts[i%len(pts)]
		if _, err := s.SlotOf(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSlotAssignmentTable is the ablation partner of
// BenchmarkSlotAssignment: the same lookup through a precomputed table
// (MapSchedule) instead of the algebraic coset reduction. The algebraic
// form needs no per-deployment precomputation and covers the infinite
// lattice; the table is bounded to its window.
func BenchmarkSlotAssignmentTable(b *testing.B) {
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		b.Fatal("no tiling")
	}
	s := schedule.FromLatticeTiling(lt)
	w := lattice.CenteredWindow(2, 20)
	ms, err := schedule.Restrict(s, w)
	if err != nil {
		b.Fatal(err)
	}
	pts := w.Points()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pts[i%len(pts)]
		if _, err := ms.SlotOf(p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPerClassCompile measures the Figure 5 constraint compiler on
// one S/Z torus tiling.
func BenchmarkPerClassCompile(b *testing.B) {
	s := prototile.MustTetromino("S")
	z := prototile.MustTetromino("Z")
	sols, err := tiling.SolveTorus([]int{4, 4}, []*prototile.Tile{s, z},
		tiling.SolveOptions{MaxSolutions: 1, Accept: func(c []int) bool { return c[1] > 0 }})
	if err != nil || len(sols) == 0 {
		b.Fatalf("SolveTorus: %v", err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pc, err := schedule.CompilePatternConstraints(sols[0])
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := pc.MinSlots(16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFindPeriodicTiling measures the generalized (coset) tiling
// search on the gap cluster that lattice search cannot handle.
func BenchmarkFindPeriodicTiling(b *testing.B) {
	gap := prototile.MustNew("gap", lattice.Pt(0, 0), lattice.Pt(2, 0))
	for i := 0; i < b.N; i++ {
		if _, ok := tiling.FindPeriodicTiling(gap, 2); !ok {
			b.Fatal("no periodic tiling")
		}
	}
}

// BenchmarkConvergecast measures the multi-hop harness end to end.
func BenchmarkConvergecast(b *testing.B) {
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		b.Fatal("no tiling")
	}
	s := schedule.FromLatticeTiling(lt)
	for i := 0; i < b.N; i++ {
		m, err := wsn.RunConvergecast(wsn.ConvergecastConfig{
			Window:     lattice.CenteredWindow(2, 4),
			Deployment: s.Deployment(),
			Protocol:   wsn.NewScheduleMAC("tiling", s),
			Sink:       lattice.Pt(0, 0),
			SourceRate: 0.002,
			Slots:      500,
			Seed:       1,
		})
		if err != nil || m.FailedForwards != 0 {
			b.Fatalf("convergecast: %v (failed %d)", err, m.FailedForwards)
		}
	}
}

// BenchmarkHNFReduce measures one coset reduction.
func BenchmarkHNFReduce(b *testing.B) {
	h := intmat.MustFromRows([][]int64{{1, 2}, {0, 5}})
	hh, _ := intmat.HNF(h)
	v := []int64{123, -456}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := intmat.Reduce(hh, v); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFindLatticeTiling measures the full exactness search over
// sublattices for the 9-point Moore neighborhood.
func BenchmarkFindLatticeTiling(b *testing.B) {
	ti := prototile.ChebyshevBall(2, 1)
	for i := 0; i < b.N; i++ {
		if _, ok := tiling.FindLatticeTiling(ti); !ok {
			b.Fatal("no tiling")
		}
	}
}

// BenchmarkFactorize compares the naive and accelerated Beauquier–Nivat
// searches on a boundary word of moderate length.
func BenchmarkFactorizeNaive(b *testing.B) {
	word, err := boundary.ContourWord(boundary.Staircase(8))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := boundary.FactorizeNaive(word); !ok {
			b.Fatal("staircase should factorize")
		}
	}
}

func BenchmarkFactorizeFast(b *testing.B) {
	word, err := boundary.ContourWord(boundary.Staircase(8))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := boundary.FactorizeFast(word); !ok {
			b.Fatal("staircase should factorize")
		}
	}
}

// BenchmarkDSATUR measures the main coloring baseline on a 9×9 window.
func BenchmarkDSATUR(b *testing.B) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	g, _, err := graph.ConflictGraph(dep, lattice.CenteredWindow(2, 4))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		graph.DSATUR(g)
	}
}

// BenchmarkConflictGraphLarge measures conflict-graph construction as the
// window grows to 100k vertices — the scale the old n×n bool matrix made
// unreachable (100489² bools ≈ 10.1 GB before any edge existed). CSR
// adjacency keeps B/op at O(n + m); the crossover keeps small windows on
// the bitset path.
func BenchmarkConflictGraphLarge(b *testing.B) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	for _, r := range []int{49, 100, 158} { // n = 9801, 40401, 100489
		w := lattice.CenteredWindow(2, r)
		b.Run(fmt.Sprintf("n=%d", w.Size()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, _, err := graph.ConflictGraph(dep, w)
				if err != nil {
					b.Fatal(err)
				}
				if g.Edges() == 0 {
					b.Fatal("no edges")
				}
			}
		})
	}
}

// BenchmarkConflictGraphParallel measures the sharded explicit CSR build
// (DESIGN.md §8): shards=1 is the serial baseline, shards=4 the parallel
// path (its speedup is real only on multi-core hosts — the recorded
// single-core numbers measure sharding overhead, which must stay small).
// n=1002001 is the million-sensor window of the ROADMAP scaling goal;
// B/op records the O(n + m) cost of materializing every edge, the
// baseline the periodic mode is measured against.
func BenchmarkConflictGraphParallel(b *testing.B) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	for _, tc := range []struct{ r, shards int }{
		{158, 1}, // n = 100489
		{158, 4},
		{500, 1}, // n = 1002001
		{500, 4},
	} {
		w := lattice.CenteredWindow(2, tc.r)
		b.Run(fmt.Sprintf("n=%d/shards=%d", w.Size(), tc.shards), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, _, err := graph.ConflictGraphShards(dep, w, tc.shards)
				if err != nil {
					b.Fatal(err)
				}
				if g.Edges() == 0 {
					b.Fatal("no edges")
				}
			}
		})
	}
}

// BenchmarkConflictGraphPeriodic measures the implicit periodic mode at
// the million-sensor scale (DESIGN.md §8): build extracts the stencil —
// O(det(H)·box·|N|) work and memory independent of the window, against
// the ~10⁸ B/op of the explicit CSR build at the same n — and the
// dsatur/verify cases color and verify the million-vertex graph through
// the implicit adjacency with no edge ever materialized.
func BenchmarkConflictGraphPeriodic(b *testing.B) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	for _, r := range []int{158, 500} { // n = 100489, 1002001
		w := lattice.CenteredWindow(2, r)
		b.Run(fmt.Sprintf("build/n=%d", w.Size()), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				g, err := graph.HomogeneousConflictGraph(dep, w)
				if err != nil {
					b.Fatal(err)
				}
				if g.N() != w.Size() {
					b.Fatal("bad vertex count")
				}
			}
		})
	}
	w := lattice.CenteredWindow(2, 500)
	g, err := graph.HomogeneousConflictGraph(dep, w)
	if err != nil {
		b.Fatal(err)
	}
	b.Run(fmt.Sprintf("dsatur/n=%d", w.Size()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			colors, k := graph.DSATUR(g)
			if k < 5 || len(colors) != g.N() {
				b.Fatalf("DSATUR colors = %d", k)
			}
		}
	})
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		b.Fatal("no tiling")
	}
	s := schedule.FromLatticeTiling(lt)
	b.Run(fmt.Sprintf("verify/n=%d", w.Size()), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := graph.VerifySchedule(g, w, s); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkSimulatorSlot measures simulator throughput: cost per simulated
// slot on an 81-sensor network under the tiling schedule.
func BenchmarkSimulatorSlot(b *testing.B) {
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		b.Fatal("no tiling")
	}
	s := schedule.FromLatticeTiling(lt)
	dep := s.Deployment()
	w := lattice.CenteredWindow(2, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := wsn.Run(wsn.Config{
			Window: w, Deployment: dep,
			Protocol: wsn.NewScheduleMAC("tiling", s),
			Traffic:  wsn.Saturated{}, Slots: 100, Seed: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Service subsystem (internal/service, cmd/latticed) -------------------

func servicePlan(b *testing.B) *core.Plan {
	b.Helper()
	plan, err := core.NewPlan(lattice.Square(), prototile.Cross(2, 1))
	if err != nil {
		b.Fatal(err)
	}
	return plan
}

// BenchmarkServiceBatchSlots measures the steady-state batch query path:
// one op is a 4096-point QuerySlots batch into a reused destination, so
// per-lookup cost is ns/op ÷ 4096 and the ≥1M lookups/sec target means
// staying under ~4.1 ms/op. The path must report 0 allocs/op.
func BenchmarkServiceBatchSlots(b *testing.B) {
	plan := servicePlan(b)
	pts := lattice.CenteredWindow(2, 31).Points() // 63×63 = 3969 ≈ 4k points
	dst := make([]int32, 0, len(pts))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = service.QuerySlots(plan, pts, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceBatchSlotsInstrumented is BenchmarkServiceBatchSlots
// plus the full per-batch telemetry record a served request pays
// (request counter, latency + engine-phase histograms, batch-size
// distribution, plan-traffic sketch). The delta against the
// uninstrumented twin is the instrumentation tax, which DESIGN.md §11
// pins within noise of the engine contract — recording is a handful of
// atomic adds per batch, amortized over ~4k points.
func BenchmarkServiceBatchSlotsInstrumented(b *testing.B) {
	plan := servicePlan(b)
	met := service.NewServer(service.NewRegistry(2), service.ServerOptions{}).Metrics()
	sig := plan.Signature()
	pts := lattice.CenteredWindow(2, 31).Points()
	dst := make([]int32, 0, len(pts))
	met.ObserveBatch(sig, len(pts), time.Microsecond) // admit the signature to the sketch
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		start := time.Now()
		var err error
		dst, err = service.QuerySlots(plan, pts, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
		met.ObserveBatch(sig, len(dst), time.Since(start))
	}
}

// BenchmarkServiceBatchMayBroadcast is the may-broadcast twin of
// BenchmarkServiceBatchSlots (same batch size, same contract).
func BenchmarkServiceBatchMayBroadcast(b *testing.B) {
	plan := servicePlan(b)
	pts := lattice.CenteredWindow(2, 31).Points()
	dst := make([]bool, 0, len(pts))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = service.QueryMayBroadcast(plan, pts, int64(i), dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceWindowSlots measures the window-shorthand path: the
// same 63×63 region queried as a rectangle, without materialized points.
func BenchmarkServiceWindowSlots(b *testing.B) {
	plan := servicePlan(b)
	w := lattice.CenteredWindow(2, 31)
	dst := make([]int32, 0, w.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		dst, err = service.QueryWindowSlots(plan, w, dst[:0])
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceRegistryHit measures a warm plan-registry lookup — the
// per-request overhead a long-running latticed pays before querying.
func BenchmarkServiceRegistryHit(b *testing.B) {
	reg := service.NewRegistry(8)
	spec := service.PlanSpec{Tile: service.TileSpec{Name: "cross:2:1"}}
	if _, err := reg.GetSpec(spec); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := reg.GetSpec(spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceHTTPBatch measures cmd/latticed's wire layer end to
// end: a 1024-point slots:batch request against an in-process server,
// including JSON on both sides.
func BenchmarkServiceHTTPBatch(b *testing.B) {
	srv := httptest.NewServer(service.NewServer(service.NewRegistry(8), service.ServerOptions{}))
	defer srv.Close()
	rng := rand.New(rand.NewSource(1))
	points := make([][]int, 1024)
	for i := range points {
		points[i] = []int{rng.Intn(2001) - 1000, rng.Intn(2001) - 1000}
	}
	body, err := json.Marshal(service.BatchRequest{
		Plan:   service.PlanSpec{Tile: service.TileSpec{Name: "cross:2:1"}},
		Points: points,
	})
	if err != nil {
		b.Fatal(err)
	}
	client := srv.Client()
	url := srv.URL + "/v1/slots:batch"
	var resp service.SlotsResponse
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Slots = resp.Slots[:0]
		if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
			b.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK || len(resp.Slots) != len(points) {
			b.Fatalf("status %d, %d slots", r.StatusCode, len(resp.Slots))
		}
	}
}

// BenchmarkDynamicMutateHTTP measures the dynamic-deployment mutation
// path end to end: a leave + rejoin batch against an in-process
// latticed-equivalent server — session lookup, overlay patch, repair
// coloring, delta encoding, and JSON on both sides.
func BenchmarkDynamicMutateHTTP(b *testing.B) {
	srv := httptest.NewServer(service.NewServer(service.NewRegistry(8), service.ServerOptions{}))
	defer srv.Close()
	body, err := json.Marshal(service.MutateRequest{
		Plan:   service.PlanSpec{Tile: service.TileSpec{Name: "cross:2:1"}},
		Window: service.WindowSpec{Lo: []int{0, 0}, Hi: []int{99, 99}},
		Events: []service.EventSpec{
			{Op: "leave", P: []int{50, 50}},
			{Op: "join", P: []int{50, 50}},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	client := srv.Client()
	url := srv.URL + "/v1/plan:mutate"
	var resp service.MutateResponse
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Changed = resp.Changed[:0]
		if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
			b.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK || resp.Disruption.Events != 2 {
			b.Fatalf("status %d, disruption %+v", r.StatusCode, resp.Disruption)
		}
	}
}

// BenchmarkDynamicMutateHTTPPersist is BenchmarkDynamicMutateHTTP with
// durable sessions enabled (WAL append per batch, fsync off — the
// -data default): the delta over the plain benchmark is the full
// persistence overhead on the mutation hot path, pinned within 20% of
// the PR 5 baseline by BENCH_*_wal.json.
func BenchmarkDynamicMutateHTTPPersist(b *testing.B) {
	svc := service.NewServer(service.NewRegistry(8), service.ServerOptions{})
	if err := svc.EnablePersistence(service.PersistOptions{Dir: b.TempDir()}); err != nil {
		b.Fatal(err)
	}
	srv := httptest.NewServer(svc)
	defer srv.Close()
	body, err := json.Marshal(service.MutateRequest{
		Plan:   service.PlanSpec{Tile: service.TileSpec{Name: "cross:2:1"}},
		Window: service.WindowSpec{Lo: []int{0, 0}, Hi: []int{99, 99}},
		Events: []service.EventSpec{
			{Op: "leave", P: []int{50, 50}},
			{Op: "join", P: []int{50, 50}},
		},
	})
	if err != nil {
		b.Fatal(err)
	}
	client := srv.Client()
	url := srv.URL + "/v1/plan:mutate"
	var resp service.MutateResponse
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Changed = resp.Changed[:0]
		if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
			b.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != http.StatusOK || resp.Disruption.Events != 2 {
			b.Fatalf("status %d, disruption %+v", r.StatusCode, resp.Disruption)
		}
	}
}

// BenchmarkSolveTorus measures the exact-cover tiler on the 4×4 torus with
// S and Z tetrominoes (64 solutions).
func BenchmarkSolveTorus(b *testing.B) {
	s := prototile.MustTetromino("S")
	z := prototile.MustTetromino("Z")
	for i := 0; i < b.N; i++ {
		sols, err := tiling.SolveTorus([]int{4, 4}, []*prototile.Tile{s, z}, tiling.SolveOptions{})
		if err != nil || len(sols) != 64 {
			b.Fatalf("got %d solutions, err %v", len(sols), err)
		}
	}
}

// BenchmarkAnnealColoring measures the Wang–Ansari-style baseline.
func BenchmarkAnnealColoring(b *testing.B) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	g, _, err := graph.ConflictGraph(dep, lattice.CenteredWindow(2, 3))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		graph.AnnealColoring(g, rng, graph.AnnealOptions{Iterations: 5000})
	}
}
