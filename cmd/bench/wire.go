package main

// The -wire mode: an apples-to-apples comparison of the JSON codec and
// the binary wire protocol over real HTTP. It starts an in-process
// latticed handler on a loopback listener, sweeps batch sizes × wire
// formats through the load generator, and writes the results (with the
// binary/JSON lookup-throughput ratio per batch size) to
// BENCH_<date>_wire.json — the serving-path companion to the
// BENCH_<date>.json microbenchmark trajectory.

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"time"

	"tilingsched/internal/service"
)

// wireBatches are the batch sizes the -wire sweep measures.
var wireBatches = []int{64, 1024, 16384}

// WireSummary is the on-disk schema of a BENCH_<date>_wire.json file.
type WireSummary struct {
	Date        string       `json:"date"`
	GoVersion   string       `json:"go_version"`
	GOOS        string       `json:"goos"`
	GOARCH      string       `json:"goarch"`
	NumCPU      int          `json:"num_cpu"`
	Tile        string       `json:"tile"`
	Conns       int          `json:"conns"`
	DurationSec float64      `json:"duration_sec_per_cell"`
	Results     []loadResult `json:"results"`
	// SpeedupByBatch is binary ÷ JSON end-to-end lookups/s at each batch
	// size — the number the ISSUE's ≥5× acceptance bar reads.
	SpeedupByBatch map[string]float64 `json:"speedup_by_batch"`
}

// runWire executes the JSON-vs-binary serving sweep and writes the
// summary to out (BENCH_<date>_wire.json when empty).
func runWire(duration time.Duration, conns int, tile, out string) error {
	reg := service.NewRegistry(0)
	handler := service.NewServer(reg, service.ServerOptions{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: handler}
	go func() { _ = hs.Serve(ln) }()
	defer hs.Close()
	base := "http://" + ln.Addr().String()

	s := WireSummary{
		Date:           time.Now().Format("2006-01-02"),
		GoVersion:      runtime.Version(),
		GOOS:           runtime.GOOS,
		GOARCH:         runtime.GOARCH,
		NumCPU:         runtime.NumCPU(),
		Tile:           tile,
		Conns:          conns,
		DurationSec:    duration.Seconds(),
		SpeedupByBatch: map[string]float64{},
	}
	perBatch := map[int]map[string]float64{}
	for _, batch := range wireBatches {
		for _, format := range []string{"json", "bin"} {
			res, err := runLoad(loadConfig{
				baseURL:  base,
				duration: duration,
				conns:    conns,
				batch:    batch,
				tile:     tile,
				format:   format,
				quiet:    true,
			})
			if err != nil {
				return fmt.Errorf("%s batch=%d: %v", format, batch, err)
			}
			fmt.Printf("wire: format=%-4s batch=%-5d  %9.0f req/s  %12.0f lookups/s  p50=%.2fms p99=%.2fms  (%d-byte request)\n",
				format, batch, res.ReqPerSec, res.LookupsPerSec, res.P50Ms, res.P99Ms, res.BodyBytes)
			s.Results = append(s.Results, res)
			if perBatch[batch] == nil {
				perBatch[batch] = map[string]float64{}
			}
			perBatch[batch][format] = res.LookupsPerSec
		}
	}
	for batch, by := range perBatch {
		if by["json"] > 0 {
			s.SpeedupByBatch[strconv.Itoa(batch)] = by["bin"] / by["json"]
		}
	}
	for _, batch := range wireBatches {
		fmt.Printf("wire: batch=%-5d binary/JSON speedup %.2fx\n",
			batch, s.SpeedupByBatch[strconv.Itoa(batch)])
	}

	if out == "" {
		out = "BENCH_" + s.Date + "_wire.json"
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}
