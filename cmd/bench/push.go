package main

// Push-plane benchmarks (DESIGN.md §13). Two modes:
//
// The -push sweep starts an in-process service server, attaches 1k/10k/
// 100k in-process subscribers to one mutation session, drives scripted
// mutate batches through the HTTP handler, and measures the fan-out
// delivery latency (publish → subscriber receive) percentiles plus
// aggregate delta throughput. A poll baseline — full-resync mutate
// requests hammered over real HTTP — prices the alternative: the
// summary reports how long the same subscriber population would take to
// poll one round at the measured poll throughput, which is the number
// the push plane exists to beat. Results land in BENCH_<date>_push.json.
//
// The -subscribe mode is a live client against a running daemon: it
// opens one push stream, applies deltas to a local assignment copy, and
// reports what it saw — the observability counterpart to -load.

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"strings"
	"sync"
	"time"

	"tilingsched/internal/obs"
	"tilingsched/internal/service"
	"tilingsched/internal/service/binwire"
)

// pushSubscriberCounts is the -push sweep's subscriber-population axis.
var pushSubscriberCounts = []int{1_000, 10_000, 100_000}

// pushPlan addresses the benchmark session (shared by push and poll
// legs so both price the same assignment size).
var (
	pushTile   = "cross:2:1"
	pushWindow = service.WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}}
)

// pushResult is one sweep cell: fan-out delivery latency and throughput
// for a subscriber population.
type pushResult struct {
	Subscribers  int     `json:"subscribers"`
	Epochs       int     `json:"epochs"`
	Deltas       int64   `json:"deltas_delivered"`
	Seconds      float64 `json:"seconds"`
	DeltasPerSec float64 `json:"deltas_per_sec"`
	// Delivery latency: publish (mutate applied) → subscriber receive.
	P50Us  float64 `json:"delivery_p50_us"`
	P90Us  float64 `json:"delivery_p90_us"`
	P99Us  float64 `json:"delivery_p99_us"`
	P999Us float64 `json:"delivery_p999_us"`
	// Propagation latency: hub publish → delivery mark, the same
	// publish→deliver window /statusz and latticed_propagation_ns
	// report, measured from each delta's PubTime stamp.
	PropP50Us float64 `json:"propagation_p50_us"`
	PropP99Us float64 `json:"propagation_p99_us"`
	// PollRoundSeconds is how long this population would take to learn
	// one epoch by polling instead, at the measured poll throughput.
	PollRoundSeconds float64 `json:"poll_round_seconds"`
}

// pollBaseline is the poll leg: full-resync request throughput over
// real HTTP.
type pollBaseline struct {
	Conns     int     `json:"conns"`
	Requests  int64   `json:"requests"`
	Seconds   float64 `json:"seconds"`
	ReqPerSec float64 `json:"req_per_sec"`
	P50Ms     float64 `json:"p50_ms"`
	P99Ms     float64 `json:"p99_ms"`
}

// PushSummary is the on-disk schema of a BENCH_<date>_push.json file.
type PushSummary struct {
	Date      string       `json:"date"`
	GoVersion string       `json:"go_version"`
	GOOS      string       `json:"goos"`
	GOARCH    string       `json:"goarch"`
	NumCPU    int          `json:"num_cpu"`
	Tile      string       `json:"tile"`
	Poll      pollBaseline `json:"poll_baseline"`
	Push      []pushResult `json:"push"`
}

// pushMutateBody renders epoch e's scripted batch: one join per epoch,
// marching along the window margin so no event ever conflicts.
func pushMutateBody(e int) string {
	return fmt.Sprintf(`{"plan":{"tile":{"name":%q}},"window":{"lo":[0,0],"hi":[4,4]},`+
		`"events":[{"op":"join","p":[%d,%d]}]}`, pushTile, 6+e%20, 6+e/20)
}

// runPushCell attaches n in-process subscribers and measures delivery
// latency across the scripted epochs.
func runPushCell(n, epochs int) (pushResult, error) {
	s := service.NewServer(service.NewRegistry(8), service.ServerOptions{
		MaxSubscribers: n + 1,
		SubscribeQueue: epochs + 4, // hold every epoch: the cell measures latency, not drops
	})
	spec := service.PlanSpec{Tile: service.TileSpec{Name: pushTile}}
	zero := uint64(0)
	feeds := make([]*service.Subscription, n)
	for i := range feeds {
		f, err := s.Subscribe(spec, pushWindow, &zero)
		if err != nil {
			return pushResult{}, fmt.Errorf("subscriber %d: %v", i, err)
		}
		feeds[i] = f
	}

	// t0[e] is stamped by the driver before the mutate that produces
	// epoch e; the channel receive orders the subscriber's read after it.
	t0 := make([]time.Time, epochs+1)
	var lat, propLat obs.Histogram
	var delivered int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, f := range feeds {
		wg.Add(1)
		go func(f *service.Subscription) {
			defer wg.Done()
			defer f.Close()
			count := int64(0)
			for d := range f.C {
				lat.Record(uint64(time.Since(t0[d.Epoch])))
				// Mark advances the subscriber's lag watermark and feeds
				// the server-side propagation histogram; PubTime is zero
				// on catch-up deltas, which carry no live publish stamp.
				// Decimate the shared-histogram record like the server
				// does, or its contention dominates the fan-out measure.
				if !d.PubTime.IsZero() && count&7 == 0 {
					propLat.Record(uint64(time.Since(d.PubTime)))
				}
				f.Mark(d)
				count++
				if d.Epoch >= uint64(epochs) {
					break
				}
			}
			mu.Lock()
			delivered += count
			mu.Unlock()
		}(f)
	}

	start := time.Now()
	for e := 1; e <= epochs; e++ {
		t0[e] = time.Now()
		req := httptest.NewRequest("POST", "/v1/plan:mutate", strings.NewReader(pushMutateBody(e)))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			return pushResult{}, fmt.Errorf("mutate epoch %d: status %d: %s", e, rec.Code, rec.Body.String())
		}
	}
	wg.Wait()
	elapsed := time.Since(start)

	snap := lat.Snapshot()
	propSnap := propLat.Snapshot()
	toUs := func(q float64) float64 { return snap.Quantile(q) / 1e3 }
	return pushResult{
		Subscribers:  n,
		Epochs:       epochs,
		Deltas:       delivered,
		Seconds:      elapsed.Seconds(),
		DeltasPerSec: float64(delivered) / elapsed.Seconds(),
		P50Us:        toUs(0.50),
		P90Us:        toUs(0.90),
		P99Us:        toUs(0.99),
		P999Us:       toUs(0.999),
		PropP50Us:    propSnap.Quantile(0.50) / 1e3,
		PropP99Us:    propSnap.Quantile(0.99) / 1e3,
	}, nil
}

// runPollBaseline hammers the full-resync poll a subscriber population
// would otherwise issue, over real HTTP.
func runPollBaseline(duration time.Duration, conns int) (pollBaseline, error) {
	s := service.NewServer(service.NewRegistry(8), service.ServerOptions{})
	ts := httptest.NewServer(s)
	defer ts.Close()
	body := []byte(fmt.Sprintf(`{"plan":{"tile":{"name":%q}},"window":{"lo":[0,0],"hi":[4,4]},`+
		`"events":[],"full":true}`, pushTile))
	client := ts.Client()
	client.Transport = &http.Transport{MaxIdleConns: conns, MaxIdleConnsPerHost: conns}

	var requests int64
	var lat obs.Histogram
	var mu sync.Mutex
	deadline := time.Now().Add(duration)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			count := int64(0)
			for time.Now().Before(deadline) {
				reqStart := time.Now()
				resp, err := client.Post(ts.URL+"/v1/plan:mutate", "application/json", bytes.NewReader(body))
				if err != nil {
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					lat.Record(uint64(time.Since(reqStart)))
					count++
				}
			}
			mu.Lock()
			requests += count
			mu.Unlock()
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	snap := lat.Snapshot()
	return pollBaseline{
		Conns:     conns,
		Requests:  requests,
		Seconds:   elapsed.Seconds(),
		ReqPerSec: float64(requests) / elapsed.Seconds(),
		P50Ms:     snap.Quantile(0.50) / 1e6,
		P99Ms:     snap.Quantile(0.99) / 1e6,
	}, nil
}

// runPush executes the push-vs-poll sweep and writes
// BENCH_<date>_push.json (or out when set).
func runPush(epochs int, pollDuration time.Duration, conns int, out string) error {
	s := PushSummary{
		Date:      time.Now().Format("2006-01-02"),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
		Tile:      pushTile,
	}
	poll, err := runPollBaseline(pollDuration, conns)
	if err != nil {
		return fmt.Errorf("poll baseline: %v", err)
	}
	s.Poll = poll
	fmt.Printf("push: poll baseline %d conns  %9.0f polls/s  p50=%.2fms p99=%.2fms\n",
		poll.Conns, poll.ReqPerSec, poll.P50Ms, poll.P99Ms)

	for _, n := range pushSubscriberCounts {
		res, err := runPushCell(n, epochs)
		if err != nil {
			return fmt.Errorf("push n=%d: %v", n, err)
		}
		if poll.ReqPerSec > 0 {
			res.PollRoundSeconds = float64(n) / poll.ReqPerSec
		}
		s.Push = append(s.Push, res)
		fmt.Printf("push: subs=%-6d %9.0f deltas/s  delivery p50=%.0fµs p90=%.0fµs p99=%.0fµs p99.9=%.0fµs  propagation p99=%.0fµs  poll round=%.1fs\n",
			n, res.DeltasPerSec, res.P50Us, res.P90Us, res.P99Us, res.P999Us, res.PropP99Us, res.PollRoundSeconds)
	}

	if out == "" {
		out = "BENCH_" + s.Date + "_push.json"
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(out, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", out)
	return nil
}

// runSubscribe is the live client mode: one push stream against a
// running daemon, deltas applied to a local copy until the duration (or
// the stream) ends.
func runSubscribe(baseURL, format string, epoch int64, duration time.Duration) error {
	baseURL = strings.TrimRight(baseURL, "/")
	req := service.SubscribeRequest{
		Plan:   service.PlanSpec{Tile: service.TileSpec{Name: pushTile}},
		Window: pushWindow,
	}
	if epoch >= 0 {
		e := uint64(epoch)
		req.Epoch = &e
	}
	var body []byte
	contentType := "application/json"
	switch format {
	case "", "json":
		var err error
		if body, err = json.Marshal(req); err != nil {
			return err
		}
	case "bin":
		e := binwire.Get()
		defer binwire.Put(e)
		service.EncodeSubscribeBinary(e, req, "")
		body = bytes.Clone(e.Bytes())
		contentType = service.BinaryContentType
	default:
		return fmt.Errorf("unknown subscribe format %q (want json or bin)", format)
	}

	resp, err := http.Post(baseURL+"/v1/plan:subscribe", contentType, bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("subscribe: status %d: %s", resp.StatusCode, bytes.TrimSpace(msg))
	}
	st, err := service.OpenSubscribeStream(resp.Body, resp.Header.Get("Content-Type"))
	if err != nil {
		return err
	}
	hello := st.Hello()
	fmt.Printf("subscribe: %s sig=%s epoch=%d m=%d alive=%d\n",
		baseURL, hello.Signature, hello.Epoch, hello.M, hello.Alive)

	// The read loop has no deadline hook, so the duration closes the
	// body out from under it — the idiomatic way to abort a stream read.
	timer := time.AfterFunc(duration, func() { resp.Body.Close() })
	defer timer.Stop()

	copyMap := map[string]int{}
	deltas, changes, resyncs := 0, 0, 0
	start := time.Now()
	for {
		d, err := st.Next()
		if err != nil {
			if errors.Is(err, service.ErrStreamEnded) {
				fmt.Printf("subscribe: server ended the stream at epoch %d: %s\n", d.Epoch, d.Bye)
			}
			break
		}
		deltas++
		changes += len(d.Changed)
		if d.Full {
			resyncs++
			copyMap = map[string]int{}
		}
		for _, ch := range d.Changed {
			key := fmt.Sprint(ch.P)
			if ch.Slot < 0 {
				delete(copyMap, key)
			} else {
				copyMap[key] = ch.Slot
			}
		}
	}
	elapsed := time.Since(start)
	fmt.Printf("subscribe: %d deltas (%d changes, %d resyncs) in %s; local copy holds %d sensors\n",
		deltas, changes, resyncs, elapsed.Round(time.Millisecond), len(copyMap))
	return nil
}
