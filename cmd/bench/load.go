package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tilingsched/internal/service"
)

// loadConfig parameterizes the HTTP load-generator mode (-load), which
// measures a running latticed daemon's batch query throughput.
type loadConfig struct {
	baseURL  string
	duration time.Duration
	conns    int
	batch    int
	tile     string
}

// runLoad hammers POST /v1/slots:batch with conns concurrent workers for
// the configured duration and prints request and point-lookup
// throughput. The batch body is built once (deterministic points drawn
// from a seeded source) and shared by every request, so the generator
// itself stays cheap enough to saturate the server.
func runLoad(cfg loadConfig) error {
	cfg.baseURL = strings.TrimRight(cfg.baseURL, "/")
	rng := rand.New(rand.NewSource(1))
	points := make([][]int, cfg.batch)
	for i := range points {
		points[i] = []int{rng.Intn(2001) - 1000, rng.Intn(2001) - 1000}
	}
	body, err := json.Marshal(service.BatchRequest{
		Plan:   service.PlanSpec{Tile: service.TileSpec{Name: cfg.tile}},
		Points: points,
	})
	if err != nil {
		return err
	}
	url := cfg.baseURL + "/v1/slots:batch"
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.conns,
		MaxIdleConnsPerHost: cfg.conns,
	}}

	// One warm-up request compiles the plan and validates the reply
	// shape before the clock starts.
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return fmt.Errorf("warm-up request: %v", err)
	}
	var warm struct {
		service.SlotsResponse
		service.ErrorResponse
	}
	if err := json.NewDecoder(resp.Body).Decode(&warm); err != nil {
		return fmt.Errorf("warm-up decode: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("warm-up request: status %d: %s", resp.StatusCode, warm.Error)
	}
	if len(warm.Slots) != cfg.batch {
		return fmt.Errorf("warm-up reply has %d slots, want %d", len(warm.Slots), cfg.batch)
	}

	var requests, failures atomic.Int64
	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				resp, err := client.Post(url, "application/json", bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				requests.Add(1)
			}
		}()
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	reqs, fails := requests.Load(), failures.Load()
	secs := elapsed.Seconds()
	fmt.Printf("load: %s tile=%s batch=%d conns=%d duration=%s\n",
		cfg.baseURL, cfg.tile, cfg.batch, cfg.conns, elapsed.Round(time.Millisecond))
	fmt.Printf("load: %d requests (%d failed), %.0f req/s, %.0f lookups/s\n",
		reqs, fails, float64(reqs)/secs, float64(reqs)*float64(cfg.batch)/secs)
	if fails > 0 {
		return fmt.Errorf("%d failed requests", fails)
	}
	return nil
}
