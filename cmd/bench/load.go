package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"tilingsched/internal/obs"
	"tilingsched/internal/service"
	"tilingsched/internal/service/binwire"
)

// loadConfig parameterizes the HTTP load-generator mode (-load), which
// measures a running latticed daemon's batch query throughput.
type loadConfig struct {
	baseURL  string
	duration time.Duration
	conns    int
	batch    int
	tile     string
	format   string // "json" or "bin"
	quiet    bool   // suppress per-run printing (the -wire sweep prints its own table)
}

// loadResult is one load-generator measurement, shaped for the
// BENCH_<date>_wire.json comparison file. The latency percentiles are
// estimated from the same log2 histogram the server exports on
// /metrics (internal/obs), so client- and server-side numbers share
// one bucket layout.
type loadResult struct {
	Format        string  `json:"format"`
	Batch         int     `json:"batch"`
	Requests      int64   `json:"requests"`
	Failures      int64   `json:"failures"`
	Seconds       float64 `json:"seconds"`
	ReqPerSec     float64 `json:"req_per_sec"`
	LookupsPerSec float64 `json:"lookups_per_sec"`
	BodyBytes     int     `json:"request_body_bytes"`
	P50Ms         float64 `json:"p50_ms"`
	P90Ms         float64 `json:"p90_ms"`
	P99Ms         float64 `json:"p99_ms"`
	P999Ms        float64 `json:"p999_ms"`
}

// buildLoadBody renders the shared batch request body in the configured
// wire format, returning the body and its content type.
func buildLoadBody(cfg loadConfig) ([]byte, string, error) {
	rng := rand.New(rand.NewSource(1))
	points := make([][]int, cfg.batch)
	for i := range points {
		points[i] = []int{rng.Intn(2001) - 1000, rng.Intn(2001) - 1000}
	}
	req := service.BatchRequest{
		Plan:   service.PlanSpec{Tile: service.TileSpec{Name: cfg.tile}},
		Points: points,
	}
	switch cfg.format {
	case "", "json":
		body, err := json.Marshal(req)
		return body, "application/json", err
	case "bin":
		e := binwire.Get()
		defer binwire.Put(e)
		service.EncodeBatchBinary(e, req, false, "")
		return bytes.Clone(e.Bytes()), service.BinaryContentType, nil
	}
	return nil, "", fmt.Errorf("unknown load format %q (want json or bin)", cfg.format)
}

// checkLoadReply validates the warm-up reply in the configured format.
func checkLoadReply(cfg loadConfig, status int, body []byte) error {
	if cfg.format == "bin" {
		sr, err := service.DecodeSlotsStream(body)
		if err != nil {
			return fmt.Errorf("warm-up decode: %v", err)
		}
		if len(sr.Slots) != cfg.batch {
			return fmt.Errorf("warm-up reply has %d slots, want %d", len(sr.Slots), cfg.batch)
		}
		return nil
	}
	var warm struct {
		service.SlotsResponse
		service.ErrorResponse
	}
	if err := json.Unmarshal(body, &warm); err != nil {
		return fmt.Errorf("warm-up decode: %v", err)
	}
	if status != http.StatusOK {
		return fmt.Errorf("warm-up request: status %d: %s", status, warm.Error)
	}
	if len(warm.Slots) != cfg.batch {
		return fmt.Errorf("warm-up reply has %d slots, want %d", len(warm.Slots), cfg.batch)
	}
	return nil
}

// runLoad hammers POST /v1/slots:batch with conns concurrent workers for
// the configured duration and reports request and point-lookup
// throughput. The batch body is built once (deterministic points drawn
// from a seeded source) and shared by every request, so the generator
// itself stays cheap enough to saturate the server. The format field
// selects the JSON codec or the binary wire protocol — same endpoint,
// negotiated by Content-Type.
func runLoad(cfg loadConfig) (loadResult, error) {
	cfg.baseURL = strings.TrimRight(cfg.baseURL, "/")
	body, contentType, err := buildLoadBody(cfg)
	if err != nil {
		return loadResult{}, err
	}
	url := cfg.baseURL + "/v1/slots:batch"
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.conns,
		MaxIdleConnsPerHost: cfg.conns,
	}}

	// One warm-up request compiles the plan and validates the reply
	// shape before the clock starts.
	resp, err := client.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		return loadResult{}, fmt.Errorf("warm-up request: %v", err)
	}
	reply, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return loadResult{}, fmt.Errorf("warm-up read: %v", err)
	}
	if err := checkLoadReply(cfg, resp.StatusCode, reply); err != nil {
		return loadResult{}, err
	}

	var requests, failures atomic.Int64
	var lat obs.Histogram // request latency in ns, shared by all workers
	deadline := time.Now().Add(cfg.duration)
	var wg sync.WaitGroup
	for w := 0; w < cfg.conns; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				reqStart := time.Now()
				resp, err := client.Post(url, contentType, bytes.NewReader(body))
				if err != nil {
					failures.Add(1)
					continue
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				lat.Record(uint64(time.Since(reqStart)))
				requests.Add(1)
			}
		}()
	}
	start := time.Now()
	wg.Wait()
	elapsed := time.Since(start)

	reqs, fails := requests.Load(), failures.Load()
	secs := elapsed.Seconds()
	snap := lat.Snapshot()
	toMs := func(q float64) float64 { return snap.Quantile(q) / 1e6 }
	res := loadResult{
		Format:        cfg.format,
		Batch:         cfg.batch,
		Requests:      reqs,
		Failures:      fails,
		Seconds:       secs,
		ReqPerSec:     float64(reqs) / secs,
		LookupsPerSec: float64(reqs) * float64(cfg.batch) / secs,
		BodyBytes:     len(body),
		P50Ms:         toMs(0.50),
		P90Ms:         toMs(0.90),
		P99Ms:         toMs(0.99),
		P999Ms:        toMs(0.999),
	}
	if res.Format == "" {
		res.Format = "json"
	}
	if !cfg.quiet {
		fmt.Printf("load: %s tile=%s format=%s batch=%d conns=%d duration=%s\n",
			cfg.baseURL, cfg.tile, res.Format, cfg.batch, cfg.conns, elapsed.Round(time.Millisecond))
		fmt.Printf("load: %d requests (%d failed), %.0f req/s, %.0f lookups/s\n",
			reqs, fails, res.ReqPerSec, res.LookupsPerSec)
		fmt.Printf("load: latency p50=%.2fms p90=%.2fms p99=%.2fms p99.9=%.2fms\n",
			res.P50Ms, res.P90Ms, res.P99Ms, res.P999Ms)
	}
	if fails > 0 {
		return res, fmt.Errorf("%d failed requests", fails)
	}
	return res, nil
}
