// Command bench runs the repository benchmarks with -benchmem and writes
// a BENCH_<date>.json summary (ns/op, B/op, allocs/op per benchmark) so
// the performance trajectory is tracked in-repo from PR to PR.
//
// Usage:
//
//	go run ./cmd/bench [-bench regex] [-count N] [-pkg ./...] [-out file]
//	go run ./cmd/bench -parse raw.txt [-out file]   # summarize existing output
//	go run ./cmd/bench -load http://localhost:8370  # latticed load generator
//	go run ./cmd/bench -wire                        # JSON vs binary serving sweep
//	go run ./cmd/bench -push                        # push fan-out vs poll sweep
//	go run ./cmd/bench -subscribe http://localhost:8370  # live push-stream client
//
// With -parse the raw `go test -bench` output in the given file is
// summarized instead of running the benchmarks — useful for snapshotting
// a baseline captured before a change. With -load the tool becomes an
// HTTP load generator against a running cmd/latticed daemon, reporting
// batch-query requests/s, point lookups/s, and p50/p90/p99/p99.9
// request latency from an internal/obs histogram (see -load-* flags;
// -load-format selects the JSON codec or the binary wire protocol).
// With -wire it starts an in-process handler and sweeps batch sizes ×
// wire formats, writing BENCH_<date>_wire.json with the binary/JSON
// speedup per batch size. With -push it sweeps the push plane
// (DESIGN.md §13): 1k/10k/100k in-process subscribers on one mutation
// session, delivery-latency percentiles per population, and a
// full-resync poll baseline over real HTTP for comparison, written to
// BENCH_<date>_push.json. With -subscribe it opens one live push
// stream against a running daemon (-load-format json|bin, -sub-epoch
// to resume) and reports the deltas it applied.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"time"
)

// Result aggregates the samples of one benchmark.
type Result struct {
	Samples     int     `json:"samples"`
	NsPerOp     float64 `json:"ns_per_op"`      // minimum over samples (least-noise estimate)
	NsPerOpMean float64 `json:"ns_per_op_mean"` // arithmetic mean over samples
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Summary is the on-disk schema of a BENCH_<date>.json file.
type Summary struct {
	Date       string            `json:"date"`
	GoVersion  string            `json:"go_version"`
	GOOS       string            `json:"goos"`
	GOARCH     string            `json:"goarch"`
	Bench      string            `json:"bench_regex"`
	Count      int               `json:"count"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

// benchLine matches e.g.
//
//	BenchmarkSlotAssignment-8   6891763   166.0 ns/op   56 B/op   4 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func main() {
	bench := flag.String("bench", ".", "benchmark regex passed to go test -bench")
	count := flag.Int("count", 3, "samples per benchmark (go test -count)")
	pkg := flag.String("pkg", ".", "package to benchmark")
	out := flag.String("out", "", "output file (default BENCH_<date>.json)")
	parse := flag.String("parse", "", "summarize an existing go test -bench output file instead of running")
	load := flag.String("load", "", "base URL of a latticed daemon to load-test instead of benchmarking")
	loadDuration := flag.Duration("load-duration", 5*time.Second, "load generator run time")
	loadConns := flag.Int("load-conns", 8, "concurrent load generator connections")
	loadBatch := flag.Int("load-batch", 1024, "points per batch request")
	loadTile := flag.String("load-tile", "cross:2:1", "tile spec queried by the load generator")
	loadFormat := flag.String("load-format", "json", "wire format for -load: json or bin")
	wire := flag.Bool("wire", false, "run the in-process JSON-vs-binary serving sweep")
	push := flag.Bool("push", false, "run the in-process push fan-out vs poll sweep")
	pushEpochs := flag.Int("push-epochs", 10, "mutation epochs per push sweep cell")
	subscribe := flag.String("subscribe", "", "base URL of a latticed daemon to open a live push stream against")
	subEpoch := flag.Int64("sub-epoch", -1, "with -subscribe: resume epoch (-1 = fresh attach)")
	flag.Parse()

	if *wire {
		if err := runWire(*loadDuration, *loadConns, *loadTile, *out); err != nil {
			fatal("wire: %v", err)
		}
		return
	}
	if *push {
		if err := runPush(*pushEpochs, *loadDuration, *loadConns, *out); err != nil {
			fatal("push: %v", err)
		}
		return
	}
	if *subscribe != "" {
		if err := runSubscribe(*subscribe, *loadFormat, *subEpoch, *loadDuration); err != nil {
			fatal("subscribe: %v", err)
		}
		return
	}
	if *load != "" {
		if _, err := runLoad(loadConfig{
			baseURL:  *load,
			duration: *loadDuration,
			conns:    *loadConns,
			batch:    *loadBatch,
			tile:     *loadTile,
			format:   *loadFormat,
		}); err != nil {
			fatal("load: %v", err)
		}
		return
	}

	var raw []byte
	var err error
	if *parse != "" {
		raw, err = os.ReadFile(*parse)
		if err != nil {
			fatal("reading %s: %v", *parse, err)
		}
	} else {
		cmd := exec.Command("go", "test", "-run=^$",
			"-bench="+*bench, "-benchmem", "-count="+strconv.Itoa(*count), *pkg)
		cmd.Stderr = os.Stderr
		raw, err = cmd.Output()
		if err != nil {
			fatal("go test -bench: %v\n%s", err, raw)
		}
	}

	type agg struct {
		ns              []float64
		bytesOp, allocs int64
	}
	acc := map[string]*agg{}
	for _, line := range regexp.MustCompile(`\r?\n`).Split(string(raw), -1) {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		a := acc[m[1]]
		if a == nil {
			a = &agg{}
			acc[m[1]] = a
		}
		ns, _ := strconv.ParseFloat(m[2], 64)
		a.ns = append(a.ns, ns)
		if m[3] != "" {
			b, _ := strconv.ParseFloat(m[3], 64)
			a.bytesOp = int64(b)
		}
		if m[4] != "" {
			a.allocs, _ = strconv.ParseInt(m[4], 10, 64)
		}
	}
	if len(acc) == 0 {
		fatal("no benchmark lines found")
	}

	s := Summary{
		Date:       time.Now().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Bench:      *bench,
		Count:      *count,
		Benchmarks: map[string]Result{},
	}
	for name, a := range acc {
		sort.Float64s(a.ns)
		var sum float64
		for _, v := range a.ns {
			sum += v
		}
		s.Benchmarks[name] = Result{
			Samples:     len(a.ns),
			NsPerOp:     a.ns[0],
			NsPerOpMean: sum / float64(len(a.ns)),
			BytesPerOp:  a.bytesOp,
			AllocsPerOp: a.allocs,
		}
	}

	path := *out
	if path == "" {
		path = "BENCH_" + s.Date + ".json"
	}
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		fatal("marshal: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		fatal("write %s: %v", path, err)
	}
	fmt.Printf("wrote %s (%d benchmarks)\n", path, len(s.Benchmarks))
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "bench: "+format+"\n", args...)
	os.Exit(1)
}
