// Command latticetile answers the paper's question Q1 for a prototile —
// is it exact? — and, when it is, prints the tiling period and the
// Theorem 1 slot grid.
//
// Usage:
//
//	latticetile -tile cross              # catalog tile by name
//	latticetile -tile S -grid 8          # schedule grid over [-8,8]²
//	latticetile -ascii "XX.
//	.XX"                                  # custom polyomino (rows, X=cell)
//
// Catalog names: cross, moore, directional, ltromino, rect2x4, and the
// tetrominoes I, O, T, S, Z, L, J, pentominoes P, X, F.
package main

import (
	"flag"
	"fmt"
	"os"

	"tilingsched/internal/core"
	"tilingsched/internal/experiments"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

func lookupTile(name, ascii string) (*prototile.Tile, error) {
	if ascii != "" {
		return prototile.FromASCII("custom", ascii)
	}
	switch name {
	case "cross":
		return prototile.Cross(2, 1), nil
	case "moore":
		return prototile.ChebyshevBall(2, 1), nil
	case "directional", "rect2x4":
		return prototile.Directional(), nil
	case "ltromino":
		return prototile.LTromino(), nil
	case "I", "O", "T", "S", "Z", "L", "J":
		return prototile.Tetromino(name)
	case "P", "X", "F":
		return prototile.Pentomino(name)
	default:
		return nil, fmt.Errorf("unknown tile %q", name)
	}
}

// catalogNames lists every tile reachable via -tile.
var catalogNames = []string{
	"cross", "moore", "directional", "ltromino",
	"I", "O", "T", "S", "Z", "L", "J", "P", "X", "F",
}

func printCatalog() {
	fmt.Printf("%-14s %4s %-6s %s\n", "tile", "|N|", "exact", "evidence")
	for _, n := range catalogNames {
		tile, err := lookupTile(n, "")
		if err != nil {
			fmt.Fprintf(os.Stderr, "latticetile: %v\n", err)
			os.Exit(1)
		}
		exact, evidence, err := core.ExplainExactness(tile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "latticetile: %v\n", err)
			os.Exit(1)
		}
		if len(evidence) > 58 {
			evidence = evidence[:55] + "..."
		}
		fmt.Printf("%-14s %4d %-6v %s\n", n, tile.Size(), exact, evidence)
	}
}

func main() {
	name := flag.String("tile", "cross", "catalog tile name")
	ascii := flag.String("ascii", "", "custom polyomino as ASCII art (overrides -tile)")
	grid := flag.Int("grid", 5, "half-width of the slot grid to print")
	all := flag.Bool("all", false, "list the whole catalog with exactness evidence")
	flag.Parse()

	if *all {
		printCatalog()
		return
	}

	tile, err := lookupTile(*name, *ascii)
	if err != nil {
		fmt.Fprintf(os.Stderr, "latticetile: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("prototile %s (|N| = %d):\n%s\n\n", tile.Name(), tile.Size(), tile.ASCII())

	exact, evidence, err := core.ExplainExactness(tile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "latticetile: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("exact: %v\nevidence: %s\n\n", exact, evidence)
	if !exact {
		os.Exit(0)
	}

	lt, ok := tiling.FindLatticeTiling(tile)
	if !ok {
		fmt.Println("exact by boundary criterion but no lattice-periodic tiling found")
		os.Exit(0)
	}
	s := schedule.FromLatticeTiling(lt)
	fmt.Printf("tiling period T = %s, schedule slots m = |N| = %d\n", lt.Period(), s.Slots())
	w := lattice.CenteredWindow(2, *grid)
	if err := schedule.VerifyCollisionFree(s, s.Deployment(), w); err != nil {
		fmt.Fprintf(os.Stderr, "latticetile: verification failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("collision-free on %s: verified\n\n", w)
	gridStr, err := experiments.RenderScheduleGrid(s, w)
	if err != nil {
		fmt.Fprintf(os.Stderr, "latticetile: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("slot grid (1-based):")
	fmt.Print(gridStr)
}
