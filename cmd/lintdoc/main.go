// Command lintdoc enforces the repository's doc-comment contract: every
// exported type, function, method, constant, and variable in the given
// package directories must carry a doc comment (the `revive exported`
// rule, implemented stdlib-only so CI and local runs need no network or
// third-party tooling). internal/graph and internal/service additionally
// promise that their comments state each API's adjacency-mode and
// freeze/concurrency contracts — the linter cannot check prose, but it
// guarantees the prose exists.
//
// Usage:
//
//	go run ./cmd/lintdoc ./internal/graph ./internal/service
//
// Test files are skipped. Exits non-zero listing every undocumented
// exported identifier as path:line: name.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: lintdoc <package dir>...")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		bad += lintDir(dir)
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "lintdoc: %d undocumented exported identifiers\n", bad)
		os.Exit(1)
	}
}

// lintDir parses every non-test Go file of one directory and reports
// undocumented exported declarations, returning the count.
func lintDir(dir string) int {
	entries, err := os.ReadDir(dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "lintdoc: %v\n", err)
		os.Exit(2)
	}
	fset := token.NewFileSet()
	bad := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "lintdoc: %v\n", err)
			os.Exit(2)
		}
		bad += lintFile(fset, f)
	}
	return bad
}

// lintFile checks one parsed file's top-level declarations.
func lintFile(fset *token.FileSet, f *ast.File) int {
	bad := 0
	report := func(pos token.Pos, kind, name string) {
		fmt.Printf("%s: exported %s %s is missing a doc comment\n", fset.Position(pos), kind, name)
		bad++
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			kind := "function"
			name := d.Name.Name
			if d.Recv != nil {
				// Methods are flagged regardless of receiver visibility:
				// methods on unexported types still surface through
				// interfaces and exported constructors.
				kind = "method"
				name = recvName(d.Recv) + "." + name
			}
			report(d.Pos(), kind, name)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil && s.Comment == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc comment on the grouped decl covers every
					// spec in the group (the const-block idiom).
					if d.Doc != nil || s.Doc != nil || s.Comment != nil {
						continue
					}
					for _, n := range s.Names {
						if n.IsExported() {
							report(n.Pos(), kindOf(d.Tok), n.Name)
						}
					}
				}
			}
		}
	}
	return bad
}

// recvName renders a method receiver's base type name.
func recvName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return "?"
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return "?"
}

// kindOf names a value declaration for the report.
func kindOf(tok token.Token) string {
	if tok == token.CONST {
		return "constant"
	}
	return "variable"
}
