// Command experiments runs the full reproduction suite — Figures 1–5,
// Theorems 1–2, and the derived evaluation tables E1–E6 — and prints each
// result block. The output of this command is the source of record for
// EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"tilingsched/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 1, "random seed for the stochastic experiments")
	flag.Parse()
	results, err := experiments.All(*seed)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}
	failed := 0
	for _, r := range results {
		fmt.Println(r.Render())
		if !r.Passed() {
			failed++
		}
	}
	fmt.Printf("=== %d/%d experiments passed ===\n", len(results)-failed, len(results))
	if failed > 0 {
		os.Exit(1)
	}
}
