// Command wsnsim runs the slotted-radio simulator on a square deployment
// and prints the outcome metrics — the quickest way to see the paper's
// deterministic schedule beat contention protocols.
//
// Usage:
//
//	wsnsim -proto tiling -tile cross -half 4 -slots 2000
//	wsnsim -proto aloha -p 0.15 -traffic 0.05
//	wsnsim -proto csma -p 0.2
//	wsnsim -proto tdma
//
// Tile, traffic, and window flags are shared across protocols.
package main

import (
	"flag"
	"fmt"
	"os"

	"tilingsched/internal/graph"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/stats"
	"tilingsched/internal/tiling"
	"tilingsched/internal/wsn"
)

func main() {
	proto := flag.String("proto", "tiling", "protocol: tiling, tdma, dsatur, aloha, csma, beb")
	tileName := flag.String("tile", "cross", "neighborhood: cross, moore, directional")
	p := flag.Float64("p", 0.15, "transmit probability for aloha/csma")
	traffic := flag.Float64("traffic", 0.05, "Bernoulli arrival probability per slot (1 = saturated)")
	half := flag.Int("half", 4, "window half-width: sensors fill [-half, half]²")
	slots := flag.Int64("slots", 2000, "slots to simulate")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var tile *prototile.Tile
	switch *tileName {
	case "cross":
		tile = prototile.Cross(2, 1)
	case "moore":
		tile = prototile.ChebyshevBall(2, 1)
	case "directional":
		tile = prototile.Directional()
	default:
		fmt.Fprintf(os.Stderr, "wsnsim: unknown tile %q\n", *tileName)
		os.Exit(2)
	}
	w := lattice.CenteredWindow(2, *half)
	dep := schedule.NewHomogeneous(tile)

	var protocol wsn.Protocol
	switch *proto {
	case "tiling":
		lt, ok := tiling.FindLatticeTiling(tile)
		if !ok {
			fmt.Fprintf(os.Stderr, "wsnsim: %s admits no tiling\n", tile.Name())
			os.Exit(1)
		}
		protocol = wsn.NewScheduleMAC("tiling", schedule.FromLatticeTiling(lt))
	case "tdma":
		protocol = wsn.NewScheduleMAC("tdma", schedule.PlainTDMA(w))
	case "aloha":
		protocol = &wsn.SlottedALOHA{P: *p}
	case "csma":
		c, err := wsn.NewCSMA(*p, dep, w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wsnsim: %v\n", err)
			os.Exit(1)
		}
		protocol = c
	case "beb":
		b, err := wsn.NewBackoffALOHA(*p, *p/32)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wsnsim: %v\n", err)
			os.Exit(1)
		}
		protocol = b
	case "dsatur":
		ms, proven, err := graph.OptimalSchedule(dep, w, 500_000)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wsnsim: %v\n", err)
			os.Exit(1)
		}
		label := fmt.Sprintf("coloring(%d)", ms.Slots())
		if !proven {
			label += "~"
		}
		protocol = wsn.NewScheduleMAC(label, ms)
	default:
		fmt.Fprintf(os.Stderr, "wsnsim: unknown protocol %q\n", *proto)
		os.Exit(2)
	}

	var tr wsn.Traffic
	if *traffic >= 1 {
		tr = wsn.Saturated{}
	} else {
		tr = wsn.Bernoulli{P: *traffic}
	}
	m, err := wsn.Run(wsn.Config{
		Window:     w,
		Deployment: dep,
		Protocol:   protocol,
		Traffic:    tr,
		Slots:      *slots,
		Seed:       *seed,
		QueueCap:   64,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "wsnsim: %v\n", err)
		os.Exit(1)
	}
	t := stats.NewTable(fmt.Sprintf("%s on %s, %d sensors, %d slots",
		protocol.Name(), tile.Name(), m.Nodes, m.Slots),
		"metric", "value")
	t.AddRow("arrivals", stats.I(m.Arrivals))
	t.AddRow("delivered", stats.I(m.Delivered))
	t.AddRow("dropped", stats.I(m.Dropped))
	t.AddRow("transmissions", stats.I(m.Transmissions))
	t.AddRow("failed tx", stats.I(m.FailedTx))
	t.AddRow("receiver collisions", stats.I(m.ReceiverCollisions))
	t.AddRow("delivery ratio", stats.F(m.DeliveryRatio()))
	t.AddRow("goodput", stats.F(m.Goodput()))
	t.AddRow("mean latency", stats.F(m.MeanLatency()))
	t.AddRow("energy per delivered", stats.F(m.EnergyPerDelivered()))
	fmt.Print(t.Render())
}
