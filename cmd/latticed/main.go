// Command latticed serves tiling schedules over HTTP: compile a plan
// once, answer batches of SlotOf / MayBroadcast queries with O(1)
// integer arithmetic per point, and churn dynamic deployment sessions
// with bounded-disruption rescheduling (internal/service +
// internal/dynamic).
//
// Usage:
//
//	go run ./cmd/latticed [-addr :8370] [-cache 256] [-max-batch N] [-max-window N]
//	                      [-sessions 16] [-max-subscribers N] [-sub-queue N]
//	                      [-slow-ms 0] [-trace-sample N] [-trace-ring N]
//	                      [-data DIR] [-fsync] [-debug]
//
// With -data DIR, dynamic mutation sessions are durable (DESIGN.md
// §12): every applied batch appends to a per-session write-ahead log,
// snapshots bound the log, evicted sessions flush first and reload on
// the next touch, and a restart restores every persisted session at its
// last epoch before serving. -fsync additionally syncs the WAL per
// batch (power-loss durability at a per-mutation fsync cost; without
// it appends still survive process restarts).
//
// Sessions also push (DESIGN.md §13): POST /v1/plan:subscribe holds the
// connection open and streams one delta per applied mutation batch, so
// sensors learn reassignments without polling. A subscriber that falls
// more than -sub-queue epochs behind is dropped with a terminal "resync
// required" element rather than ever stalling the mutate path; one that
// reconnects with a stale epoch is caught up from the WAL when -data
// covers the gap, and answered with a full resync otherwise.
//
// Endpoints:
//
//	POST /v1/plan               {"plan":{"tile":{"name":"cross:2:1"}}}
//	POST /v1/slots:batch        {"plan":{...},"points":[[3,4],[0,0]]}
//	                            {"plan":{...},"window":{"lo":[-4,-4],"hi":[4,4]}}
//	POST /v1/maybroadcast:batch {"plan":{...},"points":[[3,4]],"t":12345}
//	POST /v1/plan:mutate        {"plan":{...},"window":{...},"events":[{"op":"leave","p":[0,0]}]}
//	POST /v1/plan:subscribe     {"plan":{...},"window":{...},"epoch":12} — streams
//	                            session deltas (ndjson, or frames under the
//	                            binary content type) until the client leaves
//	GET  /healthz
//	GET  /metrics               Prometheus text exposition (always on):
//	                            request/error/latency by endpoint × codec,
//	                            phase and batch-size histograms, plan-cache
//	                            and session traffic, dynamic repair tiers,
//	                            per-plan traffic top-K, Go runtime stats
//	GET  /statusz               live introspection (always on): sessions with
//	                            epochs, subscriber counts, queue depths, WAL
//	                            sizes, subscriber lag watermarks, propagation
//	                            latency with exemplar trace IDs — JSON, or a
//	                            minimal HTML page with ?format=html
//	GET  /debug/traces          recent request span trees as JSON (always on;
//	                            populated when -trace-sample is set or a
//	                            -slow-ms request forces a trace)
//	GET  /debug/pprof/          CPU/heap/goroutine profiles (opt-in: -debug)
//	GET  /debug/vars            JSON counters: registry hits/misses/
//	                            evictions, batch sizes, mutation and
//	                            session traffic under "latticed" (opt-in:
//	                            -debug; profiles cost CPU and leak
//	                            internals, so keep the plane off on
//	                            untrusted networks)
//
// Telemetry is per-handler (no process globals): every handler built by
// newHandler carries its own metrics registry, so tests and multi-server
// processes observe independent counters. Recording on the request path
// is lock-free atomic adds — the 18 ns/point engine contract survives
// instrumentation (DESIGN.md §11). -slow-ms N samples requests slower
// than N milliseconds into the log with their decode/engine/encode
// phase split (at most one entry per 100ms) and the ID of a span trace
// at /debug/traces. -trace-sample N additionally records an end-to-end
// span tree for 1 in N requests — mutate traces carry the epoch
// timeline (overlay-apply, wal-append, hub-publish, per-subscriber
// deliver) — joining a caller's W3C traceparent (or its binary
// trace-extension frame) when one is propagated (DESIGN.md §14).
//
// Compiled plans are cached in an LRU keyed by the canonical
// (lattice, tile) signature; concurrent first requests for one plan
// compile it exactly once. Dynamic sessions are keyed by
// signature + window and versioned by an epoch, so clients track churn
// through delta responses. Measure throughput against a running daemon
// with the load generator: go run ./cmd/bench -load http://localhost:8370.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"syscall"
	"time"

	"tilingsched/internal/obs"
	"tilingsched/internal/service"
)

// daemonOptions are newHandler's knobs — the flag set, minus the
// listen address.
type daemonOptions struct {
	cache       int    // plan-cache capacity
	maxBatch    int    // points per batch / events per mutate (0 = default)
	maxWindow   int    // points per window shorthand (0 = default)
	sessions    int    // live dynamic sessions (0 = default)
	maxSubs     int    // push subscribers per session (0 = default)
	subQueue    int    // per-subscriber delta-queue depth (0 = default)
	slowMs      int    // slow-request log threshold in ms (0 = off)
	traceSample int    // trace 1 in N requests (0 = off)
	traceRing   int    // retained traces at /debug/traces (0 = default)
	data        string // session data directory ("" = sessions not durable)
	fsync       bool   // fsync the session WAL per mutation batch
	debug       bool
	logf        func(format string, args ...any) // nil = log.Printf
}

// logSlow is the daemon's slow-request sink: one structured log line
// per sampled trace. trace= is the span-tree ID at /debug/traces
// (slow requests are always traced, whatever -trace-sample says).
func logSlow(sr service.SlowRequest) {
	log.Printf("latticed: slow request endpoint=%s codec=%s status=%d sig=%q points=%d total=%s decode=%s engine=%s encode=%s trace=%s",
		sr.Endpoint, sr.Codec, sr.Status, sr.Signature, sr.BatchPoints,
		sr.Total, sr.Decode, sr.Engine, sr.Encode, sr.Trace)
}

// newHandler assembles the daemon's full HTTP wiring — registry, batch
// engine, dynamic sessions, wire layer, the always-on /metrics
// exposition, and (when debug is set) the pprof/debug-vars plane —
// from its knobs. Split from main so the end-to-end tests drive
// exactly what the binary serves via httptest.
func newHandler(o daemonOptions) http.Handler {
	h, _, err := newDaemon(o)
	if err != nil {
		// Only reachable with a data directory configured and unusable.
		log.Fatalf("latticed: %v", err)
	}
	return h
}

// newDaemon is newHandler plus the underlying service server (for the
// shutdown flush and the restart tests) and the persistence setup:
// with a data directory set, durable sessions are enabled and every
// persisted session is restored before the handler serves traffic.
func newDaemon(o daemonOptions) (http.Handler, *service.Server, error) {
	logf := o.logf
	if logf == nil {
		logf = log.Printf
	}
	opts := service.ServerOptions{
		MaxBatch:         o.maxBatch,
		MaxWindow:        o.maxWindow,
		MaxSessions:      o.sessions,
		MaxSubscribers:   o.maxSubs,
		SubscribeQueue:   o.subQueue,
		TraceSampleEvery: o.traceSample,
		TraceRing:        o.traceRing,
		Logf:             logf,
	}
	if o.slowMs > 0 {
		opts.SlowThreshold = time.Duration(o.slowMs) * time.Millisecond
		opts.SlowLog = logSlow
	}
	srv := service.NewServer(service.NewRegistry(o.cache), opts)
	if o.data != "" {
		if err := srv.EnablePersistence(service.PersistOptions{Dir: o.data, Fsync: o.fsync}); err != nil {
			return nil, nil, err
		}
		n, err := srv.RestoreSessions()
		if err != nil {
			return nil, nil, err
		}
		if n > 0 {
			logf("latticed: restored %d session(s) from %s", n, o.data)
		}
	}
	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", obs.ContentType)
		if err := srv.WriteMetrics(w); err != nil {
			return // client hung up mid-scrape; nothing to answer
		}
		_ = obs.WriteGoRuntime(w)
	})
	// The introspection plane (DESIGN.md §14) is always on, like
	// /metrics: it reads state, leaks no profiles, and an operator's
	// first question ("is it keeping up?") should never need a restart
	// with -debug.
	mux.HandleFunc("GET /statusz", srv.HandleStatusz)
	mux.HandleFunc("GET /debug/traces", srv.HandleTraces)
	if !o.debug {
		return mux, srv, nil
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]any{"latticed": srv.Snapshot()})
	})
	return mux, srv, nil
}

func main() {
	addr := flag.String("addr", ":8370", "listen address")
	cache := flag.Int("cache", 256, "plan cache capacity (compiled plans)")
	maxBatch := flag.Int("max-batch", 0, "max points per explicit batch and events per mutate (0 = default)")
	maxWindow := flag.Int("max-window", 0, "max points per window shorthand or session window (0 = default)")
	sessions := flag.Int("sessions", 0, "max live dynamic deployment sessions (0 = default)")
	maxSubs := flag.Int("max-subscribers", 0, "max push subscribers per session, 503 beyond (0 = default)")
	subQueue := flag.Int("sub-queue", 0, "per-subscriber delta-queue depth before a slow consumer is dropped (0 = default)")
	slowMs := flag.Int("slow-ms", 0, "log requests slower than this many milliseconds (0 = off)")
	traceSample := flag.Int("trace-sample", 0, "record a span trace for 1 in N requests, served at /debug/traces (0 = off; slow requests are always traced)")
	traceRing := flag.Int("trace-ring", 0, "recent traces retained for /debug/traces (0 = default)")
	data := flag.String("data", "", "session data directory: mutation sessions persist (WAL + snapshots) and survive restarts (\"\" = off)")
	fsync := flag.Bool("fsync", false, "with -data: fsync the session WAL after every mutation batch")
	debug := flag.Bool("debug", false, "serve /debug/pprof and /debug/vars (keep off on untrusted networks)")
	flag.Parse()

	handler, svc, err := newDaemon(daemonOptions{
		cache:       *cache,
		maxBatch:    *maxBatch,
		maxWindow:   *maxWindow,
		sessions:    *sessions,
		maxSubs:     *maxSubs,
		subQueue:    *subQueue,
		slowMs:      *slowMs,
		traceSample: *traceSample,
		traceRing:   *traceRing,
		data:        *data,
		fsync:       *fsync,
		debug:       *debug,
	})
	if err != nil {
		log.Fatalf("latticed: %v", err)
	}
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	shutdownDone := make(chan struct{})
	go func() {
		defer close(shutdownDone)
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	log.Printf("latticed: serving on %s (plan cache %d)", *addr, *cache)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("latticed: %v", err)
	}
	// ErrServerClosed means Shutdown ran: wait for in-flight requests to
	// drain, then checkpoint every dirty session so a restart over the
	// same data directory replays nothing.
	<-shutdownDone
	if n := svc.FlushSessions(); n > 0 {
		log.Printf("latticed: flushed %d dirty session(s) to %s", n, *data)
	}
	log.Printf("latticed: shut down")
}
