// Command latticed serves tiling schedules over HTTP: compile a plan
// once, answer batches of SlotOf / MayBroadcast queries with O(1)
// integer arithmetic per point (internal/service).
//
// Usage:
//
//	go run ./cmd/latticed [-addr :8370] [-cache 256] [-max-batch N] [-max-window N]
//
// Endpoints:
//
//	POST /v1/plan               {"plan":{"tile":{"name":"cross:2:1"}}}
//	POST /v1/slots:batch        {"plan":{...},"points":[[3,4],[0,0]]}
//	                            {"plan":{...},"window":{"lo":[-4,-4],"hi":[4,4]}}
//	POST /v1/maybroadcast:batch {"plan":{...},"points":[[3,4]],"t":12345}
//	GET  /healthz
//
// Compiled plans are cached in an LRU keyed by the canonical
// (lattice, tile) signature; concurrent first requests for one plan
// compile it exactly once. Measure throughput against a running daemon
// with the load generator: go run ./cmd/bench -load http://localhost:8370.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"tilingsched/internal/service"
)

// newHandler assembles the daemon's full HTTP wiring — registry, batch
// engine, wire layer — from its scalar knobs. Split from main so the
// end-to-end tests drive exactly what the binary serves via httptest.
func newHandler(cache, maxBatch, maxWindow int) http.Handler {
	return service.NewServer(service.NewRegistry(cache), service.ServerOptions{
		MaxBatch:  maxBatch,
		MaxWindow: maxWindow,
	})
}

func main() {
	addr := flag.String("addr", ":8370", "listen address")
	cache := flag.Int("cache", 256, "plan cache capacity (compiled plans)")
	maxBatch := flag.Int("max-batch", 0, "max points per explicit batch (0 = default)")
	maxWindow := flag.Int("max-window", 0, "max points per window shorthand (0 = default)")
	flag.Parse()

	handler := newHandler(*cache, *maxBatch, *maxWindow)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	log.Printf("latticed: serving on %s (plan cache %d)", *addr, *cache)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("latticed: %v", err)
	}
	log.Printf("latticed: shut down")
}
