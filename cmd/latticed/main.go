// Command latticed serves tiling schedules over HTTP: compile a plan
// once, answer batches of SlotOf / MayBroadcast queries with O(1)
// integer arithmetic per point, and churn dynamic deployment sessions
// with bounded-disruption rescheduling (internal/service +
// internal/dynamic).
//
// Usage:
//
//	go run ./cmd/latticed [-addr :8370] [-cache 256] [-max-batch N] [-max-window N]
//	                      [-sessions 16] [-debug]
//
// Endpoints:
//
//	POST /v1/plan               {"plan":{"tile":{"name":"cross:2:1"}}}
//	POST /v1/slots:batch        {"plan":{...},"points":[[3,4],[0,0]]}
//	                            {"plan":{...},"window":{"lo":[-4,-4],"hi":[4,4]}}
//	POST /v1/maybroadcast:batch {"plan":{...},"points":[[3,4]],"t":12345}
//	POST /v1/plan:mutate        {"plan":{...},"window":{...},"events":[{"op":"leave","p":[0,0]}]}
//	GET  /healthz
//	GET  /debug/pprof/          CPU/heap/goroutine profiles (opt-in: -debug)
//	GET  /debug/vars            expvar: registry hit rate, batch sizes,
//	                            mutation counts under "latticed" (opt-in:
//	                            -debug; profiles cost CPU and leak
//	                            internals, so keep the plane off on
//	                            untrusted networks)
//
// Compiled plans are cached in an LRU keyed by the canonical
// (lattice, tile) signature; concurrent first requests for one plan
// compile it exactly once. Dynamic sessions are keyed by
// signature + window and versioned by an epoch, so clients track churn
// through delta responses. Measure throughput against a running daemon
// with the load generator: go run ./cmd/bench -load http://localhost:8370.
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"tilingsched/internal/service"
)

// statsSource is the server whose counters /debug/vars reports. expvar
// registration is process-global and permanent, so the handler registers
// one Func (publishOnce) that always reads the current server — tests
// that build several handlers observe the latest.
var (
	statsSource atomic.Pointer[service.Server]
	publishOnce sync.Once
)

// newHandler assembles the daemon's full HTTP wiring — registry, batch
// engine, dynamic sessions, wire layer, and (when debug is set) the
// pprof/expvar instrumentation plane — from its scalar knobs. Split from
// main so the end-to-end tests drive exactly what the binary serves via
// httptest.
func newHandler(cache, maxBatch, maxWindow, sessions int, debug bool) http.Handler {
	srv := service.NewServer(service.NewRegistry(cache), service.ServerOptions{
		MaxBatch:    maxBatch,
		MaxWindow:   maxWindow,
		MaxSessions: sessions,
	})
	if !debug {
		return srv
	}
	statsSource.Store(srv)
	publishOnce.Do(func() {
		expvar.Publish("latticed", expvar.Func(func() any {
			if s := statsSource.Load(); s != nil {
				return s.Snapshot()
			}
			return nil
		}))
	})
	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

func main() {
	addr := flag.String("addr", ":8370", "listen address")
	cache := flag.Int("cache", 256, "plan cache capacity (compiled plans)")
	maxBatch := flag.Int("max-batch", 0, "max points per explicit batch and events per mutate (0 = default)")
	maxWindow := flag.Int("max-window", 0, "max points per window shorthand or session window (0 = default)")
	sessions := flag.Int("sessions", 0, "max live dynamic deployment sessions (0 = default)")
	debug := flag.Bool("debug", false, "serve /debug/pprof and /debug/vars (keep off on untrusted networks)")
	flag.Parse()

	handler := newHandler(*cache, *maxBatch, *maxWindow, *sessions, *debug)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = srv.Shutdown(shutdownCtx)
	}()

	log.Printf("latticed: serving on %s (plan cache %d)", *addr, *cache)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("latticed: %v", err)
	}
	log.Printf("latticed: shut down")
}
