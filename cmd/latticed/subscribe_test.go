package main

// Push-plane restart end-to-end (DESIGN.md §13): a subscriber that was
// streaming from a daemon with -data must be able to reconnect after a
// daemon restart and resume from its last applied epoch via WAL replay
// — and when the WAL tail was torn by the crash, the resume must come
// back as a full resync instead of a replayed history, leaving the
// subscriber's copy correct either way.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/service"
)

const subPlanA = `{"plan":{"tile":{"name":"cross:2:1"}},"window":{"lo":[0,0],"hi":[4,4]},`

// subscribeTo opens a JSON push stream against a running daemon.
func subscribeTo(t *testing.T, client *http.Client, url string, epoch *uint64) (*service.SubscribeStream, *http.Response, context.CancelFunc) {
	t.Helper()
	body := `{"plan":{"tile":{"name":"cross:2:1"}},"window":{"lo":[0,0],"hi":[4,4]}`
	if epoch != nil {
		body += fmt.Sprintf(`,"epoch":%d`, *epoch)
	}
	body += `}`
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", url+"/v1/plan:subscribe", bytes.NewReader([]byte(body)))
	if err != nil {
		cancel()
		t.Fatalf("building subscribe request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		cancel()
		t.Fatalf("POST subscribe: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		cancel()
		t.Fatalf("subscribe status %d", resp.StatusCode)
	}
	st, err := service.OpenSubscribeStream(resp.Body, resp.Header.Get("Content-Type"))
	if err != nil {
		resp.Body.Close()
		cancel()
		t.Fatalf("opening stream: %v", err)
	}
	return st, resp, cancel
}

// applyTo folds one stream delta into a key→slot copy.
func applyTo(copyMap map[string]int, d service.SubscribeDelta) {
	if d.Full {
		clear(copyMap)
	}
	for _, ch := range d.Changed {
		if ch.Slot < 0 {
			delete(copyMap, lattice.Point(ch.P).Key())
		} else {
			copyMap[lattice.Point(ch.P).Key()] = ch.Slot
		}
	}
}

// checkAgainstResync compares a subscriber copy with the daemon's
// authoritative full resync.
func checkAgainstResync(t *testing.T, client *http.Client, url string, copyMap map[string]int) {
	t.Helper()
	full := mutate(t, client, url, subPlanA+`"full":true}`)
	if len(full.Changed) != len(copyMap) {
		t.Fatalf("copy has %d sensors, resync has %d", len(copyMap), len(full.Changed))
	}
	for _, ch := range full.Changed {
		if copyMap[lattice.Point(ch.P).Key()] != ch.Slot {
			t.Fatalf("copy diverged at %v", ch.P)
		}
	}
}

// TestRestartResumesSubscriber is the push plane's restart e2e: a
// subscriber streams deltas from a daemon with -data, the daemon dies
// without a graceful flush, and the subscriber reconnects at its last
// epoch against the restarted daemon — which must replay the gap from
// the WAL, not answer a resync. A second crash with a torn WAL tail
// then forces the opposite: the truncated history cannot cover the
// subscriber's epoch, so the resume must open with a full resync — and
// both roads end with the copy byte-equal to the daemon's state.
func TestRestartResumesSubscriber(t *testing.T) {
	dir := t.TempDir()
	logf := func(string, ...any) {}
	opts := daemonOptions{cache: 8, data: dir, logf: logf}

	h1, _, err := newDaemon(opts)
	if err != nil {
		t.Fatalf("newDaemon: %v", err)
	}
	ts1 := httptest.NewServer(h1)
	client := ts1.Client()

	st, resp, cancel := subscribeTo(t, client, ts1.URL, nil)
	copyMap := map[string]int{}
	opening, err := st.Next()
	if err != nil || !opening.Full {
		t.Fatalf("opening resync: %+v err %v", opening, err)
	}
	applyTo(copyMap, opening)

	// Churn to epoch 5; the subscriber applies the first 3 deltas, then
	// disconnects (a client crash) while 4 and 5 land WAL-only.
	for i := 0; i < 5; i++ {
		mutate(t, client, ts1.URL, subPlanA+fmt.Sprintf(`"events":[{"op":"join","p":[%d,0]}]}`, 6+i))
	}
	var last uint64
	for last < 3 {
		d, err := st.Next()
		if err != nil {
			t.Fatalf("streaming: %v", err)
		}
		applyTo(copyMap, d)
		last = d.Epoch
	}
	resp.Body.Close()
	cancel()

	// Daemon crash: no FlushSessions — the WAL alone carries epochs 1–5.
	ts1.Close()

	h2, _, err := newDaemon(opts)
	if err != nil {
		t.Fatalf("newDaemon (restart): %v", err)
	}
	ts2 := httptest.NewServer(h2)
	client = ts2.Client()

	st, resp, cancel = subscribeTo(t, client, ts2.URL, &last)
	if st.Hello().Epoch != 5 {
		t.Fatalf("restarted daemon at epoch %d, want 5", st.Hello().Epoch)
	}
	// The resume must be a WAL replay: per-epoch deltas 4 and 5, no Full.
	for want := uint64(4); want <= 5; want++ {
		d, err := st.Next()
		if err != nil {
			t.Fatalf("catch-up: %v", err)
		}
		if d.Full || d.Epoch != want {
			t.Fatalf("catch-up delta full=%v epoch=%d, want WAL replay of %d", d.Full, d.Epoch, want)
		}
		applyTo(copyMap, d)
		last = d.Epoch
	}
	checkAgainstResync(t, client, ts2.URL, copyMap)

	// Live streaming works across the restart too.
	mutate(t, client, ts2.URL, subPlanA+`"events":[{"op":"leave","p":[1,1]}]}`)
	d, err := st.Next()
	if err != nil || d.Epoch != 6 {
		t.Fatalf("post-restart delta %+v err %v", d, err)
	}
	applyTo(copyMap, d)
	last = d.Epoch
	resp.Body.Close()
	cancel()

	// Second crash, this time tearing the WAL tail: the daemon dies
	// mid-append and the last record is half on disk.
	ts2.Close()
	wals, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("WAL files %v (err %v)", wals, err)
	}
	info, err := os.Stat(wals[0])
	if err != nil {
		t.Fatalf("stat WAL: %v", err)
	}
	if err := os.Truncate(wals[0], info.Size()-3); err != nil {
		t.Fatalf("tearing WAL tail: %v", err)
	}

	h3, _, err := newDaemon(opts)
	if err != nil {
		t.Fatalf("newDaemon (torn tail): %v", err)
	}
	ts3 := httptest.NewServer(h3)
	defer ts3.Close()
	client = ts3.Client()

	// The torn record (epoch 6) was truncated away: the daemon restored
	// at epoch 5, and the subscriber's epoch 6 is now the future. The
	// resume MUST come back as a full resync, and the copy must match
	// the daemon's (rewound) state afterwards.
	st, resp, cancel = subscribeTo(t, client, ts3.URL, &last)
	defer cancel()
	defer resp.Body.Close()
	if st.Hello().Epoch != 5 {
		t.Fatalf("torn-tail daemon at epoch %d, want 5", st.Hello().Epoch)
	}
	d, err = st.Next()
	if err != nil {
		t.Fatalf("torn-tail resume: %v", err)
	}
	if !d.Full || d.Epoch != 5 {
		t.Fatalf("torn-tail resume full=%v epoch=%d, want a full resync at 5", d.Full, d.Epoch)
	}
	applyTo(copyMap, d)
	checkAgainstResync(t, client, ts3.URL, copyMap)
}

// TestSubscribeSurvivesConnectionLoss pins the subscriber-visible side
// of a daemon dying under it: the dropped connection surfaces as a
// transport error (not a hang, and not mistaken for an orderly Bye),
// the server releases the subscriber slot, and the shutdown flush still
// runs cleanly afterwards.
func TestSubscribeSurvivesConnectionLoss(t *testing.T) {
	dir := t.TempDir()
	opts := daemonOptions{cache: 8, data: dir, logf: func(string, ...any) {}}
	h, svc, err := newDaemon(opts)
	if err != nil {
		t.Fatalf("newDaemon: %v", err)
	}
	ts := httptest.NewServer(h)
	defer ts.Close()
	client := ts.Client()
	st, resp, cancel := subscribeTo(t, client, ts.URL, nil)
	defer cancel()
	defer resp.Body.Close()
	if _, err := st.Next(); err != nil {
		t.Fatalf("opening resync: %v", err)
	}
	mutate(t, client, ts.URL, subPlanA+`"events":[{"op":"leave","p":[2,2]}]}`)
	if d, err := st.Next(); err != nil || d.Epoch != 1 {
		t.Fatalf("live delta %+v err %v", d, err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := st.Next()
		done <- err
	}()
	ts.CloseClientConnections()
	if err := <-done; err == nil || errors.Is(err, service.ErrStreamEnded) {
		t.Fatalf("connection loss surfaced as %v, want a transport error", err)
	}
	if n := svc.FlushSessions(); n != 1 {
		t.Fatalf("flushed %d sessions, want 1", n)
	}
}
