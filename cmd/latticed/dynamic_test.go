package main

// End-to-end coverage of the dynamic-deployment plane: the mutate
// endpoint's full client workflow (churn, epoch tracking, delta
// application, conflict + resync) and the debug instrumentation
// endpoints, driven over real HTTP against exactly what main serves.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tilingsched/internal/service"
)

// TestMutateRoundTrip simulates a delta-tracking client: establish a
// session, churn it, apply every delta to a local schedule copy, and
// check the local copy stays consistent with a full resync — without
// ever re-downloading slots in between.
func TestMutateRoundTrip(t *testing.T) {
	ts := httptest.NewServer(newHandler(daemonOptions{cache: 8}))
	defer ts.Close()
	client := ts.Client()

	const plan = `{"tile":{"name":"cross:2:1"}}`
	const window = `{"lo":[0,0],"hi":[4,4]}`
	mutate := func(body string) (service.MutateResponse, int) {
		t.Helper()
		resp, raw := postJSON(t, client, ts.URL+"/v1/plan:mutate", body)
		var mr service.MutateResponse
		if err := json.Unmarshal(raw, &mr); err != nil {
			t.Fatalf("mutate response %s: %v", raw, err)
		}
		return mr, resp.StatusCode
	}

	// Bootstrap: full snapshot of the fresh session (25 sensors, 5 slots).
	local := map[string]int{}
	key := func(p []int) string { return fmt.Sprintf("%d,%d", p[0], p[1]) }
	mr, status := mutate(`{"plan":` + plan + `,"window":` + window + `,"full":true}`)
	if status != http.StatusOK || mr.Epoch != 0 || mr.M != 5 || mr.Alive != 25 {
		t.Fatalf("bootstrap: status=%d %+v", status, mr)
	}
	for _, ch := range mr.Changed {
		local[key(ch.P)] = ch.Slot
	}
	if len(local) != 25 {
		t.Fatalf("bootstrap snapshot has %d sensors", len(local))
	}
	epoch := mr.Epoch

	// Churn: leave, fail, an out-of-window join, a move — tracking deltas.
	steps := []string{
		`{"events":[{"op":"leave","p":[2,2]}]}`,
		`{"events":[{"op":"fail","p":[0,0]},{"op":"join","p":[5,2]}]}`,
		`{"events":[{"op":"move","p":[4,4],"to":[6,6]}]}`,
		`{"events":[{"op":"join","p":[2,2]}]}`,
	}
	for _, evs := range steps {
		body := fmt.Sprintf(`{"plan":%s,"window":%s,"epoch":%d,%s`, plan, window, epoch, evs[1:])
		mr, status = mutate(body)
		if status != http.StatusOK {
			t.Fatalf("mutate %s: status %d (%+v)", evs, status, mr)
		}
		if mr.Epoch != epoch+1 {
			t.Fatalf("epoch %d after %s, want %d", mr.Epoch, evs, epoch+1)
		}
		epoch = mr.Epoch
		for _, ch := range mr.Changed {
			if ch.Slot < 0 {
				delete(local, key(ch.P))
			} else {
				local[key(ch.P)] = ch.Slot
			}
		}
	}
	if len(local) != int(mr.Alive) {
		t.Fatalf("local copy has %d sensors, server says %d", len(local), mr.Alive)
	}

	// Stale epoch: a client that missed a delta gets 409 + current epoch.
	mr, status = mutate(`{"plan":` + plan + `,"window":` + window +
		`,"epoch":0,"events":[{"op":"leave","p":[1,1]}]}`)
	if status != http.StatusConflict || mr.Epoch != epoch || mr.Error == "" {
		t.Fatalf("stale epoch: status=%d %+v", status, mr)
	}

	// Resync: the full snapshot must agree with the tracked local copy.
	mr, status = mutate(fmt.Sprintf(`{"plan":%s,"window":%s,"epoch":%d,"full":true}`, plan, window, epoch))
	if status != http.StatusOK {
		t.Fatalf("resync: status %d", status)
	}
	if len(mr.Changed) != len(local) {
		t.Fatalf("resync has %d sensors, local %d", len(mr.Changed), len(local))
	}
	for _, ch := range mr.Changed {
		if got, ok := local[key(ch.P)]; !ok || got != ch.Slot {
			t.Fatalf("delta tracking diverged at %v: local=%d,%v server=%d", ch.P, got, ok, ch.Slot)
		}
	}

	// The churned schedule stays collision-free: no two conflicting live
	// sensors (L1 distance ≤ 2 for radius-1 crosses) share a slot.
	at := map[string]int{}
	for _, ch := range mr.Changed {
		at[key(ch.P)] = ch.Slot
	}
	for _, ch := range mr.Changed {
		x, y := ch.P[0], ch.P[1]
		for dx := -2; dx <= 2; dx++ {
			for dy := -2; dy <= 2; dy++ {
				if dx == 0 && dy == 0 || abs(dx)+abs(dy) > 2 {
					continue
				}
				if s, ok := at[fmt.Sprintf("%d,%d", x+dx, y+dy)]; ok && s == ch.Slot {
					t.Fatalf("conflicting live sensors (%d,%d) and (%d,%d) share slot %d",
						x, y, x+dx, y+dy, ch.Slot)
				}
			}
		}
	}

	// Bad events over the wire: occupied join is a 400 with an error
	// body; the decode-level margin bound is a 413.
	if _, status = mutate(`{"plan":` + plan + `,"window":` + window +
		`,"events":[{"op":"join","p":[1,1]}]}`); status != http.StatusBadRequest {
		t.Fatalf("occupied join: status %d", status)
	}
	if _, status = mutate(`{"plan":` + plan + `,"window":` + window +
		`,"events":[{"op":"join","p":[500,500]}]}`); status != http.StatusRequestEntityTooLarge {
		t.Fatalf("far join: status %d", status)
	}

	// Health reflects the mutation traffic.
	hresp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer hresp.Body.Close()
	var hr service.HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&hr); err != nil {
		t.Fatalf("health response: %v", err)
	}
	tr := hr.Traffic
	if tr.Sessions.Sessions != 1 || tr.Sessions.Mutations < 4 || tr.Sessions.EpochConflicts != 1 {
		t.Fatalf("session stats %+v", tr.Sessions)
	}
	if tr.MutateRequests < 7 {
		t.Fatalf("mutate requests %d", tr.MutateRequests)
	}
}

// TestDebugEndpoints checks the opt-in debug plane: pprof and
// /debug/vars respond when -debug is on, and the vars page carries
// this handler's live counters — including the plan registry's real
// hit/miss numbers — under "latticed".
func TestDebugEndpoints(t *testing.T) {
	ts := httptest.NewServer(newHandler(daemonOptions{cache: 8, debug: true}))
	defer ts.Close()
	client := ts.Client()

	// Generate some traffic so the counters are non-zero: the first
	// batch compiles the plan (a registry miss), the second hits the
	// cache.
	const body = `{"plan":{"tile":{"name":"cross:2:1"}},"points":[[0,0],[1,2],[3,4]]}`
	for i := 0; i < 2; i++ {
		if resp, raw := postJSON(t, client, ts.URL+"/v1/slots:batch", body); resp.StatusCode != http.StatusOK {
			t.Fatalf("slots batch: %d %s", resp.StatusCode, raw)
		}
	}

	for _, path := range []string{"/debug/pprof/", "/debug/pprof/cmdline", "/debug/vars"} {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
	}

	resp, err := client.Get(ts.URL + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars: %v", err)
	}
	defer resp.Body.Close()
	var vars struct {
		Latticed service.ServerStats `json:"latticed"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&vars); err != nil {
		t.Fatalf("decoding vars page: %v", err)
	}
	if vars.Latticed.BatchRequests < 2 || vars.Latticed.BatchPoints < 6 || vars.Latticed.Plans < 1 {
		t.Fatalf("vars counters %+v", vars.Latticed)
	}
	// The registry stats are this handler's real cache traffic, not a
	// process-global approximation: one miss compiled the plan, the
	// second request hit.
	reg := vars.Latticed.Registry
	if reg.Misses != 1 || reg.Compilations != 1 || reg.Hits < 1 || reg.Evictions != 0 {
		t.Fatalf("registry stats %+v", reg)
	}

	// The service endpoints still work through the debug mux.
	if resp, raw := postJSON(t, client, ts.URL+"/v1/plan", `{"plan":{"tile":{"name":"cross:2:1"}}}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("plan through debug mux: %d %s", resp.StatusCode, raw)
	}

	// Off switch: no debug endpoints without the flag.
	plain := httptest.NewServer(newHandler(daemonOptions{cache: 8}))
	defer plain.Close()
	presp, err := plain.Client().Get(plain.URL + "/debug/vars")
	if err != nil {
		t.Fatalf("GET /debug/vars (plain): %v", err)
	}
	presp.Body.Close()
	if presp.StatusCode == http.StatusOK {
		t.Error("debug endpoints served without -debug")
	}
	if !strings.HasPrefix(plain.URL, "http") {
		t.Fatal("unreachable")
	}
}
