package main

// Restart end-to-end: the daemon built over a -data directory must
// restore every mutation session — zero lost sessions, exact epochs,
// post-churn assignments — and expose the persistence telemetry on
// /metrics with histogram buckets in numeric le order.

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"tilingsched/internal/service"
)

// mutate posts one mutate body and decodes the response.
func mutate(t *testing.T, client *http.Client, url, body string) service.MutateResponse {
	t.Helper()
	resp, raw := postJSON(t, client, url+"/v1/plan:mutate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status %d: %s", resp.StatusCode, raw)
	}
	var mr service.MutateResponse
	if err := json.Unmarshal(raw, &mr); err != nil {
		t.Fatalf("mutate response: %v", err)
	}
	return mr
}

// TestRestartRestoresSessions is ISSUE 8's acceptance e2e: mutate two
// sessions to distinct epochs, tear the daemon down, rebuild it over
// the same data directory, and resync both sessions — state and epoch
// must survive the restart.
func TestRestartRestoresSessions(t *testing.T) {
	dir := t.TempDir()
	logf := func(string, ...any) {} // keep restore chatter out of test output
	opts := daemonOptions{cache: 8, data: dir, logf: logf}

	h1, svc1, err := newDaemon(opts)
	if err != nil {
		t.Fatalf("newDaemon: %v", err)
	}
	ts1 := httptest.NewServer(h1)
	client := ts1.Client()

	const planA = `{"plan":{"tile":{"name":"cross:2:1"}},"window":{"lo":[0,0],"hi":[4,4]},`
	const planB = `{"plan":{"tile":{"name":"cross:2:1"}},"window":{"lo":[-2,-2],"hi":[2,2]},`
	mutate(t, client, ts1.URL, planA+`"events":[{"op":"leave","p":[1,1]}]}`)
	mutate(t, client, ts1.URL, planA+`"events":[{"op":"join","p":[6,2]}]}`)
	mutate(t, client, ts1.URL, planB+`"events":[{"op":"fail","p":[0,0]}]}`)
	wantA := mutate(t, client, ts1.URL, planA+`"full":true}`)
	wantB := mutate(t, client, ts1.URL, planB+`"full":true}`)
	if wantA.Epoch != 2 || wantB.Epoch != 1 {
		t.Fatalf("pre-restart epochs A=%d B=%d", wantA.Epoch, wantB.Epoch)
	}

	// Tear down: close the listener, then flush dirty sessions exactly as
	// main does after ListenAndServe returns.
	ts1.Close()
	if n := svc1.FlushSessions(); n != 2 {
		t.Fatalf("shutdown flushed %d sessions, want 2", n)
	}

	// Rebuild over the same directory. Restore-on-start must load both
	// sessions before traffic: /healthz reports them live immediately.
	h2, _, err := newDaemon(opts)
	if err != nil {
		t.Fatalf("newDaemon (restart): %v", err)
	}
	ts2 := httptest.NewServer(h2)
	defer ts2.Close()
	client = ts2.Client()

	var health service.HealthResponse
	hresp, err := client.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatalf("health response: %v", err)
	}
	hresp.Body.Close()
	if live := health.Traffic.Sessions.Sessions; live != 2 {
		t.Fatalf("restart lost sessions: %d live, want 2", live)
	}
	if restored := health.Traffic.Sessions.Restored; restored != 2 {
		t.Fatalf("restore-on-start restored %d sessions, want 2", restored)
	}

	gotA := mutate(t, client, ts2.URL, planA+`"full":true,"epoch":2}`)
	gotB := mutate(t, client, ts2.URL, planB+`"full":true,"epoch":1}`)
	for _, pair := range []struct {
		name      string
		want, got service.MutateResponse
	}{{"A", wantA, gotA}, {"B", wantB, gotB}} {
		if pair.got.Epoch != pair.want.Epoch || pair.got.Alive != pair.want.Alive {
			t.Fatalf("session %s: epoch/alive %d/%d, want %d/%d",
				pair.name, pair.got.Epoch, pair.got.Alive, pair.want.Epoch, pair.want.Alive)
		}
		want := map[string]int{}
		for _, ch := range pair.want.Changed {
			want[pointKey(ch.P)] = ch.Slot
		}
		if len(pair.got.Changed) != len(want) {
			t.Fatalf("session %s: %d sensors after restart, want %d",
				pair.name, len(pair.got.Changed), len(want))
		}
		for _, ch := range pair.got.Changed {
			if slot, ok := want[pointKey(ch.P)]; !ok || slot != ch.Slot {
				t.Fatalf("session %s: sensor %v slot %d, want %d", pair.name, ch.P, ch.Slot, slot)
			}
		}
	}

	// The restored daemon keeps mutating and persisting: one more batch,
	// one more restart, epoch advances by exactly one.
	mutate(t, client, ts2.URL, planA+`"events":[{"op":"leave","p":[6,2]}]}`)
	ts2.Close()
	h3, _, err := newDaemon(opts)
	if err != nil {
		t.Fatalf("newDaemon (second restart): %v", err)
	}
	ts3 := httptest.NewServer(h3)
	defer ts3.Close()
	if got := mutate(t, ts3.Client(), ts3.URL, planA+`"full":true}`); got.Epoch != 3 {
		t.Fatalf("second restart epoch %d, want 3", got.Epoch)
	}

	// /metrics exposes the persistence plane, and every histogram's
	// buckets are in numeric le order with +Inf last.
	mresp, err := ts3.Client().Get(ts3.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	text := string(raw)
	for _, fam := range []string{
		"latticed_sessions_restored_total",
		"latticed_wal_appends_total",
		"latticed_wal_fsyncs_total",
		"latticed_snapshots_total",
		"latticed_wal_torn_tails_total",
		"latticed_wal_replayed_events_total",
		"latticed_wal_append_ns",
		"latticed_snapshot_ns",
	} {
		if !strings.Contains(text, "# TYPE "+fam+" ") {
			t.Errorf("/metrics missing family %s", fam)
		}
	}
	checkBucketOrder(t, text)
}

func pointKey(p []int) string {
	parts := make([]string, len(p))
	for i, c := range p {
		parts[i] = strconv.Itoa(c)
	}
	return strings.Join(parts, ",")
}

var bucketLine = regexp.MustCompile(`^(.*)le="([^"]+)"(.*) `)

// checkBucketOrder scans an exposition for `_bucket` series and asserts
// each label group's le values are strictly increasing with +Inf last.
func checkBucketOrder(t *testing.T, text string) {
	t.Helper()
	type state struct {
		last    uint64
		sawInf  bool
		buckets int
	}
	groups := map[string]*state{}
	for _, line := range strings.Split(text, "\n") {
		if !strings.Contains(line, `le="`) {
			continue
		}
		m := bucketLine.FindStringSubmatch(line)
		if m == nil {
			t.Fatalf("unparseable bucket line %q", line)
		}
		key := m[1] + m[3]
		g, ok := groups[key]
		if !ok {
			g = &state{}
			groups[key] = g
		}
		g.buckets++
		if g.sawInf {
			t.Fatalf("bucket after +Inf in group %q: %q", key, line)
		}
		if m[2] == "+Inf" {
			g.sawInf = true
			continue
		}
		le, err := strconv.ParseUint(m[2], 10, 64)
		if err != nil {
			t.Fatalf("bad le in %q: %v", line, err)
		}
		if g.buckets > 1 && le <= g.last {
			t.Fatalf("le %d out of order in group %q (previous %d)", le, key, g.last)
		}
		g.last = le
	}
	if len(groups) == 0 {
		t.Fatal("no histogram buckets in exposition")
	}
	for key, g := range groups {
		if !g.sawInf {
			t.Errorf("group %q has no +Inf bucket", key)
		}
	}
}
