package main

// Introspection-plane end-to-end (DESIGN.md §14): a daemon under
// scripted churn must expose the complete mutate→WAL→publish→deliver
// span tree at /debug/traces, and /statusz must show the session with
// its subscriber and lag watermarks that return to zero once the churn
// stops and the subscriber drains.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"tilingsched/internal/service"
)

// TestStatuszAndTracesUnderChurn runs the scripted-churn acceptance
// drive: subscribe, mutate through several epochs, drain, then read
// both introspection endpoints.
func TestStatuszAndTracesUnderChurn(t *testing.T) {
	handler := newHandler(daemonOptions{
		cache:       8,
		traceSample: 1, // trace every request so the span tree is deterministic
		data:        t.TempDir(),
		logf:        t.Logf,
	})
	ts := httptest.NewServer(handler)
	defer ts.Close()
	client := ts.Client()

	stream, resp, cancel := subscribeTo(t, client, ts.URL, nil)
	defer cancel()
	defer resp.Body.Close()

	const epochs = 4
	for i := 0; i < epochs; i++ {
		mutate(t, client, ts.URL, subPlanA+
			fmt.Sprintf(`"events":[{"op":"leave","p":[%d,%d]}]}`, i, i))
	}
	// Drain: one full-resync opener (nil epoch) plus the live deltas.
	seen := 0
	for seen < epochs {
		d, err := stream.Next()
		if err != nil {
			t.Fatalf("stream ended early: %v", err)
		}
		if !d.Full {
			seen++
		}
	}

	// The churn has stopped and the subscriber is drained: /statusz
	// must show the session at its final epoch with zero lag.
	var sz service.StatuszResponse
	getJSON(t, client, ts.URL+"/statusz", &sz)
	if len(sz.Sessions) != 1 {
		t.Fatalf("statusz sessions = %+v, want 1", sz.Sessions)
	}
	row := sz.Sessions[0]
	if row.Epoch != epochs || row.Subscribers != 1 {
		t.Fatalf("statusz row %+v, want epoch %d with 1 subscriber", row, epochs)
	}
	if row.LagEpochsMax != 0 || row.QueueSum != 0 || sz.LagEpochsMax != 0 {
		t.Fatalf("lag watermarks nonzero after churn stopped: %+v", row)
	}
	if row.WALBytes == 0 || row.WALEvents != epochs {
		t.Fatalf("WAL introspection %d bytes / %d events, want %d events", row.WALBytes, row.WALEvents, epochs)
	}
	if sz.SubscribersLive != 1 || sz.TraceSampleEvery != 1 || sz.TracesFinished == 0 {
		t.Fatalf("statusz globals %+v", sz)
	}
	if len(sz.PropagationExemplars) == 0 {
		t.Fatal("no propagation exemplars despite sampled deliveries")
	}

	// /debug/traces must hold a complete span tree for a mutate.
	var dump struct {
		Traces []struct {
			Kind  string `json:"kind"`
			Spans []struct {
				Name  string `json:"name"`
				Epoch int64  `json:"epoch"`
			} `json:"spans"`
		} `json:"traces"`
	}
	getJSON(t, client, ts.URL+"/debug/traces", &dump)
	complete := false
	for _, tr := range dump.Traces {
		if tr.Kind != "mutate" {
			continue
		}
		have := map[string]bool{}
		for _, sp := range tr.Spans {
			have[sp.Name] = true
		}
		if have["overlay-apply"] && have["wal-append"] && have["hub-publish"] && have["deliver"] {
			complete = true
			break
		}
	}
	if !complete {
		t.Fatalf("no complete mutate span tree at /debug/traces: %+v", dump.Traces)
	}

	// The HTML face renders without error.
	htmlResp, err := client.Get(ts.URL + "/statusz?format=html")
	if err != nil {
		t.Fatal(err)
	}
	defer htmlResp.Body.Close()
	if ct := htmlResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("html statusz content type %q", ct)
	}

	// The lag gauges ride the same collection on /metrics.
	mResp, err := client.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	raw, err := io.ReadAll(mResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(raw)
	for _, want := range []string{
		`latticed_subscriber_lag_epochs{q="max"} 0`,
		"# TYPE latticed_propagation_ns histogram",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// getJSON fetches url and decodes its JSON body into out.
func getJSON(t *testing.T, client *http.Client, url string, out any) {
	t.Helper()
	resp, err := client.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("decoding %s: %v", url, err)
	}
}
