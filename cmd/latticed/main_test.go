package main

// End-to-end coverage of the daemon's handler wiring: newHandler is
// exactly what main serves, so driving it through httptest exercises the
// full registry → engine → wire path over real HTTP.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"tilingsched/internal/service"
)

func postJSON(t *testing.T, client *http.Client, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := client.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading %s response: %v", url, err)
	}
	return resp, buf.Bytes()
}

// TestPlanSlotsRoundTrip compiles a plan over HTTP, queries a window of
// slots, and checks the schedule semantics end to end: every slot is in
// range, conflicting sensors (intersecting cross neighborhoods) never
// share a slot, and an explicit point batch agrees with the window
// shorthand point for point.
func TestPlanSlotsRoundTrip(t *testing.T) {
	ts := httptest.NewServer(newHandler(daemonOptions{cache: 8}))
	defer ts.Close()
	client := ts.Client()

	const plan = `{"tile":{"name":"cross:2:1"}}`
	resp, body := postJSON(t, client, ts.URL+"/v1/plan", `{"plan":`+plan+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/plan status %d: %s", resp.StatusCode, body)
	}
	var pr service.PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("plan response: %v", err)
	}
	if pr.Slots != 5 || pr.Signature == "" || len(pr.Tile) != 5 {
		t.Fatalf("plan response off: slots=%d sig=%q |tile|=%d", pr.Slots, pr.Signature, len(pr.Tile))
	}

	// Window shorthand: [-3,3]² in lexicographic order.
	resp, body = postJSON(t, client, ts.URL+"/v1/slots:batch",
		`{"plan":`+plan+`,"window":{"lo":[-3,-3],"hi":[3,3]}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/v1/slots:batch status %d: %s", resp.StatusCode, body)
	}
	var sr service.SlotsResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatalf("slots response: %v", err)
	}
	side := 7
	if sr.M != 5 || len(sr.Slots) != side*side {
		t.Fatalf("slots response off: m=%d n=%d", sr.M, len(sr.Slots))
	}
	at := func(x, y int) int32 { return sr.Slots[(x+3)*side+(y+3)] }
	for x := -3; x <= 3; x++ {
		for y := -3; y <= 3; y++ {
			if s := at(x, y); s < 0 || s >= 5 {
				t.Fatalf("slot(%d,%d) = %d out of range", x, y, s)
			}
		}
	}
	// Two radius-1 crosses conflict iff their centers are within L1
	// distance 2 — a collision-free schedule must separate them.
	for x := -3; x <= 3; x++ {
		for y := -3; y <= 3; y++ {
			for dx := -2; dx <= 2; dx++ {
				for dy := -2; dy <= 2; dy++ {
					if dx == 0 && dy == 0 || abs(dx)+abs(dy) > 2 {
						continue
					}
					nx, ny := x+dx, y+dy
					if nx < -3 || nx > 3 || ny < -3 || ny > 3 {
						continue
					}
					if at(x, y) == at(nx, ny) {
						t.Fatalf("conflicting sensors (%d,%d) and (%d,%d) share slot %d",
							x, y, nx, ny, at(x, y))
					}
				}
			}
		}
	}

	// Explicit batch agrees with the window shorthand.
	resp, body = postJSON(t, client, ts.URL+"/v1/slots:batch",
		`{"plan":`+plan+`,"points":[[0,0],[1,0],[-3,3],[2,-2]]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explicit batch status %d: %s", resp.StatusCode, body)
	}
	var er service.SlotsResponse
	if err := json.Unmarshal(body, &er); err != nil {
		t.Fatalf("explicit batch response: %v", err)
	}
	wantPts := [][2]int{{0, 0}, {1, 0}, {-3, 3}, {2, -2}}
	for i, p := range wantPts {
		if er.Slots[i] != at(p[0], p[1]) {
			t.Fatalf("point %v slot %d ≠ window slot %d", p, er.Slots[i], at(p[0], p[1]))
		}
	}

	// maybroadcast is slots compared against t mod m.
	const tQuery = 12347
	resp, body = postJSON(t, client, ts.URL+"/v1/maybroadcast:batch",
		fmt.Sprintf(`{"plan":%s,"points":[[0,0],[1,0],[0,1],[2,0],[1,1]],"t":%d}`, plan, tQuery))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("maybroadcast status %d: %s", resp.StatusCode, body)
	}
	var mr service.MayResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatalf("maybroadcast response: %v", err)
	}
	mayPts := [][2]int{{0, 0}, {1, 0}, {0, 1}, {2, 0}, {1, 1}}
	granted := 0
	for i, p := range mayPts {
		want := int64(at(p[0], p[1])) == int64(tQuery)%int64(sr.M)
		if mr.May[i] != want {
			t.Fatalf("may[%v] = %v, want %v", p, mr.May[i], want)
		}
		if mr.May[i] {
			granted++
		}
	}
	if granted == 0 {
		t.Fatal("no sensor granted at t: slot coverage broken")
	}

	// Health reflects the compiled plan.
	hresp, err := client.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	defer hresp.Body.Close()
	var hr service.HealthResponse
	if err := json.NewDecoder(hresp.Body).Decode(&hr); err != nil {
		t.Fatalf("health response: %v", err)
	}
	if !hr.OK || hr.Plans < 1 {
		t.Fatalf("health off: ok=%v plans=%d", hr.OK, hr.Plans)
	}
}

// TestHandlerErrorWiring drives the failure paths end to end: status
// codes and JSON error bodies must survive the full HTTP stack.
func TestHandlerErrorWiring(t *testing.T) {
	ts := httptest.NewServer(newHandler(daemonOptions{cache: 4, maxBatch: 3, maxWindow: 25}))
	defer ts.Close()
	client := ts.Client()

	cases := []struct {
		name, url, body string
		wantStatus      int
	}{
		{"malformed json", "/v1/slots:batch", `{"plan":`, http.StatusBadRequest},
		{"neither points nor window", "/v1/slots:batch", `{"plan":{"tile":{"name":"cross:2:1"}}}`, http.StatusBadRequest},
		{"both points and window", "/v1/slots:batch",
			`{"plan":{"tile":{"name":"cross:2:1"}},"points":[[0,0]],"window":{"lo":[0,0],"hi":[1,1]}}`,
			http.StatusBadRequest},
		{"batch over limit", "/v1/slots:batch",
			`{"plan":{"tile":{"name":"cross:2:1"}},"points":[[0,0],[1,0],[0,1],[1,1]]}`,
			http.StatusRequestEntityTooLarge},
		{"window over limit", "/v1/slots:batch",
			`{"plan":{"tile":{"name":"cross:2:1"}},"window":{"lo":[-3,-3],"hi":[3,3]}}`,
			http.StatusRequestEntityTooLarge},
		{"unknown tile", "/v1/plan", `{"plan":{"tile":{"name":"nonagon"}}}`, http.StatusBadRequest},
		{"inexact tile", "/v1/plan", `{"plan":{"tile":{"points":[[0,0],[2,0]]}}}`, http.StatusUnprocessableEntity},
	}
	for _, c := range cases {
		resp, body := postJSON(t, client, ts.URL+c.url, c.body)
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s: status %d, want %d (%s)", c.name, resp.StatusCode, c.wantStatus, body)
			continue
		}
		var er service.ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: error body %q not an ErrorResponse", c.name, body)
		}
	}

	// Method wiring: GET on a POST route is 405.
	resp, err := client.Get(ts.URL + "/v1/plan")
	if err != nil {
		t.Fatalf("GET /v1/plan: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan status %d, want 405", resp.StatusCode)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
