package main

// End-to-end coverage of the telemetry plane: GET /metrics must emit
// valid Prometheus text exposition whose numbers match the traffic the
// handler actually served — per-endpoint × codec request counts and
// latency histograms, plan-registry hit/miss counters, dynamic-session
// and repair metrics, the per-plan traffic sketch, and the Go runtime
// families appended by the daemon. A second test scrapes concurrently
// with live mutate churn to pin the weakly-consistent snapshot
// contract (counters never go backwards between scrapes).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"

	"tilingsched/internal/obs"
	"tilingsched/internal/service"
	"tilingsched/internal/service/binwire"
)

// parseMetrics parses a Prometheus text exposition page into series
// (name with label block → value) and family types, failing the test
// on any malformed or duplicate line — the byte-level contract check.
func parseMetrics(t *testing.T, text string) (map[string]float64, map[string]string) {
	t.Helper()
	values := map[string]float64{}
	types := map[string]string{}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fam, kind, found := strings.Cut(rest, " ")
			if !found {
				t.Fatalf("malformed TYPE line %q", line)
			}
			if prev, dup := types[fam]; dup && prev != kind {
				t.Fatalf("family %q declared both %q and %q", fam, prev, kind)
			}
			types[fam] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed series line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("series %q: bad value: %v", line, err)
		}
		if _, dup := values[line[:i]]; dup {
			t.Fatalf("duplicate series %q", line[:i])
		}
		values[line[:i]] = v
	}
	return values, types
}

// scrapeMetrics GETs /metrics and parses it.
func scrapeMetrics(t *testing.T, client *http.Client, url string) (map[string]float64, map[string]string) {
	t.Helper()
	resp, err := client.Get(url + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != obs.ContentType {
		t.Fatalf("Content-Type %q, want %q", ct, obs.ContentType)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading /metrics: %v", err)
	}
	return parseMetrics(t, string(raw))
}

// TestMetricsEndpoint drives JSON and binary traffic through every
// instrumented endpoint and asserts the exposition page reports it.
func TestMetricsEndpoint(t *testing.T) {
	ts := httptest.NewServer(newHandler(daemonOptions{cache: 8}))
	defer ts.Close()
	client := ts.Client()

	const plan = `{"tile":{"name":"cross:2:1"}}`

	// Plan compile (registry miss #1) — also learns the signature for
	// the traffic-sketch assertion.
	resp, raw := postJSON(t, client, ts.URL+"/v1/plan", `{"plan":`+plan+`}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan: %d %s", resp.StatusCode, raw)
	}
	var pr service.PlanResponse
	if err := json.Unmarshal(raw, &pr); err != nil || pr.Signature == "" {
		t.Fatalf("plan response %s: %v", raw, err)
	}

	// Two JSON slots batches of 3 points, one JSON may-broadcast.
	const batch = `{"plan":` + plan + `,"points":[[0,0],[1,2],[3,4]]}`
	for i := 0; i < 2; i++ {
		if resp, raw := postJSON(t, client, ts.URL+"/v1/slots:batch", batch); resp.StatusCode != http.StatusOK {
			t.Fatalf("slots: %d %s", resp.StatusCode, raw)
		}
	}
	if resp, raw := postJSON(t, client, ts.URL+"/v1/maybroadcast:batch",
		`{"plan":`+plan+`,"points":[[0,0],[1,2],[3,4]],"t":7}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("may: %d %s", resp.StatusCode, raw)
	}

	// One binary slots batch of 3 points (codec="bin").
	e := binwire.Get()
	service.EncodeBatchBinary(e, service.BatchRequest{
		Plan:   service.PlanSpec{Tile: service.TileSpec{Name: "cross:2:1"}},
		Points: [][]int{{0, 0}, {1, 2}, {3, 4}},
	}, false, "")
	breq, err := http.NewRequest("POST", ts.URL+"/v1/slots:batch", bytes.NewReader(e.Bytes()))
	binwire.Put(e)
	if err != nil {
		t.Fatal(err)
	}
	breq.Header.Set("Content-Type", service.BinaryContentType)
	bresp, err := client.Do(breq)
	if err != nil {
		t.Fatalf("binary slots: %v", err)
	}
	io.Copy(io.Discard, bresp.Body)
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusOK {
		t.Fatalf("binary slots: status %d", bresp.StatusCode)
	}

	// One mutate with a leave event (creates a dynamic session).
	if resp, raw := postJSON(t, client, ts.URL+"/v1/plan:mutate",
		`{"plan":`+plan+`,"window":{"lo":[0,0],"hi":[4,4]},"events":[{"op":"leave","p":[2,2]}]}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d %s", resp.StatusCode, raw)
	}

	// One failing request: an unknown tile name is a 400 on the slots
	// endpoint, which must land in the error counter.
	if resp, _ := postJSON(t, client, ts.URL+"/v1/slots:batch",
		`{"plan":{"tile":{"name":"no-such-tile"}},"points":[[0,0]]}`); resp.StatusCode == http.StatusOK {
		t.Fatal("bogus tile accepted")
	}

	values, types := scrapeMetrics(t, client, ts.URL)

	// Request counters by endpoint × codec.
	wantCounts := map[string]float64{
		`latticed_requests_total{endpoint="plan",codec="json"}`:         1,
		`latticed_requests_total{endpoint="slots",codec="json"}`:        3, // 2 ok + 1 bogus tile
		`latticed_requests_total{endpoint="slots",codec="bin"}`:         1,
		`latticed_requests_total{endpoint="maybroadcast",codec="json"}`: 1,
		`latticed_requests_total{endpoint="mutate",codec="json"}`:       1,
		`latticed_errors_total{endpoint="slots",codec="json"}`:          1,
	}
	for series, want := range wantCounts {
		if got := values[series]; got != want {
			t.Errorf("%s = %v, want %v", series, got, want)
		}
	}
	if types["latticed_requests_total"] != "counter" {
		t.Errorf("latticed_requests_total type %q", types["latticed_requests_total"])
	}

	// Latency histograms per endpoint × codec: count matches requests,
	// +Inf bucket matches count, sum is positive.
	for _, labels := range []string{
		`{endpoint="slots",codec="json"}`,
		`{endpoint="slots",codec="bin"}`,
	} {
		want := wantCounts[`latticed_requests_total`+labels]
		if got := values[`latticed_request_ns_count`+labels]; got != want {
			t.Errorf("latency count%s = %v, want %v", labels, got, want)
		}
		inf := "latticed_request_ns_bucket" + strings.TrimSuffix(labels, "}") + `,le="+Inf"}`
		if got := values[inf]; got != want {
			t.Errorf("%s = %v, want %v", inf, got, want)
		}
		if values[`latticed_request_ns_sum`+labels] <= 0 {
			t.Errorf("latency sum%s not positive", labels)
		}
	}
	if types["latticed_request_ns"] != "histogram" {
		t.Errorf("latticed_request_ns type %q", types["latticed_request_ns"])
	}

	// Batch sizes: 2 JSON slots + 1 may + 1 bin (3 points each) + 1
	// mutate (1 event) = 5 recorded batches, 13 points.
	if got := values["latticed_batch_points_count"]; got != 5 {
		t.Errorf("batch size count = %v, want 5", got)
	}
	if got := values["latticed_batch_points_sum"]; got != 13 {
		t.Errorf("batch size sum = %v, want 13", got)
	}

	// Registry traffic: one compile, everything after it a hit. The
	// bogus tile fails spec resolution before reaching the cache.
	if got := values["latticed_registry_misses_total"]; got != 1 {
		t.Errorf("registry misses = %v, want 1", got)
	}
	if got := values["latticed_registry_compilations_total"]; got != 1 {
		t.Errorf("registry compilations = %v, want 1", got)
	}
	if got := values["latticed_registry_hits_total"]; got < 4 {
		t.Errorf("registry hits = %v, want >= 4", got)
	}
	if got := values["latticed_plans"]; got != 1 {
		t.Errorf("latticed_plans = %v, want 1", got)
	}

	// Dynamic plane: one session, one mutation, one leave event.
	if got := values["latticed_sessions_live"]; got != 1 {
		t.Errorf("sessions live = %v, want 1", got)
	}
	if got := values["latticed_mutations_total"]; got != 1 {
		t.Errorf("mutations = %v, want 1", got)
	}
	if got := values[`latticed_dynamic_events_total{op="leave"}`]; got != 1 {
		t.Errorf("leave events = %v, want 1", got)
	}

	// Per-plan traffic sketch: the compiled plan's signature carries
	// the 13 points answered for it.
	sig := `latticed_plan_points_total{signature="` + pr.Signature + `"}`
	if got := values[sig]; got != 13 {
		t.Errorf("%s = %v, want 13", sig, got)
	}

	// Go runtime families appended by the daemon.
	if values["go_goroutines"] < 1 {
		t.Errorf("go_goroutines = %v", values["go_goroutines"])
	}
	if values["go_memstats_heap_alloc_bytes"] <= 0 {
		t.Errorf("heap alloc = %v", values["go_memstats_heap_alloc_bytes"])
	}
	if types["go_gc_cycles_total"] != "counter" {
		t.Errorf("go_gc_cycles_total type %q", types["go_gc_cycles_total"])
	}
}

// TestMetricsUnderChurn scrapes /metrics concurrently with live mutate
// traffic: every scrape must parse cleanly and the request counter
// must never decrease between scrapes (the weakly-consistent snapshot
// contract), with the final scrape agreeing exactly with the traffic.
func TestMetricsUnderChurn(t *testing.T) {
	ts := httptest.NewServer(newHandler(daemonOptions{cache: 8}))
	defer ts.Close()
	client := ts.Client()

	const workers, rounds = 4, 10
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			p := fmt.Sprintf("[%d,0]", wkr)
			for r := 0; r < rounds; r++ {
				for _, op := range []string{"leave", "join"} {
					body := `{"plan":{"tile":{"name":"cross:2:1"}},"window":{"lo":[0,0],"hi":[9,9]},` +
						`"events":[{"op":"` + op + `","p":` + p + `}]}`
					resp, err := client.Post(ts.URL+"/v1/plan:mutate", "application/json", strings.NewReader(body))
					if err != nil {
						t.Errorf("worker %d: %v", wkr, err)
						return
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						t.Errorf("worker %d: status %d", wkr, resp.StatusCode)
						return
					}
				}
			}
		}(wkr)
	}

	stop := make(chan struct{})
	scraperDone := make(chan struct{})
	go func() {
		defer close(scraperDone)
		var last float64
		for {
			select {
			case <-stop:
				return
			default:
			}
			values, _ := scrapeMetrics(t, client, ts.URL)
			got := values[`latticed_requests_total{endpoint="mutate",codec="json"}`]
			if got < last {
				t.Errorf("mutate counter went backwards: %v after %v", got, last)
				return
			}
			last = got
		}
	}()

	wg.Wait()
	close(stop)
	<-scraperDone

	values, _ := scrapeMetrics(t, client, ts.URL)
	want := float64(workers * rounds * 2)
	if got := values[`latticed_requests_total{endpoint="mutate",codec="json"}`]; got != want {
		t.Fatalf("final mutate requests = %v, want %v", got, want)
	}
	if got := values["latticed_mutation_events_total"]; got != want {
		t.Fatalf("final mutation events = %v, want %v", got, want)
	}
	if got := values[`latticed_dynamic_events_total{op="join"}`]; got != want/2 {
		t.Fatalf("join events = %v, want %v", got, want/2)
	}
}
