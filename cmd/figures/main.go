// Command figures regenerates the paper's Figures 1–5 computationally:
// each figure becomes a verified table (and ASCII art where applicable).
//
// Usage:
//
//	figures           # all figures
//	figures -fig 3    # only Figure 3
package main

import (
	"flag"
	"fmt"
	"os"

	"tilingsched/internal/experiments"
)

func main() {
	fig := flag.Int("fig", 0, "figure number (1-5); 0 runs all")
	flag.Parse()
	runners := map[int]func() (*experiments.Result, error){
		1: experiments.Figure1Lattices,
		2: experiments.Figure2Neighborhoods,
		3: experiments.Figure3Schedule,
		4: experiments.Figure4Voronoi,
		5: experiments.Figure5NonRespectable,
	}
	var order []int
	if *fig == 0 {
		order = []int{1, 2, 3, 4, 5}
	} else if _, ok := runners[*fig]; ok {
		order = []int{*fig}
	} else {
		fmt.Fprintf(os.Stderr, "figures: unknown figure %d (want 1-5)\n", *fig)
		os.Exit(2)
	}
	failed := false
	for _, n := range order {
		r, err := runners[n]()
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: figure %d: %v\n", n, err)
			os.Exit(1)
		}
		fmt.Println(r.Render())
		if !r.Passed() {
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}
