// Package tilingsched reproduces "Scheduling Sensors by Tiling Lattices"
// (Klappenecker, Lee, Welch; PODC 2008 / arXiv:0806.1271): deterministic,
// collision-free, provably optimal periodic broadcast schedules for
// sensors on lattice points, derived from tilings of the lattice by the
// sensors' interference neighborhoods.
//
// The implementation lives under internal/: see internal/core for the
// top-level Plan API, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduced figures and tables. The benchmarks in
// bench_test.go regenerate every figure and derived table of the
// reproduction; scripts/bench.sh (cmd/bench) records them as
// BENCH_<date>.json summaries tracking the performance trajectory.
//
// # Indexing architecture
//
// Every hot path identifies lattice points by dense integers, never by
// strings:
//
//   - Finite regions index through lattice.Window.IndexOf / PointAt, an
//     allocation-free mixed-radix bijection between a window's points and
//     [0, Size()); Window.Each iterates with a reused buffer.
//   - Tilings resolve cosets through a flat residue table of size det(H)
//     indexed by the reduced coset representative (internal/tiling's
//     cosetTable over intmat.ReduceInPlace), so Theorem 1/2 slot
//     assignment is O(1) integer arithmetic with zero allocations.
//   - Simulators, conflict graphs, and explicit schedules hold per-point
//     state in flat []int / []int32 tables addressed by those indexes.
//
// lattice.Point.Key() remains only for cold paths — rendering, canonical
// form signatures, and tests. New code must not introduce string-keyed
// point maps on per-slot or per-lookup paths.
package tilingsched
