// Package tilingsched reproduces "Scheduling Sensors by Tiling Lattices"
// (Klappenecker, Lee, Welch; PODC 2008 / arXiv:0806.1271): deterministic,
// collision-free, provably optimal periodic broadcast schedules for
// sensors on lattice points, derived from tilings of the lattice by the
// sensors' interference neighborhoods.
//
// The implementation lives under internal/: see internal/core for the
// top-level Plan API, DESIGN.md for the system inventory, and
// internal/experiments (DESIGN.md §4) for the reproduced figures and
// tables. README.md is the quickstart. The benchmarks in
// bench_test.go regenerate every figure and derived table of the
// reproduction; scripts/bench.sh (cmd/bench) records them as
// BENCH_<date>.json summaries tracking the performance trajectory.
//
// # Indexing architecture
//
// Every hot path identifies lattice points by dense integers, never by
// strings:
//
//   - Finite regions index through lattice.Window.IndexOf / PointAt, an
//     allocation-free mixed-radix bijection between a window's points and
//     [0, Size()); Window.Each iterates with a reused buffer.
//   - Tilings resolve cosets through a flat residue table of size det(H)
//     indexed by the reduced coset representative (internal/tiling's
//     cosetTable over intmat.ReduceInPlace), so Theorem 1/2 slot
//     assignment is O(1) integer arithmetic with zero allocations.
//   - Simulators, conflict graphs, and explicit schedules hold per-point
//     state in flat []int / []int32 tables addressed by those indexes.
//   - Conflict-graph adjacency is three-mode (DESIGN.md §7–§8):
//     per-vertex bitset rows up to the ~4k-vertex crossover, sorted
//     compressed sparse rows (CSR) above it — built serially below
//     graph.ParallelThreshold and by sharded goroutines above, with a
//     bit-identical frozen CSR either way — and an implicit Periodic
//     mode for translation-periodic deployments that stores only a
//     per-residue-class conflict stencil (O(det(H)·|stencil|) memory)
//     and answers adjacency by translation, reaching million-vertex
//     windows in microseconds. A differential harness
//     (internal/graph/parity_test.go, periodic_test.go,
//     parallel_test.go) pins all modes to a map-of-sets oracle and to
//     shard-count invariance.
//
// lattice.Point.Key() remains only for cold paths — rendering, canonical
// form signatures, and tests. New code must not introduce string-keyed
// point maps on per-slot or per-lookup paths.
//
// # Serving architecture
//
// internal/service turns compiled plans into a serving subsystem
// (DESIGN.md §5), layered as registry → batch engine → wire:
//
//   - The plan registry is an LRU of compiled core.Plan values keyed by
//     the canonical core.Signature, with singleflight compilation:
//     concurrent requests for one signature compile it exactly once.
//   - The batch engine (service.QuerySlots, service.QueryMayBroadcast,
//     and window-shorthand variants) answers point batches through the
//     dense coset tables under a zero-alloc steady-state contract: with
//     a reused destination slice, a batch allocates nothing and each
//     lookup is O(1) integer arithmetic. Plans are immutable, so any
//     number of goroutines may query one plan concurrently.
//   - cmd/latticed exposes the engine over compact JSON/HTTP
//     (/v1/plan, /v1/slots:batch, /v1/maybroadcast:batch, /healthz);
//     cmd/bench -load is the matching load generator, and -debug serves
//     the pprof/debug-vars plane (/debug/pprof, /debug/vars).
//   - The same endpoints also speak a binary wire protocol (DESIGN.md
//     §10), negotiated by Content-Type application/x-lattice-bin:
//     length-prefixed frames over internal/service/binwire varint
//     primitives, delta-encoded point batches, signature handles that
//     skip re-sending plan specs, and streamed chunk-frame responses.
//     One shared handler core keeps both codecs semantically identical
//     (parity tests pin it); the binary path serves 6-10x the JSON
//     codec's lookups/s end to end (BENCH_<date>_wire.json, cmd/bench
//     -wire).
//
// # Telemetry
//
// internal/obs is the stdlib-only telemetry plane (DESIGN.md §11):
// lock-free atomic counters, gauges, and fixed-bucket log2 latency
// histograms (Record is three atomic adds, 0 allocs), a bounded
// space-saving top-K traffic sketch, and Prometheus text exposition
// (v0.0.4) written without any client library. Every service.Server
// carries its own obs.Registry — no process globals — recording
// per-endpoint × codec requests/errors/latency, decode/engine/encode
// phase splits, batch-size and repair-tier distributions, plan-cache
// and session traffic, and per-plan-signature point volume. cmd/latticed
// always serves GET /metrics; -slow-ms samples requests past a
// threshold into the log with their phase split. The instrumentation
// tax is pinned by alloc guards and the instrumented-vs-bare engine
// benchmark (BENCH_<date>_obs.json).
//
// # Dynamic deployments
//
// internal/dynamic opens the churn axis (DESIGN.md §9): real sensor
// fields lose nodes, gain nodes, and duty-cycle, and a schedule that
// must be recompiled on every change wastes both the ~70 ms (100k
// vertices) conflict-graph rebuild and a full recolor's disruption.
//
//   - dynamic.Overlay maintains the conflict graph incrementally over a
//     frozen base graph of any adjacency mode: a tombstone bitset for
//     departures, added vertices for out-of-window joins, and explicit
//     edge patches computed by a graph.SiteScanner probe of the
//     p ± 2·reach bounding box (570 ns per join/leave round trip at
//     100k vertices vs 73 ms for the rebuild it replaces;
//     BENCH_<date>_dynamic.json). Compaction re-freezes the overlay
//     when the delta exceeds a threshold.
//   - dynamic.Mutator repairs the slot assignment with bounded
//     disruption: smallest-free-slot joins, then damage-region
//     DSATUR-repair (the joining vertex plus its saturated neighbors,
//     exterior colors fixed), then — only when the color budget is
//     provably exhausted — a full recolor. Every Apply reports a
//     Disruption and the changed slot assignments as deltas.
//   - The service layer exposes sessions over POST /v1/plan:mutate,
//     keyed by core.Signature + window and versioned by an epoch, so
//     latticed clients track churn from delta responses without
//     re-downloading schedules. Sessions also push (DESIGN.md §13):
//     POST /v1/plan:subscribe streams one delta per applied batch in
//     either codec, catching stale subscribers up from the session WAL
//     when -data covers the gap and answering a full resync otherwise,
//     while slow consumers are dropped with a terminal "resync
//     required" element rather than ever blocking the mutate path. A
//     differential subscriber oracle pins every streamed copy
//     byte-identical to a full resync across reconnects, evictions,
//     and daemon restarts; wsn.Config.Churn scripts the same
//     events through the simulator (the tiling schedule needs no
//     rescheduling under churn — condition T2 is subset-closed), and
//     examples/churn walks the whole story. A differential oracle
//     (internal/dynamic/oracle_test.go) pins every mutation sequence
//     edge-identical and VerifySchedule-valid against from-scratch
//     rebuilds across all three base modes.
package tilingsched
