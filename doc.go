// Package tilingsched reproduces "Scheduling Sensors by Tiling Lattices"
// (Klappenecker, Lee, Welch; PODC 2008 / arXiv:0806.1271): deterministic,
// collision-free, provably optimal periodic broadcast schedules for
// sensors on lattice points, derived from tilings of the lattice by the
// sensors' interference neighborhoods.
//
// The implementation lives under internal/: see internal/core for the
// top-level Plan API, DESIGN.md for the system inventory, and
// EXPERIMENTS.md for the reproduced figures and tables. The benchmarks in
// bench_test.go regenerate every figure and derived table of the
// reproduction.
package tilingsched
