// Package mobile implements the paper's Conclusions extension to mobile
// sensors: slots are assigned to locations rather than sensors. Each
// lattice point p carries the Theorem 1 slot of p; a sensor s inside the
// open Voronoi region of p may send at time t exactly when
//
//	t ≡ slot(p) (mod m), and
//	the interference range of s fits within the tile of p (the translate
//	t' + K containing p, where K is the union of Voronoi cells of N).
//
// Because tiles with equal slots are disjoint translates (condition T2),
// two simultaneous senders have ranges inside disjoint regions, so the
// discipline is collision-free for any motion — which the simulator here
// verifies empirically under random-waypoint mobility.
//
// The implementation works on the square lattice Z², whose Voronoi cells
// are unit squares centered on the integer points.
package mobile

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"tilingsched/internal/lattice"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

// ErrMobile indicates an invalid mobile-simulation configuration.
var ErrMobile = errors.New("mobile: invalid configuration")

// NearestLatticePoint returns the lattice point whose open Voronoi square
// contains (x, y); ok is false when the position lies on a cell boundary
// (the paper requires the open region, so boundary sensors stay silent).
func NearestLatticePoint(x, y float64) (lattice.Point, bool) {
	rx, ry := math.Round(x), math.Round(y)
	if math.Abs(x-rx) >= 0.5 || math.Abs(y-ry) >= 0.5 {
		return nil, false
	}
	return lattice.Pt(int(rx), int(ry)), true
}

// FitsInTile reports whether the closed disk of the given radius around
// center lies within the tile of p — the union of unit squares centered on
// the points of t' + N, where t' is the tiling translate covering p. The
// test is conservative: every unit square touching the disk must belong to
// the tile, which implies containment (and errs toward silence on exact
// boundary contact, never toward collision).
func FitsInTile(lt *tiling.LatticeTiling, p lattice.Point, center [2]float64, radius float64) (bool, error) {
	if radius < 0 {
		return false, fmt.Errorf("%w: negative radius %v", ErrMobile, radius)
	}
	tr, err := lt.TranslateOf(p)
	if err != nil {
		return false, err
	}
	region := lt.Tile().TranslateSet(tr)
	// Candidate cells: integer points whose unit square could touch the
	// disk.
	minX := int(math.Floor(center[0] - radius - 0.5))
	maxX := int(math.Ceil(center[0] + radius + 0.5))
	minY := int(math.Floor(center[1] - radius - 0.5))
	maxY := int(math.Ceil(center[1] + radius + 0.5))
	for qx := minX; qx <= maxX; qx++ {
		for qy := minY; qy <= maxY; qy++ {
			// Distance from disk center to the closed unit square
			// centered at (qx, qy).
			dx := math.Max(math.Abs(center[0]-float64(qx))-0.5, 0)
			dy := math.Max(math.Abs(center[1]-float64(qy))-0.5, 0)
			if dx*dx+dy*dy <= radius*radius {
				if !region.Contains(lattice.Pt(qx, qy)) {
					return false, nil
				}
			}
		}
	}
	return true, nil
}

// Config parameterizes a mobile-sensor simulation.
type Config struct {
	// Schedule assigns slots to locations (Theorem 1 over Z²).
	Schedule *schedule.Theorem1
	// ArenaLo/ArenaHi bound the agents' roaming rectangle.
	ArenaLo, ArenaHi [2]float64
	// NumAgents is the number of mobile sensors.
	NumAgents int
	// Radius is each sensor's interference radius (Euclidean).
	Radius float64
	// Speed is the per-slot movement distance (random waypoint).
	Speed float64
	// Slots is the simulation length.
	Slots int64
	// Seed feeds the deterministic random source.
	Seed int64
}

// Metrics aggregates a mobile run.
type Metrics struct {
	Slots        int64
	Agents       int
	Sends        int64 // successful send opportunities taken
	UnfitMuted   int64 // muted: range did not fit the tile
	BoundaryMute int64 // muted: sensor on a Voronoi boundary
	SharedMuted  int64 // muted: region occupied by >1 sensor
	Collisions   int64 // simultaneous senders with overlapping ranges (must be 0)
}

// Utilization is sends per agent per slot.
func (m Metrics) Utilization() float64 {
	if m.Slots == 0 || m.Agents == 0 {
		return 0
	}
	return float64(m.Sends) / (float64(m.Slots) * float64(m.Agents))
}

type agent struct {
	x, y   float64
	tx, ty float64 // waypoint target
}

// Run simulates random-waypoint agents under the location-slot discipline
// and reports activity plus any range overlaps between simultaneous
// senders (a correct implementation reports zero).
func Run(cfg Config) (Metrics, error) {
	if cfg.Schedule == nil {
		return Metrics{}, fmt.Errorf("%w: nil schedule", ErrMobile)
	}
	if cfg.NumAgents <= 0 || cfg.Slots <= 0 {
		return Metrics{}, fmt.Errorf("%w: %d agents, %d slots", ErrMobile, cfg.NumAgents, cfg.Slots)
	}
	if cfg.ArenaHi[0] <= cfg.ArenaLo[0] || cfg.ArenaHi[1] <= cfg.ArenaLo[1] {
		return Metrics{}, fmt.Errorf("%w: empty arena", ErrMobile)
	}
	if cfg.Radius <= 0 || cfg.Speed < 0 {
		return Metrics{}, fmt.Errorf("%w: radius %v, speed %v", ErrMobile, cfg.Radius, cfg.Speed)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	uniform := func(lo, hi float64) float64 { return lo + rng.Float64()*(hi-lo) }
	agents := make([]agent, cfg.NumAgents)
	for i := range agents {
		agents[i] = agent{
			x:  uniform(cfg.ArenaLo[0], cfg.ArenaHi[0]),
			y:  uniform(cfg.ArenaLo[1], cfg.ArenaHi[1]),
			tx: uniform(cfg.ArenaLo[0], cfg.ArenaHi[0]),
			ty: uniform(cfg.ArenaLo[1], cfg.ArenaHi[1]),
		}
	}
	lt := cfg.Schedule.Tiling()
	m := Metrics{Slots: cfg.Slots, Agents: cfg.NumAgents}
	period := int64(cfg.Schedule.Slots())
	// Every Voronoi region an agent can occupy rounds to a lattice point
	// inside the arena's integer hull (±1 for rounding at the edges), so
	// occupancy counts live in a dense per-region table indexed by
	// Window.IndexOf rather than a string-keyed map rebuilt each slot.
	regions, err := lattice.NewWindow(
		lattice.Pt(int(math.Floor(cfg.ArenaLo[0]))-1, int(math.Floor(cfg.ArenaLo[1]))-1),
		lattice.Pt(int(math.Ceil(cfg.ArenaHi[0]))+1, int(math.Ceil(cfg.ArenaHi[1]))+1),
	)
	if err != nil {
		return Metrics{}, err
	}
	regionsSize, err := regions.SizeChecked()
	if err != nil {
		return Metrics{}, fmt.Errorf("%w: arena too large: %v", ErrMobile, err)
	}
	// Dense counts are fastest but scale with arena area, not agent
	// count; a huge sparse arena falls back to an index-keyed map so
	// memory stays O(agents).
	const maxDenseOccupancy = 1 << 22
	var occDense []int32
	var occSparse map[int]int32
	if regionsSize <= maxDenseOccupancy {
		occDense = make([]int32, regionsSize)
	} else {
		occSparse = make(map[int]int32, cfg.NumAgents)
	}
	occupancyAt := func(ri int) int32 {
		if occDense != nil {
			return occDense[ri]
		}
		return occSparse[ri]
	}
	touched := make([]int, 0, cfg.NumAgents)
	regionIdx := make([]int, len(agents))
	type sender struct{ x, y float64 }
	for slot := int64(0); slot < cfg.Slots; slot++ {
		// Move agents toward their waypoints.
		for i := range agents {
			a := &agents[i]
			dx, dy := a.tx-a.x, a.ty-a.y
			d := math.Hypot(dx, dy)
			if d <= cfg.Speed {
				a.x, a.y = a.tx, a.ty
				a.tx = uniform(cfg.ArenaLo[0], cfg.ArenaHi[0])
				a.ty = uniform(cfg.ArenaLo[1], cfg.ArenaHi[1])
			} else if d > 0 {
				a.x += dx / d * cfg.Speed
				a.y += dy / d * cfg.Speed
			}
		}
		// Count occupancy per Voronoi region.
		regionOf := make([]lattice.Point, len(agents))
		for i := range agents {
			regionIdx[i] = -1
			p, ok := NearestLatticePoint(agents[i].x, agents[i].y)
			if !ok {
				regionOf[i] = nil
				continue
			}
			regionOf[i] = p
			ri, ok := regions.IndexOf(p)
			if !ok {
				continue // agent escaped the arena hull; treat as boundary
			}
			regionIdx[i] = ri
			if occDense != nil {
				if occDense[ri] == 0 {
					touched = append(touched, ri)
				}
				occDense[ri]++
			} else {
				occSparse[ri]++
			}
		}
		// Sending decisions.
		var senders []sender
		for i := range agents {
			p := regionOf[i]
			if p == nil || regionIdx[i] < 0 {
				m.BoundaryMute++
				continue
			}
			k, err := cfg.Schedule.SlotOf(p)
			if err != nil {
				return Metrics{}, err
			}
			if slot%period != int64(k) {
				continue // not this location's turn
			}
			if occupancyAt(regionIdx[i]) > 1 {
				// The paper assumes one sensor per region; when motion
				// violates the assumption, the sensors stay silent
				// rather than risk a collision.
				m.SharedMuted++
				continue
			}
			fits, err := FitsInTile(lt, p, [2]float64{agents[i].x, agents[i].y}, cfg.Radius)
			if err != nil {
				return Metrics{}, err
			}
			if !fits {
				m.UnfitMuted++
				continue
			}
			m.Sends++
			senders = append(senders, sender{x: agents[i].x, y: agents[i].y})
		}
		// Collision audit: simultaneous senders with intersecting disks.
		for i := 0; i < len(senders); i++ {
			for j := i + 1; j < len(senders); j++ {
				d := math.Hypot(senders[i].x-senders[j].x, senders[i].y-senders[j].y)
				if d < 2*cfg.Radius {
					m.Collisions++
				}
			}
		}
		// Reset only the touched occupancy cells for the next slot.
		for _, ri := range touched {
			occDense[ri] = 0
		}
		touched = touched[:0]
		if occSparse != nil {
			clear(occSparse)
		}
	}
	return m, nil
}
