package mobile

import (
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

func mooreSchedule(t *testing.T) *schedule.Theorem1 {
	t.Helper()
	lt, ok := tiling.FindLatticeTiling(prototile.ChebyshevBall(2, 1))
	if !ok {
		t.Fatal("no tiling for Moore ball")
	}
	return schedule.FromLatticeTiling(lt)
}

func TestNearestLatticePoint(t *testing.T) {
	p, ok := NearestLatticePoint(1.2, -0.7)
	if !ok || !p.Equal(lattice.Pt(1, -1)) {
		t.Errorf("NearestLatticePoint = %v, %v", p, ok)
	}
	if _, ok := NearestLatticePoint(0.5, 0); ok {
		t.Error("boundary x accepted as open-region member")
	}
	if _, ok := NearestLatticePoint(0, -1.5); ok {
		t.Error("boundary y accepted as open-region member")
	}
}

func TestFitsInTile(t *testing.T) {
	s := mooreSchedule(t)
	lt := s.Tiling()
	// The tile of the origin is a 3×3 block of unit squares; a disk of
	// radius 0.8 centered at the block's center fits.
	tr, err := lt.TranslateOf(lattice.Pt(0, 0))
	if err != nil {
		t.Fatalf("TranslateOf: %v", err)
	}
	// Center of the 3×3 region: translate + (1,1) is its middle cell
	// for the Chebyshev ball anchored at its lexicographic min... the
	// ball spans [-1,1]², so the region center is the translate itself
	// shifted by the ball's center (0,0).
	cx := float64(tr[0])
	cy := float64(tr[1])
	fits, err := FitsInTile(lt, tr, [2]float64{cx, cy}, 0.8)
	if err != nil {
		t.Fatalf("FitsInTile: %v", err)
	}
	if !fits {
		t.Error("disk at region center should fit")
	}
	// A disk poking past the region must not fit.
	fits, err = FitsInTile(lt, tr, [2]float64{cx + 1.4, cy}, 0.8)
	if err != nil {
		t.Fatalf("FitsInTile: %v", err)
	}
	if fits {
		t.Error("protruding disk reported as fitting")
	}
	if _, err := FitsInTile(lt, tr, [2]float64{0, 0}, -1); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestMobileRunNeverCollides(t *testing.T) {
	// The Conclusions claim: the location-slot rule is collision-free
	// for mobile sensors, regardless of motion.
	s := mooreSchedule(t)
	m, err := Run(Config{
		Schedule:  s,
		ArenaLo:   [2]float64{-6, -6},
		ArenaHi:   [2]float64{6, 6},
		NumAgents: 12,
		Radius:    0.9,
		Speed:     0.35,
		Slots:     800,
		Seed:      42,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Collisions != 0 {
		t.Errorf("collisions = %d, want 0", m.Collisions)
	}
	if m.Sends == 0 {
		t.Error("no agent ever sent (over-conservative rule or broken schedule)")
	}
	if u := m.Utilization(); u <= 0 || u >= 1 {
		t.Errorf("utilization = %v, want within (0, 1)", u)
	}
}

func TestMobileRunDenseAgentsStillSafe(t *testing.T) {
	// Crowded arena: the shared-region mute must kick in and safety must
	// hold.
	s := mooreSchedule(t)
	m, err := Run(Config{
		Schedule:  s,
		ArenaLo:   [2]float64{-2, -2},
		ArenaHi:   [2]float64{2, 2},
		NumAgents: 30,
		Radius:    0.9,
		Speed:     0.5,
		Slots:     400,
		Seed:      7,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m.Collisions != 0 {
		t.Errorf("collisions = %d, want 0", m.Collisions)
	}
	if m.SharedMuted == 0 {
		t.Error("dense arena never muted shared regions (suspicious)")
	}
}

func TestMobileRunDeterministic(t *testing.T) {
	s := mooreSchedule(t)
	cfg := Config{
		Schedule:  s,
		ArenaLo:   [2]float64{-4, -4},
		ArenaHi:   [2]float64{4, 4},
		NumAgents: 8,
		Radius:    0.8,
		Speed:     0.3,
		Slots:     200,
		Seed:      5,
	}
	m1, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	m2, err := Run(cfg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if m1 != m2 {
		t.Errorf("same seed, different metrics:\n%+v\n%+v", m1, m2)
	}
}

func TestMobileConfigValidation(t *testing.T) {
	s := mooreSchedule(t)
	good := Config{
		Schedule: s, ArenaLo: [2]float64{0, 0}, ArenaHi: [2]float64{4, 4},
		NumAgents: 2, Radius: 0.5, Speed: 0.1, Slots: 10,
	}
	bad := good
	bad.Schedule = nil
	if _, err := Run(bad); err == nil {
		t.Error("nil schedule accepted")
	}
	bad = good
	bad.NumAgents = 0
	if _, err := Run(bad); err == nil {
		t.Error("0 agents accepted")
	}
	bad = good
	bad.ArenaHi = [2]float64{0, 4}
	if _, err := Run(bad); err == nil {
		t.Error("empty arena accepted")
	}
	bad = good
	bad.Radius = 0
	if _, err := Run(bad); err == nil {
		t.Error("0 radius accepted")
	}
}

func TestMetricsZeroSafety(t *testing.T) {
	var m Metrics
	if m.Utilization() != 0 {
		t.Error("zero metrics utilization should be 0")
	}
}
