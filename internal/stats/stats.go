// Package stats provides the small statistics and table-rendering helpers
// used by the experiment harness and benchmarks.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// StdDev returns the sample standard deviation (0 for fewer than two
// values).
func StdDev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return math.Sqrt(s / float64(len(xs)-1))
}

// MinMax returns the extrema (zeros for empty input).
func MinMax(xs []float64) (min, max float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) using linear
// interpolation on a copy of the data.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Table renders fixed-width text tables for experiment output.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.rows = append(t.rows, row)
}

// Rows returns the row count.
func (t *Table) Rows() int { return len(t.rows) }

// Render lays the table out with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i, w := range widths {
		sep[i] = strings.Repeat("-", w)
	}
	writeRow(sep)
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}

// F formats a float with 3 decimals for table cells.
func F(v float64) string { return fmt.Sprintf("%.3f", v) }

// I formats an integer for table cells.
func I(v int64) string { return fmt.Sprintf("%d", v) }
