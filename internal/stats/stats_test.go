package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("mean of empty should be 0")
	}
	if got := Mean([]float64{1, 2, 3}); got != 2 {
		t.Errorf("Mean = %v, want 2", got)
	}
}

func TestStdDev(t *testing.T) {
	if StdDev([]float64{5}) != 0 {
		t.Error("stddev of singleton should be 0")
	}
	got := StdDev([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	want := 2.138089935299395 // sample stddev
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 7, 0})
	if min != -1 || max != 7 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
	min, max = MinMax(nil)
	if min != 0 || max != 0 {
		t.Error("empty MinMax should be 0, 0")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ p, want float64 }{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {-5, 1}, {110, 5},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestMeanBounds(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e9 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		m := Mean(xs)
		min, max := MinMax(xs)
		return m >= min-1e-9 && m <= max+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta-long", "22")
	tb.AddRow("gamma") // short row padded
	out := tb.Render()
	if !strings.Contains(out, "Demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "beta-long") {
		t.Error("row missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Title + header + separator + 3 rows.
	if len(lines) != 6 {
		t.Errorf("rendered %d lines, want 6:\n%s", len(lines), out)
	}
	if tb.Rows() != 3 {
		t.Errorf("Rows = %d, want 3", tb.Rows())
	}
}

func TestFormatters(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Errorf("F = %q", F(1.23456))
	}
	if I(42) != "42" {
		t.Errorf("I = %q", I(42))
	}
}
