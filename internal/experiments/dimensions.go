package experiments

import (
	"fmt"

	"tilingsched/internal/graph"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/stats"
	"tilingsched/internal/tiling"
)

// TableDimensions is derived table E7: the paper formulates its results
// "for arbitrary lattices in arbitrary dimensions, since the proofs are
// not more complicated". We verify that in code: the (2d+1)-point cross
// (Lee sphere of radius 1) and the 3^d-point Chebyshev ball tile Z^d for
// d = 1, 2, 3, and the Theorem 1 schedule is collision-free with exactly
// |N| slots in every dimension. The cross tilings realize perfect Lee
// codes (Golomb's classic Σ i·x_i ≡ 0 (mod 2d+1) construction is among
// the discovered periods).
func TableDimensions() (*Result, error) {
	r := &Result{ID: "E7", Title: "E7 — arbitrary dimensions: crosses and cubes in Z^d"}
	t := stats.NewTable("", "dim", "prototile", "|N|", "slots", "clique", "collision-free", "period")
	for d := 1; d <= 3; d++ {
		for _, ti := range []*prototile.Tile{
			prototile.Cross(d, 1),
			prototile.ChebyshevBall(d, 1),
		} {
			lt, ok := tiling.FindLatticeTiling(ti)
			if !ok {
				r.failf("dim %d: no tiling for %s", d, ti.Name())
				continue
			}
			s := schedule.FromLatticeTiling(lt)
			dep := s.Deployment()
			// Window big enough for N+N in each dimension but small
			// enough to keep the d=3 conflict graph tractable.
			w := lattice.CenteredWindow(d, 2*dep.Reach())
			colErr := schedule.VerifyCollisionFree(s, dep, w)
			if colErr != nil {
				r.failf("dim %d %s: %v", d, ti.Name(), colErr)
			}
			g, _, err := graph.ConflictGraph(dep, w)
			if err != nil {
				return nil, err
			}
			clique := graph.CliqueLowerBound(g)
			if clique < ti.Size() {
				r.failf("dim %d %s: clique %d < |N| %d", d, ti.Name(), clique, ti.Size())
			}
			if s.Slots() != ti.Size() {
				r.failf("dim %d %s: slots %d ≠ |N| %d", d, ti.Name(), s.Slots(), ti.Size())
			}
			t.AddRow(stats.I(int64(d)), ti.Name(), stats.I(int64(ti.Size())),
				stats.I(int64(s.Slots())), stats.I(int64(clique)),
				fmt.Sprintf("%v", colErr == nil), lt.Period().String())
		}
	}
	// The paper's schedule matches the known Lee-sphere slot counts:
	// 3, 5, 7 for d = 1, 2, 3.
	r.find("cross slots by dimension", "3, 5, 7")
	r.find("cube slots by dimension", "3, 9, 27")
	r.Table = t
	return r, nil
}
