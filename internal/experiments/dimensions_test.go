package experiments

import "testing"

func TestTableDimensions(t *testing.T) {
	r, err := TableDimensions()
	if err != nil {
		t.Fatalf("TableDimensions: %v", err)
	}
	if !r.Passed() {
		t.Errorf("E7 failed:\n%s", r.Render())
	}
}
