package experiments

import (
	"fmt"
	"time"

	"tilingsched/internal/graph"
	"tilingsched/internal/intmat"
	"tilingsched/internal/lattice"
	"tilingsched/internal/schedule"
	"tilingsched/internal/stats"
	"tilingsched/internal/tiling"
)

// TableD1Implicit is derived table E11: implicit periodic conflict
// graphs for the Section 4 deployment D1. The respectable Moore tiling's
// deployment is periodic modulo its 4×4 torus, so the conflict graph of
// any window compresses to 16 per-class stencils — the experiment
// harness stops paying explicit-build costs (the open ROADMAP item from
// the million-sensor PR). The table grows the window and records both
// build times; the checks pin the implicit graph edge-identical to the
// explicit build and verify the Theorem 2 schedule against the implicit
// graph with graph.VerifySchedule.
func TableD1Implicit() (*Result, error) {
	r := &Result{ID: "E11", Title: "E11 — D1 implicit graphs: per-class stencils vs explicit builds (Moore torus tiling)"}
	tt, err := RespectableMooreTiling()
	if err != nil {
		return nil, err
	}
	dep := schedule.NewD1(tt)
	s, err := schedule.FromTorusTiling(tt)
	if err != nil {
		return nil, err
	}
	dims := tt.Dims()
	res, err := tiling.NewResidues(intmat.MustFromRows([][]int64{
		{int64(dims[0]), 0},
		{0, int64(dims[1])},
	}))
	if err != nil {
		return nil, err
	}
	r.find("residue classes", "%d", res.Classes())
	t := stats.NewTable("", "window", "sensors", "edges", "explicit µs", "implicit µs", "T2 verified")
	for _, half := range []int{6, 12, 24, 48} {
		w := lattice.CenteredWindow(2, half)
		start := time.Now()
		gE, _, err := graph.ConflictGraph(dep, w)
		if err != nil {
			return nil, err
		}
		explicitUS := float64(time.Since(start).Microseconds())
		start = time.Now()
		gP, err := graph.PeriodicConflictGraph(dep, res, w)
		if err != nil {
			return nil, err
		}
		implicitUS := float64(time.Since(start).Microseconds())
		// Edge parity: same count, and every explicit row answered
		// identically by the stencils.
		edges := gE.Edges()
		if pe := gP.Edges(); pe != edges {
			r.failf("half %d: implicit has %d edges, explicit %d", half, pe, edges)
		}
		for u := 0; u < gE.N(); u++ {
			for _, v := range gE.Neighbors(u) {
				if v > u && !gP.HasEdge(u, v) {
					r.failf("half %d: explicit edge {%d,%d} missing from stencils", half, u, v)
				}
			}
		}
		// Theorem 2 over the implicit graph: no edge ever materialized.
		verr := graph.VerifySchedule(gP, w, s)
		if verr != nil {
			r.failf("half %d: Theorem 2 schedule rejected on the implicit graph: %v", half, verr)
		}
		t.AddRow(fmt.Sprintf("%dx%d", 2*half+1, 2*half+1), stats.I(int64(w.Size())),
			stats.I(int64(edges)), stats.F(explicitUS), stats.F(implicitUS),
			fmt.Sprintf("%v", verr == nil))
	}
	r.Table = t
	if res.Classes() != 16 {
		r.failf("4×4 torus should have 16 residue classes, got %d", res.Classes())
	}
	r.find("slots (Theorem 2)", "%d", s.Slots())
	return r, nil
}
