package experiments

import (
	"fmt"

	"tilingsched/internal/graph"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/stats"
	"tilingsched/internal/tiling"
	"tilingsched/internal/wsn"
)

// Theorem1Verification checks Theorem 1 end to end on a catalog of exact
// prototiles: the tiling schedule uses |N| slots, is collision-free, and
// matches the exact distance-2 chromatic number of a window containing a
// translate of N+N.
func Theorem1Verification() (*Result, error) {
	r := &Result{ID: "T1", Title: "Theorem 1 — collision-freeness and optimality"}
	t := stats.NewTable("", "prototile", "|N|", "slots", "chromatic", "proven", "collision-free")
	tiles := []*prototile.Tile{
		prototile.Cross(2, 1),
		prototile.ChebyshevBall(2, 1),
		prototile.Directional(),
		prototile.MustTetromino("S"),
		prototile.MustTetromino("T"),
		prototile.LTromino(),
	}
	for _, ti := range tiles {
		lt, ok := tiling.FindLatticeTiling(ti)
		if !ok {
			r.failf("%s: no tiling found", ti.Name())
			continue
		}
		s := schedule.FromLatticeTiling(lt)
		dep := s.Deployment()
		w := lattice.CenteredWindow(2, 2*dep.Reach()+2)
		colErr := schedule.VerifyCollisionFree(s, dep, w)
		if colErr != nil {
			r.failf("%s: %v", ti.Name(), colErr)
		}
		g, _, err := graph.ConflictGraph(dep, w)
		if err != nil {
			return nil, err
		}
		res := graph.ChromaticNumber(g, 500_000)
		if res.Proven && res.NumColors != ti.Size() {
			r.failf("%s: chromatic %d ≠ |N| %d", ti.Name(), res.NumColors, ti.Size())
		}
		if !w.ContainsTranslateOf(ti.NPlusN()) {
			r.failf("%s: verification window misses N+N", ti.Name())
		}
		t.AddRow(ti.Name(), stats.I(int64(ti.Size())), stats.I(int64(s.Slots())),
			stats.I(int64(res.NumColors)), fmt.Sprintf("%v", res.Proven),
			fmt.Sprintf("%v", colErr == nil))
	}
	r.Table = t
	return r, nil
}

// RespectableMooreTiling builds the hand-verified respectable tiling used
// by the Theorem 2 experiment: one 3×3 Chebyshev ball, one 5-point cross,
// and two single points exactly covering the 4×4 torus, with
// N1 = Moore ⊇ cross ⊇ point.
func RespectableMooreTiling() (*tiling.TorusTiling, error) {
	moore := prototile.ChebyshevBall(2, 1)
	cross := prototile.Cross(2, 1)
	mono, err := prototile.New("mono", lattice.Pt(0, 0))
	if err != nil {
		return nil, err
	}
	return tiling.NewTorusTiling([]int{4, 4},
		[]*prototile.Tile{moore, cross, mono},
		[]tiling.Placement{
			{TileIndex: 0, Offset: lattice.Pt(1, 1)}, // covers [0,2]²
			{TileIndex: 1, Offset: lattice.Pt(3, 3)}, // wraps over both edges
			{TileIndex: 2, Offset: lattice.Pt(1, 3)},
			{TileIndex: 2, Offset: lattice.Pt(3, 1)},
		})
}

// Theorem2Verification checks Theorem 2 on a respectable three-prototile
// tiling (Moore ⊇ cross ⊇ point): the schedule uses |N1| = 9 slots, is
// collision-free under deployment D1, and the per-class optimum confirms 9
// is optimal.
func Theorem2Verification() (*Result, error) {
	r := &Result{ID: "T2", Title: "Theorem 2 — respectable multi-prototile schedule"}
	tt, err := RespectableMooreTiling()
	if err != nil {
		return nil, err
	}
	if !tt.Respectable() {
		r.failf("tiling not respectable")
	}
	s, err := schedule.FromTorusTiling(tt)
	if err != nil {
		return nil, err
	}
	if s.Slots() != 9 {
		r.failf("slots = %d, want |N1| = 9", s.Slots())
	}
	w := lattice.CenteredWindow(2, 6)
	if err := schedule.VerifyCollisionFree(s, s.Deployment(), w); err != nil {
		r.failf("Theorem 2 schedule collides: %v", err)
	}
	pc, err := schedule.CompilePatternConstraints(tt)
	if err != nil {
		return nil, err
	}
	m, _, err := pc.MinSlots(16)
	if err != nil {
		return nil, err
	}
	if m != 9 {
		r.failf("per-class optimum = %d, want 9 (optimality of Theorem 2)", m)
	}
	// Drive the same schedule through the simulator: zero collisions.
	sim, err := wsn.Run(wsn.Config{
		Window:     lattice.CenteredWindow(2, 5),
		Deployment: schedule.NewD1(tt),
		Protocol:   wsn.NewScheduleMAC("theorem2", s),
		Traffic:    wsn.Saturated{},
		Slots:      180,
		Seed:       1,
	})
	if err != nil {
		return nil, err
	}
	if sim.FailedTx != 0 || sim.ReceiverCollisions != 0 {
		r.failf("simulator saw collisions: failed=%d rc=%d", sim.FailedTx, sim.ReceiverCollisions)
	}
	t := stats.NewTable("", "quantity", "value")
	t.AddRow("prototiles", "moore(9) ⊇ cross(5) ⊇ point(1)")
	t.AddRow("respectable", fmt.Sprintf("%v", tt.Respectable()))
	t.AddRow("slots (Theorem 2)", stats.I(int64(s.Slots())))
	t.AddRow("per-class optimum", stats.I(int64(m)))
	t.AddRow("sim transmissions", stats.I(sim.Transmissions))
	t.AddRow("sim failed", stats.I(sim.FailedTx))
	r.Table = t
	r.find("slots", "%d", s.Slots())
	r.find("per-class optimum", "%d", m)
	grid, err := RenderScheduleGrid(s, lattice.CenteredWindow(2, 4))
	if err == nil {
		r.Art = "Theorem 2 slot grid:\n" + grid
	}
	return r, nil
}
