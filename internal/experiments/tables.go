package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"tilingsched/internal/boundary"
	"tilingsched/internal/graph"
	"tilingsched/internal/lattice"
	"tilingsched/internal/mobile"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/stats"
	"tilingsched/internal/tiling"
	"tilingsched/internal/wsn"
)

// TableSlotCounts is derived table E1: slot counts of the tiling schedule
// against the coloring heuristics and plain TDMA over a 7×7 window. The
// tiling schedule matches the exact optimum on every prototile while the
// heuristics can only approach it and TDMA is off by an order of
// magnitude.
func TableSlotCounts(seed int64) (*Result, error) {
	r := &Result{ID: "E1", Title: "E1 — slots: tiling vs distance-2 coloring vs TDMA (7×7 window)"}
	w := lattice.CenteredWindow(2, 3) // 7×7 = 49 sensors
	t := stats.NewTable("", "prototile", "tiling", "exact", "dsatur", "greedy", "anneal", "tdma")
	tiles := []*prototile.Tile{
		prototile.Cross(2, 1),
		prototile.ChebyshevBall(2, 1),
		prototile.MustTetromino("S"),
		prototile.Directional(),
	}
	rng := rand.New(rand.NewSource(seed))
	for _, ti := range tiles {
		lt, ok := tiling.FindLatticeTiling(ti)
		if !ok {
			r.failf("%s: no tiling", ti.Name())
			continue
		}
		s := schedule.FromLatticeTiling(lt)
		dep := s.Deployment()
		g, _, err := graph.ConflictGraph(dep, w)
		if err != nil {
			return nil, err
		}
		exact := graph.ChromaticNumber(g, 500_000)
		_, dsatur := graph.DSATUR(g)
		_, greedy := graph.GreedyColoring(g, graph.IdentityOrder(g.N()))
		_, anneal := graph.AnnealColoring(g, rng, graph.AnnealOptions{Iterations: 15000})
		tdma := w.Size()
		t.AddRow(ti.Name(), stats.I(int64(s.Slots())), stats.I(int64(exact.NumColors)),
			stats.I(int64(dsatur)), stats.I(int64(greedy)), stats.I(int64(anneal)),
			stats.I(int64(tdma)))
		if exact.Proven && s.Slots() != exact.NumColors {
			r.failf("%s: tiling %d ≠ exact optimum %d", ti.Name(), s.Slots(), exact.NumColors)
		}
		if dsatur < s.Slots() || greedy < s.Slots() || anneal < s.Slots() {
			r.failf("%s: a heuristic beat the proven optimum", ti.Name())
		}
	}
	r.Table = t
	return r, nil
}

// scheduleFromColoring converts a graph coloring over window points into a
// MapSchedule.
func scheduleFromColoring(pts []lattice.Point, colors []int, numColors int) (*schedule.MapSchedule, error) {
	return schedule.NewMapSchedule(numColors, pts, colors)
}

// TableSimulator is derived table E2: the protocol shoot-out in the
// slotted simulator — delivery ratio, goodput, latency, and energy per
// delivered broadcast for the tiling schedule, a DSATUR coloring, plain
// TDMA, slotted ALOHA, and p-CSMA under Bernoulli traffic.
func TableSimulator(seed int64) (*Result, error) {
	r := &Result{ID: "E2", Title: "E2 — simulator shoot-out (9×9 window, cross neighborhood, Bernoulli 0.05)"}
	w := lattice.CenteredWindow(2, 4) // 9×9 = 81 sensors
	ti := prototile.Cross(2, 1)
	lt, ok := tiling.FindLatticeTiling(ti)
	if !ok {
		return nil, fmt.Errorf("experiments: no tiling for cross")
	}
	tilingSched := schedule.FromLatticeTiling(lt)
	dep := tilingSched.Deployment()
	g, pts, err := graph.ConflictGraph(dep, w)
	if err != nil {
		return nil, err
	}
	colors, numColors := graph.DSATUR(g)
	dsaturSched, err := scheduleFromColoring(pts, colors, numColors)
	if err != nil {
		return nil, err
	}
	csma, err := wsn.NewCSMA(0.15, dep, w)
	if err != nil {
		return nil, err
	}
	protocols := []wsn.Protocol{
		wsn.NewScheduleMAC("tiling(5)", tilingSched),
		wsn.NewScheduleMAC(fmt.Sprintf("dsatur(%d)", numColors), dsaturSched),
		wsn.NewScheduleMAC(fmt.Sprintf("tdma(%d)", w.Size()), schedule.PlainTDMA(w)),
		&wsn.SlottedALOHA{P: 0.05},
		&wsn.SlottedALOHA{P: 0.15},
		csma,
	}
	t := stats.NewTable("", "protocol", "delivery", "goodput", "latency", "energy/msg", "fairness")
	var tilingM, tdmaM, alohaM wsn.Metrics
	for i, proto := range protocols {
		m, err := wsn.Run(wsn.Config{
			Window:     w,
			Deployment: dep,
			Protocol:   proto,
			Traffic:    wsn.Bernoulli{P: 0.05},
			Slots:      2000,
			Seed:       seed,
			QueueCap:   64,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(proto.Name(), stats.F(m.DeliveryRatio()), stats.F(m.Goodput()),
			stats.F(m.MeanLatency()), stats.F(m.EnergyPerDelivered()), stats.F(m.FairnessIndex()))
		switch i {
		case 0:
			tilingM = m
		case 2:
			tdmaM = m
		case 4:
			alohaM = m
		}
	}
	r.Table = t
	if tilingM.DeliveryRatio() != 1.0 {
		r.failf("tiling delivery ratio %v, want 1.0", tilingM.DeliveryRatio())
	}
	if tilingM.EnergyPerDelivered() != 1.0 {
		r.failf("tiling energy %v, want 1.0", tilingM.EnergyPerDelivered())
	}
	if tilingM.Goodput() <= tdmaM.Goodput() {
		r.failf("tiling goodput %v not above TDMA %v", tilingM.Goodput(), tdmaM.Goodput())
	}
	if alohaM.DeliveryRatio() >= 1.0 {
		r.failf("ALOHA delivery ratio %v, expected losses", alohaM.DeliveryRatio())
	}
	r.find("tiling delivery", "%v", tilingM.DeliveryRatio())
	r.find("tiling mean latency", "%.2f", tilingM.MeanLatency())
	r.find("tdma mean latency", "%.2f", tdmaM.MeanLatency())
	return r, nil
}

// TableScaling is derived table E3 (the paper's Contribution 2): assigning
// slots by the tiling schedule costs O(1) per sensor with a constant slot
// count, while coloring heuristics recompute on the whole window and TDMA's
// slot count grows with the sensor population.
func TableScaling() (*Result, error) {
	r := &Result{ID: "E3", Title: "E3 — scaling: schedule construction cost vs network size (cross neighborhood)"}
	ti := prototile.Cross(2, 1)
	lt, ok := tiling.FindLatticeTiling(ti)
	if !ok {
		return nil, fmt.Errorf("experiments: no tiling for cross")
	}
	s := schedule.FromLatticeTiling(lt)
	t := stats.NewTable("", "sensors", "tiling slots", "tiling µs", "dsatur slots", "dsatur µs", "tdma slots")
	var prevTilingSlots int
	for _, half := range []int{4, 8, 12, 16} {
		w := lattice.CenteredWindow(2, half)
		pts := w.Points()
		start := time.Now()
		for _, p := range pts {
			if _, err := s.SlotOf(p); err != nil {
				return nil, err
			}
		}
		tilingUS := float64(time.Since(start).Microseconds())
		g, _, err := graph.ConflictGraph(s.Deployment(), w)
		if err != nil {
			return nil, err
		}
		start = time.Now()
		_, dsatur := graph.DSATUR(g)
		dsaturUS := float64(time.Since(start).Microseconds())
		t.AddRow(stats.I(int64(len(pts))), stats.I(int64(s.Slots())), stats.F(tilingUS),
			stats.I(int64(dsatur)), stats.F(dsaturUS), stats.I(int64(len(pts))))
		if prevTilingSlots != 0 && s.Slots() != prevTilingSlots {
			r.failf("tiling slot count changed with network size")
		}
		prevTilingSlots = s.Slots()
		if dsatur < s.Slots() {
			r.failf("DSATUR beat the optimum at %d sensors", len(pts))
		}
	}
	r.Table = t
	r.find("tiling slots (all sizes)", "%d", s.Slots())
	return r, nil
}

// TableExactness is derived table E4 (Section 3): deciding exactness via
// the Beauquier–Nivat criterion — reference O(n⁴) search vs the hash-LCE
// accelerated search — on growing boundary lengths.
func TableExactness() (*Result, error) {
	r := &Result{ID: "E4", Title: "E4 — exactness decision: naive vs accelerated BN factorization"}
	t := stats.NewTable("", "shape", "boundary", "exact", "naive µs", "fast µs")
	type workload struct {
		name string
		tile *prototile.Tile
	}
	var cases []workload
	for _, n := range []int{2, 4, 8, 12} {
		cases = append(cases, workload{fmt.Sprintf("staircase-%d", n), boundary.Staircase(n)})
	}
	// Negative instances force both searches to exhaust, exposing the
	// O(n⁴) vs O(n³) gap as the boundary grows.
	for _, wh := range [][2]int{{4, 3}, {6, 4}, {12, 8}, {18, 12}} {
		nr, err := boundary.NotchedRect(wh[0], wh[1])
		if err != nil {
			return nil, err
		}
		cases = append(cases, workload{nr.Name(), nr})
	}
	var lastNaive, lastFast float64
	for _, c := range cases {
		word, err := boundary.ContourWord(c.tile)
		if err != nil {
			return nil, err
		}
		start := time.Now()
		_, okNaive := boundary.FactorizeNaive(word)
		naiveUS := float64(time.Since(start).Microseconds())
		start = time.Now()
		_, okFast := boundary.FactorizeFast(word)
		fastUS := float64(time.Since(start).Microseconds())
		if okNaive != okFast {
			r.failf("%s: naive=%v fast=%v disagree", c.name, okNaive, okFast)
		}
		t.AddRow(c.name, stats.I(int64(len(word))), fmt.Sprintf("%v", okFast),
			stats.F(naiveUS), stats.F(fastUS))
		lastNaive, lastFast = naiveUS, fastUS
	}
	r.Table = t
	if lastFast > 0 && lastNaive/lastFast < 1 {
		r.failf("accelerated search slower than naive on the largest negative instance "+
			"(naive %.0fµs, fast %.0fµs)", lastNaive, lastFast)
	}
	r.find("largest-instance speedup", "%.1fx", lastNaive/lastFast)
	return r, nil
}

// TableRestriction is derived table E5 (Conclusions): restricting the
// schedule to a finite window preserves optimality once the window
// contains a translate of N+N; smaller windows can get away with fewer
// slots.
func TableRestriction() (*Result, error) {
	r := &Result{ID: "E5", Title: "E5 — finite restriction: window size vs minimal slots (cross, m=5)"}
	ti := prototile.Cross(2, 1)
	lt, ok := tiling.FindLatticeTiling(ti)
	if !ok {
		return nil, fmt.Errorf("experiments: no tiling for cross")
	}
	s := schedule.FromLatticeTiling(lt)
	dep := s.Deployment()
	nn := ti.NPlusN()
	t := stats.NewTable("", "window", "sensors", "contains N+N", "chromatic", "proven", "= m?")
	sawSmall, sawOptimal := false, false
	for _, side := range []int{1, 2, 3, 4, 5, 7} {
		w, err := lattice.BoxWindow(side, side)
		if err != nil {
			return nil, err
		}
		g, _, err := graph.ConflictGraph(dep, w)
		if err != nil {
			return nil, err
		}
		res := graph.ChromaticNumber(g, 500_000)
		covers := w.ContainsTranslateOf(nn)
		t.AddRow(fmt.Sprintf("%dx%d", side, side), stats.I(int64(w.Size())),
			fmt.Sprintf("%v", covers), stats.I(int64(res.NumColors)),
			fmt.Sprintf("%v", res.Proven), fmt.Sprintf("%v", res.NumColors == s.Slots()))
		if covers && res.Proven && res.NumColors != s.Slots() {
			r.failf("window %dx%d covers N+N but needs %d ≠ %d slots", side, side, res.NumColors, s.Slots())
		}
		if res.Proven && res.NumColors < s.Slots() {
			sawSmall = true
		}
		if covers && res.Proven && res.NumColors == s.Slots() {
			sawOptimal = true
		}
	}
	if !sawSmall {
		r.failf("no window needed fewer than m slots (expected for tiny windows)")
	}
	if !sawOptimal {
		r.failf("no window demonstrated preserved optimality")
	}
	r.Table = t
	return r, nil
}

// TableMobile is derived table E6 (Conclusions): the location-slot rule
// for mobile sensors stays collision-free under random-waypoint motion,
// with utilization falling as the interference radius grows (ranges fit
// their tiles less often).
func TableMobile(seed int64) (*Result, error) {
	r := &Result{ID: "E6", Title: "E6 — mobile sensors: location slots, radius sweep (Moore tile)"}
	lt, ok := tiling.FindLatticeTiling(prototile.ChebyshevBall(2, 1))
	if !ok {
		return nil, fmt.Errorf("experiments: no tiling for Moore ball")
	}
	s := schedule.FromLatticeTiling(lt)
	t := stats.NewTable("", "radius", "sends", "unfit-muted", "collisions", "utilization")
	var utils []float64
	for _, radius := range []float64{0.5, 0.8, 1.1} {
		m, err := mobile.Run(mobile.Config{
			Schedule:  s,
			ArenaLo:   [2]float64{-6, -6},
			ArenaHi:   [2]float64{6, 6},
			NumAgents: 10,
			Radius:    radius,
			Speed:     0.3,
			Slots:     500,
			Seed:      seed,
		})
		if err != nil {
			return nil, err
		}
		if m.Collisions != 0 {
			r.failf("radius %v: %d collisions, want 0", radius, m.Collisions)
		}
		t.AddRow(stats.F(radius), stats.I(m.Sends), stats.I(m.UnfitMuted),
			stats.I(m.Collisions), stats.F(m.Utilization()))
		utils = append(utils, m.Utilization())
	}
	if utils[0] < utils[len(utils)-1] {
		r.failf("utilization grew with radius: %v", utils)
	}
	if utils[0] == 0 {
		r.failf("no sends at the smallest radius")
	}
	r.Table = t
	r.find("collisions (all radii)", "0")
	return r, nil
}
