// Package experiments contains one runner per paper artifact (Figures 1–5,
// Theorems 1–2) and per derived evaluation table (E1–E6 of DESIGN.md).
// Each runner produces a rendered table, machine-checkable findings, and a
// list of verification failures (empty on success). The runners are shared
// by cmd/figures, cmd/experiments, and the repository benchmarks, so the
// numbers in EXPERIMENTS.md regenerate from a single code path.
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"tilingsched/internal/lattice"
	"tilingsched/internal/schedule"
	"tilingsched/internal/stats"
)

// Result is the outcome of one experiment.
type Result struct {
	// ID identifies the experiment (e.g. "F3", "E1").
	ID string
	// Title is a human-readable experiment name.
	Title string
	// Table is the rendered data.
	Table *stats.Table
	// Findings maps headline quantities to values for EXPERIMENTS.md.
	Findings map[string]string
	// Failures lists verification failures; empty means the paper's
	// claim reproduced.
	Failures []string
	// Art holds optional ASCII renderings (tilings, schedules).
	Art string
}

// Passed reports whether all checks succeeded.
func (r *Result) Passed() bool { return len(r.Failures) == 0 }

// Render produces the experiment's full text block.
func (r *Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	if r.Table != nil {
		b.WriteString(r.Table.Render())
	}
	if r.Art != "" {
		b.WriteString(r.Art)
		if !strings.HasSuffix(r.Art, "\n") {
			b.WriteByte('\n')
		}
	}
	keys := make([]string, 0, len(r.Findings))
	for k := range r.Findings {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "finding: %s = %s\n", k, r.Findings[k])
	}
	for _, f := range r.Failures {
		fmt.Fprintf(&b, "FAILURE: %s\n", f)
	}
	if r.Passed() {
		b.WriteString("status: PASS\n")
	} else {
		b.WriteString("status: FAIL\n")
	}
	return b.String()
}

func (r *Result) failf(format string, args ...interface{}) {
	r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
}

func (r *Result) find(key, format string, args ...interface{}) {
	if r.Findings == nil {
		r.Findings = map[string]string{}
	}
	r.Findings[key] = fmt.Sprintf(format, args...)
}

// RenderScheduleGrid draws the slot assignment of a 2-D schedule over a
// window, one row per y (top to bottom), slots rendered in a fixed width —
// the computational analogue of the paper's Figure 3.
func RenderScheduleGrid(s schedule.Schedule, w lattice.Window) (string, error) {
	if w.Dim() != 2 {
		return "", fmt.Errorf("experiments: schedule grid needs dimension 2")
	}
	width := len(fmt.Sprintf("%d", s.Slots()-1)) + 1
	var b strings.Builder
	for y := w.Hi[1]; y >= w.Lo[1]; y-- {
		for x := w.Lo[0]; x <= w.Hi[0]; x++ {
			k, err := s.SlotOf(lattice.Pt(x, y))
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%*d", width, k+1) // paper numbers slots from 1
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// All runs every experiment in order.
func All(seed int64) ([]*Result, error) {
	runners := []func() (*Result, error){
		Figure1Lattices,
		Figure2Neighborhoods,
		Figure3Schedule,
		Figure4Voronoi,
		Figure5NonRespectable,
		Theorem1Verification,
		Theorem2Verification,
		func() (*Result, error) { return TableSlotCounts(seed) },
		func() (*Result, error) { return TableSimulator(seed) },
		func() (*Result, error) { return TableScaling() },
		func() (*Result, error) { return TableExactness() },
		func() (*Result, error) { return TableRestriction() },
		func() (*Result, error) { return TableMobile(seed) },
		func() (*Result, error) { return TableDimensions() },
		func() (*Result, error) { return TableEnergy(seed) },
		func() (*Result, error) { return TableClockSkew(seed) },
		func() (*Result, error) { return TableConvergecast(seed) },
		func() (*Result, error) { return TableD1Implicit() },
	}
	out := make([]*Result, 0, len(runners))
	for _, run := range runners {
		r, err := run()
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
	return out, nil
}
