package experiments

import (
	"fmt"
	"math"

	"tilingsched/internal/boundary"
	"tilingsched/internal/geom"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/stats"
	"tilingsched/internal/tiling"
)

// Figure1Lattices reproduces Figure 1: the square and hexagonal lattices,
// their bases, covolumes, and kissing numbers (minimal-vector counts).
func Figure1Lattices() (*Result, error) {
	r := &Result{ID: "F1", Title: "Figure 1 — square and hexagonal lattices"}
	t := stats.NewTable("", "lattice", "basis", "covolume", "minimal vectors")
	for _, l := range []*lattice.Lattice{lattice.Square(), lattice.Hexagonal()} {
		// Count lattice vectors of minimal nonzero length.
		min := math.Inf(1)
		count := 0
		for _, p := range lattice.CenteredWindow(2, 3).Points() {
			if p.IsOrigin() {
				continue
			}
			n := l.Norm2(p)
			switch {
			case n < min-1e-9:
				min, count = n, 1
			case math.Abs(n-min) <= 1e-9:
				count++
			}
		}
		b := l.Basis()
		t.AddRow(l.Name(),
			fmt.Sprintf("(%.3f,%.3f),(%.3f,%.3f)", b[0][0], b[0][1], b[1][0], b[1][1]),
			stats.F(l.CoVolume()), stats.I(int64(count)))
		switch l.Name() {
		case "square":
			if count != 4 {
				r.failf("square lattice has %d minimal vectors, want 4", count)
			}
		case "hexagonal":
			if count != 6 {
				r.failf("hexagonal lattice has %d minimal vectors, want 6", count)
			}
			if math.Abs(l.CoVolume()-math.Sqrt(3)/2) > 1e-9 {
				r.failf("hexagonal covolume %v, want √3/2", l.CoVolume())
			}
		}
	}
	r.Table = t
	r.find("square kissing number", "4")
	r.find("hexagonal kissing number", "6")
	return r, nil
}

// Figure2Neighborhoods reproduces Figure 2: the Chebyshev ball, the
// Euclidean ball, and the directional neighborhood, each with its size and
// exactness evidence (all three are exact).
func Figure2Neighborhoods() (*Result, error) {
	r := &Result{ID: "F2", Title: "Figure 2 — example neighborhoods and their exactness"}
	t := stats.NewTable("", "neighborhood", "|N|", "exact(BN)", "exact(lattice)", "period")
	cases := []struct {
		tile *prototile.Tile
		want int
	}{
		{prototile.ChebyshevBall(2, 1), 9},
		{prototile.EuclideanBall(lattice.Square(), 1), 5},
		{prototile.Directional(), 8},
	}
	var art string
	for _, c := range cases {
		if c.tile.Size() != c.want {
			r.failf("%s has %d points, want %d", c.tile.Name(), c.tile.Size(), c.want)
		}
		bn, _, err := boundary.IsExactPolyomino(c.tile)
		if err != nil {
			return nil, err
		}
		lt, viaLattice := tiling.FindLatticeTiling(c.tile)
		period := "-"
		if viaLattice {
			period = lt.Period().String()
		}
		if !bn || !viaLattice {
			r.failf("%s should be exact (BN=%v, lattice=%v)", c.tile.Name(), bn, viaLattice)
		}
		if bn != viaLattice {
			r.failf("%s: BN and lattice search disagree", c.tile.Name())
		}
		t.AddRow(c.tile.Name(), stats.I(int64(c.tile.Size())),
			fmt.Sprintf("%v", bn), fmt.Sprintf("%v", viaLattice), period)
		art += c.tile.Name() + ":\n" + c.tile.ASCII() + "\n\n"
	}
	r.Table = t
	r.Art = art
	return r, nil
}

// Figure3Schedule reproduces Figure 3: the 8-slot schedule derived from a
// tiling with the 2×4 directional neighborhood, including the observation
// that the slot-k broadcasters' neighborhoods re-tile the lattice.
func Figure3Schedule() (*Result, error) {
	r := &Result{ID: "F3", Title: "Figure 3 — the 8-slot schedule of the directional tiling"}
	tile := prototile.Directional()
	lt, ok := tiling.FindLatticeTiling(tile)
	if !ok {
		r.failf("no tiling for the directional neighborhood")
		return r, nil
	}
	s := schedule.FromLatticeTiling(lt)
	w := lattice.CenteredWindow(2, 4)
	if err := schedule.VerifyCollisionFree(s, s.Deployment(), w); err != nil {
		r.failf("schedule not collision-free: %v", err)
	}
	if s.Slots() != 8 {
		r.failf("slots = %d, want 8", s.Slots())
	}
	// Slot-shift property: for every slot k, the broadcasters are
	// exactly one coset n_k + T, so their neighborhoods form a tiling.
	pts := tile.Points()
	for _, p := range w.Points() {
		k, err := s.SlotOf(p)
		if err != nil {
			return nil, err
		}
		in, err := lt.InTranslateSet(p.Sub(pts[k]))
		if err != nil {
			return nil, err
		}
		if !in {
			r.failf("slot-%d broadcaster %v is not in n_k + T", k, p)
		}
	}
	grid, err := RenderScheduleGrid(s, w)
	if err != nil {
		return nil, err
	}
	r.Art = "slot grid (1-based, as in the paper's figure):\n" + grid
	tbl := stats.NewTable("", "quantity", "value")
	tbl.AddRow("slots", stats.I(int64(s.Slots())))
	tbl.AddRow("period", lt.Period().String())
	tbl.AddRow("window verified", w.String())
	r.Table = tbl
	r.find("slots", "%d", s.Slots())
	return r, nil
}

// Figure4Voronoi reproduces Figure 4: the Voronoi cell of the square
// lattice is a unit square, that of the hexagonal lattice a hexagon;
// unions over prototiles give quasi-polyforms whose area is |N| times the
// cell area.
func Figure4Voronoi() (*Result, error) {
	r := &Result{ID: "F4", Title: "Figure 4 — Voronoi cells and quasi-polyforms"}
	t := stats.NewTable("", "lattice", "cell vertices", "cell area (coord)", "cell area (euclid)")
	square, err := geom.VoronoiCell(geom.SquareGram(), 2)
	if err != nil {
		return nil, err
	}
	hex, err := geom.VoronoiCell(geom.HexGram(), 2)
	if err != nil {
		return nil, err
	}
	sqEuclid := square.Area().Float() * math.Sqrt(geom.SquareGram().Det().Float())
	hexEuclid := hex.Area().Float() * math.Sqrt(geom.HexGram().Det().Float())
	t.AddRow("square", stats.I(int64(len(square.V))), square.Area().String(), stats.F(sqEuclid))
	t.AddRow("hexagonal", stats.I(int64(len(hex.V))), hex.Area().String(), stats.F(hexEuclid))
	if len(square.V) != 4 {
		r.failf("square cell has %d vertices, want 4", len(square.V))
	}
	if len(hex.V) != 6 {
		r.failf("hex cell has %d vertices, want 6", len(hex.V))
	}
	if math.Abs(hexEuclid-math.Sqrt(3)/2) > 1e-9 {
		r.failf("hex cell Euclidean area %v, want √3/2", hexEuclid)
	}
	// Quasi-polyomino over the L tromino: 3 unit squares.
	var pts []geom.Vec2
	for _, p := range prototile.LTromino().Points() {
		pts = append(pts, geom.V2(int64(p[0]), int64(p[1])))
	}
	cells, err := geom.QuasiPolyform(geom.SquareGram(), pts, 2)
	if err != nil {
		return nil, err
	}
	total := geom.RatInt(0)
	for _, c := range cells {
		total = total.Add(c.Area())
	}
	if !total.Equal(geom.RatInt(3)) {
		r.failf("L-tromino quasi-polyomino area %s, want 3", total)
	}
	r.Table = t
	r.find("quasi-polyomino area (L tromino)", "%s", total)
	return r, nil
}

// Figure5NonRespectable reproduces Figure 5: over S/Z tetromino tilings,
// the per-class optimal slot count depends on the tiling — the all-S
// tiling needs 4 slots while mixed tilings need more (the paper's example
// needs 6).
func Figure5NonRespectable() (*Result, error) {
	r := &Result{ID: "F5", Title: "Figure 5 — non-respectable tilings: optimum depends on the tiling"}
	s4 := prototile.MustTetromino("S")
	z4 := prototile.MustTetromino("Z")
	t := stats.NewTable("", "torus", "tilings", "Z-tiles", "min slots", "max slots")
	overallMin, overallMax := math.MaxInt32, 0
	pureSOptimum := 0
	twoZSixSlots := false
	for _, cfg := range []struct {
		dims []int
		cap  int
	}{
		{dims: []int{4, 4}, cap: 0}, // full enumeration: 64 tilings
		{dims: []int{4, 8}, cap: 50},
	} {
		dims := cfg.dims
		sols, err := tiling.SolveTorus(dims, []*prototile.Tile{s4, z4},
			tiling.SolveOptions{MaxSolutions: cfg.cap})
		if err != nil {
			return nil, err
		}
		minM, maxM := math.MaxInt32, 0
		zmin, zmax := math.MaxInt32, 0
		for _, sol := range sols {
			pc, err := schedule.CompilePatternConstraints(sol)
			if err != nil {
				return nil, err
			}
			m, patterns, err := pc.MinSlots(16)
			if err != nil {
				return nil, err
			}
			// The minimal per-class schedule must itself verify.
			ps, err := schedule.NewPerClassSchedule(sol, m, patterns)
			if err != nil {
				return nil, err
			}
			if err := schedule.VerifyCollisionFree(ps, schedule.NewD1(sol),
				lattice.CenteredWindow(2, 5)); err != nil {
				r.failf("per-class optimum schedule collides on %v: %v", sol.TileCounts(), err)
			}
			if m < minM {
				minM = m
			}
			if m > maxM {
				maxM = m
			}
			zc := sol.TileCounts()[1]
			if zc < zmin {
				zmin = zc
			}
			if zc > zmax {
				zmax = zc
			}
			if zc == 0 && pureSOptimum == 0 {
				pureSOptimum = m
			}
			if zc == 2 && m == 6 {
				// The paper's Figure 5 left: two Z tetrominoes
				// surrounded by S tetrominoes, optimal m = 6.
				twoZSixSlots = true
			}
		}
		if len(sols) > 0 {
			t.AddRow(fmt.Sprintf("%dx%d", dims[0], dims[1]), stats.I(int64(len(sols))),
				fmt.Sprintf("%d..%d", zmin, zmax),
				stats.I(int64(minM)), stats.I(int64(maxM)))
			if minM < overallMin {
				overallMin = minM
			}
			if maxM > overallMax {
				overallMax = maxM
			}
		}
	}
	r.Table = t
	if pureSOptimum != 4 {
		r.failf("pure-S tiling optimum = %d, want 4 (Figure 5 right)", pureSOptimum)
	}
	if overallMin != 4 {
		r.failf("minimum over tilings = %d, want 4", overallMin)
	}
	if overallMax <= 4 {
		r.failf("no tiling needed more than 4 slots; Figure 5's tiling-dependence not reproduced")
	}
	if !twoZSixSlots {
		r.failf("no two-Z tiling with optimum 6 found (the paper's Figure 5 left)")
	}
	r.find("pure-S optimum", "%d", pureSOptimum)
	r.find("optimum range over tilings", "%d..%d", overallMin, overallMax)
	r.find("two-Z tiling needing 6 slots", "%v", twoZSixSlots)
	return r, nil
}
