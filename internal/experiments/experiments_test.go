package experiments

import (
	"strings"
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

func TestFigure1(t *testing.T) {
	r, err := Figure1Lattices()
	if err != nil {
		t.Fatalf("Figure1Lattices: %v", err)
	}
	if !r.Passed() {
		t.Errorf("F1 failed:\n%s", r.Render())
	}
}

func TestFigure2(t *testing.T) {
	r, err := Figure2Neighborhoods()
	if err != nil {
		t.Fatalf("Figure2Neighborhoods: %v", err)
	}
	if !r.Passed() {
		t.Errorf("F2 failed:\n%s", r.Render())
	}
	if !strings.Contains(r.Art, "chebyshev") {
		t.Error("F2 art missing neighborhoods")
	}
}

func TestFigure3(t *testing.T) {
	r, err := Figure3Schedule()
	if err != nil {
		t.Fatalf("Figure3Schedule: %v", err)
	}
	if !r.Passed() {
		t.Errorf("F3 failed:\n%s", r.Render())
	}
	if r.Findings["slots"] != "8" {
		t.Errorf("F3 slots = %q, want 8", r.Findings["slots"])
	}
}

func TestFigure4(t *testing.T) {
	r, err := Figure4Voronoi()
	if err != nil {
		t.Fatalf("Figure4Voronoi: %v", err)
	}
	if !r.Passed() {
		t.Errorf("F4 failed:\n%s", r.Render())
	}
}

func TestFigure5(t *testing.T) {
	if testing.Short() {
		t.Skip("figure 5 enumerates tilings; skipped in -short")
	}
	r, err := Figure5NonRespectable()
	if err != nil {
		t.Fatalf("Figure5NonRespectable: %v", err)
	}
	if !r.Passed() {
		t.Errorf("F5 failed:\n%s", r.Render())
	}
	if r.Findings["pure-S optimum"] != "4" {
		t.Errorf("pure-S optimum = %q, want 4", r.Findings["pure-S optimum"])
	}
	if r.Findings["two-Z tiling needing 6 slots"] != "true" {
		t.Error("the paper's 6-slot tiling was not found")
	}
}

func TestTheorem1(t *testing.T) {
	r, err := Theorem1Verification()
	if err != nil {
		t.Fatalf("Theorem1Verification: %v", err)
	}
	if !r.Passed() {
		t.Errorf("T1 failed:\n%s", r.Render())
	}
}

func TestTheorem2(t *testing.T) {
	r, err := Theorem2Verification()
	if err != nil {
		t.Fatalf("Theorem2Verification: %v", err)
	}
	if !r.Passed() {
		t.Errorf("T2 failed:\n%s", r.Render())
	}
}

func TestRespectableMooreTilingValid(t *testing.T) {
	tt, err := RespectableMooreTiling()
	if err != nil {
		t.Fatalf("RespectableMooreTiling: %v", err)
	}
	if !tt.Respectable() {
		t.Error("tiling should be respectable")
	}
	counts := tt.TileCounts()
	if counts[0] != 1 || counts[1] != 1 || counts[2] != 2 {
		t.Errorf("TileCounts = %v, want [1 1 2]", counts)
	}
}

func TestTableSlotCounts(t *testing.T) {
	r, err := TableSlotCounts(1)
	if err != nil {
		t.Fatalf("TableSlotCounts: %v", err)
	}
	if !r.Passed() {
		t.Errorf("E1 failed:\n%s", r.Render())
	}
	if r.Table.Rows() != 4 {
		t.Errorf("E1 rows = %d, want 4", r.Table.Rows())
	}
}

func TestTableSimulator(t *testing.T) {
	r, err := TableSimulator(1)
	if err != nil {
		t.Fatalf("TableSimulator: %v", err)
	}
	if !r.Passed() {
		t.Errorf("E2 failed:\n%s", r.Render())
	}
}

func TestTableScaling(t *testing.T) {
	r, err := TableScaling()
	if err != nil {
		t.Fatalf("TableScaling: %v", err)
	}
	if !r.Passed() {
		t.Errorf("E3 failed:\n%s", r.Render())
	}
}

func TestTableExactness(t *testing.T) {
	r, err := TableExactness()
	if err != nil {
		t.Fatalf("TableExactness: %v", err)
	}
	if !r.Passed() {
		t.Errorf("E4 failed:\n%s", r.Render())
	}
}

func TestTableRestriction(t *testing.T) {
	r, err := TableRestriction()
	if err != nil {
		t.Fatalf("TableRestriction: %v", err)
	}
	if !r.Passed() {
		t.Errorf("E5 failed:\n%s", r.Render())
	}
}

func TestTableMobile(t *testing.T) {
	r, err := TableMobile(3)
	if err != nil {
		t.Fatalf("TableMobile: %v", err)
	}
	if !r.Passed() {
		t.Errorf("E6 failed:\n%s", r.Render())
	}
}

func TestRenderScheduleGrid(t *testing.T) {
	lt, ok := tiling.FindLatticeTiling(prototile.MustTetromino("O"))
	if !ok {
		t.Fatal("no tiling for O")
	}
	s := schedule.FromLatticeTiling(lt)
	grid, err := RenderScheduleGrid(s, lattice.CenteredWindow(2, 2))
	if err != nil {
		t.Fatalf("RenderScheduleGrid: %v", err)
	}
	lines := strings.Split(strings.TrimRight(grid, "\n"), "\n")
	if len(lines) != 5 {
		t.Errorf("grid has %d lines, want 5", len(lines))
	}
	if _, err := RenderScheduleGrid(s, lattice.CenteredWindow(3, 1)); err == nil {
		t.Error("3-dim grid accepted")
	}
}

func TestResultRender(t *testing.T) {
	r := &Result{ID: "X", Title: "demo"}
	r.find("k", "v")
	if !r.Passed() {
		t.Error("empty failures should pass")
	}
	r.failf("boom %d", 7)
	out := r.Render()
	if !strings.Contains(out, "FAILURE: boom 7") || !strings.Contains(out, "status: FAIL") {
		t.Errorf("render missing failure:\n%s", out)
	}
	if r.Passed() {
		t.Error("failed result reports pass")
	}
}

// TestTableD1Implicit regenerates E11: stencil-compressed D1 conflict
// graphs must match the explicit builds edge for edge and verify the
// Theorem 2 schedule.
func TestTableD1Implicit(t *testing.T) {
	r, err := TableD1Implicit()
	if err != nil {
		t.Fatalf("TableD1Implicit: %v", err)
	}
	if !r.Passed() {
		t.Errorf("E11 failed:\n%s", r.Render())
	}
}
