package experiments

import "testing"

func TestTableEnergy(t *testing.T) {
	r, err := TableEnergy(1)
	if err != nil {
		t.Fatalf("TableEnergy: %v", err)
	}
	if !r.Passed() {
		t.Errorf("E8 failed:\n%s", r.Render())
	}
}

func TestTableClockSkew(t *testing.T) {
	r, err := TableClockSkew(1)
	if err != nil {
		t.Fatalf("TableClockSkew: %v", err)
	}
	if !r.Passed() {
		t.Errorf("E9 failed:\n%s", r.Render())
	}
}

func TestTableConvergecast(t *testing.T) {
	r, err := TableConvergecast(1)
	if err != nil {
		t.Fatalf("TableConvergecast: %v", err)
	}
	if !r.Passed() {
		t.Errorf("E10 failed:\n%s", r.Render())
	}
}

func TestAllRunsEverything(t *testing.T) {
	if testing.Short() {
		t.Skip("All() runs the full suite; skipped in -short")
	}
	results, err := All(1)
	if err != nil {
		t.Fatalf("All: %v", err)
	}
	if len(results) != 18 {
		t.Errorf("All returned %d results, want 18", len(results))
	}
	for _, r := range results {
		if !r.Passed() {
			t.Errorf("%s failed:\n%s", r.ID, r.Render())
		}
	}
}
