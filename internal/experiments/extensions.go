package experiments

import (
	"fmt"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/stats"
	"tilingsched/internal/tiling"
	"tilingsched/internal/wsn"
)

// TableEnergy is derived table E8: radio energy under ideal receiver-side
// duty cycling. The paper's energy argument is about retransmissions;
// this table adds the listening side: the optimal tiling schedule packs
// transmissions so tightly that radios stay on under saturation (the
// throughput/energy trade-off), while under light traffic all schedules
// sleep most of the time and contention protocols still waste
// transmissions.
func TableEnergy(seed int64) (*Result, error) {
	r := &Result{ID: "E8", Title: "E8 — duty cycle and energy (cross neighborhood, 9×9)"}
	w := lattice.CenteredWindow(2, 4)
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		return nil, fmt.Errorf("experiments: no tiling for cross")
	}
	s := schedule.FromLatticeTiling(lt)
	dep := s.Deployment()
	t := stats.NewTable("", "protocol", "traffic", "duty cycle", "energy/msg", "delivery")
	type runRow struct {
		proto   wsn.Protocol
		traffic wsn.Traffic
		label   string
	}
	rows := []runRow{
		{wsn.NewScheduleMAC("tiling(5)", s), wsn.Saturated{}, "saturated"},
		{wsn.NewScheduleMAC("tiling(5)", s), wsn.Bernoulli{P: 0.02}, "light"},
		{wsn.NewScheduleMAC(fmt.Sprintf("tdma(%d)", w.Size()), schedule.PlainTDMA(w)), wsn.Bernoulli{P: 0.02}, "light"},
		{&wsn.SlottedALOHA{P: 0.1}, wsn.Bernoulli{P: 0.02}, "light"},
	}
	var satDuty, lightDuty float64
	for i, row := range rows {
		m, err := wsn.Run(wsn.Config{
			Window: w, Deployment: dep, Protocol: row.proto,
			Traffic: row.traffic, Slots: 2000, Seed: seed, QueueCap: 64,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(row.proto.Name(), row.label, stats.F(m.DutyCycle()),
			stats.F(m.EnergyPerDelivered()), stats.F(m.DeliveryRatio()))
		switch i {
		case 0:
			satDuty = m.DutyCycle()
		case 1:
			lightDuty = m.DutyCycle()
			if m.EnergyPerDelivered() != 1.0 {
				r.failf("tiling light-traffic energy %v, want 1.0", m.EnergyPerDelivered())
			}
		case 3:
			if m.EnergyPerDelivered() <= 1.0 {
				r.failf("ALOHA energy %v, expected retransmission waste", m.EnergyPerDelivered())
			}
		}
	}
	if satDuty <= lightDuty {
		r.failf("saturated duty cycle %v not above light-traffic %v", satDuty, lightDuty)
	}
	r.Table = t
	r.find("tiling duty cycle (saturated)", "%.3f", satDuty)
	r.find("tiling duty cycle (light)", "%.3f", lightDuty)
	return r, nil
}

// TableClockSkew is derived table E9 (ablation): the paper assumes
// synchronized time. Injecting a ±1-slot clock error into a fraction of
// the sensors reintroduces collisions into the provably collision-free
// schedule, quantifying the cost of the synchronization assumption.
func TableClockSkew(seed int64) (*Result, error) {
	r := &Result{ID: "E9", Title: "E9 — ablation: clock skew vs collision rate (tiling schedule)"}
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		return nil, fmt.Errorf("experiments: no tiling for cross")
	}
	s := schedule.FromLatticeTiling(lt)
	dep := s.Deployment()
	w := lattice.CenteredWindow(2, 4)
	t := stats.NewTable("", "skewed fraction", "failed tx", "delivery", "energy/msg")
	var prevFailed int64 = -1
	monotone := true
	for _, prob := range []float64{0, 0.05, 0.15, 0.3} {
		mac, err := wsn.NewSkewedScheduleMAC("tiling", s, prob, seed)
		if err != nil {
			return nil, err
		}
		m, err := wsn.Run(wsn.Config{
			Window: w, Deployment: dep, Protocol: mac,
			Traffic: wsn.Saturated{}, Slots: 1000, Seed: seed,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(stats.F(prob), stats.I(m.FailedTx), stats.F(m.DeliveryRatio()),
			stats.F(m.EnergyPerDelivered()))
		if prob == 0 && m.FailedTx != 0 {
			r.failf("zero skew produced %d failures", m.FailedTx)
		}
		if prevFailed >= 0 && m.FailedTx < prevFailed {
			monotone = false
		}
		prevFailed = m.FailedTx
	}
	if !monotone {
		r.failf("collision count not monotone in skew fraction")
	}
	if prevFailed == 0 {
		r.failf("maximum skew produced no collisions (suspicious)")
	}
	r.Table = t
	return r, nil
}

// TableConvergecast is derived table E10: the monitoring workload the
// paper's introduction motivates — multi-hop collection to a sink. Under
// the tiling schedule every hop succeeds on the first try and end-to-end
// latency is bounded by depth × period; contention forwarding loses hops
// and wastes transmissions.
func TableConvergecast(seed int64) (*Result, error) {
	r := &Result{ID: "E10", Title: "E10 — convergecast to a sink (11×11 grid, cross neighborhood)"}
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		return nil, fmt.Errorf("experiments: no tiling for cross")
	}
	s := schedule.FromLatticeTiling(lt)
	dep := s.Deployment()
	w := lattice.CenteredWindow(2, 5)
	t := stats.NewTable("", "protocol", "delivered", "hop failures", "fwd/delivered", "e2e latency")
	// Light offered load: the sink's four in-range children can ingest
	// 4/5 packets per slot, so 120 sources at 0.002 (0.24 pkt/slot)
	// leave queues empty and the depth×period latency bound applies.
	run := func(p wsn.Protocol) (wsn.ConvergecastMetrics, error) {
		return wsn.RunConvergecast(wsn.ConvergecastConfig{
			Window:     w,
			Deployment: dep,
			Protocol:   p,
			Sink:       lattice.Pt(0, 0),
			SourceRate: 0.002,
			Slots:      3000,
			Seed:       seed,
			QueueCap:   64,
		})
	}
	tm, err := run(wsn.NewScheduleMAC("tiling(5)", s))
	if err != nil {
		return nil, err
	}
	am, err := run(&wsn.SlottedALOHA{P: 0.2})
	if err != nil {
		return nil, err
	}
	t.AddRow("tiling(5)", stats.I(tm.DeliveredToSink), stats.I(tm.FailedForwards),
		stats.F(tm.ForwardsPerDelivered()), stats.F(tm.MeanE2ELatency()))
	t.AddRow("aloha(0.20)", stats.I(am.DeliveredToSink), stats.I(am.FailedForwards),
		stats.F(am.ForwardsPerDelivered()), stats.F(am.MeanE2ELatency()))
	if tm.FailedForwards != 0 {
		r.failf("tiling convergecast failed %d hops, want 0", tm.FailedForwards)
	}
	if tm.DeliveredToSink == 0 {
		r.failf("tiling convergecast delivered nothing")
	}
	if am.FailedForwards == 0 {
		r.failf("ALOHA convergecast never failed a hop (suspicious)")
	}
	bound := float64(tm.TreeDepth * s.Slots())
	if tm.MeanE2ELatency() > bound {
		r.failf("tiling e2e latency %v exceeds depth×period %v", tm.MeanE2ELatency(), bound)
	}
	r.Table = t
	r.find("tree depth", "%d", tm.TreeDepth)
	r.find("tiling e2e latency bound (depth×period)", "%.0f", bound)
	return r, nil
}
