package core

import (
	"errors"
	"strings"
	"testing"

	"tilingsched/internal/intmat"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

func TestNewPlanCross(t *testing.T) {
	plan, err := NewPlan(lattice.Square(), prototile.Cross(2, 1))
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	if plan.Slots() != 5 {
		t.Errorf("Slots = %d, want 5", plan.Slots())
	}
	if err := plan.Verify(lattice.CenteredWindow(2, 5)); err != nil {
		t.Errorf("Verify: %v", err)
	}
}

func TestNewPlanRejectsNonExact(t *testing.T) {
	// The U pentomino (3x2 rect minus top-middle) is not exact.
	s := lattice.NewSet(
		lattice.Pt(0, 0), lattice.Pt(1, 0), lattice.Pt(2, 0),
		lattice.Pt(0, 1), lattice.Pt(2, 1),
	)
	u, err := prototile.FromSet("U", s)
	if err != nil {
		t.Fatalf("FromSet: %v", err)
	}
	_, err = NewPlan(lattice.Square(), u)
	if !errors.Is(err, ErrNotExact) {
		t.Errorf("error = %v, want ErrNotExact", err)
	}
}

func TestNewPlanDimensionMismatch(t *testing.T) {
	if _, err := NewPlan(lattice.Cubic(3), prototile.Cross(2, 1)); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := NewPlanWithPeriod(lattice.Cubic(3), prototile.Cross(2, 1), intmat.Identity(2)); err == nil {
		t.Error("dimension mismatch accepted (explicit period)")
	}
}

func TestNewPlanWithPeriod(t *testing.T) {
	period := intmat.MustFromRows([][]int64{{1, 2}, {2, -1}})
	plan, err := NewPlanWithPeriod(lattice.Square(), prototile.Cross(2, 1), period)
	if err != nil {
		t.Fatalf("NewPlanWithPeriod: %v", err)
	}
	if err := plan.Verify(lattice.CenteredWindow(2, 4)); err != nil {
		t.Errorf("Verify: %v", err)
	}
	// A wrong period must be rejected.
	if _, err := NewPlanWithPeriod(lattice.Square(), prototile.Cross(2, 1),
		intmat.MustFromRows([][]int64{{5, 0}, {0, 1}})); err == nil {
		t.Error("non-transversal period accepted")
	}
}

func TestMayBroadcast(t *testing.T) {
	plan, err := NewPlan(lattice.Square(), prototile.MustTetromino("O"))
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	pt := lattice.Pt(3, -2)
	k, err := plan.SlotOf(pt)
	if err != nil {
		t.Fatalf("SlotOf: %v", err)
	}
	m := int64(plan.Slots())
	for dt := int64(0); dt < 3*m; dt++ {
		ok, err := plan.MayBroadcast(pt, dt)
		if err != nil {
			t.Fatalf("MayBroadcast: %v", err)
		}
		want := dt%m == int64(k)
		if ok != want {
			t.Errorf("MayBroadcast(t=%d) = %v, want %v", dt, ok, want)
		}
	}
	// Negative times follow the same periodicity.
	ok, err := plan.MayBroadcast(pt, int64(k)-m)
	if err != nil {
		t.Fatalf("MayBroadcast: %v", err)
	}
	if !ok {
		t.Error("negative-time broadcast window wrong")
	}
}

func TestOptimalityReport(t *testing.T) {
	plan, err := NewPlan(lattice.Square(), prototile.Cross(2, 1))
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	// Window large enough to contain N+N: the schedule is provably
	// optimal there.
	rep, err := plan.Optimality(lattice.CenteredWindow(2, 4), 2_000_000)
	if err != nil {
		t.Fatalf("Optimality: %v", err)
	}
	if !rep.WindowCoversNPlusN {
		t.Error("window should cover N+N")
	}
	if !rep.Proven {
		t.Error("chromatic search not proven on small window")
	}
	if rep.Chromatic != 5 || rep.Slots != 5 || !rep.Optimal {
		t.Errorf("report = %+v, want chromatic 5 = slots 5", rep)
	}
	if rep.CliqueBound != 5 {
		t.Errorf("clique bound = %d, want 5", rep.CliqueBound)
	}
}

func TestOptimalityTinyWindow(t *testing.T) {
	// A window too small for N+N can need fewer slots than m; the
	// report must flag that the Conclusions' condition fails.
	plan, err := NewPlan(lattice.Square(), prototile.Cross(2, 1))
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	w, err := lattice.BoxWindow(2, 1)
	if err != nil {
		t.Fatalf("BoxWindow: %v", err)
	}
	rep, err := plan.Optimality(w, 1_000_000)
	if err != nil {
		t.Fatalf("Optimality: %v", err)
	}
	if rep.WindowCoversNPlusN {
		t.Error("2x1 window cannot cover N+N of the cross")
	}
	if rep.Chromatic > rep.Slots {
		t.Errorf("restricted chromatic %d exceeds slots %d", rep.Chromatic, rep.Slots)
	}
	if rep.Chromatic == rep.Slots {
		t.Errorf("tiny window should need fewer than %d slots", rep.Slots)
	}
}

func TestExplainExactness(t *testing.T) {
	ok, ev, err := ExplainExactness(prototile.MustTetromino("S"))
	if err != nil {
		t.Fatalf("ExplainExactness: %v", err)
	}
	if !ok || !strings.Contains(ev, "Beauquier") {
		t.Errorf("S: ok=%v evidence=%q", ok, ev)
	}
	// Disconnected cluster {0, 2} ⊂ Z: it is a transversal of no
	// index-2 sublattice (only 2Z exists, and 0 ≡ 2 mod 2Z), yet it
	// tiles Z with the non-lattice translate set T = {0, 1} + 4Z. The
	// periodic-tiling fallback must find that.
	two := prototile.MustNew("gap", lattice.Pt(0), lattice.Pt(2))
	ok, ev, err = ExplainExactness(two)
	if err != nil {
		t.Fatalf("ExplainExactness: %v", err)
	}
	if !ok {
		t.Errorf("gap cluster not recognized as exact: %q", ev)
	}
	if !strings.Contains(ev, "coset") {
		t.Errorf("evidence should mention coset translates: %q", ev)
	}
	// A genuinely non-exact cluster: {0, 1, 3} ⊂ Z cannot tile Z with
	// few cosets (its residues block every small period).
	bad := prototile.MustNew("bad", lattice.Pt(0), lattice.Pt(1), lattice.Pt(3))
	ok, ev, err = ExplainExactness(bad)
	if err != nil {
		t.Fatalf("ExplainExactness: %v", err)
	}
	if ok {
		t.Errorf("cluster {0,1,3} reported exact: %q", ev)
	}
	// 3D brick goes through the lattice-search path.
	brick := prototile.MustNew("brick", lattice.Pt(0, 0, 0), lattice.Pt(1, 0, 0))
	ok, ev, err = ExplainExactness(brick)
	if err != nil {
		t.Fatalf("ExplainExactness: %v", err)
	}
	if !ok || !strings.Contains(ev, "period") {
		t.Errorf("brick: ok=%v evidence=%q", ok, ev)
	}
}
