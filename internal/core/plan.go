// Package core is the library's top-level API: it turns a lattice and an
// interference neighborhood into a verified, optimal, collision-free
// broadcast schedule — the end-to-end pipeline of the paper.
//
// A downstream user does:
//
//	plan, err := core.NewPlan(lattice.Square(), prototile.Cross(2, 1))
//	slot, _ := plan.SlotOf(lattice.Pt(3, 4))       // this sensor's slot
//	ok := plan.MayBroadcast(lattice.Pt(3, 4), t)   // may it send at time t?
//
// Behind the scenes NewPlan decides exactness (question Q1 of the paper),
// finds a tiling, builds the Theorem 1 schedule, and exposes optimality
// reporting against the exact distance-2 chromatic number.
package core

import (
	"errors"
	"fmt"
	"strings"

	"tilingsched/internal/boundary"
	"tilingsched/internal/graph"
	"tilingsched/internal/intmat"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

// ErrNotExact reports that the prototile admits no lattice tiling, so no
// optimal tiling schedule exists for it.
var ErrNotExact = errors.New("core: prototile is not exact (admits no lattice tiling)")

// Plan is a complete scheduling plan: lattice, prototile, tiling, and the
// Theorem 1 schedule.
type Plan struct {
	lat   *lattice.Lattice
	tile  *prototile.Tile
	tlng  *tiling.LatticeTiling
	sched *schedule.Theorem1
}

// NewPlan decides whether the prototile tiles the lattice and, if so,
// returns the plan carrying the optimal schedule. The lattice parameter
// fixes dimensions and metric context; the tiling search is purely
// group-theoretic (Section 2 of the paper formulates everything in
// coordinates, where every lattice is Z^d).
func NewPlan(lat *lattice.Lattice, tile *prototile.Tile) (*Plan, error) {
	if lat.Dim() != tile.Dim() {
		return nil, fmt.Errorf("core: lattice dimension %d ≠ tile dimension %d", lat.Dim(), tile.Dim())
	}
	lt, ok := tiling.FindLatticeTiling(tile)
	if !ok {
		return nil, fmt.Errorf("%w: %s (|N| = %d)", ErrNotExact, tile.Name(), tile.Size())
	}
	return &Plan{lat: lat, tile: tile, tlng: lt, sched: schedule.FromLatticeTiling(lt)}, nil
}

// NewPlanWithPeriod builds a plan from an explicit period sublattice
// (rows of period span T), validating the transversal condition.
func NewPlanWithPeriod(lat *lattice.Lattice, tile *prototile.Tile, period *intmat.Matrix) (*Plan, error) {
	if lat.Dim() != tile.Dim() {
		return nil, fmt.Errorf("core: lattice dimension %d ≠ tile dimension %d", lat.Dim(), tile.Dim())
	}
	lt, err := tiling.NewLatticeTiling(tile, period)
	if err != nil {
		return nil, err
	}
	return &Plan{lat: lat, tile: tile, tlng: lt, sched: schedule.FromLatticeTiling(lt)}, nil
}

// Signature returns the canonical signature of a (lattice, prototile)
// pair: two plans built from the same lattice name and the same tile point
// set share one signature regardless of the tile's display name or the
// order its points were given in. It is the cache key of the service-layer
// plan registry (internal/service): equal signatures mean equal schedules,
// because NewPlan's tiling search is deterministic in the tile's canonical
// point order.
func Signature(lat *lattice.Lattice, tile *prototile.Tile) string {
	var b strings.Builder
	b.WriteString(lat.Name())
	fmt.Fprintf(&b, "/%d:", tile.Dim())
	for i, pt := range tile.Points() {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(pt.Key())
	}
	return b.String()
}

// Signature returns the plan's canonical (lattice, prototile) signature.
func (p *Plan) Signature() string { return Signature(p.lat, p.tile) }

// Lattice returns the plan's lattice.
func (p *Plan) Lattice() *lattice.Lattice { return p.lat }

// Tile returns the prototile N.
func (p *Plan) Tile() *prototile.Tile { return p.tile }

// Tiling returns the underlying lattice tiling.
func (p *Plan) Tiling() *tiling.LatticeTiling { return p.tlng }

// Schedule returns the Theorem 1 schedule.
func (p *Plan) Schedule() *schedule.Theorem1 { return p.sched }

// Slots returns the schedule period m = |N|.
func (p *Plan) Slots() int { return p.sched.Slots() }

// SlotOf returns the slot of the sensor at pt.
func (p *Plan) SlotOf(pt lattice.Point) (int, error) { return p.sched.SlotOf(pt) }

// MayBroadcast reports whether the sensor at pt is allowed to broadcast at
// time t (t ≡ slot (mod m)).
func (p *Plan) MayBroadcast(pt lattice.Point, t int64) (bool, error) {
	k, err := p.sched.SlotOf(pt)
	if err != nil {
		return false, err
	}
	m := int64(p.Slots())
	return ((t%m)+m)%m == int64(k), nil
}

// Deployment returns the homogeneous deployment of the plan's prototile.
func (p *Plan) Deployment() *schedule.Homogeneous { return p.sched.Deployment() }

// Verify independently re-checks the plan on a finite window: the tiling
// conditions T1/T2 and collision-freeness of the schedule.
func (p *Plan) Verify(w lattice.Window) error {
	if err := p.tlng.VerifyWindow(w); err != nil {
		return err
	}
	return schedule.VerifyCollisionFree(p.sched, p.Deployment(), w)
}

// OptimalityReport compares the plan's slot count against lower bounds on
// a finite window.
type OptimalityReport struct {
	// Slots is the plan's period, m = |N|.
	Slots int
	// CliqueBound is a certified clique lower bound of the window's
	// conflict graph.
	CliqueBound int
	// Chromatic is the window's exact minimal slot count (distance-2
	// chromatic number) when Proven, else the best upper bound found.
	Chromatic int
	// Proven reports whether Chromatic is exact.
	Proven bool
	// WindowCoversNPlusN reports whether the window contains a translate
	// of N+N — the Conclusions' sufficient condition for the restricted
	// schedule to remain optimal.
	WindowCoversNPlusN bool
	// Optimal is true when the schedule provably matches the window's
	// chromatic number.
	Optimal bool
}

// Optimality computes the report over the window; nodeBudget bounds the
// exact chromatic search (e.g. 1e6).
func (p *Plan) Optimality(w lattice.Window, nodeBudget int) (OptimalityReport, error) {
	dep := p.Deployment()
	g, _, err := graph.ConflictGraph(dep, w)
	if err != nil {
		return OptimalityReport{}, err
	}
	res := graph.ChromaticNumber(g, nodeBudget)
	rep := OptimalityReport{
		Slots:              p.Slots(),
		CliqueBound:        graph.CliqueLowerBound(g),
		Chromatic:          res.NumColors,
		Proven:             res.Proven,
		WindowCoversNPlusN: w.ContainsTranslateOf(p.tile.NPlusN()),
	}
	rep.Optimal = res.Proven && res.NumColors == rep.Slots
	return rep, nil
}

// ExplainExactness reports whether the prototile is exact together with
// the strongest evidence available: for simply connected polyominoes in
// dimension 2, the Beauquier–Nivat boundary criterion (with the
// factorization as a certificate); otherwise the sublattice-transversal
// search.
func ExplainExactness(tile *prototile.Tile) (exact bool, evidence string, err error) {
	if tile.Dim() == 2 {
		if simply, serr := tile.SimplyConnected(); serr == nil && simply {
			ok, f, berr := boundary.IsExactPolyomino(tile)
			if berr != nil {
				return false, "", berr
			}
			if ok {
				return true, fmt.Sprintf("Beauquier–Nivat factorization %s", f), nil
			}
			return false, "boundary word admits no Beauquier–Nivat factorization", nil
		}
	}
	if lt, ok := tiling.FindLatticeTiling(tile); ok {
		return true, fmt.Sprintf("lattice tiling with period %s", lt.Period()), nil
	}
	// Some clusters tile only with non-lattice translate sets (unions of
	// cosets); search small coset counts before giving up.
	const maxCosets = 4
	if pt, ok := tiling.FindPeriodicTiling(tile, maxCosets); ok {
		return true, fmt.Sprintf("periodic tiling with period %s and %d coset translates %v",
			pt.Period(), len(pt.Offsets()), pt.Offsets()), nil
	}
	return false, fmt.Sprintf("no periodic tiling with ≤ %d cosets of any index-%d·k sublattice",
		maxCosets, tile.Size()), nil
}
