package core_test

import (
	"fmt"

	"tilingsched/internal/core"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

// Example shows the end-to-end pipeline: neighborhood in, provably
// optimal collision-free schedule out.
func Example() {
	plan, err := core.NewPlan(lattice.Square(), prototile.Cross(2, 1))
	if err != nil {
		panic(err)
	}
	fmt.Println("slots:", plan.Slots())
	slot, _ := plan.SlotOf(lattice.Pt(3, 4))
	fmt.Println("sensor (3,4) slot:", slot+1)
	ok, _ := plan.MayBroadcast(lattice.Pt(3, 4), int64(slot))
	fmt.Println("may broadcast at t=slot:", ok)
	// Output:
	// slots: 5
	// sensor (3,4) slot: 5
	// may broadcast at t=slot: true
}

// ExampleExplainExactness shows the two-tier exactness decision: the
// boundary criterion for polyominoes, the periodic search for clusters.
func ExampleExplainExactness() {
	exact, _, err := core.ExplainExactness(prototile.MustTetromino("S"))
	if err != nil {
		panic(err)
	}
	fmt.Println("S tetromino exact:", exact)

	gap := prototile.MustNew("gap", lattice.Pt(0), lattice.Pt(2))
	exact, _, err = core.ExplainExactness(gap)
	if err != nil {
		panic(err)
	}
	fmt.Println("gap cluster {0,2} exact:", exact)
	// Output:
	// S tetromino exact: true
	// gap cluster {0,2} exact: true
}

// ExamplePlan_Optimality checks a schedule against the exact finite-window
// optimum.
func ExamplePlan_Optimality() {
	plan, err := core.NewPlan(lattice.Square(), prototile.ChebyshevBall(2, 1))
	if err != nil {
		panic(err)
	}
	rep, err := plan.Optimality(lattice.CenteredWindow(2, 4), 1_000_000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("slots=%d chromatic=%d optimal=%v\n", rep.Slots, rep.Chromatic, rep.Optimal)
	// Output:
	// slots=9 chromatic=9 optimal=true
}
