package service

// Binary HTTP handlers: the serving hot path under Content-Type
// negotiation. A request carrying BinaryContentType on the batch or
// mutate endpoints is decoded by the binary funnels and answered as a
// binary frame sequence streamed in bounded flushes — a 1M-point
// window answer goes out as ~64 chunk frames through one pooled
// buffer, never materializing at once. The JSON handlers and these
// share the engine and the mutate session core; only the codec
// differs, so the two formats cannot drift semantically.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"tilingsched/internal/core"
	"tilingsched/internal/service/binwire"
)

const (
	// binChunkPoints is the number of answers per response chunk frame.
	binChunkPoints = 16384
	// binFlushBytes is the encode-buffer size that triggers a flush to
	// the client mid-stream.
	binFlushBytes = 32 << 10
)

// isBinaryRequest reports whether the request selected the binary wire
// protocol via its Content-Type (parameters ignored).
func isBinaryRequest(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == BinaryContentType
}

// writeBinErr answers a failed binary request: an Error frame (status +
// message) terminated by an End frame, under the binary content type.
func writeBinErr(w http.ResponseWriter, status int, msg string) {
	e := binwire.Get()
	defer binwire.Put(e)
	e.BeginFrame(binwire.FrameError)
	e.Uvarint(uint64(status))
	e.String(msg)
	e.EndFrame()
	e.BeginFrame(binwire.FrameEnd)
	e.EndFrame()
	w.Header().Set("Content-Type", BinaryContentType)
	w.WriteHeader(status)
	_, _ = w.Write(e.Bytes())
}

// wireStatus maps a decode-funnel error to its HTTP status: ErrLimit is
// 413, everything else (ErrSpec, malformed bytes) 400.
func wireStatus(err error) int {
	if errors.Is(err, ErrLimit) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// limits bundles the server's decode bounds.
func (s *Server) limits() Limits {
	return Limits{MaxBatch: s.opts.MaxBatch, MaxWindow: s.opts.MaxWindow}
}

// readBodyInto reads the size-capped request body into dst's backing
// array (grown as needed, reused across requests via the query-buffer
// pool) so the binary hot path does not allocate a fresh body buffer
// per request.
func readBodyInto(dst []byte, w http.ResponseWriter, r *http.Request, maxBody int64) ([]byte, error) {
	rd := http.MaxBytesReader(w, r.Body, maxBody)
	dst = dst[:0]
	if cap(dst) == 0 {
		dst = make([]byte, 0, 4096)
	}
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := rd.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// readBin reads a binary request body into buf.body, answering binary
// errors (400 malformed read, 413 oversized) itself.
func (s *Server) readBin(w http.ResponseWriter, r *http.Request, buf *queryBuf) bool {
	var err error
	buf.body, err = readBodyInto(buf.body, w, r, s.opts.MaxBody)
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeBinErr(w, status, fmt.Sprintf("reading request: %v", err))
		return false
	}
	return true
}

// joinTraceExt strips an optional leading trace-extension frame from a
// binary request body, joining the propagated context onto tr when the
// caller sampled and the instrument wrapper has not already started a
// span (a traceparent header outranks the in-band frame). Returns the
// remaining bytes — the request frame the decode funnels consume. The
// returned slice aliases body; callers must not hand it back to a pool
// while decoding.
func (s *Server) joinTraceExt(body []byte, ep int, tr *reqTrace) []byte {
	c, rest := DecodeTraceExt(body)
	if c.Valid() && c.Sampled && tr.span == nil {
		tr.span = s.rec.Join(epNames[ep], c.TraceID, c.Parent)
	}
	return rest
}

// planBin resolves a binary plan reference: the signature form is a
// pure cache lookup (404 on a miss, so the client re-sends the spec),
// the spec form compiles through the registry with the JSON path's
// status mapping.
func (s *Server) planBin(w http.ResponseWriter, ref BinPlanRef) (*core.Plan, bool) {
	if ref.Signature != "" {
		plan, ok := s.reg.Lookup(ref.Signature)
		if !ok {
			writeBinErr(w, http.StatusNotFound,
				fmt.Sprintf("unknown plan signature %q: re-send the full plan spec", ref.Signature))
			return nil, false
		}
		return plan, true
	}
	plan, err := s.reg.GetSpec(ref.Spec)
	if err != nil {
		writeBinErr(w, planErrStatus(err), err.Error())
		return nil, false
	}
	return plan, true
}

// binStream incrementally writes an encoded frame sequence to the
// client, flushing whenever the pooled buffer passes binFlushBytes.
// Write errors stick (the client hung up; nothing more to send).
type binStream struct {
	w     http.ResponseWriter
	e     *binwire.Buffer
	err   error
	wrote bool
}

// flush writes the buffered frames out if forced or past the flush
// threshold, returning false once the client is gone.
func (st *binStream) flush(force bool) bool {
	if st.err != nil {
		return false
	}
	if !force && st.e.Len() < binFlushBytes {
		return true
	}
	if st.e.Len() == 0 {
		return true
	}
	if !st.wrote {
		st.w.Header().Set("Content-Type", BinaryContentType)
		st.wrote = true
	}
	_, st.err = st.w.Write(st.e.Bytes())
	st.e.Reset()
	return st.err == nil
}

// end emits the terminating End frame and flushes everything.
func (st *binStream) end() {
	st.e.BeginFrame(binwire.FrameEnd)
	st.e.EndFrame()
	st.flush(true)
}

// emitSlotsChunk appends one slots chunk frame.
func (st *binStream) emitSlotsChunk(slots []int32) bool {
	st.e.BeginFrame(binwire.FrameSlotsChunk)
	st.e.Uvarint(uint64(len(slots)))
	for _, v := range slots {
		st.e.Uvarint(uint64(v))
	}
	st.e.EndFrame()
	return st.flush(false)
}

// emitMayChunk appends one bit-packed may chunk frame (LSB-first,
// eight flags per byte).
func (st *binStream) emitMayChunk(flags []bool) bool {
	st.e.BeginFrame(binwire.FrameMayChunk)
	st.e.Uvarint(uint64(len(flags)))
	var b byte
	for i, f := range flags {
		if f {
			b |= 1 << (i % 8)
		}
		if i%8 == 7 {
			st.e.Byte(b)
			b = 0
		}
	}
	if len(flags)%8 != 0 {
		st.e.Byte(b)
	}
	st.e.EndFrame()
	return st.flush(false)
}

// handleBatchBin serves one binary batch request (slots when may is
// false, may-broadcast when true): decode through the fuzzed binary
// funnel, resolve the plan, pre-validate dimensions so the engine
// cannot fail mid-stream, then stream head + chunk frames + end.
func (s *Server) handleBatchBin(w http.ResponseWriter, r *http.Request, may bool, tr *reqTrace) {
	decodeStart := time.Now()
	buf := s.bufs.Get().(*queryBuf)
	defer s.putBuf(buf)
	if !s.readBin(w, r, buf) {
		return
	}
	sc := s.binScratch.Get().(*BinScratch)
	defer func() {
		sc.Release()
		s.binScratch.Put(sc)
	}()
	ep := epSlots
	if may {
		ep = epMay
	}
	body := s.joinTraceExt(buf.body, ep, tr)
	req, err := DecodeBinaryBatch(body, s.limits(), sc)
	if err != nil {
		writeBinErr(w, wireStatus(err), err.Error())
		return
	}
	want := binwire.FrameBatchSlots
	if may {
		want = binwire.FrameBatchMay
	}
	if req.Kind != want {
		writeBinErr(w, http.StatusBadRequest,
			fmt.Sprintf("frame type %#x does not match this endpoint", req.Kind))
		return
	}
	plan, ok := s.planBin(w, req.Plan)
	if !ok {
		return
	}
	// Uniform-dimension pre-check: the batch decoder guarantees every
	// point (or the window) shares one dimension, so checking it here
	// once means the engine cannot error after the head frame is out.
	dim := len(req.Points)
	if req.UseWindow {
		dim = req.Window.Dim()
	} else if dim > 0 {
		dim = len(req.Points[0])
	}
	if dim != plan.Tile().Dim() {
		writeBinErr(w, http.StatusBadRequest,
			fmt.Sprintf("query dimension %d ≠ plan dimension %d", dim, plan.Tile().Dim()))
		return
	}
	total := len(req.Points)
	if req.UseWindow {
		total = req.Window.Size()
	}
	s.batchRequests.Add(1)
	s.batchPoints.Add(int64(total))
	tr.sig = plan.Signature()
	tr.batch = total
	tr.decodeNs = time.Since(decodeStart)
	// On the streaming path the engine and encode phases interleave
	// chunk by chunk; the whole stream is accounted to the engine phase
	// and encodeNs stays zero.
	engineStart := time.Now()
	defer func() { tr.engineNs = time.Since(engineStart) }()

	e := binwire.Get()
	defer binwire.Put(e)
	st := binStream{w: w, e: e}
	if may {
		st.e.BeginFrame(binwire.FrameMayHead)
		st.e.Uvarint(uint64(plan.Slots()))
		st.e.Varint(req.T)
		st.e.Uvarint(uint64(total))
		st.e.EndFrame()
		if req.UseWindow {
			err = QueryWindowMayChunked(plan, req.Window, req.T, binChunkPoints, buf.may[:0], st.emitMayChunk)
		} else {
			buf.may, err = QueryMayBroadcast(plan, req.Points, req.T, buf.may[:0])
			for off := 0; err == nil && off < len(buf.may); off += binChunkPoints {
				if !st.emitMayChunk(buf.may[off:min(off+binChunkPoints, len(buf.may))]) {
					return
				}
			}
		}
	} else {
		st.e.BeginFrame(binwire.FrameSlotsHead)
		st.e.Uvarint(uint64(plan.Slots()))
		st.e.Uvarint(uint64(total))
		st.e.EndFrame()
		if req.UseWindow {
			err = QueryWindowSlotsChunked(plan, req.Window, binChunkPoints, buf.slots[:0], st.emitSlotsChunk)
		} else {
			buf.slots, err = QuerySlots(plan, req.Points, buf.slots[:0])
			for off := 0; err == nil && off < len(buf.slots); off += binChunkPoints {
				if !st.emitSlotsChunk(buf.slots[off:min(off+binChunkPoints, len(buf.slots))]) {
					return
				}
			}
		}
	}
	if err != nil {
		// Unreachable after the dimension pre-check, but if the engine
		// ever fails before the head frame went out, answer properly;
		// mid-stream the truncated sequence (no End frame) is the signal.
		if !st.wrote {
			writeBinErr(w, http.StatusBadRequest, err.Error())
		}
		return
	}
	st.end()
}

// handleMutateBin serves one binary mutate request through the same
// session core as the JSON handler and answers a MutateResult frame
// (also on epoch conflicts, status 409, so the client sees the current
// epoch) or an Error frame for plan/session failures.
func (s *Server) handleMutateBin(w http.ResponseWriter, r *http.Request, tr *reqTrace) {
	s.mutateRequests.Add(1)
	decodeStart := time.Now()
	buf := s.bufs.Get().(*queryBuf)
	defer s.putBuf(buf)
	if !s.readBin(w, r, buf) {
		return
	}
	body := s.joinTraceExt(buf.body, epMutate, tr)
	req, err := DecodeBinaryMutate(body, s.limits())
	if err != nil {
		writeBinErr(w, wireStatus(err), err.Error())
		return
	}
	plan, ok := s.planBin(w, req.Plan)
	if !ok {
		return
	}
	tr.sig = plan.Signature()
	tr.batch = len(req.Events)
	tr.decodeNs = time.Since(decodeStart)
	if req.Window.Dim() != plan.Tile().Dim() {
		writeBinErr(w, http.StatusBadRequest,
			fmt.Sprintf("window dimension %d ≠ plan dimension %d", req.Window.Dim(), plan.Tile().Dim()))
		return
	}
	engineStart := time.Now()
	resp, status, cerr := s.mutateCore(plan, req.Window, req.HasEpoch, req.Epoch, req.Full, req.Events, tr.span)
	tr.engineNs = time.Since(engineStart)
	if cerr != nil {
		writeBinErr(w, status, cerr.Error())
		return
	}
	encodeStart := time.Now()
	e := binwire.Get()
	defer binwire.Put(e)
	encodeMutateResponse(e, resp)
	w.Header().Set("Content-Type", BinaryContentType)
	w.WriteHeader(status)
	_, _ = w.Write(e.Bytes())
	tr.encodeNs = time.Since(encodeStart)
}
