package service

// End-to-end coverage of the epoch-propagation tracing plane
// (DESIGN.md §14): W3C traceparent propagation on the JSON codec, the
// binary trace-extension frame, the mutate→WAL→publish→deliver span
// tree, the slow-log trace link, the /statusz lag watermarks, and the
// zero-allocation guard on the untraced hot path.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tilingsched/internal/obs/trace"
	"tilingsched/internal/service/binwire"
)

// traceMutate posts one JSON mutate request and returns the recorder.
func traceMutate(t *testing.T, s *Server, body string, hdr map[string]string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/plan:mutate", strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("mutate: %d %s", rec.Code, rec.Body)
	}
	return rec
}

const tracingMutateBody = `{"plan":{"tile":{"name":"cross:2:1"}},"window":{"lo":[0,0],"hi":[4,4]},"events":[{"op":"leave","p":[%d,%d]}]}`

// TestTraceExtRoundtrip pins the binary trace-extension frame codec:
// encode → decode recovers the context and yields exactly the trailing
// bytes, and non-extension inputs pass through untouched.
func TestTraceExtRoundtrip(t *testing.T) {
	want := trace.Context{Sampled: true}
	want.TraceID[0], want.TraceID[15] = 0xab, 0x01
	want.Parent[3] = 0x7f
	var e binwire.Buffer
	EncodeTraceExt(&e, want)
	payload := []byte("request frame bytes")
	data := append(append([]byte(nil), e.Bytes()...), payload...)

	got, rest := DecodeTraceExt(data)
	if got != want {
		t.Fatalf("DecodeTraceExt = %+v, want %+v", got, want)
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("rest = %q, want %q", rest, payload)
	}

	// Unsampled flag survives.
	want.Sampled = false
	e.Reset()
	EncodeTraceExt(&e, want)
	if got, _ := DecodeTraceExt(e.Bytes()); got.Sampled {
		t.Fatal("unsampled context decoded as sampled")
	}

	// Non-extension bytes pass through untouched with a zero context.
	for _, in := range [][]byte{nil, {}, []byte("short"), payload} {
		ctx, rest := DecodeTraceExt(in)
		if ctx.Valid() || !bytes.Equal(rest, in) {
			t.Fatalf("passthrough of %q: ctx %+v rest %q", in, ctx, rest)
		}
	}

	// A well-formed frame carrying the invalid all-zero IDs is stripped
	// but yields no context.
	e.Reset()
	EncodeTraceExt(&e, trace.Context{Sampled: true})
	data = append(append([]byte(nil), e.Bytes()...), payload...)
	ctx, rest := DecodeTraceExt(data)
	if ctx.Valid() {
		t.Fatal("all-zero IDs produced a valid context")
	}
	if !bytes.Equal(rest, payload) {
		t.Fatalf("zero-ID frame not stripped: rest %q", rest)
	}
}

// TestTraceparentJSONPropagation drives a mutate request carrying a
// W3C traceparent through a sampling server: the server must join the
// caller's trace (same trace ID, remote), echo a traceparent response
// header, and retain the span tree at the recorder.
func TestTraceparentJSONPropagation(t *testing.T) {
	s := NewServer(NewRegistry(4), ServerOptions{TraceSampleEvery: 1})
	const parent = "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-01"
	rec := traceMutate(t, s, jsonMutateAt(1, 1),
		map[string]string{"Traceparent": parent})

	echo := rec.Header().Get("Traceparent")
	c, ok := trace.ParseTraceparent(echo)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", echo)
	}
	if got := c.TraceID.String(); got != "0123456789abcdef0123456789abcdef" {
		t.Fatalf("echoed trace ID %s, want the caller's", got)
	}
	v, ok := s.Traces().Lookup("0123456789abcdef0123456789abcdef")
	if !ok {
		t.Fatal("joined trace not in the ring")
	}
	if !v.Remote || v.Kind != "mutate" {
		t.Fatalf("joined trace view: %+v", v)
	}
	if v.ParentSpanID != "00f067aa0ba902b7" {
		t.Fatalf("parent span ID %s, want the caller's", v.ParentSpanID)
	}
	names := spanNames(v)
	for _, want := range []string{"overlay-apply", "hub-publish", "decode", "engine"} {
		if want == "hub-publish" && !names["hub-publish"] {
			continue // no subscriber attached: publish is skipped
		}
		if want != "hub-publish" && !names[want] {
			t.Fatalf("trace missing %q span: %v", want, v.Spans)
		}
	}
}

// TestTraceparentUnsampledIgnored: a propagated context without the
// sampled flag must not force a trace on a non-sampling server.
func TestTraceparentUnsampledIgnored(t *testing.T) {
	s := NewServer(NewRegistry(4), ServerOptions{}) // sampling off
	rec := traceMutate(t, s, jsonMutateAt(1, 1),
		map[string]string{"Traceparent": "00-0123456789abcdef0123456789abcdef-00f067aa0ba902b7-00"})
	if h := rec.Header().Get("Traceparent"); h != "" {
		t.Fatalf("unsampled request echoed traceparent %q", h)
	}
	if n := s.Traces().Started.Load(); n != 0 {
		t.Fatalf("%d traces started, want 0", n)
	}
}

// TestTraceSpanTreeEndToEnd drives the full propagation pipeline with
// persistence and a live subscriber: one sampled mutate must retain a
// trace whose spans cover overlay-apply, wal-append, hub-publish, and
// the subscriber's deliver — each stamped with the epoch.
func TestTraceSpanTreeEndToEnd(t *testing.T) {
	s := NewServer(NewRegistry(4), ServerOptions{TraceSampleEvery: 1})
	if err := s.EnablePersistence(PersistOptions{Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	spec := PlanSpec{Tile: TileSpec{Name: "cross:2:1"}}
	ws := WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}}
	feed, err := s.Subscribe(spec, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()

	traceMutate(t, s, jsonMutateAt(2, 2), nil)

	var d *Delta
	select {
	case d = <-feed.C:
	case <-time.After(5 * time.Second):
		t.Fatal("no delta delivered")
	}
	feed.Mark(d)

	views := s.Traces().Snapshot()
	var mutateView *trace.View
	for i := range views {
		if views[i].Kind == "mutate" {
			mutateView = &views[i]
			break
		}
	}
	if mutateView == nil {
		t.Fatalf("no mutate trace in ring: %+v", views)
	}
	names := spanNames(*mutateView)
	for _, want := range []string{"overlay-apply", "wal-append", "hub-publish", "deliver"} {
		if !names[want] {
			t.Fatalf("span tree missing %q: %v", want, mutateView.Spans)
		}
	}
	for _, sp := range mutateView.Spans {
		switch sp.Name {
		case "overlay-apply", "wal-append", "hub-publish", "deliver":
			if sp.Epoch != 1 {
				t.Fatalf("span %s at epoch %d, want 1", sp.Name, sp.Epoch)
			}
			if sp.EndNs < sp.StartNs {
				t.Fatalf("span %s ends before it starts: %+v", sp.Name, sp)
			}
		}
	}

	// The exemplar ring links the delivery back to this trace.
	exs := s.met.exemplars()
	if len(exs) == 0 || exs[0].TraceID != mutateView.TraceID || exs[0].Epoch != 1 {
		t.Fatalf("exemplars = %+v, want trace %s at epoch 1", exs, mutateView.TraceID)
	}
}

// spanNames collects the set of span names in a view.
func spanNames(v trace.View) map[string]bool {
	names := make(map[string]bool, len(v.Spans))
	for _, sp := range v.Spans {
		names[sp.Name] = true
	}
	return names
}

// TestTraceExtBinaryJoin sends a binary mutate prefixed with a
// trace-extension frame to a non-sampling server: the in-band sampled
// context must join exactly like a traceparent header would.
func TestTraceExtBinaryJoin(t *testing.T) {
	s := NewServer(NewRegistry(4), ServerOptions{}) // sampling off: only the join records
	var c trace.Context
	c.TraceID[7], c.Parent[2], c.Sampled = 0x42, 0x03, true

	var e binwire.Buffer
	EncodeTraceExt(&e, c)
	if err := EncodeMutateBinary(&e, MutateRequest{
		Plan:   PlanSpec{Tile: TileSpec{Name: "cross:2:1"}},
		Window: WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}},
		Events: []EventSpec{{Op: "leave", P: []int{1, 1}}},
	}, ""); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/plan:mutate", bytes.NewReader(e.Bytes()))
	req.Header.Set("Content-Type", BinaryContentType)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("binary mutate: %d", rec.Code)
	}

	v, ok := s.Traces().Lookup(c.TraceID.String())
	if !ok {
		t.Fatal("in-band joined trace not in the ring")
	}
	if !v.Remote || v.Kind != "mutate" {
		t.Fatalf("joined trace view: %+v", v)
	}
	if !spanNames(v)["overlay-apply"] {
		t.Fatalf("joined trace missing the epoch timeline: %v", v.Spans)
	}

	// An unsampled extension frame must strip cleanly and trace nothing.
	e.Reset()
	c.Sampled = false
	EncodeTraceExt(&e, c)
	if err := EncodeMutateBinary(&e, MutateRequest{
		Plan:   PlanSpec{Tile: TileSpec{Name: "cross:2:1"}},
		Window: WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}},
		Events: []EventSpec{{Op: "leave", P: []int{2,
			2}}},
	}, ""); err != nil {
		t.Fatal(err)
	}
	started := s.Traces().Started.Load()
	req = httptest.NewRequest("POST", "/v1/plan:mutate", bytes.NewReader(e.Bytes()))
	req.Header.Set("Content-Type", BinaryContentType)
	rec = httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("binary mutate: %d %s", rec.Code, rec.Body)
	}
	if got := s.Traces().Started.Load(); got != started {
		t.Fatalf("unsampled extension started a trace (%d → %d)", started, got)
	}
}

// TestSlowLogLinksTrace pins always-sample-on-slow: with sampling off
// and an everything-is-slow threshold, the slow-log entry must carry a
// trace ID that resolves in the ring to a forced trace with the phase
// spans.
func TestSlowLogLinksTrace(t *testing.T) {
	slow := make(chan SlowRequest, 1)
	s := NewServer(NewRegistry(4), ServerOptions{
		SlowThreshold: time.Nanosecond,
		SlowLog: func(sr SlowRequest) {
			select {
			case slow <- sr:
			default:
			}
		},
	})
	traceMutate(t, s, jsonMutateAt(1, 1), nil)
	select {
	case sr := <-slow:
		if sr.Trace == "" {
			t.Fatalf("slow entry has no trace ID: %+v", sr)
		}
		v, ok := s.Traces().Lookup(sr.Trace)
		if !ok {
			t.Fatalf("slow trace %s not in the ring", sr.Trace)
		}
		if !v.Forced {
			t.Fatalf("retro-sampled trace not marked forced: %+v", v)
		}
		if !spanNames(v)["engine"] {
			t.Fatalf("forced trace missing phase spans: %v", v.Spans)
		}
	default:
		t.Fatal("no slow entry captured")
	}
}

// TestStatuszWatermarks drives churn past a lagging subscriber and
// checks the introspection plane end to end: lag watermarks reflect
// the backlog, then return to zero once the subscriber catches up, and
// the HTTP handler serves both JSON and HTML.
func TestStatuszWatermarks(t *testing.T) {
	s := NewServer(NewRegistry(4), ServerOptions{TraceSampleEvery: 1})
	if err := s.EnablePersistence(PersistOptions{Dir: t.TempDir()}); err != nil {
		t.Fatal(err)
	}
	spec := PlanSpec{Tile: TileSpec{Name: "cross:2:1"}}
	ws := WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}}
	feed, err := s.Subscribe(spec, ws, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer feed.Close()

	const epochs = 3
	points := [][2]int{{1, 1}, {2, 2}, {3, 3}}
	for i := 0; i < epochs; i++ {
		traceMutate(t, s, jsonMutateAt(points[i][0], points[i][1]), nil)
	}

	resp := s.Statusz()
	if len(resp.Sessions) != 1 {
		t.Fatalf("sessions = %+v, want 1", resp.Sessions)
	}
	row := resp.Sessions[0]
	if row.Epoch != epochs || row.Subscribers != 1 {
		t.Fatalf("row = %+v", row)
	}
	if row.QueueSum != epochs || row.QueueMax != epochs {
		t.Fatalf("queue depths %d/%d, want %d undelivered", row.QueueMax, row.QueueSum, epochs)
	}
	if row.LagEpochsMax != epochs || resp.LagEpochsMax != epochs {
		t.Fatalf("lag epochs max %d/%d, want %d", row.LagEpochsMax, resp.LagEpochsMax, epochs)
	}
	if row.WALBytes == 0 || row.WALEvents != epochs {
		t.Fatalf("WAL stats %d bytes / %d events", row.WALBytes, row.WALEvents)
	}
	if resp.TraceSampleEvery != 1 || resp.TracesFinished == 0 {
		t.Fatalf("trace counters %+v", resp)
	}

	// Catch up: drain and mark every delta, then the watermarks must
	// read zero — the "churn stopped, everyone caught up" signal.
	for i := 0; i < epochs; i++ {
		select {
		case d := <-feed.C:
			feed.Mark(d)
		case <-time.After(5 * time.Second):
			t.Fatal("delta missing")
		}
	}
	resp = s.Statusz()
	row = resp.Sessions[0]
	if row.LagEpochsMax != 0 || row.LagTimeNsMax != 0 || row.QueueSum != 0 {
		t.Fatalf("caught-up row still lags: %+v", row)
	}
	if resp.LagEpochsMax != 0 || resp.LagTimeNsMax != 0 {
		t.Fatalf("caught-up globals still lag: %+v", resp)
	}
	if resp.PropagationP99Ns <= 0 || len(resp.PropagationExemplars) == 0 {
		t.Fatalf("propagation summary empty: %+v", resp)
	}

	// The wire faces: JSON decodes into the same shape, HTML renders.
	rec := httptest.NewRecorder()
	s.HandleStatusz(rec, httptest.NewRequest("GET", "/statusz", nil))
	var wire StatuszResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &wire); err != nil {
		t.Fatalf("statusz JSON: %v", err)
	}
	if len(wire.Sessions) != 1 || wire.Sessions[0].Epoch != epochs {
		t.Fatalf("wire statusz %+v", wire)
	}
	rec = httptest.NewRecorder()
	s.HandleStatusz(rec, httptest.NewRequest("GET", "/statusz?format=html", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("html content type %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "<table") {
		t.Fatal("html statusz has no table")
	}

	// /debug/traces serves the ring as JSON.
	rec = httptest.NewRecorder()
	s.HandleTraces(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var dump trace.Dump
	if err := json.Unmarshal(rec.Body.Bytes(), &dump); err != nil {
		t.Fatalf("traces JSON: %v", err)
	}
	if dump.SampleEvery != 1 || len(dump.Traces) == 0 {
		t.Fatalf("traces dump %+v", dump)
	}
}

// jsonMutateAt renders a one-leave mutate body at (x, y).
func jsonMutateAt(x, y int) string {
	return fmt.Sprintf(tracingMutateBody, x, y)
}

// TestUntracedHotPathZeroAlloc is the tracing plane's zero-overhead
// guard: with sampling off, the per-request trace decision and the
// per-delivery bookkeeping must not allocate, preserving the
// instrumented path's 0 allocs/op contract (BENCH baseline).
func TestUntracedHotPathZeroAlloc(t *testing.T) {
	s := NewServer(NewRegistry(2), ServerOptions{}) // sampling off
	req := httptest.NewRequest("POST", "/v1/slots:batch", nil)
	if n := testing.AllocsPerRun(1000, func() {
		if vals := req.Header[traceparentHeader]; len(vals) > 0 {
			t.Fatal("unexpected traceparent")
		}
		if sp := s.rec.Start("slots"); sp != nil {
			t.Fatal("sampling off yielded a span")
		}
	}); n != 0 {
		t.Fatalf("untraced request decision allocates %v per run, want 0", n)
	}

	sub := &subscriber{ch: make(chan *Delta, 1)}
	live := &Delta{Epoch: 1, PubTime: time.Now()}
	catch := &Delta{Epoch: 1}
	if n := testing.AllocsPerRun(1000, func() {
		s.markDelivered(sub, live)
		s.markDelivered(sub, catch)
	}); n != 0 {
		t.Fatalf("untraced delivery bookkeeping allocates %v per run, want 0", n)
	}
}

// FuzzDecodeTraceExt pins the trace-extension strip under the funnel
// contract: never panic, the remainder is always a suffix of the
// input, and feeding that remainder to a downstream decode funnel
// stays panic-free too.
func FuzzDecodeTraceExt(f *testing.F) {
	var c trace.Context
	c.TraceID[0], c.Parent[0], c.Sampled = 1, 2, true
	seeds := [][]byte{
		binarySeed(func(e *binwire.Buffer) { EncodeTraceExt(e, c) }),
		binarySeed(func(e *binwire.Buffer) {
			EncodeTraceExt(e, c)
			EncodeBatchBinary(e, BatchRequest{
				Plan:   PlanSpec{Tile: TileSpec{Name: "cross:2:1"}},
				Points: [][]int{{3, 4}},
			}, false, "")
		}),
		binarySeed(func(e *binwire.Buffer) { EncodeTraceExt(e, trace.Context{}) }),
		{0x05}, {26, 0, 0, 0, 0x05}, []byte("not a frame"), {},
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		ctx, rest := DecodeTraceExt(data)
		if len(rest) > len(data) || (len(rest) > 0 && !bytes.Equal(rest, data[len(data)-len(rest):])) {
			t.Fatalf("rest %q is not a suffix of input %q", rest, data)
		}
		if ctx.Valid() && (ctx.TraceID.IsZero() || ctx.Parent.IsZero()) {
			t.Fatalf("valid context with zero IDs: %+v", ctx)
		}
		var sc BinScratch
		_, _ = DecodeBinaryBatch(rest, Limits{}, &sc)
		_, _ = DecodeBinaryMutate(rest, Limits{})
	})
}
