package service

// The differential subscriber oracle — the push plane's headline test.
// A scripted churn run drives a session through E epochs while N
// concurrent subscribers maintain local assignment copies from the
// stream. The oracle invariant: at every epoch a subscriber applied, its
// copy serializes byte-identically to the authoritative assignment at
// that epoch (folded from the mutate responses, and cross-checked
// against a server full resync at the end). The legs cover the hard
// paths — mid-stream disconnect + epoch-resume (WAL catch-up),
// slow-consumer drop + reconnect, LRU eviction + disk restore, and a
// server "restart" over the same data directory — and the whole
// harness runs under all three base graph modes (periodic stencil,
// bitset, CSR), since the push plane must be codec- and
// representation-agnostic.

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"tilingsched/internal/graph"
	"tilingsched/internal/lattice"
	"tilingsched/internal/service/binwire"
)

// canonAssign serializes a key→slot copy canonically (sorted keys), so
// two equal assignments are byte-identical.
func canonAssign(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d;", k, m[k])
	}
	return b.String()
}

// oracleRefs is the authoritative per-epoch assignment history, folded
// from the mutate responses as the churn script applies them.
type oracleRefs struct {
	mu     sync.Mutex
	states map[uint64]string
}

func (o *oracleRefs) record(epoch uint64, canon string) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.states[epoch] = canon
}

func (o *oracleRefs) get(epoch uint64) (string, bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	s, ok := o.states[epoch]
	return s, ok
}

// oracleChurn drives finalEpoch scripted batches against the default
// oracle window, folding every response into ref and recording the
// canonical state per epoch. The script is seeded, so every mode run
// sees the same churn; events are generated against the live set so no
// batch is rejected.
func oracleChurn(t *testing.T, s *Server, refs *oracleRefs, seed int64, finalEpoch uint64, perEpoch func(epoch uint64)) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	ref := map[string]int{}
	alive := map[[2]int]bool{}
	seedResp := mutateJSON(t, s, persistBody(`"events":[],"full":true`), http.StatusOK)
	for _, ch := range seedResp.Changed {
		ref[lattice.Point(ch.P).Key()] = ch.Slot
		alive[[2]int{ch.P[0], ch.P[1]}] = true
	}
	refs.record(0, canonAssign(ref))

	randPoint := func(wantAlive bool) ([2]int, bool) {
		for tries := 0; tries < 64; tries++ {
			p := [2]int{rng.Intn(9) - 2, rng.Intn(9) - 2}
			if alive[p] == wantAlive {
				return p, true
			}
		}
		return [2]int{}, false
	}
	for e := uint64(1); e <= finalEpoch; e++ {
		var events []string
		n := 1 + rng.Intn(3)
		for i := 0; i < n; i++ {
			switch rng.Intn(4) {
			case 0: // join a dead position
				if p, ok := randPoint(false); ok {
					events = append(events, fmt.Sprintf(`{"op":"join","p":[%d,%d]}`, p[0], p[1]))
					alive[p] = true
				}
			case 1: // leave an alive position
				if p, ok := randPoint(true); ok {
					events = append(events, fmt.Sprintf(`{"op":"leave","p":[%d,%d]}`, p[0], p[1]))
					alive[p] = false
				}
			case 2: // fail an alive position
				if p, ok := randPoint(true); ok {
					events = append(events, fmt.Sprintf(`{"op":"fail","p":[%d,%d]}`, p[0], p[1]))
					alive[p] = false
				}
			default: // move alive → dead
				p, okP := randPoint(true)
				q, okQ := randPoint(false)
				if okP && okQ && p != q {
					events = append(events, fmt.Sprintf(`{"op":"move","p":[%d,%d],"to":[%d,%d]}`, p[0], p[1], q[0], q[1]))
					alive[p] = false
					alive[q] = true
				}
			}
		}
		if len(events) == 0 { // degenerate roll: keep the epoch moving
			p, _ := randPoint(false)
			events = append(events, fmt.Sprintf(`{"op":"join","p":[%d,%d]}`, p[0], p[1]))
			alive[p] = true
		}
		resp := mutateJSON(t, s, persistBody(`"events":[`+strings.Join(events, ",")+`]`), http.StatusOK)
		if resp.Epoch != e {
			t.Fatalf("churn epoch %d answered %d", e, resp.Epoch)
		}
		for _, ch := range resp.Changed {
			if ch.Slot < 0 {
				delete(ref, lattice.Point(ch.P).Key())
			} else {
				ref[lattice.Point(ch.P).Key()] = ch.Slot
			}
		}
		refs.record(e, canonAssign(ref))
		if perEpoch != nil {
			perEpoch(e)
		}
	}

	// Cross-check the folded reference against a server full resync: the
	// oracle's ground truth is itself verified, not assumed.
	final := mutateJSON(t, s, persistBody(`"events":[],"full":true`), http.StatusOK)
	check := map[string]int{}
	for _, ch := range final.Changed {
		check[lattice.Point(ch.P).Key()] = ch.Slot
	}
	if canonAssign(check) != canonAssign(ref) {
		t.Fatal("folded reference diverged from the server's full resync")
	}
}

// oracleSubscriber consumes a subscription stream over HTTP, applying
// every delta to a local copy and checking it against the reference at
// each epoch. On any server-side termination (Bye) or disconnect it
// reconnects with its last applied epoch, until it has verified
// finalEpoch. reconnects counts the attach cycles.
type oracleSubscriber struct {
	name    string
	codec   string
	url     string
	refs    *oracleRefs
	copyMap map[string]int
	last    uint64
	checked int
	// progress mirrors last for the churn driver: legs that must hit an
	// attached subscriber (eviction) wait on it before acting.
	progress atomic.Uint64
}

func (o *oracleSubscriber) subscribeBody(epoch *uint64) []byte {
	if o.codec == BinaryContentType {
		e := binwire.Get()
		defer binwire.Put(e)
		EncodeSubscribeBinary(e, SubscribeRequest{
			Plan:   PlanSpec{Tile: TileSpec{Name: "cross:2:1"}},
			Window: WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}},
			Epoch:  epoch,
		}, "")
		return append([]byte(nil), e.Bytes()...)
	}
	if epoch != nil {
		return []byte(subBody(fmt.Sprintf(`"epoch":%d`, *epoch)))
	}
	return []byte(subBody(""))
}

// verify applies one stream delta and checks the copy against the
// reference at the delta's epoch. The reference may not be recorded yet
// (the subscriber can outrun the churn goroutine's bookkeeping), so it
// polls briefly; a missing reference after that is a real divergence.
func (o *oracleSubscriber) verify(t *testing.T, d SubscribeDelta) {
	t.Helper()
	applyDelta(o.copyMap, d)
	if d.Epoch < o.last {
		t.Fatalf("%s: epoch went backwards: %d after %d", o.name, d.Epoch, o.last)
	}
	o.last = d.Epoch
	want, ok := o.refs.get(d.Epoch)
	for tries := 0; !ok && tries < 5000; tries++ {
		time.Sleep(100 * time.Microsecond)
		want, ok = o.refs.get(d.Epoch)
	}
	if !ok {
		t.Fatalf("%s: no reference for epoch %d", o.name, d.Epoch)
	}
	if got := canonAssign(o.copyMap); got != want {
		t.Fatalf("%s: copy diverged at epoch %d:\n got %s\nwant %s", o.name, d.Epoch, got, want)
	}
	o.checked++
	o.progress.Store(o.last)
}

// run consumes the stream until finalEpoch is verified. disconnectAt,
// when non-zero, forces one client-side disconnect at that epoch (the
// resume then exercises the WAL catch-up path).
func (o *oracleSubscriber) run(t *testing.T, finalEpoch uint64, disconnectAt uint64) {
	t.Helper()
	var epoch *uint64
	first := true
	for o.last < finalEpoch || first {
		first = false
		ctx, cancel := context.WithCancel(context.Background())
		req, err := http.NewRequestWithContext(ctx, "POST", o.url+"/v1/plan:subscribe",
			strings.NewReader(string(o.subscribeBody(epoch))))
		if err != nil {
			cancel()
			t.Fatalf("%s: building request: %v", o.name, err)
		}
		req.Header.Set("Content-Type", o.codec)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			cancel()
			t.Fatalf("%s: POST: %v", o.name, err)
		}
		if resp.StatusCode != http.StatusOK {
			resp.Body.Close()
			cancel()
			// Mid-eviction attach can lose a race; retry.
			time.Sleep(time.Millisecond)
			continue
		}
		st, err := OpenSubscribeStream(resp.Body, resp.Header.Get("Content-Type"))
		if err != nil {
			resp.Body.Close()
			cancel()
			t.Fatalf("%s: opening stream: %v", o.name, err)
		}
		for o.last < finalEpoch {
			d, err := st.Next()
			if err != nil {
				break // Bye or disconnect: reconnect below
			}
			o.verify(t, d)
			if disconnectAt != 0 && o.last >= disconnectAt {
				disconnectAt = 0
				break // deliberate mid-stream disconnect
			}
		}
		resp.Body.Close()
		cancel()
		e := o.last
		epoch = &e // resume from the last applied epoch
	}
}

// oracleServer builds a persistence-backed server with the given base
// graph mode forced on its session table.
func oracleServer(t *testing.T, dir string, mode graph.Mode, opts ServerOptions) *Server {
	t.Helper()
	s := NewServer(NewRegistry(8), opts)
	if err := s.EnablePersistence(PersistOptions{Dir: dir}); err != nil {
		t.Fatalf("EnablePersistence: %v", err)
	}
	s.sessions.baseMode = mode
	return s
}

// oracleModes names the base graph mode sweep. graph.Auto selects the
// production configuration (periodic identity-residue stencil); the
// other two force an explicit conflict-graph representation.
var oracleModes = []struct {
	name string
	mode graph.Mode
}{
	{"periodic", graph.Auto},
	{"bitset", graph.Bitset},
	{"csr", graph.CSR},
}

// TestSubscriberOracle is the differential oracle's main leg: scripted
// churn with concurrent subscribers in both codecs, one of which
// disconnects mid-stream and resumes from its epoch (WAL catch-up). Every
// applied epoch is checked byte-identical to the reference, under all
// three base graph modes.
func TestSubscriberOracle(t *testing.T) {
	const finalEpoch = 40
	for _, m := range oracleModes {
		t.Run(m.name, func(t *testing.T) {
			s := oracleServer(t, t.TempDir(), m.mode, ServerOptions{})
			srv := httptest.NewServer(s)
			defer srv.Close()
			refs := &oracleRefs{states: map[uint64]string{}}

			subs := []*oracleSubscriber{
				{name: "json", codec: "application/json"},
				{name: "bin", codec: BinaryContentType},
				{name: "json-reconnect", codec: "application/json"},
				{name: "bin-reconnect", codec: BinaryContentType},
			}
			var wg sync.WaitGroup
			started := make(chan struct{}, len(subs))
			for i, o := range subs {
				o.url = srv.URL
				o.refs = refs
				o.copyMap = map[string]int{}
				disconnectAt := uint64(0)
				if strings.HasSuffix(o.name, "reconnect") {
					disconnectAt = finalEpoch / 3
				}
				wg.Add(1)
				go func(o *oracleSubscriber, d uint64, i int) {
					defer wg.Done()
					started <- struct{}{}
					o.run(t, finalEpoch, d)
				}(o, disconnectAt, i)
			}
			for range subs {
				<-started
			}
			oracleChurn(t, s, refs, 0xC0FFEE, finalEpoch, nil)
			wg.Wait()
			if t.Failed() {
				return
			}
			want, _ := refs.get(finalEpoch)
			for _, o := range subs {
				if got := canonAssign(o.copyMap); got != want {
					t.Errorf("%s: final copy diverged", o.name)
				}
				if o.checked == 0 {
					t.Errorf("%s: verified no epochs", o.name)
				}
			}
		})
	}
}

// TestSubscriberOracleSlowDrop forces the drop→reconnect cycle: an
// in-process subscriber with a depth-2 queue stops reading mid-churn
// until the hub drops it, then resubscribes from its last epoch and
// must converge byte-identically. Swept across base modes because the
// catch-up replay (not just live fan-out) runs under each.
func TestSubscriberOracleSlowDrop(t *testing.T) {
	const finalEpoch = 30
	for _, m := range oracleModes {
		t.Run(m.name, func(t *testing.T) {
			s := oracleServer(t, t.TempDir(), m.mode, ServerOptions{SubscribeQueue: 2})
			refs := &oracleRefs{states: map[uint64]string{}}
			spec := PlanSpec{Tile: TileSpec{Name: "cross:2:1"}}
			ws := WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}}

			feed, err := s.Subscribe(spec, ws, nil)
			if err != nil {
				t.Fatalf("subscribe: %v", err)
			}
			copyMap := map[string]int{}
			var last uint64
			checkedDrop := false

			apply := func(d *Delta) {
				applyDelta(copyMap, deltaWire(d))
				last = d.Epoch
				if want, ok := refs.get(d.Epoch); ok && canonAssign(copyMap) != want {
					t.Fatalf("copy diverged at epoch %d", d.Epoch)
				}
			}
			for _, d := range feed.Catch {
				apply(d)
			}

			// Churn sequentially; the feed is not read, so the depth-2
			// queue overflows and the hub drops it during the run.
			oracleChurn(t, s, refs, 42, finalEpoch, nil)
			for d := range feed.C {
				apply(d)
			}
			if feed.Reason() != byeSlow {
				t.Fatalf("feed ended with %q, want slow drop", feed.Reason())
			}
			feed.Close()
			if s.Snapshot().Sessions.SubscriberDrops != 1 {
				t.Fatalf("drop accounting %+v", s.Snapshot().Sessions)
			}

			// Resume from the last applied epoch: the WAL covers the gap,
			// so the catch-up deltas must re-converge the copy per epoch.
			resume := last
			feed, err = s.Subscribe(spec, ws, &resume)
			if err != nil {
				t.Fatalf("resubscribe: %v", err)
			}
			defer feed.Close()
			for _, d := range feed.Catch {
				if d.Full {
					t.Fatal("resume answered a full resync; WAL catch-up expected")
				}
				apply(d)
				checkedDrop = true
			}
			if last != finalEpoch {
				t.Fatalf("resume stopped at epoch %d of %d", last, finalEpoch)
			}
			want, _ := refs.get(finalEpoch)
			if canonAssign(copyMap) != want || !checkedDrop {
				t.Fatal("post-drop copy diverged")
			}
		})
	}
}

// TestSubscriberOracleEvictionRestore drives the eviction leg: churn on
// a capacity-1 table is interrupted by traffic on a second window, so
// the subscribed session is evicted (stream terminated with the
// eviction Bye) and restored from disk when the subscriber reconnects —
// which must resume via WAL catch-up, byte-identical throughout.
func TestSubscriberOracleEvictionRestore(t *testing.T) {
	const finalEpoch = 24
	for _, m := range oracleModes {
		t.Run(m.name, func(t *testing.T) {
			s := oracleServer(t, t.TempDir(), m.mode, ServerOptions{MaxSessions: 1})
			srv := httptest.NewServer(s)
			defer srv.Close()
			refs := &oracleRefs{states: map[uint64]string{}}

			o := &oracleSubscriber{name: "evicted", codec: "application/json",
				url: srv.URL, refs: refs, copyMap: map[string]int{}}
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				o.run(t, finalEpoch, 0)
			}()

			evictions := 0
			oracleChurn(t, s, refs, 7, finalEpoch, func(epoch uint64) {
				if epoch%8 != 0 {
					return
				}
				// Wait for the subscriber to have verified this epoch, so
				// the eviction is guaranteed to land on an attached stream
				// (not a subscriber still dialing).
				deadline := time.Now().Add(30 * time.Second)
				for o.progress.Load() < epoch {
					if time.Now().After(deadline) {
						t.Fatalf("subscriber stuck at epoch %d of %d", o.progress.Load(), epoch)
					}
					time.Sleep(100 * time.Microsecond)
				}
				// Touch another window (a no-op full resync): capacity 1
				// evicts the subscribed session (flushing it to disk)
				// mid-churn.
				mutateJSON(t, s, `{"plan":{"tile":{"name":"cross:2:1"}},"window":{"lo":[0,0],"hi":[2,2]},`+
					`"events":[],"full":true}`, http.StatusOK)
				evictions++
			})
			wg.Wait()
			if t.Failed() {
				return
			}
			want, _ := refs.get(finalEpoch)
			if got := canonAssign(o.copyMap); got != want {
				t.Fatal("final copy diverged")
			}
			snap := s.Snapshot().Sessions
			if evictions == 0 || snap.SubscriberEvictions == 0 || snap.Restored == 0 {
				t.Fatalf("leg exercised nothing: %d evictions, stats %+v", evictions, snap)
			}
		})
	}
}

// TestSubscriberOracleServerRestart is the restart leg at the service
// level (the daemon-process variant lives in cmd/latticed): churn, tear
// the server down without a graceful flush, rebuild it over the same
// data directory, and resume the subscriber from its pre-restart epoch.
// The restored session must catch the subscriber up from the WAL and
// keep streaming fresh churn, byte-identical throughout.
func TestSubscriberOracleServerRestart(t *testing.T) {
	const half = 15
	dir := t.TempDir()
	refs := &oracleRefs{states: map[uint64]string{}}

	s1 := oracleServer(t, dir, graph.Auto, ServerOptions{})
	srv1 := httptest.NewServer(s1)
	o := &oracleSubscriber{name: "restart", codec: BinaryContentType,
		url: srv1.URL, refs: refs, copyMap: map[string]int{}}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		o.run(t, half, 0)
	}()
	oracleChurn(t, s1, refs, 99, half, nil)
	wg.Wait()
	if t.Failed() {
		return
	}
	srv1.Close() // no FlushSessions: the WAL alone must carry the history

	// The second server restores the session from disk on first touch.
	// The oracle's second half continues the same churn script shape but
	// starts from the restored state; the subscriber resumes at `half`.
	s2 := oracleServer(t, dir, graph.Auto, ServerOptions{})
	srv2 := httptest.NewServer(s2)
	defer srv2.Close()
	o.url = srv2.URL
	// Note the final epoch doubles: refs keep accumulating across the
	// restart because the session's epoch sequence continues.
	wg.Add(1)
	go func() {
		defer wg.Done()
		o.run(t, 2*half, 0)
	}()
	rng := rand.New(rand.NewSource(4))
	ref := map[string]int{}
	seedResp := mutateJSON(t, s2, persistBody(`"events":[],"full":true`), http.StatusOK)
	if seedResp.Epoch != half {
		t.Fatalf("restored session at epoch %d, want %d", seedResp.Epoch, half)
	}
	for _, ch := range seedResp.Changed {
		ref[lattice.Point(ch.P).Key()] = ch.Slot
	}
	if canonAssign(ref) != mustRef(t, refs, half) {
		t.Fatal("restored state diverged from the pre-restart reference")
	}
	for e := uint64(half + 1); e <= 2*half; e++ {
		x, y := rng.Intn(9)-2, rng.Intn(9)-2
		op := "join"
		key := lattice.Point([]int{x, y}).Key()
		if _, isAlive := ref[key]; isAlive {
			op = "leave"
		}
		resp := mutateJSON(t, s2, persistBody(fmt.Sprintf(`"events":[{"op":"%s","p":[%d,%d]}]`, op, x, y)), http.StatusOK)
		if resp.Epoch != e {
			t.Fatalf("post-restart epoch %d answered %d", e, resp.Epoch)
		}
		for _, ch := range resp.Changed {
			if ch.Slot < 0 {
				delete(ref, lattice.Point(ch.P).Key())
			} else {
				ref[lattice.Point(ch.P).Key()] = ch.Slot
			}
		}
		refs.record(e, canonAssign(ref))
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	if got := canonAssign(o.copyMap); got != mustRef(t, refs, 2*half) {
		t.Fatal("final copy diverged after restart")
	}
	if s2.Snapshot().Sessions.Restored == 0 {
		t.Fatal("second server restored nothing")
	}
}

func mustRef(t *testing.T, refs *oracleRefs, epoch uint64) string {
	t.Helper()
	s, ok := refs.get(epoch)
	if !ok {
		t.Fatalf("no reference for epoch %d", epoch)
	}
	return s
}
