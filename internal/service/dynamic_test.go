package service

import (
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"tilingsched/internal/core"
	"tilingsched/internal/dynamic"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

func testPlan(t *testing.T) *core.Plan {
	t.Helper()
	plan, err := core.NewPlan(lattice.Square(), prototile.Cross(2, 1))
	if err != nil {
		t.Fatalf("NewPlan: %v", err)
	}
	return plan
}

func mustWindow(t *testing.T, lo, hi []int) lattice.Window {
	t.Helper()
	w, err := lattice.NewWindow(lattice.Point(lo), lattice.Point(hi))
	if err != nil {
		t.Fatalf("NewWindow: %v", err)
	}
	return w
}

// TestSessionLifecycle drives the session table directly: creation seeds
// the plan schedule, the same (plan, window) pair returns the same
// session, and the LRU evicts in order.
func TestSessionLifecycle(t *testing.T) {
	plan := testPlan(t)
	st := newSessionTable(2, nil)
	w1 := mustWindow(t, []int{0, 0}, []int{4, 4})
	s1, err := st.get(plan, w1)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if s1.mut.AliveCount() != 25 || s1.mut.Slots() != 5 {
		t.Fatalf("seeded session off: alive=%d m=%d", s1.mut.AliveCount(), s1.mut.Slots())
	}
	// Seed matches the plan schedule point for point.
	var diverged bool
	s1.mut.EachAssignment(func(p lattice.Point, slot int) bool {
		want, err := plan.SlotOf(p)
		if err != nil || slot != want {
			diverged = true
			return false
		}
		return true
	})
	if diverged {
		t.Fatal("session seed diverges from the plan schedule")
	}
	again, err := st.get(plan, w1)
	if err != nil || again != s1 {
		t.Fatalf("same key returned a different session (%v)", err)
	}
	if st.snapshot().Created != 1 {
		t.Fatalf("stats %+v", st.snapshot())
	}
	// Two more windows overflow capacity 2 and evict w1.
	if _, err := st.get(plan, mustWindow(t, []int{0, 0}, []int{1, 1})); err != nil {
		t.Fatal(err)
	}
	if _, err := st.get(plan, mustWindow(t, []int{0, 0}, []int{2, 2})); err != nil {
		t.Fatal(err)
	}
	snap := st.snapshot()
	if snap.Sessions != 2 || snap.Evicted != 1 || snap.Created != 3 {
		t.Fatalf("LRU stats %+v", snap)
	}
	fresh, err := st.get(plan, w1)
	if err != nil {
		t.Fatal(err)
	}
	if fresh == s1 {
		t.Fatal("evicted session resurrected instead of rebuilt")
	}
}

// TestDecodeMutateRequest pins the funnel's acceptance and rejection
// contract.
func TestDecodeMutateRequest(t *testing.T) {
	lim := Limits{MaxBatch: 4, MaxWindow: 100}
	ok := `{"plan":{"tile":{"name":"cross:2:1"}},"window":{"lo":[0,0],"hi":[4,4]},` +
		`"events":[{"op":"leave","p":[1,1]},{"op":"join","p":[6,2]},{"op":"move","p":[0,0],"to":[5,5]}]}`
	req, win, events, err := DecodeMutateRequest([]byte(ok), lim)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if win.Size() != 25 || len(events) != 3 || req.Epoch != nil {
		t.Fatalf("decoded req off: |w|=%d events=%d", win.Size(), len(events))
	}
	if events[2].Kind != dynamic.Move || !events[2].To.Equal(lattice.Pt(5, 5)) {
		t.Fatalf("move decoded as %+v", events[2])
	}

	cases := []struct {
		name, body string
		wantLimit  bool
	}{
		{"bad json", `{"window":`, false},
		{"no window", `{"events":[{"op":"leave","p":[0,0]}]}`, false},
		{"window too large", `{"window":{"lo":[0,0],"hi":[99,99]},"events":[{"op":"leave","p":[0,0]}]}`, true},
		{"too many events", `{"window":{"lo":[0,0],"hi":[4,4]},"events":[` +
			strings.Repeat(`{"op":"leave","p":[0,0]},`, 4) + `{"op":"leave","p":[0,0]}]}`, true},
		{"no events no full", `{"window":{"lo":[0,0],"hi":[4,4]},"events":[]}`, false},
		{"unknown op", `{"window":{"lo":[0,0],"hi":[4,4]},"events":[{"op":"poke","p":[0,0]}]}`, false},
		{"wrong dim", `{"window":{"lo":[0,0],"hi":[4,4]},"events":[{"op":"join","p":[1]}]}`, false},
		{"move without to", `{"window":{"lo":[0,0],"hi":[4,4]},"events":[{"op":"move","p":[1,1]}]}`, false},
		{"outside margin", `{"window":{"lo":[0,0],"hi":[4,4]},"events":[{"op":"join","p":[999,0]}]}`, true},
	}
	for _, c := range cases {
		_, _, _, err := DecodeMutateRequest([]byte(c.body), lim)
		if err == nil {
			t.Errorf("%s: accepted", c.name)
			continue
		}
		if got := errors.Is(err, ErrLimit); got != c.wantLimit {
			t.Errorf("%s: limit=%v, want %v (%v)", c.name, got, c.wantLimit, err)
		}
	}

	// Full resync with zero events is valid.
	if _, _, events, err := DecodeMutateRequest(
		[]byte(`{"window":{"lo":[0,0],"hi":[4,4]},"full":true}`), lim); err != nil || len(events) != 0 {
		t.Fatalf("full resync rejected: %v", err)
	}
}

// TestServerStatsCounters checks Snapshot moves with traffic (the expvar
// source of cmd/latticed).
func TestServerStatsCounters(t *testing.T) {
	s := NewServer(NewRegistry(4), ServerOptions{})
	if snap := s.Snapshot(); snap.BatchRequests != 0 || snap.MutateRequests != 0 {
		t.Fatalf("fresh snapshot %+v", snap)
	}
	s.batchRequests.Add(2)
	s.batchPoints.Add(2048)
	s.mutateRequests.Add(1)
	snap := s.Snapshot()
	if snap.BatchRequests != 2 || snap.BatchPoints != 2048 || snap.MutateRequests != 1 {
		t.Fatalf("snapshot %+v", snap)
	}
}

// TestMutateConcurrency hammers one session from many goroutines under
// the race detector: the table lock and per-session mutex must fully
// serialize mutations, and the epoch must count exactly the applied
// batches.
func TestMutateConcurrency(t *testing.T) {
	s := NewServer(NewRegistry(4), ServerOptions{})
	const workers, rounds = 8, 20
	var wg sync.WaitGroup
	for wkr := 0; wkr < workers; wkr++ {
		wg.Add(1)
		go func(wkr int) {
			defer wg.Done()
			// Each worker churns its own sensor, so every event is valid
			// regardless of interleaving.
			p := fmt.Sprintf("[%d,0]", wkr)
			for r := 0; r < rounds; r++ {
				for _, op := range []string{"leave", "join"} {
					body := `{"plan":{"tile":{"name":"cross:2:1"}},"window":{"lo":[0,0],"hi":[9,9]},` +
						`"events":[{"op":"` + op + `","p":` + p + `}]}`
					req := httptest.NewRequest("POST", "/v1/plan:mutate", strings.NewReader(body))
					rec := httptest.NewRecorder()
					s.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						t.Errorf("worker %d: status %d: %s", wkr, rec.Code, rec.Body)
						return
					}
				}
			}
		}(wkr)
	}
	wg.Wait()
	snap := s.Snapshot()
	want := int64(workers * rounds * 2)
	if snap.Sessions.Mutations != want || snap.Sessions.Events != want {
		t.Fatalf("session stats %+v, want %d mutations/events", snap.Sessions, want)
	}
}
