package service

// Fuzz targets for the push plane's two trust boundaries. Server side:
// the subscribe request funnels (JSON and binary) face unauthenticated
// bytes and must reject without panicking, and anything accepted must
// respect the window limit. Client side: the stream decode loop faces a
// server the client does not control, so a malicious hello/delta
// sequence — in particular a huge declared frame length or change count
// — must fail without allocating more than the bytes actually received.
// Both run in CI's fuzz smoke.

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"tilingsched/internal/service/binwire"
)

// FuzzDecodeSubscribeRequest drives both subscribe funnels with the
// same bytes: neither may panic, and any accepted window must be within
// the configured limit.
func FuzzDecodeSubscribeRequest(f *testing.F) {
	seeds := []string{
		subBody(""),
		subBody(`"epoch":3`),
		subBody(`"epoch":18446744073709551615`),
		`{"plan":{"tile":{"points":[[0,0],[1,0]]}},"window":{"lo":[0],"hi":[3]}}`,
		`{"window":{"lo":[-1000000000,-1000000000],"hi":[1000000000,1000000000]}}`,
		`{"window":{"lo":[4,4],"hi":[0,0]}}`,
		`{"window":{"lo":[0,0],"hi":[9]}}`,
		`not json`, `{"window":`, `[]`, `{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s), 64)
	}
	// Binary seeds ride along: the funnels share the fuzz input.
	e := binwire.Get()
	epoch := uint64(7)
	EncodeSubscribeBinary(e, SubscribeRequest{
		Plan:   PlanSpec{Tile: TileSpec{Name: "cross:2:1"}},
		Window: WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}},
		Epoch:  &epoch,
	}, "")
	f.Add(append([]byte(nil), e.Bytes()...), 64)
	e.Reset()
	EncodeSubscribeBinary(e, SubscribeRequest{Window: WindowSpec{Lo: []int{0}, Hi: []int{0}}}, "sig")
	f.Add(append([]byte(nil), e.Bytes()...), 1)
	binwire.Put(e)

	f.Fuzz(func(t *testing.T, data []byte, maxWindow int) {
		lim := Limits{MaxWindow: maxWindow}
		eff := lim.withDefaults()
		if _, win, err := DecodeSubscribeRequest(data, lim); err == nil {
			if size, serr := win.SizeChecked(); serr != nil || size > eff.MaxWindow {
				t.Fatalf("JSON funnel accepted window of %d points (err %v) over limit %d", size, serr, eff.MaxWindow)
			}
		} else if !errors.Is(err, ErrSpec) && !errors.Is(err, ErrLimit) {
			t.Fatalf("JSON funnel error outside the taxonomy: %v", err)
		}
		if req, err := DecodeBinarySubscribe(data, lim); err == nil {
			if size, serr := req.Window.SizeChecked(); serr != nil || size > eff.MaxWindow {
				t.Fatalf("binary funnel accepted window of %d points (err %v) over limit %d", size, serr, eff.MaxWindow)
			}
		} else if !errors.Is(err, ErrSpec) && !errors.Is(err, ErrLimit) {
			t.Fatalf("binary funnel error outside the taxonomy: %v", err)
		}
	})
}

// FuzzSubscribeStream drives the client-side decode loop with arbitrary
// response bytes in both codecs. It must never panic, must terminate
// (the reader consumes input, so EOF always arrives), and — the
// allocation discipline — must not buffer more than the input actually
// holds: a declared frame length or change count far beyond the
// received bytes has to fail, not allocate.
func FuzzSubscribeStream(f *testing.F) {
	// A well-formed binary stream: hello, one delta, bye, end.
	e := binwire.Get()
	encodeSubHello(e, SubscribeHello{Signature: "sig", Epoch: 2, M: 5, Alive: 25})
	encodeDeltaFrame(e, &Delta{Epoch: 3, M: 5, Alive: 24, Changed: []ChangeSpec{{P: []int{1, 1}, Slot: -1}}})
	encodeDeltaFrame(e, &Delta{Epoch: 4, M: 5, Alive: 24, Full: true, Changed: nil})
	encodeSubBye(e, 4, byeSlow)
	e.BeginFrame(binwire.FrameEnd)
	e.EndFrame()
	good := append([]byte(nil), e.Bytes()...)
	binwire.Put(e)
	f.Add(good, true)
	f.Add(good, false)

	// A frame declaring a huge length with no bytes behind it, and a
	// delta declaring a huge change count.
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, byte(binwire.FrameSubHello)}, true)
	e2 := binwire.Get()
	e2.BeginFrame(binwire.FrameDelta)
	e2.Uvarint(1)       // epoch
	e2.Uvarint(5)       // m
	e2.Uvarint(25)      // alive
	e2.Byte(0)          // flags
	e2.Uvarint(1 << 30) // declared count with no data behind it
	e2.Uvarint(2)       // dim
	e2.EndFrame()
	hugeCount := append([]byte(nil), e2.Bytes()...)
	binwire.Put(e2)
	f.Add(hugeCount, true)

	// ndjson seeds.
	f.Add([]byte(`{"signature":"sig","epoch":1,"m":5,"alive":25}`+"\n"+
		`{"epoch":2,"m":5,"alive":24,"changed":[{"p":[1,1],"slot":-1}]}`+"\n"+
		`{"epoch":2,"bye":"resync required"}`+"\n"), false)
	f.Add([]byte("not json\n"), false)

	f.Fuzz(func(t *testing.T, data []byte, binary bool) {
		contentType := "application/json"
		if binary {
			contentType = BinaryContentType
		}
		st, err := OpenSubscribeStream(bytes.NewReader(data), contentType)
		if err != nil {
			return
		}
		if h := st.Hello(); binary && len(h.Signature) > maxWireSig {
			t.Fatalf("hello signature of %d bytes accepted", len(h.Signature))
		}
		for i := 0; i < 1024; i++ {
			d, err := st.Next()
			if err != nil {
				return
			}
			// Allocation discipline: a decoded change set can never hold
			// more entries than the input could possibly encode (at least
			// one byte per coordinate tuple + slot).
			if binary && len(d.Changed) > len(data) {
				t.Fatalf("%d changes decoded from %d input bytes", len(d.Changed), len(data))
			}
		}
		// 1024 elements out of a fuzz-sized input means the decoder is
		// fabricating frames; the reader must consume bytes per element.
		if len(data) < 1024 {
			t.Fatalf("runaway stream: >1024 elements from %d bytes", len(data))
		}
	})
}

// TestSubscribeStreamTruncation pins the abrupt-loss contract outside
// the fuzzer: cutting a well-formed binary stream at any byte boundary
// yields a read error (or clean EOF at a frame boundary), never a panic
// or a fabricated delta.
func TestSubscribeStreamTruncation(t *testing.T) {
	e := binwire.Get()
	defer binwire.Put(e)
	encodeSubHello(e, SubscribeHello{Signature: "sig", Epoch: 1, M: 5, Alive: 25})
	encodeDeltaFrame(e, &Delta{Epoch: 2, M: 5, Alive: 24, Changed: []ChangeSpec{
		{P: []int{1, 1}, Slot: -1}, {P: []int{-3, 2}, Slot: 4},
	}})
	encodeSubBye(e, 2, byeEvicted)
	full := e.Bytes()
	for cut := 0; cut < len(full); cut++ {
		st, err := OpenSubscribeStream(bytes.NewReader(full[:cut]), BinaryContentType)
		if err != nil {
			continue // hello itself truncated: fine
		}
		for {
			d, err := st.Next()
			if err != nil {
				if errors.Is(err, ErrStreamEnded) && !strings.Contains(d.Bye, "resync") {
					t.Fatalf("cut %d: fabricated bye %q", cut, d.Bye)
				}
				break
			}
			if d.Epoch != 2 {
				t.Fatalf("cut %d: fabricated delta %+v", cut, d)
			}
		}
	}
}
