package service

// Binary codec of the mutate plane (DESIGN.md §10): the frame grammar
// for POST /v1/plan:mutate under Content-Type negotiation. Mutations
// are orders of magnitude rarer than batch queries, so this side of the
// protocol optimizes for the same safety funnel rather than for
// allocation-freedom: DecodeBinaryMutate enforces exactly the contract
// of DecodeMutateRequest (window within MaxWindow, at most MaxBatch
// events, every event in-margin, ErrSpec→400 / ErrLimit→413) and is
// fuzzed by FuzzDecodeBinaryMutate under the same never-panic contract.

import (
	"fmt"
	"math"

	"tilingsched/internal/dynamic"
	"tilingsched/internal/lattice"
	"tilingsched/internal/service/binwire"
)

// Binary mutate event opcodes (wire form of dynamic.EventKind).
const (
	binOpJoin  byte = 0
	binOpLeave byte = 1
	binOpFail  byte = 2
	binOpMove  byte = 3
)

// Mutate request flag bits.
const (
	binMutHasEpoch byte = 1 << 0
	binMutFull     byte = 1 << 1
)

// Mutate response disruption flag bits.
const (
	binDisFullRecolor byte = 1 << 0
	binDisCompacted   byte = 1 << 1
)

// BinMutate is a decoded binary mutate request: the session address
// (plan + window), optimistic-concurrency epoch, resync flag, and the
// validated event batch (every event within the window's MutateMargin).
type BinMutate struct {
	// Plan names the session's plan (spec or signature reference).
	Plan BinPlanRef
	// Window is the session window, validated against MaxWindow.
	Window lattice.Window
	// Epoch is the client's session epoch, meaningful iff HasEpoch.
	Epoch uint64
	// HasEpoch reports whether the request pinned an epoch.
	HasEpoch bool
	// Full requests the complete live assignment in the response.
	Full bool
	// Events is the validated, converted event batch.
	Events []dynamic.Event
}

// DecodeBinaryMutate parses one binary mutate request frame and
// enforces the structural contract of the JSON mutate funnel: a
// well-formed window within lim.MaxWindow, at most lim.MaxBatch
// events, every event a known op with coordinates inside
// window ± MutateMargin, and a non-empty batch unless Full is set.
// Violations wrap ErrSpec (400) or ErrLimit (413); malformed bytes
// never panic.
func DecodeBinaryMutate(data []byte, lim Limits) (BinMutate, error) {
	lim = lim.withDefaults()
	stream := binwire.NewReader(data)
	typ, r := stream.Frame()
	stream.Done()
	if stream.Err() != nil {
		return BinMutate{}, failSpec(&stream)
	}
	if typ != binwire.FrameMutate {
		return BinMutate{}, fmt.Errorf("%w: frame type %#x is not a mutate request", ErrSpec, typ)
	}
	var req BinMutate
	var err error
	if req.Plan, err = decodePlanRef(&r); err != nil {
		return BinMutate{}, err
	}
	if req.Window, err = decodeWindow(&r, lim.MaxWindow, nil); err != nil {
		return BinMutate{}, err
	}
	flags := r.Byte()
	if flags&binMutHasEpoch != 0 {
		req.Epoch = r.Uvarint()
		req.HasEpoch = true
	}
	req.Full = flags&binMutFull != 0
	// Bound the count while still unsigned: a raw int() conversion of an
	// attacker-chosen uvarint ≥ 2^63 would go negative and slip past both
	// the limit and the emptiness checks into make().
	rawCount := r.Uvarint()
	if r.Err() != nil {
		return BinMutate{}, failSpec(&r)
	}
	if rawCount > uint64(lim.MaxBatch) {
		return BinMutate{}, fmt.Errorf("%w: %d events exceed limit %d", ErrLimit, rawCount, lim.MaxBatch)
	}
	count := int(rawCount)
	if count == 0 && !req.Full {
		return BinMutate{}, fmt.Errorf("%w: no events and full not requested", ErrSpec)
	}
	// Growth bound, identical to the JSON funnel: every event position
	// must stay within MutateMargin of the session window.
	dim := req.Window.Dim()
	bound := lattice.Window{Lo: req.Window.Lo.Clone(), Hi: req.Window.Hi.Clone()}
	growMargin(bound)
	readPoint := func() lattice.Point {
		p := make(lattice.Point, dim)
		for a := 0; a < dim; a++ {
			p[a] = int(r.Varint())
		}
		return p
	}
	req.Events = make([]dynamic.Event, 0, count)
	for i := 0; i < count; i++ {
		op := r.Byte()
		p := readPoint()
		var ev dynamic.Event
		switch op {
		case binOpJoin:
			ev = dynamic.Event{Kind: dynamic.Join, P: p}
		case binOpLeave:
			ev = dynamic.Event{Kind: dynamic.Leave, P: p}
		case binOpFail:
			ev = dynamic.Event{Kind: dynamic.Fail, P: p}
		case binOpMove:
			ev = dynamic.Event{Kind: dynamic.Move, P: p, To: readPoint()}
		default:
			if r.Err() != nil {
				return BinMutate{}, failSpec(&r)
			}
			return BinMutate{}, fmt.Errorf("%w: event %d: unknown op %d", ErrSpec, i, op)
		}
		if r.Err() != nil {
			return BinMutate{}, failSpec(&r)
		}
		if !bound.Contains(ev.P) || (ev.Kind == dynamic.Move && !bound.Contains(ev.To)) {
			return BinMutate{}, fmt.Errorf("%w: event %d outside the window's %d-cell margin",
				ErrLimit, i, MutateMargin)
		}
		req.Events = append(req.Events, ev)
	}
	r.Done()
	if r.Err() != nil {
		return BinMutate{}, failSpec(&r)
	}
	return req, nil
}

// EncodeMutateBinary appends the binary frame of a mutate request to e.
// A non-empty sig encodes a plan-by-signature reference instead of
// req.Plan. Returns an error for events whose op is not in the wire
// vocabulary (the request is not encodable).
func EncodeMutateBinary(e *binwire.Buffer, req MutateRequest, sig string) error {
	e.BeginFrame(binwire.FrameMutate)
	encodePlanRef(e, req.Plan, sig)
	encodeWindowSpec(e, req.Window)
	var flags byte
	if req.Epoch != nil {
		flags |= binMutHasEpoch
	}
	if req.Full {
		flags |= binMutFull
	}
	e.Byte(flags)
	if req.Epoch != nil {
		e.Uvarint(*req.Epoch)
	}
	e.Uvarint(uint64(len(req.Events)))
	dim := len(req.Window.Lo)
	point := func(c []int) {
		for a := 0; a < dim; a++ {
			v := 0
			if a < len(c) {
				v = c[a]
			}
			e.Varint(int64(v))
		}
	}
	for _, es := range req.Events {
		var op byte
		switch es.Op {
		case "join":
			op = binOpJoin
		case "leave":
			op = binOpLeave
		case "fail":
			op = binOpFail
		case "move":
			op = binOpMove
		default:
			e.EndFrame()
			return fmt.Errorf("%w: unknown op %q", ErrSpec, es.Op)
		}
		e.Byte(op)
		point(es.P)
		if op == binOpMove {
			point(es.To)
		}
	}
	e.EndFrame()
	return nil
}

// encodeMutateResponse writes the complete mutate response frame plus
// the terminating end frame (server side).
func encodeMutateResponse(e *binwire.Buffer, resp MutateResponse) {
	e.BeginFrame(binwire.FrameMutateResult)
	e.String(resp.Signature)
	e.Uvarint(resp.Epoch)
	e.Uvarint(uint64(resp.M))
	e.Uvarint(uint64(resp.Alive))
	d := resp.Disruption
	e.Uvarint(uint64(d.Events))
	e.Uvarint(uint64(d.Joined))
	e.Uvarint(uint64(d.Departed))
	e.Uvarint(uint64(d.Reassigned))
	e.Varint(int64(d.ColorsDelta))
	var flags byte
	if d.FullRecolor {
		flags |= binDisFullRecolor
	}
	if d.Compacted {
		flags |= binDisCompacted
	}
	e.Byte(flags)
	e.Uvarint(uint64(len(resp.Changed)))
	dim := 0
	if len(resp.Changed) > 0 {
		dim = len(resp.Changed[0].P)
	}
	e.Uvarint(uint64(dim))
	for _, ch := range resp.Changed {
		for a := 0; a < dim; a++ {
			v := 0
			if a < len(ch.P) {
				v = ch.P[a]
			}
			e.Varint(int64(v))
		}
		e.Varint(int64(ch.Slot))
	}
	e.String(resp.Error)
	e.EndFrame()
	e.BeginFrame(binwire.FrameEnd)
	e.EndFrame()
}

// DecodeMutateStream parses a complete binary mutate response into the
// JSON-shaped MutateResponse (client side). An Error frame decodes
// into *WireError.
func DecodeMutateStream(data []byte) (MutateResponse, error) {
	var resp MutateResponse
	stream := binwire.NewReader(data)
	typ, r := stream.Frame()
	if stream.Err() != nil {
		return resp, failSpec(&stream)
	}
	if typ == binwire.FrameError {
		return resp, decodeErrorFrame(&r)
	}
	if typ != binwire.FrameMutateResult {
		return resp, fmt.Errorf("%w: expected mutate result, got frame %#x", ErrSpec, typ)
	}
	resp.Signature = r.String(maxWireSig)
	resp.Epoch = r.Uvarint()
	resp.M = r.Count(math.MaxInt32, "m")
	resp.Alive = r.Count(math.MaxInt32, "alive")
	resp.Disruption.Events = r.Count(math.MaxInt32, "events")
	resp.Disruption.Joined = r.Count(math.MaxInt32, "joined")
	resp.Disruption.Departed = r.Count(math.MaxInt32, "departed")
	resp.Disruption.Reassigned = r.Count(math.MaxInt32, "reassigned")
	resp.Disruption.ColorsDelta = int(r.Varint())
	flags := r.Byte()
	resp.Disruption.FullRecolor = flags&binDisFullRecolor != 0
	resp.Disruption.Compacted = flags&binDisCompacted != 0
	count := r.Count(math.MaxInt32, "change count")
	dim := r.Count(maxTileDim, "change dimension")
	if r.Err() != nil {
		return resp, failSpec(&r)
	}
	resp.Changed = make([]ChangeSpec, 0, min(count, 1<<16))
	for i := 0; i < count && r.Err() == nil; i++ {
		p := make([]int, dim)
		for a := 0; a < dim; a++ {
			p[a] = int(r.Varint())
		}
		resp.Changed = append(resp.Changed, ChangeSpec{P: p, Slot: int(r.Varint())})
	}
	resp.Error = r.String(maxWireErrMsg)
	r.Done()
	if r.Err() != nil {
		return resp, failSpec(&r)
	}
	typ, _ = stream.Frame()
	if stream.Err() != nil || typ != binwire.FrameEnd {
		return resp, fmt.Errorf("%w: mutate stream not terminated by end frame", ErrSpec)
	}
	return resp, nil
}
