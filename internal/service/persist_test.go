package service

// Crash-recovery and durability suite for session persistence
// (DESIGN.md §12): frame codecs round-trip and reject corruption,
// restarts restore churned sessions at their exact epoch, torn WAL
// tails are truncated to the last good record, dirty evictions flush
// and count, and the mutate-margin arithmetic saturates at the int
// extremes instead of wrapping.

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"tilingsched/internal/core"
	"tilingsched/internal/dynamic"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/service/binwire"
)

// mutateJSON posts one mutate body to the server and decodes the
// response, asserting the expected status.
func mutateJSON(t *testing.T, s *Server, body string, wantStatus int) MutateResponse {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/plan:mutate", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("mutate status %d, want %d: %s", rec.Code, wantStatus, rec.Body)
	}
	var resp MutateResponse
	if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
		t.Fatalf("decoding mutate response: %v", err)
	}
	return resp
}

const persistTestWindow = `"window":{"lo":[0,0],"hi":[4,4]}`

func persistBody(events string) string {
	return `{"plan":{"tile":{"name":"cross:2:1"}},` + persistTestWindow + `,` + events + `}`
}

// changedMap folds a response's Changed list into key→slot.
func changedMap(resp MutateResponse) map[string]int {
	out := map[string]int{}
	for _, ch := range resp.Changed {
		out[lattice.Point(ch.P).Key()] = ch.Slot
	}
	return out
}

func newPersistServer(t *testing.T, dir string, opts ServerOptions) *Server {
	t.Helper()
	s := NewServer(NewRegistry(8), opts)
	if err := s.EnablePersistence(PersistOptions{Dir: dir}); err != nil {
		t.Fatalf("EnablePersistence: %v", err)
	}
	return s
}

// TestPersistFrameRoundTrip pins the on-disk codecs: snapshot and WAL
// frames decode back to what was encoded, and a single flipped byte
// fails the CRC.
func TestPersistFrameRoundTrip(t *testing.T) {
	plan := testPlan(t)
	w := mustWindow(t, []int{-2, -3}, []int{4, 5})
	id := identOf(plan, w)
	st := dynamic.State{
		Window:  mustWindow(t, []int{-1, 0}, []int{3, 4}),
		Slots:   make([]int32, 25),
		Palette: 5,
		Budget:  5,
	}
	for i := range st.Slots {
		st.Slots[i] = int32(i % 6)
		st.Slots[i]-- // mix tombstones (-1) with slots 0..4
	}
	e := binwire.Get()
	defer binwire.Put(e)
	encodeSnapshot(e, id, 42, st)
	gotID, gotEpoch, gotState, err := decodeSnapshot(e.Bytes())
	if err != nil {
		t.Fatalf("decodeSnapshot: %v", err)
	}
	if gotID.sig != id.sig || gotID.lat != id.lat || gotEpoch != 42 {
		t.Fatalf("snapshot identity: %+v epoch %d", gotID, gotEpoch)
	}
	if gotID.win.String() != w.String() || gotState.Window.String() != st.Window.String() {
		t.Fatalf("windows: %s / %s", gotID.win, gotState.Window)
	}
	if gotState.Palette != 5 || gotState.Budget != 5 || len(gotState.Slots) != 25 {
		t.Fatalf("state: %+v", gotState)
	}
	for i := range st.Slots {
		if gotState.Slots[i] != st.Slots[i] {
			t.Fatalf("slot %d: %d ≠ %d", i, gotState.Slots[i], st.Slots[i])
		}
	}

	// CRC: flipping any payload byte must be detected.
	data := append([]byte(nil), e.Bytes()...)
	data[len(data)-1] ^= 0x01
	if _, _, _, err := decodeSnapshot(data); err == nil {
		t.Fatal("flipped snapshot byte passed the CRC")
	}

	// WAL record round trip, including a Move's destination.
	e.Reset()
	events := []dynamic.Event{
		{Kind: dynamic.Join, P: lattice.Pt(1, 2)},
		{Kind: dynamic.Move, P: lattice.Pt(-1, 0), To: lattice.Pt(3, -4)},
		{Kind: dynamic.Fail, P: lattice.Pt(0, 0)},
	}
	encodeWALRecord(e, 2, 7, events)
	r := binwire.NewReader(e.Bytes())
	typ, payload := r.Frame()
	if r.Err() != nil || typ != framePersistWALRecord {
		t.Fatalf("record frame: type %#x err %v", typ, r.Err())
	}
	epoch, gotEvents, err := decodeWALRecord(&payload, 2)
	if err != nil {
		t.Fatalf("decodeWALRecord: %v", err)
	}
	if epoch != 7 || len(gotEvents) != 3 {
		t.Fatalf("record: epoch %d, %d events", epoch, len(gotEvents))
	}
	for i, ev := range events {
		g := gotEvents[i]
		if g.Kind != ev.Kind || !g.P.Equal(ev.P) || (ev.Kind == dynamic.Move && !g.To.Equal(ev.To)) {
			t.Fatalf("event %d: %+v ≠ %+v", i, g, ev)
		}
	}
}

// TestPersistRestartRoundTrip is the durability contract end to end at
// the service layer: mutate a session to epoch N, flush, rebuild a
// fresh server over the same data directory, and the resync answers
// the post-churn assignment at epoch N.
func TestPersistRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s1 := newPersistServer(t, dir, ServerOptions{})

	mutateJSON(t, s1, persistBody(`"events":[{"op":"leave","p":[1,1]}]`), http.StatusOK)
	mutateJSON(t, s1, persistBody(`"events":[{"op":"join","p":[6,2]}]`), http.StatusOK)
	r3 := mutateJSON(t, s1, persistBody(`"events":[{"op":"leave","p":[0,0]}]`), http.StatusOK)
	if r3.Epoch != 3 {
		t.Fatalf("epoch after three batches = %d", r3.Epoch)
	}
	want := changedMap(mutateJSON(t, s1, persistBody(`"full":true`), http.StatusOK))
	if n := s1.FlushSessions(); n != 1 {
		t.Fatalf("FlushSessions flushed %d sessions, want 1", n)
	}

	// "Restart": a new server over the same directory, session restored
	// lazily on first touch.
	s2 := newPersistServer(t, dir, ServerOptions{})
	resync := mutateJSON(t, s2, persistBody(`"full":true,"epoch":3`), http.StatusOK)
	if resync.Epoch != 3 {
		t.Fatalf("restored epoch = %d, want 3 (session forgot its churn)", resync.Epoch)
	}
	got := changedMap(resync)
	if len(got) != len(want) {
		t.Fatalf("restored assignment has %d sensors, want %d", len(got), len(want))
	}
	for k, slot := range want {
		if got[k] != slot {
			t.Fatalf("restored slot of %s = %d, want %d", k, got[k], slot)
		}
	}
	if _, dead := got["1,1"]; dead {
		t.Fatal("departed sensor resurrected by restore")
	}
	if _, alive := got["6,2"]; !alive {
		t.Fatal("joined sensor lost by restore")
	}

	// A stale client epoch still conflicts after restore.
	conflict := mutateJSON(t, s2, persistBody(`"events":[{"op":"join","p":[1,1]}],"epoch":1`), http.StatusConflict)
	if conflict.Epoch != 3 {
		t.Fatalf("conflict reports epoch %d, want 3", conflict.Epoch)
	}

	// Restore-on-start: a third server eagerly reloads the directory.
	s3 := newPersistServer(t, dir, ServerOptions{})
	n, err := s3.RestoreSessions()
	if err != nil || n != 1 {
		t.Fatalf("RestoreSessions = (%d, %v), want (1, nil)", n, err)
	}
	if snap := s3.Snapshot().Sessions; snap.Sessions != 1 || snap.Restored != 1 {
		t.Fatalf("restore-on-start stats %+v", snap)
	}
}

// TestPersistRestoreOnMiss drives the LRU past capacity: the dirty
// evicted session flushes to disk (distinct counter + stats), and the
// next touch restores it at its pre-eviction epoch instead of
// reseeding at epoch 0.
func TestPersistRestoreOnMiss(t *testing.T) {
	dir := t.TempDir()
	var logged []string
	s := NewServer(NewRegistry(8), ServerOptions{
		MaxSessions: 1,
		Logf:        func(f string, a ...any) { logged = append(logged, fmt.Sprintf(f, a...)) },
	})
	if err := s.EnablePersistence(PersistOptions{Dir: dir}); err != nil {
		t.Fatal(err)
	}

	mutateJSON(t, s, persistBody(`"events":[{"op":"leave","p":[1,1]}]`), http.StatusOK)
	// A second window's session evicts the first (capacity 1). The first
	// is dirty (epoch 1), so the eviction must flush and count.
	other := `{"plan":{"tile":{"name":"cross:2:1"}},"window":{"lo":[0,0],"hi":[2,2]},"full":true}`
	mutateJSON(t, s, other, http.StatusOK)
	snap := s.Snapshot().Sessions
	if snap.Evicted != 1 || snap.EvictedDirty != 1 {
		t.Fatalf("eviction stats %+v, want Evicted=1 EvictedDirty=1", snap)
	}
	var sawEvictLog bool
	for _, line := range logged {
		if strings.Contains(line, "evicted dirty session") {
			sawEvictLog = true
		}
	}
	if !sawEvictLog {
		t.Fatalf("no dirty-eviction log line in %q", logged)
	}

	// Touching the first window again restores from disk: epoch 1, churn
	// intact, restored counter moves.
	resync := mutateJSON(t, s, persistBody(`"full":true,"epoch":1`), http.StatusOK)
	if resync.Epoch != 1 {
		t.Fatalf("restored epoch = %d, want 1", resync.Epoch)
	}
	if _, dead := changedMap(resync)["1,1"]; dead {
		t.Fatal("restore-on-miss resurrected a departed sensor")
	}
	if snap := s.Snapshot().Sessions; snap.Restored != 1 {
		t.Fatalf("stats %+v, want Restored=1", snap)
	}

	// The distinct counter is a real /metrics series.
	var sb strings.Builder
	if err := s.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"latticed_sessions_evicted_dirty_total 1",
		"latticed_sessions_restored_total 1",
		"latticed_snapshots_total",
		"latticed_wal_appends_total",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, sb.String())
		}
	}
}

// TestDirtyEvictionCounter is the store-less regression: even without
// persistence, evicting a session that has applied mutations must
// increment the distinct dirty counter (the silent-data-loss signal
// this PR makes visible).
func TestDirtyEvictionCounter(t *testing.T) {
	plan := testPlan(t)
	st := newSessionTable(1, nil)
	s1, err := st.get(plan, mustWindow(t, []int{0, 0}, []int{4, 4}))
	if err != nil {
		t.Fatal(err)
	}
	s1.mu.Lock()
	s1.epoch = 3 // stand-in for applied batches
	s1.mu.Unlock()
	if _, err := st.get(plan, mustWindow(t, []int{0, 0}, []int{1, 1})); err != nil {
		t.Fatal(err)
	}
	snap := st.snapshot()
	if snap.Evicted != 1 || snap.EvictedDirty != 1 {
		t.Fatalf("stats %+v, want Evicted=1 EvictedDirty=1", snap)
	}
	// A clean eviction (epoch 0) must not count as dirty.
	if _, err := st.get(plan, mustWindow(t, []int{0, 0}, []int{2, 2})); err != nil {
		t.Fatal(err)
	}
	snap = st.snapshot()
	if snap.Evicted != 2 || snap.EvictedDirty != 1 {
		t.Fatalf("stats %+v, want Evicted=2 EvictedDirty=1", snap)
	}
}

// TestPersistTornTail crashes mid-append: the WAL's final record is
// truncated on disk, and replay must drop exactly the torn tail —
// restoring the session to the last whole batch — and count the
// recovery.
func TestPersistTornTail(t *testing.T) {
	dir := t.TempDir()
	s1 := newPersistServer(t, dir, ServerOptions{})
	mutateJSON(t, s1, persistBody(`"events":[{"op":"leave","p":[1,1]}]`), http.StatusOK)
	mutateJSON(t, s1, persistBody(`"events":[{"op":"join","p":[6,2]}]`), http.StatusOK)
	mutateJSON(t, s1, persistBody(`"events":[{"op":"leave","p":[0,0]}]`), http.StatusOK)
	// No flush: the directory holds only the WAL (header + 3 records),
	// exactly the crash-without-snapshot shape.

	wals, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("WAL files %v (%v)", wals, err)
	}
	info, err := os.Stat(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(wals[0], info.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2 := newPersistServer(t, dir, ServerOptions{})
	resync := mutateJSON(t, s2, persistBody(`"full":true`), http.StatusOK)
	if resync.Epoch != 2 {
		t.Fatalf("epoch after torn-tail replay = %d, want 2 (last whole record)", resync.Epoch)
	}
	got := changedMap(resync)

	// Oracle: a fresh store-less server applying only the surviving
	// batches must answer the identical assignment.
	oracle := NewServer(NewRegistry(8), ServerOptions{})
	mutateJSON(t, oracle, persistBody(`"events":[{"op":"leave","p":[1,1]}]`), http.StatusOK)
	mutateJSON(t, oracle, persistBody(`"events":[{"op":"join","p":[6,2]}]`), http.StatusOK)
	want := changedMap(mutateJSON(t, oracle, persistBody(`"full":true`), http.StatusOK))
	if len(got) != len(want) {
		t.Fatalf("torn-tail restore has %d sensors, oracle %d", len(got), len(want))
	}
	for k, slot := range want {
		if g, ok := got[k]; !ok || g != slot {
			t.Fatalf("torn-tail slot of %s = %d, oracle %d", k, got[k], slot)
		}
	}

	var sb strings.Builder
	if err := s2.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "latticed_wal_torn_tails_total 1") {
		t.Fatal("torn-tail recovery not counted")
	}

	// The truncated WAL stays usable: further mutations append and a
	// third server sees them.
	mutateJSON(t, s2, persistBody(`"events":[{"op":"join","p":[1,1]}]`), http.StatusOK)
	s3 := newPersistServer(t, dir, ServerOptions{})
	if resync := mutateJSON(t, s3, persistBody(`"full":true`), http.StatusOK); resync.Epoch != 3 {
		t.Fatalf("post-recovery append lost: epoch %d, want 3", resync.Epoch)
	}
}

// TestPersistSnapshotTruncatesWAL checks the log bound: crossing
// SnapshotEvery events snapshots the session and resets the WAL to a
// bare header, and the snapshot-based restore is exact.
func TestPersistSnapshotTruncatesWAL(t *testing.T) {
	dir := t.TempDir()
	s1 := NewServer(NewRegistry(8), ServerOptions{})
	if err := s1.EnablePersistence(PersistOptions{Dir: dir, SnapshotEvery: 2}); err != nil {
		t.Fatal(err)
	}
	mutateJSON(t, s1, persistBody(`"events":[{"op":"leave","p":[1,1]}]`), http.StatusOK)
	walBefore := walSize(t, dir)
	mutateJSON(t, s1, persistBody(`"events":[{"op":"leave","p":[2,2]}]`), http.StatusOK)
	// Two events logged → snapshot fired → WAL reset to header only.
	if snaps, _ := filepath.Glob(filepath.Join(dir, "*.snap")); len(snaps) != 1 {
		t.Fatalf("snapshot files %v, want exactly 1", snaps)
	}
	if after := walSize(t, dir); after >= walBefore {
		t.Fatalf("WAL not truncated by snapshot: %d → %d bytes", walBefore, after)
	}
	s2 := newPersistServer(t, dir, ServerOptions{})
	resync := mutateJSON(t, s2, persistBody(`"full":true`), http.StatusOK)
	if resync.Epoch != 2 {
		t.Fatalf("snapshot restore epoch = %d, want 2", resync.Epoch)
	}
	cm := changedMap(resync)
	if _, ok := cm["1,1"]; ok {
		t.Fatal("snapshot restore resurrected 1,1")
	}
	if _, ok := cm["2,2"]; ok {
		t.Fatal("snapshot restore resurrected 2,2")
	}
	if len(cm) != 23 {
		t.Fatalf("snapshot restore has %d sensors, want 23", len(cm))
	}
}

func walSize(t *testing.T, dir string) int64 {
	t.Helper()
	wals, err := filepath.Glob(filepath.Join(dir, "*.wal"))
	if err != nil || len(wals) != 1 {
		t.Fatalf("WAL files %v (%v)", wals, err)
	}
	info, err := os.Stat(wals[0])
	if err != nil {
		t.Fatal(err)
	}
	return info.Size()
}

// BenchmarkWALAppend isolates the per-batch persistence cost on the
// mutate path: one two-event record encoded, CRC-stamped, and appended
// to the session WAL with the default fsync-off policy (the number the
// BENCH_*_wal.json baseline pins).
func BenchmarkWALAppend(b *testing.B) {
	store, err := newSessionStore(PersistOptions{Dir: b.TempDir()}, nil, nil)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := core.NewPlan(lattice.Square(), prototile.Cross(2, 1))
	if err != nil {
		b.Fatal(err)
	}
	w, err := lattice.NewWindow(lattice.Pt(0, 0), lattice.Pt(99, 99))
	if err != nil {
		b.Fatal(err)
	}
	disk, _, _, err := store.open(plan, w, dynamic.Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer disk.close()
	events := []dynamic.Event{
		{Kind: dynamic.Fail, P: lattice.Pt(50, 50)},
		{Kind: dynamic.Join, P: lattice.Pt(50, 50)},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := disk.append(uint64(i+1), events); err != nil {
			b.Fatal(err)
		}
	}
}

// TestPersistEvictionReopenRace is the per-key file-serialization
// regression: with a capacity-1 LRU two windows evict each other on
// every alternation, so an eviction flush (snapshot + WAL-reset rename)
// racing a same-key restore used to strand the restored session's
// O_APPEND handle on an unlinked inode — every later append silently
// discarded. The contract checked here is the PR's zero-lost-sessions
// guarantee under that churn: after the hammering, a fresh server over
// the same directory must see every acked epoch.
func TestPersistEvictionReopenRace(t *testing.T) {
	dir := t.TempDir()
	s := newPersistServer(t, dir, ServerOptions{MaxSessions: 1})
	windows := [2]string{persistTestWindow, `"window":{"lo":[0,0],"hi":[2,2]}`}
	bodies := [2]string{
		`{"plan":{"tile":{"name":"cross:2:1"}},` + windows[0] + `,"events":[{"op":"fail","p":[1,1]},{"op":"join","p":[1,1]}]}`,
		`{"plan":{"tile":{"name":"cross:2:1"}},` + windows[1] + `,"events":[{"op":"fail","p":[0,0]},{"op":"join","p":[0,0]}]}`,
	}
	const rounds = 40
	var acked [2]uint64
	var wg sync.WaitGroup
	for i := range bodies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				req := httptest.NewRequest("POST", "/v1/plan:mutate", strings.NewReader(bodies[i]))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("window %d round %d: status %d: %s", i, r, rec.Code, rec.Body)
					return
				}
				var resp MutateResponse
				if err := json.NewDecoder(rec.Body).Decode(&resp); err != nil {
					t.Errorf("window %d round %d: decoding response: %v", i, r, err)
					return
				}
				if resp.Epoch > acked[i] {
					acked[i] = resp.Epoch
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Each goroutine is its window's sole mutator, so its acked epoch
	// must be exactly rounds — and must survive a restart intact.
	s2 := newPersistServer(t, dir, ServerOptions{})
	for i := range bodies {
		if acked[i] != rounds {
			t.Fatalf("window %d acked epoch %d, want %d", i, acked[i], rounds)
		}
		body := `{"plan":{"tile":{"name":"cross:2:1"}},` + windows[i] + `,"full":true}`
		resync := mutateJSON(t, s2, body, http.StatusOK)
		if resync.Epoch != acked[i] {
			t.Fatalf("window %d restored at epoch %d, want %d (acked mutations lost)", i, resync.Epoch, acked[i])
		}
	}
}

// persistToEpoch3WithSnapshot drives a session to epoch 3 with
// SnapshotEvery=2, leaving a snapshot at epoch 2 and a WAL based at 2
// holding the epoch-3 record — the shape the base-epoch recovery tests
// start from.
func persistToEpoch3WithSnapshot(t *testing.T, dir string) {
	t.Helper()
	s := NewServer(NewRegistry(8), ServerOptions{})
	if err := s.EnablePersistence(PersistOptions{Dir: dir, SnapshotEvery: 2}); err != nil {
		t.Fatal(err)
	}
	mutateJSON(t, s, persistBody(`"events":[{"op":"leave","p":[1,1]}]`), http.StatusOK)
	mutateJSON(t, s, persistBody(`"events":[{"op":"leave","p":[2,2]}]`), http.StatusOK)
	mutateJSON(t, s, persistBody(`"events":[{"op":"join","p":[6,2]}]`), http.StatusOK)
	snaps, _ := filepath.Glob(filepath.Join(dir, "*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("snapshot files %v, want exactly 1", snaps)
	}
}

// TestPersistLostSnapshotResetsWAL pins the base-epoch check: a WAL
// based at epoch 2 whose snapshot is gone must NOT replay its suffix
// onto a fresh seed (events 1..2 are unrecoverable — the result would
// be silently wrong). The session resets to a clean epoch-0 seed, the
// reset is counted, and the reset WAL keeps working.
func TestPersistLostSnapshotResetsWAL(t *testing.T) {
	dir := t.TempDir()
	persistToEpoch3WithSnapshot(t, dir)
	snaps, _ := filepath.Glob(filepath.Join(dir, "*.snap"))
	if err := os.Remove(snaps[0]); err != nil {
		t.Fatal(err)
	}

	s2 := newPersistServer(t, dir, ServerOptions{})
	resync := mutateJSON(t, s2, persistBody(`"full":true`), http.StatusOK)
	if resync.Epoch != 0 {
		t.Fatalf("epoch after lost snapshot = %d, want 0 (clean reseed, not a suffix replay)", resync.Epoch)
	}
	got := changedMap(resync)
	if len(got) != 25 {
		t.Fatalf("reseed has %d sensors, want the full 25-point seed", len(got))
	}
	if _, ok := got["1,1"]; !ok {
		t.Fatal("reseed missing 1,1: the unrecoverable suffix was replayed onto the seed")
	}
	var sb strings.Builder
	if err := s2.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "latticed_wal_resets_total 1") {
		t.Fatalf("WAL reset not counted:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "latticed_wal_torn_tails_total 0") {
		t.Fatal("WAL reset miscounted as a torn tail")
	}

	// The reset log accepts appends and restores them.
	mutateJSON(t, s2, persistBody(`"events":[{"op":"leave","p":[0,0]}]`), http.StatusOK)
	s3 := newPersistServer(t, dir, ServerOptions{})
	if resync := mutateJSON(t, s3, persistBody(`"full":true`), http.StatusOK); resync.Epoch != 1 {
		t.Fatalf("post-reset append lost: epoch %d, want 1", resync.Epoch)
	}
}

// TestPersistCorruptSnapshotDropped flips one snapshot byte: the CRC
// drops it under its own counter (not the torn-tail one), and because
// the WAL is based past the lost state the session resets to epoch 0
// instead of replaying the suffix.
func TestPersistCorruptSnapshotDropped(t *testing.T) {
	dir := t.TempDir()
	persistToEpoch3WithSnapshot(t, dir)
	snaps, _ := filepath.Glob(filepath.Join(dir, "*.snap"))
	data, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	s2 := newPersistServer(t, dir, ServerOptions{})
	resync := mutateJSON(t, s2, persistBody(`"full":true`), http.StatusOK)
	if resync.Epoch != 0 {
		t.Fatalf("epoch after corrupt snapshot = %d, want 0", resync.Epoch)
	}
	var sb strings.Builder
	if err := s2.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"latticed_snapshots_dropped_total 1",
		"latticed_wal_resets_total 1",
		"latticed_wal_torn_tails_total 0",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("metrics missing %q:\n%s", want, sb.String())
		}
	}
}

// TestDecodeWALRecordCorruptCount pins the allocation bound: a record
// declaring the full maxWALRecordEvents count over a near-empty payload
// must fail cleanly — the pre-allocation is sized by the payload (one
// kind byte + one varint byte per coordinate minimum), not by the
// attacker-controlled count.
func TestDecodeWALRecordCorruptCount(t *testing.T) {
	e := binwire.Get()
	defer binwire.Put(e)
	off := beginCRCFrame(e, framePersistWALRecord)
	e.Uvarint(7)                  // epoch
	e.Uvarint(maxWALRecordEvents) // declared count; no event bytes follow
	endCRCFrame(e, off)
	r := binwire.NewReader(e.Bytes())
	_, payload := r.Frame()
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
	if _, _, err := decodeWALRecord(&payload, 2); err == nil {
		t.Fatal("record with a declared count beyond its payload decoded")
	}
}

// TestMutateMarginEdges is the saturating-arithmetic regression: for
// windows near the int extremes the ± MutateMargin growth bound used to
// wrap, inverting the bound and misclassifying every event. Both decode
// funnels (JSON and binary) must accept in-window events there and
// still reject out-of-margin ones.
func TestMutateMarginEdges(t *testing.T) {
	lim := Limits{MaxBatch: 8, MaxWindow: 100}
	maxI, minI := math.MaxInt, math.MinInt
	cases := []struct {
		name     string
		lo, hi   []int
		p        []int
		rejected bool
	}{
		{"hi edge, in window", []int{maxI - 4, 0}, []int{maxI - 1, 4}, []int{maxI - 1, 2}, false},
		{"hi edge, clamped margin", []int{maxI - 4, 0}, []int{maxI - 1, 4}, []int{maxI, 2}, false},
		{"hi edge, off-axis out of margin", []int{maxI - 4, 0}, []int{maxI - 1, 4}, []int{maxI - 1, 37}, true},
		{"lo edge, in window", []int{minI + 1, 0}, []int{minI + 5, 4}, []int{minI + 1, 0}, false},
		{"lo edge, clamped margin", []int{minI + 1, 0}, []int{minI + 5, 4}, []int{minI, 0}, false},
		{"lo edge, off-axis out of margin", []int{minI + 1, 0}, []int{minI + 5, 4}, []int{minI + 1, -33}, true},
		{"interior unaffected", []int{0, 0}, []int{4, 4}, []int{36, 0}, false},
		{"interior out of margin", []int{0, 0}, []int{4, 4}, []int{37, 0}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			body := fmt.Sprintf(`{"window":{"lo":[%d,%d],"hi":[%d,%d]},"events":[{"op":"join","p":[%d,%d]}]}`,
				c.lo[0], c.lo[1], c.hi[0], c.hi[1], c.p[0], c.p[1])
			_, _, _, jerr := DecodeMutateRequest([]byte(body), lim)
			if got := jerr != nil; got != c.rejected {
				t.Errorf("JSON funnel: rejected=%v want %v (%v)", got, c.rejected, jerr)
			}

			e := binwire.Get()
			defer binwire.Put(e)
			req := MutateRequest{
				Plan:   PlanSpec{Tile: TileSpec{Name: "cross:2:1"}},
				Window: WindowSpec{Lo: c.lo, Hi: c.hi},
				Events: []EventSpec{{Op: "join", P: c.p}},
			}
			if err := EncodeMutateBinary(e, req, ""); err != nil {
				t.Fatalf("encode: %v", err)
			}
			_, berr := DecodeBinaryMutate(e.Bytes(), lim)
			if got := berr != nil; got != c.rejected {
				t.Errorf("binary funnel: rejected=%v want %v (%v)", got, c.rejected, berr)
			}
		})
	}
}
