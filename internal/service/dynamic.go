package service

// Dynamic-deployment sessions: the serving-side face of internal/dynamic.
// A session is a mutable deployment — a compiled plan restricted to a
// window, churned by Join/Leave/Move/Fail events — identified by the
// plan's canonical core.Signature plus the window, and versioned by an
// epoch that increments once per applied mutation batch. Clients track
// churn by applying the delta responses (changed slot assignments) in
// epoch order; an epoch mismatch means missed deltas, answered with 409
// so the client resyncs with a full snapshot request.
//
// Sessions live in a small LRU (they carry per-sensor state, unlike the
// immutable plans of the Registry); each is guarded by its own mutex, so
// mutations on different deployments proceed concurrently while one
// deployment's events serialize.

import (
	"container/list"
	"encoding/json"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"tilingsched/internal/core"
	"tilingsched/internal/dynamic"
	"tilingsched/internal/graph"
	"tilingsched/internal/lattice"
	"tilingsched/internal/tiling"
)

// DefaultMaxSessions bounds the dynamic-session LRU when ServerOptions
// leaves it zero. Sessions hold O(window) state (slot table + tombstone
// bitset), so the bound is deliberately far below the plan cache's.
const DefaultMaxSessions = 16

// SessionStats counts dynamic-session traffic for /healthz and expvar.
type SessionStats struct {
	// Sessions is the number of live sessions.
	Sessions int `json:"sessions"`
	// Created and Evicted count session lifecycle events; EvictedDirty
	// is the subset of evictions that discarded (or, with persistence
	// on, flushed) churn state — sessions past epoch 0.
	Created      int64 `json:"created"`
	Evicted      int64 `json:"evicted"`
	EvictedDirty int64 `json:"evicted_dirty"`
	// Restored counts sessions rebuilt from the data directory
	// (restore-on-miss and restore-on-start).
	Restored int64 `json:"restored"`
	// Mutations counts applied mutate batches, Events the individual
	// deployment events inside them.
	Mutations int64 `json:"mutations"`
	Events    int64 `json:"events"`
	// EpochConflicts counts requests rejected for a stale epoch (409).
	EpochConflicts int64 `json:"epoch_conflicts"`
	// Subscribers is the number of live push-subscription streams;
	// Subscribed counts subscriptions ever attached.
	Subscribers int64 `json:"subscribers"`
	Subscribed  int64 `json:"subscribed"`
	// SubscriberDrops counts subscribers dropped for a full queue (slow
	// consumers); SubscriberEvictions counts subscriber streams
	// terminated because their session was evicted.
	SubscriberDrops     int64 `json:"subscriber_drops"`
	SubscriberEvictions int64 `json:"subscriber_evictions"`
}

// sessionTable is the LRU of live dynamic sessions. Lookup and eviction
// hold the table lock; event application holds only the session lock.
//
// Persistence makes per-key ordering load-bearing: a session's on-disk
// WAL and snapshot are renamed over by first-open, periodic snapshots,
// and eviction flushes, so two goroutines touching the same key's files
// concurrently can strand a live O_APPEND handle on an unlinked inode —
// silently discarding every subsequent append. The table therefore
// serializes the full per-key file lifecycle: `building` single-flights
// the first open (concurrent misses wait instead of racing duplicate
// opens), and `evicting` is a barrier a re-open waits on until the
// eviction flush has closed the old handle and finished its renames.
type sessionTable struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*dynSession
	lru     *list.List // of *dynSession
	stats   SessionStats
	met     *Metrics // nil in tests that build a bare table

	// building holds one channel per key whose first build/open is in
	// flight; concurrent misses wait on it. evicting holds one channel
	// per key whose eviction flush is in flight; a re-open waits on it.
	// Both are closed (and removed) when the owning operation finishes.
	building map[string]chan struct{}
	evicting map[string]chan struct{}

	// store, when non-nil, makes sessions durable (DESIGN.md §12):
	// lookups restore evicted sessions from disk, evictions flush dirty
	// ones first. Set by Server.EnablePersistence before traffic.
	store *SessionStore
	// logf receives operational log lines (dirty evictions, persistence
	// recoveries); nil discards them.
	logf func(format string, args ...any)

	// subsLive tracks live subscription streams across sessions without
	// the table lock (attach under a session lock, detach without any).
	subsLive atomic.Int64
	// baseMode, when not Auto, builds session mutators over an explicit
	// conflict-graph mode instead of the implicit periodic stencil — a
	// test hook for the subscriber oracle's mode sweep (production
	// sessions always use identity residues).
	baseMode graph.Mode
}

// dynSession is one mutable deployment.
type dynSession struct {
	key  string
	elem *list.Element

	mu    sync.Mutex
	mut   *dynamic.Mutator
	epoch uint64
	// disk is the session's WAL handle when persistence is on; nil once
	// the session is evicted (appends stop, the on-disk flush stands).
	disk *sessionDisk
	// gone marks the session evicted: its flush has run (or is running)
	// and the table no longer knows it. A handler holding a stale pointer
	// must re-get instead of mutating an unreachable — and, with
	// persistence on, no-longer-durable — ghost.
	gone bool
	// hub fans applied batches out to this session's push subscribers
	// (DESIGN.md §13). Attaches and publishes run under mu; eviction
	// closes every subscriber so none can hold the ghost session alive.
	hub subHub

	// lastPubNs is the wall-clock nanosecond stamp of the session's most
	// recent hub publish (0 until one happens) — the reference point the
	// subscriber time-behind watermarks are measured against. Atomic so
	// the statusz/scrape path can read it without the session lock.
	lastPubNs atomic.Int64
}

func newSessionTable(capacity int, met *Metrics) *sessionTable {
	if capacity <= 0 {
		capacity = DefaultMaxSessions
	}
	return &sessionTable{
		cap:      capacity,
		entries:  make(map[string]*dynSession),
		lru:      list.New(),
		met:      met,
		building: make(map[string]chan struct{}),
		evicting: make(map[string]chan struct{}),
	}
}

// get returns the session for (plan, window), creating it on first use:
// the mutator is seeded with the plan's Theorem 1 schedule over an
// implicit periodic base graph, so creation costs O(window) slot lookups
// and a stencil build, never an explicit edge materialization. With
// persistence on, a session that was evicted (or predates this process)
// restores from its snapshot + WAL instead of reseeding at epoch 0.
func (st *sessionTable) get(plan *core.Plan, w lattice.Window) (*dynSession, error) {
	key := plan.Signature() + "|" + w.String()
	var build chan struct{}
	for {
		st.mu.Lock()
		if s, ok := st.entries[key]; ok {
			st.lru.MoveToFront(s.elem)
			st.mu.Unlock()
			return s, nil
		}
		// A pending eviction flush or an in-flight first build owns this
		// key's on-disk state (snapshot + WAL renames, the old handle);
		// wait for it to finish rather than racing its renames with our
		// open, which could leave the published session appending to an
		// unlinked inode.
		if ch, ok := st.evicting[key]; ok {
			st.mu.Unlock()
			<-ch
			continue
		}
		if ch, ok := st.building[key]; ok {
			st.mu.Unlock()
			<-ch
			continue
		}
		build = make(chan struct{})
		st.building[key] = build
		st.mu.Unlock()
		break
	}
	// Build outside the table lock (the costly part): this goroutine is
	// the key's sole builder — concurrent misses wait on the build
	// channel and then find the published session — so the disk open,
	// restore, and fresh-WAL creation never run twice for one key.
	fail := func(err error) (*dynSession, error) {
		st.mu.Lock()
		delete(st.building, key)
		st.mu.Unlock()
		close(build)
		return nil, err
	}
	opts := st.dynOpts(w)
	var (
		mut   *dynamic.Mutator
		disk  *sessionDisk
		epoch uint64
		err   error
	)
	if st.store != nil {
		disk, mut, epoch, err = st.store.open(plan, w, opts)
		if err != nil {
			return fail(err)
		}
	}
	restored := mut != nil
	if mut == nil {
		mut, err = dynamic.NewMutator(plan.Deployment(), w, plan.Schedule(), opts)
		if err != nil {
			if disk != nil {
				disk.close()
			}
			return fail(err)
		}
	}
	s := &dynSession{key: key, mut: mut, epoch: epoch, disk: disk}
	st.mu.Lock()
	delete(st.building, key)
	s.elem = st.lru.PushFront(s)
	st.entries[key] = s
	st.stats.Created++
	if restored {
		st.stats.Restored++
	}
	var evicted []*dynSession
	for st.lru.Len() > st.cap {
		back := st.lru.Back()
		ev := back.Value.(*dynSession)
		st.lru.Remove(back)
		delete(st.entries, ev.key)
		st.stats.Evicted++
		if st.met != nil {
			st.met.sessEvicted.Inc()
		}
		// The eviction barrier goes up in the same critical section that
		// removes the key, so a miss for it can never slip between
		// removal and the flush.
		st.evicting[ev.key] = make(chan struct{})
		evicted = append(evicted, ev)
	}
	if st.met != nil {
		st.met.sessCreated.Inc()
		if restored {
			st.met.sessRestored.Inc()
		}
		st.met.sessLive.Set(int64(st.lru.Len()))
	}
	st.mu.Unlock()
	close(build)
	// Dirty-eviction bookkeeping (and the disk flush) needs the evicted
	// session's lock, which must never be taken under the table lock —
	// mutateCore holds session-then-table (via record), so the reverse
	// order would deadlock.
	for _, ev := range evicted {
		st.finishEvict(ev)
	}
	return s, nil
}

// finishEvict completes an eviction outside the table lock: a dirty
// session (epoch > 0) is counted and logged, and — with persistence on —
// flushed to a snapshot before its WAL handle is released. Taking the
// session lock first means an in-flight mutate on the evicted session
// finishes (and lands in the flush) before the handle goes away; marking
// the session gone sends later stale-pointer mutates back through get.
// Closing the hub in the same critical section terminates every
// subscriber stream with a resync-required Bye — a subscriber must never
// hold a flushed ghost session alive, and once gone is set no new
// subscriber can attach (subscribeAttach re-gets). Only then does the
// eviction barrier come down, so a re-open for the key reads the
// flushed files with no live handle left behind.
func (st *sessionTable) finishEvict(s *dynSession) {
	s.mu.Lock()
	s.gone = true
	dirty := s.epoch > 0
	epoch := s.epoch
	if s.disk != nil {
		if dirty {
			if err := s.disk.snapshot(s.mut, s.epoch); err != nil {
				st.logfSafe("latticed: flushing evicted session %s: %v", s.key, err)
			}
		}
		s.disk.close()
		s.disk = nil
	}
	subsClosed := s.hub.closeAll(byeEvicted)
	s.mu.Unlock()
	st.mu.Lock()
	if dirty {
		st.stats.EvictedDirty++
	}
	st.stats.SubscriberEvictions += int64(subsClosed)
	ch := st.evicting[s.key]
	delete(st.evicting, s.key)
	st.mu.Unlock()
	if ch != nil {
		close(ch)
	}
	if subsClosed > 0 {
		if st.met != nil {
			st.met.subsEvicted.Add(uint64(subsClosed))
		}
		st.logfSafe("latticed: evicted session %s: terminated %d subscriber(s) at epoch %d",
			s.key, subsClosed, epoch)
	}
	if dirty {
		if st.met != nil {
			st.met.sessEvictedDirty.Inc()
		}
		st.logfSafe("latticed: evicted dirty session %s at epoch %d", s.key, epoch)
	}
}

// flushAll snapshots every live dirty session to the data directory
// (graceful shutdown); sessions stay live and keep their WAL handles.
// Returns the number of sessions flushed.
func (st *sessionTable) flushAll() int {
	st.mu.Lock()
	live := make([]*dynSession, 0, st.lru.Len())
	for e := st.lru.Front(); e != nil; e = e.Next() {
		live = append(live, e.Value.(*dynSession))
	}
	st.mu.Unlock()
	n := 0
	for _, s := range live {
		s.mu.Lock()
		if s.disk != nil && s.epoch > 0 {
			if err := s.disk.snapshot(s.mut, s.epoch); err != nil {
				st.logfSafe("latticed: flushing session %s: %v", s.key, err)
			} else {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// dynOpts builds the mutator options every session of this table is
// seeded, restored, and caught up with: the plan's implicit periodic
// base (identity residues) plus the table's metrics sink — or, when the
// oracle's mode hook forces an explicit adjacency mode, that mode with
// no residues.
func (st *sessionTable) dynOpts(w lattice.Window) dynamic.Options {
	opts := dynamic.Options{}
	if st.baseMode == graph.Auto {
		opts.Residues = tiling.IdentityResidues(w.Dim())
	} else {
		opts.BaseMode = st.baseMode
	}
	if st.met != nil {
		opts.Metrics = st.met.dyn
	}
	return opts
}

// logfSafe logs through the table's sink when one is configured.
func (st *sessionTable) logfSafe(format string, args ...any) {
	if st.logf != nil {
		st.logf(format, args...)
	}
}

// snapshot returns the stats under the table lock.
func (st *sessionTable) snapshot() SessionStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	s := st.stats
	s.Sessions = st.lru.Len()
	s.Subscribers = st.subsLive.Load()
	return s
}

// recordSubscribe tallies one attached subscription stream.
func (st *sessionTable) recordSubscribe() {
	st.subsLive.Add(1)
	st.mu.Lock()
	st.stats.Subscribed++
	st.mu.Unlock()
}

// recordSubDrops tallies slow-subscriber drops (called under a session
// lock, like record — session-then-table is the established order).
func (st *sessionTable) recordSubDrops(n int) {
	st.mu.Lock()
	st.stats.SubscriberDrops += int64(n)
	st.mu.Unlock()
}

// record tallies one applied batch.
func (st *sessionTable) record(events int) {
	st.mu.Lock()
	st.stats.Mutations++
	st.stats.Events += int64(events)
	st.mu.Unlock()
	if st.met != nil {
		st.met.sessMutations.Inc()
		st.met.sessEvents.Add(uint64(events))
	}
}

// recordConflict tallies one stale-epoch rejection.
func (st *sessionTable) recordConflict() {
	st.mu.Lock()
	st.stats.EpochConflicts++
	st.mu.Unlock()
	if st.met != nil {
		st.met.sessConfl.Inc()
	}
}

// --- Wire types -----------------------------------------------------------

// EventSpec is one deployment mutation over the wire.
type EventSpec struct {
	// Op is "join", "leave", "fail", or "move".
	Op string `json:"op"`
	// P is the position the event acts on.
	P []int `json:"p"`
	// To is the destination of a move.
	To []int `json:"to,omitempty"`
}

// MutateRequest is the body of POST /v1/plan:mutate. The (plan, window)
// pair names the session; Events apply in order. Epoch, when non-nil,
// must match the session's current epoch (optimistic concurrency: a
// client that missed deltas is told to resync instead of applying
// against a stale base). Full requests the complete live assignment in
// the response's Changed list — the resync path — and may carry zero
// events.
type MutateRequest struct {
	Plan   PlanSpec    `json:"plan"`
	Window WindowSpec  `json:"window"`
	Events []EventSpec `json:"events"`
	Epoch  *uint64     `json:"epoch,omitempty"`
	Full   bool        `json:"full,omitempty"`
}

// DisruptionSpec is the wire form of dynamic.Disruption.
type DisruptionSpec struct {
	Events      int  `json:"events"`
	Joined      int  `json:"joined"`
	Departed    int  `json:"departed"`
	Reassigned  int  `json:"reassigned"`
	ColorsDelta int  `json:"colors_delta"`
	FullRecolor bool `json:"full_recolor"`
	Compacted   bool `json:"compacted"`
}

// ChangeSpec is one slot delta: the sensor at P now holds Slot, or has
// departed when Slot is -1.
type ChangeSpec struct {
	P    []int `json:"p"`
	Slot int   `json:"slot"`
}

// MutateResponse answers a mutate request. Epoch is the session's epoch
// after this batch; a client holding epoch E applies Changed to reach E.
// On a 409 (stale epoch) the response carries the current epoch with no
// changes, and the Error field says why.
type MutateResponse struct {
	Signature  string         `json:"signature"`
	Epoch      uint64         `json:"epoch"`
	M          int            `json:"m"`
	Alive      int            `json:"alive"`
	Disruption DisruptionSpec `json:"disruption"`
	Changed    []ChangeSpec   `json:"changed"`
	Error      string         `json:"error,omitempty"`
}

// DecodeMutateRequest parses a mutate request body and enforces its
// structural contract: valid JSON, a well-formed window within
// lim.MaxWindow points, at most lim.MaxBatch events (MaxBatch bounds
// both point batches and event batches — one knob for per-request work),
// and every event a known op with sane coordinates. It is the decoding
// funnel of the mutate endpoint, shaped like DecodeBatchRequest so the
// same never-panic contract holds for untrusted bytes. Violations wrap
// ErrSpec (400) or ErrLimit (413).
func DecodeMutateRequest(data []byte, lim Limits) (MutateRequest, lattice.Window, []dynamic.Event, error) {
	lim = lim.withDefaults()
	var req MutateRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return MutateRequest{}, lattice.Window{}, nil, fmt.Errorf("%w: decoding request: %v", ErrSpec, err)
	}
	win, err := req.Window.Window()
	if err != nil {
		return MutateRequest{}, lattice.Window{}, nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	size, err := win.SizeChecked()
	if err != nil || size > lim.MaxWindow {
		return MutateRequest{}, lattice.Window{}, nil, fmt.Errorf("%w: window %s exceeds limit %d points",
			ErrLimit, win, lim.MaxWindow)
	}
	if len(req.Events) > lim.MaxBatch {
		return MutateRequest{}, lattice.Window{}, nil, fmt.Errorf("%w: %d events exceed limit %d",
			ErrLimit, len(req.Events), lim.MaxBatch)
	}
	if len(req.Events) == 0 && !req.Full {
		return MutateRequest{}, lattice.Window{}, nil, fmt.Errorf("%w: no events and full not requested", ErrSpec)
	}
	// Growth bound: every event position must stay within MutateMargin of
	// the session window, so the deployment's bounding window (which
	// compaction re-freezes over, and which sizes the per-sensor tables)
	// cannot be exploded by a single far-away join.
	bound := win
	bound.Lo = win.Lo.Clone()
	bound.Hi = win.Hi.Clone()
	growMargin(bound)
	events := make([]dynamic.Event, len(req.Events))
	dim := win.Dim()
	for i, es := range req.Events {
		ev, err := es.event(dim)
		if err != nil {
			return MutateRequest{}, lattice.Window{}, nil, fmt.Errorf("event %d: %w", i, err)
		}
		if !bound.Contains(ev.P) || (ev.Kind == dynamic.Move && !bound.Contains(ev.To)) {
			return MutateRequest{}, lattice.Window{}, nil, fmt.Errorf("%w: event %d outside the window's %d-cell margin",
				ErrLimit, i, MutateMargin)
		}
		events[i] = ev
	}
	return req, win, events, nil
}

// MutateMargin is how far outside its declared window a session's
// deployment may grow: mutate events beyond window ± MutateMargin are
// rejected (413). It bounds the session's worst-case bounding window —
// and with it compaction cost and per-sensor table sizes — regardless of
// event content.
const MutateMargin = 32

// growMargin widens a window (whose corners the caller owns) by
// MutateMargin per axis with saturating arithmetic: a window corner
// within MutateMargin of the int extremes clamps instead of wrapping,
// which would invert the bound and misclassify every event.
func growMargin(bound lattice.Window) {
	for a := range bound.Lo {
		bound.Lo[a] = satAdd(bound.Lo[a], -MutateMargin)
		bound.Hi[a] = satAdd(bound.Hi[a], MutateMargin)
	}
}

// satAdd returns a+b clamped to the int range instead of wrapping.
func satAdd(a, b int) int {
	s := a + b
	if b > 0 && s < a {
		return math.MaxInt
	}
	if b < 0 && s > a {
		return math.MinInt
	}
	return s
}

// event validates and converts one wire event.
func (es EventSpec) event(dim int) (dynamic.Event, error) {
	checkPt := func(c []int, what string) (lattice.Point, error) {
		if len(c) != dim {
			return nil, fmt.Errorf("%w: %s has dimension %d, want %d", ErrSpec, what, len(c), dim)
		}
		return lattice.Point(c), nil
	}
	p, err := checkPt(es.P, "p")
	if err != nil {
		return dynamic.Event{}, err
	}
	switch es.Op {
	case "join":
		return dynamic.Event{Kind: dynamic.Join, P: p}, nil
	case "leave":
		return dynamic.Event{Kind: dynamic.Leave, P: p}, nil
	case "fail":
		return dynamic.Event{Kind: dynamic.Fail, P: p}, nil
	case "move":
		to, err := checkPt(es.To, "to")
		if err != nil {
			return dynamic.Event{}, err
		}
		return dynamic.Event{Kind: dynamic.Move, P: p, To: to}, nil
	}
	return dynamic.Event{}, fmt.Errorf("%w: unknown op %q", ErrSpec, es.Op)
}
