package service

// Epoch-delta push (DESIGN.md §13): POST /v1/plan:subscribe attaches a
// client to a dynamic mutation session and streams every subsequent
// epoch's slot changes, so sensors learn reassignments without polling.
// Each session carries a subHub — a set of bounded per-subscriber
// queues. mutateCore publishes one immutable Delta per applied batch
// under the session lock (so subscribers observe epochs in order), and
// publishing never blocks: a subscriber whose queue is full is dropped
// on the spot and its stream ends with a "resync required" terminal
// frame. A subscriber arriving with a stale epoch is caught up from the
// persisted WAL (§12) when the gap is covered, and answered with a full
// resync snapshot otherwise. Lock order: sess.mu → subHub.mu → table.mu
// (publish runs under the session lock; detach takes only the hub lock).

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tilingsched/internal/core"
	"tilingsched/internal/lattice"
	"tilingsched/internal/obs/trace"
)

const (
	// DefaultSubscribeQueue is a subscriber's delta-queue depth when
	// ServerOptions leaves SubscribeQueue zero: the number of epochs a
	// slow consumer may lag before it is dropped to a resync.
	DefaultSubscribeQueue = 256
	// DefaultMaxSubscribers bounds the subscribers attached to one
	// session when ServerOptions leaves MaxSubscribers zero.
	DefaultMaxSubscribers = 1024
)

// Subscriber terminal-frame reasons (the Bye text of the ending delta).
const (
	byeSlow    = "resync required: subscriber queue overflow"
	byeEvicted = "resync required: session evicted"
)

// SubscribeRequest is the body of POST /v1/plan:subscribe. The
// (plan, window) pair names the mutation session exactly as in
// MutateRequest. Epoch, when non-nil, is the last epoch the client has
// applied: the stream resumes from there (WAL catch-up) when the gap is
// covered, and opens with a full resync delta otherwise. A nil epoch
// always opens with a full resync delta.
type SubscribeRequest struct {
	Plan   PlanSpec   `json:"plan"`
	Window WindowSpec `json:"window"`
	Epoch  *uint64    `json:"epoch,omitempty"`
}

// SubscribeHello is the first element of a subscription stream: the
// session's identity and its epoch, palette size, and live count at
// attach time. Every delta that follows has a strictly larger epoch
// (after any catch-up deltas, which close the gap up to Epoch).
type SubscribeHello struct {
	Signature string `json:"signature"`
	Epoch     uint64 `json:"epoch"`
	M         int    `json:"m"`
	Alive     int    `json:"alive"`
}

// SubscribeDelta is one pushed stream element: the slot changes that
// take a copy of the assignment from the previous epoch to Epoch. Full
// marks a resync delta — Changed is the complete live assignment and
// replaces the copy instead of patching it. A non-empty Bye terminates
// the stream: the server stopped pushing (slow-consumer drop, session
// eviction) and the client must reconnect and resync.
type SubscribeDelta struct {
	Epoch   uint64       `json:"epoch"`
	M       int          `json:"m"`
	Alive   int          `json:"alive"`
	Full    bool         `json:"full,omitempty"`
	Changed []ChangeSpec `json:"changed"`
	Bye     string       `json:"bye,omitempty"`
}

// Delta is the fan-out unit of the push plane: one epoch's slot changes
// (or, with Full set, a complete assignment snapshot), shared immutably
// by every subscriber queue it is published to. In-process subscribers
// (Server.Subscribe) receive *Delta directly; the wire handlers render
// it as a SubscribeDelta line or a FrameDelta frame.
type Delta struct {
	// Epoch is the session epoch this delta produces.
	Epoch uint64
	// M and Alive are the post-epoch palette size and live-sensor count.
	M, Alive int
	// Full marks a resync snapshot: Changed is the complete live
	// assignment and replaces the subscriber's copy.
	Full bool
	// Changed is the slot-change set (Slot -1 marks a departure). The
	// slice and its points are shared across subscribers: read-only.
	Changed []ChangeSpec
	// PubTime is the wall-clock instant the delta was published to the
	// hub — the base of the propagation-latency measurement. Zero on
	// catch-up and resync deltas, which were never fanned out live.
	PubTime time.Time

	// trace is the mutate request's sampled trace, when it drew one:
	// each subscriber delivery appends a deliver span to it, completing
	// the mutate→WAL→publish→deliver span tree (DESIGN.md §14). A very
	// late delivery may stamp a trace the ring has since recycled —
	// race-safe (the trace's own mutex covers the append) and benign
	// for debug tooling, documented rather than defended against.
	trace *trace.Trace
	// pubNs is the publish stamp on the trace's monotonic clock, the
	// deliver span's start.
	pubNs int64
}

// subscriber is one attached stream: a bounded delta queue plus the
// terminal reason. reason is written under the hub lock strictly before
// ch is closed, so a receiver that observed the close may read it
// without further synchronization.
type subscriber struct {
	ch     chan *Delta
	reason string
	// note names this subscriber in deliver spans ("sub-N", N from the
	// server-wide attach sequence), precomputed at attach so the relay
	// hot path never formats.
	note string
	// lastEpoch is the latest epoch the relay has delivered (attach
	// epoch until then); lastPubNs the publish wall-clock of the latest
	// live delta delivered (0 until one arrives). Both feed the lag
	// watermarks (/statusz, metrics) — written by the relay goroutine,
	// read by the cold statusz/scrape path, hence atomics.
	lastEpoch atomic.Uint64
	lastPubNs atomic.Int64
	// delivered counts live deliveries for propagation-histogram
	// decimation. Only the subscriber's own consumer (the relay
	// goroutine or the in-process Mark caller) touches it, so it is a
	// plain field, not an atomic.
	delivered uint64
}

// propSampleMask decimates shared propagation-histogram records to one
// in eight deliveries per subscriber: the histogram's three shared
// atomics would otherwise serialize fan-out at 10k+ subscribers, while
// one-in-eight keeps quantile estimates stable at any realistic rate.
// Traced deltas always record, so exemplars stay coherent. The per-
// subscriber lag marks are exact regardless — they are uncontended.
const propSampleMask = 7

// subHub is a session's subscriber set. Attach and publish run under
// the owning session's mutex (hub lock nested inside), so a subscriber
// can never miss the epoch it attached at; detach takes only the hub
// lock, so a disconnecting client never touches the mutate path.
type subHub struct {
	mu   sync.Mutex
	subs map[*subscriber]struct{}
}

// attach adds sub unless the session already has max subscribers.
func (h *subHub) attach(sub *subscriber, max int) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.subs) >= max {
		return false
	}
	if h.subs == nil {
		h.subs = make(map[*subscriber]struct{})
	}
	h.subs[sub] = struct{}{}
	return true
}

// detach removes sub if still attached (false when the hub already
// dropped or closed it). It never closes the channel — the hub owns
// closes, the streamer owns detach.
func (h *subHub) detach(sub *subscriber) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.subs[sub]; !ok {
		return false
	}
	delete(h.subs, sub)
	return true
}

// active reports whether any subscriber is attached — the mutate path's
// cheap pre-check before it builds a Delta.
func (h *subHub) active() bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs) > 0
}

// publish hands d to every subscriber without ever blocking: a full
// queue means the subscriber cannot keep up, so it is dropped on the
// spot (reason set, channel closed) rather than stalling the mutation
// pipeline. Returns the deliveries and drops.
func (h *subHub) publish(d *Delta) (delivered, dropped int) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for sub := range h.subs {
		select {
		case sub.ch <- d:
			delivered++
		default:
			delete(h.subs, sub)
			sub.reason = byeSlow
			close(sub.ch)
			dropped++
		}
	}
	return delivered, dropped
}

// closeAll terminates every subscriber with the given reason (session
// eviction) and returns how many were closed.
func (h *subHub) closeAll(reason string) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := len(h.subs)
	for sub := range h.subs {
		delete(h.subs, sub)
		sub.reason = reason
		close(sub.ch)
	}
	return n
}

// DecodeSubscribeRequest parses a subscribe request body and enforces
// its structural contract: valid JSON and a well-formed window within
// lim.MaxWindow points. It is the JSON decoding funnel of the subscribe
// endpoint (fuzzed by FuzzDecodeSubscribeRequest) under the same
// never-panic contract as DecodeMutateRequest. Violations wrap ErrSpec
// (400) or ErrLimit (413).
func DecodeSubscribeRequest(data []byte, lim Limits) (SubscribeRequest, lattice.Window, error) {
	lim = lim.withDefaults()
	var req SubscribeRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return SubscribeRequest{}, lattice.Window{}, fmt.Errorf("%w: decoding request: %v", ErrSpec, err)
	}
	win, err := req.Window.Window()
	if err != nil {
		return SubscribeRequest{}, lattice.Window{}, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	size, err := win.SizeChecked()
	if err != nil || size > lim.MaxWindow {
		return SubscribeRequest{}, lattice.Window{}, fmt.Errorf("%w: window %s exceeds limit %d points",
			ErrLimit, win, lim.MaxWindow)
	}
	return req, win, nil
}

// Subscription is an in-process subscriber feed (Server.Subscribe): the
// attach-time hello, any catch-up deltas that close the gap from the
// requested epoch, and the live delta channel. C closes when the server
// stops pushing (slow-consumer drop or session eviction); Reason then
// says why. Callers that stop reading must Close, or the feed lingers
// until the hub drops it as slow.
type Subscription struct {
	// Hello is the session state at attach time.
	Hello SubscribeHello
	// Catch holds the deltas that bring a stale subscriber from its
	// requested epoch up to Hello.Epoch, oldest first (nil when the
	// subscriber attached current). Apply them before reading C.
	Catch []*Delta
	// C delivers every epoch published after Hello.Epoch, in order.
	C <-chan *Delta

	sub  *subscriber
	sess *dynSession
	srv  *Server
	done func()
}

// Mark records one delivered delta for this feed: lag-watermark
// bookkeeping, the propagation-latency histogram, and the delta's
// deliver span. The wire relays call it per send; in-process consumers
// (embedders, the push bench) should call it per received delta so
// /statusz lag watermarks cover them too. Harmless to skip — the feed
// still works, it just reads as lagging.
func (f *Subscription) Mark(d *Delta) { f.srv.markDelivered(f.sub, d) }

// markDelivered is the delivery bookkeeping behind Subscription.Mark
// and the wire relays: advance the subscriber's lag marks, record
// propagation latency for live deltas, and complete the publishing
// trace's span tree with a deliver span.
func (s *Server) markDelivered(sub *subscriber, d *Delta) {
	sub.lastEpoch.Store(d.Epoch)
	if d.PubTime.IsZero() {
		return // catch-up or resync delta: never fanned out live
	}
	sub.lastPubNs.Store(d.PubTime.UnixNano())
	n := sub.delivered
	sub.delivered = n + 1
	if d.trace == nil && n&propSampleMask != 0 {
		return
	}
	lat := time.Since(d.PubTime)
	s.met.propagationNs.Record(uint64(lat))
	if d.trace != nil {
		d.trace.EpochNoteSpan("deliver", sub.note, int64(d.Epoch), d.pubNs, d.trace.Clock())
		s.met.recordExemplar(&PropExemplar{
			TraceID: d.trace.ID().String(), Epoch: d.Epoch, LatencyNs: int64(lat)})
	}
}

// Reason returns why the feed ended ("" while C is open). Valid only
// after a receive from C observed it closed.
func (f *Subscription) Reason() string { return f.sub.reason }

// Close detaches the feed. Idempotent; safe concurrently with the
// server dropping the feed on its own.
func (f *Subscription) Close() {
	f.sess.hub.detach(f.sub)
	if f.done != nil {
		f.done()
		f.done = nil
	}
}

// Subscribe attaches an in-process subscriber to the mutation session
// for (plan, window) — the push plane without HTTP framing, for
// embedders and the push benchmarks. epoch has SubscribeRequest.Epoch
// semantics (nil: open with a full resync delta). The returned feed
// must be Closed when done.
func (s *Server) Subscribe(spec PlanSpec, ws WindowSpec, epoch *uint64) (*Subscription, error) {
	plan, err := s.reg.GetSpec(spec)
	if err != nil {
		return nil, err
	}
	win, err := ws.Window()
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	if win.Dim() != plan.Tile().Dim() {
		return nil, fmt.Errorf("%w: window dimension %d ≠ plan dimension %d", ErrSpec, win.Dim(), plan.Tile().Dim())
	}
	var e uint64
	if epoch != nil {
		e = *epoch
	}
	feed, _, err := s.subscribeAttach(plan, win, epoch != nil, e)
	return feed, err
}

// subscribeAttach resolves the live session for (plan, win), attaches a
// subscriber, and computes the catch-up deltas for the client's epoch:
// none when current, per-epoch WAL replays when the persisted log
// covers the gap, one full resync delta otherwise (unknown or future
// epoch, no persistence, gap not covered). On failure the returned
// status is the HTTP answer (503 when the session's subscriber cap is
// reached, 500 on a session-table failure).
func (s *Server) subscribeAttach(plan *core.Plan, win lattice.Window, hasEpoch bool, epoch uint64) (*Subscription, int, error) {
	maxSubs := s.opts.MaxSubscribers
	queue := s.opts.SubscribeQueue
	for {
		sess, err := s.sessions.get(plan, win)
		if err != nil {
			return nil, http.StatusInternalServerError, err
		}
		sess.mu.Lock()
		if sess.gone {
			// Evicted between lookup and lock (same race as mutateCore):
			// its hub is closed; attach to the live successor instead.
			sess.mu.Unlock()
			continue
		}
		sub := &subscriber{ch: make(chan *Delta, queue),
			note: fmt.Sprintf("sub-%d", s.subSeq.Add(1))}
		if !sess.hub.attach(sub, maxSubs) {
			sess.mu.Unlock()
			return nil, http.StatusServiceUnavailable,
				fmt.Errorf("session has %d subscribers (limit): retry or raise MaxSubscribers", maxSubs)
		}
		cur := sess.epoch
		sub.lastEpoch.Store(cur)
		feed := &Subscription{
			Hello: SubscribeHello{Signature: plan.Signature(), Epoch: cur,
				M: sess.mut.Slots(), Alive: sess.mut.AliveCount()},
			C:    sub.ch,
			sub:  sub,
			sess: sess,
			srv:  s,
		}
		needWAL := false
		switch {
		case hasEpoch && epoch == cur:
			// Current: the stream resumes with the next published delta.
		case hasEpoch && epoch < cur && sess.disk != nil:
			// Stale with a persisted history: try the WAL outside the
			// session lock (reading files under it would stall mutators).
			needWAL = true
		default:
			// Unknown base (no epoch, future epoch, or no persisted
			// history): full resync, captured under the lock so it is
			// exactly the assignment at cur.
			feed.Catch = []*Delta{fullDeltaLocked(sess)}
			s.recordResync()
		}
		sess.mu.Unlock()
		if needWAL {
			deltas, ok := s.sessions.store.catchUp(plan, win, epoch, cur, s.sessions.dynOpts(win))
			if ok {
				feed.Catch = deltas
				s.met.subCatchups.Inc()
			} else {
				// Gap not covered (snapshot past the client's epoch, torn
				// tail, rotated log): fall back to a full resync. The
				// session may have moved on — or been evicted — since the
				// attach; re-take the lock and re-stamp the hello.
				sess.mu.Lock()
				if sess.gone {
					sess.mu.Unlock()
					sess.hub.detach(sub)
					continue
				}
				feed.Hello.Epoch = sess.epoch
				sub.lastEpoch.Store(sess.epoch)
				feed.Hello.M = sess.mut.Slots()
				feed.Hello.Alive = sess.mut.AliveCount()
				feed.Catch = []*Delta{fullDeltaLocked(sess)}
				sess.mu.Unlock()
				s.recordResync()
			}
		}
		s.sessions.recordSubscribe()
		s.met.subsTotal.Inc()
		s.met.subsLive.Add(1)
		feed.done = func() {
			s.sessions.subsLive.Add(-1)
			s.met.subsLive.Add(-1)
		}
		return feed, http.StatusOK, nil
	}
}

// fullDeltaLocked captures a resync delta — the complete live
// assignment at the session's current epoch. Caller holds sess.mu.
func fullDeltaLocked(sess *dynSession) *Delta {
	d := &Delta{Epoch: sess.epoch, M: sess.mut.Slots(), Alive: sess.mut.AliveCount(), Full: true}
	d.Changed = make([]ChangeSpec, 0, sess.mut.AliveCount())
	sess.mut.EachAssignment(func(p lattice.Point, slot int) bool {
		d.Changed = append(d.Changed, ChangeSpec{P: p.Clone(), Slot: slot})
		return true
	})
	return d
}

// recordResync tallies one full-resync attach.
func (s *Server) recordResync() { s.met.subResyncs.Inc() }

// handleSubscribe opens a push stream: decode the request through the
// subscribe funnel, attach to the session, answer the hello plus any
// catch-up deltas, then relay published deltas until the client leaves
// or the server terminates the stream (slow drop, eviction) with a Bye.
// The response streams indefinitely — the handler clears the server's
// write deadline for this response and flushes per delta.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request, tr *reqTrace) {
	if isBinaryRequest(r) {
		s.handleSubscribeBin(w, r, tr)
		return
	}
	decodeStart := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBody))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeErr(w, status, fmt.Sprintf("reading request: %v", err))
		return
	}
	req, win, err := DecodeSubscribeRequest(body, s.limits())
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrLimit) {
			status = http.StatusRequestEntityTooLarge
		}
		writeErr(w, status, err.Error())
		return
	}
	plan, ok := s.getPlan(w, req.Plan)
	if !ok {
		return
	}
	tr.sig = plan.Signature()
	tr.decodeNs = time.Since(decodeStart)
	if win.Dim() != plan.Tile().Dim() {
		writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("window dimension %d ≠ plan dimension %d", win.Dim(), plan.Tile().Dim()))
		return
	}
	var epoch uint64
	if req.Epoch != nil {
		epoch = *req.Epoch
	}
	feed, status, err := s.subscribeAttach(plan, win, req.Epoch != nil, epoch)
	if err != nil {
		writeErr(w, status, err.Error())
		return
	}
	defer feed.Close()

	// The stream outlives any server-level write timeout; clear the
	// deadline for this response (best effort — recorders without
	// deadline support still stream) and flush per element so idle
	// sensors see each epoch as it happens.
	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", ndjsonContentType)
	w.WriteHeader(http.StatusOK)
	enc := json.NewEncoder(w)
	send := func(v any) bool {
		if err := enc.Encode(v); err != nil {
			return false
		}
		return rc.Flush() == nil
	}
	if !send(feed.Hello) {
		return
	}
	last := feed.Hello.Epoch
	for _, d := range feed.Catch {
		if !send(deltaWire(d)) {
			return
		}
		s.markDelivered(feed.sub, d)
		if d.Epoch > last {
			last = d.Epoch
		}
	}
	tr.batch = len(feed.Catch)
	ctx := r.Context()
	for {
		select {
		case d, open := <-feed.C:
			if !open {
				_ = send(SubscribeDelta{Epoch: last, Bye: feed.Reason()})
				return
			}
			// Skip deltas the catch-up already covered (published while
			// the WAL fallback re-snapshotted at a later epoch).
			if !d.Full && d.Epoch <= last {
				continue
			}
			if !send(deltaWire(d)) {
				return
			}
			s.markDelivered(feed.sub, d)
			if d.Epoch > last {
				last = d.Epoch
			}
			tr.batch++
		case <-ctx.Done():
			return
		}
	}
}

// ndjsonContentType is the JSON subscription stream's content type:
// one JSON value per line (hello, then deltas).
const ndjsonContentType = "application/x-ndjson"

// deltaWire renders a fan-out delta as its JSON stream element.
func deltaWire(d *Delta) SubscribeDelta {
	return SubscribeDelta{Epoch: d.Epoch, M: d.M, Alive: d.Alive, Full: d.Full, Changed: d.Changed}
}
