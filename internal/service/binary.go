package service

// Binary wire protocol (DESIGN.md §10): the message grammar layered on
// the binwire frame/varint primitives. The JSON funnel tops out around
// 1.5M lookups/s end-to-end because encoding/json dominates the serving
// hot path; this codec replaces it for batch slot/may-broadcast queries
// and mutation requests behind Content-Type negotiation
// (BinaryContentType), while the JSON format stays for compatibility
// and for the cold plan/health endpoints.
//
// Decode side: DecodeBinaryBatch and DecodeBinaryMutate are the binary
// twins of DecodeBatchRequest / DecodeMutateRequest — the single
// funnels between untrusted bytes and the engine, enforcing the same
// Limits with the same ErrSpec (400) / ErrLimit (413) split, and fuzzed
// by FuzzDecodeBinaryBatch / FuzzDecodeBinaryMutate under the same
// never-panic contract. Point coordinates decode into a caller-owned
// BinScratch arena (pooled by the server), so a warm decode allocates
// nothing: the returned points alias the arena, exactly like the JSON
// path's queryBuf aliasing.
//
// Encode side: responses are frame sequences (head, chunks, end)
// emitted through pooled binwire.Buffers — a 1M-slot window answer
// streams as ~64 bounded frames and never materializes as one buffer.
// The client-side helpers (EncodeBatchBinary, DecodeSlotsStream, …)
// exist for the load generator, the parity tests, and as reference
// encoders for non-Go clients.

import (
	"fmt"
	"math"

	"tilingsched/internal/lattice"
	"tilingsched/internal/service/binwire"
)

// BinaryContentType is the media type that selects the binary wire
// protocol on the batch and mutate endpoints. Requests carrying it are
// decoded as a single binary frame, and their responses are binary
// frame sequences with the same content type; any other content type
// gets the JSON codec.
const BinaryContentType = "application/x-lattice-bin"

// Wire-level string bounds: identifiers are small, and bounding them
// keeps attacker-chosen lengths from sizing allocations.
const (
	maxWireLattice = 64
	maxWireTile    = 128
	maxWireSig     = 256
	maxWireErrMsg  = 4096
)

// BinPlanRef is a decoded binary plan reference: either a full PlanSpec
// or a canonical-signature reference to an already-compiled plan
// (Signature non-empty wins). Signature references skip spec
// resolution entirely; an unknown signature is answered 404 so the
// client re-sends the spec form.
type BinPlanRef struct {
	// Spec is the full plan spec (valid when Signature is empty).
	Spec PlanSpec
	// Signature references a plan by its canonical core.Signature.
	Signature string
}

// BinBatch is a decoded binary batch request (slots or may-broadcast).
// Points and the window's corner slices alias the BinScratch arena
// passed to DecodeBinaryBatch and are valid until its next reuse.
type BinBatch struct {
	// Kind is binwire.FrameBatchSlots or binwire.FrameBatchMay.
	Kind byte
	// Plan names the plan to query.
	Plan BinPlanRef
	// Points is the explicit query batch (exactly one of Points and
	// UseWindow is set, enforced at decode).
	Points []lattice.Point
	// Window is the validated window shorthand, valid iff UseWindow.
	Window lattice.Window
	// UseWindow selects the window form.
	UseWindow bool
	// T is the query time (may-broadcast only).
	T int64
}

// BinScratch is the reusable backing store of a binary batch decode:
// one flat coordinate arena plus the point-header slice over it. The
// server pools one per in-flight request, making warm decodes
// allocation-free; a zero BinScratch is ready to use. Not safe for
// concurrent use.
type BinScratch struct {
	coords []int
	pts    []lattice.Point
}

// reserve empties the scratch and ensures capacity for n coordinates,
// reallocating at most once so previously returned aliases are never
// silently moved mid-decode.
func (sc *BinScratch) reserve(n int) {
	if cap(sc.coords) < n {
		sc.coords = make([]int, 0, n)
	}
	sc.coords = sc.coords[:0]
	sc.pts = sc.pts[:0]
}

// grab appends n coordinates to the arena and returns the fresh slice.
func (sc *BinScratch) grab(n int) []int {
	off := len(sc.coords)
	sc.coords = sc.coords[:off+n]
	return sc.coords[off : off+n]
}

// Release drops the scratch's aliases into decoded request data (so a
// pool holding the scratch does not pin request bodies) while keeping
// the backing arrays for reuse.
func (sc *BinScratch) Release() {
	clear(sc.pts[:cap(sc.pts)])
	sc.pts = sc.pts[:0]
	sc.coords = sc.coords[:0]
}

// failSpec converts a reader failure (malformed bytes) into the
// wire-layer ErrSpec so the HTTP status mapping (400) matches the JSON
// funnel's.
func failSpec(r *binwire.Reader) error {
	return fmt.Errorf("%w: %v", ErrSpec, r.Err())
}

// decodePlanRef reads a plan reference: tag 0 = spec (lattice string +
// named tile or explicit tile points), tag 1 = signature.
func decodePlanRef(r *binwire.Reader) (BinPlanRef, error) {
	var ref BinPlanRef
	switch tag := r.Byte(); tag {
	case 0:
		ref.Spec.Lattice = r.String(maxWireLattice)
		switch tt := r.Byte(); tt {
		case 0:
			ref.Spec.Tile.Name = r.String(maxWireTile)
		case 1:
			// Tile points are cold-path (they defeat the signature memo
			// anyway), so they materialize as [][]int for PlanSpec.Resolve.
			count := r.Count(maxTilePoints, "tile point count")
			dim := r.Count(maxTileDim, "tile dimension")
			if r.Err() == nil && (count == 0 || dim == 0) {
				return ref, fmt.Errorf("%w: empty tile point list", ErrSpec)
			}
			if r.Err() != nil {
				return ref, failSpec(r)
			}
			pts := make([][]int, count)
			flat := make([]int, count*dim)
			prev := make([]int64, dim)
			for i := range pts {
				row := flat[i*dim : (i+1)*dim]
				for a := 0; a < dim; a++ {
					prev[a] += r.Varint()
					row[a] = int(prev[a])
				}
				pts[i] = row
			}
			ref.Spec.Tile.Points = pts
		default:
			return ref, fmt.Errorf("%w: unknown tile tag %d", ErrSpec, tt)
		}
	case 1:
		ref.Signature = r.String(maxWireSig)
		if r.Err() == nil && ref.Signature == "" {
			return ref, fmt.Errorf("%w: empty plan signature", ErrSpec)
		}
	default:
		if r.Err() != nil {
			return ref, failSpec(r)
		}
		return ref, fmt.Errorf("%w: unknown plan tag %d", ErrSpec, tag)
	}
	if r.Err() != nil {
		return ref, failSpec(r)
	}
	return ref, nil
}

// decodeWindow reads a delta-encoded window — dim, lo corner
// (absolute), per-axis spans (hi − lo ≥ 0) — into the scratch arena and
// validates it against maxPoints (ErrLimit beyond). sc may be nil for
// cold paths.
func decodeWindow(r *binwire.Reader, maxPoints int, sc *BinScratch) (lattice.Window, error) {
	dim := r.Count(maxTileDim, "window dimension")
	if r.Err() != nil {
		return lattice.Window{}, failSpec(r)
	}
	if dim == 0 {
		return lattice.Window{}, fmt.Errorf("%w: zero-dimensional window", ErrSpec)
	}
	var lo, hi []int
	if sc != nil {
		lo, hi = sc.grab(dim), sc.grab(dim)
	} else {
		flat := make([]int, 2*dim)
		lo, hi = flat[:dim], flat[dim:]
	}
	for a := 0; a < dim; a++ {
		lo[a] = int(r.Varint())
	}
	for a := 0; a < dim; a++ {
		span := r.Uvarint()
		if span > math.MaxInt64-uint64(max(lo[a], 0)) {
			return lattice.Window{}, fmt.Errorf("%w: window span overflows", ErrLimit)
		}
		hi[a] = lo[a] + int(span)
		if hi[a] < lo[a] { // signed overflow
			return lattice.Window{}, fmt.Errorf("%w: window span overflows", ErrLimit)
		}
	}
	if r.Err() != nil {
		return lattice.Window{}, failSpec(r)
	}
	win, err := lattice.NewWindow(lattice.Point(lo), lattice.Point(hi))
	if err != nil {
		return lattice.Window{}, fmt.Errorf("%w: %v", ErrSpec, err)
	}
	size, err := win.SizeChecked()
	if err != nil || size > maxPoints {
		return lattice.Window{}, fmt.Errorf("%w: window %s exceeds limit %d points", ErrLimit, win, maxPoints)
	}
	return win, nil
}

// DecodeBinaryBatch parses one binary batch request frame
// (FrameBatchSlots or FrameBatchMay) and enforces the structural
// contract of the JSON funnel: a single well-formed frame, exactly one
// of explicit points and window, the batch within lim.MaxBatch, the
// window within lim.MaxWindow. Decoded points alias sc's arena (sc may
// be nil, at the cost of allocation). Violations yield errors wrapping
// ErrSpec (malformed, 400) or ErrLimit (too large, 413); whatever the
// input, the decoder returns an error rather than panicking.
func DecodeBinaryBatch(data []byte, lim Limits, sc *BinScratch) (BinBatch, error) {
	lim = lim.withDefaults()
	var scratch BinScratch
	if sc == nil {
		sc = &scratch
	}
	stream := binwire.NewReader(data)
	typ, r := stream.Frame()
	stream.Done()
	if stream.Err() != nil {
		return BinBatch{}, failSpec(&stream)
	}
	if typ != binwire.FrameBatchSlots && typ != binwire.FrameBatchMay {
		return BinBatch{}, fmt.Errorf("%w: frame type %#x is not a batch request", ErrSpec, typ)
	}
	req := BinBatch{Kind: typ}
	var err error
	if req.Plan, err = decodePlanRef(&r); err != nil {
		return BinBatch{}, err
	}
	switch qt := r.Byte(); qt {
	case 0: // explicit point batch, delta-encoded
		// Bound the count while still unsigned: a raw int() conversion of
		// an attacker-chosen uvarint ≥ 2^63 would go negative and slip
		// past both the limit and the emptiness checks.
		rawCount := r.Uvarint()
		if r.Err() == nil && rawCount > uint64(lim.MaxBatch) {
			return BinBatch{}, fmt.Errorf("%w: batch of %d points exceeds limit %d", ErrLimit, rawCount, lim.MaxBatch)
		}
		count := int(rawCount)
		dim := r.Count(maxTileDim, "point dimension")
		if r.Err() != nil {
			return BinBatch{}, failSpec(&r)
		}
		if count == 0 || dim == 0 {
			return BinBatch{}, fmt.Errorf("%w: empty point batch", ErrSpec)
		}
		sc.reserve(count * dim)
		if cap(sc.pts) < count {
			sc.pts = make([]lattice.Point, 0, count)
		}
		var prev lattice.Point
		for i := 0; i < count; i++ {
			row := sc.grab(dim)
			if i == 0 {
				for a := 0; a < dim; a++ {
					row[a] = int(r.Varint())
				}
			} else {
				for a := 0; a < dim; a++ {
					row[a] = prev[a] + int(r.Varint())
				}
			}
			prev = row
			sc.pts = append(sc.pts, lattice.Point(row))
		}
		if r.Err() != nil {
			return BinBatch{}, failSpec(&r)
		}
		req.Points = sc.pts
	case 1:
		sc.reserve(2 * maxTileDim)
		win, werr := decodeWindow(&r, lim.MaxWindow, sc)
		if werr != nil {
			return BinBatch{}, werr
		}
		req.Window, req.UseWindow = win, true
	default:
		if r.Err() != nil {
			return BinBatch{}, failSpec(&r)
		}
		return BinBatch{}, fmt.Errorf("%w: unknown query tag %d", ErrSpec, qt)
	}
	if typ == binwire.FrameBatchMay {
		req.T = r.Varint()
	}
	r.Done()
	if r.Err() != nil {
		return BinBatch{}, failSpec(&r)
	}
	return req, nil
}

// --- Client-side encoding -------------------------------------------------

// EncodeBatchBinary appends the binary frame of a batch request to e:
// the slots form when may is false, the may-broadcast form (carrying
// req.T) when true. A non-empty sig encodes a plan-by-signature
// reference instead of req.Plan. This is the reference encoder for the
// load generator, the parity tests, and non-Go clients; it does not
// enforce server limits (the decode funnel does).
func EncodeBatchBinary(e *binwire.Buffer, req BatchRequest, may bool, sig string) {
	typ := binwire.FrameBatchSlots
	if may {
		typ = binwire.FrameBatchMay
	}
	e.BeginFrame(typ)
	encodePlanRef(e, req.Plan, sig)
	if req.Window != nil {
		e.Byte(1)
		encodeWindowSpec(e, *req.Window)
	} else {
		e.Byte(0)
		encodePointRows(e, req.Points)
	}
	if may {
		e.Varint(req.T)
	}
	e.EndFrame()
}

// encodePlanRef writes a plan reference (signature form when sig is
// non-empty).
func encodePlanRef(e *binwire.Buffer, spec PlanSpec, sig string) {
	if sig != "" {
		e.Byte(1)
		e.String(sig)
		return
	}
	e.Byte(0)
	e.String(spec.Lattice)
	if len(spec.Tile.Points) > 0 {
		e.Byte(1)
		encodePointRows(e, spec.Tile.Points)
	} else {
		e.Byte(0)
		e.String(spec.Tile.Name)
	}
}

// encodePointRows writes a delta-encoded point sequence from wire-form
// rows: count, dim, first point absolute, then per-axis deltas against
// the previous point (zigzag varints, so sorted batches pack tightly).
func encodePointRows(e *binwire.Buffer, rows [][]int) {
	e.Uvarint(uint64(len(rows)))
	dim := 0
	if len(rows) > 0 {
		dim = len(rows[0])
	}
	e.Uvarint(uint64(dim))
	var prev []int
	for _, row := range rows {
		for a := 0; a < dim && a < len(row); a++ {
			if prev == nil {
				e.Varint(int64(row[a]))
			} else {
				e.Varint(int64(row[a]) - int64(prev[a]))
			}
		}
		for a := len(row); a < dim; a++ { // ragged row: pad (decoder sees dim coords)
			e.Varint(0)
		}
		prev = row
	}
}

// encodeWindowSpec writes a delta-encoded window: dim, lo, spans.
func encodeWindowSpec(e *binwire.Buffer, ws WindowSpec) {
	e.Uvarint(uint64(len(ws.Lo)))
	for _, c := range ws.Lo {
		e.Varint(int64(c))
	}
	for a, c := range ws.Hi {
		lo := 0
		if a < len(ws.Lo) {
			lo = ws.Lo[a]
		}
		span := int64(c) - int64(lo)
		if span < 0 {
			// Inverted corners are unrepresentable by construction (spans
			// are unsigned); encode the degenerate single-point window.
			span = 0
		}
		e.Uvarint(uint64(span))
	}
}

// --- Client-side response decoding ----------------------------------------

// WireError is a decoded binary Error frame: the HTTP status the server
// answered with plus its message. It is what the client-side stream
// decoders return when the response is an error sequence.
type WireError struct {
	// Status is the HTTP status code.
	Status int
	// Msg is the server's error text.
	Msg string
}

// Error implements the error interface.
func (e *WireError) Error() string { return fmt.Sprintf("server status %d: %s", e.Status, e.Msg) }

// decodeErrorFrame reads an Error frame payload.
func decodeErrorFrame(r *binwire.Reader) error {
	status := r.Count(999, "status")
	msg := r.String(maxWireErrMsg)
	if r.Err() != nil {
		return failSpec(r)
	}
	return &WireError{Status: status, Msg: msg}
}

// DecodeSlotsStream parses a complete binary slots response (head,
// chunks, end) into the JSON-shaped SlotsResponse — the client-side
// inverse of the server's streamed encoding, used by the load
// generator, the parity tests, and reference clients. An Error frame
// decodes into *WireError.
func DecodeSlotsStream(data []byte) (SlotsResponse, error) {
	var resp SlotsResponse
	stream := binwire.NewReader(data)
	typ, r := stream.Frame()
	if stream.Err() != nil {
		return resp, failSpec(&stream)
	}
	if typ == binwire.FrameError {
		return resp, decodeErrorFrame(&r)
	}
	if typ != binwire.FrameSlotsHead {
		return resp, fmt.Errorf("%w: expected slots head, got frame %#x", ErrSpec, typ)
	}
	resp.M = r.Count(math.MaxInt32, "m")
	total := r.Count(math.MaxInt32, "slot count")
	r.Done()
	if r.Err() != nil {
		return resp, failSpec(&r)
	}
	// Cap the pre-allocation: total is a server-sent claim, so a
	// malicious or corrupt head frame must not size gigabytes up front.
	resp.Slots = make([]int32, 0, min(total, 1<<16))
	for {
		typ, r = stream.Frame()
		if stream.Err() != nil {
			return resp, failSpec(&stream)
		}
		switch typ {
		case binwire.FrameSlotsChunk:
			n := r.Count(total-len(resp.Slots), "chunk size")
			for i := 0; i < n && r.Err() == nil; i++ {
				resp.Slots = append(resp.Slots, int32(r.Count(math.MaxInt32, "slot")))
			}
			r.Done()
			if r.Err() != nil {
				return resp, failSpec(&r)
			}
		case binwire.FrameEnd:
			if len(resp.Slots) != total {
				return resp, fmt.Errorf("%w: stream ended with %d of %d slots", ErrSpec, len(resp.Slots), total)
			}
			return resp, nil
		default:
			return resp, fmt.Errorf("%w: unexpected frame %#x in slots stream", ErrSpec, typ)
		}
	}
}

// DecodeMayStream parses a complete binary may-broadcast response into
// the JSON-shaped MayResponse. An Error frame decodes into *WireError.
func DecodeMayStream(data []byte) (MayResponse, error) {
	var resp MayResponse
	stream := binwire.NewReader(data)
	typ, r := stream.Frame()
	if stream.Err() != nil {
		return resp, failSpec(&stream)
	}
	if typ == binwire.FrameError {
		return resp, decodeErrorFrame(&r)
	}
	if typ != binwire.FrameMayHead {
		return resp, fmt.Errorf("%w: expected may head, got frame %#x", ErrSpec, typ)
	}
	resp.M = r.Count(math.MaxInt32, "m")
	resp.T = r.Varint()
	total := r.Count(math.MaxInt32, "flag count")
	r.Done()
	if r.Err() != nil {
		return resp, failSpec(&r)
	}
	// Same pre-allocation cap as DecodeSlotsStream: don't trust the
	// server-sent total before the chunks back it with real bytes.
	resp.May = make([]bool, 0, min(total, 1<<16))
	for {
		typ, r = stream.Frame()
		if stream.Err() != nil {
			return resp, failSpec(&stream)
		}
		switch typ {
		case binwire.FrameMayChunk:
			n := r.Count(total-len(resp.May), "chunk size")
			packed := r.Bytes((n + 7) / 8)
			r.Done()
			if r.Err() != nil {
				return resp, failSpec(&r)
			}
			for i := 0; i < n; i++ {
				resp.May = append(resp.May, packed[i/8]&(1<<(i%8)) != 0)
			}
		case binwire.FrameEnd:
			if len(resp.May) != total {
				return resp, fmt.Errorf("%w: stream ended with %d of %d flags", ErrSpec, len(resp.May), total)
			}
			return resp, nil
		default:
			return resp, fmt.Errorf("%w: unexpected frame %#x in may stream", ErrSpec, typ)
		}
	}
}
