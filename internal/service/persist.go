package service

// Session persistence (DESIGN.md §12): dynamic mutation sessions are
// the one piece of serving state that cannot be recomputed — the paper's
// schedules are compile-once, but a session's churn history (joins,
// departures, moves) exists only in the mutation stream. This file makes
// that stream durable with a per-session append-only WAL plus periodic
// snapshots, both framed by binwire:
//
//	<id>.wal    header frame (identity, base epoch) followed by one
//	            record frame per applied mutation batch: the post-batch
//	            epoch stamp and the applied events, CRC-guarded.
//	<id>.snap   one frame holding the identity plus a dynamic.State
//	            (bounding window, slot table with tombstones) at a
//	            snapshot epoch, CRC-guarded, written via tmp + rename.
//
// <id> is a hash of the session key (plan signature + window), and both
// headers carry the full identity — lattice name, tile points, window —
// so restore-on-start can recompile the plan from the file alone.
//
// Crash-safety invariants:
//
//   - Appends are sequential writes of whole frames; a crash can only
//     tear the final record. Replay detects the torn tail (truncated
//     frame or CRC mismatch), truncates the file back to the last good
//     record, and counts the recovery.
//   - Snapshots are written to a temp file, fsynced, and renamed before
//     the WAL is reset, so every point in time has either the old
//     (snapshot, log) pair or the new one.
//   - Replay is idempotent: records whose epoch is at or below the
//     restored epoch are skipped, so a crash between the snapshot
//     rename and the WAL reset double-applies nothing.
//   - Replay honors the WAL's base epoch: a log based past the state
//     actually restored (snapshot lost, corrupt, or rolled back) is
//     unrecoverable — its suffix would replay onto the wrong base — so
//     it is reset to the restored state instead of fabricating an
//     assignment.
//   - Epochs re-derive from the files: the session resumes at the
//     snapshot epoch plus one per replayed record.
//
// Fsync policy: snapshot writes always sync before rename, and every
// rename is followed by an fsync of the data directory (a rename whose
// directory entry is not synced can be lost — or reordered against the
// WAL reset — on power loss, silently rolling the pair back). WAL
// appends sync per record only when PersistOptions.Fsync is set (the
// default trusts the OS page cache, surviving process restarts but not
// power loss — see DESIGN.md §12 for the trade).

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"time"

	"tilingsched/internal/core"
	"tilingsched/internal/dynamic"
	"tilingsched/internal/lattice"
	"tilingsched/internal/service/binwire"
)

// PersistOptions configures session persistence (Server.EnablePersistence).
type PersistOptions struct {
	// Dir is the data directory; one WAL (and at most one snapshot) per
	// session lives under it. Created if missing.
	Dir string
	// Fsync syncs the WAL after every appended record. Off, appends
	// still reach the file immediately (restart-safe) but a power loss
	// can drop the unsynced suffix; snapshots sync regardless.
	Fsync bool
	// SnapshotEvery is the number of logged events after which the
	// session is snapshotted and its WAL truncated. 0 selects
	// DefaultSnapshotEvery; negative disables periodic snapshots
	// (eviction and FlushSessions still write them).
	SnapshotEvery int
}

// DefaultSnapshotEvery is the WAL growth bound: after this many logged
// events a snapshot replaces the log, keeping replay O(SnapshotEvery)
// instead of O(session lifetime).
const DefaultSnapshotEvery = 4096

// persistVersion is the on-disk format version, bumped on any frame
// grammar change.
const persistVersion = 1

// Persistence frame types (disjoint from the wire protocol's for
// clarity; the files never share a stream with HTTP frames).
const (
	framePersistSnap      byte = 0x60
	framePersistWALHeader byte = 0x61
	framePersistWALRecord byte = 0x62
)

// maxWALRecordEvents bounds the event count a single WAL record may
// declare, so a corrupt length cannot size a huge allocation during
// replay.
const maxWALRecordEvents = 1 << 20

// SessionStore owns a data directory of per-session WAL + snapshot
// pairs. One store serves one sessionTable, which serializes all of a
// key's file I/O: a live session's appends and snapshots run under its
// mutex, open runs only for the table's single-flighted builder, and a
// re-open waits out the key's eviction flush (sessionTable.building /
// .evicting) — so the store itself needs no locking.
type SessionStore struct {
	dir       string
	fsync     bool
	snapEvery int
	met       *Metrics // nil in bare tests
	logf      func(format string, args ...any)
}

// newSessionStore validates the options and creates the directory.
func newSessionStore(o PersistOptions, met *Metrics, logf func(string, ...any)) (*SessionStore, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("%w: persistence requires a data directory", ErrSpec)
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("service: creating data dir: %w", err)
	}
	st := &SessionStore{dir: o.Dir, fsync: o.Fsync, snapEvery: o.SnapshotEvery, met: met, logf: logf}
	if st.snapEvery == 0 {
		st.snapEvery = DefaultSnapshotEvery
	}
	return st, nil
}

// logfSafe logs through the store's sink when one is configured.
func (st *SessionStore) logfSafe(format string, args ...any) {
	if st.logf != nil {
		st.logf(format, args...)
	}
}

// sessIdent is the on-disk identity of a session: enough to recompile
// its plan (lattice name + canonical tile points) and re-key it
// (signature + declared window).
type sessIdent struct {
	sig  string
	lat  string
	tile []lattice.Point
	win  lattice.Window
}

// identOf derives the identity from a live (plan, window) pair.
func identOf(plan *core.Plan, w lattice.Window) sessIdent {
	return sessIdent{
		sig:  plan.Signature(),
		lat:  plan.Lattice().Name(),
		tile: plan.Tile().Points(),
		win:  w,
	}
}

// sessionFileID maps a session key to its filename stem: a truncated
// SHA-256, so arbitrary signatures and windows stay filesystem-safe.
func sessionFileID(key string) string {
	sum := sha256.Sum256([]byte(key))
	return hex.EncodeToString(sum[:16])
}

// paths returns the snapshot and WAL paths of a session id.
func (st *SessionStore) paths(id string) (snap, wal string) {
	return filepath.Join(st.dir, id+".snap"), filepath.Join(st.dir, id+".wal")
}

// --- Frame encoding -------------------------------------------------------

// beginCRCFrame opens a frame and reserves its 4-byte CRC slot,
// returning the slot's offset for endCRCFrame. The frame must be the
// buffer's last content when closed.
func beginCRCFrame(e *binwire.Buffer, typ byte) int {
	e.BeginFrame(typ)
	off := e.Len()
	e.Raw([]byte{0, 0, 0, 0})
	return off
}

// endCRCFrame closes the frame and fills the CRC of everything after
// the slot.
func endCRCFrame(e *binwire.Buffer, off int) {
	e.EndFrame()
	b := e.Bytes()
	binary.LittleEndian.PutUint32(b[off:], crc32.ChecksumIEEE(b[off+4:]))
}

// crcBody verifies a CRC-guarded payload and returns a reader over the
// guarded bytes.
func crcBody(r *binwire.Reader) (binwire.Reader, error) {
	head := r.Bytes(4)
	if head == nil {
		return binwire.Reader{}, fmt.Errorf("%w: payload too short for CRC", binwire.ErrMalformed)
	}
	want := binary.LittleEndian.Uint32(head)
	rest := r.Bytes(r.Remaining())
	if crc32.ChecksumIEEE(rest) != want {
		return binwire.Reader{}, fmt.Errorf("%w: CRC mismatch", binwire.ErrMalformed)
	}
	return binwire.NewReader(rest), nil
}

// encodeIdent appends the identity fields.
func encodeIdent(e *binwire.Buffer, id sessIdent) {
	e.String(id.sig)
	e.String(id.lat)
	dim := id.win.Dim()
	e.Uvarint(uint64(dim))
	e.Uvarint(uint64(len(id.tile)))
	for _, pt := range id.tile {
		for a := 0; a < dim; a++ {
			e.Varint(int64(pt[a]))
		}
	}
	for a := 0; a < dim; a++ {
		e.Varint(int64(id.win.Lo[a]))
	}
	for a := 0; a < dim; a++ {
		e.Varint(int64(id.win.Hi[a]))
	}
}

// decodeIdent reads the identity fields with the wire-level bounds.
func decodeIdent(r *binwire.Reader) (sessIdent, error) {
	var id sessIdent
	id.sig = r.String(1 << 12)
	id.lat = r.String(64)
	dim := r.Count(maxTileDim, "identity dimension")
	tileN := r.Count(maxTilePoints, "identity tile size")
	if err := r.Err(); err != nil {
		return sessIdent{}, err
	}
	if dim < 1 {
		return sessIdent{}, fmt.Errorf("%w: identity dimension 0", binwire.ErrMalformed)
	}
	id.tile = make([]lattice.Point, tileN)
	for i := range id.tile {
		p := make(lattice.Point, dim)
		for a := 0; a < dim; a++ {
			p[a] = int(r.Varint())
		}
		id.tile[i] = p
	}
	lo := make(lattice.Point, dim)
	hi := make(lattice.Point, dim)
	for a := 0; a < dim; a++ {
		lo[a] = int(r.Varint())
	}
	for a := 0; a < dim; a++ {
		hi[a] = int(r.Varint())
	}
	if err := r.Err(); err != nil {
		return sessIdent{}, err
	}
	w, err := lattice.NewWindow(lo, hi)
	if err != nil {
		return sessIdent{}, fmt.Errorf("%w: identity window: %v", binwire.ErrMalformed, err)
	}
	id.win = w
	return id, nil
}

// encodeSnapshot builds the complete snapshot file contents.
func encodeSnapshot(e *binwire.Buffer, id sessIdent, epoch uint64, st dynamic.State) {
	off := beginCRCFrame(e, framePersistSnap)
	e.Uvarint(persistVersion)
	encodeIdent(e, id)
	e.Uvarint(epoch)
	e.Uvarint(uint64(st.Palette))
	e.Uvarint(uint64(st.Budget))
	dim := id.win.Dim()
	for a := 0; a < dim; a++ {
		e.Varint(int64(st.Window.Lo[a]))
	}
	for a := 0; a < dim; a++ {
		e.Varint(int64(st.Window.Hi[a]))
	}
	e.Uvarint(uint64(len(st.Slots)))
	for _, s := range st.Slots {
		e.Varint(int64(s))
	}
	endCRCFrame(e, off)
}

// decodeSnapshot parses a snapshot file.
func decodeSnapshot(data []byte) (sessIdent, uint64, dynamic.State, error) {
	stream := binwire.NewReader(data)
	typ, payload := stream.Frame()
	if err := stream.Err(); err != nil {
		return sessIdent{}, 0, dynamic.State{}, err
	}
	if typ != framePersistSnap {
		return sessIdent{}, 0, dynamic.State{}, fmt.Errorf("%w: frame %#x is not a snapshot", binwire.ErrMalformed, typ)
	}
	r, err := crcBody(&payload)
	if err != nil {
		return sessIdent{}, 0, dynamic.State{}, err
	}
	if v := r.Uvarint(); v != persistVersion {
		if r.Err() == nil {
			return sessIdent{}, 0, dynamic.State{}, fmt.Errorf("%w: snapshot version %d", binwire.ErrMalformed, v)
		}
		return sessIdent{}, 0, dynamic.State{}, r.Err()
	}
	id, err := decodeIdent(&r)
	if err != nil {
		return sessIdent{}, 0, dynamic.State{}, err
	}
	epoch := r.Uvarint()
	var st dynamic.State
	st.Palette = r.Count(1<<31-1, "palette")
	st.Budget = r.Count(1<<31-1, "budget")
	dim := id.win.Dim()
	lo := make(lattice.Point, dim)
	hi := make(lattice.Point, dim)
	for a := 0; a < dim; a++ {
		lo[a] = int(r.Varint())
	}
	for a := 0; a < dim; a++ {
		hi[a] = int(r.Varint())
	}
	if err := r.Err(); err != nil {
		return sessIdent{}, 0, dynamic.State{}, err
	}
	w, err := lattice.NewWindow(lo, hi)
	if err != nil {
		return sessIdent{}, 0, dynamic.State{}, fmt.Errorf("%w: state window: %v", binwire.ErrMalformed, err)
	}
	st.Window = w
	size, err := w.SizeChecked()
	if err != nil {
		return sessIdent{}, 0, dynamic.State{}, fmt.Errorf("%w: state window: %v", binwire.ErrMalformed, err)
	}
	n := r.Count(size, "slot count")
	if r.Err() == nil && n != size {
		return sessIdent{}, 0, dynamic.State{}, fmt.Errorf("%w: %d slots for a %d-point window", binwire.ErrMalformed, n, size)
	}
	st.Slots = make([]int32, n)
	for i := range st.Slots {
		st.Slots[i] = int32(r.Varint())
	}
	r.Done()
	if err := r.Err(); err != nil {
		return sessIdent{}, 0, dynamic.State{}, err
	}
	return id, epoch, st, nil
}

// encodeWALHeader builds the WAL's opening frame.
func encodeWALHeader(e *binwire.Buffer, id sessIdent, baseEpoch uint64) {
	off := beginCRCFrame(e, framePersistWALHeader)
	e.Uvarint(persistVersion)
	encodeIdent(e, id)
	e.Uvarint(baseEpoch)
	endCRCFrame(e, off)
}

// decodeWALHeader parses the WAL's opening frame payload.
func decodeWALHeader(payload *binwire.Reader) (sessIdent, uint64, error) {
	r, err := crcBody(payload)
	if err != nil {
		return sessIdent{}, 0, err
	}
	if v := r.Uvarint(); v != persistVersion {
		if r.Err() == nil {
			return sessIdent{}, 0, fmt.Errorf("%w: WAL version %d", binwire.ErrMalformed, v)
		}
		return sessIdent{}, 0, r.Err()
	}
	id, err := decodeIdent(&r)
	if err != nil {
		return sessIdent{}, 0, err
	}
	base := r.Uvarint()
	r.Done()
	if err := r.Err(); err != nil {
		return sessIdent{}, 0, err
	}
	return id, base, nil
}

// encodeWALRecord builds one record frame: the post-batch epoch stamp
// plus the applied events.
func encodeWALRecord(e *binwire.Buffer, dim int, epoch uint64, events []dynamic.Event) {
	off := beginCRCFrame(e, framePersistWALRecord)
	e.Uvarint(epoch)
	e.Uvarint(uint64(len(events)))
	for _, ev := range events {
		e.Byte(byte(ev.Kind))
		for a := 0; a < dim; a++ {
			e.Varint(int64(ev.P[a]))
		}
		if ev.Kind == dynamic.Move {
			for a := 0; a < dim; a++ {
				e.Varint(int64(ev.To[a]))
			}
		}
	}
	endCRCFrame(e, off)
}

// decodeWALRecord parses one record frame payload.
func decodeWALRecord(payload *binwire.Reader, dim int) (uint64, []dynamic.Event, error) {
	r, err := crcBody(payload)
	if err != nil {
		return 0, nil, err
	}
	epoch := r.Uvarint()
	n := r.Count(maxWALRecordEvents, "record events")
	if err := r.Err(); err != nil {
		return 0, nil, err
	}
	// Pre-allocate only what the payload could actually hold — one kind
	// byte plus at least one varint byte per coordinate — so a corrupt
	// count cannot size a huge allocation before the first event byte is
	// read (the static cap alone still admits ~50 MB of Event headers).
	capHint := n
	if most := r.Remaining() / (1 + dim); capHint > most {
		capHint = most
	}
	events := make([]dynamic.Event, 0, capHint)
	readPoint := func() lattice.Point {
		p := make(lattice.Point, dim)
		for a := 0; a < dim; a++ {
			p[a] = int(r.Varint())
		}
		return p
	}
	for i := 0; i < n; i++ {
		kind := dynamic.EventKind(r.Byte())
		ev := dynamic.Event{Kind: kind, P: readPoint()}
		switch kind {
		case dynamic.Join, dynamic.Leave, dynamic.Fail:
		case dynamic.Move:
			ev.To = readPoint()
		default:
			if r.Err() != nil {
				return 0, nil, r.Err()
			}
			return 0, nil, fmt.Errorf("%w: record event %d has unknown kind %d", binwire.ErrMalformed, i, kind)
		}
		if r.Err() != nil {
			return 0, nil, r.Err()
		}
		events = append(events, ev)
	}
	r.Done()
	if err := r.Err(); err != nil {
		return 0, nil, err
	}
	return epoch, events, nil
}

// --- Per-session disk state -----------------------------------------------

// sessionDisk is one session's durable face: the open WAL plus the
// bookkeeping that decides when to snapshot. All methods run under the
// owning session's mutex.
type sessionDisk struct {
	store     *SessionStore
	ident     sessIdent
	id        string
	wal       *os.File
	walEvents int   // events logged since the last snapshot
	walBytes  int64 // current WAL file size (header + records)
}

// append logs one applied batch: the post-batch epoch and the applied
// event prefix, as a single CRC-guarded frame, fsynced per the store's
// policy.
func (d *sessionDisk) append(epoch uint64, events []dynamic.Event) error {
	start := time.Now()
	e := binwire.Get()
	defer binwire.Put(e)
	encodeWALRecord(e, d.ident.win.Dim(), epoch, events)
	if _, err := d.wal.Write(e.Bytes()); err != nil {
		return fmt.Errorf("service: WAL append: %w", err)
	}
	d.walEvents += len(events)
	d.walBytes += int64(len(e.Bytes()))
	if m := d.store.met; m != nil {
		m.walAppends.Inc()
		m.walAppendNs.Record(uint64(time.Since(start)))
	}
	if d.store.fsync {
		syncStart := time.Now()
		if err := d.wal.Sync(); err != nil {
			return fmt.Errorf("service: WAL fsync: %w", err)
		}
		if m := d.store.met; m != nil {
			m.walFsyncs.Inc()
			m.walFsyncNs.Record(uint64(time.Since(syncStart)))
		}
	}
	return nil
}

// shouldSnapshot reports whether the WAL has outgrown the snapshot
// threshold.
func (d *sessionDisk) shouldSnapshot() bool {
	return d.store.snapEvery > 0 && d.walEvents >= d.store.snapEvery
}

// snapshot checkpoints the mutator: the state is written to a temp
// file, fsynced, renamed over the snapshot path, and only then is the
// WAL reset to an empty log based at the snapshot epoch. A crash
// between the two steps leaves stale WAL records, which replay skips by
// epoch (idempotence).
func (d *sessionDisk) snapshot(mut *dynamic.Mutator, epoch uint64) error {
	start := time.Now()
	snapPath, walPath := d.store.paths(d.id)
	e := binwire.Get()
	defer binwire.Put(e)
	encodeSnapshot(e, d.ident, epoch, mut.State())
	if err := writeFileSync(snapPath, e.Bytes()); err != nil {
		return fmt.Errorf("service: writing snapshot: %w", err)
	}
	e.Reset()
	encodeWALHeader(e, d.ident, epoch)
	fresh, err := replaceFileSync(walPath, e.Bytes())
	if err != nil {
		return fmt.Errorf("service: resetting WAL: %w", err)
	}
	_ = d.wal.Close()
	d.wal = fresh
	d.walEvents = 0
	d.walBytes = int64(e.Len())
	if m := d.store.met; m != nil {
		m.snapshots.Inc()
		m.snapshotNs.Record(uint64(time.Since(start)))
	}
	return nil
}

// close releases the WAL handle (eviction, shutdown).
func (d *sessionDisk) close() {
	if d.wal != nil {
		_ = d.wal.Close()
		d.wal = nil
	}
}

// writeFileSync writes data to path atomically: temp file, fsync,
// rename.
func writeFileSync(path string, data []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return syncDir(path)
}

// syncDir fsyncs the directory containing path, making a preceding
// rename durable: file-level fsyncs order the data, but only a
// directory sync pins the rename itself, and an unpinned rename can be
// lost — or reordered against a later one — on power loss.
func syncDir(path string) error {
	d, err := os.Open(filepath.Dir(path))
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	return serr
}

// replaceFileSync atomically replaces path with data and returns an
// open handle positioned at its end, ready for appends.
func replaceFileSync(path string, data []byte) (*os.File, error) {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, err
	}
	tmp := f.Name()
	fail := func(err error) (*os.File, error) {
		f.Close()
		os.Remove(tmp)
		return nil, err
	}
	if _, err := f.Write(data); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fail(err)
	}
	if err := syncDir(path); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// --- Open / restore -------------------------------------------------------

// open attaches a session to its on-disk state. When a snapshot or WAL
// exists, the session is restored — snapshot state first, then every
// WAL record above the restored epoch replayed through the normal Apply
// path — and the returned mutator is non-nil with the re-derived epoch.
// When nothing (usable) is on disk, the returned mutator is nil and the
// caller seeds a fresh session; either way the returned disk handle is
// ready for appends. Corrupt tails and unreadable files are recovered
// (truncate / recreate) and counted, never fatal; only real I/O errors
// fail the open.
func (st *SessionStore) open(plan *core.Plan, w lattice.Window, dopts dynamic.Options) (*sessionDisk, *dynamic.Mutator, uint64, error) {
	ident := identOf(plan, w)
	id := sessionFileID(ident.sig + "|" + w.String())
	snapPath, walPath := st.paths(id)
	d := &sessionDisk{store: st, ident: ident, id: id}

	var mut *dynamic.Mutator
	var epoch uint64
	if data, err := os.ReadFile(snapPath); err == nil {
		sid, sepoch, state, derr := decodeSnapshot(data)
		if derr == nil && sid.sig == ident.sig {
			mut, derr = dynamic.NewMutatorFromState(plan.Deployment(), state, dopts)
			if derr == nil {
				epoch = sepoch
			}
		}
		if derr != nil || mut == nil {
			st.logfSafe("latticed: dropping corrupt snapshot %s: %v", snapPath, derr)
			if m := st.met; m != nil {
				m.snapsDropped.Inc()
			}
			os.Remove(snapPath)
			mut, epoch = nil, 0
		}
	} else if !os.IsNotExist(err) {
		return nil, nil, 0, fmt.Errorf("service: reading snapshot: %w", err)
	}

	walData, walErr := os.ReadFile(walPath)
	switch {
	case walErr == nil:
		seeded := mut != nil
		replayed, rmut, repoch, rerr := st.replay(plan, w, dopts, mut, epoch, walPath, walData)
		if rerr != nil {
			return nil, nil, 0, rerr
		}
		mut, epoch = rmut, repoch
		// A WAL with no snapshot and no replayable records describes a
		// session that never mutated: treat it as fresh so the caller
		// seeds it (identical state, cheaper path).
		if !seeded && replayed == 0 && mut != nil && epoch == 0 {
			mut = nil
		}
		if d.wal, walErr = os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0o644); walErr != nil {
			return nil, nil, 0, fmt.Errorf("service: opening WAL: %w", walErr)
		}
		// Size for the /statusz WAL gauge; stat after open so a torn
		// tail truncated by replay is not counted.
		if fi, serr := d.wal.Stat(); serr == nil {
			d.walBytes = fi.Size()
		}
	case os.IsNotExist(walErr):
		// Fresh WAL based at the restored epoch (0 for a new session).
		e := binwire.Get()
		encodeWALHeader(e, ident, epoch)
		hdrLen := int64(e.Len())
		f, err := replaceFileSync(walPath, e.Bytes())
		binwire.Put(e)
		if err != nil {
			return nil, nil, 0, fmt.Errorf("service: creating WAL: %w", err)
		}
		d.wal = f
		d.walBytes = hdrLen
	default:
		return nil, nil, 0, fmt.Errorf("service: reading WAL: %w", walErr)
	}
	return d, mut, epoch, nil
}

// resetWAL replaces a log the restore cannot use (corrupt header, or a
// base epoch past the restored state) with a bare header based at
// epoch, counting the reset.
func (st *SessionStore) resetWAL(ident sessIdent, walPath string, epoch uint64) error {
	if m := st.met; m != nil {
		m.walResets.Inc()
	}
	e := binwire.Get()
	defer binwire.Put(e)
	encodeWALHeader(e, ident, epoch)
	f, err := replaceFileSync(walPath, e.Bytes())
	if err != nil {
		return fmt.Errorf("service: resetting WAL: %w", err)
	}
	f.Close()
	return nil
}

// replay applies a WAL's records on top of the given state (nil mut:
// seed from the plan schedule first). It truncates any torn tail and
// returns the number of events replayed plus the final mutator and
// epoch.
func (st *SessionStore) replay(plan *core.Plan, w lattice.Window, dopts dynamic.Options, mut *dynamic.Mutator, epoch uint64, walPath string, data []byte) (int, *dynamic.Mutator, uint64, error) {
	r := binwire.NewReader(data)
	typ, payload := r.Frame()
	var base uint64
	headerOK := r.Err() == nil && typ == framePersistWALHeader
	if headerOK {
		var herr error
		_, base, herr = decodeWALHeader(&payload)
		headerOK = herr == nil
	}
	if !headerOK {
		// Unusable header: the log carries nothing recoverable. Reset it.
		st.logfSafe("latticed: resetting WAL with corrupt header %s", walPath)
		if err := st.resetWAL(identOf(plan, w), walPath, epoch); err != nil {
			return 0, nil, 0, err
		}
		return 0, mut, epoch, nil
	}
	if base > epoch {
		// The log is based on state we do not have — the snapshot it was
		// truncated against is lost, corrupt, or rolled back, so events
		// 1..base are gone. Replaying the surviving suffix onto the
		// restored (older or seed) state would fabricate a silently wrong
		// assignment; reset to the state actually restored instead.
		st.logfSafe("latticed: WAL %s based at epoch %d but restored state is at epoch %d: dropping unrecoverable log",
			walPath, base, epoch)
		if err := st.resetWAL(identOf(plan, w), walPath, epoch); err != nil {
			return 0, nil, 0, err
		}
		return 0, mut, epoch, nil
	}

	dim := w.Dim()
	replayed := 0
	torn := false
	good := len(data) - r.Remaining()
	for r.Remaining() > 0 {
		typ, payload := r.Frame()
		if r.Err() != nil {
			torn = true
			break
		}
		if typ != framePersistWALRecord {
			// Unknown frame type: skip (forward compatibility).
			good = len(data) - r.Remaining()
			continue
		}
		recEpoch, events, derr := decodeWALRecord(&payload, dim)
		if derr != nil {
			torn = true
			break
		}
		if recEpoch > epoch {
			if mut == nil {
				var err error
				mut, err = seedMutator(plan, w, dopts)
				if err != nil {
					return 0, nil, 0, err
				}
			}
			if _, _, aerr := mut.Apply(events); aerr != nil {
				// A logged batch that no longer applies means the prefix
				// up to here is the usable log; drop the rest.
				st.logfSafe("latticed: WAL %s: replay stopped at epoch %d: %v", walPath, recEpoch, aerr)
				torn = true
				break
			}
			epoch = recEpoch
			replayed += len(events)
		}
		good = len(data) - r.Remaining()
	}
	if torn {
		st.logfSafe("latticed: WAL %s: torn tail detected, truncating %d trailing bytes",
			walPath, len(data)-good)
		if m := st.met; m != nil {
			m.tornTails.Inc()
		}
		if err := os.Truncate(walPath, int64(good)); err != nil {
			return 0, nil, 0, fmt.Errorf("service: truncating torn WAL: %w", err)
		}
	}
	if m := st.met; m != nil && replayed > 0 {
		m.replayedEvents.Add(uint64(replayed))
	}
	return replayed, mut, epoch, nil
}

// catchUp rebuilds the persisted delta history of (plan, w) for a stale
// subscriber: one Delta per epoch in (from, to], oldest first, derived
// by replaying the on-disk snapshot + WAL through a throwaway mutator.
// Unlike replay it is strictly read-only — it runs concurrently with
// the live session's appends (every record with epoch ≤ to is fully
// written before the caller observed to under the session lock, so the
// prefix it needs is stable; torn newer bytes are simply not reached) —
// and it never truncates or resets files. ok is false whenever the gap
// is not covered — snapshot already past from, unusable or rotated WAL,
// a gap or torn tail before to — and the caller falls back to a full
// resync.
func (st *SessionStore) catchUp(plan *core.Plan, w lattice.Window, from, to uint64, dopts dynamic.Options) ([]*Delta, bool) {
	if from >= to {
		return nil, true
	}
	id := sessionFileID(plan.Signature() + "|" + w.String())
	snapPath, walPath := st.paths(id)

	var mut *dynamic.Mutator
	var cur uint64
	if data, err := os.ReadFile(snapPath); err == nil {
		sid, sepoch, state, derr := decodeSnapshot(data)
		if derr != nil || sid.sig != plan.Signature() {
			return nil, false
		}
		if sepoch > from {
			// Epochs (from, sepoch] are baked into the snapshot; their
			// individual deltas are gone.
			return nil, false
		}
		if mut, derr = dynamic.NewMutatorFromState(plan.Deployment(), state, dopts); derr != nil {
			return nil, false
		}
		cur = sepoch
	} else if !os.IsNotExist(err) {
		return nil, false
	}

	data, err := os.ReadFile(walPath)
	if err != nil {
		return nil, false
	}
	r := binwire.NewReader(data)
	typ, payload := r.Frame()
	if r.Err() != nil || typ != framePersistWALHeader {
		return nil, false
	}
	if _, base, herr := decodeWALHeader(&payload); herr != nil || base > cur {
		// base > cur: the log was rotated against a snapshot newer than
		// the one read above (or the snapshot is missing) — its records
		// would replay onto the wrong base.
		return nil, false
	}
	if mut == nil {
		if mut, err = seedMutator(plan, w, dopts); err != nil {
			return nil, false
		}
	}

	dim := w.Dim()
	var deltas []*Delta
	for cur < to && r.Remaining() > 0 {
		typ, payload := r.Frame()
		if r.Err() != nil {
			return nil, false
		}
		if typ != framePersistWALRecord {
			continue
		}
		recEpoch, events, derr := decodeWALRecord(&payload, dim)
		if derr != nil {
			return nil, false
		}
		if recEpoch <= cur {
			continue // pre-snapshot leftovers (idempotent skip, as in replay)
		}
		if recEpoch != cur+1 {
			return nil, false // a hole in the history
		}
		_, changed, aerr := mut.Apply(events)
		if aerr != nil {
			return nil, false
		}
		cur = recEpoch
		if cur > from {
			d := &Delta{Epoch: cur, M: mut.Slots(), Alive: mut.AliveCount()}
			d.Changed = make([]ChangeSpec, 0, len(changed))
			for _, ch := range changed {
				d.Changed = append(d.Changed, ChangeSpec{P: ch.P, Slot: ch.Slot})
			}
			deltas = append(deltas, d)
		}
	}
	if cur < to {
		return nil, false
	}
	return deltas, true
}

// seedMutator builds the epoch-0 session state: the plan's Theorem 1
// schedule over the declared window (shared by sessionTable.get and
// replay).
func seedMutator(plan *core.Plan, w lattice.Window, dopts dynamic.Options) (*dynamic.Mutator, error) {
	return dynamic.NewMutator(plan.Deployment(), w, plan.Schedule(), dopts)
}

// list scans the data directory and returns the identity of every
// persisted session, oldest first (so restoring in order leaves the
// most recently touched sessions at the front of the LRU).
func (st *SessionStore) list() ([]sessIdent, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, fmt.Errorf("service: reading data dir: %w", err)
	}
	type cand struct {
		ident sessIdent
		mtime time.Time
	}
	byID := map[string]*cand{}
	add := func(stem string, ident sessIdent, mtime time.Time) {
		c, ok := byID[stem]
		if !ok {
			byID[stem] = &cand{ident: ident, mtime: mtime}
			return
		}
		if mtime.After(c.mtime) {
			c.mtime = mtime
		}
	}
	for _, ent := range entries {
		name := ent.Name()
		info, err := ent.Info()
		if err != nil {
			continue
		}
		switch {
		case filepath.Ext(name) == ".snap":
			data, err := os.ReadFile(filepath.Join(st.dir, name))
			if err != nil {
				continue
			}
			ident, _, _, derr := decodeSnapshot(data)
			if derr != nil {
				st.logfSafe("latticed: skipping unreadable snapshot %s: %v", name, derr)
				continue
			}
			add(name[:len(name)-len(".snap")], ident, info.ModTime())
		case filepath.Ext(name) == ".wal":
			data, err := os.ReadFile(filepath.Join(st.dir, name))
			if err != nil {
				continue
			}
			r := binwire.NewReader(data)
			typ, payload := r.Frame()
			if r.Err() != nil || typ != framePersistWALHeader {
				st.logfSafe("latticed: skipping WAL with unreadable header %s", name)
				continue
			}
			ident, _, derr := decodeWALHeader(&payload)
			if derr != nil {
				st.logfSafe("latticed: skipping WAL with unreadable header %s: %v", name, derr)
				continue
			}
			add(name[:len(name)-len(".wal")], ident, info.ModTime())
		}
	}
	out := make([]sessIdent, 0, len(byID))
	stems := make([]string, 0, len(byID))
	for stem := range byID {
		stems = append(stems, stem)
	}
	sort.Slice(stems, func(i, j int) bool {
		a, b := byID[stems[i]], byID[stems[j]]
		if !a.mtime.Equal(b.mtime) {
			return a.mtime.Before(b.mtime)
		}
		return stems[i] < stems[j]
	})
	for _, stem := range stems {
		out = append(out, byID[stem].ident)
	}
	return out, nil
}
