package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"tilingsched/internal/dynamic"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/service/binwire"
)

// --- Binary ↔ JSON parity --------------------------------------------------

// batchParityCorpus is the valid subset of the JSON fuzz corpus
// (FuzzDecodeBatchRequest) plus signature-path cases: every request a
// JSON client can make must survive the binary round trip unchanged.
var batchParityCorpus = []string{
	`{"plan":{"tile":{"name":"cross:2:1"}},"points":[[3,4],[0,0]]}`,
	`{"plan":{"tile":{"name":"cross:2:1"}},"window":{"lo":[-4,-4],"hi":[4,4]}}`,
	`{"plan":{"tile":{"points":[[0,0],[1,0]]}},"points":[[1]],"t":12345}`,
	`{"plan":{"lattice":"square","tile":{"name":"rect:4:2"}},"points":[[100,-250],[-7,2],[0,0],[3,4]]}`,
	`{"plan":{"tile":{"name":"cross:2:1"}},"points":[[3,4]],"t":-1}`,
	`{"plan":{"tile":{"name":"chebyshev:3:2"}},"window":{"lo":[7,7],"hi":[7,7]}}`,
}

// TestBinaryBatchParity round-trips the JSON corpus through the binary
// codec: JSON-decode, binary-encode, binary-decode, and compare every
// field — the two formats must accept the same requests and mean the
// same thing.
func TestBinaryBatchParity(t *testing.T) {
	for _, src := range batchParityCorpus {
		for _, may := range []bool{false, true} {
			req, win, err := DecodeBatchRequest([]byte(src), Limits{})
			if err != nil {
				t.Fatalf("JSON corpus entry rejected: %s: %v", src, err)
			}
			e := binwire.Get()
			EncodeBatchBinary(e, req, may, "")
			var sc BinScratch
			bin, err := DecodeBinaryBatch(e.Bytes(), Limits{}, &sc)
			binwire.Put(e)
			if err != nil {
				t.Fatalf("binary decode of %s: %v", src, err)
			}
			wantKind := binwire.FrameBatchSlots
			if may {
				wantKind = binwire.FrameBatchMay
			}
			if bin.Kind != wantKind {
				t.Errorf("%s: kind %#x, want %#x", src, bin.Kind, wantKind)
			}
			if bin.Plan.Spec.Lattice != req.Plan.Lattice || bin.Plan.Spec.Tile.Name != req.Plan.Tile.Name {
				t.Errorf("%s: plan spec %+v ≠ %+v", src, bin.Plan.Spec, req.Plan)
			}
			if len(req.Plan.Tile.Points) > 0 && !reflect.DeepEqual(bin.Plan.Spec.Tile.Points, req.Plan.Tile.Points) {
				t.Errorf("%s: tile points %v ≠ %v", src, bin.Plan.Spec.Tile.Points, req.Plan.Tile.Points)
			}
			if win != nil {
				if !bin.UseWindow || !bin.Window.Lo.Equal(win.Lo) || !bin.Window.Hi.Equal(win.Hi) {
					t.Errorf("%s: window %v ≠ %v", src, bin.Window, *win)
				}
			} else {
				if bin.UseWindow || len(bin.Points) != len(req.Points) {
					t.Fatalf("%s: %d binary points for %d JSON points", src, len(bin.Points), len(req.Points))
				}
				for i := range req.Points {
					if !bin.Points[i].Equal(lattice.Point(req.Points[i])) {
						t.Errorf("%s: point %d = %v, want %v", src, i, bin.Points[i], req.Points[i])
					}
				}
			}
			if may && bin.T != req.T {
				t.Errorf("%s: t %d ≠ %d", src, bin.T, req.T)
			}
		}
	}
}

// TestBinaryHugeCountRejected pins the unsigned-count guard: a crafted
// frame claiming ≥ 2^63 points/events must be rejected with ErrLimit
// before any allocation — a raw int() conversion would go negative,
// slip past the limit checks, and panic in make().
func TestBinaryHugeCountRejected(t *testing.T) {
	const huge = uint64(1) << 63
	planRef := func(e *binwire.Buffer) {
		e.Byte(0) // plan tag: spec
		e.String("")
		e.Byte(0) // tile tag: name
		e.String("cross:2:1")
	}

	batch := binwire.Get()
	batch.BeginFrame(binwire.FrameBatchSlots)
	planRef(batch)
	batch.Byte(0) // query tag: explicit points
	batch.Uvarint(huge)
	batch.Uvarint(2) // dim
	batch.EndFrame()
	var sc BinScratch
	if _, err := DecodeBinaryBatch(batch.Bytes(), Limits{}, &sc); !errors.Is(err, ErrLimit) {
		t.Errorf("huge point count: err %v, want ErrLimit", err)
	}
	binwire.Put(batch)

	mut := binwire.Get()
	mut.BeginFrame(binwire.FrameMutate)
	planRef(mut)
	mut.Uvarint(2) // window dim
	mut.Varint(0)
	mut.Varint(0)
	mut.Uvarint(4)
	mut.Uvarint(4)
	mut.Byte(0) // flags
	mut.Uvarint(huge)
	mut.EndFrame()
	if _, err := DecodeBinaryMutate(mut.Bytes(), Limits{}); !errors.Is(err, ErrLimit) {
		t.Errorf("huge event count: err %v, want ErrLimit", err)
	}
	binwire.Put(mut)
}

// mutateParityCorpus mirrors FuzzDecodeMutateRequest's valid seeds.
var mutateParityCorpus = []string{
	`{"plan":{"tile":{"name":"cross:2:1"}},"window":{"lo":[0,0],"hi":[4,4]},"events":[{"op":"leave","p":[1,1]}]}`,
	`{"window":{"lo":[0,0],"hi":[4,4]},"events":[{"op":"move","p":[0,0],"to":[5,5]}],"epoch":3}`,
	`{"window":{"lo":[0,0],"hi":[4,4]},"full":true}`,
	`{"window":{"lo":[-2,-2],"hi":[6,6]},"events":[{"op":"join","p":[1,2]},{"op":"fail","p":[-1,0]},{"op":"leave","p":[3,3]}],"epoch":0,"full":true}`,
}

// TestBinaryMutateParity round-trips the mutate corpus: the binary
// funnel must produce the same window, epoch, flags, and event batch as
// the JSON funnel.
func TestBinaryMutateParity(t *testing.T) {
	for _, src := range mutateParityCorpus {
		req, win, events, err := DecodeMutateRequest([]byte(src), Limits{})
		if err != nil {
			t.Fatalf("JSON corpus entry rejected: %s: %v", src, err)
		}
		e := binwire.Get()
		if err := EncodeMutateBinary(e, req, ""); err != nil {
			t.Fatalf("encode %s: %v", src, err)
		}
		bin, err := DecodeBinaryMutate(e.Bytes(), Limits{})
		binwire.Put(e)
		if err != nil {
			t.Fatalf("binary decode of %s: %v", src, err)
		}
		if !bin.Window.Lo.Equal(win.Lo) || !bin.Window.Hi.Equal(win.Hi) {
			t.Errorf("%s: window %v ≠ %v", src, bin.Window, win)
		}
		if bin.HasEpoch != (req.Epoch != nil) || (req.Epoch != nil && bin.Epoch != *req.Epoch) {
			t.Errorf("%s: epoch (%v,%d) ≠ %v", src, bin.HasEpoch, bin.Epoch, req.Epoch)
		}
		if bin.Full != req.Full {
			t.Errorf("%s: full %v ≠ %v", src, bin.Full, req.Full)
		}
		if len(bin.Events) != len(events) {
			t.Fatalf("%s: %d events ≠ %d", src, len(bin.Events), len(events))
		}
		for i := range events {
			if bin.Events[i].Kind != events[i].Kind || !bin.Events[i].P.Equal(events[i].P) {
				t.Errorf("%s: event %d = %+v, want %+v", src, i, bin.Events[i], events[i])
			}
			if events[i].Kind == dynamic.Move && !bin.Events[i].To.Equal(events[i].To) {
				t.Errorf("%s: event %d destination %v, want %v", src, i, bin.Events[i].To, events[i].To)
			}
		}
	}
}

// TestBinaryMutateResponseRoundTrip pins the response frame grammar:
// server-side encode, client-side decode, field-for-field equality.
func TestBinaryMutateResponseRoundTrip(t *testing.T) {
	want := MutateResponse{
		Signature: "square|cross:2:1",
		Epoch:     7,
		M:         5,
		Alive:     24,
		Disruption: DisruptionSpec{
			Events: 3, Joined: 1, Departed: 1, Reassigned: 4,
			ColorsDelta: -1, FullRecolor: true, Compacted: true,
		},
		Changed: []ChangeSpec{{P: []int{1, 2}, Slot: 3}, {P: []int{-4, 0}, Slot: 0}},
		Error:   "partial apply",
	}
	e := binwire.Get()
	defer binwire.Put(e)
	encodeMutateResponse(e, want)
	got, err := DecodeMutateStream(e.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip\n got %+v\nwant %+v", got, want)
	}
}

// --- End-to-end over HTTP --------------------------------------------------

// postBin POSTs body under the binary content type and returns the
// response with its raw bytes.
func postBin(t *testing.T, srv *httptest.Server, path string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+path, BinaryContentType, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

// encodeBatch renders one binary batch request body.
func encodeBatch(req BatchRequest, may bool, sig string) []byte {
	e := binwire.Get()
	defer binwire.Put(e)
	EncodeBatchBinary(e, req, may, sig)
	return bytes.Clone(e.Bytes())
}

// TestServerBinarySlotsEndToEnd drives the binary protocol the way the
// load generator does — explicit batch, then a window big enough to
// force multiple chunk frames — and cross-checks every slot against the
// in-process plan and the JSON answers.
func TestServerBinarySlotsEndToEnd(t *testing.T) {
	srv := newTestServer(t, ServerOptions{})
	plan := mustPlan(t, prototile.Cross(2, 1))
	spec := PlanSpec{Tile: TileSpec{Name: "cross:2:1"}}

	pts := [][]int{{3, 4}, {0, 0}, {-7, 2}, {100, -250}}
	resp, body := postBin(t, srv, "/v1/slots:batch", encodeBatch(BatchRequest{Plan: spec, Points: pts}, false, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %q", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); ct != BinaryContentType {
		t.Fatalf("response content type %q", ct)
	}
	sr, err := DecodeSlotsStream(body)
	if err != nil {
		t.Fatal(err)
	}
	if sr.M != 5 || len(sr.Slots) != len(pts) {
		t.Fatalf("m=%d slots=%d, want m=5 slots=%d", sr.M, len(sr.Slots), len(pts))
	}
	for i, c := range pts {
		want, err := plan.SlotOf(lattice.Pt(c...))
		if err != nil {
			t.Fatal(err)
		}
		if int(sr.Slots[i]) != want {
			t.Errorf("slot of %v = %d, want %d", c, sr.Slots[i], want)
		}
	}

	// 257×257 = 66049 points: spans five chunk frames at 16384/chunk.
	w := lattice.CenteredWindow(2, 128)
	resp, body = postBin(t, srv, "/v1/slots:batch",
		encodeBatch(BatchRequest{Plan: spec, Window: &WindowSpec{Lo: w.Lo, Hi: w.Hi}}, false, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("window status %d: %q", resp.StatusCode, body)
	}
	sr, err = DecodeSlotsStream(body)
	if err != nil {
		t.Fatal(err)
	}
	want, err := QueryWindowSlots(plan, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Slots) != len(want) {
		t.Fatalf("window reply has %d slots, want %d", len(sr.Slots), len(want))
	}
	for i := range want {
		if sr.Slots[i] != want[i] {
			t.Fatalf("window slot %d = %d, want %d", i, sr.Slots[i], want[i])
		}
	}
}

// TestServerBinaryMayEndToEnd checks the bit-packed may-broadcast path
// against the in-process engine at an awkward (non-multiple-of-8)
// batch size.
func TestServerBinaryMayEndToEnd(t *testing.T) {
	srv := newTestServer(t, ServerOptions{})
	plan := mustPlan(t, prototile.Cross(2, 1))
	spec := PlanSpec{Tile: TileSpec{Name: "cross:2:1"}}
	const tm = int64(-13)

	w := lattice.CenteredWindow(2, 5) // 121 points: 15 packed bytes + 1 spare bit
	resp, body := postBin(t, srv, "/v1/maybroadcast:batch",
		encodeBatch(BatchRequest{Plan: spec, Window: &WindowSpec{Lo: w.Lo, Hi: w.Hi}, T: tm}, true, ""))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %q", resp.StatusCode, body)
	}
	mr, err := DecodeMayStream(body)
	if err != nil {
		t.Fatal(err)
	}
	if mr.M != 5 || mr.T != tm {
		t.Fatalf("head m=%d t=%d, want m=5 t=%d", mr.M, mr.T, tm)
	}
	want, err := QueryWindowMayBroadcast(plan, w, tm, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.May) != len(want) {
		t.Fatalf("%d flags, want %d", len(mr.May), len(want))
	}
	for i := range want {
		if mr.May[i] != want[i] {
			t.Fatalf("flag %d = %v, want %v", i, mr.May[i], want[i])
		}
	}
}

// TestServerBinarySignatureRef exercises the plan-by-signature fast
// path: unknown signatures 404 (client re-sends the spec), and after a
// spec-form request has compiled the plan, the signature form answers
// identically.
func TestServerBinarySignatureRef(t *testing.T) {
	srv := newTestServer(t, ServerOptions{})
	spec := PlanSpec{Tile: TileSpec{Name: "cross:2:1"}}
	pts := [][]int{{3, 4}, {0, 0}}

	resp, body := postBin(t, srv, "/v1/slots:batch",
		encodeBatch(BatchRequest{Points: pts}, false, "no-such-signature"))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown signature: status %d, want 404", resp.StatusCode)
	}
	if _, err := DecodeSlotsStream(body); err == nil {
		t.Fatal("error response decoded as success")
	}

	// Compile via the JSON plan endpoint to learn the signature.
	resp, body = postJSON(t, srv, "/v1/plan", PlanRequest{Plan: spec})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("plan status %d: %s", resp.StatusCode, body)
	}
	var pr PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}

	specResp, specBody := postBin(t, srv, "/v1/slots:batch", encodeBatch(BatchRequest{Plan: spec, Points: pts}, false, ""))
	sigResp, sigBody := postBin(t, srv, "/v1/slots:batch", encodeBatch(BatchRequest{Points: pts}, false, pr.Signature))
	if specResp.StatusCode != http.StatusOK || sigResp.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d / %d", specResp.StatusCode, sigResp.StatusCode)
	}
	if !bytes.Equal(specBody, sigBody) {
		t.Fatal("signature-form answer differs from spec-form answer")
	}
}

// TestServerBinaryErrors pins the binary decode funnel's HTTP statuses:
// malformed frames 400, over-limit batches and windows 413, oversized
// bodies 413, mismatched endpoint/frame kinds 400 — all as decodable
// Error frames, never hangs or panics.
func TestServerBinaryErrors(t *testing.T) {
	srv := newTestServer(t, ServerOptions{MaxBatch: 4, MaxWindow: 100, MaxBody: 256})
	spec := PlanSpec{Tile: TileSpec{Name: "cross:2:1"}}

	cases := []struct {
		name   string
		body   []byte
		status int
	}{
		{"garbage", []byte("\x01\x02\x03"), http.StatusBadRequest},
		{"empty", nil, http.StatusBadRequest},
		{"json to binary endpoint", []byte(`{"points":[[0,0]]}`), http.StatusBadRequest},
		{"batch over limit",
			encodeBatch(BatchRequest{Plan: spec, Points: [][]int{{0, 0}, {1, 0}, {2, 0}, {3, 0}, {4, 0}}}, false, ""),
			http.StatusRequestEntityTooLarge},
		{"window over limit",
			encodeBatch(BatchRequest{Plan: spec, Window: &WindowSpec{Lo: []int{0, 0}, Hi: []int{10, 10}}}, false, ""),
			http.StatusRequestEntityTooLarge},
		{"wrong frame kind", encodeBatch(BatchRequest{Plan: spec, Points: [][]int{{0, 0}}}, true, ""),
			http.StatusBadRequest},
		{"oversized body", bytes.Repeat([]byte{0}, 512), http.StatusRequestEntityTooLarge},
	}
	for _, c := range cases {
		resp, body := postBin(t, srv, "/v1/slots:batch", c.body)
		if resp.StatusCode != c.status {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.status)
			continue
		}
		_, err := DecodeSlotsStream(body)
		we, ok := err.(*WireError)
		if !ok {
			t.Errorf("%s: response not an Error frame: %v", c.name, err)
			continue
		}
		if we.Status != c.status {
			t.Errorf("%s: frame status %d ≠ HTTP %d", c.name, we.Status, c.status)
		}
	}
}

// TestServerBinaryMutateEndToEnd drives a session through the binary
// codec: join, epoch advance, stale-epoch conflict (409 with a
// MutateResult frame carrying the current epoch), and a full resync.
func TestServerBinaryMutateEndToEnd(t *testing.T) {
	srv := newTestServer(t, ServerOptions{})
	spec := PlanSpec{Tile: TileSpec{Name: "cross:2:1"}}
	win := WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}}

	encode := func(req MutateRequest) []byte {
		e := binwire.Get()
		defer binwire.Put(e)
		if err := EncodeMutateBinary(e, req, ""); err != nil {
			t.Fatal(err)
		}
		return bytes.Clone(e.Bytes())
	}

	resp, body := postBin(t, srv, "/v1/plan:mutate", encode(MutateRequest{
		Plan: spec, Window: win,
		Events: []EventSpec{{Op: "leave", P: []int{1, 1}}, {Op: "move", P: []int{2, 2}, To: []int{5, 5}}},
	}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate status %d: %q", resp.StatusCode, body)
	}
	mr, err := DecodeMutateStream(body)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Epoch != 1 || mr.Disruption.Events != 2 || mr.Signature == "" {
		t.Fatalf("after batch: %+v", mr)
	}

	stale := uint64(0)
	resp, body = postBin(t, srv, "/v1/plan:mutate", encode(MutateRequest{
		Plan: spec, Window: win, Epoch: &stale,
		Events: []EventSpec{{Op: "leave", P: []int{0, 0}}},
	}))
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale epoch status %d, want 409", resp.StatusCode)
	}
	mr, err = DecodeMutateStream(body)
	if err != nil {
		t.Fatal(err)
	}
	if mr.Epoch != 1 || mr.Error == "" {
		t.Fatalf("conflict response %+v", mr)
	}

	resp, body = postBin(t, srv, "/v1/plan:mutate", encode(MutateRequest{Plan: spec, Window: win, Full: true}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("resync status %d: %q", resp.StatusCode, body)
	}
	mr, err = DecodeMutateStream(body)
	if err != nil {
		t.Fatal(err)
	}
	// 5×5 window minus one leave, minus one move-out-then-in (the move
	// stays live at its destination outside the original count... the
	// destination (5,5) is outside the window but within margin, so the
	// sensor stays alive): 25 - 1 = 24 live assignments.
	if len(mr.Changed) != mr.Alive || mr.Alive != 24 {
		t.Fatalf("resync: %d changed, alive %d", len(mr.Changed), mr.Alive)
	}
}

// TestServerBinaryMatchesJSON answers the same query through both
// codecs and requires identical semantics — the parity property at the
// HTTP layer.
func TestServerBinaryMatchesJSON(t *testing.T) {
	srv := newTestServer(t, ServerOptions{})
	spec := PlanSpec{Tile: TileSpec{Name: "rect:4:2"}}
	w := lattice.CenteredWindow(2, 9)
	req := BatchRequest{Plan: spec, Window: &WindowSpec{Lo: w.Lo, Hi: w.Hi}, T: 42}

	jResp, jBody := postJSON(t, srv, "/v1/maybroadcast:batch", req)
	bResp, bBody := postBin(t, srv, "/v1/maybroadcast:batch", encodeBatch(req, true, ""))
	if jResp.StatusCode != http.StatusOK || bResp.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d / %d", jResp.StatusCode, bResp.StatusCode)
	}
	var jm MayResponse
	if err := json.Unmarshal(jBody, &jm); err != nil {
		t.Fatal(err)
	}
	bm, err := DecodeMayStream(bBody)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(jm, bm) {
		t.Fatalf("JSON and binary answers differ:\n json %+v\n bin  %+v", jm, bm)
	}
	if len(bBody) >= len(jBody) {
		t.Errorf("binary response (%d bytes) not smaller than JSON (%d bytes)", len(bBody), len(jBody))
	}
}
