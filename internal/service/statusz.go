package service

// The /statusz introspection plane (DESIGN.md §14): a one-page live
// answer to "what is this daemon doing right now" — sessions with
// their epochs, subscriber counts, queue depths, and WAL sizes, plus
// the subscriber lag watermarks and propagation-latency summary with
// exemplar trace IDs linking into /debug/traces. Collection is a cold
// path (statusz request or metrics scrape): it snapshots the session
// table, then walks each live session under its own lock, so it never
// stalls the mutate pipeline for more than one session's critical
// section at a time.

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strings"
	"time"
)

// StatuszSession is one live mutation session's row on /statusz.
type StatuszSession struct {
	// Key is the session key (plan signature + window).
	Key string `json:"key"`
	// Epoch is the session's current epoch.
	Epoch uint64 `json:"epoch"`
	// Subscribers is the number of attached push subscribers.
	Subscribers int `json:"subscribers"`
	// QueueMax and QueueSum are the deepest and the summed subscriber
	// queue backlogs (undelivered deltas) at collection time.
	QueueMax int `json:"queue_max"`
	QueueSum int `json:"queue_sum"`
	// WALBytes and WALEvents are the session's write-ahead-log size and
	// the events logged since its last snapshot; zero when persistence
	// is off or disabled for this session.
	WALBytes  int64 `json:"wal_bytes"`
	WALEvents int   `json:"wal_events"`
	// Lag watermarks across this session's subscribers: epochs behind
	// the session epoch and time behind the last publish (nanoseconds).
	// All zero when every subscriber is current — the "churn stopped,
	// everyone caught up" signal.
	LagEpochsMin uint64 `json:"lag_epochs_min"`
	LagEpochsP50 uint64 `json:"lag_epochs_p50"`
	LagEpochsMax uint64 `json:"lag_epochs_max"`
	LagTimeNsMin int64  `json:"lag_time_ns_min"`
	LagTimeNsP50 int64  `json:"lag_time_ns_p50"`
	LagTimeNsMax int64  `json:"lag_time_ns_max"`
}

// StatuszResponse is the JSON body of GET /statusz.
type StatuszResponse struct {
	// Now is the collection wall-clock time.
	Now time.Time `json:"now"`
	// Plans is the number of cached compiled plans.
	Plans int `json:"plans"`
	// SubscribersLive is the number of open subscription streams.
	SubscribersLive int64 `json:"subscribers_live"`
	// Sessions lists every live mutation session, LRU order (least
	// recently used first).
	Sessions []StatuszSession `json:"sessions"`
	// Global subscriber lag watermarks across all sessions (the same
	// numbers the latticed_subscriber_lag_* gauges export).
	LagEpochsMin uint64 `json:"lag_epochs_min"`
	LagEpochsP50 uint64 `json:"lag_epochs_p50"`
	LagEpochsMax uint64 `json:"lag_epochs_max"`
	LagTimeNsMin int64  `json:"lag_time_ns_min"`
	LagTimeNsP50 int64  `json:"lag_time_ns_p50"`
	LagTimeNsMax int64  `json:"lag_time_ns_max"`
	// PropagationP50Ns and PropagationP99Ns summarize the
	// publish→deliver latency histogram.
	PropagationP50Ns float64 `json:"propagation_p50_ns"`
	PropagationP99Ns float64 `json:"propagation_p99_ns"`
	// PropagationExemplars links recent sampled deliveries to their
	// traces at /debug/traces, newest first.
	PropagationExemplars []PropExemplar `json:"propagation_exemplars,omitempty"`
	// TraceSampleEvery is the recorder's 1-in-N sampling rate (0:
	// tracing disabled); TracesStarted and TracesFinished its counters.
	TraceSampleEvery int    `json:"trace_sample_every"`
	TracesStarted    uint64 `json:"traces_started"`
	TracesFinished   uint64 `json:"traces_finished"`
}

// statuszCollect walks the live session table and returns the per-
// session rows plus the flattened per-subscriber lag samples
// (epochs-behind, time-behind-ns) feeding the global watermarks. Cold
// path: table lock to snapshot the pointers, then one session lock at
// a time (lock order sess.mu → hub.mu, table.mu never held across
// either).
func (s *Server) statuszCollect() ([]StatuszSession, []uint64, []int64) {
	st := s.sessions
	st.mu.Lock()
	sessions := make([]*dynSession, 0, st.lru.Len())
	for e := st.lru.Front(); e != nil; e = e.Next() {
		sessions = append(sessions, e.Value.(*dynSession))
	}
	st.mu.Unlock()

	rows := make([]StatuszSession, 0, len(sessions))
	var allEpochs []uint64
	var allTimes []int64
	for _, sess := range sessions {
		sess.mu.Lock()
		if sess.gone {
			sess.mu.Unlock()
			continue
		}
		row := StatuszSession{Key: sess.key, Epoch: sess.epoch}
		if sess.disk != nil {
			row.WALBytes = sess.disk.walBytes
			row.WALEvents = sess.disk.walEvents
		}
		lastPub := sess.lastPubNs.Load()
		var epochsBehind []uint64
		var timesBehind []int64
		sess.hub.mu.Lock()
		row.Subscribers = len(sess.hub.subs)
		for sub := range sess.hub.subs {
			q := len(sub.ch)
			row.QueueSum += q
			if q > row.QueueMax {
				row.QueueMax = q
			}
			var eb uint64
			if le := sub.lastEpoch.Load(); le < row.Epoch {
				eb = row.Epoch - le
			}
			epochsBehind = append(epochsBehind, eb)
			var tb int64
			if subPub := sub.lastPubNs.Load(); lastPub > 0 && subPub > 0 && subPub < lastPub {
				tb = lastPub - subPub
			}
			timesBehind = append(timesBehind, tb)
		}
		sess.hub.mu.Unlock()
		sess.mu.Unlock()
		row.LagEpochsMin, row.LagEpochsP50, row.LagEpochsMax = watermarksU(epochsBehind)
		row.LagTimeNsMin, row.LagTimeNsP50, row.LagTimeNsMax = watermarksI(timesBehind)
		rows = append(rows, row)
		allEpochs = append(allEpochs, epochsBehind...)
		allTimes = append(allTimes, timesBehind...)
	}
	return rows, allEpochs, allTimes
}

// watermarksU reduces lag samples to (min, p50, max); zeros when no
// subscriber exists. The slice is sorted in place.
func watermarksU(v []uint64) (lo, mid, hi uint64) {
	if len(v) == 0 {
		return 0, 0, 0
	}
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return v[0], v[len(v)/2], v[len(v)-1]
}

// watermarksI is watermarksU for signed time-behind samples.
func watermarksI(v []int64) (lo, mid, hi int64) {
	if len(v) == 0 {
		return 0, 0, 0
	}
	sort.Slice(v, func(i, j int) bool { return v[i] < v[j] })
	return v[0], v[len(v)/2], v[len(v)-1]
}

// Statusz assembles the full introspection snapshot (the JSON body of
// GET /statusz), exported so embedders and tests can read it without
// HTTP framing.
func (s *Server) Statusz() StatuszResponse {
	rows, epochs, times := s.statuszCollect()
	resp := StatuszResponse{
		Now:                  time.Now(),
		Plans:                s.reg.Len(),
		SubscribersLive:      s.sessions.subsLive.Load(),
		Sessions:             rows,
		PropagationExemplars: s.met.exemplars(),
		TraceSampleEvery:     s.rec.SampleEvery(),
		TracesStarted:        s.rec.Started.Load(),
		TracesFinished:       s.rec.Finished.Load(),
	}
	resp.LagEpochsMin, resp.LagEpochsP50, resp.LagEpochsMax = watermarksU(epochs)
	resp.LagTimeNsMin, resp.LagTimeNsP50, resp.LagTimeNsMax = watermarksI(times)
	snap := s.met.propagationNs.Snapshot()
	resp.PropagationP50Ns = snap.Quantile(0.50)
	resp.PropagationP99Ns = snap.Quantile(0.99)
	return resp
}

// HandleStatusz serves GET /statusz: the introspection snapshot as
// indented JSON, or as a minimal HTML page when the request asks for
// one (?format=html, or an Accept header preferring text/html). The
// daemon mounts it unconditionally, like /metrics — it is the ops
// plane, not traffic.
func (s *Server) HandleStatusz(w http.ResponseWriter, r *http.Request) {
	resp := s.Statusz()
	wantHTML := r.URL.Query().Get("format") == "html" ||
		strings.Contains(r.Header.Get("Accept"), "text/html")
	if !wantHTML {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(resp)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	var b strings.Builder
	b.WriteString("<!DOCTYPE html><html><head><title>latticed /statusz</title></head><body>")
	fmt.Fprintf(&b, "<h1>latticed</h1><p>%s — %d plan(s), %d session(s), %d live subscriber(s)</p>",
		html.EscapeString(resp.Now.Format(time.RFC3339)), resp.Plans, len(resp.Sessions), resp.SubscribersLive)
	fmt.Fprintf(&b, "<p>lag watermarks: epochs behind min/p50/max = %d/%d/%d, time behind min/p50/max = %s/%s/%s</p>",
		resp.LagEpochsMin, resp.LagEpochsP50, resp.LagEpochsMax,
		time.Duration(resp.LagTimeNsMin), time.Duration(resp.LagTimeNsP50), time.Duration(resp.LagTimeNsMax))
	fmt.Fprintf(&b, "<p>propagation p50 = %s, p99 = %s; traces: 1-in-%d sampling, %d started, %d finished (<a href=\"/debug/traces\">/debug/traces</a>)</p>",
		time.Duration(resp.PropagationP50Ns), time.Duration(resp.PropagationP99Ns),
		resp.TraceSampleEvery, resp.TracesStarted, resp.TracesFinished)
	if len(resp.PropagationExemplars) > 0 {
		b.WriteString("<p>recent exemplars:")
		for _, ex := range resp.PropagationExemplars {
			fmt.Fprintf(&b, " <code>%s</code>@%d (%s)", html.EscapeString(ex.TraceID), ex.Epoch, time.Duration(ex.LatencyNs))
		}
		b.WriteString("</p>")
	}
	b.WriteString("<table border=\"1\" cellpadding=\"4\"><tr><th>session</th><th>epoch</th><th>subs</th>" +
		"<th>queue max/sum</th><th>WAL bytes/events</th><th>lag epochs min/p50/max</th><th>lag time min/p50/max</th></tr>")
	for _, row := range resp.Sessions {
		fmt.Fprintf(&b, "<tr><td><code>%s</code></td><td>%d</td><td>%d</td><td>%d / %d</td><td>%d / %d</td>"+
			"<td>%d / %d / %d</td><td>%s / %s / %s</td></tr>",
			html.EscapeString(row.Key), row.Epoch, row.Subscribers, row.QueueMax, row.QueueSum,
			row.WALBytes, row.WALEvents,
			row.LagEpochsMin, row.LagEpochsP50, row.LagEpochsMax,
			time.Duration(row.LagTimeNsMin), time.Duration(row.LagTimeNsP50), time.Duration(row.LagTimeNsMax))
	}
	b.WriteString("</table></body></html>\n")
	_, _ = w.Write([]byte(b.String()))
}

// HandleTraces serves GET /debug/traces: the recorder's retained
// traces as JSON, newest first (trace.Recorder.WriteJSON).
func (s *Server) HandleTraces(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.rec.WriteJSON(w)
}
