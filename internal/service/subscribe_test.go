package service

// Push-plane suite (DESIGN.md §13): the subscribe funnels accept and
// reject per contract, hub publishing never blocks the mutate path (a
// slow subscriber is dropped to a resync, not waited on), streams carry
// every epoch in order in both codecs, stale subscribers are caught up
// from the WAL or answered with a full resync, session eviction closes
// every subscriber with a terminal frame, and the whole plane survives
// concurrent churn under the race detector.

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"tilingsched/internal/lattice"
	"tilingsched/internal/service/binwire"
)

const subTestWindow = `"window":{"lo":[0,0],"hi":[4,4]}`

func subBody(extra string) string {
	b := `{"plan":{"tile":{"name":"cross:2:1"}},` + subTestWindow
	if extra != "" {
		b += "," + extra
	}
	return b + "}"
}

// openStream posts a subscribe body and wraps the streaming response.
// The returned cancel aborts the request (client-side disconnect).
func openStream(t *testing.T, url, contentType string, body []byte) (*SubscribeStream, *http.Response, context.CancelFunc) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", url+"/v1/plan:subscribe", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("building request: %v", err)
	}
	req.Header.Set("Content-Type", contentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		cancel()
		t.Fatalf("POST subscribe: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		cancel()
		t.Fatalf("subscribe status %d: %s", resp.StatusCode, data)
	}
	st, err := OpenSubscribeStream(resp.Body, resp.Header.Get("Content-Type"))
	if err != nil {
		resp.Body.Close()
		cancel()
		t.Fatalf("opening stream: %v", err)
	}
	return st, resp, cancel
}

// applyDelta folds a stream delta into a key→slot assignment copy.
func applyDelta(copyMap map[string]int, d SubscribeDelta) {
	if d.Full {
		clear(copyMap)
	}
	for _, ch := range d.Changed {
		if ch.Slot < 0 {
			delete(copyMap, lattice.Point(ch.P).Key())
		} else {
			copyMap[lattice.Point(ch.P).Key()] = ch.Slot
		}
	}
}

// TestSubHubSlowDropNeverBlocks pins the hub's core invariant at the
// unit level: publish completes immediately against a full queue,
// dropping the subscriber (reason set, channel closed) instead of
// waiting for it.
func TestSubHubSlowDropNeverBlocks(t *testing.T) {
	var h subHub
	sub := &subscriber{ch: make(chan *Delta, 1)}
	if !h.attach(sub, 4) {
		t.Fatal("attach refused below the cap")
	}
	if !h.active() {
		t.Fatal("hub inactive with a subscriber attached")
	}
	d1 := &Delta{Epoch: 1}
	if del, drop := h.publish(d1); del != 1 || drop != 0 {
		t.Fatalf("first publish: delivered=%d dropped=%d", del, drop)
	}
	// Queue depth 1 is now full: the next publish must return at once,
	// with the subscriber dropped. A guard goroutine fails the test if
	// publish stalls instead.
	done := make(chan struct{})
	go func() {
		defer close(done)
		if del, drop := h.publish(&Delta{Epoch: 2}); del != 0 || drop != 1 {
			t.Errorf("overflow publish: delivered=%d dropped=%d", del, drop)
		}
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("publish blocked on a full subscriber queue")
	}
	if got := <-sub.ch; got != d1 {
		t.Fatalf("queued delta lost: %+v", got)
	}
	if _, open := <-sub.ch; open {
		t.Fatal("dropped subscriber's channel left open")
	}
	if sub.reason != byeSlow {
		t.Fatalf("drop reason %q", sub.reason)
	}
	if h.detach(sub) {
		t.Fatal("detach succeeded on an already-dropped subscriber")
	}
	if h.active() {
		t.Fatal("hub still active after the drop")
	}
}

// TestSubHubCloseAll pins the eviction terminal: every subscriber's
// channel closes with the eviction reason, exactly once.
func TestSubHubCloseAll(t *testing.T) {
	var h subHub
	subs := make([]*subscriber, 3)
	for i := range subs {
		subs[i] = &subscriber{ch: make(chan *Delta, 1)}
		h.attach(subs[i], 8)
	}
	if n := h.closeAll(byeEvicted); n != 3 {
		t.Fatalf("closeAll closed %d, want 3", n)
	}
	for i, sub := range subs {
		if _, open := <-sub.ch; open {
			t.Fatalf("subscriber %d channel open after closeAll", i)
		}
		if sub.reason != byeEvicted {
			t.Fatalf("subscriber %d reason %q", i, sub.reason)
		}
	}
	if n := h.closeAll(byeEvicted); n != 0 {
		t.Fatalf("second closeAll closed %d", n)
	}
}

// TestDecodeSubscribeRequestContract pins the JSON funnel.
func TestDecodeSubscribeRequestContract(t *testing.T) {
	lim := Limits{MaxWindow: 100}
	req, win, err := DecodeSubscribeRequest([]byte(subBody(`"epoch":3`)), lim)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if win.Size() != 25 || req.Epoch == nil || *req.Epoch != 3 {
		t.Fatalf("decoded %+v |w|=%d", req, win.Size())
	}
	if _, _, err := DecodeSubscribeRequest([]byte(subBody("")), lim); err != nil {
		t.Fatalf("epoch-less request rejected: %v", err)
	}
	cases := []struct {
		name, body string
		wantLimit  bool
	}{
		{"bad json", `{"window":`, false},
		{"no window", `{"plan":{"tile":{"name":"cross:2:1"}}}`, false},
		{"inverted window", `{"window":{"lo":[4,4],"hi":[0,0]}}`, false},
		{"window too large", `{"window":{"lo":[0,0],"hi":[99,99]}}`, true},
	}
	for _, tc := range cases {
		_, _, err := DecodeSubscribeRequest([]byte(tc.body), lim)
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if tc.wantLimit != errors.Is(err, ErrLimit) {
			t.Errorf("%s: error class %v", tc.name, err)
		}
	}
}

// TestBinarySubscribeRoundTrip pins the binary request codec against
// its JSON twin: encode → decode preserves the spec, and malformed
// frames fail the funnel without panicking.
func TestBinarySubscribeRoundTrip(t *testing.T) {
	e := binwire.Get()
	defer binwire.Put(e)
	epoch := uint64(7)
	req := SubscribeRequest{
		Plan:   PlanSpec{Tile: TileSpec{Name: "cross:2:1"}},
		Window: WindowSpec{Lo: []int{-1, 0}, Hi: []int{3, 4}},
		Epoch:  &epoch,
	}
	EncodeSubscribeBinary(e, req, "")
	got, err := DecodeBinarySubscribe(e.Bytes(), Limits{MaxWindow: 100})
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !got.HasEpoch || got.Epoch != 7 || got.Plan.Spec.Tile.Name != "cross:2:1" {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.Window.String() != "[(-1, 0) .. (3, 4)]" {
		t.Fatalf("window %s", got.Window)
	}

	// By-signature reference and no epoch.
	e.Reset()
	EncodeSubscribeBinary(e, SubscribeRequest{Window: req.Window}, "sig-abc")
	got, err = DecodeBinarySubscribe(e.Bytes(), Limits{MaxWindow: 100})
	if err != nil {
		t.Fatalf("decode sig ref: %v", err)
	}
	if got.HasEpoch || got.Plan.Signature != "sig-abc" {
		t.Fatalf("sig ref round trip: %+v", got)
	}

	// Wrong frame type, trailing garbage, oversized window.
	e.Reset()
	e.BeginFrame(binwire.FrameMutate)
	e.EndFrame()
	if _, err := DecodeBinarySubscribe(e.Bytes(), Limits{}); err == nil {
		t.Fatal("mutate frame accepted as subscribe")
	}
	e.Reset()
	EncodeSubscribeBinary(e, SubscribeRequest{Window: req.Window}, "sig")
	if _, err := DecodeBinarySubscribe(append(e.Bytes(), 0x00), Limits{MaxWindow: 100}); err == nil {
		t.Fatal("trailing byte accepted")
	}
	e.Reset()
	EncodeSubscribeBinary(e, SubscribeRequest{Window: WindowSpec{Lo: []int{0, 0}, Hi: []int{99, 99}}}, "sig")
	if _, err := DecodeBinarySubscribe(e.Bytes(), Limits{MaxWindow: 100}); !errors.Is(err, ErrLimit) {
		t.Fatalf("oversized window: %v", err)
	}
}

// TestDeltaFrameRoundTrip pins the stream's delta codec, including the
// full flag and negative coordinates/slots.
func TestDeltaFrameRoundTrip(t *testing.T) {
	e := binwire.Get()
	defer binwire.Put(e)
	d := &Delta{Epoch: 9, M: 6, Alive: 24, Full: true, Changed: []ChangeSpec{
		{P: []int{-3, 7}, Slot: 5},
		{P: []int{0, 0}, Slot: -1},
	}}
	encodeDeltaFrame(e, d)
	stream := binwire.NewReader(e.Bytes())
	typ, pr := stream.Frame()
	if stream.Err() != nil || typ != binwire.FrameDelta {
		t.Fatalf("frame type %#x err %v", typ, stream.Err())
	}
	got, err := decodeDeltaFrame(&pr)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if got.Epoch != 9 || got.M != 6 || got.Alive != 24 || !got.Full || len(got.Changed) != 2 {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Changed[0].P[0] != -3 || got.Changed[0].P[1] != 7 || got.Changed[1].Slot != -1 {
		t.Fatalf("changes: %+v", got.Changed)
	}
}

// TestSubscribeStreamEndToEnd drives the full push loop over HTTP in
// both codecs: subscribe with no epoch (full resync hello), then apply
// mutate batches and check each arrives as an in-order delta matching
// the mutate response.
func TestSubscribeStreamEndToEnd(t *testing.T) {
	for _, codec := range []string{"application/json", BinaryContentType} {
		t.Run(codec, func(t *testing.T) {
			s := NewServer(NewRegistry(8), ServerOptions{})
			srv := httptest.NewServer(s)
			defer srv.Close()

			var body []byte
			if codec == BinaryContentType {
				e := binwire.Get()
				defer binwire.Put(e)
				EncodeSubscribeBinary(e, SubscribeRequest{
					Plan:   PlanSpec{Tile: TileSpec{Name: "cross:2:1"}},
					Window: WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}},
				}, "")
				body = append(body, e.Bytes()...)
			} else {
				body = []byte(subBody(""))
			}
			st, resp, cancel := openStream(t, srv.URL, codec, body)
			defer cancel()
			defer resp.Body.Close()

			if st.Hello().Epoch != 0 || st.Hello().M != 5 || st.Hello().Alive != 25 {
				t.Fatalf("hello %+v", st.Hello())
			}
			full, err := st.Next()
			if err != nil {
				t.Fatalf("reading resync delta: %v", err)
			}
			if !full.Full || len(full.Changed) != 25 {
				t.Fatalf("opening delta not a full resync: full=%v |changed|=%d", full.Full, len(full.Changed))
			}
			copyMap := map[string]int{}
			applyDelta(copyMap, full)

			// Three scripted batches; each must arrive as one delta whose
			// change set matches the authoritative mutate response.
			batches := []string{
				`"events":[{"op":"leave","p":[1,1]}]`,
				`"events":[{"op":"join","p":[1,1]},{"op":"fail","p":[2,2]}]`,
				`"events":[{"op":"move","p":[0,0],"to":[6,6]}]`,
			}
			for i, events := range batches {
				want := mutateJSON(t, s, persistBody(events), http.StatusOK)
				d, err := st.Next()
				if err != nil {
					t.Fatalf("batch %d: reading delta: %v", i, err)
				}
				if d.Epoch != want.Epoch || d.Epoch != uint64(i+1) {
					t.Fatalf("batch %d: delta epoch %d, mutate answered %d", i, d.Epoch, want.Epoch)
				}
				if d.M != want.M || d.Alive != want.Alive || d.Full {
					t.Fatalf("batch %d: delta header %+v vs mutate %d/%d", i, d, want.M, want.Alive)
				}
				wantChanged := changedMap(want)
				gotChanged := map[string]int{}
				for _, ch := range d.Changed {
					gotChanged[lattice.Point(ch.P).Key()] = ch.Slot
				}
				if len(gotChanged) != len(wantChanged) {
					t.Fatalf("batch %d: %d changes pushed, mutate answered %d", i, len(gotChanged), len(wantChanged))
				}
				for k, slot := range wantChanged {
					if gotChanged[k] != slot {
						t.Fatalf("batch %d: change %s→%d pushed as %d", i, k, slot, gotChanged[k])
					}
				}
				applyDelta(copyMap, d)
			}

			// The accumulated copy matches a server-side full resync.
			final := mutateJSON(t, s, persistBody(`"events":[],"full":true`), http.StatusOK)
			if len(copyMap) != len(final.Changed) {
				t.Fatalf("copy has %d sensors, resync has %d", len(copyMap), len(final.Changed))
			}
			for _, ch := range final.Changed {
				if copyMap[lattice.Point(ch.P).Key()] != ch.Slot {
					t.Fatalf("copy diverged at %v", ch.P)
				}
			}
		})
	}
}

// TestSubscribeAttachModes pins the three catch-up modes of the
// in-process API: current epoch (no catch-up), nil epoch (full resync),
// future epoch (full resync).
func TestSubscribeAttachModes(t *testing.T) {
	s := NewServer(NewRegistry(8), ServerOptions{})
	mutateJSON(t, s, persistBody(`"events":[{"op":"leave","p":[1,1]}]`), http.StatusOK)
	mutateJSON(t, s, persistBody(`"events":[{"op":"leave","p":[2,2]}]`), http.StatusOK)

	spec := PlanSpec{Tile: TileSpec{Name: "cross:2:1"}}
	ws := WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}}

	cur := uint64(2)
	feed, err := s.Subscribe(spec, ws, &cur)
	if err != nil {
		t.Fatalf("current-epoch subscribe: %v", err)
	}
	if feed.Hello.Epoch != 2 || len(feed.Catch) != 0 {
		t.Fatalf("current attach: hello %d, %d catch deltas", feed.Hello.Epoch, len(feed.Catch))
	}
	feed.Close()

	feed, err = s.Subscribe(spec, ws, nil)
	if err != nil {
		t.Fatalf("nil-epoch subscribe: %v", err)
	}
	if len(feed.Catch) != 1 || !feed.Catch[0].Full || len(feed.Catch[0].Changed) != 23 {
		t.Fatalf("nil-epoch attach: %d catch deltas, full=%v", len(feed.Catch), feed.Catch[0].Full)
	}
	feed.Close()

	// A future epoch (client ahead of the server: restarted daemon, lost
	// data dir) must resync, not wait for the server to catch up. Without
	// persistence a stale epoch resyncs too.
	for _, e := range []uint64{99, 1} {
		feed, err = s.Subscribe(spec, ws, &e)
		if err != nil {
			t.Fatalf("epoch-%d subscribe: %v", e, err)
		}
		if len(feed.Catch) != 1 || !feed.Catch[0].Full {
			t.Fatalf("epoch-%d attach did not full-resync: %d deltas", e, len(feed.Catch))
		}
		feed.Close()
	}

	snap := s.Snapshot().Sessions
	if snap.Subscribed != 4 || snap.Subscribers != 0 {
		t.Fatalf("subscription accounting %+v", snap)
	}
}

// TestSubscribeWALCatchUp pins the stale-epoch replay path: with
// persistence on, a subscriber at epoch 1 of 3 receives exactly the
// per-epoch deltas 2 and 3, matching the authoritative mutate
// responses, without a full resync.
func TestSubscribeWALCatchUp(t *testing.T) {
	s := newPersistServer(t, t.TempDir(), ServerOptions{})
	responses := []MutateResponse{
		mutateJSON(t, s, persistBody(`"events":[{"op":"leave","p":[1,1]}]`), http.StatusOK),
		mutateJSON(t, s, persistBody(`"events":[{"op":"join","p":[1,1]},{"op":"leave","p":[3,3]}]`), http.StatusOK),
		mutateJSON(t, s, persistBody(`"events":[{"op":"move","p":[0,0],"to":[5,5]}]`), http.StatusOK),
	}

	from := uint64(1)
	feed, err := s.Subscribe(PlanSpec{Tile: TileSpec{Name: "cross:2:1"}},
		WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}}, &from)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer feed.Close()
	if feed.Hello.Epoch != 3 {
		t.Fatalf("hello epoch %d", feed.Hello.Epoch)
	}
	if len(feed.Catch) != 2 {
		t.Fatalf("%d catch-up deltas, want 2", len(feed.Catch))
	}
	for i, d := range feed.Catch {
		want := responses[i+1]
		if d.Full || d.Epoch != want.Epoch || d.M != want.M || d.Alive != want.Alive {
			t.Fatalf("catch-up %d: %+v vs mutate %+v", i, d, want)
		}
		wantChanged := changedMap(want)
		if len(d.Changed) != len(wantChanged) {
			t.Fatalf("catch-up %d: %d changes, want %d", i, len(d.Changed), len(wantChanged))
		}
		for _, ch := range d.Changed {
			if wantChanged[lattice.Point(ch.P).Key()] != ch.Slot {
				t.Fatalf("catch-up %d: change %v→%d off", i, ch.P, ch.Slot)
			}
		}
	}
}

// TestSubscribeCatchUpFallsBack pins the resync fallback: when a
// snapshot has advanced past the subscriber's epoch (per-epoch history
// gone), the attach answers one full resync delta instead of failing.
func TestSubscribeCatchUpFallsBack(t *testing.T) {
	// SnapshotEvery: 1 rotates the WAL after every event, so epoch 1's
	// record is truncated away by the time epoch 2 is applied.
	s := NewServer(NewRegistry(8), ServerOptions{})
	if err := s.EnablePersistence(PersistOptions{Dir: t.TempDir(), SnapshotEvery: 1}); err != nil {
		t.Fatalf("EnablePersistence: %v", err)
	}
	mutateJSON(t, s, persistBody(`"events":[{"op":"leave","p":[1,1]}]`), http.StatusOK)
	mutateJSON(t, s, persistBody(`"events":[{"op":"leave","p":[2,2]}]`), http.StatusOK)

	from := uint64(1)
	feed, err := s.Subscribe(PlanSpec{Tile: TileSpec{Name: "cross:2:1"}},
		WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}}, &from)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer feed.Close()
	if len(feed.Catch) != 1 || !feed.Catch[0].Full || feed.Catch[0].Epoch != 2 {
		t.Fatalf("fallback attach: %d deltas, full=%v", len(feed.Catch), feed.Catch[0].Full)
	}
	if len(feed.Catch[0].Changed) != 23 {
		t.Fatalf("resync carries %d sensors, want 23", len(feed.Catch[0].Changed))
	}
}

// TestSubscribeSlowDrop pins the slow-consumer terminal end to end: a
// subscriber that stops reading is dropped once its queue overflows,
// the mutate path never blocks, and the drop is counted and reported.
func TestSubscribeSlowDrop(t *testing.T) {
	s := NewServer(NewRegistry(8), ServerOptions{SubscribeQueue: 2})
	feed, err := s.Subscribe(PlanSpec{Tile: TileSpec{Name: "cross:2:1"}},
		WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}}, nil)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer feed.Close()

	// Queue depth 2: the third publish with no reader must drop. The
	// mutate loop is bounded, so a blocked publish hangs the test (and
	// -timeout fails it) — that is the regression being pinned.
	for i := 0; i < 3; i++ {
		mutateJSON(t, s, persistBody(`"events":[{"op":"join","p":[`+
			fmt.Sprintf("%d", 6+i)+`,0]}]`), http.StatusOK)
	}
	snap := s.Snapshot().Sessions
	if snap.SubscriberDrops != 1 {
		t.Fatalf("drops %d, want 1 (stats %+v)", snap.SubscriberDrops, snap)
	}
	// Drain the two queued deltas, then observe the close and reason.
	for i := 0; i < 2; i++ {
		if d, open := <-feed.C; !open || d.Epoch != uint64(i+1) {
			t.Fatalf("queued delta %d: open=%v %+v", i, open, d)
		}
	}
	if _, open := <-feed.C; open {
		t.Fatal("channel open after drop")
	}
	if feed.Reason() != byeSlow {
		t.Fatalf("reason %q", feed.Reason())
	}
	// Mutations continued past the drop: the session is at epoch 3.
	resp := mutateJSON(t, s, persistBody(`"events":[],"full":true`), http.StatusOK)
	if resp.Epoch != 3 {
		t.Fatalf("session epoch %d after drop, want 3", resp.Epoch)
	}
}

// TestSubscribeByeOverHTTP pins the wire form of a server-side stream
// termination in both codecs: when the subscribed session dies (LRU
// eviction — the deterministic terminal), the stream ends with a Bye
// element naming the resync, surfaced by the client as ErrStreamEnded
// rather than an abrupt EOF.
func TestSubscribeByeOverHTTP(t *testing.T) {
	for _, codec := range []string{"application/json", BinaryContentType} {
		t.Run(codec, func(t *testing.T) {
			s := NewServer(NewRegistry(8), ServerOptions{MaxSessions: 1})
			srv := httptest.NewServer(s)
			defer srv.Close()

			var body []byte
			if codec == BinaryContentType {
				e := binwire.Get()
				defer binwire.Put(e)
				EncodeSubscribeBinary(e, SubscribeRequest{
					Plan:   PlanSpec{Tile: TileSpec{Name: "cross:2:1"}},
					Window: WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}},
				}, "")
				body = append(body, e.Bytes()...)
			} else {
				body = []byte(subBody(""))
			}
			st, resp, cancel := openStream(t, srv.URL, codec, body)
			defer cancel()
			defer resp.Body.Close()

			// Overflow the single-session table from another window: the
			// subscribed session evicts and the server must close the
			// stream with a terminal Bye.
			mutateJSON(t, s, `{"plan":{"tile":{"name":"cross:2:1"}},"window":{"lo":[0,0],"hi":[3,3]},`+
				`"events":[{"op":"leave","p":[1,1]}]}`, http.StatusOK)
			for {
				d, err := st.Next()
				if err == nil {
					continue // the opening resync delta
				}
				if !errors.Is(err, ErrStreamEnded) {
					t.Fatalf("stream ended with %v, want ErrStreamEnded", err)
				}
				if d.Bye != byeEvicted {
					t.Fatalf("bye %q", d.Bye)
				}
				return
			}
		})
	}
}

// TestSubscribeEvictionClosesSubscribers is the satellite regression:
// LRU eviction must terminate the session's subscribers with the
// eviction reason and count them, never leave a stream parked on a
// ghost session.
func TestSubscribeEvictionClosesSubscribers(t *testing.T) {
	var logMu sync.Mutex
	var logs []string
	s := NewServer(NewRegistry(8), ServerOptions{
		MaxSessions: 1,
		Logf: func(format string, args ...any) {
			logMu.Lock()
			logs = append(logs, fmt.Sprintf(format, args...))
			logMu.Unlock()
		},
	})
	feed, err := s.Subscribe(PlanSpec{Tile: TileSpec{Name: "cross:2:1"}},
		WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}}, nil)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	defer feed.Close()

	// A mutate on a different window overflows the single-session table
	// and evicts the subscribed session.
	mutateJSON(t, s, `{"plan":{"tile":{"name":"cross:2:1"}},"window":{"lo":[0,0],"hi":[3,3]},`+
		`"events":[{"op":"leave","p":[1,1]}]}`, http.StatusOK)

	select {
	case _, open := <-feed.C:
		if open {
			t.Fatal("delta on an evicted session's feed")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("eviction did not close the subscriber channel")
	}
	if feed.Reason() != byeEvicted {
		t.Fatalf("reason %q", feed.Reason())
	}
	snap := s.Snapshot().Sessions
	if snap.SubscriberEvictions != 1 || snap.Evicted != 1 {
		t.Fatalf("eviction accounting %+v", snap)
	}
	logMu.Lock()
	defer logMu.Unlock()
	var found bool
	for _, line := range logs {
		if strings.Contains(line, "terminated 1 subscriber") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no eviction log line in %q", logs)
	}
}

// TestSubscriberCap pins the 503 at the per-session subscriber limit,
// and that closing a feed frees its slot.
func TestSubscriberCap(t *testing.T) {
	s := NewServer(NewRegistry(8), ServerOptions{MaxSubscribers: 1})
	spec := PlanSpec{Tile: TileSpec{Name: "cross:2:1"}}
	ws := WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}}
	feed, err := s.Subscribe(spec, ws, nil)
	if err != nil {
		t.Fatalf("first subscribe: %v", err)
	}
	if _, err := s.Subscribe(spec, ws, nil); err == nil {
		t.Fatal("second subscribe accepted past the cap")
	}
	// Over HTTP the cap must answer 503.
	srv := httptest.NewServer(s)
	defer srv.Close()
	resp, err := http.Post(srv.URL+"/v1/plan:subscribe", "application/json", strings.NewReader(subBody("")))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("capped subscribe answered %d, want 503", resp.StatusCode)
	}
	feed.Close()
	feed2, err := s.Subscribe(spec, ws, nil)
	if err != nil {
		t.Fatalf("subscribe after close: %v", err)
	}
	feed2.Close()
}

// TestSubscribeClientDisconnect pins handler cleanup: cancelling the
// request context detaches the subscriber and decrements the live
// gauge.
func TestSubscribeClientDisconnect(t *testing.T) {
	s := NewServer(NewRegistry(8), ServerOptions{})
	srv := httptest.NewServer(s)
	defer srv.Close()
	st, resp, cancel := openStream(t, srv.URL, "application/json", []byte(subBody("")))
	defer resp.Body.Close()
	if _, err := st.Next(); err != nil { // the opening resync delta
		t.Fatalf("reading resync: %v", err)
	}
	if live := s.Snapshot().Sessions.Subscribers; live != 1 {
		t.Fatalf("live subscribers %d, want 1", live)
	}
	cancel()
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().Sessions.Subscribers != 0 {
		if time.Now().After(deadline) {
			t.Fatal("disconnect did not release the subscriber")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSubscribeRaceStress is the satellite race test: subscribers
// attach, read, and detach concurrently with mutators and session
// evictions, under a queue small enough to force drops. Its assertions
// are liveness (it finishes — mutate never blocks on a slow queue) and
// per-stream delta ordering; the race detector does the rest. Runs in
// -short too: it is the CI race job's main subject.
func TestSubscribeRaceStress(t *testing.T) {
	s := NewServer(NewRegistry(8), ServerOptions{
		MaxSessions:    2, // two windows below + churn on a third forces evictions
		SubscribeQueue: 4,
	})
	spec := PlanSpec{Tile: TileSpec{Name: "cross:2:1"}}
	windows := []WindowSpec{
		{Lo: []int{0, 0}, Hi: []int{4, 4}},
		{Lo: []int{0, 0}, Hi: []int{3, 3}},
		{Lo: []int{0, 0}, Hi: []int{2, 2}},
	}
	bodyOf := func(w WindowSpec, i int) string {
		wj, _ := json.Marshal(w)
		return fmt.Sprintf(`{"plan":{"tile":{"name":"cross:2:1"}},"window":%s,`+
			`"events":[{"op":"join","p":[%d,%d]}]}`, wj, 6+(i%8), 6+((i/8)%8))
	}

	const (
		mutators    = 3
		subscribers = 6
		rounds      = 120
	)
	var wg, mutWG sync.WaitGroup
	mutDone := make(chan struct{}) // closed when every mutator finishes
	for m := 0; m < mutators; m++ {
		wg.Add(1)
		mutWG.Add(1)
		go func(m int) {
			defer wg.Done()
			defer mutWG.Done()
			for i := 0; i < rounds; i++ {
				w := windows[(m+i)%len(windows)]
				req := httptest.NewRequest("POST", "/v1/plan:mutate", strings.NewReader(bodyOf(w, i)))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				// 200 (applied) and 409 (epoch conflict) are both fine;
				// anything else is a bug.
				if rec.Code != http.StatusOK && rec.Code != http.StatusConflict {
					t.Errorf("mutator %d round %d: status %d: %s", m, i, rec.Code, rec.Body)
					return
				}
			}
		}(m)
	}
	go func() {
		mutWG.Wait()
		close(mutDone)
	}()
	for g := 0; g < subscribers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds/10; i++ {
				feed, err := s.Subscribe(spec, windows[(g+i)%len(windows)], nil)
				if err != nil {
					continue // 503 at the cap or a lost eviction race: fine
				}
				last := feed.Hello.Epoch
				reads := 0
			read:
				for {
					select {
					case d, open := <-feed.C:
						if !open {
							break read // dropped or evicted: both fine
						}
						if !d.Full && d.Epoch <= last {
							t.Errorf("subscriber %d: epoch %d after %d", g, d.Epoch, last)
							break read
						}
						last = d.Epoch
						if reads++; reads >= 5 {
							break read // detach mid-stream (churn)
						}
						if g%2 == 0 {
							time.Sleep(time.Microsecond) // slow consumer: force drops
						}
					case <-mutDone:
						break read // churn over: nothing more will arrive
					}
				}
				feed.Close()
			}
		}(g)
	}
	wg.Wait()
	snap := s.Snapshot().Sessions
	if snap.Subscribers != 0 {
		t.Fatalf("leaked live subscribers: %+v", snap)
	}
	if snap.Mutations == 0 || snap.Subscribed == 0 {
		t.Fatalf("stress did nothing: %+v", snap)
	}
}
