package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

func postJSON(t *testing.T, srv *httptest.Server, path string, body any) (*http.Response, []byte) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := srv.Client().Post(srv.URL+path, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, buf.Bytes()
}

func newTestServer(t *testing.T, opts ServerOptions) *httptest.Server {
	t.Helper()
	srv := httptest.NewServer(NewServer(NewRegistry(8), opts))
	t.Cleanup(srv.Close)
	return srv
}

func TestServerPlanEndpoint(t *testing.T) {
	srv := newTestServer(t, ServerOptions{})
	resp, body := postJSON(t, srv, "/v1/plan", PlanRequest{Plan: PlanSpec{Tile: TileSpec{Name: "cross:2:1"}}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Slots != 5 || pr.Dim != 2 || pr.Lattice != "square" {
		t.Errorf("plan response %+v, want 5 slots on square/2", pr)
	}
	if len(pr.Tile) != 5 || len(pr.Period) != 2 {
		t.Errorf("tile %v period %v, want 5 points and a 2×2 period", pr.Tile, pr.Period)
	}
	if pr.Signature == "" {
		t.Error("empty signature")
	}
}

// TestServerSlotsBatchEndToEnd drives cmd/latticed's handler the way a
// client would: compile a plan, query a point batch and a window, and
// cross-check every slot against the in-process plan.
func TestServerSlotsBatchEndToEnd(t *testing.T) {
	srv := newTestServer(t, ServerOptions{})
	plan := mustPlan(t, prototile.Cross(2, 1))

	pts := [][]int{{3, 4}, {0, 0}, {-7, 2}, {100, -250}}
	resp, body := postJSON(t, srv, "/v1/slots:batch",
		BatchRequest{Plan: PlanSpec{Tile: TileSpec{Name: "cross:2:1"}}, Points: pts})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var sr SlotsResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.M != 5 || len(sr.Slots) != len(pts) {
		t.Fatalf("got m=%d %d slots, want m=5 %d slots", sr.M, len(sr.Slots), len(pts))
	}
	for i, c := range pts {
		want, err := plan.SlotOf(lattice.Pt(c...))
		if err != nil {
			t.Fatal(err)
		}
		if int(sr.Slots[i]) != want {
			t.Errorf("slot of %v = %d, want %d", c, sr.Slots[i], want)
		}
	}

	w := lattice.CenteredWindow(2, 3)
	resp, body = postJSON(t, srv, "/v1/slots:batch", BatchRequest{
		Plan:   PlanSpec{Tile: TileSpec{Name: "cross:2:1"}},
		Window: &WindowSpec{Lo: w.Lo, Hi: w.Hi},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("window status %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	want, err := QueryWindowSlots(plan, w, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Slots) != len(want) {
		t.Fatalf("window reply has %d slots, want %d", len(sr.Slots), len(want))
	}
	for i := range want {
		if sr.Slots[i] != want[i] {
			t.Errorf("window slot %d = %d, want %d", i, sr.Slots[i], want[i])
		}
	}
}

func TestServerMayBroadcastEndpoint(t *testing.T) {
	srv := newTestServer(t, ServerOptions{})
	plan := mustPlan(t, prototile.Cross(2, 1))
	pts := [][]int{{3, 4}, {0, 0}, {2, -1}}
	const tm = int64(7)
	resp, body := postJSON(t, srv, "/v1/maybroadcast:batch",
		BatchRequest{Plan: PlanSpec{Tile: TileSpec{Name: "cross:2:1"}}, Points: pts, T: tm})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var mr MayResponse
	if err := json.Unmarshal(body, &mr); err != nil {
		t.Fatal(err)
	}
	if mr.M != 5 || mr.T != tm || len(mr.May) != len(pts) {
		t.Fatalf("reply %+v, want m=5 t=%d %d bits", mr, tm, len(pts))
	}
	for i, c := range pts {
		want, err := plan.MayBroadcast(lattice.Pt(c...), tm)
		if err != nil {
			t.Fatal(err)
		}
		if mr.May[i] != want {
			t.Errorf("may(%v, %d) = %v, want %v", c, tm, mr.May[i], want)
		}
	}
}

func TestServerHealthz(t *testing.T) {
	srv := newTestServer(t, ServerOptions{})
	resp, err := srv.Client().Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hr HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&hr); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || !hr.OK {
		t.Errorf("healthz: status %d ok=%v", resp.StatusCode, hr.OK)
	}
}

func TestServerErrors(t *testing.T) {
	srv := newTestServer(t, ServerOptions{MaxBatch: 4, MaxWindow: 100})
	cross := PlanSpec{Tile: TileSpec{Name: "cross:2:1"}}
	cases := []struct {
		name   string
		path   string
		body   any
		status int
	}{
		{"unknown tile", "/v1/plan", PlanRequest{Plan: PlanSpec{Tile: TileSpec{Name: "nope"}}}, http.StatusBadRequest},
		{"inexact tile", "/v1/plan", PlanRequest{Plan: PlanSpec{Tile: TileSpec{Points: [][]int{{0, 0}, {2, 0}}}}}, http.StatusUnprocessableEntity},
		{"no tile", "/v1/slots:batch", BatchRequest{Points: [][]int{{0, 0}}}, http.StatusBadRequest},
		{"points and window", "/v1/slots:batch", BatchRequest{Plan: cross,
			Points: [][]int{{0, 0}}, Window: &WindowSpec{Lo: []int{0, 0}, Hi: []int{1, 1}}}, http.StatusBadRequest},
		{"neither points nor window", "/v1/slots:batch", BatchRequest{Plan: cross}, http.StatusBadRequest},
		{"batch too large", "/v1/slots:batch", BatchRequest{Plan: cross,
			Points: [][]int{{0, 0}, {0, 1}, {0, 2}, {0, 3}, {0, 4}}}, http.StatusRequestEntityTooLarge},
		{"window too large", "/v1/slots:batch", BatchRequest{Plan: cross,
			Window: &WindowSpec{Lo: []int{0, 0}, Hi: []int{99, 99}}}, http.StatusRequestEntityTooLarge},
		{"bad window", "/v1/slots:batch", BatchRequest{Plan: cross,
			Window: &WindowSpec{Lo: []int{5, 5}, Hi: []int{0, 0}}}, http.StatusBadRequest},
		{"wrong-dimension point", "/v1/slots:batch", BatchRequest{Plan: cross,
			Points: [][]int{{1, 2, 3}}}, http.StatusBadRequest},
		// Unbounded tile-spec parameters must be rejected before any
		// points materialize (resource-exhaustion guard).
		{"huge rect tile", "/v1/plan", PlanRequest{Plan: PlanSpec{Tile: TileSpec{Name: "rect:1000000:1000000"}}}, http.StatusBadRequest},
		{"huge cross tile", "/v1/plan", PlanRequest{Plan: PlanSpec{Tile: TileSpec{Name: "cross:16:1000"}}}, http.StatusBadRequest},
		{"huge ball tile", "/v1/plan", PlanRequest{Plan: PlanSpec{Tile: TileSpec{Name: "ball:1e9"}}}, http.StatusBadRequest},
		{"NaN ball tile", "/v1/plan", PlanRequest{Plan: PlanSpec{Tile: TileSpec{Name: "ball:NaN"}}}, http.StatusBadRequest},
		{"Inf ball tile", "/v1/plan", PlanRequest{Plan: PlanSpec{Tile: TileSpec{Name: "ball:+Inf"}}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, srv, tc.path, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, resp.StatusCode, tc.status, body)
		}
		var er ErrorResponse
		if err := json.Unmarshal(body, &er); err != nil || er.Error == "" {
			t.Errorf("%s: reply %q is not an error body", tc.name, body)
		}
	}

	// Method mismatches answer 405 via the mux method patterns.
	resp, err := srv.Client().Get(srv.URL + "/v1/slots:batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET on batch endpoint: status %d, want 405", resp.StatusCode)
	}
}

// TestServerCustomTilePoints exercises the explicit-points tile spec and
// a named lattice end to end.
func TestServerCustomTilePoints(t *testing.T) {
	srv := newTestServer(t, ServerOptions{})
	spec := PlanSpec{
		Lattice: "hexagonal",
		Tile:    TileSpec{Points: [][]int{{0, 0}, {1, 0}, {0, 1}}},
	}
	resp, body := postJSON(t, srv, "/v1/plan", PlanRequest{Plan: spec})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PlanResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Slots != 3 || pr.Lattice != "hexagonal" {
		t.Errorf("plan response %+v, want 3 slots on hexagonal", pr)
	}
}
