package service

import (
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

// TestQuerySlotsParity checks the batch engine against point-at-a-time
// Plan.SlotOf over a window, for both the explicit-points and the
// window-shorthand paths.
func TestQuerySlotsParity(t *testing.T) {
	plan := mustPlan(t, prototile.Cross(2, 1))
	w := lattice.CenteredWindow(2, 6)
	pts := w.Points()

	batch, err := QuerySlots(plan, pts, nil)
	if err != nil {
		t.Fatalf("QuerySlots: %v", err)
	}
	win, err := QueryWindowSlots(plan, w, nil)
	if err != nil {
		t.Fatalf("QueryWindowSlots: %v", err)
	}
	if len(batch) != len(pts) || len(win) != len(pts) {
		t.Fatalf("lengths %d, %d, want %d", len(batch), len(win), len(pts))
	}
	for i, p := range pts {
		want, err := plan.SlotOf(p)
		if err != nil {
			t.Fatal(err)
		}
		if int(batch[i]) != want {
			t.Errorf("batch slot of %v = %d, want %d", p, batch[i], want)
		}
		if int(win[i]) != want {
			t.Errorf("window slot at index %d (%v) = %d, want %d", i, p, win[i], want)
		}
	}
}

func TestQueryMayBroadcastParity(t *testing.T) {
	plan := mustPlan(t, prototile.ChebyshevBall(2, 1))
	w := lattice.CenteredWindow(2, 4)
	pts := w.Points()
	for _, tm := range []int64{0, 3, 8, -1, -9, 1 << 40} {
		batch, err := QueryMayBroadcast(plan, pts, tm, nil)
		if err != nil {
			t.Fatalf("QueryMayBroadcast(t=%d): %v", tm, err)
		}
		win, err := QueryWindowMayBroadcast(plan, w, tm, nil)
		if err != nil {
			t.Fatalf("QueryWindowMayBroadcast(t=%d): %v", tm, err)
		}
		for i, p := range pts {
			want, err := plan.MayBroadcast(p, tm)
			if err != nil {
				t.Fatal(err)
			}
			if batch[i] != want || win[i] != want {
				t.Errorf("may(%v, t=%d): batch %v window %v, want %v", p, tm, batch[i], win[i], want)
			}
		}
	}
}

func TestQueryErrors(t *testing.T) {
	plan := mustPlan(t, prototile.Cross(2, 1))
	if _, err := QuerySlots(plan, []lattice.Point{lattice.Pt(1, 2, 3)}, nil); err == nil {
		t.Error("QuerySlots accepted a 3-d point against a 2-d plan")
	}
	if _, err := QueryWindowSlots(plan, lattice.CenteredWindow(3, 1), nil); err == nil {
		t.Error("QueryWindowSlots accepted a 3-d window against a 2-d plan")
	}
	if _, err := QueryMayBroadcast(plan, []lattice.Point{lattice.Pt(1)}, 0, nil); err == nil {
		t.Error("QueryMayBroadcast accepted a 1-d point against a 2-d plan")
	}
	if _, err := QueryWindowMayBroadcast(plan, lattice.CenteredWindow(1, 1), 0, nil); err == nil {
		t.Error("QueryWindowMayBroadcast accepted a 1-d window against a 2-d plan")
	}
}

// TestQueryZeroAlloc pins the steady-state contract: with a reused
// destination slice, batch queries allocate nothing.
func TestQueryZeroAlloc(t *testing.T) {
	plan := mustPlan(t, prototile.Cross(2, 1))
	w := lattice.CenteredWindow(2, 8)
	pts := w.Points()
	slots := make([]int32, 0, len(pts))
	may := make([]bool, 0, len(pts))

	if n := testing.AllocsPerRun(10, func() {
		var err error
		slots, err = QuerySlots(plan, pts, slots[:0])
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("QuerySlots allocates %.1f per batch, want 0", n)
	}
	if n := testing.AllocsPerRun(10, func() {
		var err error
		slots, err = QueryWindowSlots(plan, w, slots[:0])
		if err != nil {
			t.Fatal(err)
		}
	}); n > 1 {
		// Window iteration clones one cursor point per batch.
		t.Errorf("QueryWindowSlots allocates %.1f per batch, want ≤ 1", n)
	}
	if n := testing.AllocsPerRun(10, func() {
		var err error
		may, err = QueryMayBroadcast(plan, pts, 42, may[:0])
		if err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Errorf("QueryMayBroadcast allocates %.1f per batch, want 0", n)
	}
}
