package service

// Binary trace-context propagation (DESIGN.md §14): the optional
// FrameTraceExt frame a client may prepend to any binary request frame,
// carrying a W3C trace context so a fleet node can join its caller's
// trace over the binary codec — the wire-level twin of the JSON path's
// traceparent header. The frame is fixed-layout (flags + raw trace ID +
// raw parent span ID), strippable by servers that do not trace, and
// under the same never-panic contract as every decode funnel
// (FuzzDecodeTraceExt pins it).

import (
	"encoding/binary"

	"tilingsched/internal/obs/trace"
	"tilingsched/internal/service/binwire"
)

// traceExtPayloadLen is the FrameTraceExt payload length: flags byte,
// 16 trace-ID bytes, 8 parent-span-ID bytes.
const traceExtPayloadLen = 1 + 16 + 8

// traceExtFrameLen is the full on-wire frame length (header included).
const traceExtFrameLen = binwire.FrameHeaderLen + traceExtPayloadLen

// EncodeTraceExt appends a trace-context extension frame to e. Callers
// emit it before their request frame; a non-tracing server strips and
// ignores it.
func EncodeTraceExt(e *binwire.Buffer, c trace.Context) {
	e.BeginFrame(binwire.FrameTraceExt)
	var flags byte
	if c.Sampled {
		flags |= trace.FlagSampled
	}
	e.Byte(flags)
	e.Raw(c.TraceID[:])
	e.Raw(c.Parent[:])
	e.EndFrame()
}

// DecodeTraceExt strips an optional leading trace-extension frame from
// a binary request body, returning the propagated context and the
// remaining bytes (the request frame the decode funnels consume). When
// data does not begin with a well-formed FrameTraceExt, it is returned
// unchanged with a zero context — the extension never turns a valid
// request into an error, and malformed extension bytes fall through to
// the normal funnel diagnostics. A syntactically valid frame carrying
// the invalid all-zero IDs is stripped but yields a zero context
// (check Context.Valid before joining). Never panics on any input.
func DecodeTraceExt(data []byte) (trace.Context, []byte) {
	if len(data) < traceExtFrameLen || data[4] != binwire.FrameTraceExt {
		return trace.Context{}, data
	}
	if binary.LittleEndian.Uint32(data) != 1+traceExtPayloadLen {
		return trace.Context{}, data
	}
	var c trace.Context
	flags := data[binwire.FrameHeaderLen]
	copy(c.TraceID[:], data[binwire.FrameHeaderLen+1:])
	copy(c.Parent[:], data[binwire.FrameHeaderLen+17:])
	rest := data[traceExtFrameLen:]
	if !c.Valid() {
		return trace.Context{}, rest
	}
	c.Sampled = flags&trace.FlagSampled != 0
	return c, rest
}
