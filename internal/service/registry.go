// Package service is the schedule-serving subsystem: it turns the
// compile-once / query-forever structure of the paper's schedules into a
// concurrent engine that answers slot queries at scale.
//
// The package is layered:
//
//   - Registry (registry.go): an LRU cache of compiled core.Plan values
//     keyed by the canonical core.Signature, with singleflight compilation
//     — concurrent requests for the same signature compile the plan
//     exactly once and share the result.
//   - Batch engine (engine.go): QuerySlots / QueryMayBroadcast and their
//     window-shorthand variants answer batches of queries through the
//     dense coset tables with zero allocations per query in steady state
//     (the caller reuses the destination slice). Compiled plans are
//     immutable, so any number of goroutines may query one concurrently.
//   - Wire layer (wire.go, server.go): a compact JSON request/response
//     format and the HTTP handlers behind cmd/latticed.
//   - Binary wire layer (binary.go, binary_mutate.go, server_binary.go,
//     over the binwire subpackage's framing primitives): a
//     length-prefixed varint protocol served by the same handlers,
//     negotiated by Content-Type (BinaryContentType), with streamed
//     chunked responses and the same Limits-bounded decode funnels as
//     the JSON plane.
//
// See DESIGN.md §5 for the subsystem's contracts.
package service

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"tilingsched/internal/core"
)

// DefaultRegistryCapacity is the plan capacity used when NewRegistry is
// given a non-positive capacity.
const DefaultRegistryCapacity = 128

// CompileFunc produces the plan for a signature on a cache miss.
type CompileFunc func() (*core.Plan, error)

// RegistryStats counts registry traffic. Hits include requests that
// joined an in-flight compilation; Compilations counts successful
// compiles only, so under concurrency Hits+Misses ≥ Compilations and a
// signature requested from N goroutines at once contributes exactly one
// compilation.
type RegistryStats struct {
	Hits         int64 `json:"hits"`
	Misses       int64 `json:"misses"`
	Compilations int64 `json:"compilations"`
	Evictions    int64 `json:"evictions"`
	Errors       int64 `json:"errors"`
}

// Registry is a concurrency-safe LRU cache of compiled plans keyed by
// canonical plan signature (core.Signature). Lookups that miss trigger
// exactly one compilation per signature no matter how many goroutines
// ask at once (singleflight); failed compilations are reported to every
// waiter but never cached, so a later request retries.
type Registry struct {
	mu      sync.Mutex
	cap     int
	entries map[string]*regEntry
	lru     *list.List // of *regEntry; front = most recently used
	stats   RegistryStats
	met     *Metrics // nil until a Server instruments this registry

	// sigs memoizes (lattice, tile-name) → canonical signature for
	// named tile specs, so a warm GetSpec skips materializing the tile
	// just to derive its cache key. Bounded (maxSigMemo) because the
	// spec grammar admits unboundedly many names; explicit-points specs
	// bypass it entirely.
	sigs    sync.Map
	sigSize atomic.Int64
}

// maxSigMemo bounds the named-spec signature memo.
const maxSigMemo = 4096

// regEntry is one cached (or in-flight) plan. ready is closed when plan
// and err are final; elem is non-nil once the entry is on the LRU list
// (successful compiles only).
type regEntry struct {
	sig   string
	ready chan struct{}
	plan  *core.Plan
	err   error
	elem  *list.Element
}

// NewRegistry builds a registry that retains up to capacity compiled
// plans (DefaultRegistryCapacity when capacity <= 0).
func NewRegistry(capacity int) *Registry {
	if capacity <= 0 {
		capacity = DefaultRegistryCapacity
	}
	return &Registry{
		cap:     capacity,
		entries: make(map[string]*regEntry),
		lru:     list.New(),
	}
}

// Get returns the plan cached under sig, compiling it with compile on a
// miss. Concurrent Gets for one signature run compile exactly once; the
// others block until it finishes and share the plan (or the error).
// compile runs outside the registry lock, so slow tiling searches do not
// stall queries for other signatures.
func (r *Registry) Get(sig string, compile CompileFunc) (*core.Plan, error) {
	r.mu.Lock()
	if e, ok := r.entries[sig]; ok {
		r.stats.Hits++
		if r.met != nil {
			r.met.regHits.Inc()
			// A hit on an entry not yet on the LRU joined an in-flight
			// compilation: singleflight saved a duplicate compile.
			if e.elem == nil {
				r.met.regDedup.Inc()
			}
		}
		if e.elem != nil {
			r.lru.MoveToFront(e.elem)
		}
		r.mu.Unlock()
		<-e.ready
		return e.plan, e.err
	}
	e := &regEntry{sig: sig, ready: make(chan struct{})}
	r.entries[sig] = e
	r.stats.Misses++
	if r.met != nil {
		r.met.regMisses.Inc()
	}
	r.mu.Unlock()

	plan, err := runCompile(sig, compile)

	r.mu.Lock()
	e.plan, e.err = plan, err
	if err != nil {
		// Failures are reported to waiters but not cached.
		r.stats.Errors++
		if r.met != nil {
			r.met.regErrors.Inc()
		}
		delete(r.entries, sig)
	} else {
		r.stats.Compilations++
		if r.met != nil {
			r.met.regCompilations.Inc()
		}
		e.elem = r.lru.PushFront(e)
		for r.lru.Len() > r.cap {
			back := r.lru.Back()
			ev := back.Value.(*regEntry)
			r.lru.Remove(back)
			delete(r.entries, ev.sig)
			r.stats.Evictions++
			if r.met != nil {
				r.met.regEvictions.Inc()
			}
		}
	}
	r.mu.Unlock()
	close(e.ready)
	return plan, err
}

// instrument points the registry's counters at a server's metrics
// plane (in addition to the mutex-guarded RegistryStats, which stay
// authoritative for /healthz). A registry shared by several servers
// reports to whichever instrumented it last.
func (r *Registry) instrument(m *Metrics) {
	r.mu.Lock()
	r.met = m
	r.mu.Unlock()
}

// runCompile invokes compile, converting a panic into an error so the
// singleflight entry is always finalized — otherwise a panicking tiling
// search would leave every waiter (and all future requests for the
// signature) blocked on a ready channel that never closes.
func runCompile(sig string, compile CompileFunc) (plan *core.Plan, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			plan, err = nil, fmt.Errorf("service: compiling %q panicked: %v", sig, rec)
		}
	}()
	return compile()
}

// GetSpec resolves a wire-level plan spec and serves it through the
// cache: the spec's canonical signature is the cache key, and a miss
// compiles core.NewPlan.
func (r *Registry) GetSpec(spec PlanSpec) (*core.Plan, error) {
	compile := func() (*core.Plan, error) {
		lat, tile, err := spec.Resolve()
		if err != nil {
			return nil, err
		}
		return core.NewPlan(lat, tile)
	}
	var memoKey string
	// Only pure-name specs may use the memo: a spec that also carries
	// points is malformed, and skipping Resolve here would mask that
	// on a warm cache.
	if spec.Tile.Name != "" && len(spec.Tile.Points) == 0 {
		memoKey = spec.Lattice + "\x00" + spec.Tile.Name
		if sig, ok := r.sigs.Load(memoKey); ok {
			return r.Get(sig.(string), compile)
		}
	}
	lat, tile, err := spec.Resolve()
	if err != nil {
		return nil, err
	}
	sig := core.Signature(lat, tile)
	if memoKey != "" && r.sigSize.Load() < maxSigMemo {
		if _, loaded := r.sigs.LoadOrStore(memoKey, sig); !loaded {
			r.sigSize.Add(1)
		}
	}
	return r.Get(sig, func() (*core.Plan, error) { return core.NewPlan(lat, tile) })
}

// Lookup returns the plan already cached under sig without compiling
// anything — the binary wire protocol's plan-by-signature reference
// path (a client that compiled a plan once re-addresses it by its
// canonical signature, skipping spec resolution entirely). A signature
// currently being compiled is waited for like Get; an unknown
// signature returns ok=false (the HTTP layer answers 404 so the client
// re-sends the full spec). Safe for concurrent callers.
func (r *Registry) Lookup(sig string) (*core.Plan, bool) {
	r.mu.Lock()
	e, ok := r.entries[sig]
	if !ok {
		r.stats.Misses++
		if r.met != nil {
			r.met.regMisses.Inc()
		}
		r.mu.Unlock()
		return nil, false
	}
	r.stats.Hits++
	if r.met != nil {
		r.met.regHits.Inc()
		if e.elem == nil {
			r.met.regDedup.Inc()
		}
	}
	if e.elem != nil {
		r.lru.MoveToFront(e.elem)
	}
	r.mu.Unlock()
	<-e.ready
	if e.err != nil {
		return nil, false
	}
	return e.plan, true
}

// Len returns the number of cached plans (in-flight compilations
// excluded).
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.lru.Len()
}

// Stats returns a snapshot of the registry counters.
func (r *Registry) Stats() RegistryStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}
