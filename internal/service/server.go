package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"tilingsched/internal/core"
	"tilingsched/internal/dynamic"
	"tilingsched/internal/lattice"
	"tilingsched/internal/obs/trace"
)

// ServerOptions bounds a server's per-request work. Zero values select
// the defaults.
type ServerOptions struct {
	// MaxBatch caps the number of explicit points per batch request and
	// the number of events per mutate request.
	MaxBatch int
	// MaxWindow caps the number of points a window shorthand may expand
	// to, and the size of a dynamic session's window.
	MaxWindow int
	// MaxBody caps the request body size in bytes.
	MaxBody int64
	// MaxSessions caps the live dynamic-deployment sessions
	// (DefaultMaxSessions when zero).
	MaxSessions int
	// MaxSubscribers caps the push subscribers attached to one session
	// (DefaultMaxSubscribers when zero); beyond it, subscribe answers
	// 503.
	MaxSubscribers int
	// SubscribeQueue is the per-subscriber delta-queue depth
	// (DefaultSubscribeQueue when zero): the number of epochs a slow
	// consumer may lag before it is dropped to a resync.
	SubscribeQueue int
	// SlowThreshold, when positive, samples requests slower than it
	// into SlowLog (at most one per 100ms): endpoint, codec, plan
	// signature, batch size, and decode/engine/encode phase times.
	SlowThreshold time.Duration
	// SlowLog receives the sampled slow-request traces. Nil disables
	// slow-request logging regardless of SlowThreshold.
	SlowLog func(SlowRequest)
	// TraceSampleEvery samples 1 in N requests into the span recorder
	// (DESIGN.md §14); 0 disables sampling. Slow requests and callers
	// propagating a sampled trace context are always recorded.
	TraceSampleEvery int
	// TraceRing is the number of recent traces retained for
	// /debug/traces (trace.DefaultRing when zero).
	TraceRing int
	// Logf, when non-nil, receives operational log lines (dirty session
	// evictions, persistence recoveries). Daemons wire it to log.Printf.
	Logf func(format string, args ...any)
}

const (
	defaultMaxBatch  = 1 << 16
	defaultMaxWindow = 1 << 20
	defaultMaxBody   = 8 << 20
)

// Server is the HTTP wire layer over a plan registry — the handler
// behind cmd/latticed. Endpoints:
//
//	POST /v1/plan               compile (or fetch) a plan, describe it
//	POST /v1/slots:batch        slots of a point batch or window
//	POST /v1/maybroadcast:batch may-broadcast bits at time t
//	POST /v1/plan:mutate        churn a dynamic deployment session
//	POST /v1/plan:subscribe     stream a session's epoch deltas (push)
//	GET  /healthz               liveness + registry and session stats
//
// Query buffers are pooled, so the steady-state engine work allocates
// nothing; remaining per-request allocations are JSON encoding and
// decoding. Traffic counters (batch sizes, mutation counts) are atomics
// exposed through Snapshot for /healthz and the daemon's expvar page.
type Server struct {
	reg        *Registry
	opts       ServerOptions
	mux        *http.ServeMux
	bufs       sync.Pool // of *queryBuf
	binScratch sync.Pool // of *BinScratch (binary decode arenas)
	traces     sync.Pool // of *reqTrace
	sessions   *sessionTable
	met        *Metrics
	rec        *trace.Recorder
	subSeq     atomic.Uint64 // subscriber identity for deliver spans

	batchRequests  atomic.Int64
	batchPoints    atomic.Int64
	mutateRequests atomic.Int64
}

// ServerStats is a point-in-time snapshot of a server's traffic
// counters, shaped for JSON (expvar and /healthz).
type ServerStats struct {
	// Plans and Registry mirror the plan cache.
	Plans    int           `json:"plans"`
	Registry RegistryStats `json:"registry"`
	// BatchRequests and BatchPoints count slots/maybroadcast batches and
	// the points they carried (their ratio is the mean batch size).
	BatchRequests int64 `json:"batch_requests"`
	BatchPoints   int64 `json:"batch_points"`
	// MutateRequests counts /v1/plan:mutate requests (accepted or not);
	// Sessions breaks down the dynamic-session traffic.
	MutateRequests int64        `json:"mutate_requests"`
	Sessions       SessionStats `json:"sessions"`
}

// Snapshot returns the server's current traffic counters. Safe for
// concurrent callers; used by /healthz and published to expvar by
// cmd/latticed.
func (s *Server) Snapshot() ServerStats {
	return ServerStats{
		Plans:          s.reg.Len(),
		Registry:       s.reg.Stats(),
		BatchRequests:  s.batchRequests.Load(),
		BatchPoints:    s.batchPoints.Load(),
		MutateRequests: s.mutateRequests.Load(),
		Sessions:       s.sessions.snapshot(),
	}
}

// queryBuf carries one request's scratch slices between pool uses.
// body is the binary path's raw-request buffer (the JSON decoder reads
// through its own machinery).
type queryBuf struct {
	pts   []lattice.Point
	slots []int32
	may   []bool
	body  []byte
}

// putBuf returns buf to the pool, dropping the point aliases into the
// last request's decoded coordinate arrays so the pool does not pin
// request bodies.
func (s *Server) putBuf(buf *queryBuf) {
	clear(buf.pts[:cap(buf.pts)])
	buf.pts = buf.pts[:0]
	s.bufs.Put(buf)
}

// NewServer builds the HTTP handler over the registry.
func NewServer(reg *Registry, opts ServerOptions) *Server {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = defaultMaxBatch
	}
	if opts.MaxWindow <= 0 {
		opts.MaxWindow = defaultMaxWindow
	}
	if opts.MaxBody <= 0 {
		opts.MaxBody = defaultMaxBody
	}
	if opts.MaxSubscribers <= 0 {
		opts.MaxSubscribers = DefaultMaxSubscribers
	}
	if opts.SubscribeQueue <= 0 {
		opts.SubscribeQueue = DefaultSubscribeQueue
	}
	s := &Server{reg: reg, opts: opts, mux: http.NewServeMux(), met: newServerMetrics(opts)}
	s.rec = trace.NewRecorder(opts.TraceSampleEvery, opts.TraceRing)
	s.sessions = newSessionTable(opts.MaxSessions, s.met)
	s.sessions.logf = opts.Logf
	reg.instrument(s.met)
	s.bufs.New = func() any { return new(queryBuf) }
	s.binScratch.New = func() any { return new(BinScratch) }
	s.traces.New = func() any { return new(reqTrace) }
	s.mux.HandleFunc("POST /v1/plan", s.instrument(epPlan, s.handlePlan))
	s.mux.HandleFunc("POST /v1/slots:batch", s.instrument(epSlots, s.handleSlots))
	s.mux.HandleFunc("POST /v1/maybroadcast:batch", s.instrument(epMay, s.handleMay))
	s.mux.HandleFunc("POST /v1/plan:mutate", s.instrument(epMutate, s.handleMutate))
	s.mux.HandleFunc("POST /v1/plan:subscribe", s.instrument(epSubscribe, s.handleSubscribe))
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	return s
}

// EnablePersistence turns on durable sessions (DESIGN.md §12): every
// mutation batch appends to a per-session WAL under o.Dir, snapshots
// bound the log, evicted sessions flush-then-restore instead of losing
// churn, and RestoreSessions reloads the directory on start. Call it
// before the server handles traffic (the store pointer is read without
// synchronization on the session path).
func (s *Server) EnablePersistence(o PersistOptions) error {
	store, err := newSessionStore(o, s.met, s.opts.Logf)
	if err != nil {
		return err
	}
	s.sessions.store = store
	return nil
}

// FlushSessions snapshots every dirty live session to the data
// directory and returns the number flushed — the graceful-shutdown
// hook. A no-op (returning 0) without persistence.
func (s *Server) FlushSessions() int {
	return s.sessions.flushAll()
}

// RestoreSessions reloads every session persisted in the data directory
// (restore-on-start): each on-disk identity recompiles its plan through
// the registry and re-enters the table via the normal restore path,
// oldest first so the most recently written sessions end up at the LRU
// front. An identity whose plan no longer compiles to the recorded
// signature is skipped with a log line, never fatal. Returns the number
// restored; without persistence it is a no-op.
func (s *Server) RestoreSessions() (int, error) {
	st := s.sessions
	if st.store == nil {
		return 0, nil
	}
	idents, err := st.store.list()
	if err != nil {
		return 0, err
	}
	n := 0
	for _, id := range idents {
		tile := make([][]int, len(id.tile))
		for i, pt := range id.tile {
			tile[i] = pt
		}
		plan, err := s.reg.GetSpec(PlanSpec{Lattice: id.lat, Tile: TileSpec{Points: tile}})
		if err != nil {
			st.logfSafe("latticed: restore: compiling plan for %s: %v", id.sig, err)
			continue
		}
		if plan.Signature() != id.sig {
			st.logfSafe("latticed: restore: plan %s compiled to signature %s, skipping", id.sig, plan.Signature())
			continue
		}
		if _, err := st.get(plan, id.win); err != nil {
			st.logfSafe("latticed: restore: session %s|%s: %v", id.sig, id.win, err)
			continue
		}
		n++
	}
	return n, nil
}

// handleMutate churns a dynamic deployment session: resolve the plan,
// find or seed the session for (signature, window), apply the event
// batch under the session lock, and answer the post-batch epoch with the
// slot deltas. A stale request epoch is a 409 carrying the current epoch
// so the client can resync (re-request with "full": true).
func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request, tr *reqTrace) {
	if isBinaryRequest(r) {
		s.handleMutateBin(w, r, tr)
		return
	}
	s.mutateRequests.Add(1)
	decodeStart := time.Now()
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBody))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeErr(w, status, fmt.Sprintf("reading request: %v", err))
		return
	}
	req, win, events, err := DecodeMutateRequest(body, s.limits())
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrLimit) {
			status = http.StatusRequestEntityTooLarge
		}
		writeErr(w, status, err.Error())
		return
	}
	plan, ok := s.getPlan(w, req.Plan)
	if !ok {
		return
	}
	tr.sig = plan.Signature()
	tr.batch = len(events)
	tr.decodeNs = time.Since(decodeStart)
	if win.Dim() != plan.Tile().Dim() {
		writeErr(w, http.StatusBadRequest,
			fmt.Sprintf("window dimension %d ≠ plan dimension %d", win.Dim(), plan.Tile().Dim()))
		return
	}
	var epoch uint64
	if req.Epoch != nil {
		epoch = *req.Epoch
	}
	engineStart := time.Now()
	resp, status, cerr := s.mutateCore(plan, win, req.Epoch != nil, epoch, req.Full, events, tr.span)
	tr.engineNs = time.Since(engineStart)
	if cerr != nil {
		writeErr(w, status, cerr.Error())
		return
	}
	encodeStart := time.Now()
	writeJSON(w, status, resp)
	tr.encodeNs = time.Since(encodeStart)
}

// mutateCore is the codec-independent mutate path shared by the JSON
// and binary handlers: find or seed the session for (plan, window),
// apply the event batch under the session lock, and assemble the
// response. Returns the response and its HTTP status (200, 400 on a
// partial apply, 409 on a stale epoch — the conflict response carries
// the current epoch so the client can resync); a non-nil error means
// there is no MutateResponse payload (session-table failure, 500).
// tsp, when non-nil, is the request's trace: the epoch timeline stamps
// (overlay-apply, wal-append, hub-publish) land on it, and the
// published delta carries it so subscriber deliveries complete the
// span tree (DESIGN.md §14).
func (s *Server) mutateCore(plan *core.Plan, win lattice.Window, hasEpoch bool, epoch uint64, full bool, events []dynamic.Event, tsp *trace.Trace) (MutateResponse, int, error) {
	var sess *dynSession
	for {
		var err error
		sess, err = s.sessions.get(plan, win)
		if err != nil {
			return MutateResponse{}, http.StatusInternalServerError, err
		}
		// The session lock covers state mutation and response assembly
		// only; it is released before any bytes go to the client, so a
		// slow reader cannot stall the deployment's mutation pipeline.
		sess.mu.Lock()
		if !sess.gone {
			break
		}
		// Evicted between lookup and lock: its flush has run and the
		// table no longer knows it, so anything applied here would be
		// acked yet unreachable (and unpersisted). Re-get the live
		// session instead.
		sess.mu.Unlock()
	}
	if hasEpoch && epoch != sess.epoch {
		conflict := MutateResponse{
			Signature: plan.Signature(),
			Epoch:     sess.epoch,
			M:         sess.mut.Slots(),
			Alive:     sess.mut.AliveCount(),
			Error:     fmt.Sprintf("stale epoch %d (current %d): resync with full=true", epoch, sess.epoch),
		}
		sess.mu.Unlock()
		s.sessions.recordConflict()
		return conflict, http.StatusConflict, nil
	}
	resp := MutateResponse{Signature: plan.Signature()}
	if len(events) > 0 {
		applyStart := tsp.Clock()
		d, changed, aerr := sess.mut.Apply(events)
		if d.Events > 0 {
			sess.epoch++
			tsp.EpochSpan("overlay-apply", int64(sess.epoch), applyStart, tsp.Clock())
			s.sessions.record(d.Events)
			if sess.disk != nil {
				walStart := tsp.Clock()
				// Log the applied prefix (Apply stops at the first bad
				// event, so events[:d.Events] is exactly what changed
				// state) stamped with the post-batch epoch. An append
				// failure drops durability for this session — with a log
				// line — rather than serving errors: the last flushed
				// state stands, and replaying a WAL with a hole would
				// corrupt, so the handle is closed for good.
				if perr := sess.disk.append(sess.epoch, events[:d.Events]); perr != nil {
					s.sessions.logfSafe("latticed: session %s: %v (persistence disabled for this session)", sess.key, perr)
					sess.disk.close()
					sess.disk = nil
				} else {
					tsp.EpochSpan("wal-append", int64(sess.epoch), walStart, tsp.Clock())
					if sess.disk.shouldSnapshot() {
						if perr := sess.disk.snapshot(sess.mut, sess.epoch); perr != nil {
							s.sessions.logfSafe("latticed: session %s: %v", sess.key, perr)
						}
					}
				}
			}
			// Fan the applied batch out to subscribers while still under
			// the session lock, so every subscriber queue observes epochs
			// in order. The delta owns its change slice (the response's
			// may be rewritten by the full branch below); publishing
			// never blocks — a full queue drops its subscriber instead.
			if sess.hub.active() {
				fanStart := time.Now()
				pubStart := tsp.Clock()
				pd := &Delta{Epoch: sess.epoch, M: sess.mut.Slots(), Alive: sess.mut.AliveCount(),
					PubTime: fanStart, trace: tsp, pubNs: pubStart}
				pd.Changed = make([]ChangeSpec, 0, len(changed))
				for _, ch := range changed {
					pd.Changed = append(pd.Changed, ChangeSpec{P: ch.P, Slot: ch.Slot})
				}
				delivered, dropped := sess.hub.publish(pd)
				tsp.EpochSpan("hub-publish", int64(sess.epoch), pubStart, tsp.Clock())
				sess.lastPubNs.Store(fanStart.UnixNano())
				s.met.deltasPushed.Add(uint64(delivered))
				s.met.fanoutNs.Record(uint64(time.Since(fanStart)))
				if dropped > 0 {
					s.met.subsDropped.Add(uint64(dropped))
					s.sessions.recordSubDrops(dropped)
					s.sessions.logfSafe("latticed: session %s: dropped %d slow subscriber(s) at epoch %d",
						sess.key, dropped, sess.epoch)
				}
			}
		}
		resp.Disruption = DisruptionSpec{
			Events:      d.Events,
			Joined:      d.Joined,
			Departed:    d.Departed,
			Reassigned:  d.Reassigned,
			ColorsDelta: d.ColorsDelta,
			FullRecolor: d.FullRecolor,
			Compacted:   d.Compacted,
		}
		resp.Changed = make([]ChangeSpec, 0, len(changed))
		for _, ch := range changed {
			resp.Changed = append(resp.Changed, ChangeSpec{P: ch.P, Slot: ch.Slot})
		}
		if aerr != nil {
			// The applied prefix stands; report it alongside the error.
			resp.Error = aerr.Error()
		}
	}
	if full {
		resp.Changed = resp.Changed[:0]
		sess.mut.EachAssignment(func(p lattice.Point, slot int) bool {
			resp.Changed = append(resp.Changed, ChangeSpec{P: p.Clone(), Slot: slot})
			return true
		})
	}
	resp.Epoch = sess.epoch
	resp.M = sess.mut.Slots()
	resp.Alive = sess.mut.AliveCount()
	sess.mu.Unlock()
	status := http.StatusOK
	if resp.Error != "" {
		status = http.StatusBadRequest
	}
	return resp, status, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, HealthResponse{OK: true, Plans: s.reg.Len(), Stats: s.reg.Stats(),
		Traffic: s.Snapshot()})
}

func (s *Server) handlePlan(w http.ResponseWriter, r *http.Request, tr *reqTrace) {
	decodeStart := time.Now()
	var req PlanRequest
	if !s.decode(w, r, &req) {
		return
	}
	plan, ok := s.getPlan(w, req.Plan)
	if !ok {
		return
	}
	tr.sig = plan.Signature()
	tr.decodeNs = time.Since(decodeStart)
	period := plan.Tiling().Period()
	rows := make([][]int64, period.Rows())
	for i := range rows {
		rows[i] = make([]int64, period.Cols())
		for j := range rows[i] {
			rows[i][j] = period.At(i, j)
		}
	}
	tilePts := plan.Tile().Points()
	tile := make([][]int, len(tilePts))
	for i, pt := range tilePts {
		tile[i] = pt
	}
	encodeStart := time.Now()
	writeJSON(w, http.StatusOK, PlanResponse{
		Signature: plan.Signature(),
		Lattice:   plan.Lattice().Name(),
		Dim:       plan.Tile().Dim(),
		Slots:     plan.Slots(),
		Period:    rows,
		Tile:      tile,
	})
	tr.encodeNs = time.Since(encodeStart)
}

func (s *Server) handleSlots(w http.ResponseWriter, r *http.Request, tr *reqTrace) {
	if isBinaryRequest(r) {
		s.handleBatchBin(w, r, false, tr)
		return
	}
	decodeStart := time.Now()
	req, win, ok := s.decodeBatch(w, r)
	if !ok {
		return
	}
	plan, ok := s.getPlan(w, req.Plan)
	if !ok {
		return
	}
	tr.sig = plan.Signature()
	tr.decodeNs = time.Since(decodeStart)
	buf := s.bufs.Get().(*queryBuf)
	defer s.putBuf(buf)
	engineStart := time.Now()
	var err error
	if win != nil {
		buf.slots, err = QueryWindowSlots(plan, *win, buf.slots[:0])
	} else {
		buf.slots, err = QuerySlots(plan, buf.points(req.Points), buf.slots[:0])
	}
	tr.engineNs = time.Since(engineStart)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	s.batchRequests.Add(1)
	s.batchPoints.Add(int64(len(buf.slots)))
	tr.batch = len(buf.slots)
	encodeStart := time.Now()
	writeJSON(w, http.StatusOK, SlotsResponse{M: plan.Slots(), Slots: buf.slots})
	tr.encodeNs = time.Since(encodeStart)
}

func (s *Server) handleMay(w http.ResponseWriter, r *http.Request, tr *reqTrace) {
	if isBinaryRequest(r) {
		s.handleBatchBin(w, r, true, tr)
		return
	}
	decodeStart := time.Now()
	req, win, ok := s.decodeBatch(w, r)
	if !ok {
		return
	}
	plan, ok := s.getPlan(w, req.Plan)
	if !ok {
		return
	}
	tr.sig = plan.Signature()
	tr.decodeNs = time.Since(decodeStart)
	buf := s.bufs.Get().(*queryBuf)
	defer s.putBuf(buf)
	engineStart := time.Now()
	var err error
	if win != nil {
		buf.may, err = QueryWindowMayBroadcast(plan, *win, req.T, buf.may[:0])
	} else {
		buf.may, err = QueryMayBroadcast(plan, buf.points(req.Points), req.T, buf.may[:0])
	}
	tr.engineNs = time.Since(engineStart)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err.Error())
		return
	}
	s.batchRequests.Add(1)
	s.batchPoints.Add(int64(len(buf.may)))
	tr.batch = len(buf.may)
	encodeStart := time.Now()
	writeJSON(w, http.StatusOK, MayResponse{M: plan.Slots(), T: req.T, May: buf.may})
	tr.encodeNs = time.Since(encodeStart)
}

// points adapts wire coordinates to lattice points in the pooled scratch
// slice; the coordinate arrays are aliased, not copied.
func (b *queryBuf) points(coords [][]int) []lattice.Point {
	b.pts = b.pts[:0]
	for _, c := range coords {
		b.pts = append(b.pts, lattice.Point(c))
	}
	return b.pts
}

// decode reads the JSON request body into dst, answering 400 on
// malformed bodies and 413 on oversized ones (matching decodeBatch).
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBody)
	if err := json.NewDecoder(r.Body).Decode(dst); err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeErr(w, status, fmt.Sprintf("decoding request: %v", err))
		return false
	}
	return true
}

// decodeBatch reads a size-capped body and funnels it through the
// wire-level DecodeBatchRequest (the fuzzed entry point), answering 400
// for malformed requests and 413 for over-limit ones.
func (s *Server) decodeBatch(w http.ResponseWriter, r *http.Request) (BatchRequest, *lattice.Window, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.opts.MaxBody))
	if err != nil {
		status := http.StatusBadRequest
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			status = http.StatusRequestEntityTooLarge
		}
		writeErr(w, status, fmt.Sprintf("reading request: %v", err))
		return BatchRequest{}, nil, false
	}
	req, win, err := DecodeBatchRequest(body, Limits{MaxBatch: s.opts.MaxBatch, MaxWindow: s.opts.MaxWindow})
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrLimit) {
			status = http.StatusRequestEntityTooLarge
		}
		writeErr(w, status, err.Error())
		return BatchRequest{}, nil, false
	}
	return req, win, true
}

// getPlan serves the spec through the registry, mapping failures to
// status codes: malformed specs are 400, inexact prototiles 422,
// anything else 500.
func (s *Server) getPlan(w http.ResponseWriter, spec PlanSpec) (*core.Plan, bool) {
	plan, err := s.reg.GetSpec(spec)
	if err == nil {
		return plan, true
	}
	writeErr(w, planErrStatus(err), err.Error())
	return nil, false
}

// planErrStatus maps a plan-compilation failure to its HTTP status
// (shared by the JSON and binary plan resolvers).
func planErrStatus(err error) int {
	switch {
	case errors.Is(err, ErrSpec):
		return http.StatusBadRequest
	case errors.Is(err, core.ErrNotExact):
		return http.StatusUnprocessableEntity
	}
	return http.StatusInternalServerError
}

func writeJSON(w http.ResponseWriter, status int, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	if err := json.NewEncoder(w).Encode(body); err != nil {
		// The status line is already out; nothing more to do.
		_ = err
	}
}

func writeErr(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, ErrorResponse{Error: msg})
}
