package service

// Fuzz targets for the binary decode funnels (binary.go,
// binary_mutate.go) — the binary twins of wire_fuzz_test.go. The
// funnels face unauthenticated bytes, so whatever the input they must
// return an error — never panic — and anything they accept must respect
// the documented limits. CI runs each target for a 10s smoke.

import (
	"testing"

	"tilingsched/internal/dynamic"
	"tilingsched/internal/service/binwire"
)

// binarySeed renders a valid encoded request for the seed corpus.
func binarySeed(build func(e *binwire.Buffer)) []byte {
	var e binwire.Buffer
	build(&e)
	return e.Bytes()
}

// FuzzDecodeBinaryBatch checks that binary batch decoding never panics
// and that every accepted request satisfies the same structural
// contract as the JSON funnel: exactly one of points/window, batch
// within MaxBatch, window expansion within MaxWindow, uniform point
// dimension within the tile bound.
func FuzzDecodeBinaryBatch(f *testing.F) {
	seeds := [][]byte{
		binarySeed(func(e *binwire.Buffer) {
			EncodeBatchBinary(e, BatchRequest{
				Plan:   PlanSpec{Tile: TileSpec{Name: "cross:2:1"}},
				Points: [][]int{{3, 4}, {0, 0}},
			}, false, "")
		}),
		binarySeed(func(e *binwire.Buffer) {
			EncodeBatchBinary(e, BatchRequest{
				Plan:   PlanSpec{Lattice: "square", Tile: TileSpec{Name: "rect:4:2"}},
				Window: &WindowSpec{Lo: []int{-4, -4}, Hi: []int{4, 4}},
			}, false, "")
		}),
		binarySeed(func(e *binwire.Buffer) {
			EncodeBatchBinary(e, BatchRequest{
				Plan:   PlanSpec{Tile: TileSpec{Points: [][]int{{0, 0}, {1, 0}}}},
				Points: [][]int{{1, 7}},
				T:      -12345,
			}, true, "")
		}),
		binarySeed(func(e *binwire.Buffer) {
			EncodeBatchBinary(e, BatchRequest{Points: [][]int{{9}}}, true, "square|cross:2:1")
		}),
		binarySeed(func(e *binwire.Buffer) { // wrong frame type for the funnel
			e.BeginFrame(binwire.FrameMutate)
			e.Uvarint(0)
			e.EndFrame()
		}),
		{0, 0, 0, 0}, {1, 0, 0, 0, 0x01}, []byte("not a frame"), {},
	}
	for _, s := range seeds {
		f.Add(s, 8, 64)
	}
	f.Fuzz(func(t *testing.T, data []byte, maxBatch, maxWindow int) {
		lim := Limits{MaxBatch: maxBatch, MaxWindow: maxWindow}.withDefaults()
		var sc BinScratch
		req, err := DecodeBinaryBatch(data, Limits{MaxBatch: maxBatch, MaxWindow: maxWindow}, &sc)
		if err != nil {
			return
		}
		if req.Kind != binwire.FrameBatchSlots && req.Kind != binwire.FrameBatchMay {
			t.Fatalf("accepted kind %#x", req.Kind)
		}
		hasPoints := len(req.Points) > 0
		if hasPoints == req.UseWindow {
			t.Fatalf("accepted request with points=%v window=%v", hasPoints, req.UseWindow)
		}
		if hasPoints {
			if len(req.Points) > lim.MaxBatch {
				t.Fatalf("accepted batch of %d over limit %d", len(req.Points), lim.MaxBatch)
			}
			dim := len(req.Points[0])
			if dim < 1 || dim > maxTileDim {
				t.Fatalf("accepted point dimension %d", dim)
			}
			for i, p := range req.Points {
				if len(p) != dim {
					t.Fatalf("point %d has dimension %d ≠ %d", i, len(p), dim)
				}
			}
		} else {
			size, serr := req.Window.SizeChecked()
			if serr != nil || size > lim.MaxWindow {
				t.Fatalf("accepted window of %d points (err %v) over limit %d", size, serr, lim.MaxWindow)
			}
		}
	})
}

// FuzzDecodeBinaryMutate checks the binary mutate funnel: never panic,
// and every accepted request has a bounded window, a bounded event
// list, and only well-formed in-margin events.
func FuzzDecodeBinaryMutate(f *testing.F) {
	stale := uint64(3)
	seeds := [][]byte{
		binarySeed(func(e *binwire.Buffer) {
			_ = EncodeMutateBinary(e, MutateRequest{
				Plan:   PlanSpec{Tile: TileSpec{Name: "cross:2:1"}},
				Window: WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}},
				Events: []EventSpec{{Op: "leave", P: []int{1, 1}}},
			}, "")
		}),
		binarySeed(func(e *binwire.Buffer) {
			_ = EncodeMutateBinary(e, MutateRequest{
				Window: WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}},
				Events: []EventSpec{{Op: "move", P: []int{0, 0}, To: []int{5, 5}}},
				Epoch:  &stale,
			}, "")
		}),
		binarySeed(func(e *binwire.Buffer) {
			_ = EncodeMutateBinary(e, MutateRequest{
				Window: WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}},
				Full:   true,
			}, "square|cross:2:1")
		}),
		binarySeed(func(e *binwire.Buffer) { // out-of-margin event
			_ = EncodeMutateBinary(e, MutateRequest{
				Window: WindowSpec{Lo: []int{0, 0}, Hi: []int{4, 4}},
				Events: []EventSpec{{Op: "join", P: []int{100000, 0}}},
			}, "")
		}),
		{0, 0, 0, 0}, []byte("not a frame"), {},
	}
	for _, s := range seeds {
		f.Add(s, 8, 64)
	}
	f.Fuzz(func(t *testing.T, data []byte, maxBatch, maxWindow int) {
		lim := Limits{MaxBatch: maxBatch, MaxWindow: maxWindow}.withDefaults()
		req, err := DecodeBinaryMutate(data, Limits{MaxBatch: maxBatch, MaxWindow: maxWindow})
		if err != nil {
			return
		}
		win := req.Window
		if size, serr := win.SizeChecked(); serr != nil || size > lim.MaxWindow {
			t.Fatalf("accepted window %s over limit %d", win, lim.MaxWindow)
		}
		if len(req.Events) > lim.MaxBatch {
			t.Fatalf("accepted %d events over limit %d", len(req.Events), lim.MaxBatch)
		}
		if len(req.Events) == 0 && !req.Full {
			t.Fatal("accepted an empty non-full request")
		}
		for i, ev := range req.Events {
			if ev.P.Dim() != win.Dim() {
				t.Fatalf("event %d dimension %d ≠ window %d", i, ev.P.Dim(), win.Dim())
			}
			check := func(p []int) {
				for a := range p {
					if p[a] < win.Lo[a]-MutateMargin || p[a] > win.Hi[a]+MutateMargin {
						t.Fatalf("event %d outside margin: %v in %s", i, p, win)
					}
				}
			}
			check(ev.P)
			if ev.Kind == dynamic.Move {
				if ev.To.Dim() != win.Dim() {
					t.Fatalf("event %d destination dimension %d ≠ window %d", i, ev.To.Dim(), win.Dim())
				}
				check(ev.To)
			}
		}
	})
}
