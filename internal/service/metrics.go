package service

// Server telemetry: every request that reaches the wire layer is
// counted, timed, and traced through a per-server internal/obs
// registry. The instrument wrapper around each endpoint handler does
// the uniform work (request/error counters, end-to-end latency split
// by endpoint × codec); handlers fill in a pooled reqTrace with the
// request's plan signature, batch size, and per-phase wall times
// (decode → engine → encode), which the wrapper folds into the phase
// histograms, the per-plan traffic sketch, and — past the configured
// threshold — a sampled slow-request log. Recording is pre-resolved
// atomic handles only: no locks, no allocations on the request path
// beyond the pooled trace.

import (
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"tilingsched/internal/dynamic"
	"tilingsched/internal/obs"
	"tilingsched/internal/obs/trace"
)

// Instrumented endpoints, in mux order. /healthz and the daemon's
// /metrics are deliberately uninstrumented: they are the ops plane
// reading the telemetry, not traffic worth telemetering.
const (
	epPlan = iota
	epSlots
	epMay
	epMutate
	epSubscribe
	numEndpoints
)

// Codecs a request can select via Content-Type.
const (
	codecJSON = iota
	codecBin
	numCodecs
)

var (
	epNames    = [numEndpoints]string{"plan", "slots", "maybroadcast", "mutate", "subscribe"}
	codecNames = [numCodecs]string{"json", "bin"}
)

// planTrafficK bounds the per-plan-signature traffic sketch: at most
// this many signatures are tracked (space-saving top-K), so exposition
// cardinality stays fixed no matter how many plans clients request.
const planTrafficK = 32

// slowLogMinInterval rate-limits the slow-request log: at most one
// entry per interval, so a latency storm degrades to a sample instead
// of a log flood.
const slowLogMinInterval = 100 * time.Millisecond

// SlowRequest is one sampled slow-request trace, handed to the
// ServerOptions.SlowLog callback when a request's end-to-end time
// crosses ServerOptions.SlowThreshold.
type SlowRequest struct {
	// Endpoint and Codec identify the request ("slots", "bin", ...).
	Endpoint, Codec string
	// Signature is the plan's canonical signature ("" if the request
	// died before plan resolution).
	Signature string
	// BatchPoints is the answer size (points, flags, or events).
	BatchPoints int
	// Status is the HTTP status the handler answered.
	Status int
	// Total is the end-to-end handler time; Decode, Engine, and Encode
	// are the phase splits (Encode is zero on the binary streaming
	// path, where encoding interleaves with the engine phase).
	Total, Decode, Engine, Encode time.Duration
	// Trace is the request's hex trace ID, linking the log line to its
	// span tree at /debug/traces. Slow requests that lost the sampling
	// draw get a trace synthesized from the phase times
	// (always-sample-on-slow), so Trace is "" only with tracing
	// disabled entirely.
	Trace string
}

// Metrics is a server's telemetry plane: one obs.Registry per server
// (no process globals — tests and multi-handler processes keep
// independent counters) plus pre-resolved handles for everything the
// request path records. Snapshot it through WritePrometheus via
// (*Server).WriteMetrics.
type Metrics struct {
	reg *obs.Registry

	// Per-endpoint × codec request accounting.
	requests [numEndpoints][numCodecs]*obs.Counter
	errors   [numEndpoints][numCodecs]*obs.Counter
	latency  [numEndpoints][numCodecs]*obs.Histogram

	// Request-phase wall times and batch-size distribution.
	decodeNs, engineNs, encodeNs *obs.Histogram
	batchSize                    *obs.Histogram

	// Per-plan-signature traffic (points answered), bounded top-K.
	planTraffic *obs.TopK
	plans       *obs.Gauge // cached plans; set at scrape time

	// Plan-registry traffic.
	regHits, regMisses, regCompilations *obs.Counter
	regEvictions, regErrors, regDedup   *obs.Counter

	// Dynamic-session traffic.
	sessLive                             *obs.Gauge
	sessCreated, sessEvicted             *obs.Counter
	sessEvictedDirty, sessRestored       *obs.Counter
	sessMutations, sessEvents, sessConfl *obs.Counter

	// Session-persistence plane (DESIGN.md §12): WAL appends and their
	// wall time, per-record fsyncs, snapshot writes, events replayed on
	// restore, and the three recovery modes kept distinct — torn WAL
	// tails truncated, corrupt snapshots dropped, and unusable WALs
	// (corrupt header or a base epoch past the restored state) reset.
	walAppends, walFsyncs, snapshots    *obs.Counter
	tornTails, snapsDropped, walResets  *obs.Counter
	replayedEvents                      *obs.Counter
	walAppendNs, walFsyncNs, snapshotNs *obs.Histogram

	// Push plane (DESIGN.md §13): live/attached subscriber accounting,
	// the two terminal modes (slow-consumer drops and session-eviction
	// closes), deltas fanned out, per-batch fan-out wall time, and the
	// two stale-attach recovery modes kept distinct — WAL catch-ups vs
	// full resyncs.
	subsLive                            *obs.Gauge
	subsTotal, subsDropped, subsEvicted *obs.Counter
	deltasPushed                        *obs.Counter
	subCatchups, subResyncs             *obs.Counter
	fanoutNs                            *obs.Histogram

	// Propagation plane (DESIGN.md §14): publish→deliver latency per
	// delta delivery, plus subscriber lag watermarks (epochs-behind and
	// time-behind, indexed by lagMin/lagP50/lagMax) set at scrape time
	// from the live session table. Exemplar trace IDs for sampled
	// deliveries sit in a small lock-free ring, surfaced on /statusz.
	propagationNs *obs.Histogram
	lagEpochs     [numLagQs]*obs.Gauge
	lagTimeNs     [numLagQs]*obs.Gauge
	propExSeq     atomic.Uint64
	propExemplars [propExemplarRing]atomic.Pointer[PropExemplar]

	// Dyn is the dynamic-subsystem telemetry, registered in the same
	// registry and passed to every session's Mutator.
	dyn *dynamic.Metrics

	slowThreshold time.Duration
	slowLog       func(SlowRequest)
	lastSlow      atomic.Int64 // unix nanos of the last slow-log entry
}

// newServerMetrics registers the server's metric families and
// resolves their recording handles once, so the request path never
// touches the registry map.
func newServerMetrics(opts ServerOptions) *Metrics {
	r := obs.NewRegistry()
	m := &Metrics{
		reg:           r,
		planTraffic:   obs.NewTopK(planTrafficK),
		slowThreshold: opts.SlowThreshold,
		slowLog:       opts.SlowLog,
	}
	for ep := 0; ep < numEndpoints; ep++ {
		for c := 0; c < numCodecs; c++ {
			labels := `{endpoint="` + epNames[ep] + `",codec="` + codecNames[c] + `"}`
			m.requests[ep][c] = r.Counter("latticed_requests_total" + labels)
			m.errors[ep][c] = r.Counter("latticed_errors_total" + labels)
			m.latency[ep][c] = r.Histogram("latticed_request_ns" + labels)
		}
	}
	m.decodeNs = r.Histogram(`latticed_phase_ns{phase="decode"}`)
	m.engineNs = r.Histogram(`latticed_phase_ns{phase="engine"}`)
	m.encodeNs = r.Histogram(`latticed_phase_ns{phase="encode"}`)
	m.batchSize = r.Histogram("latticed_batch_points")
	m.plans = r.Gauge("latticed_plans")
	m.regHits = r.Counter("latticed_registry_hits_total")
	m.regMisses = r.Counter("latticed_registry_misses_total")
	m.regCompilations = r.Counter("latticed_registry_compilations_total")
	m.regEvictions = r.Counter("latticed_registry_evictions_total")
	m.regErrors = r.Counter("latticed_registry_errors_total")
	m.regDedup = r.Counter("latticed_registry_singleflight_dedup_total")
	m.sessLive = r.Gauge("latticed_sessions_live")
	m.sessCreated = r.Counter("latticed_sessions_created_total")
	m.sessEvicted = r.Counter("latticed_sessions_evicted_total")
	m.sessEvictedDirty = r.Counter("latticed_sessions_evicted_dirty_total")
	m.sessRestored = r.Counter("latticed_sessions_restored_total")
	m.sessMutations = r.Counter("latticed_mutations_total")
	m.sessEvents = r.Counter("latticed_mutation_events_total")
	m.sessConfl = r.Counter("latticed_epoch_conflicts_total")
	m.walAppends = r.Counter("latticed_wal_appends_total")
	m.walFsyncs = r.Counter("latticed_wal_fsyncs_total")
	m.snapshots = r.Counter("latticed_snapshots_total")
	m.tornTails = r.Counter("latticed_wal_torn_tails_total")
	m.snapsDropped = r.Counter("latticed_snapshots_dropped_total")
	m.walResets = r.Counter("latticed_wal_resets_total")
	m.replayedEvents = r.Counter("latticed_wal_replayed_events_total")
	m.walAppendNs = r.Histogram("latticed_wal_append_ns")
	m.walFsyncNs = r.Histogram("latticed_wal_fsync_ns")
	m.snapshotNs = r.Histogram("latticed_snapshot_ns")
	m.subsLive = r.Gauge("latticed_subscribers_live")
	m.subsTotal = r.Counter("latticed_subscribers_total")
	m.subsDropped = r.Counter("latticed_subscribers_dropped_total")
	m.subsEvicted = r.Counter("latticed_subscribers_evicted_total")
	m.deltasPushed = r.Counter("latticed_deltas_pushed_total")
	m.subCatchups = r.Counter("latticed_subscriber_catchups_total")
	m.subResyncs = r.Counter("latticed_subscriber_resyncs_total")
	m.fanoutNs = r.Histogram("latticed_fanout_ns")
	m.propagationNs = r.Histogram("latticed_propagation_ns")
	for q, name := range lagQNames {
		m.lagEpochs[q] = r.Gauge(`latticed_subscriber_lag_epochs{q="` + name + `"}`)
		m.lagTimeNs[q] = r.Gauge(`latticed_subscriber_lag_ns{q="` + name + `"}`)
	}
	m.dyn = dynamic.NewMetrics(r)
	return m
}

// Lag-watermark quantile indexes (and their exposition labels).
const (
	lagMin = iota
	lagP50
	lagMax
	numLagQs
)

var lagQNames = [numLagQs]string{"min", "p50", "max"}

// propExemplarRing is how many recent propagation exemplars are kept.
const propExemplarRing = 4

// PropExemplar links one sampled delta delivery's propagation latency
// to its trace, so an operator reading the latency histogram can jump
// to the span tree that produced an outlier. Surfaced on /statusz.
type PropExemplar struct {
	// TraceID is the hex trace ID (look it up at /debug/traces).
	TraceID string `json:"trace_id"`
	// Epoch is the delivered session epoch.
	Epoch uint64 `json:"epoch"`
	// LatencyNs is the publish→deliver latency.
	LatencyNs int64 `json:"latency_ns"`
}

// recordExemplar publishes one sampled delivery into the exemplar ring.
func (m *Metrics) recordExemplar(ex *PropExemplar) {
	slot := (m.propExSeq.Add(1) - 1) % propExemplarRing
	m.propExemplars[slot].Store(ex)
}

// exemplars returns the retained propagation exemplars, newest first.
func (m *Metrics) exemplars() []PropExemplar {
	out := make([]PropExemplar, 0, propExemplarRing)
	seq := m.propExSeq.Load()
	for i := uint64(0); i < propExemplarRing; i++ {
		slot := (seq + propExemplarRing - 1 - i) % propExemplarRing
		if ex := m.propExemplars[slot].Load(); ex != nil {
			out = append(out, *ex)
		}
	}
	return out
}

// Registry exposes the underlying obs registry (tests and embedders
// that want to render or extend it).
func (m *Metrics) Registry() *obs.Registry { return m.reg }

// ObserveBatch folds one engine batch into the telemetry plane without
// going through the HTTP wrapper — for embedders (and the repository
// benchmarks) that call QuerySlots directly but still account traffic
// in this server's registry. It records the slots endpoint's request
// counter and latency, the engine-phase histogram, the batch-size
// distribution, and the plan's traffic sketch — the exact recording
// work a served batch pays.
func (m *Metrics) ObserveBatch(sig string, points int, engine time.Duration) {
	tr := reqTrace{sig: sig, batch: points, engineNs: engine}
	m.observe(epSlots, codecJSON, 200, engine, &tr)
}

// reqTrace carries one request's trace from its handler back to the
// instrument wrapper. Pooled; zeroed at checkout.
type reqTrace struct {
	sig                          string
	batch                        int
	decodeNs, engineNs, encodeNs time.Duration
	// span is the request's sampled trace (nil for the unsampled
	// majority). The wrapper starts it — from the sampling draw or a
	// propagated traceparent — and finishes it; the binary handlers may
	// set it themselves when they find a FrameTraceExt in the body.
	span *trace.Trace
}

// observe folds one finished request into the metrics plane. It is
// the wrapper's single recording call: counters, latency and phase
// histograms, batch size, and plan-traffic sketch — all lock-free
// atomic adds except the sketch (a short mutex hold, skipped when the
// request resolved no plan).
func (m *Metrics) observe(ep, codec, status int, total time.Duration, tr *reqTrace) {
	m.requests[ep][codec].Inc()
	m.latency[ep][codec].Record(uint64(total))
	if status >= 400 {
		m.errors[ep][codec].Inc()
	}
	if tr.decodeNs > 0 {
		m.decodeNs.Record(uint64(tr.decodeNs))
	}
	if tr.engineNs > 0 {
		m.engineNs.Record(uint64(tr.engineNs))
	}
	if tr.encodeNs > 0 {
		m.encodeNs.Record(uint64(tr.encodeNs))
	}
	if tr.batch > 0 {
		m.batchSize.Record(uint64(tr.batch))
		if tr.sig != "" {
			m.planTraffic.Record(tr.sig, uint64(tr.batch))
		}
	}
}

// slowSample reports whether a request of the given duration should
// be handed to the slow log: configured, past the threshold, and not
// rate-limited (one entry per slowLogMinInterval, claimed by CAS so
// concurrent slow requests log once).
func (m *Metrics) slowSample(total time.Duration, now int64) bool {
	if m.slowLog == nil || m.slowThreshold <= 0 || total < m.slowThreshold {
		return false
	}
	last := m.lastSlow.Load()
	if now-last < int64(slowLogMinInterval) {
		return false
	}
	return m.lastSlow.CompareAndSwap(last, now)
}

// statusRecorder captures the status a handler answered so the
// instrument wrapper can count errors without parsing bodies. A
// handler that writes a body without WriteHeader keeps the implicit
// 200.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

// WriteHeader records the status and forwards it.
func (sr *statusRecorder) WriteHeader(code int) {
	sr.status = code
	sr.ResponseWriter.WriteHeader(code)
}

// Unwrap exposes the wrapped writer so http.ResponseController reaches
// the connection's Flush / SetWriteDeadline through the instrument
// wrapper — the subscribe stream needs both.
func (sr *statusRecorder) Unwrap() http.ResponseWriter { return sr.ResponseWriter }

// traceparentHeader is the canonical MIME form of the W3C trace-context
// header. Indexing the header map with the canonical constant skips
// textproto canonicalization, which would allocate on every request —
// including the untraced majority.
const traceparentHeader = "Traceparent"

// phaseSpans stamps the request's decode/engine/encode phase times onto
// its trace as sequential spans. No-op on a nil trace.
func phaseSpans(sp *trace.Trace, tr *reqTrace) {
	off := int64(0)
	if tr.decodeNs > 0 {
		sp.Span("decode", off, off+int64(tr.decodeNs))
		off += int64(tr.decodeNs)
	}
	if tr.engineNs > 0 {
		sp.Span("engine", off, off+int64(tr.engineNs))
		off += int64(tr.engineNs)
	}
	if tr.encodeNs > 0 {
		sp.Span("encode", off, off+int64(tr.encodeNs))
	}
}

// instrument wraps an endpoint handler with the uniform telemetry:
// codec negotiation, status capture, end-to-end timing, trace sampling
// and traceparent propagation, and the observe/slow-log calls. Handlers
// receive the pooled trace to fill in signature, batch size, and phase
// times. A request that lost the sampling draw but crossed the slow
// threshold gets a trace synthesized from its phase times
// (always-sample-on-slow), so every slow-log line links to a span tree.
func (s *Server) instrument(ep int, h func(w http.ResponseWriter, r *http.Request, tr *reqTrace)) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		codec := codecJSON
		if isBinaryRequest(r) {
			codec = codecBin
		}
		tr := s.traces.Get().(*reqTrace)
		*tr = reqTrace{}
		// Join the caller's propagated context when it sampled, else run
		// the recorder's own 1-in-N draw. The nil span is the common case
		// and costs one map index plus one atomic load.
		if vals := r.Header[traceparentHeader]; len(vals) > 0 {
			if c, ok := trace.ParseTraceparent(vals[0]); ok && c.Sampled {
				tr.span = s.rec.Join(epNames[ep], c.TraceID, c.Parent)
			}
		}
		if tr.span == nil {
			tr.span = s.rec.Start(epNames[ep])
		}
		if tr.span != nil {
			// Echo the context so the caller can link its trace to ours.
			w.Header().Set(traceparentHeader,
				trace.FormatTraceparent(tr.span.ID(), tr.span.Root(), true))
		}
		sr := statusRecorder{ResponseWriter: w, status: 200}
		start := time.Now()
		h(&sr, r, tr)
		total := time.Since(start)
		s.met.observe(ep, codec, sr.status, total, tr)
		span := tr.span
		if span != nil {
			phaseSpans(span, tr)
			s.rec.Finish(span)
		}
		if s.met.slowSample(total, start.Add(total).UnixNano()) {
			if span == nil {
				span = s.rec.StartAt(epNames[ep], start)
				phaseSpans(span, tr)
				s.rec.Finish(span)
			}
			traceID := ""
			if span != nil {
				traceID = span.ID().String()
			}
			s.met.slowLog(SlowRequest{
				Endpoint:    epNames[ep],
				Codec:       codecNames[codec],
				Signature:   tr.sig,
				BatchPoints: tr.batch,
				Status:      sr.status,
				Total:       total,
				Decode:      tr.decodeNs,
				Engine:      tr.engineNs,
				Encode:      tr.encodeNs,
				Trace:       traceID,
			})
		}
		s.traces.Put(tr)
	}
}

// Metrics returns the server's telemetry plane.
func (s *Server) Metrics() *Metrics { return s.met }

// Traces returns the server's span recorder (DESIGN.md §14), so
// embedders can adjust the sampling rate or read the ring directly.
func (s *Server) Traces() *trace.Recorder { return s.rec }

// WriteMetrics renders the server's full telemetry in Prometheus text
// exposition format: scrape-time gauges (cached plans, subscriber lag
// watermarks), every registered family, then the per-plan traffic
// sketch. The daemon's /metrics handler calls this and appends
// obs.WriteGoRuntime.
func (s *Server) WriteMetrics(w io.Writer) error {
	s.met.plans.Set(int64(s.reg.Len()))
	s.setLagGauges()
	if err := s.met.reg.WritePrometheus(w); err != nil {
		return err
	}
	return obs.WriteTopK(w, "latticed_plan_points_total", "signature", s.met.planTraffic)
}

// setLagGauges recomputes the global subscriber lag watermarks from the
// live session table (cold path: scrape and statusz time only).
func (s *Server) setLagGauges() {
	_, epochsBehind, timeBehind := s.statuszCollect()
	eMin, eP50, eMax := watermarksU(epochsBehind)
	tMin, tP50, tMax := watermarksI(timeBehind)
	s.met.lagEpochs[lagMin].Set(int64(eMin))
	s.met.lagEpochs[lagP50].Set(int64(eP50))
	s.met.lagEpochs[lagMax].Set(int64(eMax))
	s.met.lagTimeNs[lagMin].Set(tMin)
	s.met.lagTimeNs[lagP50].Set(tP50)
	s.met.lagTimeNs[lagMax].Set(tMax)
}
