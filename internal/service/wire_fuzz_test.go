package service

// Native fuzz targets for the wire-level decoding funnel (wire.go): the
// decoders face unauthenticated bytes, so whatever the input they must
// return an error — never panic — and anything they accept must respect
// the documented limits. CI runs each target for a 10s smoke
// (-fuzztime); longer local runs grow the corpus under testdata/fuzz.

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"testing"
)

// FuzzDecodeBatchRequest checks that batch decoding never panics and
// that every accepted request satisfies the structural contract:
// exactly one of points/window, batch within MaxBatch, window expansion
// within MaxWindow.
func FuzzDecodeBatchRequest(f *testing.F) {
	seeds := []string{
		`{"plan":{"tile":{"name":"cross:2:1"}},"points":[[3,4],[0,0]]}`,
		`{"plan":{"tile":{"name":"cross:2:1"}},"window":{"lo":[-4,-4],"hi":[4,4]}}`,
		`{"plan":{"tile":{"points":[[0,0],[1,0]]}},"points":[[1]],"t":12345}`,
		`{"points":[[0,0]],"window":{"lo":[0],"hi":[0]}}`, // both set
		`{"plan":{}}`,                                            // neither set
		`{"window":{"lo":[4],"hi":[-4]}}`,                        // inverted corners
		`{"window":{"lo":[0,0],"hi":[9]}}`,                       // mismatched dims
		`{"window":{"lo":[-1000000000],"hi":[1000000000]}}`,      // huge expansion
		`{"window":{"lo":[-9e18,-9e18],"hi":[9e18,9e18]}}`,       // overflow sizes
		`{"points":[` + strings.Repeat(`[0,0],`, 64) + `[0,0]]}`, // 65 points
		`{"points":[null,[]]}`,                                   // degenerate points
		`{"plan":{"tile":{"name":"cross:2:1"}},"points":[[3,4]],"t":-1}`,
		`not json`, `{"window":`, `[]`, `42`, `{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s), 8, 64)
	}
	f.Fuzz(func(t *testing.T, data []byte, maxBatch, maxWindow int) {
		lim := Limits{MaxBatch: maxBatch, MaxWindow: maxWindow}.withDefaults()
		req, win, err := DecodeBatchRequest(data, Limits{MaxBatch: maxBatch, MaxWindow: maxWindow})
		if err != nil {
			return
		}
		hasPoints := len(req.Points) > 0
		hasWindow := req.Window != nil
		if hasPoints == hasWindow {
			t.Fatalf("accepted request with points=%v window=%v", hasPoints, hasWindow)
		}
		if hasPoints {
			if win != nil {
				t.Fatal("explicit-point batch returned a window")
			}
			if len(req.Points) > lim.MaxBatch {
				t.Fatalf("accepted batch of %d over limit %d", len(req.Points), lim.MaxBatch)
			}
		} else {
			if win == nil {
				t.Fatal("window batch returned no validated window")
			}
			size, serr := win.SizeChecked()
			if serr != nil || size > lim.MaxWindow {
				t.Fatalf("accepted window of %d points (err %v) over limit %d", size, serr, lim.MaxWindow)
			}
		}
	})
}

// FuzzDecodeTileSpec checks that tile decoding never panics, that
// accepted tiles respect the size and dimension bounds, and that the
// limit boundaries themselves error rather than slip through.
func FuzzDecodeTileSpec(f *testing.F) {
	seeds := []string{
		`{"name":"cross:2:1"}`,
		`{"name":"chebyshev:3:2"}`,
		`{"name":"rect:4:2"}`,
		`{"name":"tetromino:S"}`,
		`{"name":"pentomino:F"}`,
		`{"name":"ltromino"}`,
		`{"name":"directional"}`,
		`{"name":"ball:2.5"}`,                   // metric: must error here, resolves via PlanSpec
		`{"name":"cross:2:1","points":[[0,0]]}`, // both set
		`{"name":"cross:16:512"}`,               // boxWithin boundary
		`{"name":"rect:513:1"}`,                 // point-count boundary
		`{"name":"cross:-1:-1"}`, `{"name":"cross:1e9:1"}`,
		`{"points":[[0,0],[1,0],[0,1]]}`,
		`{"points":[[0]]}`,
		`{"points":[[]]}`,        // zero-dimensional
		`{"points":[[0,0],[1]]}`, // mixed dims
		`{"points":[[1,1]]}`,     // missing origin
		`{"points":[` + bigPointList(513) + `]}`,
		`{"points":[[` + strings.Repeat("0,", 40) + `0]]}`, // 41-dim point
		`{}`, `not json`, `{"name":`, `[]`, `{"name":""}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		tile, err := DecodeTileSpec(data)
		if err != nil {
			if tile != nil {
				t.Fatal("error with non-nil tile")
			}
			return
		}
		if tile == nil {
			t.Fatal("nil tile without error")
		}
		if tile.Size() < 1 || tile.Size() > maxTilePoints {
			t.Fatalf("accepted tile with %d points, limit %d", tile.Size(), maxTilePoints)
		}
		if tile.Dim() < 1 || tile.Dim() > maxTileDim {
			t.Fatalf("accepted tile with dimension %d, limit %d", tile.Dim(), maxTileDim)
		}
	})
}

// bigPointList renders n copies of the origin for oversized-tile seeds.
func bigPointList(n int) string {
	parts := make([]string, n)
	for i := range parts {
		parts[i] = "[0,0]"
	}
	return strings.Join(parts, ",")
}

// TestDecodeBatchRequestLimitBoundaries pins the exact boundary
// semantics the fuzz property relies on: at the limit passes, one past
// the limit errors with ErrLimit.
func TestDecodeBatchRequestLimitBoundaries(t *testing.T) {
	mkPoints := func(n int) []byte {
		pts := make([][]int, n)
		for i := range pts {
			pts[i] = []int{i, i}
		}
		body, err := json.Marshal(map[string]any{"points": pts})
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	lim := Limits{MaxBatch: 4, MaxWindow: 9}
	if _, _, err := DecodeBatchRequest(mkPoints(4), lim); err != nil {
		t.Fatalf("batch at limit rejected: %v", err)
	}
	if _, _, err := DecodeBatchRequest(mkPoints(5), lim); !errorsIsLimit(err) {
		t.Fatalf("batch over limit: got %v, want ErrLimit", err)
	}
	win := []byte(`{"window":{"lo":[0,0],"hi":[2,2]}}`) // 9 points
	if _, w, err := DecodeBatchRequest(win, lim); err != nil || w == nil {
		t.Fatalf("window at limit rejected: %v", err)
	}
	win = []byte(`{"window":{"lo":[0,0],"hi":[2,3]}}`) // 12 points
	if _, _, err := DecodeBatchRequest(win, lim); !errorsIsLimit(err) {
		t.Fatalf("window over limit: got %v, want ErrLimit", err)
	}
	if _, _, err := DecodeBatchRequest([]byte(fmt.Sprintf(`{"points":%s}`, "[]")), lim); err == nil {
		t.Fatal("empty request accepted")
	}
}

func errorsIsLimit(err error) bool { return errors.Is(err, ErrLimit) }

// FuzzDecodeMutateRequest checks the mutate funnel: never panic, and
// every accepted request has a bounded window, a bounded event list, and
// only well-formed in-margin events.
func FuzzDecodeMutateRequest(f *testing.F) {
	seeds := []string{
		`{"plan":{"tile":{"name":"cross:2:1"}},"window":{"lo":[0,0],"hi":[4,4]},"events":[{"op":"leave","p":[1,1]}]}`,
		`{"window":{"lo":[0,0],"hi":[4,4]},"events":[{"op":"move","p":[0,0],"to":[5,5]}],"epoch":3}`,
		`{"window":{"lo":[0,0],"hi":[4,4]},"full":true}`,
		`{"window":{"lo":[0,0],"hi":[4,4]},"events":[{"op":"join","p":[100000,0]}]}`,
		`{"window":{"lo":[4],"hi":[-4]},"events":[{"op":"leave","p":[0]}]}`,
		`{"events":[{"op":"leave","p":[0,0]}]}`,
		`not json`, `{"window":`, `{}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s), 8, 64)
	}
	f.Fuzz(func(t *testing.T, data []byte, maxBatch, maxWindow int) {
		lim := Limits{MaxBatch: maxBatch, MaxWindow: maxWindow}.withDefaults()
		req, win, events, err := DecodeMutateRequest(data, Limits{MaxBatch: maxBatch, MaxWindow: maxWindow})
		if err != nil {
			return
		}
		if size, serr := win.SizeChecked(); serr != nil || size > lim.MaxWindow {
			t.Fatalf("accepted window %s over limit %d", win, lim.MaxWindow)
		}
		if len(events) > lim.MaxBatch {
			t.Fatalf("accepted %d events over limit %d", len(events), lim.MaxBatch)
		}
		if len(events) == 0 && !req.Full {
			t.Fatal("accepted an empty non-full request")
		}
		for i, ev := range events {
			if ev.P.Dim() != win.Dim() {
				t.Fatalf("event %d dimension %d ≠ window %d", i, ev.P.Dim(), win.Dim())
			}
			for a := range ev.P {
				if ev.P[a] < win.Lo[a]-MutateMargin || ev.P[a] > win.Hi[a]+MutateMargin {
					t.Fatalf("event %d outside margin: %v in %s", i, ev.P, win)
				}
			}
		}
	})
}
