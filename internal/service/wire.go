package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

// ErrSpec indicates a malformed or unresolvable wire-level request.
var ErrSpec = errors.New("service: invalid spec")

// ErrLimit indicates a well-formed request that exceeds a server bound
// (batch size, window expansion); the HTTP layer maps it to 413.
var ErrLimit = errors.New("service: request exceeds limit")

// maxTilePoints bounds how many points a wire-level tile spec may
// materialize. Interference neighborhoods are small (the paper's are
// ≤ 25 points); the bound exists so an unauthenticated request cannot
// make the server build a gigantic prototile or run an unbounded tiling
// search.
const maxTilePoints = 512

// maxTileDim bounds the dimension of explicit tile points, named tiles
// (cross:<d>:..., chebyshev:<d>:...), and cubic:<d> lattices — one
// constant for every wire-level dimension check. Without it a single
// point with a huge coordinate count would later drive a d×d
// lattice-basis allocation.
const maxTileDim = 16

// boxWithin reports whether side^dim stays ≤ maxTilePoints without
// overflowing — the cheap pre-materialization size check for
// box-bounded tiles.
func boxWithin(side, dim int) bool {
	size := 1
	for i := 0; i < dim; i++ {
		size *= side
		if size > maxTilePoints {
			return false
		}
	}
	return true
}

// PlanSpec names a (lattice, prototile) pair over the wire. The lattice
// is optional: it defaults to the square lattice in dimension 2 and to
// Z^d otherwise (the lattice only fixes metric context — scheduling is
// purely coordinate-based).
type PlanSpec struct {
	// Lattice is "square", "hexagonal", or "cubic:<d>"; empty selects a
	// default matching the tile's dimension.
	Lattice string `json:"lattice,omitempty"`
	// Tile is the interference neighborhood N.
	Tile TileSpec `json:"tile"`
}

// TileSpec is a prototile over the wire: either a catalog name or an
// explicit point list (which must contain the origin). Exactly one of
// the two must be set.
//
// Catalog grammar (matching internal/prototile's constructors):
//
//	cross:<d>:<r>       d-dimensional von Neumann ball of radius r
//	chebyshev:<d>:<r>   d-dimensional Chebyshev (Moore) ball of radius r
//	rect:<w>:<h>        w×h rectangle
//	ball:<r>            Euclidean ball of radius r on the plan's lattice
//	tetromino:<X>       X ∈ {I,O,T,S,Z,L,J}
//	pentomino:<X>       the 12 one-sided pentominoes
//	ltromino            the L-tromino
//	directional         the paper's Figure 2 directional neighborhood
type TileSpec struct {
	Name   string  `json:"name,omitempty"`
	Points [][]int `json:"points,omitempty"`
}

// WindowSpec is the wire form of a lattice.Window: inclusive corners.
type WindowSpec struct {
	Lo []int `json:"lo"`
	Hi []int `json:"hi"`
}

// Window validates and converts the spec.
func (ws WindowSpec) Window() (lattice.Window, error) {
	return lattice.NewWindow(lattice.Point(ws.Lo), lattice.Point(ws.Hi))
}

// Resolve materializes the spec into a lattice and prototile. It does
// not compile a plan — that is the registry's job — so resolution stays
// cheap enough to run per request just to derive the cache signature.
func (s PlanSpec) Resolve() (*lattice.Lattice, *prototile.Tile, error) {
	if s.Tile.Name != "" && len(s.Tile.Points) > 0 {
		return nil, nil, fmt.Errorf("%w: tile has both a name and explicit points", ErrSpec)
	}
	if s.Tile.Name == "" && len(s.Tile.Points) == 0 {
		return nil, nil, fmt.Errorf("%w: tile is empty", ErrSpec)
	}
	// Euclidean balls are metric constructions: they need the lattice
	// first. Everything else fixes the dimension, which picks the
	// default lattice.
	if r, ok := strings.CutPrefix(s.Tile.Name, "ball:"); ok {
		lat, err := resolveLattice(s.Lattice, 2)
		if err != nil {
			return nil, nil, err
		}
		radius, perr := strconv.ParseFloat(r, 64)
		if perr != nil || math.IsNaN(radius) || radius < 0 ||
			!boxWithin(2*int(math.Ceil(min(radius, 1<<20)))+1, lat.Dim()) {
			return nil, nil, fmt.Errorf("%w: ball radius %q", ErrSpec, r)
		}
		return lat, prototile.EuclideanBall(lat, radius), nil
	}
	tile, err := s.Tile.resolve()
	if err != nil {
		return nil, nil, err
	}
	lat, err := resolveLattice(s.Lattice, tile.Dim())
	if err != nil {
		return nil, nil, err
	}
	if lat.Dim() != tile.Dim() {
		return nil, nil, fmt.Errorf("%w: lattice dimension %d ≠ tile dimension %d",
			ErrSpec, lat.Dim(), tile.Dim())
	}
	return lat, tile, nil
}

func resolveLattice(name string, dim int) (*lattice.Lattice, error) {
	switch {
	case name == "":
		if dim == 2 {
			return lattice.Square(), nil
		}
		return lattice.Cubic(dim), nil
	case name == "square":
		return lattice.Square(), nil
	case name == "hexagonal":
		return lattice.Hexagonal(), nil
	case strings.HasPrefix(name, "cubic:"):
		d, err := strconv.Atoi(name[len("cubic:"):])
		if err != nil || d < 1 || d > maxTileDim {
			return nil, fmt.Errorf("%w: lattice %q", ErrSpec, name)
		}
		return lattice.Cubic(d), nil
	}
	return nil, fmt.Errorf("%w: unknown lattice %q", ErrSpec, name)
}

func (ts TileSpec) resolve() (*prototile.Tile, error) {
	if len(ts.Points) > 0 {
		if len(ts.Points) > maxTilePoints {
			return nil, fmt.Errorf("%w: tile has %d points, limit %d", ErrSpec, len(ts.Points), maxTilePoints)
		}
		pts := make([]lattice.Point, len(ts.Points))
		for i, c := range ts.Points {
			if len(c) == 0 || len(c) > maxTileDim {
				return nil, fmt.Errorf("%w: tile point %d has dimension %d, want 1..%d",
					ErrSpec, i, len(c), maxTileDim)
			}
			pts[i] = lattice.Pt(c...)
		}
		t, err := prototile.New("custom", pts...)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSpec, err)
		}
		return t, nil
	}
	name, arg, _ := strings.Cut(ts.Name, ":")
	switch name {
	case "cross", "chebyshev":
		d, r, err := twoInts(arg)
		if err != nil || d < 1 || d > maxTileDim || r < 0 || r > maxTilePoints || !boxWithin(2*r+1, d) {
			return nil, fmt.Errorf("%w: tile %q", ErrSpec, ts.Name)
		}
		if name == "cross" {
			return prototile.Cross(d, r), nil
		}
		return prototile.ChebyshevBall(d, r), nil
	case "rect":
		w, h, err := twoInts(arg)
		if err != nil || w < 1 || h < 1 || w > maxTilePoints || h > maxTilePoints || w*h > maxTilePoints {
			return nil, fmt.Errorf("%w: tile %q", ErrSpec, ts.Name)
		}
		return prototile.Rect(w, h), nil
	case "tetromino":
		t, err := prototile.Tetromino(arg)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSpec, err)
		}
		return t, nil
	case "pentomino":
		t, err := prototile.Pentomino(arg)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrSpec, err)
		}
		return t, nil
	case "ltromino":
		return prototile.LTromino(), nil
	case "directional":
		return prototile.Directional(), nil
	}
	return nil, fmt.Errorf("%w: unknown tile %q", ErrSpec, ts.Name)
}

func twoInts(s string) (int, int, error) {
	a, b, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("want <a>:<b>, got %q", s)
	}
	x, err := strconv.Atoi(a)
	if err != nil {
		return 0, 0, err
	}
	y, err := strconv.Atoi(b)
	if err != nil {
		return 0, 0, err
	}
	return x, y, nil
}

// --- Request/response bodies ---------------------------------------------

// PlanRequest is the body of POST /v1/plan.
type PlanRequest struct {
	Plan PlanSpec `json:"plan"`
}

// PlanResponse describes a compiled plan.
type PlanResponse struct {
	// Signature is the canonical cache key; clients may log or compare
	// it but always re-send the full spec (the server cache is an LRU).
	Signature string `json:"signature"`
	Lattice   string `json:"lattice"`
	Dim       int    `json:"dim"`
	// Slots is the schedule period m = |N| (provably optimal).
	Slots int `json:"slots"`
	// Period is the HNF basis of the tiling's translate sublattice.
	Period [][]int64 `json:"period"`
	// Tile is the prototile's point list in canonical order; slot k
	// belongs to coset Tile[k] + T.
	Tile [][]int `json:"tile"`
}

// BatchRequest is the body of POST /v1/slots:batch and
// /v1/maybroadcast:batch. Exactly one of Points and Window must be set;
// Window is shorthand for its points in lexicographic order. T is the
// query time for maybroadcast (ignored by slots).
type BatchRequest struct {
	Plan   PlanSpec    `json:"plan"`
	Points [][]int     `json:"points,omitempty"`
	Window *WindowSpec `json:"window,omitempty"`
	T      int64       `json:"t,omitempty"`
}

// SlotsResponse answers a slots batch: Slots[i] is the slot of the i-th
// queried point.
type SlotsResponse struct {
	M     int     `json:"m"`
	Slots []int32 `json:"slots"`
}

// MayResponse answers a maybroadcast batch: May[i] reports whether the
// i-th queried point's sensor may broadcast at time T.
type MayResponse struct {
	M   int    `json:"m"`
	T   int64  `json:"t"`
	May []bool `json:"may"`
}

// ErrorResponse is the body of every non-2xx reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// --- Decoding entry points ------------------------------------------------
//
// These are the single funnel between untrusted bytes and the engine, so
// they are also the package's native fuzz targets (FuzzDecodeBatchRequest,
// FuzzDecodeTileSpec): whatever the input, they must return an error —
// never panic, never hand oversized work to the engine.

// Limits bounds wire-level batch decoding. Zero or negative values
// select the server defaults.
type Limits struct {
	// MaxBatch caps the number of explicit points per batch.
	MaxBatch int
	// MaxWindow caps the number of points a window shorthand expands to.
	MaxWindow int
}

func (l Limits) withDefaults() Limits {
	if l.MaxBatch <= 0 {
		l.MaxBatch = defaultMaxBatch
	}
	if l.MaxWindow <= 0 {
		l.MaxWindow = defaultMaxWindow
	}
	return l
}

// DecodeBatchRequest parses a batch request body and enforces its
// structural contract: valid JSON, exactly one of points and window set,
// the batch within lim.MaxBatch, and the window shorthand well-formed
// and within lim.MaxWindow points. On success the validated window (nil
// for explicit-point batches) is returned alongside the request.
// Violations yield errors wrapping ErrSpec (malformed, 400) or ErrLimit
// (too large, 413).
func DecodeBatchRequest(data []byte, lim Limits) (BatchRequest, *lattice.Window, error) {
	lim = lim.withDefaults()
	var req BatchRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return BatchRequest{}, nil, fmt.Errorf("%w: decoding request: %v", ErrSpec, err)
	}
	switch {
	case len(req.Points) > 0 && req.Window == nil:
		if len(req.Points) > lim.MaxBatch {
			return BatchRequest{}, nil, fmt.Errorf("%w: batch of %d points exceeds limit %d",
				ErrLimit, len(req.Points), lim.MaxBatch)
		}
		return req, nil, nil
	case req.Window != nil && len(req.Points) == 0:
		win, err := req.Window.Window()
		if err != nil {
			return BatchRequest{}, nil, fmt.Errorf("%w: %v", ErrSpec, err)
		}
		size, err := win.SizeChecked()
		if err != nil || size > lim.MaxWindow {
			return BatchRequest{}, nil, fmt.Errorf("%w: window %s exceeds limit %d points",
				ErrLimit, win, lim.MaxWindow)
		}
		return req, &win, nil
	default:
		return BatchRequest{}, nil, fmt.Errorf("%w: exactly one of points and window must be set", ErrSpec)
	}
}

// DecodeTileSpec parses a TileSpec JSON document and resolves it to a
// prototile, enforcing the catalog grammar, the maxTilePoints bound, and
// the maxTileDim bound. Metric ball tiles ("ball:<r>") need a lattice
// and therefore resolve only through PlanSpec.Resolve; here they report
// an unknown tile. All failures wrap ErrSpec.
func DecodeTileSpec(data []byte) (*prototile.Tile, error) {
	var ts TileSpec
	if err := json.Unmarshal(data, &ts); err != nil {
		return nil, fmt.Errorf("%w: decoding tile: %v", ErrSpec, err)
	}
	if ts.Name != "" && len(ts.Points) > 0 {
		return nil, fmt.Errorf("%w: tile has both a name and explicit points", ErrSpec)
	}
	if ts.Name == "" && len(ts.Points) == 0 {
		return nil, fmt.Errorf("%w: tile is empty", ErrSpec)
	}
	return ts.resolve()
}

// HealthResponse is the body of GET /healthz. Plans and Stats are the
// original plan-cache fields; Traffic is the full counter snapshot
// (batch sizes, mutation counts, session stats) added with the dynamic
// subsystem.
type HealthResponse struct {
	OK      bool          `json:"ok"`
	Plans   int           `json:"plans"`
	Stats   RegistryStats `json:"stats"`
	Traffic ServerStats   `json:"traffic"`
}
