// Package binwire implements the primitive layer of the lattice binary
// wire protocol (DESIGN.md §10): length-prefixed frames over
// little-endian byte order, LEB128 varints with zigzag signing, and
// pooled encode buffers. The package is deliberately a leaf — it knows
// nothing about plans, tiles, or HTTP — so internal/service can layer
// the message grammar (requests, streamed responses) on top without an
// import cycle, and the primitives stay independently testable and
// fuzzable.
//
// Frame layout (every message on the wire is a sequence of frames):
//
//	frame := length:u32le type:u8 payload:byte*
//
// where length counts the type byte plus the payload (so length ≥ 1 for
// any well-formed frame, and a reader can skip unknown frame types).
// Within payloads:
//
//	uvarint := LEB128 (7 bits per byte, little-endian, ≤ MaxVarintLen bytes, minimal)
//	svarint := zigzag(v) as uvarint   (0→0, -1→1, 1→2, -2→3, …)
//	string  := len:uvarint bytes
//
// Encoding (Buffer) and decoding (Reader) are both allocation-free in
// steady state: Buffers are pooled and grown once, Readers are values
// over the caller's byte slice with a sticky error in place of
// per-call error returns. Decoders facing untrusted bytes must check
// Reader.Err once at the end (and use the bounded readers — String,
// Count — rather than trusting lengths), which is the same never-panic
// contract as the JSON decode funnel.
package binwire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
)

// ErrMalformed indicates bytes that violate the frame or varint
// grammar: truncated frames, overlong varints, out-of-range counts.
// The service layer maps it to HTTP 400 alongside its ErrSpec.
var ErrMalformed = errors.New("binwire: malformed frame")

// MaxVarintLen is the longest accepted LEB128 encoding (10 bytes covers
// every uint64; anything longer is rejected as overlong rather than
// silently wrapped). Decoding also rejects non-minimal encodings (e.g.
// 0x80 0x00 for 0), so every value has exactly one wire form and frames
// can be compared byte-wise.
const MaxVarintLen = 10

// FrameHeaderLen is the byte length of a frame header: the u32le length
// prefix plus the type byte it counts.
const FrameHeaderLen = 5

// Frame types of the lattice binary protocol. Requests are a single
// frame; responses are a frame sequence terminated by FrameEnd.
// Type bytes with the high bit set flow server→client.
const (
	// FrameBatchSlots is a slots batch request (DESIGN.md §10).
	FrameBatchSlots byte = 0x01
	// FrameBatchMay is a may-broadcast batch request.
	FrameBatchMay byte = 0x02
	// FrameMutate is a dynamic-session mutation request.
	FrameMutate byte = 0x03
	// FrameSubscribe is a session-subscription request (DESIGN.md §13):
	// it opens a server-push delta stream instead of a one-shot reply.
	FrameSubscribe byte = 0x04
	// FrameTraceExt is an optional trace-context extension frame
	// (DESIGN.md §14): a client may prepend it to any request frame to
	// propagate a W3C trace context over the binary codec, so a fleet
	// node joins its caller's trace. Payload is flags:u8 (bit 0 =
	// sampled) + 16 raw trace-ID bytes + 8 raw parent-span-ID bytes.
	// Servers that do not trace strip and ignore it.
	FrameTraceExt byte = 0x05

	// FrameSlotsHead opens a slots response: m and the total count.
	FrameSlotsHead byte = 0x81
	// FrameSlotsChunk carries one run of slot values.
	FrameSlotsChunk byte = 0x82
	// FrameMayHead opens a may-broadcast response: m, t, total count.
	FrameMayHead byte = 0x83
	// FrameMayChunk carries one bit-packed run of may flags.
	FrameMayChunk byte = 0x84
	// FrameMutateResult carries a complete mutate response.
	FrameMutateResult byte = 0x85
	// FrameSubHello opens a subscription stream: the plan signature and
	// the session's epoch, palette size, and live count at attach time.
	FrameSubHello byte = 0x86
	// FrameDelta carries one epoch's slot changes to a subscriber (or a
	// full assignment when its full flag is set — the resync form).
	FrameDelta byte = 0x87
	// FrameSubBye terminates a subscription stream: the subscriber must
	// reconnect and resync (slow-consumer drop, session eviction).
	FrameSubBye byte = 0x88
	// FrameError reports a failed request: HTTP status plus message.
	FrameError byte = 0x7E
	// FrameEnd terminates every response frame sequence (empty payload).
	FrameEnd byte = 0x7F
)

// Zigzag maps a signed value onto the unsigned varint space with small
// magnitudes staying small: 0→0, -1→1, 1→2, -2→3, …
func Zigzag(v int64) uint64 { return uint64(v<<1) ^ uint64(v>>63) }

// Unzigzag inverts Zigzag.
func Unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// --- Encoding -------------------------------------------------------------

// Buffer accumulates frames for one response or request. The zero value
// is ready to use; Get/Put pool buffers so steady-state encoding
// allocates nothing. A Buffer is single-goroutine state.
type Buffer struct {
	b     []byte
	frame int // 1 + offset of the open frame's length prefix; 0 when closed
}

// bufPool recycles encode buffers across requests.
var bufPool = sync.Pool{New: func() any { return new(Buffer) }}

// Get returns a pooled, reset Buffer.
func Get() *Buffer {
	e := bufPool.Get().(*Buffer)
	e.Reset()
	return e
}

// Put returns a Buffer to the pool. The caller must not touch it (or
// any slice obtained from Bytes) afterwards.
func Put(e *Buffer) { bufPool.Put(e) }

// Reset empties the buffer, keeping its backing array.
func (e *Buffer) Reset() {
	e.b = e.b[:0]
	e.frame = 0
}

// Len returns the number of encoded bytes so far (open frame included).
func (e *Buffer) Len() int { return len(e.b) }

// Bytes returns the encoded frames. Valid until the next Reset; do not
// call with a frame still open.
func (e *Buffer) Bytes() []byte { return e.b }

// BeginFrame opens a frame of the given type; EndFrame patches the
// length prefix once the payload is complete. Frames do not nest.
func (e *Buffer) BeginFrame(typ byte) {
	if e.frame != 0 {
		panic("binwire: BeginFrame with a frame already open")
	}
	e.frame = len(e.b) + 1
	e.b = append(e.b, 0, 0, 0, 0, typ)
}

// EndFrame closes the open frame, writing its length prefix.
func (e *Buffer) EndFrame() {
	if e.frame == 0 {
		panic("binwire: EndFrame without an open frame")
	}
	start := e.frame - 1
	binary.LittleEndian.PutUint32(e.b[start:], uint32(len(e.b)-start-4))
	e.frame = 0
}

// Uvarint appends v in LEB128.
func (e *Buffer) Uvarint(v uint64) { e.b = binary.AppendUvarint(e.b, v) }

// Varint appends v zigzagged.
func (e *Buffer) Varint(v int64) { e.b = binary.AppendUvarint(e.b, Zigzag(v)) }

// Byte appends one raw byte.
func (e *Buffer) Byte(c byte) { e.b = append(e.b, c) }

// String appends a length-prefixed string.
func (e *Buffer) String(s string) {
	e.b = binary.AppendUvarint(e.b, uint64(len(s)))
	e.b = append(e.b, s...)
}

// Raw appends bytes verbatim (the caller has encoded them already).
func (e *Buffer) Raw(p []byte) { e.b = append(e.b, p...) }

// --- Decoding -------------------------------------------------------------

// Reader decodes one payload (or a whole frame sequence) from a byte
// slice with a sticky error: after any failure every subsequent read
// returns zero values and Err reports the first failure, so decode
// funnels check the error once. A Reader never copies the input and
// never panics on malformed bytes.
type Reader struct {
	data []byte
	off  int
	err  error
}

// NewReader returns a Reader over data.
func NewReader(data []byte) Reader { return Reader{data: data} }

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Fail records err (if the reader has not already failed) and makes
// every subsequent read a no-op — for message-layer validation errors
// discovered mid-payload.
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Remaining returns the number of unread bytes (0 after a failure).
func (r *Reader) Remaining() int {
	if r.err != nil {
		return 0
	}
	return len(r.data) - r.off
}

// Uvarint reads one LEB128 value, rejecting truncated, overlong
// (>64-bit), and non-minimal encodings — the wire form of a value is
// canonical, so encoded frames can be compared byte-wise.
func (r *Reader) Uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 || n > MaxVarintLen {
		r.Fail(fmt.Errorf("%w: bad uvarint at offset %d", ErrMalformed, r.off))
		return 0
	}
	// A minimal encoding never ends in a zero continuation byte: the
	// last byte carries the most significant bits, so a trailing 0x00
	// means the same value fits in fewer bytes (0x80 0x00 vs 0x00).
	if n > 1 && r.data[r.off+n-1] == 0 {
		r.Fail(fmt.Errorf("%w: non-minimal uvarint at offset %d", ErrMalformed, r.off))
		return 0
	}
	r.off += n
	return v
}

// Varint reads one zigzagged value.
func (r *Reader) Varint() int64 { return Unzigzag(r.Uvarint()) }

// Byte reads one raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.data) {
		r.Fail(fmt.Errorf("%w: truncated at offset %d", ErrMalformed, r.off))
		return 0
	}
	c := r.data[r.off]
	r.off++
	return c
}

// Count reads a uvarint bounded by max, failing (with a wrapped
// ErrMalformed) when the value exceeds it — the guard that keeps
// attacker-chosen counts from sizing allocations or loops.
func (r *Reader) Count(max int, what string) int {
	v := r.Uvarint()
	if r.err != nil {
		return 0
	}
	if max < 0 {
		max = 0
	}
	if v > uint64(max) {
		r.Fail(fmt.Errorf("%w: %s %d exceeds bound %d", ErrMalformed, what, v, max))
		return 0
	}
	return int(v)
}

// String reads a length-prefixed string of at most max bytes. The
// bytes are copied (strings are cold-path identifiers: tile names,
// signatures, error text).
func (r *Reader) String(max int) string {
	n := r.Count(max, "string length")
	if r.err != nil {
		return ""
	}
	if r.off+n > len(r.data) {
		r.Fail(fmt.Errorf("%w: truncated string at offset %d", ErrMalformed, r.off))
		return ""
	}
	s := string(r.data[r.off : r.off+n])
	r.off += n
	return s
}

// Bytes reads n raw bytes, aliasing the input (zero-copy).
func (r *Reader) Bytes(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.Fail(fmt.Errorf("%w: truncated %d-byte run at offset %d", ErrMalformed, n, r.off))
		return nil
	}
	b := r.data[r.off : r.off+n]
	r.off += n
	return b
}

// Frame reads one frame header and returns the frame type plus a Reader
// over exactly its payload, advancing past the frame. The payload
// Reader aliases the input (zero-copy).
func (r *Reader) Frame() (typ byte, payload Reader) {
	if r.err != nil {
		return 0, Reader{err: r.err}
	}
	if r.off+FrameHeaderLen > len(r.data) {
		r.Fail(fmt.Errorf("%w: truncated frame header at offset %d", ErrMalformed, r.off))
		return 0, Reader{err: r.err}
	}
	n := binary.LittleEndian.Uint32(r.data[r.off:])
	if n < 1 || int(n) > len(r.data)-r.off-4 {
		r.Fail(fmt.Errorf("%w: frame length %d exceeds %d available bytes",
			ErrMalformed, n, len(r.data)-r.off-4))
		return 0, Reader{err: r.err}
	}
	typ = r.data[r.off+4]
	payload = Reader{data: r.data[r.off+FrameHeaderLen : r.off+4+int(n)]}
	r.off += 4 + int(n)
	return typ, payload
}

// Done fails the reader (wrapping ErrMalformed) unless every byte has
// been consumed — request frames must not carry trailing garbage.
func (r *Reader) Done() {
	if r.err == nil && r.off != len(r.data) {
		r.Fail(fmt.Errorf("%w: %d trailing bytes after payload", ErrMalformed, len(r.data)-r.off))
	}
}
