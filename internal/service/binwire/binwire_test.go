package binwire

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func TestZigzagRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 2, -2, 63, -64, 1 << 40, -(1 << 40), math.MaxInt64, math.MinInt64} {
		if got := Unzigzag(Zigzag(v)); got != v {
			t.Fatalf("Unzigzag(Zigzag(%d)) = %d", v, got)
		}
	}
	// Small magnitudes must stay small (the compression property the
	// point encodings rely on).
	if Zigzag(0) != 0 || Zigzag(-1) != 1 || Zigzag(1) != 2 || Zigzag(-2) != 3 {
		t.Fatalf("zigzag ordering broken: %d %d %d %d", Zigzag(0), Zigzag(-1), Zigzag(1), Zigzag(-2))
	}
}

func TestFrameRoundTrip(t *testing.T) {
	e := Get()
	defer Put(e)
	e.BeginFrame(FrameSlotsHead)
	e.Uvarint(5)
	e.Varint(-12345)
	e.String("cross:2:1")
	e.Byte(0xAB)
	e.EndFrame()
	e.BeginFrame(FrameEnd)
	e.EndFrame()

	r := NewReader(e.Bytes())
	typ, pay := r.Frame()
	if typ != FrameSlotsHead {
		t.Fatalf("frame type %#x, want %#x", typ, FrameSlotsHead)
	}
	if got := pay.Uvarint(); got != 5 {
		t.Fatalf("uvarint %d, want 5", got)
	}
	if got := pay.Varint(); got != -12345 {
		t.Fatalf("varint %d, want -12345", got)
	}
	if got := pay.String(64); got != "cross:2:1" {
		t.Fatalf("string %q", got)
	}
	if got := pay.Byte(); got != 0xAB {
		t.Fatalf("byte %#x", got)
	}
	pay.Done()
	if pay.Err() != nil {
		t.Fatalf("payload err: %v", pay.Err())
	}
	typ, pay = r.Frame()
	if typ != FrameEnd || pay.Remaining() != 0 {
		t.Fatalf("end frame: type %#x remaining %d", typ, pay.Remaining())
	}
	if r.Remaining() != 0 || r.Err() != nil {
		t.Fatalf("stream not fully consumed: %d left, err %v", r.Remaining(), r.Err())
	}
}

func TestReaderStickyError(t *testing.T) {
	r := NewReader([]byte{0x80}) // truncated uvarint
	if r.Uvarint() != 0 || r.Err() == nil {
		t.Fatal("truncated uvarint accepted")
	}
	// Every later read stays failed and returns zero values.
	if r.Byte() != 0 || r.String(8) != "" || r.Remaining() != 0 {
		t.Fatal("reads after failure not zeroed")
	}
	if !errors.Is(r.Err(), ErrMalformed) {
		t.Fatalf("err %v does not wrap ErrMalformed", r.Err())
	}
}

func TestReaderBounds(t *testing.T) {
	cases := []struct {
		name string
		data []byte
		read func(r *Reader)
	}{
		{"frame header short", []byte{1, 0, 0}, func(r *Reader) { r.Frame() }},
		{"frame length zero", []byte{0, 0, 0, 0, 0}, func(r *Reader) { r.Frame() }},
		{"frame length past end", []byte{9, 0, 0, 0, FrameEnd}, func(r *Reader) { r.Frame() }},
		{"string past end", []byte{5, 'h', 'i'}, func(r *Reader) { r.String(64) }},
		{"string over bound", []byte{7, 'x'}, func(r *Reader) { r.String(3) }},
		{"count over bound", []byte{200, 1}, func(r *Reader) { r.Count(100, "n") }},
		{"trailing garbage", []byte{0, 0}, func(r *Reader) { r.Byte(); r.Done() }},
		{"overlong varint", bytes.Repeat([]byte{0x80}, 11), func(r *Reader) { r.Uvarint() }},
		{"non-minimal varint", []byte{0x80, 0x00}, func(r *Reader) { r.Uvarint() }},
		{"non-minimal varint long", []byte{0xFF, 0x80, 0x00}, func(r *Reader) { r.Uvarint() }},
	}
	for _, c := range cases {
		r := NewReader(c.data)
		c.read(&r)
		if !errors.Is(r.Err(), ErrMalformed) {
			t.Errorf("%s: err = %v, want ErrMalformed", c.name, r.Err())
		}
	}
}

// TestUvarintMaxRoundTrip pins that the minimality check does not
// reject the canonical 10-byte encoding of the largest uint64.
func TestUvarintMaxRoundTrip(t *testing.T) {
	var e Buffer
	e.Uvarint(math.MaxUint64)
	r := NewReader(e.Bytes())
	if got := r.Uvarint(); got != math.MaxUint64 || r.Err() != nil {
		t.Fatalf("max uint64 round trip: %d, err %v", got, r.Err())
	}
}

func TestCountNegativeMax(t *testing.T) {
	r := NewReader([]byte{1})
	if r.Count(-5, "n"); r.Err() == nil {
		t.Fatal("count 1 accepted under negative bound")
	}
}

func TestBufferReuse(t *testing.T) {
	e := Get()
	e.BeginFrame(FrameError)
	e.Uvarint(400)
	e.String("boom")
	e.EndFrame()
	n := e.Len()
	Put(e)
	e2 := Get()
	defer Put(e2)
	if e2.Len() != 0 {
		t.Fatalf("pooled buffer not reset: len %d (was %d)", e2.Len(), n)
	}
}

func TestUnknownFrameSkippable(t *testing.T) {
	e := Get()
	defer Put(e)
	e.BeginFrame(0x60) // unknown type
	e.Uvarint(99)
	e.EndFrame()
	e.BeginFrame(FrameEnd)
	e.EndFrame()
	r := NewReader(e.Bytes())
	typ, _ := r.Frame() // skip unknown payload wholesale
	if typ != 0x60 {
		t.Fatalf("type %#x", typ)
	}
	typ, _ = r.Frame()
	if typ != FrameEnd || r.Err() != nil {
		t.Fatalf("skip landed on %#x, err %v", typ, r.Err())
	}
}
