package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"tilingsched/internal/core"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

func mustPlan(t testing.TB, tile *prototile.Tile) *core.Plan {
	t.Helper()
	plan, err := core.NewPlan(lattice.Cubic(tile.Dim()), tile)
	if err != nil {
		t.Fatalf("NewPlan(%s): %v", tile.Name(), err)
	}
	return plan
}

// TestRegistrySingleflightConcurrent is the registry's concurrency
// contract under the race detector: many goroutines hitting the same and
// different signatures compile each plan exactly once and all read
// correct slots from the shared plan.
func TestRegistrySingleflightConcurrent(t *testing.T) {
	specs := []PlanSpec{
		{Tile: TileSpec{Name: "cross:2:1"}},
		{Tile: TileSpec{Name: "chebyshev:2:1"}},
		{Tile: TileSpec{Name: "rect:3:2"}},
		{Tile: TileSpec{Name: "cross:3:1"}},
	}
	reg := NewRegistry(len(specs))

	// Count real compilations per signature through the Get primitive.
	var compiles [4]atomic.Int64
	const goroutines = 32
	var wg sync.WaitGroup
	var failures atomic.Int64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 8; rep++ {
				si := (g + rep) % len(specs)
				spec := specs[si]
				lat, tile, err := spec.Resolve()
				if err != nil {
					failures.Add(1)
					return
				}
				sig := core.Signature(lat, tile)
				plan, err := reg.Get(sig, func() (*core.Plan, error) {
					compiles[si].Add(1)
					return core.NewPlan(lat, tile)
				})
				if err != nil {
					failures.Add(1)
					return
				}
				// Slot correctness: SlotOf agrees with the schedule period
				// and the tile-point definition slot(n_k) = k.
				for k, n := range plan.Tile().Points() {
					s, err := plan.SlotOf(n)
					if err != nil || s != k {
						failures.Add(1)
						return
					}
				}
				if dst, err := QuerySlots(plan, plan.Tile().Points(), nil); err != nil || len(dst) != plan.Slots() {
					failures.Add(1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if n := failures.Load(); n > 0 {
		t.Fatalf("%d goroutine failures", n)
	}
	for i := range compiles {
		if n := compiles[i].Load(); n != 1 {
			t.Errorf("signature %d compiled %d times, want exactly 1", i, n)
		}
	}
	st := reg.Stats()
	if st.Compilations != int64(len(specs)) {
		t.Errorf("stats report %d compilations, want %d", st.Compilations, len(specs))
	}
	if st.Hits+st.Misses != goroutines*8 {
		t.Errorf("hits %d + misses %d ≠ %d requests", st.Hits, st.Misses, goroutines*8)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	reg := NewRegistry(2)
	get := func(name string) {
		t.Helper()
		if _, err := reg.GetSpec(PlanSpec{Tile: TileSpec{Name: name}}); err != nil {
			t.Fatalf("GetSpec(%s): %v", name, err)
		}
	}
	get("cross:2:1")     // cache: cross
	get("chebyshev:2:1") // cache: chebyshev, cross
	get("cross:2:1")     // hit; cache: cross, chebyshev
	get("rect:3:2")      // evicts chebyshev; cache: rect, cross
	get("cross:2:1")     // still a hit
	get("chebyshev:2:1") // recompiles

	st := reg.Stats()
	if reg.Len() != 2 {
		t.Errorf("Len = %d, want 2", reg.Len())
	}
	if st.Evictions != 2 {
		t.Errorf("Evictions = %d, want 2 (chebyshev at rect insert, rect at chebyshev reinsert)", st.Evictions)
	}
	if st.Compilations != 4 {
		t.Errorf("Compilations = %d, want 4 (3 distinct + 1 recompile)", st.Compilations)
	}
	if st.Hits != 2 {
		t.Errorf("Hits = %d, want 2", st.Hits)
	}
}

func TestRegistryErrorsNotCached(t *testing.T) {
	reg := NewRegistry(4)
	boom := errors.New("boom")
	calls := 0
	fail := func() (*core.Plan, error) { calls++; return nil, boom }
	for i := 0; i < 3; i++ {
		if _, err := reg.Get("sig", fail); !errors.Is(err, boom) {
			t.Fatalf("Get error = %v, want boom", err)
		}
	}
	if calls != 3 {
		t.Errorf("failed compile ran %d times, want 3 (errors must not be cached)", calls)
	}
	if reg.Len() != 0 {
		t.Errorf("Len = %d after failures, want 0", reg.Len())
	}
	// A later success under the same signature is cached normally.
	plan := mustPlan(t, prototile.Cross(2, 1))
	got, err := reg.Get("sig", func() (*core.Plan, error) { return plan, nil })
	if err != nil || got != plan {
		t.Fatalf("Get after failures = %v, %v", got, err)
	}
	if reg.Len() != 1 {
		t.Errorf("Len = %d, want 1", reg.Len())
	}
}

// TestRegistryCompilePanic pins singleflight panic safety: a panicking
// compile surfaces as an error, wedges nothing, and leaves the
// signature compilable afterwards.
func TestRegistryCompilePanic(t *testing.T) {
	reg := NewRegistry(4)
	_, err := reg.Get("sig", func() (*core.Plan, error) { panic("tiling search exploded") })
	if err == nil || reg.Len() != 0 {
		t.Fatalf("panicking compile: err=%v len=%d, want error and empty cache", err, reg.Len())
	}
	plan := mustPlan(t, prototile.Cross(2, 1))
	got, err := reg.Get("sig", func() (*core.Plan, error) { return plan, nil })
	if err != nil || got != plan {
		t.Fatalf("Get after panic = %v, %v; signature is wedged", got, err)
	}
}

// TestRegistryNotExact maps the service path for inexact tiles: the
// compile error surfaces to the caller and nothing is cached.
func TestRegistryNotExact(t *testing.T) {
	reg := NewRegistry(4)
	// The gap cluster {0, 2e_1} admits no lattice tiling (it needs a
	// union-of-cosets translate set, which core.NewPlan does not build).
	_, err := reg.GetSpec(PlanSpec{Tile: TileSpec{Points: [][]int{{0, 0}, {2, 0}}}})
	if !errors.Is(err, core.ErrNotExact) {
		t.Fatalf("GetSpec(S) error = %v, want ErrNotExact", err)
	}
	if reg.Len() != 0 {
		t.Errorf("Len = %d, want 0", reg.Len())
	}
}

func TestSignatureCanonical(t *testing.T) {
	cross := prototile.Cross(2, 1)
	renamed, err := prototile.New("whatever",
		lattice.Pt(0, 0), lattice.Pt(0, 1), lattice.Pt(0, -1), lattice.Pt(1, 0), lattice.Pt(-1, 0))
	if err != nil {
		t.Fatal(err)
	}
	sq := lattice.Square()
	if core.Signature(sq, cross) != core.Signature(sq, renamed) {
		t.Errorf("signatures differ for equal point sets:\n%s\n%s",
			core.Signature(sq, cross), core.Signature(sq, renamed))
	}
	if core.Signature(sq, cross) == core.Signature(sq, prototile.ChebyshevBall(2, 1)) {
		t.Error("distinct tiles share a signature")
	}
	if core.Signature(sq, cross) == core.Signature(lattice.Hexagonal(), cross) {
		t.Error("distinct lattices share a signature")
	}
	plan := mustPlan(t, prototile.Cross(2, 1))
	if got := plan.Signature(); got != core.Signature(plan.Lattice(), plan.Tile()) {
		t.Errorf("Plan.Signature = %q inconsistent with core.Signature", got)
	}
}

// TestRegistryMemoRejectsMixedSpec pins the memo fast path to pure-name
// specs: a spec carrying both a name and points stays malformed even
// after the name alone has been cached.
func TestRegistryMemoRejectsMixedSpec(t *testing.T) {
	reg := NewRegistry(4)
	if _, err := reg.GetSpec(PlanSpec{Tile: TileSpec{Name: "cross:2:1"}}); err != nil {
		t.Fatal(err)
	}
	mixed := PlanSpec{Tile: TileSpec{Name: "cross:2:1", Points: [][]int{{0, 0}, {5, 5}}}}
	if _, err := reg.GetSpec(mixed); !errors.Is(err, ErrSpec) {
		t.Errorf("warm mixed spec error = %v, want ErrSpec", err)
	}
}

// TestRegistryGetSpecConcurrentDistinct exercises the spec-level entry
// point under the race detector with distinct dimensions in flight.
func TestRegistryGetSpecConcurrentDistinct(t *testing.T) {
	reg := NewRegistry(8)
	var wg sync.WaitGroup
	errs := make(chan error, 24)
	for g := 0; g < 24; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			name := fmt.Sprintf("cross:%d:1", 2+g%3)
			plan, err := reg.GetSpec(PlanSpec{Tile: TileSpec{Name: name}})
			if err != nil {
				errs <- err
				return
			}
			if plan.Slots() != plan.Tile().Size() {
				errs <- fmt.Errorf("%s: slots %d ≠ |N| %d", name, plan.Slots(), plan.Tile().Size())
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if st := reg.Stats(); st.Compilations != 3 {
		t.Errorf("Compilations = %d, want 3", st.Compilations)
	}
}
