package service

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestObserveZeroAlloc is the service layer's zero-overhead guard: the
// instrument wrapper's entire per-request recording (request/error
// counters, latency and phase histograms, batch size, and the warmed
// traffic sketch) must not allocate, or instrumentation would erode
// the engine path's 0 allocs/op contract.
func TestObserveZeroAlloc(t *testing.T) {
	m := newServerMetrics(ServerOptions{})
	tr := &reqTrace{
		sig:      "square|cross:2:1",
		batch:    4096,
		decodeNs: 5 * time.Microsecond,
		engineNs: 80 * time.Microsecond,
		encodeNs: 30 * time.Microsecond,
	}
	// Warm the sketch so the signature is an existing key (steady
	// state: a serving plan's signature is tracked after its first
	// request).
	m.planTraffic.Record(tr.sig, 1)
	if n := testing.AllocsPerRun(1000, func() {
		m.observe(epSlots, codecJSON, 200, 150*time.Microsecond, tr)
		m.observe(epSlots, codecBin, 500, 150*time.Microsecond, tr)
	}); n != 0 {
		t.Fatalf("observe allocates %v per run, want 0", n)
	}
}

// TestSlowSample pins the slow-log gate: below-threshold requests
// never sample, above-threshold ones sample at most once per
// rate-limit interval.
func TestSlowSample(t *testing.T) {
	m := newServerMetrics(ServerOptions{
		SlowThreshold: 10 * time.Millisecond,
		SlowLog:       func(SlowRequest) {},
	})
	now := int64(1_000_000_000_000)
	if m.slowSample(time.Millisecond, now) {
		t.Fatal("fast request sampled")
	}
	if !m.slowSample(20*time.Millisecond, now) {
		t.Fatal("slow request not sampled")
	}
	// Within the rate-limit window: suppressed.
	if m.slowSample(20*time.Millisecond, now+int64(slowLogMinInterval)/2) {
		t.Fatal("rate limit did not suppress")
	}
	// Past the window: sampled again.
	if !m.slowSample(20*time.Millisecond, now+2*int64(slowLogMinInterval)) {
		t.Fatal("sample after the window suppressed")
	}
	// Unconfigured metrics never sample.
	off := newServerMetrics(ServerOptions{})
	if off.slowSample(time.Hour, now) {
		t.Fatal("unconfigured slow log sampled")
	}
}

// TestSlowLogEndToEnd drives a real request through a server with a
// zero-ish threshold and checks the trace carries the request's
// identity and phase split.
func TestSlowLogEndToEnd(t *testing.T) {
	traces := make(chan SlowRequest, 1)
	s := NewServer(NewRegistry(4), ServerOptions{
		SlowThreshold: time.Nanosecond, // everything is slow
		SlowLog: func(sr SlowRequest) {
			select {
			case traces <- sr:
			default:
			}
		},
	})
	body := `{"plan":{"tile":{"name":"cross:2:1"}},"points":[[0,0],[1,2],[3,4]]}`
	req := httptest.NewRequest("POST", "/v1/slots:batch", strings.NewReader(body))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("slots: %d %s", rec.Code, rec.Body)
	}
	select {
	case sr := <-traces:
		if sr.Endpoint != "slots" || sr.Codec != "json" || sr.Status != 200 {
			t.Fatalf("trace identity %+v", sr)
		}
		if sr.BatchPoints != 3 || sr.Signature == "" {
			t.Fatalf("trace payload %+v", sr)
		}
		if sr.Total <= 0 || sr.Engine <= 0 || sr.Decode <= 0 {
			t.Fatalf("trace timings %+v", sr)
		}
	default:
		t.Fatal("no slow trace captured")
	}
}

// TestMetricsExposition checks WriteMetrics end-to-end at the package
// level: served traffic shows up in the exposition with the plans
// gauge set at scrape time.
func TestMetricsExposition(t *testing.T) {
	s := NewServer(NewRegistry(4), ServerOptions{})
	body := `{"plan":{"tile":{"name":"cross:2:1"}},"points":[[0,0],[1,2]]}`
	for i := 0; i < 3; i++ {
		req := httptest.NewRequest("POST", "/v1/slots:batch", strings.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("slots: %d %s", rec.Code, rec.Body)
		}
	}
	var sb strings.Builder
	if err := s.WriteMetrics(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`latticed_requests_total{endpoint="slots",codec="json"} 3`,
		`latticed_registry_misses_total 1`,
		`latticed_registry_hits_total 2`,
		`latticed_plans 1`,
		`latticed_batch_points_count 3`,
		`latticed_batch_points_sum 6`,
		"# TYPE latticed_request_ns histogram",
		`latticed_plan_points_total{signature=`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q\n%s", want, text)
		}
	}
}
