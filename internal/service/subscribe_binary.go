package service

// Binary codec of the push plane (DESIGN.md §13): the FrameSubscribe
// request grammar and the server→client stream frames (SubHello, Delta,
// SubBye). The request funnel enforces exactly the contract of
// DecodeSubscribeRequest (well-formed window within MaxWindow,
// ErrSpec→400 / ErrLimit→413, never panic) and is fuzzed alongside it
// by FuzzDecodeSubscribeRequest. The client side is an incremental
// frame reader over the response body whose allocation is bounded by
// the bytes actually received — a malicious length prefix or change
// count cannot amplify allocation (FuzzSubscribeStream pins this).

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"time"

	"tilingsched/internal/lattice"
	"tilingsched/internal/service/binwire"
)

// Subscribe request flag bits.
const binSubHasEpoch byte = 1 << 0

// maxSubFrameLen caps a subscription stream frame's declared length on
// the client side: large enough for a full-resync delta of the largest
// admissible window, small enough that a corrupt length prefix fails
// fast instead of looping over gigabytes.
const maxSubFrameLen = 64 << 20

// subReadChunk is the client reader's growth step: frame payloads are
// read (and their buffer grown) in chunks of at most this many bytes,
// so allocation tracks bytes received, never the declared length.
const subReadChunk = 64 << 10

// BinSubscribe is a decoded binary subscribe request: the session
// address plus the optional resume epoch (SubscribeRequest semantics).
type BinSubscribe struct {
	// Plan names the session's plan (spec or signature reference).
	Plan BinPlanRef
	// Window is the session window, validated against MaxWindow.
	Window lattice.Window
	// Epoch is the client's last applied epoch, meaningful iff HasEpoch.
	Epoch uint64
	// HasEpoch reports whether the request pinned a resume epoch.
	HasEpoch bool
}

// DecodeBinarySubscribe parses one binary subscribe request frame under
// the never-panic funnel contract: a well-formed window within
// lim.MaxWindow and no trailing bytes. Violations wrap ErrSpec (400) or
// ErrLimit (413).
func DecodeBinarySubscribe(data []byte, lim Limits) (BinSubscribe, error) {
	lim = lim.withDefaults()
	stream := binwire.NewReader(data)
	typ, r := stream.Frame()
	stream.Done()
	if stream.Err() != nil {
		return BinSubscribe{}, failSpec(&stream)
	}
	if typ != binwire.FrameSubscribe {
		return BinSubscribe{}, fmt.Errorf("%w: frame type %#x is not a subscribe request", ErrSpec, typ)
	}
	var req BinSubscribe
	var err error
	if req.Plan, err = decodePlanRef(&r); err != nil {
		return BinSubscribe{}, err
	}
	if req.Window, err = decodeWindow(&r, lim.MaxWindow, nil); err != nil {
		return BinSubscribe{}, err
	}
	flags := r.Byte()
	if flags&binSubHasEpoch != 0 {
		req.Epoch = r.Uvarint()
		req.HasEpoch = true
	}
	r.Done()
	if r.Err() != nil {
		return BinSubscribe{}, failSpec(&r)
	}
	return req, nil
}

// EncodeSubscribeBinary appends the binary frame of a subscribe request
// to e. A non-empty sig encodes a plan-by-signature reference instead
// of req.Plan.
func EncodeSubscribeBinary(e *binwire.Buffer, req SubscribeRequest, sig string) {
	e.BeginFrame(binwire.FrameSubscribe)
	encodePlanRef(e, req.Plan, sig)
	encodeWindowSpec(e, req.Window)
	var flags byte
	if req.Epoch != nil {
		flags |= binSubHasEpoch
	}
	e.Byte(flags)
	if req.Epoch != nil {
		e.Uvarint(*req.Epoch)
	}
	e.EndFrame()
}

// encodeSubHello appends the stream-opening hello frame.
func encodeSubHello(e *binwire.Buffer, h SubscribeHello) {
	e.BeginFrame(binwire.FrameSubHello)
	e.String(h.Signature)
	e.Uvarint(h.Epoch)
	e.Uvarint(uint64(h.M))
	e.Uvarint(uint64(h.Alive))
	e.EndFrame()
}

// Delta frame flag bits.
const binDeltaFull byte = 1 << 0

// encodeDeltaFrame appends one delta frame: epoch, m, alive, flags,
// then the change set as (count, dim, per-change coordinates + slot).
func encodeDeltaFrame(e *binwire.Buffer, d *Delta) {
	e.BeginFrame(binwire.FrameDelta)
	e.Uvarint(d.Epoch)
	e.Uvarint(uint64(d.M))
	e.Uvarint(uint64(d.Alive))
	var flags byte
	if d.Full {
		flags |= binDeltaFull
	}
	e.Byte(flags)
	e.Uvarint(uint64(len(d.Changed)))
	dim := 0
	if len(d.Changed) > 0 {
		dim = len(d.Changed[0].P)
	}
	e.Uvarint(uint64(dim))
	for _, ch := range d.Changed {
		for a := 0; a < dim; a++ {
			v := 0
			if a < len(ch.P) {
				v = ch.P[a]
			}
			e.Varint(int64(v))
		}
		e.Varint(int64(ch.Slot))
	}
	e.EndFrame()
}

// encodeSubBye appends the terminal frame: the stream is over and the
// client must reconnect and resync.
func encodeSubBye(e *binwire.Buffer, epoch uint64, reason string) {
	e.BeginFrame(binwire.FrameSubBye)
	e.Uvarint(epoch)
	e.String(reason)
	e.EndFrame()
}

// decodeSubHello parses a hello frame payload.
func decodeSubHello(r *binwire.Reader) (SubscribeHello, error) {
	var h SubscribeHello
	h.Signature = r.String(maxWireSig)
	h.Epoch = r.Uvarint()
	h.M = r.Count(math.MaxInt32, "m")
	h.Alive = r.Count(math.MaxInt32, "alive")
	r.Done()
	if r.Err() != nil {
		return SubscribeHello{}, failSpec(r)
	}
	return h, nil
}

// decodeDeltaFrame parses one delta frame payload into the JSON-shaped
// stream element. The change-set pre-allocation is bounded by what the
// payload could actually hold (one varint byte per coordinate and
// slot), so a malicious count cannot amplify allocation.
func decodeDeltaFrame(r *binwire.Reader) (SubscribeDelta, error) {
	var d SubscribeDelta
	d.Epoch = r.Uvarint()
	d.M = r.Count(math.MaxInt32, "m")
	d.Alive = r.Count(math.MaxInt32, "alive")
	flags := r.Byte()
	d.Full = flags&binDeltaFull != 0
	count := r.Count(math.MaxInt32, "change count")
	dim := r.Count(maxTileDim, "change dimension")
	if r.Err() != nil {
		return SubscribeDelta{}, failSpec(r)
	}
	capHint := count
	if most := r.Remaining() / (1 + dim); capHint > most {
		capHint = most
	}
	d.Changed = make([]ChangeSpec, 0, capHint)
	for i := 0; i < count && r.Err() == nil; i++ {
		p := make([]int, dim)
		for a := 0; a < dim; a++ {
			p[a] = int(r.Varint())
		}
		d.Changed = append(d.Changed, ChangeSpec{P: p, Slot: int(r.Varint())})
	}
	r.Done()
	if r.Err() != nil {
		return SubscribeDelta{}, failSpec(r)
	}
	return d, nil
}

// handleSubscribeBin is the binary-codec subscribe handler: same attach
// and relay logic as handleSubscribe, framed as SubHello, Delta*, and —
// on server-side termination — SubBye + End. Pre-stream failures answer
// an Error frame; mid-stream failures end the stream without an End
// frame (the truncation is the client's signal, as on the batch path).
func (s *Server) handleSubscribeBin(w http.ResponseWriter, r *http.Request, tr *reqTrace) {
	decodeStart := time.Now()
	buf := s.bufs.Get().(*queryBuf)
	defer s.putBuf(buf)
	if !s.readBin(w, r, buf) {
		return
	}
	body := s.joinTraceExt(buf.body, epSubscribe, tr)
	req, err := DecodeBinarySubscribe(body, s.limits())
	if err != nil {
		writeBinErr(w, wireStatus(err), err.Error())
		return
	}
	plan, ok := s.planBin(w, req.Plan)
	if !ok {
		return
	}
	tr.sig = plan.Signature()
	tr.decodeNs = time.Since(decodeStart)
	if req.Window.Dim() != plan.Tile().Dim() {
		writeBinErr(w, http.StatusBadRequest,
			fmt.Sprintf("window dimension %d ≠ plan dimension %d", req.Window.Dim(), plan.Tile().Dim()))
		return
	}
	feed, status, err := s.subscribeAttach(plan, req.Window, req.HasEpoch, req.Epoch)
	if err != nil {
		writeBinErr(w, status, err.Error())
		return
	}
	defer feed.Close()

	rc := http.NewResponseController(w)
	_ = rc.SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", BinaryContentType)
	w.WriteHeader(http.StatusOK)
	e := binwire.Get()
	defer binwire.Put(e)
	send := func() bool {
		if _, err := w.Write(e.Bytes()); err != nil {
			return false
		}
		e.Reset()
		return rc.Flush() == nil
	}
	encodeSubHello(e, feed.Hello)
	if !send() {
		return
	}
	last := feed.Hello.Epoch
	for _, d := range feed.Catch {
		encodeDeltaFrame(e, d)
		if !send() {
			return
		}
		s.markDelivered(feed.sub, d)
		if d.Epoch > last {
			last = d.Epoch
		}
	}
	tr.batch = len(feed.Catch)
	ctx := r.Context()
	for {
		select {
		case d, open := <-feed.C:
			if !open {
				encodeSubBye(e, last, feed.Reason())
				e.BeginFrame(binwire.FrameEnd)
				e.EndFrame()
				send()
				return
			}
			if !d.Full && d.Epoch <= last {
				continue
			}
			encodeDeltaFrame(e, d)
			if !send() {
				return
			}
			s.markDelivered(feed.sub, d)
			if d.Epoch > last {
				last = d.Epoch
			}
			tr.batch++
		case <-ctx.Done():
			return
		}
	}
}

// --- Client-side stream reader --------------------------------------------

// SubscribeStream incrementally decodes a subscription response stream
// (client side) in either codec: the binary frame sequence under
// BinaryContentType, newline-delimited JSON otherwise. It reads frames
// as they arrive — Next blocks until the server pushes the next delta —
// and bounds its buffering by bytes actually received. Used by the
// subscriber oracle, the restart tests, and cmd/bench's push modes; a
// single-goroutine value.
type SubscribeStream struct {
	bin   bool
	br    *bufio.Reader
	dec   *json.Decoder
	hello SubscribeHello
	buf   []byte
}

// ErrStreamEnded reports an orderly server-side stream termination: the
// server sent its terminal frame and the subscriber must reconnect and
// resync. The accompanying SubscribeDelta carries the reason in Bye.
var ErrStreamEnded = errors.New("service: subscription ended by server")

// OpenSubscribeStream wraps a subscription response body and reads the
// opening hello. contentType selects the codec (BinaryContentType for
// frames, anything else for ndjson). A binary Error frame in place of
// the hello decodes into *WireError.
func OpenSubscribeStream(r io.Reader, contentType string) (*SubscribeStream, error) {
	st := &SubscribeStream{bin: contentType == BinaryContentType}
	if st.bin {
		st.br = bufio.NewReader(r)
		typ, payload, err := st.readFrame()
		if err != nil {
			return nil, err
		}
		pr := binwire.NewReader(payload)
		switch typ {
		case binwire.FrameError:
			return nil, decodeErrorFrame(&pr)
		case binwire.FrameSubHello:
			h, err := decodeSubHello(&pr)
			if err != nil {
				return nil, err
			}
			st.hello = h
			return st, nil
		}
		return nil, fmt.Errorf("%w: expected hello, got frame %#x", ErrSpec, typ)
	}
	st.dec = json.NewDecoder(r)
	if err := st.dec.Decode(&st.hello); err != nil {
		return nil, fmt.Errorf("%w: decoding hello: %v", ErrSpec, err)
	}
	return st, nil
}

// Hello returns the stream's opening element.
func (st *SubscribeStream) Hello() SubscribeHello { return st.hello }

// Next blocks for the next stream element. A delta with a non-empty Bye
// (or a binary SubBye frame) is returned alongside ErrStreamEnded; an
// abrupt connection loss surfaces the underlying read error (io.EOF,
// io.ErrUnexpectedEOF).
func (st *SubscribeStream) Next() (SubscribeDelta, error) {
	if !st.bin {
		var d SubscribeDelta
		if err := st.dec.Decode(&d); err != nil {
			return SubscribeDelta{}, err
		}
		if d.Bye != "" {
			return d, ErrStreamEnded
		}
		return d, nil
	}
	for {
		typ, payload, err := st.readFrame()
		if err != nil {
			return SubscribeDelta{}, err
		}
		pr := binwire.NewReader(payload)
		switch typ {
		case binwire.FrameDelta:
			return decodeDeltaFrame(&pr)
		case binwire.FrameSubBye:
			var d SubscribeDelta
			d.Epoch = pr.Uvarint()
			d.Bye = pr.String(maxWireErrMsg)
			pr.Done()
			if pr.Err() != nil {
				return SubscribeDelta{}, failSpec(&pr)
			}
			return d, ErrStreamEnded
		case binwire.FrameError:
			return SubscribeDelta{}, decodeErrorFrame(&pr)
		case binwire.FrameEnd:
			return SubscribeDelta{}, io.EOF
		}
		// Unknown frame type: skip (forward compatibility).
	}
}

// readFrame reads one frame header and payload from the stream. The
// payload buffer is reused across frames and grown in subReadChunk
// steps as bytes arrive, so a corrupt length prefix costs at most one
// chunk of allocation before the read fails.
func (st *SubscribeStream) readFrame() (byte, []byte, error) {
	var hdr [binwire.FrameHeaderLen]byte
	if _, err := io.ReadFull(st.br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 1 || n > maxSubFrameLen {
		return 0, nil, fmt.Errorf("%w: frame length %d out of range", binwire.ErrMalformed, n)
	}
	typ := hdr[4]
	need := int(n) - 1
	st.buf = st.buf[:0]
	for need > 0 {
		chunk := min(need, subReadChunk)
		off := len(st.buf)
		if cap(st.buf) < off+chunk {
			grown := make([]byte, off, off+chunk)
			copy(grown, st.buf)
			st.buf = grown
		}
		st.buf = st.buf[:off+chunk]
		if _, err := io.ReadFull(st.br, st.buf[off:]); err != nil {
			return 0, nil, err
		}
		need -= chunk
	}
	return typ, st.buf, nil
}
