package service

import (
	"fmt"

	"tilingsched/internal/core"
	"tilingsched/internal/lattice"
)

// The batch engine answers many slot queries against one compiled plan.
// Results are appended to a caller-supplied destination slice (pass
// dst[:0] to reuse its backing array), so a warm caller performs zero
// allocations per query: each lookup is one in-place HNF coset reduction
// plus one dense table read (see internal/tiling's cosetTable). Compiled
// plans are immutable after construction, making every function here
// safe for any number of concurrent readers of the same plan.

// QuerySlots appends the slot of each point to dst and returns it.
// On error (a point of the wrong dimension) the partial dst is returned
// alongside the error; entries already appended remain valid.
func QuerySlots(p *core.Plan, pts []lattice.Point, dst []int32) ([]int32, error) {
	for _, pt := range pts {
		s, err := p.SlotOf(pt)
		if err != nil {
			return dst, err
		}
		dst = append(dst, int32(s))
	}
	return dst, nil
}

// QueryWindowSlots appends the slot of every window point, in the
// window's lexicographic point order (Window.IndexOf order), to dst.
func QueryWindowSlots(p *core.Plan, w lattice.Window, dst []int32) ([]int32, error) {
	if w.Dim() != p.Tile().Dim() {
		return dst, fmt.Errorf("service: window dimension %d ≠ plan dimension %d", w.Dim(), p.Tile().Dim())
	}
	var err error
	w.Each(func(pt lattice.Point) bool {
		var s int
		s, err = p.SlotOf(pt)
		if err != nil {
			return false
		}
		dst = append(dst, int32(s))
		return true
	})
	return dst, err
}

// QueryMayBroadcast appends, for each point, whether its sensor may
// broadcast at time t (t ≡ slot (mod m)) to dst and returns it.
func QueryMayBroadcast(p *core.Plan, pts []lattice.Point, t int64, dst []bool) ([]bool, error) {
	r := slotAt(p, t)
	for _, pt := range pts {
		s, err := p.SlotOf(pt)
		if err != nil {
			return dst, err
		}
		dst = append(dst, int32(s) == r)
	}
	return dst, nil
}

// QueryWindowMayBroadcast is QueryMayBroadcast over every window point
// in lexicographic order.
func QueryWindowMayBroadcast(p *core.Plan, w lattice.Window, t int64, dst []bool) ([]bool, error) {
	if w.Dim() != p.Tile().Dim() {
		return dst, fmt.Errorf("service: window dimension %d ≠ plan dimension %d", w.Dim(), p.Tile().Dim())
	}
	r := slotAt(p, t)
	var err error
	w.Each(func(pt lattice.Point) bool {
		var s int
		s, err = p.SlotOf(pt)
		if err != nil {
			return false
		}
		dst = append(dst, int32(s) == r)
		return true
	})
	return dst, err
}

// QueryWindowSlotsChunked answers a window slot query in runs of at
// most chunk values, invoking emit with each filled run in the
// window's lexicographic point order. The buf slice (grown to chunk
// capacity once) is reused for every run, so the answer to an
// arbitrarily large window never materializes in memory at once — the
// streaming backbone of the binary wire protocol's chunked responses.
// emit returning false abandons the query (e.g. the client hung up).
func QueryWindowSlotsChunked(p *core.Plan, w lattice.Window, chunk int, buf []int32, emit func([]int32) bool) error {
	if w.Dim() != p.Tile().Dim() {
		return fmt.Errorf("service: window dimension %d ≠ plan dimension %d", w.Dim(), p.Tile().Dim())
	}
	if chunk <= 0 {
		chunk = 1
	}
	buf = buf[:0]
	var err error
	w.Each(func(pt lattice.Point) bool {
		var s int
		s, err = p.SlotOf(pt)
		if err != nil {
			return false
		}
		buf = append(buf, int32(s))
		if len(buf) == chunk {
			if !emit(buf) {
				return false
			}
			buf = buf[:0]
		}
		return true
	})
	if err != nil {
		return err
	}
	if len(buf) > 0 {
		emit(buf)
	}
	return nil
}

// QueryWindowMayChunked is QueryWindowSlotsChunked for may-broadcast
// answers: runs of at most chunk booleans (slot == active slot at t)
// in lexicographic window order through the reused buf.
func QueryWindowMayChunked(p *core.Plan, w lattice.Window, t int64, chunk int, buf []bool, emit func([]bool) bool) error {
	if w.Dim() != p.Tile().Dim() {
		return fmt.Errorf("service: window dimension %d ≠ plan dimension %d", w.Dim(), p.Tile().Dim())
	}
	if chunk <= 0 {
		chunk = 1
	}
	r := slotAt(p, t)
	buf = buf[:0]
	var err error
	w.Each(func(pt lattice.Point) bool {
		var s int
		s, err = p.SlotOf(pt)
		if err != nil {
			return false
		}
		buf = append(buf, int32(s) == r)
		if len(buf) == chunk {
			if !emit(buf) {
				return false
			}
			buf = buf[:0]
		}
		return true
	})
	if err != nil {
		return err
	}
	if len(buf) > 0 {
		emit(buf)
	}
	return nil
}

// slotAt returns the active slot at time t: t mod m, normalized into
// [0, m).
func slotAt(p *core.Plan, t int64) int32 {
	m := int64(p.Slots())
	return int32(((t % m) + m) % m)
}
