package prototile

import (
	"testing"

	"tilingsched/internal/lattice"
)

func TestFromASCIIBasic(t *testing.T) {
	ti, err := FromASCII("l", "X.\nXX")
	if err != nil {
		t.Fatalf("FromASCII: %v", err)
	}
	// Bottom row is y=0: cells (0,0), (1,0), (0,1); anchor (0,0).
	want := []lattice.Point{lattice.Pt(0, 0), lattice.Pt(0, 1), lattice.Pt(1, 0)}
	if ti.Size() != 3 {
		t.Fatalf("size = %d, want 3", ti.Size())
	}
	for _, p := range want {
		if !ti.Contains(p) {
			t.Errorf("missing %v in %v", p, ti)
		}
	}
}

func TestFromASCIIExplicitOrigin(t *testing.T) {
	ti, err := FromASCII("t", "XOX")
	if err != nil {
		t.Fatalf("FromASCII: %v", err)
	}
	if !ti.Contains(lattice.Pt(-1, 0)) || !ti.Contains(lattice.Pt(1, 0)) {
		t.Errorf("origin mark not honored: %v", ti)
	}
}

func TestFromASCIIErrors(t *testing.T) {
	if _, err := FromASCII("bad", "..."); err == nil {
		t.Error("art without cells accepted")
	}
	if _, err := FromASCII("bad", "X?X"); err == nil {
		t.Error("bad character accepted")
	}
	if _, err := FromASCII("bad", "OO"); err == nil {
		t.Error("double origin accepted")
	}
}

func TestASCIIRoundTrip(t *testing.T) {
	for _, name := range []string{"I", "O", "T", "S", "Z", "L", "J"} {
		ti := MustTetromino(name)
		back, err := FromASCII(name, ti.ASCII())
		if err != nil {
			t.Fatalf("round trip %s: %v", name, err)
		}
		if !back.Normalize().Equal(ti.Normalize()) {
			t.Errorf("round trip %s: %v != %v\nart:\n%s", name, back, ti, ti.ASCII())
		}
	}
}

func TestASCIIShowsOrigin(t *testing.T) {
	ti := MustNew("dot", lattice.Pt(0, 0), lattice.Pt(1, 0))
	if got := ti.ASCII(); got != "OX" {
		t.Errorf("ASCII = %q, want OX", got)
	}
}
