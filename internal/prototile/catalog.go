package prototile

import (
	"fmt"

	"tilingsched/internal/lattice"
)

// ChebyshevBall returns the ℓ∞ ball of the given radius in Z^dim — the
// leftmost neighborhood of the paper's Figure 2 (for dim 2, radius 1: the
// 3×3 Moore neighborhood, 9 points).
func ChebyshevBall(dim, radius int) *Tile {
	if dim < 1 || radius < 0 {
		panic(fmt.Sprintf("prototile: ChebyshevBall(%d, %d)", dim, radius))
	}
	w := lattice.CenteredWindow(dim, radius)
	return MustNew(fmt.Sprintf("chebyshev-%d", radius), w.Points()...)
}

// Cross returns the ℓ1 (Manhattan) ball of the given radius in Z^dim; for
// dim 2, radius 1 it is the 5-point von Neumann cross, which coincides
// with the Euclidean ball of radius 1 — the middle neighborhood of the
// paper's Figure 2.
func Cross(dim, radius int) *Tile {
	if dim < 1 || radius < 0 {
		panic(fmt.Sprintf("prototile: Cross(%d, %d)", dim, radius))
	}
	var pts []lattice.Point
	for _, p := range lattice.CenteredWindow(dim, radius).Points() {
		if p.ManhattanNorm() <= radius {
			pts = append(pts, p)
		}
	}
	return MustNew(fmt.Sprintf("cross-%d", radius), pts...)
}

// EuclideanBall returns {p : ‖p‖² ≤ r²} in the given lattice, using the
// lattice's metric. For the square lattice with radius 1 this is the
// 5-point ball of Figure 2 (middle).
func EuclideanBall(l *lattice.Lattice, radius float64) *Tile {
	if radius < 0 {
		panic(fmt.Sprintf("prototile: EuclideanBall radius %v", radius))
	}
	// Search a window comfortably larger than the radius; coordinates of
	// points within Euclidean distance r are bounded once the basis is
	// reduced, and all built-in lattices have minimal vectors ≥ 1.
	reach := int(radius) + 2
	var pts []lattice.Point
	r2 := radius * radius * (1 + 1e-12)
	for _, p := range lattice.CenteredWindow(l.Dim(), reach).Points() {
		if l.Norm2(p) <= r2 {
			pts = append(pts, p)
		}
	}
	return MustNew(fmt.Sprintf("euclidean-%g", radius), pts...)
}

// Rect returns the w×h rectangle {0..w-1}×{0..h-1} in Z². The paper's
// Figure 3 schedules the 2×4 rectangle (8 elements, slots 1–8).
func Rect(w, h int) *Tile {
	if w < 1 || h < 1 {
		panic(fmt.Sprintf("prototile: Rect(%d, %d)", w, h))
	}
	var pts []lattice.Point
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			pts = append(pts, lattice.Pt(x, y))
		}
	}
	return MustNew(fmt.Sprintf("rect-%dx%d", w, h), pts...)
}

// Directional returns the 8-element directional-antenna neighborhood used
// to illustrate Figures 2 (right) and 3: a 2-wide, 4-tall block reaching
// mostly "forward" of the sensor at the origin.
func Directional() *Tile {
	t := Rect(2, 4)
	return renamed(t, "directional-8")
}

// LTromino returns the 3-cell L tromino, the classic small polyomino that
// tiles the plane by translation.
func LTromino() *Tile {
	return MustNew("l-tromino", lattice.Pt(0, 0), lattice.Pt(1, 0), lattice.Pt(0, 1))
}

// Tetromino returns the named tetromino (I, O, T, S, Z, L, J) anchored at
// its lexicographically smallest cell. Of these, I, O, S, Z, L, J are
// exact (tile by translation); T is not.
func Tetromino(name string) (*Tile, error) {
	shapes := map[string]string{
		"I": "XXXX",
		"O": "XX\nXX",
		"T": "XXX\n.X.",
		// S and Z as in the paper's Figure 5 (rotate clockwise 90° to
		// see the letter shapes).
		"S": ".XX\nXX.",
		"Z": "XX.\n.XX",
		"L": "X.\nX.\nXX",
		"J": ".X\n.X\nXX",
	}
	art, ok := shapes[name]
	if !ok {
		return nil, fmt.Errorf("%w: unknown tetromino %q", ErrTile, name)
	}
	t, err := FromASCII("tetromino-"+name, art)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// MustTetromino is Tetromino that panics on error.
func MustTetromino(name string) *Tile {
	t, err := Tetromino(name)
	if err != nil {
		panic(err)
	}
	return t
}

// Pentomino returns a named pentomino from a small catalog (P, X, F);
// P tiles the plane by translation, X and F do not.
func Pentomino(name string) (*Tile, error) {
	shapes := map[string]string{
		"P": "XX\nXX\nX.",
		"X": ".X.\nXXX\n.X.",
		"F": ".XX\nXX.\n.X.",
	}
	art, ok := shapes[name]
	if !ok {
		return nil, fmt.Errorf("%w: unknown pentomino %q", ErrTile, name)
	}
	return FromASCII("pentomino-"+name, art)
}

func renamed(t *Tile, name string) *Tile {
	n, err := New(name, t.Points()...)
	if err != nil {
		panic(err)
	}
	return n
}
