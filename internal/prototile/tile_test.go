package prototile

import (
	"testing"

	"tilingsched/internal/lattice"
)

func TestNewRequiresOrigin(t *testing.T) {
	if _, err := New("bad", lattice.Pt(1, 0)); err == nil {
		t.Error("tile without origin accepted")
	}
	if _, err := New("bad"); err == nil {
		t.Error("empty tile accepted")
	}
	if _, err := New("bad", lattice.Pt(0, 0), lattice.Pt(1)); err == nil {
		t.Error("mixed-dimension tile accepted")
	}
}

func TestNewDedupes(t *testing.T) {
	ti, err := New("t", lattice.Pt(0, 0), lattice.Pt(1, 0), lattice.Pt(1, 0))
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if ti.Size() != 2 {
		t.Errorf("Size = %d, want 2", ti.Size())
	}
}

func TestFromSetAnchors(t *testing.T) {
	// A set not containing the origin gets translated so its smallest
	// point is the origin.
	s := lattice.NewSet(lattice.Pt(5, 5), lattice.Pt(6, 5), lattice.Pt(5, 6))
	ti, err := FromSet("anchored", s)
	if err != nil {
		t.Fatalf("FromSet: %v", err)
	}
	if !ti.Contains(lattice.Origin(2)) {
		t.Error("anchored tile misses origin")
	}
	if !ti.Contains(lattice.Pt(1, 0)) || !ti.Contains(lattice.Pt(0, 1)) {
		t.Errorf("anchored tile wrong: %v", ti)
	}
	if _, err := FromSet("empty", lattice.NewSet()); err == nil {
		t.Error("FromSet of empty set accepted")
	}
}

func TestChebyshevBall(t *testing.T) {
	b := ChebyshevBall(2, 1)
	if b.Size() != 9 {
		t.Errorf("Chebyshev r=1 size = %d, want 9 (paper Fig 2 left)", b.Size())
	}
	if !b.Contains(lattice.Pt(1, 1)) || !b.Contains(lattice.Pt(-1, 0)) {
		t.Error("Chebyshev ball misses corner/edge")
	}
	b2 := ChebyshevBall(3, 1)
	if b2.Size() != 27 {
		t.Errorf("3-dim Chebyshev r=1 size = %d, want 27", b2.Size())
	}
}

func TestCross(t *testing.T) {
	c := Cross(2, 1)
	if c.Size() != 5 {
		t.Errorf("Cross r=1 size = %d, want 5 (paper Fig 2 middle)", c.Size())
	}
	if c.Contains(lattice.Pt(1, 1)) {
		t.Error("cross contains a diagonal cell")
	}
	if Cross(2, 2).Size() != 13 {
		t.Errorf("Cross r=2 size = %d, want 13", Cross(2, 2).Size())
	}
}

func TestEuclideanBall(t *testing.T) {
	// On the square lattice, the Euclidean unit ball equals the cross
	// (Figure 2 middle).
	e := EuclideanBall(lattice.Square(), 1)
	if !e.Equal(Cross(2, 1)) {
		t.Errorf("Euclidean r=1 on Z² = %v, want the 5-point cross", e)
	}
	// On the hexagonal lattice, radius 1 reaches all 6 minimal vectors.
	h := EuclideanBall(lattice.Hexagonal(), 1)
	if h.Size() != 7 {
		t.Errorf("hex Euclidean r=1 size = %d, want 7", h.Size())
	}
}

func TestRectAndDirectional(t *testing.T) {
	r := Rect(2, 4)
	if r.Size() != 8 {
		t.Errorf("Rect(2,4) size = %d, want 8", r.Size())
	}
	d := Directional()
	if d.Size() != 8 {
		t.Errorf("Directional size = %d, want 8 (paper Fig 3)", d.Size())
	}
	if !d.Equal(r) {
		t.Error("Directional should be the 2x4 block of Figure 3")
	}
}

func TestTetrominoCatalog(t *testing.T) {
	for _, name := range []string{"I", "O", "T", "S", "Z", "L", "J"} {
		ti, err := Tetromino(name)
		if err != nil {
			t.Fatalf("Tetromino(%s): %v", name, err)
		}
		if ti.Size() != 4 {
			t.Errorf("Tetromino(%s) size = %d, want 4", name, ti.Size())
		}
		if !ti.Contains(lattice.Origin(2)) {
			t.Errorf("Tetromino(%s) misses origin", name)
		}
		if !ti.Connected() {
			t.Errorf("Tetromino(%s) not connected", name)
		}
	}
	if _, err := Tetromino("Q"); err == nil {
		t.Error("unknown tetromino accepted")
	}
}

func TestSZAreMirrors(t *testing.T) {
	s := MustTetromino("S")
	z := MustTetromino("Z")
	zm, err := z.ReflectX()
	if err != nil {
		t.Fatalf("ReflectX: %v", err)
	}
	if !s.Equal(zm.Normalize()) {
		t.Errorf("S %v should be the mirror of Z %v (got %v)", s, z, zm)
	}
	if s.Equal(z) {
		t.Error("S and Z must differ")
	}
}

func TestPentominoCatalog(t *testing.T) {
	for _, name := range []string{"P", "X", "F"} {
		p, err := Pentomino(name)
		if err != nil {
			t.Fatalf("Pentomino(%s): %v", name, err)
		}
		if p.Size() != 5 {
			t.Errorf("Pentomino(%s) size = %d, want 5", name, p.Size())
		}
	}
	if _, err := Pentomino("Y"); err == nil {
		t.Error("unknown pentomino accepted")
	}
}

func TestNPlusN(t *testing.T) {
	// For the 1D segment {0,1,2}: N+N = {0..4}.
	seg := MustNew("seg", lattice.Pt(0), lattice.Pt(1), lattice.Pt(2))
	nn := seg.NPlusN()
	if nn.Size() != 5 {
		t.Errorf("N+N size = %d, want 5", nn.Size())
	}
}

func TestDiameter(t *testing.T) {
	if d := Rect(2, 4).Diameter(); d != 3 {
		t.Errorf("Rect(2,4) diameter = %d, want 3", d)
	}
	if d := ChebyshevBall(2, 1).Diameter(); d != 2 {
		t.Errorf("Chebyshev ball diameter = %d, want 2", d)
	}
}

func TestContainsTileRespectability(t *testing.T) {
	moore := ChebyshevBall(2, 1)
	cross := Cross(2, 1)
	if !moore.ContainsTile(cross) {
		t.Error("Moore neighborhood should contain the cross (respectable pair)")
	}
	if cross.ContainsTile(moore) {
		t.Error("cross cannot contain the Moore neighborhood")
	}
}

func TestBoundingBoxAndTranslateSet(t *testing.T) {
	s := MustTetromino("S")
	lo, hi := s.BoundingBox()
	if !lo.Equal(lattice.Pt(0, 0)) || !hi.Equal(lattice.Pt(2, 1)) {
		t.Errorf("S bounding box = %v..%v", lo, hi)
	}
	tr := s.TranslateSet(lattice.Pt(10, 10))
	if tr.Size() != 4 {
		t.Error("translate changed size")
	}
	if !tr.Contains(lattice.Pt(10, 10)) {
		t.Error("translate misses anchor image")
	}
}

func TestPanicsOnBadArgs(t *testing.T) {
	for name, fn := range map[string]func(){
		"ChebyshevBall": func() { ChebyshevBall(0, 1) },
		"Cross":         func() { Cross(2, -1) },
		"Rect":          func() { Rect(0, 3) },
		"EuclideanBall": func() { EuclideanBall(lattice.Square(), -1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with bad args did not panic", name)
				}
			}()
			fn()
		}()
	}
}
