package prototile

import (
	"testing"

	"tilingsched/internal/lattice"
)

func TestRotate90FourTimes(t *testing.T) {
	for _, name := range []string{"S", "L", "T"} {
		ti := MustTetromino(name)
		r := ti
		var err error
		for i := 0; i < 4; i++ {
			r, err = r.Rotate90()
			if err != nil {
				t.Fatalf("Rotate90: %v", err)
			}
		}
		if !r.Normalize().Equal(ti.Normalize()) {
			t.Errorf("four rotations of %s changed the tile", name)
		}
	}
}

func TestRotate90PreservesSize(t *testing.T) {
	ti := MustTetromino("L")
	r, err := ti.Rotate90()
	if err != nil {
		t.Fatalf("Rotate90: %v", err)
	}
	if r.Size() != ti.Size() {
		t.Errorf("rotation changed size: %d -> %d", ti.Size(), r.Size())
	}
}

func TestRotate90RejectsNon2D(t *testing.T) {
	ti := MustNew("seg", lattice.Pt(0), lattice.Pt(1))
	if _, err := ti.Rotate90(); err == nil {
		t.Error("Rotate90 of 1-dim tile accepted")
	}
}

func TestRotationsCounts(t *testing.T) {
	// Distinct rotations per tetromino: O has 1, I/S/Z have 2, T/L/J
	// have 4 — the classical symmetry classes.
	want := map[string]int{"O": 1, "I": 2, "S": 2, "Z": 2, "T": 4, "L": 4, "J": 4}
	for name, n := range want {
		rots, err := MustTetromino(name).Rotations()
		if err != nil {
			t.Fatalf("Rotations(%s): %v", name, err)
		}
		if len(rots) != n {
			t.Errorf("Rotations(%s) = %d, want %d", name, len(rots), n)
		}
		// All rotations share the cell count and are pairwise distinct.
		seen := map[string]bool{}
		for _, r := range rots {
			if r.Size() != 4 {
				t.Errorf("%s rotation has %d cells", name, r.Size())
			}
			key := r.CanonicalKey()
			if seen[key] {
				t.Errorf("%s rotations contain duplicates", name)
			}
			seen[key] = true
		}
	}
}

func TestRotationsRejectsNon2D(t *testing.T) {
	seg := MustNew("seg", lattice.Pt(0), lattice.Pt(1))
	if _, err := seg.Rotations(); err == nil {
		t.Error("Rotations of 1-dim tile accepted")
	}
}

func TestReflectXInvolution(t *testing.T) {
	ti := MustTetromino("S")
	m1, err := ti.ReflectX()
	if err != nil {
		t.Fatalf("ReflectX: %v", err)
	}
	m2, err := m1.ReflectX()
	if err != nil {
		t.Fatalf("ReflectX: %v", err)
	}
	if !m2.Normalize().Equal(ti.Normalize()) {
		t.Error("double reflection changed the tile")
	}
}

func TestCanonicalKeyTranslationInvariant(t *testing.T) {
	a := MustTetromino("S")
	// Build the same shape shifted by (7, -3) with a different anchor.
	s := lattice.NewSet()
	for _, p := range a.Points() {
		s.Add(p.Add(lattice.Pt(7, -3)))
	}
	b, err := FromSet("shifted", s)
	if err != nil {
		t.Fatalf("FromSet: %v", err)
	}
	if a.CanonicalKey() != b.CanonicalKey() {
		t.Error("canonical keys of translates differ")
	}
	if a.CanonicalKey() == MustTetromino("Z").CanonicalKey() {
		t.Error("S and Z share a canonical key")
	}
}

func TestConnected(t *testing.T) {
	if !MustTetromino("S").Connected() {
		t.Error("S tetromino should be connected")
	}
	disc := MustNew("disc", lattice.Pt(0, 0), lattice.Pt(2, 2))
	if disc.Connected() {
		t.Error("diagonal pair should be disconnected")
	}
	seg := MustNew("seg3", lattice.Pt(0), lattice.Pt(1), lattice.Pt(2))
	if !seg.Connected() {
		t.Error("1-dim segment should be connected")
	}
}

func TestSimplyConnected(t *testing.T) {
	ok, err := MustTetromino("O").SimplyConnected()
	if err != nil {
		t.Fatalf("SimplyConnected: %v", err)
	}
	if !ok {
		t.Error("O tetromino should be simply connected")
	}
	// A ring of 8 cells around an empty center has a hole.
	ring, err := FromASCII("ring", "XXX\nX.X\nXXX")
	if err != nil {
		t.Fatalf("FromASCII: %v", err)
	}
	ok, err = ring.SimplyConnected()
	if err != nil {
		t.Fatalf("SimplyConnected: %v", err)
	}
	if ok {
		t.Error("ring should not be simply connected")
	}
	// Disconnected tiles are not simply connected either.
	disc := MustNew("disc", lattice.Pt(0, 0), lattice.Pt(3, 3))
	ok, err = disc.SimplyConnected()
	if err != nil {
		t.Fatalf("SimplyConnected: %v", err)
	}
	if ok {
		t.Error("disconnected tile reported simply connected")
	}
}

func TestSimplyConnectedRejectsNon2D(t *testing.T) {
	seg := MustNew("seg", lattice.Pt(0), lattice.Pt(1))
	if _, err := seg.SimplyConnected(); err == nil {
		t.Error("SimplyConnected of 1-dim tile accepted")
	}
}
