package prototile

import (
	"fmt"
	"strings"

	"tilingsched/internal/lattice"
)

// FromASCII parses a two-dimensional tile from ASCII art. Rows are listed
// top to bottom; within the art, 'X' or '#' marks a cell, '.' or ' ' marks
// an empty position, and 'O' marks a cell that becomes the origin. With no
// 'O', the tile is normalized so its lexicographically smallest cell is
// the origin (tilings and schedules are translation invariant, so the
// anchor choice is cosmetic).
//
// The visual y axis points up: the bottom row of the art has y = 0.
func FromASCII(name, art string) (*Tile, error) {
	lines := strings.Split(strings.Trim(art, "\n"), "\n")
	if len(lines) == 0 {
		return nil, fmt.Errorf("%w: empty art", ErrTile)
	}
	var cells []lattice.Point
	var origin lattice.Point
	rows := len(lines)
	for r, line := range lines {
		y := rows - 1 - r
		for x, ch := range line {
			switch ch {
			case 'X', '#':
				cells = append(cells, lattice.Pt(x, y))
			case 'O':
				p := lattice.Pt(x, y)
				cells = append(cells, p)
				if origin != nil {
					return nil, fmt.Errorf("%w: multiple origin marks", ErrTile)
				}
				origin = p
			case '.', ' ':
			default:
				return nil, fmt.Errorf("%w: unexpected character %q", ErrTile, ch)
			}
		}
	}
	if len(cells) == 0 {
		return nil, fmt.Errorf("%w: art has no cells", ErrTile)
	}
	if origin == nil {
		origin = lattice.SortPoints(append([]lattice.Point(nil), cells...))[0]
	}
	moved := make([]lattice.Point, len(cells))
	for i, c := range cells {
		moved[i] = c.Sub(origin)
	}
	return New(name, moved...)
}

// ASCII renders a two-dimensional tile as art using the same conventions
// as FromASCII ('O' marks the origin when visible, 'X' other cells).
func (t *Tile) ASCII() string {
	if t.dim != 2 {
		return t.String()
	}
	lo, hi := t.BoundingBox()
	var b strings.Builder
	for y := hi[1]; y >= lo[1]; y-- {
		for x := lo[0]; x <= hi[0]; x++ {
			p := lattice.Pt(x, y)
			switch {
			case p.IsOrigin() && t.Contains(p):
				b.WriteByte('O')
			case t.Contains(p):
				b.WriteByte('X')
			default:
				b.WriteByte('.')
			}
		}
		if y > lo[1] {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
