// Package prototile models prototiles (interference neighborhoods) of
// lattice points, the set N of the paper: a finite subset of the lattice
// containing the origin. The elements of N are the sensors affected by a
// broadcast of the sensor at 0; the neighborhood of a sensor at t is the
// translate t + N.
//
// The package provides the paper's example neighborhoods (Chebyshev and
// Euclidean balls, directional tiles — Figure 2), a polyomino catalog
// including the S and Z tetrominoes of Figure 5, ASCII-art parsing for
// tests and tools, symmetry transforms, and structural predicates
// (connectivity, simple-connectedness) needed by the boundary-word
// algorithms of Section 3.
package prototile

import (
	"errors"
	"fmt"

	"tilingsched/internal/lattice"
)

// ErrTile indicates an invalid prototile construction.
var ErrTile = errors.New("prototile: invalid tile")

// Tile is a prototile: a finite, nonempty set of lattice points that
// contains the origin. Tiles are immutable after construction.
type Tile struct {
	name string
	set  *lattice.Set
	pts  []lattice.Point // sorted
	dim  int
}

// New builds a tile from points. The points must be nonempty, share one
// dimension, and include the origin.
func New(name string, pts ...lattice.Point) (*Tile, error) {
	if len(pts) == 0 {
		return nil, fmt.Errorf("%w: no points", ErrTile)
	}
	dim := pts[0].Dim()
	set := lattice.NewSet()
	for _, p := range pts {
		if p.Dim() != dim {
			return nil, fmt.Errorf("%w: mixed dimensions %d and %d", ErrTile, dim, p.Dim())
		}
		set.Add(p)
	}
	if !set.Contains(lattice.Origin(dim)) {
		return nil, fmt.Errorf("%w: does not contain the origin", ErrTile)
	}
	return &Tile{name: name, set: set, pts: set.Points(), dim: dim}, nil
}

// FromSet builds a tile from a point set, translated so that its
// lexicographically smallest point becomes the origin. Because tilings and
// schedules are translation invariant, this normalization does not change
// any result; it only fixes a canonical representative.
func FromSet(name string, s *lattice.Set) (*Tile, error) {
	if s.Size() == 0 {
		return nil, fmt.Errorf("%w: empty set", ErrTile)
	}
	pts := s.Points()
	anchor := pts[0] // lexicographically smallest
	moved := make([]lattice.Point, len(pts))
	for i, p := range pts {
		moved[i] = p.Sub(anchor)
	}
	return New(name, moved...)
}

// MustNew is New that panics on error; for literals in tests and catalogs.
func MustNew(name string, pts ...lattice.Point) *Tile {
	t, err := New(name, pts...)
	if err != nil {
		panic(err)
	}
	return t
}

// Name returns the tile's display name.
func (t *Tile) Name() string { return t.name }

// Dim returns the dimension of the tile's points.
func (t *Tile) Dim() int { return t.dim }

// Size returns |N|, which by Theorem 1 is the optimal number of slots.
func (t *Tile) Size() int { return t.set.Size() }

// Contains reports membership.
func (t *Tile) Contains(p lattice.Point) bool { return t.set.Contains(p) }

// Points returns the tile's points in lexicographic order.
func (t *Tile) Points() []lattice.Point {
	out := make([]lattice.Point, len(t.pts))
	for i, p := range t.pts {
		out[i] = p.Clone()
	}
	return out
}

// Set returns a copy of the underlying point set.
func (t *Tile) Set() *lattice.Set {
	return lattice.NewSet(t.pts...)
}

// TranslateSet returns the point set t + v (a plain set: the translate of
// a prototile is a neighborhood, not itself a prototile).
func (t *Tile) TranslateSet(v lattice.Point) *lattice.Set {
	return t.set.Translate(v)
}

// Equal reports whether two tiles have the same point set.
func (t *Tile) Equal(o *Tile) bool { return t.set.Equal(o.set) }

// NPlusN returns the Minkowski sum N + N; the paper's Conclusions show a
// finite region keeps the schedule optimal when it contains a translate of
// this set.
func (t *Tile) NPlusN() *lattice.Set { return t.set.MinkowskiSum(t.set) }

// BoundingBox returns the inclusive corners of the tile.
func (t *Tile) BoundingBox() (lo, hi lattice.Point) {
	lo, hi, err := t.set.BoundingBox()
	if err != nil {
		panic("prototile: tile invariant violated: empty set")
	}
	return lo, hi
}

// Diameter returns the maximum Chebyshev coordinate distance between two
// tile points; useful for bounding conflict searches.
func (t *Tile) Diameter() int {
	d := 0
	for _, p := range t.pts {
		for _, q := range t.pts {
			if c := p.Sub(q).ChebyshevNorm(); c > d {
				d = c
			}
		}
	}
	return d
}

// ContainsTile reports whether every point of o lies in t — respectability
// of multi-prototile tilings (Section 4) requires N1 ⊇ Nk.
func (t *Tile) ContainsTile(o *Tile) bool {
	for _, p := range o.pts {
		if !t.set.Contains(p) {
			return false
		}
	}
	return true
}

// String renders the tile name and points.
func (t *Tile) String() string {
	return fmt.Sprintf("%s%s", t.name, t.set)
}
