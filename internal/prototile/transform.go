package prototile

import (
	"fmt"

	"tilingsched/internal/lattice"
)

// Rotate90 returns the tile rotated 90° counterclockwise ((x, y) →
// (-y, x)), re-anchored so its smallest cell is the origin. Only defined
// for two-dimensional tiles. Rotations model the paper's Section 4
// motivation of rotated antenna radiation patterns.
func (t *Tile) Rotate90() (*Tile, error) {
	if t.dim != 2 {
		return nil, fmt.Errorf("%w: Rotate90 needs dimension 2, got %d", ErrTile, t.dim)
	}
	s := lattice.NewSet()
	for _, p := range t.pts {
		s.Add(lattice.Pt(-p[1], p[0]))
	}
	return FromSet(t.name+"-rot90", s)
}

// ReflectX returns the tile mirrored across the y axis ((x, y…) →
// (-x, y…)), re-anchored at its smallest cell.
func (t *Tile) ReflectX() (*Tile, error) {
	s := lattice.NewSet()
	for _, p := range t.pts {
		q := p.Clone()
		q[0] = -q[0]
		s.Add(q)
	}
	return FromSet(t.name+"-mirror", s)
}

// Rotations returns the distinct rotations of a two-dimensional tile (1,
// 2, or 4 of them, deduplicated up to translation). Section 4 of the
// paper motivates multi-prototile tilings by rotated versions of an
// asymmetric antenna pattern; this helper generates exactly those
// prototile families.
func (t *Tile) Rotations() ([]*Tile, error) {
	if t.dim != 2 {
		return nil, fmt.Errorf("%w: Rotations needs dimension 2, got %d", ErrTile, t.dim)
	}
	out := []*Tile{t.Normalize()}
	seen := map[string]bool{out[0].CanonicalKey(): true}
	cur := t
	for i := 0; i < 3; i++ {
		next, err := cur.Rotate90()
		if err != nil {
			return nil, err
		}
		cur = next
		key := cur.CanonicalKey()
		if !seen[key] {
			seen[key] = true
			out = append(out, cur.Normalize())
		}
	}
	return out, nil
}

// Normalize returns the tile translated so its lexicographically smallest
// cell is the origin — the canonical representative of its translation
// class.
func (t *Tile) Normalize() *Tile {
	n, err := FromSet(t.name, t.set)
	if err != nil {
		panic("prototile: normalize of valid tile failed: " + err.Error())
	}
	return n
}

// CanonicalKey returns a translation-invariant key: the sorted point list
// of the normalized tile. Two tiles are translates of each other exactly
// when their keys match.
func (t *Tile) CanonicalKey() string {
	n := t.Normalize()
	return n.set.String()
}

// Connected reports whether the tile is connected under lattice
// adjacency (cells differing by ±1 in exactly one coordinate). Polyomino
// boundary algorithms require connected tiles.
func (t *Tile) Connected() bool {
	if len(t.pts) == 0 {
		return false
	}
	visited := lattice.NewSet()
	stack := []lattice.Point{t.pts[0]}
	visited.Add(t.pts[0])
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for axis := 0; axis < t.dim; axis++ {
			for _, d := range []int{-1, 1} {
				q := p.Clone()
				q[axis] += d
				if t.set.Contains(q) && visited.Add(q) {
					stack = append(stack, q)
				}
			}
		}
	}
	return visited.Size() == t.Size()
}

// SimplyConnected reports whether a two-dimensional tile is a polyomino
// without holes: its complement within a one-cell margin of the bounding
// box must be a single connected region. Simple-connectedness is required
// for the boundary-word (Beauquier–Nivat) algorithms.
func (t *Tile) SimplyConnected() (bool, error) {
	if t.dim != 2 {
		return false, fmt.Errorf("%w: SimplyConnected needs dimension 2, got %d", ErrTile, t.dim)
	}
	if !t.Connected() {
		return false, nil
	}
	lo, hi := t.BoundingBox()
	w, err := lattice.NewWindow(lattice.Pt(lo[0]-1, lo[1]-1), lattice.Pt(hi[0]+1, hi[1]+1))
	if err != nil {
		return false, err
	}
	// Flood the complement from a corner; a hole is a complement cell
	// never reached.
	start := w.Lo.Clone()
	visited := lattice.NewSet(start)
	stack := []lattice.Point{start}
	for len(stack) > 0 {
		p := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for axis := 0; axis < 2; axis++ {
			for _, d := range []int{-1, 1} {
				q := p.Clone()
				q[axis] += d
				if !w.Contains(q) || t.set.Contains(q) {
					continue
				}
				if visited.Add(q) {
					stack = append(stack, q)
				}
			}
		}
	}
	complementSize := w.Size() - t.Size()
	return visited.Size() == complementSize, nil
}
