package geom

import (
	"testing"
	"testing/quick"
)

func TestRatNormalization(t *testing.T) {
	cases := []struct {
		num, den         int64
		wantNum, wantDen int64
	}{
		{2, 4, 1, 2},
		{-2, 4, -1, 2},
		{2, -4, -1, 2},
		{-2, -4, 1, 2},
		{0, 7, 0, 1},
		{6, 3, 2, 1},
	}
	for _, c := range cases {
		r := NewRat(c.num, c.den)
		if r.Num() != c.wantNum || r.Den() != c.wantDen {
			t.Errorf("NewRat(%d,%d) = %d/%d, want %d/%d", c.num, c.den, r.Num(), r.Den(), c.wantNum, c.wantDen)
		}
	}
}

func TestRatZeroDenPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewRat(1, 0) did not panic")
		}
	}()
	NewRat(1, 0)
}

func TestRatArithmetic(t *testing.T) {
	a, b := NewRat(1, 2), NewRat(1, 3)
	if got := a.Add(b); !got.Equal(NewRat(5, 6)) {
		t.Errorf("1/2 + 1/3 = %s", got)
	}
	if got := a.Sub(b); !got.Equal(NewRat(1, 6)) {
		t.Errorf("1/2 - 1/3 = %s", got)
	}
	if got := a.Mul(b); !got.Equal(NewRat(1, 6)) {
		t.Errorf("1/2 · 1/3 = %s", got)
	}
	if got := a.Div(b); !got.Equal(NewRat(3, 2)) {
		t.Errorf("(1/2)/(1/3) = %s", got)
	}
}

func TestRatDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("division by zero did not panic")
		}
	}()
	RatInt(1).Div(RatInt(0))
}

func TestRatComparison(t *testing.T) {
	if NewRat(1, 3).Cmp(NewRat(1, 2)) != -1 {
		t.Error("1/3 should compare less than 1/2")
	}
	if NewRat(2, 4).Cmp(NewRat(1, 2)) != 0 {
		t.Error("2/4 should equal 1/2")
	}
	if RatInt(-1).Sign() != -1 || RatInt(0).Sign() != 0 || RatInt(3).Sign() != 1 {
		t.Error("Sign wrong")
	}
}

func TestRatFieldLaws(t *testing.T) {
	f := func(an, bn, cn int16, ad, bd, cd uint8) bool {
		// Build small rationals with nonzero denominators.
		a := NewRat(int64(an), int64(ad)+1)
		b := NewRat(int64(bn), int64(bd)+1)
		c := NewRat(int64(cn), int64(cd)+1)
		// Distributivity and commutativity.
		if !a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c))) {
			return false
		}
		if !a.Add(b).Equal(b.Add(a)) || !a.Mul(b).Equal(b.Mul(a)) {
			return false
		}
		return a.Sub(a).Sign() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestRatString(t *testing.T) {
	if got := NewRat(3, 6).String(); got != "1/2" {
		t.Errorf("String = %q, want 1/2", got)
	}
	if got := RatInt(-4).String(); got != "-4" {
		t.Errorf("String = %q, want -4", got)
	}
}

func TestRatFloat(t *testing.T) {
	if got := NewRat(1, 4).Float(); got != 0.25 {
		t.Errorf("Float = %v, want 0.25", got)
	}
}

func TestRatZeroValue(t *testing.T) {
	var r Rat
	if r.Sign() != 0 || r.Den() != 1 {
		t.Errorf("zero value = %d/%d, want 0/1", r.Num(), r.Den())
	}
	if !r.Add(RatInt(5)).Equal(RatInt(5)) {
		t.Error("zero value is not additive identity")
	}
}
