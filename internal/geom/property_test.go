package geom

import (
	"math/rand"
	"testing"
)

// Property: clipping never increases area and preserves convexity
// invariants (every vertex of the result satisfies the half-plane).
func TestClipMonotoneArea(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 300; trial++ {
		p := NewBox(RatInt(-3), RatInt(-3), RatInt(3), RatInt(3))
		for cuts := 0; cuts < 4; cuts++ {
			h := HalfPlane{
				A: RatInt(int64(rng.Intn(7) - 3)),
				B: RatInt(int64(rng.Intn(7) - 3)),
				C: RatInt(int64(rng.Intn(9) - 2)),
			}
			if h.A.Sign() == 0 && h.B.Sign() == 0 {
				continue
			}
			before := p.Area()
			q := p.Clip(h)
			after := q.Area()
			if after.Cmp(before) > 0 {
				t.Fatalf("clip increased area: %s -> %s", before, after)
			}
			for _, v := range q.V {
				if !h.Contains(v) {
					t.Fatalf("vertex %s outside clipping half-plane", v)
				}
			}
			p = q
			if p.Empty() {
				break
			}
		}
	}
}

// Property: translation preserves area and containment relative to the
// translated probe.
func TestTranslateInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	for trial := 0; trial < 200; trial++ {
		p := NewBox(RatInt(0), RatInt(0), RatInt(int64(1+rng.Intn(4))), RatInt(int64(1+rng.Intn(4))))
		v := V2(int64(rng.Intn(9)-4), int64(rng.Intn(9)-4))
		q := p.Translate(v)
		if !q.Area().Equal(p.Area()) {
			t.Fatal("translation changed area")
		}
		probe := Vec2{X: NewRat(1, 2), Y: NewRat(1, 2)}
		if p.Contains(probe) != q.Contains(probe.Add(v)) {
			t.Fatal("translation broke containment")
		}
	}
}

// Property: Voronoi cells tile area: the coordinate-space cell area is
// always 1 (one lattice point per fundamental domain) for valid Gram
// matrices of determinant-1 coordinate systems.
func TestVoronoiUnitArea(t *testing.T) {
	for name, g := range map[string]Gram2{"square": SquareGram(), "hex": HexGram()} {
		cell, err := VoronoiCell(g, 3)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !cell.Area().Equal(RatInt(1)) {
			t.Errorf("%s: coordinate area %s, want 1", name, cell.Area())
		}
	}
}
