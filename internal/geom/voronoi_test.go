package geom

import (
	"math"
	"testing"
)

func TestSquareVoronoiCell(t *testing.T) {
	// The Voronoi cell of Z² is the unit square centered at the origin
	// (paper Figure 4a).
	cell, err := VoronoiCell(SquareGram(), 2)
	if err != nil {
		t.Fatalf("VoronoiCell: %v", err)
	}
	if got := cell.Area(); !got.Equal(RatInt(1)) {
		t.Errorf("square cell area = %s, want 1", got)
	}
	if len(cell.V) != 4 {
		t.Errorf("square cell has %d vertices, want 4", len(cell.V))
	}
	half := NewRat(1, 2)
	for _, v := range cell.V {
		if !v.X.Equal(half) && !v.X.Equal(half.Neg()) {
			t.Errorf("vertex %s not at ±1/2 in x", v)
		}
		if !v.Y.Equal(half) && !v.Y.Equal(half.Neg()) {
			t.Errorf("vertex %s not at ±1/2 in y", v)
		}
	}
}

func TestHexVoronoiCell(t *testing.T) {
	// The Voronoi cell of the hexagonal lattice is a hexagon (paper
	// Figure 4b). In coordinate space its area is 1 (one point per
	// fundamental domain); its Euclidean area is √3/2 = area·√det(G).
	cell, err := VoronoiCell(HexGram(), 2)
	if err != nil {
		t.Fatalf("VoronoiCell: %v", err)
	}
	if len(cell.V) != 6 {
		t.Errorf("hex cell has %d vertices, want 6: %s", len(cell.V), cell)
	}
	if got := cell.Area(); !got.Equal(RatInt(1)) {
		t.Errorf("hex cell coordinate area = %s, want 1", got)
	}
	// Euclidean area = coordinate area × √det(G) = √(3/4) = √3/2.
	euclid := cell.Area().Float() * math.Sqrt(HexGram().Det().Float())
	if math.Abs(euclid-math.Sqrt(3)/2) > 1e-12 {
		t.Errorf("hex cell Euclidean area = %v, want √3/2", euclid)
	}
}

func TestVoronoiCellContainsOnlyOrigin(t *testing.T) {
	// The open cell contains no other lattice point; the closed cell may
	// touch none for these lattices.
	for name, g := range map[string]Gram2{"square": SquareGram(), "hex": HexGram()} {
		cell, err := VoronoiCell(g, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !cell.Contains(V2(0, 0)) {
			t.Errorf("%s: cell does not contain origin", name)
		}
		for dx := int64(-2); dx <= 2; dx++ {
			for dy := int64(-2); dy <= 2; dy++ {
				if dx == 0 && dy == 0 {
					continue
				}
				if cell.Contains(V2(dx, dy)) {
					t.Errorf("%s: cell contains lattice point (%d,%d)", name, dx, dy)
				}
			}
		}
	}
}

func TestVoronoiCellSymmetric(t *testing.T) {
	// Voronoi cells are centrally symmetric: v ∈ cell ⇒ -v ∈ cell.
	for name, g := range map[string]Gram2{"square": SquareGram(), "hex": HexGram()} {
		cell, err := VoronoiCell(g, 2)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, v := range cell.V {
			neg := Vec2{X: v.X.Neg(), Y: v.Y.Neg()}
			if !cell.Contains(neg) {
				t.Errorf("%s: cell not symmetric at %s", name, v)
			}
		}
	}
}

func TestVoronoiErrors(t *testing.T) {
	bad := Gram2{{RatInt(1), RatInt(0)}, {RatInt(1), RatInt(1)}} // asymmetric
	if _, err := VoronoiCell(bad, 2); err == nil {
		t.Error("asymmetric Gram accepted")
	}
	negdef := Gram2{{RatInt(-1), RatInt(0)}, {RatInt(0), RatInt(1)}}
	if _, err := VoronoiCell(negdef, 2); err == nil {
		t.Error("non-positive-definite Gram accepted")
	}
	if _, err := VoronoiCell(SquareGram(), 0); err == nil {
		t.Error("reach 0 accepted")
	}
}

func TestQuasiPolyform(t *testing.T) {
	// An L-tromino's quasi-polyomino consists of three unit squares with
	// total area 3.
	pts := []Vec2{V2(0, 0), V2(1, 0), V2(0, 1)}
	cells, err := QuasiPolyform(SquareGram(), pts, 2)
	if err != nil {
		t.Fatalf("QuasiPolyform: %v", err)
	}
	if len(cells) != 3 {
		t.Fatalf("got %d cells, want 3", len(cells))
	}
	total := RatInt(0)
	for _, c := range cells {
		total = total.Add(c.Area())
	}
	if !total.Equal(RatInt(3)) {
		t.Errorf("total area = %s, want 3", total)
	}
	// Each cell is centered at its lattice point.
	for i, p := range pts {
		if !cells[i].Contains(p) {
			t.Errorf("cell %d does not contain its center %s", i, p)
		}
	}
}
