package geom

import (
	"fmt"
	"strings"
)

// Vec2 is an exact rational point (or vector) in the plane.
type Vec2 struct {
	X, Y Rat
}

// V2 builds a Vec2 from integers.
func V2(x, y int64) Vec2 { return Vec2{X: RatInt(x), Y: RatInt(y)} }

// Add returns v + w.
func (v Vec2) Add(w Vec2) Vec2 { return Vec2{X: v.X.Add(w.X), Y: v.Y.Add(w.Y)} }

// Sub returns v - w.
func (v Vec2) Sub(w Vec2) Vec2 { return Vec2{X: v.X.Sub(w.X), Y: v.Y.Sub(w.Y)} }

// Equal reports exact coordinate equality.
func (v Vec2) Equal(w Vec2) bool { return v.X.Equal(w.X) && v.Y.Equal(w.Y) }

// String renders "(x, y)".
func (v Vec2) String() string { return fmt.Sprintf("(%s, %s)", v.X, v.Y) }

// HalfPlane is the closed region {p : A·p.X + B·p.Y ≤ C}.
type HalfPlane struct {
	A, B, C Rat
}

// Eval returns A·x + B·y - C; non-positive means inside.
func (h HalfPlane) Eval(p Vec2) Rat {
	return h.A.Mul(p.X).Add(h.B.Mul(p.Y)).Sub(h.C)
}

// Contains reports whether p lies in the closed half-plane.
func (h HalfPlane) Contains(p Vec2) bool { return h.Eval(p).Sign() <= 0 }

// Polygon is a convex polygon given by its vertices in counterclockwise
// order. An empty polygon has no vertices.
type Polygon struct {
	V []Vec2
}

// NewBox returns the axis-aligned rectangle [x0,x1]×[y0,y1] as a CCW
// polygon.
func NewBox(x0, y0, x1, y1 Rat) Polygon {
	return Polygon{V: []Vec2{
		{X: x0, Y: y0}, {X: x1, Y: y0}, {X: x1, Y: y1}, {X: x0, Y: y1},
	}}
}

// Empty reports whether the polygon has fewer than 3 vertices.
func (p Polygon) Empty() bool { return len(p.V) < 3 }

// Clip intersects the polygon with a closed half-plane using exact
// Sutherland–Hodgman clipping. The result is again convex and CCW.
func (p Polygon) Clip(h HalfPlane) Polygon {
	if len(p.V) == 0 {
		return Polygon{}
	}
	var out []Vec2
	n := len(p.V)
	for i := 0; i < n; i++ {
		cur, nxt := p.V[i], p.V[(i+1)%n]
		ec, en := h.Eval(cur), h.Eval(nxt)
		curIn, nxtIn := ec.Sign() <= 0, en.Sign() <= 0
		if curIn {
			out = appendVertex(out, cur)
		}
		if curIn != nxtIn {
			// Edge crosses the boundary; the intersection point is
			// cur + t·(nxt-cur) with t = ec / (ec - en), exact in
			// rationals.
			t := ec.Div(ec.Sub(en))
			ip := Vec2{
				X: cur.X.Add(t.Mul(nxt.X.Sub(cur.X))),
				Y: cur.Y.Add(t.Mul(nxt.Y.Sub(cur.Y))),
			}
			out = appendVertex(out, ip)
		}
	}
	// Remove a duplicate closing vertex if clipping produced one.
	if len(out) > 1 && out[0].Equal(out[len(out)-1]) {
		out = out[:len(out)-1]
	}
	if len(out) < 3 {
		return Polygon{}
	}
	return Polygon{V: out}
}

func appendVertex(vs []Vec2, v Vec2) []Vec2 {
	if len(vs) > 0 && vs[len(vs)-1].Equal(v) {
		return vs
	}
	return append(vs, v)
}

// Area returns the exact (signed-made-positive) area via the shoelace
// formula. CCW polygons give the positive value directly.
func (p Polygon) Area() Rat {
	if p.Empty() {
		return RatInt(0)
	}
	sum := RatInt(0)
	n := len(p.V)
	for i := 0; i < n; i++ {
		a, b := p.V[i], p.V[(i+1)%n]
		sum = sum.Add(a.X.Mul(b.Y).Sub(b.X.Mul(a.Y)))
	}
	if sum.Sign() < 0 {
		sum = sum.Neg()
	}
	return sum.Div(RatInt(2))
}

// Contains reports whether q lies in the closed polygon (boundary counts).
func (p Polygon) Contains(q Vec2) bool {
	if p.Empty() {
		return false
	}
	n := len(p.V)
	for i := 0; i < n; i++ {
		a, b := p.V[i], p.V[(i+1)%n]
		// Cross product (b-a) × (q-a) must be ≥ 0 for CCW polygons.
		cross := b.X.Sub(a.X).Mul(q.Y.Sub(a.Y)).Sub(b.Y.Sub(a.Y).Mul(q.X.Sub(a.X)))
		if cross.Sign() < 0 {
			return false
		}
	}
	return true
}

// Translate returns the polygon shifted by v.
func (p Polygon) Translate(v Vec2) Polygon {
	out := make([]Vec2, len(p.V))
	for i, w := range p.V {
		out[i] = w.Add(v)
	}
	return Polygon{V: out}
}

// String lists the vertices.
func (p Polygon) String() string {
	parts := make([]string, len(p.V))
	for i, v := range p.V {
		parts[i] = v.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}
