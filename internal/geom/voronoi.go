package geom

import (
	"errors"
	"fmt"
)

// ErrGram indicates a malformed Gram matrix.
var ErrGram = errors.New("geom: invalid Gram matrix")

// Gram2 is an exact 2×2 symmetric positive-definite Gram matrix of a
// lattice basis: G[i][j] = ⟨b_i, b_j⟩. The square lattice has G = I; the
// paper's hexagonal lattice has G = [[1, 1/2], [1/2, 1]].
type Gram2 [2][2]Rat

// SquareGram returns the Gram matrix of the square lattice Z².
func SquareGram() Gram2 {
	return Gram2{{RatInt(1), RatInt(0)}, {RatInt(0), RatInt(1)}}
}

// HexGram returns the Gram matrix of the hexagonal lattice with basis
// u1 = (1, 0), u2 = (1/2, √3/2).
func HexGram() Gram2 {
	h := NewRat(1, 2)
	return Gram2{{RatInt(1), h}, {h, RatInt(1)}}
}

// Valid checks symmetry and positive definiteness.
func (g Gram2) Valid() error {
	if !g[0][1].Equal(g[1][0]) {
		return fmt.Errorf("%w: not symmetric", ErrGram)
	}
	if g[0][0].Sign() <= 0 {
		return fmt.Errorf("%w: g11 not positive", ErrGram)
	}
	det := g[0][0].Mul(g[1][1]).Sub(g[0][1].Mul(g[1][0]))
	if det.Sign() <= 0 {
		return fmt.Errorf("%w: determinant not positive", ErrGram)
	}
	return nil
}

// Det returns the determinant of the Gram matrix; the covolume of the
// lattice is its square root.
func (g Gram2) Det() Rat {
	return g[0][0].Mul(g[1][1]).Sub(g[0][1].Mul(g[1][0]))
}

// inner returns the exact inner product uᵀ·G·v of two coordinate vectors.
func (g Gram2) inner(u, v Vec2) Rat {
	return u.X.Mul(g[0][0].Mul(v.X).Add(g[0][1].Mul(v.Y))).
		Add(u.Y.Mul(g[1][0].Mul(v.X).Add(g[1][1].Mul(v.Y))))
}

// VoronoiCell returns the closed Voronoi cell of the origin in coordinate
// space: {x : ‖x‖_G ≤ ‖x - v‖_G for all lattice vectors v ≠ 0}. Each
// nonzero v contributes the half-plane 2·xᵀGv ≤ vᵀGv; vectors with
// coordinate ℓ∞-norm ≤ reach are used, which is sufficient for reduced
// bases such as the square and hexagonal ones (reach = 2 is plenty).
//
// The resulting polygon lives in coordinate space; its Euclidean area is
// Area() · √det(G).
func VoronoiCell(g Gram2, reach int64) (Polygon, error) {
	if err := g.Valid(); err != nil {
		return Polygon{}, err
	}
	if reach < 1 {
		return Polygon{}, fmt.Errorf("geom: VoronoiCell reach %d, want ≥ 1", reach)
	}
	// Start from a box certainly containing the cell (cell fits within
	// the fundamental domain scaled by a small constant).
	bound := RatInt(2 * reach)
	cell := NewBox(bound.Neg(), bound.Neg(), bound, bound)
	for dx := -reach; dx <= reach; dx++ {
		for dy := -reach; dy <= reach; dy++ {
			if dx == 0 && dy == 0 {
				continue
			}
			v := Vec2{X: RatInt(dx), Y: RatInt(dy)}
			// Half-plane 2·xᵀGv ≤ vᵀGv.
			gv := Vec2{
				X: g[0][0].Mul(v.X).Add(g[0][1].Mul(v.Y)),
				Y: g[1][0].Mul(v.X).Add(g[1][1].Mul(v.Y)),
			}
			h := HalfPlane{
				A: RatInt(2).Mul(gv.X),
				B: RatInt(2).Mul(gv.Y),
				C: g.inner(v, v),
			}
			cell = cell.Clip(h)
			if cell.Empty() {
				return Polygon{}, fmt.Errorf("geom: Voronoi cell degenerated; Gram matrix ill-conditioned")
			}
		}
	}
	return cell, nil
}

// QuasiPolyform returns the translated Voronoi cells about each of the
// given coordinate points — the union is the quasi-polyomino (square
// lattice) or quasi-polyhex (hexagonal lattice) of the paper's Figure 4.
// Cells are returned individually; their interiors are disjoint, so the
// union's area is the sum of the parts.
func QuasiPolyform(g Gram2, pts []Vec2, reach int64) ([]Polygon, error) {
	cell, err := VoronoiCell(g, reach)
	if err != nil {
		return nil, err
	}
	out := make([]Polygon, len(pts))
	for i, p := range pts {
		out[i] = cell.Translate(p)
	}
	return out, nil
}
