package geom

import "testing"

func unitSquare() Polygon {
	return NewBox(RatInt(0), RatInt(0), RatInt(1), RatInt(1))
}

func TestBoxArea(t *testing.T) {
	if got := unitSquare().Area(); !got.Equal(RatInt(1)) {
		t.Errorf("unit square area = %s, want 1", got)
	}
	b := NewBox(RatInt(-1), RatInt(-2), RatInt(3), RatInt(2))
	if got := b.Area(); !got.Equal(RatInt(16)) {
		t.Errorf("box area = %s, want 16", got)
	}
}

func TestClipKeepsHalf(t *testing.T) {
	// Clip unit square with x ≤ 1/2.
	h := HalfPlane{A: RatInt(1), B: RatInt(0), C: NewRat(1, 2)}
	c := unitSquare().Clip(h)
	if c.Empty() {
		t.Fatal("clip produced empty polygon")
	}
	if got := c.Area(); !got.Equal(NewRat(1, 2)) {
		t.Errorf("clipped area = %s, want 1/2", got)
	}
}

func TestClipDiagonal(t *testing.T) {
	// x + y ≤ 1 cuts the unit square into a triangle of area 1/2.
	h := HalfPlane{A: RatInt(1), B: RatInt(1), C: RatInt(1)}
	c := unitSquare().Clip(h)
	if got := c.Area(); !got.Equal(NewRat(1, 2)) {
		t.Errorf("clipped area = %s, want 1/2", got)
	}
}

func TestClipNoEffect(t *testing.T) {
	h := HalfPlane{A: RatInt(1), B: RatInt(0), C: RatInt(10)}
	c := unitSquare().Clip(h)
	if got := c.Area(); !got.Equal(RatInt(1)) {
		t.Errorf("area after no-op clip = %s, want 1", got)
	}
}

func TestClipToEmpty(t *testing.T) {
	h := HalfPlane{A: RatInt(1), B: RatInt(0), C: RatInt(-5)} // x ≤ -5
	c := unitSquare().Clip(h)
	if !c.Empty() {
		t.Errorf("clip should be empty, got %s", c)
	}
	if !c.Area().Equal(RatInt(0)) {
		t.Error("empty polygon area not 0")
	}
}

func TestClipSequenceOctagon(t *testing.T) {
	// Clipping the square [-1,1]² with the four diagonal half-planes
	// |x| + |y| ≤ 3/2 produces a regular octagon of area 7/2.
	p := NewBox(RatInt(-1), RatInt(-1), RatInt(1), RatInt(1))
	c := NewRat(3, 2)
	for _, h := range []HalfPlane{
		{A: RatInt(1), B: RatInt(1), C: c},
		{A: RatInt(1), B: RatInt(-1), C: c},
		{A: RatInt(-1), B: RatInt(1), C: c},
		{A: RatInt(-1), B: RatInt(-1), C: c},
	} {
		p = p.Clip(h)
	}
	if got := p.Area(); !got.Equal(NewRat(7, 2)) {
		t.Errorf("octagon area = %s, want 7/2", got)
	}
	if len(p.V) != 8 {
		t.Errorf("octagon has %d vertices, want 8", len(p.V))
	}
}

func TestPolygonContains(t *testing.T) {
	p := unitSquare()
	inside := Vec2{X: NewRat(1, 2), Y: NewRat(1, 2)}
	boundary := Vec2{X: RatInt(0), Y: NewRat(1, 2)}
	outside := Vec2{X: RatInt(2), Y: RatInt(0)}
	if !p.Contains(inside) {
		t.Error("interior point not contained")
	}
	if !p.Contains(boundary) {
		t.Error("boundary point not contained (closed polygon)")
	}
	if p.Contains(outside) {
		t.Error("outside point contained")
	}
}

func TestPolygonTranslate(t *testing.T) {
	p := unitSquare().Translate(V2(3, -1))
	if !p.Contains(Vec2{X: NewRat(7, 2), Y: NewRat(-1, 2)}) {
		t.Error("translated polygon misses its center")
	}
	if !p.Area().Equal(RatInt(1)) {
		t.Error("translation changed area")
	}
}

func TestEmptyPolygonSafety(t *testing.T) {
	var p Polygon
	if !p.Empty() {
		t.Error("zero polygon not empty")
	}
	if p.Contains(V2(0, 0)) {
		t.Error("empty polygon contains a point")
	}
	if !p.Clip(HalfPlane{A: RatInt(1), B: RatInt(0), C: RatInt(0)}).Empty() {
		t.Error("clipping empty polygon not empty")
	}
}
