// Package geom provides exact rational plane geometry: rational numbers,
// convex polygons, half-plane clipping, and Voronoi cells of
// two-dimensional lattices.
//
// Voronoi computations run in lattice *coordinate* space using the Gram
// matrix of the basis. For the lattices in this repository (square,
// hexagonal) the Gram matrix is rational, so every Voronoi vertex is a
// rational point and all predicates are exact — no epsilon tuning. This is
// the machinery behind the paper's Figure 4 (quasi-polyominoes and
// quasi-polyhexes as unions of Voronoi regions).
package geom

import (
	"fmt"
)

// Rat is an exact rational number num/den with den > 0, always stored in
// lowest terms. The zero value is 0/1 and ready to use.
type Rat struct {
	num, den int64
}

// NewRat returns num/den reduced to lowest terms. It panics if den == 0.
func NewRat(num, den int64) Rat {
	if den == 0 {
		panic("geom: rational with zero denominator")
	}
	if den < 0 {
		num, den = -num, -den
	}
	g := gcd64(abs64(num), den)
	if g > 1 {
		num /= g
		den /= g
	}
	if num == 0 {
		den = 1
	}
	return Rat{num: num, den: den}
}

// RatInt returns the rational n/1.
func RatInt(n int64) Rat { return Rat{num: n, den: 1} }

// Num returns the numerator (sign-carrying).
func (r Rat) Num() int64 { return r.num }

// Den returns the positive denominator.
func (r Rat) Den() int64 {
	if r.den == 0 {
		return 1 // zero value normalization
	}
	return r.den
}

// Add returns r + o.
func (r Rat) Add(o Rat) Rat { return NewRat(r.num*o.Den()+o.num*r.Den(), r.Den()*o.Den()) }

// Sub returns r - o.
func (r Rat) Sub(o Rat) Rat { return NewRat(r.num*o.Den()-o.num*r.Den(), r.Den()*o.Den()) }

// Mul returns r · o.
func (r Rat) Mul(o Rat) Rat { return NewRat(r.num*o.num, r.Den()*o.Den()) }

// Div returns r / o; it panics when o is zero.
func (r Rat) Div(o Rat) Rat {
	if o.num == 0 {
		panic("geom: division by zero rational")
	}
	return NewRat(r.num*o.Den(), r.Den()*o.num)
}

// Neg returns -r.
func (r Rat) Neg() Rat { return Rat{num: -r.num, den: r.Den()} }

// Sign returns -1, 0, or 1.
func (r Rat) Sign() int {
	switch {
	case r.num < 0:
		return -1
	case r.num > 0:
		return 1
	default:
		return 0
	}
}

// Cmp returns -1, 0, or 1 as r <, =, > o.
func (r Rat) Cmp(o Rat) int { return r.Sub(o).Sign() }

// Equal reports exact equality.
func (r Rat) Equal(o Rat) bool { return r.Cmp(o) == 0 }

// Float returns the closest float64.
func (r Rat) Float() float64 { return float64(r.num) / float64(r.Den()) }

// String renders "a/b", or "a" when b == 1.
func (r Rat) String() string {
	if r.Den() == 1 {
		return fmt.Sprintf("%d", r.num)
	}
	return fmt.Sprintf("%d/%d", r.num, r.Den())
}

func gcd64(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
