package intmat

import "fmt"

// SNF computes the Smith normal form of a square integer matrix: a
// diagonal matrix D with non-negative entries d_1 | d_2 | … | d_n obtained
// from m by unimodular row and column operations (the transforms
// themselves are not returned; callers in this repository only need the
// invariant factors).
//
// For a sublattice T of Z^d given by basis rows m, the invariant factors
// describe the quotient group Z^d / T ≅ ⊕ Z/d_i, which is used to verify
// transversal (coset-representative) counts in tiling checks.
//
// The implementation uses remainder-reduction steps only: every round
// either finishes a pivot or strictly decreases the minimal nonzero
// absolute value of the trailing block, so termination is immediate.
func SNF(m *Matrix) (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("%w: SNF of %dx%d", ErrDimension, m.rows, m.cols)
	}
	n := m.rows
	w := m.Clone()
	for t := 0; t < n; t++ {
		for {
			if !pivotToCorner(w, t) {
				break // trailing block is all zero
			}
			if reduceColumnOnce(w, t) {
				continue // remainders created; re-pivot on a smaller value
			}
			if reduceRowOnce(w, t) {
				continue
			}
			// Row t and column t are clear beyond the pivot. Enforce
			// that the pivot divides the whole trailing block.
			if i, _, ok := findNonDivisible(w, t); ok {
				w.addMultipleOfRow(t, i, 1)
				continue
			}
			break
		}
	}
	for t := 0; t < n; t++ {
		if w.At(t, t) < 0 {
			w.negateRow(t)
		}
	}
	return w, nil
}

// InvariantFactors returns the nonzero diagonal entries of the Smith
// normal form of m, in divisibility order.
func InvariantFactors(m *Matrix) ([]int64, error) {
	d, err := SNF(m)
	if err != nil {
		return nil, err
	}
	var out []int64
	for i := 0; i < d.rows; i++ {
		if v := d.At(i, i); v != 0 {
			out = append(out, v)
		}
	}
	return out, nil
}

// reduceColumnOnce replaces every entry below the pivot in column t by its
// remainder modulo the pivot (one row operation each). It reports whether
// any nonzero remainder survives, in which case the caller must re-pivot:
// the surviving remainder is strictly smaller in absolute value than the
// current pivot.
func reduceColumnOnce(w *Matrix, t int) bool {
	p := w.At(t, t)
	reduced := false
	for i := t + 1; i < w.rows; i++ {
		v := w.At(i, t)
		if v == 0 {
			continue
		}
		q := FloorDiv(v, p)
		w.addMultipleOfRow(i, t, -q)
		if w.At(i, t) != 0 {
			reduced = true
		}
	}
	return reduced
}

// reduceRowOnce is the column-operation mirror of reduceColumnOnce, acting
// on the entries to the right of the pivot in row t. Column operations
// col_j += c·col_t cannot refill column t below the pivot because those
// entries are already zero.
func reduceRowOnce(w *Matrix, t int) bool {
	p := w.At(t, t)
	reduced := false
	for j := t + 1; j < w.cols; j++ {
		v := w.At(t, j)
		if v == 0 {
			continue
		}
		q := FloorDiv(v, p)
		w.addMultipleOfCol(j, t, -q)
		if w.At(t, j) != 0 {
			reduced = true
		}
	}
	return reduced
}

// pivotToCorner moves the entry of smallest nonzero absolute value in the
// trailing block starting at (t, t) to position (t, t). It reports false
// when the block is zero.
func pivotToCorner(w *Matrix, t int) bool {
	bi, bj := -1, -1
	for i := t; i < w.rows; i++ {
		for j := t; j < w.cols; j++ {
			v := w.At(i, j)
			if v == 0 {
				continue
			}
			if bi == -1 || abs64(v) < abs64(w.At(bi, bj)) {
				bi, bj = i, j
			}
		}
	}
	if bi == -1 {
		return false
	}
	w.swapRows(t, bi)
	w.swapCols(t, bj)
	return true
}

// findNonDivisible locates an entry of the trailing block (below and right
// of t) that the pivot w[t][t] does not divide.
func findNonDivisible(w *Matrix, t int) (int, int, bool) {
	p := w.At(t, t)
	if p == 0 {
		return 0, 0, false
	}
	for i := t + 1; i < w.rows; i++ {
		for j := t + 1; j < w.cols; j++ {
			if w.At(i, j)%p != 0 {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

func (m *Matrix) swapCols(i, j int) {
	if i == j {
		return
	}
	for r := 0; r < m.rows; r++ {
		vi := m.At(r, i)
		m.Set(r, i, m.At(r, j))
		m.Set(r, j, vi)
	}
}

// addMultipleOfCol performs col[j] += c * col[t].
func (m *Matrix) addMultipleOfCol(j, t int, c int64) {
	if c == 0 {
		return
	}
	for r := 0; r < m.rows; r++ {
		m.Set(r, j, m.At(r, j)+c*m.At(r, t))
	}
}
