package intmat

import (
	"fmt"
)

// HNF returns the row-style Hermite normal form of m together with a
// unimodular matrix U such that U·m = H. The result H is the canonical
// basis of the row lattice of m:
//
//   - H is upper echelon (pivot columns strictly increase down the rows),
//   - every pivot is positive,
//   - every entry above a pivot lies in [0, pivot).
//
// For a square nonsingular input H is upper triangular with positive
// diagonal, and |det H| = |det m| is the index of the row lattice in Z^d.
func HNF(m *Matrix) (h, u *Matrix) {
	h = m.Clone()
	u = Identity(m.rows)
	row := 0
	for col := 0; col < h.cols && row < h.rows; col++ {
		// Eliminate entries below position (row, col) by gcd row
		// operations until at most the pivot row is nonzero in this
		// column.
		for {
			// Find the row at or below `row` with the smallest
			// nonzero absolute value in this column.
			best := -1
			for i := row; i < h.rows; i++ {
				v := h.At(i, col)
				if v == 0 {
					continue
				}
				if best == -1 || abs64(v) < abs64(h.At(best, col)) {
					best = i
				}
			}
			if best == -1 {
				break // column is all zero at and below `row`
			}
			h.swapRows(row, best)
			u.swapRows(row, best)
			pivot := h.At(row, col)
			done := true
			for i := row + 1; i < h.rows; i++ {
				v := h.At(i, col)
				if v == 0 {
					continue
				}
				q := FloorDiv(v, pivot)
				h.addMultipleOfRow(i, row, -q)
				u.addMultipleOfRow(i, row, -q)
				if h.At(i, col) != 0 {
					done = false
				}
			}
			if done {
				break
			}
		}
		if h.At(row, col) == 0 {
			continue // no pivot in this column
		}
		if h.At(row, col) < 0 {
			h.negateRow(row)
			u.negateRow(row)
		}
		pivot := h.At(row, col)
		for i := 0; i < row; i++ {
			q := FloorDiv(h.At(i, col), pivot)
			h.addMultipleOfRow(i, row, -q)
			u.addMultipleOfRow(i, row, -q)
		}
		row++
	}
	return h, u
}

// IsSquareFullRankHNF reports whether h is a square upper-triangular
// Hermite normal form with positive diagonal and reduced above-pivot
// entries — the shape required by Reduce and Transversal checks.
func IsSquareFullRankHNF(h *Matrix) bool {
	if h.rows != h.cols {
		return false
	}
	for i := 0; i < h.rows; i++ {
		if h.At(i, i) <= 0 {
			return false
		}
		for j := 0; j < i; j++ {
			if h.At(i, j) != 0 {
				return false
			}
		}
		for j := 0; j < i; j++ {
			if v := h.At(j, i); v < 0 || v >= h.At(i, i) {
				return false
			}
		}
	}
	return true
}

// Reduce returns the canonical representative of v modulo the row lattice
// of the square full-rank HNF matrix h. The representative lies in the
// fundamental box ∏_i [0, h[i][i]). Two vectors are congruent modulo the
// lattice exactly when their representatives coincide.
func Reduce(h *Matrix, v []int64) ([]int64, error) {
	if !IsSquareFullRankHNF(h) {
		return nil, fmt.Errorf("intmat: Reduce requires a square full-rank HNF, got %s", h)
	}
	if len(v) != h.cols {
		return nil, fmt.Errorf("%w: vector length %d, want %d", ErrDimension, len(v), h.cols)
	}
	out := make([]int64, len(v))
	copy(out, v)
	ReduceInPlace(h, out)
	return out, nil
}

// ReduceInPlace reduces v modulo the row lattice of h in place, leaving
// the canonical representative (as Reduce) in v. It allocates nothing and
// skips the HNF shape check, so h MUST be a square full-rank HNF already
// validated with IsSquareFullRankHNF (typically once, at construction of
// the caller) and len(v) must equal h.Cols(). This is the hot-path
// variant backing per-point slot assignment.
func ReduceInPlace(h *Matrix, v []int64) {
	for i := 0; i < h.rows; i++ {
		row := h.a[i*h.cols : (i+1)*h.cols]
		q := FloorDiv(v[i], row[i])
		if q == 0 {
			continue
		}
		for j := i; j < h.cols; j++ {
			v[j] -= q * row[j]
		}
	}
}

// InLattice reports whether v lies in the row lattice of the square
// full-rank HNF matrix h.
func InLattice(h *Matrix, v []int64) (bool, error) {
	r, err := Reduce(h, v)
	if err != nil {
		return false, err
	}
	for _, x := range r {
		if x != 0 {
			return false, nil
		}
	}
	return true, nil
}

// Index returns the index of the row lattice of the square full-rank HNF
// matrix h in Z^d, i.e. the product of its diagonal entries.
func Index(h *Matrix) (int64, error) {
	if !IsSquareFullRankHNF(h) {
		return 0, fmt.Errorf("intmat: Index requires a square full-rank HNF, got %s", h)
	}
	idx := int64(1)
	for i := 0; i < h.rows; i++ {
		idx *= h.At(i, i)
	}
	return idx, nil
}

// SublatticesOfIndex enumerates the Hermite normal forms of all sublattices
// of Z^dim with the given index. Each returned matrix is a canonical HNF
// basis (rows span the sublattice). The number of results equals the
// classical sublattice-counting function; for dim = 2 it is σ(index), the
// sum of divisors.
func SublatticesOfIndex(dim int, index int64) []*Matrix {
	if dim <= 0 || index <= 0 {
		return nil
	}
	var out []*Matrix
	diag := make([]int64, dim)
	var fillDiag func(pos int, rem int64)
	fillDiag = func(pos int, rem int64) {
		if pos == dim {
			if rem == 1 {
				out = append(out, enumerateOffDiagonal(diag)...)
			}
			return
		}
		for d := int64(1); d <= rem; d++ {
			if rem%d == 0 {
				diag[pos] = d
				fillDiag(pos+1, rem/d)
			}
		}
	}
	fillDiag(0, index)
	return out
}

// enumerateOffDiagonal generates every HNF matrix with the given diagonal:
// entry (i, j) for i < j ranges over [0, diag[j]).
func enumerateOffDiagonal(diag []int64) []*Matrix {
	dim := len(diag)
	base := New(dim, dim)
	for i := 0; i < dim; i++ {
		base.Set(i, i, diag[i])
	}
	// Collect the free positions (i, j) with i < j.
	type pos struct{ i, j int }
	var free []pos
	for j := 1; j < dim; j++ {
		if diag[j] == 1 {
			continue // only the value 0 is possible
		}
		for i := 0; i < j; i++ {
			free = append(free, pos{i, j})
		}
	}
	var out []*Matrix
	var rec func(k int)
	rec = func(k int) {
		if k == len(free) {
			out = append(out, base.Clone())
			return
		}
		p := free[k]
		for v := int64(0); v < diag[p.j]; v++ {
			base.Set(p.i, p.j, v)
			rec(k + 1)
		}
		base.Set(p.i, p.j, 0)
	}
	rec(0)
	return out
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
