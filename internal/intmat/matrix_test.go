package intmat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	m := New(2, 3)
	if m.Rows() != 2 || m.Cols() != 3 {
		t.Fatalf("shape = %dx%d, want 2x3", m.Rows(), m.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 0 {
				t.Errorf("At(%d,%d) = %d, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestFromRowsErrors(t *testing.T) {
	if _, err := FromRows(nil); err == nil {
		t.Error("FromRows(nil) succeeded, want error")
	}
	if _, err := FromRows([][]int64{{1, 2}, {3}}); err == nil {
		t.Error("FromRows(ragged) succeeded, want error")
	}
}

func TestIdentity(t *testing.T) {
	id := Identity(3)
	m := MustFromRows([][]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}})
	p, err := id.Mul(m)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	if !p.Equal(m) {
		t.Errorf("I·m = %s, want %s", p, m)
	}
	p, err = m.Mul(id)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	if !p.Equal(m) {
		t.Errorf("m·I = %s, want %s", p, m)
	}
}

func TestMulKnown(t *testing.T) {
	a := MustFromRows([][]int64{{1, 2}, {3, 4}})
	b := MustFromRows([][]int64{{5, 6}, {7, 8}})
	want := MustFromRows([][]int64{{19, 22}, {43, 50}})
	got, err := a.Mul(b)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	if !got.Equal(want) {
		t.Errorf("a·b = %s, want %s", got, want)
	}
}

func TestMulShapeMismatch(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	if _, err := a.Mul(b); err == nil {
		t.Error("Mul with mismatched shapes succeeded, want error")
	}
}

func TestMulVec(t *testing.T) {
	m := MustFromRows([][]int64{{1, 0, -1}, {2, 1, 0}})
	v, err := m.MulVec([]int64{3, 4, 5})
	if err != nil {
		t.Fatalf("MulVec: %v", err)
	}
	if v[0] != -2 || v[1] != 10 {
		t.Errorf("MulVec = %v, want [-2 10]", v)
	}
	if _, err := m.MulVec([]int64{1}); err == nil {
		t.Error("MulVec with wrong length succeeded, want error")
	}
}

func TestTranspose(t *testing.T) {
	m := MustFromRows([][]int64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	want := MustFromRows([][]int64{{1, 4}, {2, 5}, {3, 6}})
	if !tr.Equal(want) {
		t.Errorf("Transpose = %s, want %s", tr, want)
	}
	if !tr.Transpose().Equal(m) {
		t.Error("double transpose is not identity")
	}
}

func TestDetKnown(t *testing.T) {
	cases := []struct {
		rows [][]int64
		want int64
	}{
		{[][]int64{{5}}, 5},
		{[][]int64{{1, 2}, {3, 4}}, -2},
		{[][]int64{{2, 0}, {0, 3}}, 6},
		{[][]int64{{0, 1}, {1, 0}}, -1},
		{[][]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}, 0},
		{[][]int64{{2, -1, 0}, {-1, 2, -1}, {0, -1, 2}}, 4},
		{[][]int64{{0, 2, 0, 0}, {1, 0, 0, 0}, {0, 0, 3, 1}, {0, 0, 0, 1}}, -6},
	}
	for _, c := range cases {
		m := MustFromRows(c.rows)
		got, err := m.Det()
		if err != nil {
			t.Fatalf("Det(%s): %v", m, err)
		}
		if got != c.want {
			t.Errorf("Det(%s) = %d, want %d", m, got, c.want)
		}
	}
}

func TestDetNonSquare(t *testing.T) {
	if _, err := New(2, 3).Det(); err == nil {
		t.Error("Det of non-square succeeded, want error")
	}
}

func TestDetMultiplicative(t *testing.T) {
	// det(AB) = det(A)·det(B) for random small matrices.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(4)
		a, b := randomMatrix(rng, n, 5), randomMatrix(rng, n, 5)
		ab, err := a.Mul(b)
		if err != nil {
			t.Fatalf("Mul: %v", err)
		}
		da, _ := a.Det()
		db, _ := b.Det()
		dab, _ := ab.Det()
		if dab != da*db {
			t.Fatalf("det(AB)=%d, det(A)·det(B)=%d for A=%s B=%s", dab, da*db, a, b)
		}
	}
}

func randomMatrix(rng *rand.Rand, n int, bound int64) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			m.Set(i, j, rng.Int63n(2*bound+1)-bound)
		}
	}
	return m
}

func TestGcd(t *testing.T) {
	cases := []struct{ a, b, want int64 }{
		{0, 0, 0}, {0, 5, 5}, {5, 0, 5}, {12, 18, 6},
		{-12, 18, 6}, {12, -18, 6}, {-12, -18, 6}, {7, 13, 1},
	}
	for _, c := range cases {
		if got := Gcd(c.a, c.b); got != c.want {
			t.Errorf("Gcd(%d, %d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestExtGcdProperty(t *testing.T) {
	f := func(a, b int32) bool {
		g, x, y := ExtGcd(int64(a), int64(b))
		if g != Gcd(int64(a), int64(b)) {
			return false
		}
		return int64(a)*x+int64(b)*y == g
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestFloorDivMod(t *testing.T) {
	cases := []struct{ a, b, q, r int64 }{
		{7, 2, 3, 1},
		{-7, 2, -4, 1},
		{7, -2, -4, 1},
		{-7, -2, 3, 1},
		{6, 3, 2, 0},
		{-6, 3, -2, 0},
	}
	for _, c := range cases {
		if q := FloorDiv(c.a, c.b); q != c.q {
			t.Errorf("FloorDiv(%d, %d) = %d, want %d", c.a, c.b, q, c.q)
		}
		if r := Mod(c.a, c.b); r != c.r {
			t.Errorf("Mod(%d, %d) = %d, want %d", c.a, c.b, r, c.r)
		}
	}
}

func TestFloorDivProperty(t *testing.T) {
	f := func(a int32, b int32) bool {
		if b == 0 {
			return true
		}
		q := FloorDiv(int64(a), int64(b))
		r := int64(a) - q*int64(b)
		// Remainder must have the sign of b (or zero) and |r| < |b|.
		if r < 0 && b > 0 || r > 0 && b < 0 {
			return false
		}
		return abs64(r) < abs64(int64(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestStringFormat(t *testing.T) {
	m := MustFromRows([][]int64{{1, 0}, {2, 3}})
	if got, want := m.String(), "[[1 0] [2 3]]"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestCloneIndependence(t *testing.T) {
	m := MustFromRows([][]int64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 99)
	if m.At(0, 0) != 1 {
		t.Error("mutating clone affected original")
	}
}

func TestRowCopy(t *testing.T) {
	m := MustFromRows([][]int64{{1, 2}, {3, 4}})
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) != 3 {
		t.Error("mutating Row() result affected matrix")
	}
}
