// Package intmat provides exact integer linear algebra for lattice
// computations: dense int64 matrices, determinants (Bareiss), Hermite and
// Smith normal forms, coset reduction modulo a sublattice, and enumeration
// of sublattices of a given index.
//
// All lattices in this repository are represented in basis coordinates, so
// a sublattice of Z^d is simply the row span of a d×d nonsingular integer
// matrix. The Hermite normal form gives a canonical basis and a canonical
// coset representative for every vector, which is the workhorse behind
// tiling verification (a prototile tiles the lattice with period sublattice
// T exactly when it is a transversal of Z^d / T).
package intmat

import (
	"errors"
	"fmt"
	"strings"
)

// ErrDimension indicates mismatched or invalid matrix dimensions.
var ErrDimension = errors.New("intmat: dimension mismatch")

// Matrix is a dense integer matrix with int64 entries stored row-major.
// The zero value is not usable; construct with New, Identity, or FromRows.
type Matrix struct {
	rows, cols int
	a          []int64
}

// New returns a rows×cols zero matrix.
func New(rows, cols int) *Matrix {
	if rows <= 0 || cols <= 0 {
		panic(fmt.Sprintf("intmat: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, a: make([]int64, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// FromRows builds a matrix from row slices. All rows must have equal,
// nonzero length.
func FromRows(rows [][]int64) (*Matrix, error) {
	if len(rows) == 0 || len(rows[0]) == 0 {
		return nil, fmt.Errorf("%w: empty rows", ErrDimension)
	}
	cols := len(rows[0])
	m := New(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("%w: row %d has %d entries, want %d", ErrDimension, i, len(r), cols)
		}
		copy(m.a[i*cols:(i+1)*cols], r)
	}
	return m, nil
}

// MustFromRows is FromRows that panics on error; intended for literals in
// tests and examples.
func MustFromRows(rows [][]int64) *Matrix {
	m, err := FromRows(rows)
	if err != nil {
		panic(err)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the entry at row i, column j.
func (m *Matrix) At(i, j int) int64 { return m.a[i*m.cols+j] }

// Set assigns the entry at row i, column j.
func (m *Matrix) Set(i, j int, v int64) { m.a[i*m.cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []int64 {
	out := make([]int64, m.cols)
	copy(out, m.a[i*m.cols:(i+1)*m.cols])
	return out
}

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := New(m.rows, m.cols)
	copy(c.a, m.a)
	return c
}

// Equal reports whether two matrices have the same shape and entries.
func (m *Matrix) Equal(o *Matrix) bool {
	if o == nil || m.rows != o.rows || m.cols != o.cols {
		return false
	}
	for i := range m.a {
		if m.a[i] != o.a[i] {
			return false
		}
	}
	return true
}

// Mul returns the matrix product m·o.
func (m *Matrix) Mul(o *Matrix) (*Matrix, error) {
	if m.cols != o.rows {
		return nil, fmt.Errorf("%w: %dx%d · %dx%d", ErrDimension, m.rows, m.cols, o.rows, o.cols)
	}
	p := New(m.rows, o.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			mik := m.At(i, k)
			if mik == 0 {
				continue
			}
			for j := 0; j < o.cols; j++ {
				p.a[i*p.cols+j] += mik * o.At(k, j)
			}
		}
	}
	return p, nil
}

// MulVec returns m·v where v is treated as a column vector.
func (m *Matrix) MulVec(v []int64) ([]int64, error) {
	if len(v) != m.cols {
		return nil, fmt.Errorf("%w: vector length %d, want %d", ErrDimension, len(v), m.cols)
	}
	out := make([]int64, m.rows)
	for i := 0; i < m.rows; i++ {
		var s int64
		for j := 0; j < m.cols; j++ {
			s += m.At(i, j) * v[j]
		}
		out[i] = s
	}
	return out, nil
}

// Transpose returns the transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// String renders the matrix in bracketed rows, e.g. "[[1 0] [2 3]]".
func (m *Matrix) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", m.At(i, j))
		}
		b.WriteByte(']')
	}
	b.WriteByte(']')
	return b.String()
}

// Det returns the determinant of a square matrix using the Bareiss
// fraction-free elimination, which keeps all intermediates integral.
func (m *Matrix) Det() (int64, error) {
	if m.rows != m.cols {
		return 0, fmt.Errorf("%w: determinant of %dx%d", ErrDimension, m.rows, m.cols)
	}
	n := m.rows
	w := m.Clone()
	sign := int64(1)
	prev := int64(1)
	for k := 0; k < n-1; k++ {
		if w.At(k, k) == 0 {
			// Pivot: find a row below with nonzero entry in column k.
			swapped := false
			for i := k + 1; i < n; i++ {
				if w.At(i, k) != 0 {
					w.swapRows(i, k)
					sign = -sign
					swapped = true
					break
				}
			}
			if !swapped {
				return 0, nil
			}
		}
		for i := k + 1; i < n; i++ {
			for j := k + 1; j < n; j++ {
				num := w.At(i, j)*w.At(k, k) - w.At(i, k)*w.At(k, j)
				w.Set(i, j, num/prev)
			}
			w.Set(i, k, 0)
		}
		prev = w.At(k, k)
	}
	return sign * w.At(n-1, n-1), nil
}

func (m *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	ri := m.a[i*m.cols : (i+1)*m.cols]
	rj := m.a[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k], rj[k] = rj[k], ri[k]
	}
}

// negateRow flips the sign of every entry in row i.
func (m *Matrix) negateRow(i int) {
	r := m.a[i*m.cols : (i+1)*m.cols]
	for k := range r {
		r[k] = -r[k]
	}
}

// addMultipleOfRow performs row[i] += c * row[j].
func (m *Matrix) addMultipleOfRow(i, j int, c int64) {
	if c == 0 {
		return
	}
	ri := m.a[i*m.cols : (i+1)*m.cols]
	rj := m.a[j*m.cols : (j+1)*m.cols]
	for k := range ri {
		ri[k] += c * rj[k]
	}
}

// Gcd returns the non-negative greatest common divisor of a and b, with
// Gcd(0, 0) = 0.
func Gcd(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// ExtGcd returns (g, x, y) with g = gcd(a, b) ≥ 0 and a·x + b·y = g.
func ExtGcd(a, b int64) (g, x, y int64) {
	oldR, r := a, b
	oldX, xx := int64(1), int64(0)
	oldY, yy := int64(0), int64(1)
	for r != 0 {
		q := oldR / r
		oldR, r = r, oldR-q*r
		oldX, xx = xx, oldX-q*xx
		oldY, yy = yy, oldY-q*yy
	}
	if oldR < 0 {
		oldR, oldX, oldY = -oldR, -oldX, -oldY
	}
	return oldR, oldX, oldY
}

// FloorDiv returns floor(a / b) for b ≠ 0, rounding toward negative
// infinity (unlike Go's native truncated division).
func FloorDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a < 0) != (b < 0) {
		q--
	}
	return q
}

// Mod returns a - b*FloorDiv(a, b), the representative of a modulo b in
// [0, |b|).
func Mod(a, b int64) int64 {
	r := a % b
	if r != 0 && (r < 0) != (b < 0) {
		r += b
	}
	if r < 0 {
		r = -r
	}
	return r
}
