package intmat

import (
	"math/rand"
	"testing"
)

// Property: HNF is idempotent — the canonical form of a canonical form is
// itself.
func TestHNFIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(3)
		m := randomMatrix(rng, n, 6)
		if d, _ := m.Det(); d == 0 {
			continue
		}
		h1, _ := HNF(m)
		h2, _ := HNF(h1)
		if !h1.Equal(h2) {
			t.Fatalf("HNF not idempotent: %s -> %s", h1, h2)
		}
	}
}

// Property: Reduce is idempotent and lands in the fundamental box.
func TestReduceIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 300; trial++ {
		m := randomMatrix(rng, 2, 6)
		if d, _ := m.Det(); d == 0 {
			continue
		}
		h, _ := HNF(m)
		v := []int64{rng.Int63n(201) - 100, rng.Int63n(201) - 100}
		r1, err := Reduce(h, v)
		if err != nil {
			t.Fatalf("Reduce: %v", err)
		}
		r2, err := Reduce(h, r1)
		if err != nil {
			t.Fatalf("Reduce: %v", err)
		}
		for i := range r1 {
			if r1[i] != r2[i] {
				t.Fatalf("Reduce not idempotent: %v -> %v", r1, r2)
			}
			if r1[i] < 0 || r1[i] >= h.At(i, i) {
				t.Fatalf("Reduce(%v) = %v outside box of %s", v, r1, h)
			}
		}
	}
}

// Property: the difference between a vector and its reduction lies in the
// lattice.
func TestReduceDifferenceInLattice(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 300; trial++ {
		m := randomMatrix(rng, 2, 5)
		if d, _ := m.Det(); d == 0 {
			continue
		}
		h, _ := HNF(m)
		v := []int64{rng.Int63n(101) - 50, rng.Int63n(101) - 50}
		r, err := Reduce(h, v)
		if err != nil {
			t.Fatalf("Reduce: %v", err)
		}
		diff := []int64{v[0] - r[0], v[1] - r[1]}
		in, err := InLattice(h, diff)
		if err != nil {
			t.Fatalf("InLattice: %v", err)
		}
		if !in {
			t.Fatalf("v - Reduce(v) = %v not in lattice %s", diff, h)
		}
	}
}

// Property: SNF invariant factors are invariant under unimodular
// multiplication on either side.
func TestSNFUnimodularInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 150; trial++ {
		m := randomMatrix(rng, 2, 5)
		u := randomUnimodular(rng, 2, 5)
		um, err := u.Mul(m)
		if err != nil {
			t.Fatalf("Mul: %v", err)
		}
		f1, err := InvariantFactors(m)
		if err != nil {
			t.Fatalf("InvariantFactors: %v", err)
		}
		f2, err := InvariantFactors(um)
		if err != nil {
			t.Fatalf("InvariantFactors: %v", err)
		}
		if len(f1) != len(f2) {
			t.Fatalf("factor counts differ: %v vs %v", f1, f2)
		}
		for i := range f1 {
			if f1[i] != f2[i] {
				t.Fatalf("factors differ under unimodular action: %v vs %v", f1, f2)
			}
		}
	}
}

// Property: every sublattice enumerated for index m is distinct as a
// lattice — no two HNFs define the same sublattice. Because an index-m
// sublattice contains mZ², membership on the box [0, m)² determines the
// lattice completely, so comparing membership there is an exact check
// independent of the HNF canonicalization.
func TestSublatticesPairwiseDistinct(t *testing.T) {
	const m = 6
	subs := SublatticesOfIndex(2, m)
	signature := func(h *Matrix) string {
		sig := make([]byte, 0, m*m)
		for x := int64(0); x < m; x++ {
			for y := int64(0); y < m; y++ {
				in, err := InLattice(h, []int64{x, y})
				if err != nil {
					t.Fatalf("InLattice: %v", err)
				}
				if in {
					sig = append(sig, '1')
				} else {
					sig = append(sig, '0')
				}
			}
		}
		return string(sig)
	}
	seen := map[string]*Matrix{}
	for _, h := range subs {
		sig := signature(h)
		if other, dup := seen[sig]; dup {
			t.Fatalf("sublattices %s and %s are the same lattice", other, h)
		}
		seen[sig] = h
	}
}
