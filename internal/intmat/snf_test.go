package intmat

import (
	"math/rand"
	"testing"
)

func TestSNFKnown(t *testing.T) {
	cases := []struct {
		rows [][]int64
		want []int64
	}{
		{[][]int64{{2, 0}, {0, 2}}, []int64{2, 2}},
		{[][]int64{{1, 0}, {0, 6}}, []int64{1, 6}},
		{[][]int64{{2, 4}, {4, 2}}, []int64{2, 6}},
		{[][]int64{{2, 0}, {1, 3}}, []int64{1, 6}},
		{[][]int64{{1, 2, 3}, {4, 5, 6}, {7, 8, 10}}, []int64{1, 1, 3}},
	}
	for _, c := range cases {
		m := MustFromRows(c.rows)
		got, err := InvariantFactors(m)
		if err != nil {
			t.Fatalf("InvariantFactors(%s): %v", m, err)
		}
		if len(got) != len(c.want) {
			t.Errorf("InvariantFactors(%s) = %v, want %v", m, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("InvariantFactors(%s) = %v, want %v", m, got, c.want)
				break
			}
		}
	}
}

func TestSNFDivisibilityChain(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(3)
		m := randomMatrix(rng, n, 6)
		d, err := SNF(m)
		if err != nil {
			t.Fatalf("SNF: %v", err)
		}
		// Diagonal, non-negative, each divides the next (0 handled:
		// nothing divides into nonzero after a zero).
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i != j && d.At(i, j) != 0 {
					t.Fatalf("SNF(%s) = %s not diagonal", m, d)
				}
			}
			if d.At(i, i) < 0 {
				t.Fatalf("SNF(%s) has negative factor", m)
			}
		}
		for i := 0; i+1 < n; i++ {
			a, b := d.At(i, i), d.At(i+1, i+1)
			if a == 0 && b != 0 {
				t.Fatalf("SNF(%s) = %s: zero before nonzero", m, d)
			}
			if a != 0 && b%a != 0 {
				t.Fatalf("SNF(%s) = %s: %d does not divide %d", m, d, a, b)
			}
		}
	}
}

func TestSNFPreservesDeterminant(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(3)
		m := randomMatrix(rng, n, 5)
		dm, _ := m.Det()
		d, err := SNF(m)
		if err != nil {
			t.Fatalf("SNF: %v", err)
		}
		dd, _ := d.Det()
		if dd != abs64(dm) {
			t.Fatalf("det(SNF(%s)) = %d, want |%d|", m, dd, dm)
		}
	}
}

func TestSNFMatchesHNFIndex(t *testing.T) {
	// Product of invariant factors equals lattice index for full-rank m.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 100; trial++ {
		m := randomMatrix(rng, 2, 5)
		dm, _ := m.Det()
		if dm == 0 {
			continue
		}
		inv, err := InvariantFactors(m)
		if err != nil {
			t.Fatalf("InvariantFactors: %v", err)
		}
		prod := int64(1)
		for _, f := range inv {
			prod *= f
		}
		if prod != abs64(dm) {
			t.Fatalf("product of invariant factors %v = %d, want %d", inv, prod, abs64(dm))
		}
	}
}

func TestSNFNonSquare(t *testing.T) {
	if _, err := SNF(New(2, 3)); err == nil {
		t.Error("SNF of non-square succeeded, want error")
	}
}

func TestSNFSingular(t *testing.T) {
	m := MustFromRows([][]int64{{1, 2}, {2, 4}})
	inv, err := InvariantFactors(m)
	if err != nil {
		t.Fatalf("InvariantFactors: %v", err)
	}
	if len(inv) != 1 || inv[0] != 1 {
		t.Errorf("InvariantFactors(singular) = %v, want [1]", inv)
	}
}
