package intmat

import (
	"math/rand"
	"testing"
)

func TestHNFKnown(t *testing.T) {
	// Rows (2, 0), (1, 3) span a lattice of index 6; its HNF is
	// [[1 3] [0 6]]: subtracting rows gives (1, -3); then (2,0)-2(1,-3)
	// = (0,6); reduce above: (1,-3)+(0,6) = (1,3).
	m := MustFromRows([][]int64{{2, 0}, {1, 3}})
	h, u := HNF(m)
	want := MustFromRows([][]int64{{1, 3}, {0, 6}})
	if !h.Equal(want) {
		t.Errorf("HNF = %s, want %s", h, want)
	}
	um, err := u.Mul(m)
	if err != nil {
		t.Fatalf("Mul: %v", err)
	}
	if !um.Equal(h) {
		t.Errorf("U·m = %s, want %s", um, h)
	}
	du, _ := u.Det()
	if du != 1 && du != -1 {
		t.Errorf("det(U) = %d, want ±1", du)
	}
}

func TestHNFAlreadyCanonical(t *testing.T) {
	m := MustFromRows([][]int64{{2, 1}, {0, 3}})
	h, _ := HNF(m)
	if !h.Equal(m) {
		t.Errorf("HNF of canonical form changed it: %s -> %s", m, h)
	}
}

func TestHNFRandomProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		n := 1 + rng.Intn(3)
		m := randomMatrix(rng, n, 6)
		d, _ := m.Det()
		if d == 0 {
			continue
		}
		h, u := HNF(m)
		if !IsSquareFullRankHNF(h) {
			t.Fatalf("HNF(%s) = %s is not canonical", m, h)
		}
		um, err := u.Mul(m)
		if err != nil {
			t.Fatalf("Mul: %v", err)
		}
		if !um.Equal(h) {
			t.Fatalf("U·m = %s != H = %s", um, h)
		}
		du, _ := u.Det()
		if du != 1 && du != -1 {
			t.Fatalf("det(U) = %d, want ±1", du)
		}
		dh, _ := h.Det()
		if dh != abs64(d) {
			t.Fatalf("det(H) = %d, want |det(m)| = %d", dh, abs64(d))
		}
	}
}

func TestHNFCanonicalUnderBasisChange(t *testing.T) {
	// Multiplying by a unimodular matrix must not change the HNF,
	// because the row lattice is the same.
	rng := rand.New(rand.NewSource(11))
	base := MustFromRows([][]int64{{3, 1}, {0, 4}})
	h0, _ := HNF(base)
	for trial := 0; trial < 100; trial++ {
		u := randomUnimodular(rng, 2, 6)
		um, err := u.Mul(base)
		if err != nil {
			t.Fatalf("Mul: %v", err)
		}
		h, _ := HNF(um)
		if !h.Equal(h0) {
			t.Fatalf("HNF not invariant: %s vs %s (U=%s)", h, h0, u)
		}
	}
}

// randomUnimodular builds a unimodular matrix as a product of elementary
// row operations applied to the identity.
func randomUnimodular(rng *rand.Rand, n, ops int) *Matrix {
	u := Identity(n)
	for k := 0; k < ops; k++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		u.addMultipleOfRow(i, j, rng.Int63n(5)-2)
	}
	return u
}

func TestReduceCanonical(t *testing.T) {
	h := MustFromRows([][]int64{{2, 1}, {0, 3}})
	// Representatives fill the box [0,2) x [0,3): exactly 6 cosets.
	seen := map[[2]int64]bool{}
	for x := int64(-6); x <= 6; x++ {
		for y := int64(-6); y <= 6; y++ {
			r, err := Reduce(h, []int64{x, y})
			if err != nil {
				t.Fatalf("Reduce: %v", err)
			}
			if r[0] < 0 || r[0] >= 2 || r[1] < 0 || r[1] >= 3 {
				t.Fatalf("Reduce(%d,%d) = %v outside fundamental box", x, y, r)
			}
			seen[[2]int64{r[0], r[1]}] = true
		}
	}
	if len(seen) != 6 {
		t.Errorf("distinct representatives = %d, want 6", len(seen))
	}
}

func TestReduceCongruence(t *testing.T) {
	// v and v + lattice vector must reduce identically.
	rng := rand.New(rand.NewSource(3))
	h := MustFromRows([][]int64{{3, 2}, {0, 5}})
	for trial := 0; trial < 500; trial++ {
		v := []int64{rng.Int63n(41) - 20, rng.Int63n(41) - 20}
		a, b := rng.Int63n(9)-4, rng.Int63n(9)-4
		w := []int64{v[0] + a*h.At(0, 0) + b*h.At(1, 0), v[1] + a*h.At(0, 1) + b*h.At(1, 1)}
		rv, err := Reduce(h, v)
		if err != nil {
			t.Fatalf("Reduce: %v", err)
		}
		rw, err := Reduce(h, w)
		if err != nil {
			t.Fatalf("Reduce: %v", err)
		}
		if rv[0] != rw[0] || rv[1] != rw[1] {
			t.Fatalf("congruent vectors reduce differently: %v vs %v", rv, rw)
		}
	}
}

func TestReduceRejectsNonHNF(t *testing.T) {
	m := MustFromRows([][]int64{{1, 0}, {2, 3}}) // lower entry nonzero
	if _, err := Reduce(m, []int64{0, 0}); err == nil {
		t.Error("Reduce accepted a non-HNF matrix")
	}
}

func TestInLattice(t *testing.T) {
	h := MustFromRows([][]int64{{2, 0}, {0, 2}})
	cases := []struct {
		v    []int64
		want bool
	}{
		{[]int64{0, 0}, true},
		{[]int64{2, 0}, true},
		{[]int64{-4, 6}, true},
		{[]int64{1, 0}, false},
		{[]int64{2, 1}, false},
	}
	for _, c := range cases {
		got, err := InLattice(h, c.v)
		if err != nil {
			t.Fatalf("InLattice: %v", err)
		}
		if got != c.want {
			t.Errorf("InLattice(%v) = %v, want %v", c.v, got, c.want)
		}
	}
}

func TestIndex(t *testing.T) {
	h := MustFromRows([][]int64{{2, 1}, {0, 3}})
	idx, err := Index(h)
	if err != nil {
		t.Fatalf("Index: %v", err)
	}
	if idx != 6 {
		t.Errorf("Index = %d, want 6", idx)
	}
}

func TestSublatticesOfIndexCount(t *testing.T) {
	// In Z^2 the number of sublattices of index m is σ(m).
	sigma := map[int64]int{1: 1, 2: 3, 3: 4, 4: 7, 5: 6, 6: 12, 8: 15, 12: 28}
	for m, want := range sigma {
		got := SublatticesOfIndex(2, m)
		if len(got) != want {
			t.Errorf("len(SublatticesOfIndex(2, %d)) = %d, want σ(%d) = %d", m, len(got), m, want)
		}
	}
}

func TestSublatticesOfIndexValid(t *testing.T) {
	for _, m := range []int64{1, 4, 6, 9} {
		for _, h := range SublatticesOfIndex(3, m) {
			if !IsSquareFullRankHNF(h) {
				t.Errorf("sublattice %s is not canonical HNF", h)
			}
			idx, err := Index(h)
			if err != nil {
				t.Fatalf("Index: %v", err)
			}
			if idx != m {
				t.Errorf("sublattice %s has index %d, want %d", h, idx, m)
			}
		}
	}
}

func TestSublatticesOfIndexDistinct(t *testing.T) {
	seen := map[string]bool{}
	for _, h := range SublatticesOfIndex(2, 12) {
		s := h.String()
		if seen[s] {
			t.Errorf("duplicate sublattice %s", s)
		}
		seen[s] = true
	}
}

func TestSublatticesDegenerateArgs(t *testing.T) {
	if got := SublatticesOfIndex(0, 4); got != nil {
		t.Errorf("SublatticesOfIndex(0, 4) = %v, want nil", got)
	}
	if got := SublatticesOfIndex(2, 0); got != nil {
		t.Errorf("SublatticesOfIndex(2, 0) = %v, want nil", got)
	}
}
