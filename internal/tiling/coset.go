package tiling

import (
	"fmt"
	"math"

	"tilingsched/internal/intmat"
	"tilingsched/internal/lattice"
)

// maxInlineDim bounds the dimension for which coset reduction runs on a
// stack buffer; higher-dimensional points fall back to a heap scratch
// slice. Every workload in this repository is far below the bound.
const maxInlineDim = 16

// cosetTable is the dense slot index shared by LatticeTiling and
// PeriodicTiling: a flat array over the det(H) residues of Z^d modulo the
// HNF period H, indexed by the mixed-radix number of the canonical
// representative (which lies in the fundamental box ∏_i [0, H_ii)). Slot
// lookup is one in-place HNF reduction plus one array read — no hashing,
// no string keys, no allocation.
type cosetTable struct {
	h      *intmat.Matrix
	dim    int
	hflat  []int64 // row-major copy of h, avoiding At() calls per entry
	diag   []int64 // h[i][i]
	stride []int   // mixed-radix strides over diag, last axis fastest
	slot   []int32 // residue index → slot, -1 while unassigned
}

// newCosetTable validates that h is a square full-rank HNF and allocates
// the (initially unassigned) residue table of size det(h).
func newCosetTable(h *intmat.Matrix) (*cosetTable, error) {
	if !intmat.IsSquareFullRankHNF(h) {
		return nil, fmt.Errorf("%w: period basis is not a full-rank HNF", ErrTiling)
	}
	dim := h.Rows()
	ct := &cosetTable{
		h:      h,
		dim:    dim,
		hflat:  make([]int64, dim*dim),
		diag:   make([]int64, dim),
		stride: make([]int, dim),
	}
	det := 1
	for i := 0; i < dim; i++ {
		for j := 0; j < dim; j++ {
			ct.hflat[i*dim+j] = h.At(i, j)
		}
		d := h.At(i, i)
		ct.diag[i] = d
		if int64(det) > int64(math.MaxInt32)/d {
			return nil, fmt.Errorf("%w: sublattice index %v overflows the residue table", ErrTiling, h)
		}
		det *= int(d)
	}
	s := 1
	for i := dim - 1; i >= 0; i-- {
		ct.stride[i] = s
		s *= int(ct.diag[i])
	}
	ct.slot = make([]int32, det)
	for i := range ct.slot {
		ct.slot[i] = -1
	}
	return ct, nil
}

// size returns det(h), the number of residues.
func (ct *cosetTable) size() int { return len(ct.slot) }

// residueIndex reduces p modulo the period and returns the mixed-radix
// index of its canonical representative. It allocates nothing for
// dimensions up to maxInlineDim.
func (ct *cosetTable) residueIndex(p lattice.Point) (int, bool) {
	if len(p) != ct.dim {
		return 0, false
	}
	var buf [maxInlineDim]int64
	var v []int64
	if ct.dim <= maxInlineDim {
		v = buf[:ct.dim]
	} else {
		v = make([]int64, ct.dim)
	}
	for i, c := range p {
		v[i] = int64(c)
	}
	// In-place HNF reduction; v[i] is final once row i is processed, so
	// the radix index accumulates in the same pass.
	idx := 0
	for i := 0; i < ct.dim; i++ {
		row := ct.hflat[i*ct.dim:]
		q := intmat.FloorDiv(v[i], ct.diag[i])
		if q != 0 {
			for j := i; j < ct.dim; j++ {
				v[j] -= q * row[j]
			}
		}
		idx += int(v[i]) * ct.stride[i]
	}
	return idx, true
}

// slotOf returns the slot assigned to p's residue; ok is false only on a
// dimension mismatch (every residue is assigned once construction
// completes).
func (ct *cosetTable) slotOf(p lattice.Point) (int, bool) {
	idx, ok := ct.residueIndex(p)
	if !ok {
		return 0, false
	}
	return int(ct.slot[idx]), true
}

// assign binds p's residue to slot k, reporting the previously assigned
// slot when the residue is already taken (a tiling-condition violation at
// construction time).
func (ct *cosetTable) assign(p lattice.Point, k int) (prev int, dup bool, err error) {
	idx, ok := ct.residueIndex(p)
	if !ok {
		return 0, false, fmt.Errorf("%w: point %v has dimension %d, want %d", ErrTiling, p, len(p), ct.dim)
	}
	if s := ct.slot[idx]; s >= 0 {
		return int(s), true, nil
	}
	ct.slot[idx] = int32(k)
	return 0, false, nil
}

// complete reports whether every residue has been assigned a slot.
func (ct *cosetTable) complete() bool {
	for _, s := range ct.slot {
		if s < 0 {
			return false
		}
	}
	return true
}

// representative returns the canonical representative of p's coset as a
// fresh point (cold path: rendering, verification, tests).
func (ct *cosetTable) representative(p lattice.Point) (lattice.Point, error) {
	rep, err := intmat.Reduce(ct.h, p.Int64())
	if err != nil {
		return nil, err
	}
	return lattice.FromInt64(rep), nil
}
