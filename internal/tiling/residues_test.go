package tiling

import (
	"math/rand"
	"testing"

	"tilingsched/internal/intmat"
	"tilingsched/internal/lattice"
)

// TestResiduesRoundTrip checks, for several period bases, that
// Representative inverts ClassOf and that classification is invariant
// under translation by period vectors — the property the implicit
// periodic conflict graphs build on.
func TestResiduesRoundTrip(t *testing.T) {
	periods := []*intmat.Matrix{
		intmat.Identity(2),
		intmat.MustFromRows([][]int64{{2, 0}, {0, 3}}),
		intmat.MustFromRows([][]int64{{2, 1}, {0, 3}}),
		// Non-HNF basis; brought to HNF internally. det = 5.
		intmat.MustFromRows([][]int64{{2, 1}, {-1, 2}}),
		intmat.MustFromRows([][]int64{{3, 0, 0}, {0, 1, 0}, {0, 0, 2}}),
	}
	rng := rand.New(rand.NewSource(31))
	for _, period := range periods {
		r, err := NewResidues(period)
		if err != nil {
			t.Fatalf("NewResidues(%v): %v", period, err)
		}
		det, err := r.Period().Det()
		if err != nil {
			t.Fatalf("Det: %v", err)
		}
		if int64(r.Classes()) != det {
			t.Fatalf("Classes = %d, det = %d", r.Classes(), det)
		}
		if r.Dim() != period.Rows() {
			t.Fatalf("Dim = %d, want %d", r.Dim(), period.Rows())
		}
		for c := 0; c < r.Classes(); c++ {
			rep := r.Representative(c)
			got, ok := r.ClassOf(rep)
			if !ok || got != c {
				t.Fatalf("ClassOf(Representative(%d)) = %d, %v", c, got, ok)
			}
		}
		// Translation invariance: p and p + Σ k_i·h_i share a class.
		h := r.Period()
		for probe := 0; probe < 200; probe++ {
			p := make(lattice.Point, r.Dim())
			for a := range p {
				p[a] = rng.Intn(41) - 20
			}
			q := p.Clone()
			for i := 0; i < r.Dim(); i++ {
				k := rng.Intn(7) - 3
				for a := 0; a < r.Dim(); a++ {
					q[a] += k * int(h.At(i, a))
				}
			}
			cp, okP := r.ClassOf(p)
			cq, okQ := r.ClassOf(q)
			if !okP || !okQ || cp != cq {
				t.Fatalf("period %v: ClassOf(%v) = %d but ClassOf(%v) = %d", period, p, cp, q, cq)
			}
		}
		// Distinct classes for points inside the fundamental box are
		// already pinned by the Representative round trip above.
	}
}

// TestResiduesDimensionMismatch pins the ok=false contract.
func TestResiduesDimensionMismatch(t *testing.T) {
	r := IdentityResidues(2)
	if _, ok := r.ClassOf(lattice.Pt(1, 2, 3)); ok {
		t.Fatal("ClassOf accepted a 3d point in a 2d classifier")
	}
	if c, ok := r.ClassOf(lattice.Pt(17, -4)); !ok || c != 0 {
		t.Fatalf("identity ClassOf = %d, %v; want 0, true", c, ok)
	}
	if r.Classes() != 1 {
		t.Fatalf("identity Classes = %d, want 1", r.Classes())
	}
}

// TestResiduesErrors covers the invalid-basis paths.
func TestResiduesErrors(t *testing.T) {
	if _, err := NewResidues(intmat.New(2, 3)); err == nil {
		t.Fatal("non-square basis accepted")
	}
	if _, err := NewResidues(intmat.New(2, 2)); err == nil {
		t.Fatal("singular basis accepted")
	}
}

// TestResiduesRepresentativePanics pins the out-of-range contract.
func TestResiduesRepresentativePanics(t *testing.T) {
	r := IdentityResidues(2)
	defer func() {
		if recover() == nil {
			t.Fatal("Representative(1) on a 1-class classifier did not panic")
		}
	}()
	r.Representative(1)
}
