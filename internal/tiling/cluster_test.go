package tiling

import (
	"testing"

	"tilingsched/internal/intmat"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

func TestFindPeriodicTilingGapCluster(t *testing.T) {
	// {0, 2} ⊂ Z admits no lattice tiling but tiles with T = {0,1}+4Z.
	gap := prototile.MustNew("gap", lattice.Pt(0), lattice.Pt(2))
	if _, ok := FindLatticeTiling(gap); ok {
		t.Fatal("gap cluster should have no lattice tiling")
	}
	pt, ok := FindPeriodicTiling(gap, 3)
	if !ok {
		t.Fatal("gap cluster should have a periodic tiling with ≤ 3 cosets")
	}
	if got := len(pt.Offsets()); got != 2 {
		t.Errorf("offsets = %d, want 2", got)
	}
	idx, err := intmat.Index(pt.Period())
	if err != nil {
		t.Fatalf("Index: %v", err)
	}
	if idx != 4 {
		t.Errorf("period index = %d, want 4", idx)
	}
	if err := pt.VerifyWindow(lattice.CenteredWindow(1, 12)); err != nil {
		t.Errorf("VerifyWindow: %v", err)
	}
}

func TestFindPeriodicTiling2DGap(t *testing.T) {
	// {(0,0), (2,0)} ⊂ Z² likewise needs two cosets.
	gap := prototile.MustNew("gap2", lattice.Pt(0, 0), lattice.Pt(2, 0))
	if _, ok := FindLatticeTiling(gap); ok {
		t.Fatal("2-D gap cluster should have no lattice tiling")
	}
	pt, ok := FindPeriodicTiling(gap, 2)
	if !ok {
		t.Fatal("2-D gap cluster should tile with 2 cosets")
	}
	if err := pt.VerifyWindow(lattice.CenteredWindow(2, 5)); err != nil {
		t.Errorf("VerifyWindow: %v", err)
	}
}

func TestFindPeriodicTilingReducesToLattice(t *testing.T) {
	// For an exact polyomino, one coset suffices and the result matches
	// a lattice tiling.
	s := prototile.MustTetromino("S")
	pt, ok := FindPeriodicTiling(s, 1)
	if !ok {
		t.Fatal("S should tile with one coset")
	}
	if len(pt.Offsets()) != 1 {
		t.Errorf("offsets = %d, want 1", len(pt.Offsets()))
	}
	if err := pt.VerifyWindow(lattice.CenteredWindow(2, 5)); err != nil {
		t.Errorf("VerifyWindow: %v", err)
	}
}

func TestFindPeriodicTilingRejectsNonTiler(t *testing.T) {
	// {0, 1, 3} does not tile Z at all.
	bad := prototile.MustNew("bad", lattice.Pt(0), lattice.Pt(1), lattice.Pt(3))
	if _, ok := FindPeriodicTiling(bad, 4); ok {
		t.Error("non-tiling cluster accepted")
	}
}

func TestPeriodicCosetIndexPartition(t *testing.T) {
	gap := prototile.MustNew("gap", lattice.Pt(0), lattice.Pt(2))
	pt, ok := FindPeriodicTiling(gap, 3)
	if !ok {
		t.Fatal("no periodic tiling")
	}
	// Every integer gets a slot in {0, 1}; slots must alternate so that
	// same-slot sensors are at distance ≥ ... simply: each slot class,
	// translated by the tile, partitions Z.
	counts := make([]int, gap.Size())
	for x := -20; x <= 20; x++ {
		k, err := pt.CosetIndex(lattice.Pt(x))
		if err != nil {
			t.Fatalf("CosetIndex(%d): %v", x, err)
		}
		if k < 0 || k >= gap.Size() {
			t.Fatalf("slot %d out of range", k)
		}
		counts[k]++
	}
	for k, c := range counts {
		if c == 0 {
			t.Errorf("slot %d unused", k)
		}
	}
}

func TestNewPeriodicTilingValidation(t *testing.T) {
	gap := prototile.MustNew("gap", lattice.Pt(0), lattice.Pt(2))
	fourZ := intmat.MustFromRows([][]int64{{4}})
	// Correct: offsets {0, 1}.
	pt, err := NewPeriodicTiling(gap, fourZ, []lattice.Point{lattice.Pt(0), lattice.Pt(1)})
	if err != nil {
		t.Fatalf("valid periodic tiling rejected: %v", err)
	}
	if err := pt.VerifyWindow(lattice.CenteredWindow(1, 10)); err != nil {
		t.Errorf("VerifyWindow: %v", err)
	}
	// Overlapping: offsets {0, 2} — 2 ≡ 0+2 covers residue 2 twice.
	if _, err := NewPeriodicTiling(gap, fourZ, []lattice.Point{lattice.Pt(0), lattice.Pt(2)}); err == nil {
		t.Error("overlapping offsets accepted")
	}
	// Wrong index.
	if _, err := NewPeriodicTiling(gap, intmat.MustFromRows([][]int64{{6}}),
		[]lattice.Point{lattice.Pt(0), lattice.Pt(1)}); err == nil {
		t.Error("wrong period index accepted")
	}
	// No offsets.
	if _, err := NewPeriodicTiling(gap, fourZ, nil); err == nil {
		t.Error("empty offsets accepted")
	}
	// Non-canonical offsets must be reduced, not rejected.
	pt2, err := NewPeriodicTiling(gap, fourZ, []lattice.Point{lattice.Pt(4), lattice.Pt(5)})
	if err != nil {
		t.Fatalf("non-canonical offsets rejected: %v", err)
	}
	if err := pt2.VerifyWindow(lattice.CenteredWindow(1, 8)); err != nil {
		t.Errorf("VerifyWindow after canonicalization: %v", err)
	}
}
