package tiling

import (
	"fmt"

	"tilingsched/internal/intmat"
	"tilingsched/internal/lattice"
)

// Residues is the exported face of the package's dense coset table: a
// classifier of lattice points into the det(H) residue classes of
// Z^d / HZ^d for an integer period basis H. It backs the implicit
// periodic conflict graphs (internal/graph), which store one conflict
// stencil per residue class and classify vertices on the fly.
//
// ClassOf is one in-place HNF reduction plus mixed-radix arithmetic —
// no hashing, no allocation for dimensions up to 16 — the same lookup
// cost contract as the tiling slot tables built over the identical
// machinery (DESIGN.md §3). A Residues is immutable and safe for
// unlimited concurrent readers.
type Residues struct {
	ct *cosetTable
}

// NewResidues builds the residue classifier of Z^d modulo the lattice
// spanned by the rows of period (any full-rank integer basis; it is
// brought to Hermite normal form internally). The number of classes is
// |det(period)|, which must fit the dense table (checked).
func NewResidues(period *intmat.Matrix) (*Residues, error) {
	if period.Rows() != period.Cols() {
		return nil, fmt.Errorf("%w: period basis is %dx%d, want square",
			ErrTiling, period.Rows(), period.Cols())
	}
	h, _ := intmat.HNF(period)
	if !intmat.IsSquareFullRankHNF(h) {
		return nil, fmt.Errorf("%w: period basis is singular", ErrTiling)
	}
	ct, err := newCosetTable(h)
	if err != nil {
		return nil, err
	}
	return &Residues{ct: ct}, nil
}

// IdentityResidues returns the trivial classifier of dimension dim: one
// class containing all of Z^d. It is the period of a homogeneous
// deployment, whose conflict structure is fully translation-invariant.
func IdentityResidues(dim int) *Residues {
	r, err := NewResidues(intmat.Identity(dim))
	if err != nil {
		// Identity is a valid HNF for every dim ≥ 1; dim ≤ 0 is a
		// programming error.
		panic(fmt.Sprintf("tiling: IdentityResidues(%d): %v", dim, err))
	}
	return r
}

// Dim returns the lattice dimension d.
func (r *Residues) Dim() int { return r.ct.dim }

// Classes returns the number of residue classes, det(H).
func (r *Residues) Classes() int { return r.ct.size() }

// Period returns the HNF basis of the period lattice.
func (r *Residues) Period() *intmat.Matrix { return r.ct.h.Clone() }

// ClassOf returns the dense index (in [0, Classes())) of p's residue
// class; ok is false only on a dimension mismatch. Allocation-free for
// dimensions up to 16.
func (r *Residues) ClassOf(p lattice.Point) (int, bool) {
	return r.ct.residueIndex(p)
}

// Representative returns the canonical representative of class c — the
// unique point of the class inside the fundamental box ∏_i [0, H_ii) —
// as a fresh point. It inverts ClassOf: ClassOf(Representative(c)) = c.
// It panics when c is outside [0, Classes()).
func (r *Residues) Representative(c int) lattice.Point {
	if c < 0 || c >= r.ct.size() {
		panic(fmt.Sprintf("tiling: Representative(%d) outside [0, %d)", c, r.ct.size()))
	}
	p := make(lattice.Point, r.ct.dim)
	for i := 0; i < r.ct.dim; i++ {
		p[i] = (c / r.ct.stride[i]) % int(r.ct.diag[i])
	}
	return p
}
