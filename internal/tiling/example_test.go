package tiling_test

import (
	"fmt"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/tiling"
)

// ExampleFindLatticeTiling answers the paper's question Q1 constructively.
func ExampleFindLatticeTiling() {
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	fmt.Println("exact:", ok)
	fmt.Println("period:", lt.Period())
	// Output:
	// exact: true
	// period: [[1 2] [0 5]]
}

// ExampleFindPeriodicTiling handles a cluster with no lattice tiling: the
// gap {0, 2} needs two coset translates.
func ExampleFindPeriodicTiling() {
	gap := prototile.MustNew("gap", lattice.Pt(0), lattice.Pt(2))
	pt, ok := tiling.FindPeriodicTiling(gap, 3)
	fmt.Println("exact:", ok)
	fmt.Println("cosets:", len(pt.Offsets()))
	// Output:
	// exact: true
	// cosets: 2
}

// ExampleSolveTorus enumerates the S-tetromino tilings of the 4×4 torus.
func ExampleSolveTorus() {
	s := prototile.MustTetromino("S")
	sols, err := tiling.SolveTorus([]int{4, 4}, []*prototile.Tile{s}, tiling.SolveOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Println("tilings:", len(sols))
	fmt.Println("respectable:", sols[0].Respectable())
	// Output:
	// tilings: 12
	// respectable: true
}
