// Package tiling implements tilings of lattices by translates of
// prototiles — Section 2 of the paper.
//
// A subset T ⊆ L tiles L with a prototile N when (T1) the translates
// t + N cover L and (T2) distinct translates are disjoint. This package
// provides two complementary representations:
//
//   - LatticeTiling: T is a full-rank sublattice of Z^d and N is a
//     transversal (complete set of coset representatives) of Z^d / T.
//     This form is exact — T1/T2 are verified group-theoretically with no
//     finite-window approximation — and every polyomino that tiles by
//     translation admits such a tiling.
//   - TorusTiling: an explicit exact cover of a torus quotient by
//     placements of one or more prototiles, found by backtracking. This
//     form expresses the multi-prototile tilings of Section 4 (conditions
//     GT1/GT2), including the paper's Figure 5 S/Z-tetromino examples.
package tiling

import (
	"errors"
	"fmt"

	"tilingsched/internal/intmat"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

// ErrTiling indicates an invalid tiling construction or a failed
// verification.
var ErrTiling = errors.New("tiling: invalid tiling")

// LatticeTiling is a tiling of Z^d whose translate set T is a full-rank
// sublattice, given by its Hermite-normal-form basis. The prototile N is a
// transversal of Z^d / T, so by construction conditions T1 and T2 hold on
// the whole (infinite) lattice.
type LatticeTiling struct {
	tile   *prototile.Tile
	period *intmat.Matrix
	// ct maps each residue of Z^d / T (by dense mixed-radix index of its
	// canonical representative) to the covering tile point's index in the
	// tile's point order — the basis of the Theorem 1 schedule. Lookup is
	// allocation-free; see cosetTable.
	ct *cosetTable
}

// NewLatticeTiling validates that the prototile is a transversal of the
// sublattice spanned by the rows of period (any integer basis; it is
// brought to HNF internally), and returns the resulting tiling.
func NewLatticeTiling(t *prototile.Tile, period *intmat.Matrix) (*LatticeTiling, error) {
	if period.Rows() != t.Dim() || period.Cols() != t.Dim() {
		return nil, fmt.Errorf("%w: period is %dx%d for dimension %d",
			ErrTiling, period.Rows(), period.Cols(), t.Dim())
	}
	h, _ := intmat.HNF(period)
	if !intmat.IsSquareFullRankHNF(h) {
		return nil, fmt.Errorf("%w: period basis is singular", ErrTiling)
	}
	ct, err := newCosetTable(h)
	if err != nil {
		return nil, err
	}
	if ct.size() != t.Size() {
		return nil, fmt.Errorf("%w: sublattice index %d ≠ |N| = %d", ErrTiling, ct.size(), t.Size())
	}
	pts := t.Points()
	for i, p := range pts {
		prev, dup, err := ct.assign(p, i)
		if err != nil {
			return nil, err
		}
		if dup {
			return nil, fmt.Errorf("%w: tile points %v and %v are congruent mod T",
				ErrTiling, pts[prev], p)
		}
	}
	return &LatticeTiling{tile: t, period: h, ct: ct}, nil
}

// FindLatticeTiling searches for a sublattice T of index |N| that makes
// the prototile a transversal, answering the paper's question Q1
// constructively for lattice-periodic tilings. The search enumerates every
// sublattice of Z^d of index |N| in Hermite normal form; the first
// transversal hit is returned.
func FindLatticeTiling(t *prototile.Tile) (*LatticeTiling, bool) {
	for _, h := range intmat.SublatticesOfIndex(t.Dim(), int64(t.Size())) {
		if lt, err := NewLatticeTiling(t, h); err == nil {
			return lt, true
		}
	}
	return nil, false
}

// AllLatticeTilings returns every sublattice tiling of the prototile (one
// per distinct period sublattice). Used to study how schedules depend on
// the chosen tiling.
func AllLatticeTilings(t *prototile.Tile) []*LatticeTiling {
	var out []*LatticeTiling
	for _, h := range intmat.SublatticesOfIndex(t.Dim(), int64(t.Size())) {
		if lt, err := NewLatticeTiling(t, h); err == nil {
			out = append(out, lt)
		}
	}
	return out
}

// Tile returns the prototile N.
func (lt *LatticeTiling) Tile() *prototile.Tile { return lt.tile }

// Period returns the HNF basis of the translate sublattice T.
func (lt *LatticeTiling) Period() *intmat.Matrix { return lt.period.Clone() }

// CosetIndex returns the index k (0-based) of the tile point n_k whose
// coset contains p; every lattice point has exactly one such k. This is
// the slot assignment of Theorem 1: one in-place HNF reduction plus one
// dense table read, with no allocation.
func (lt *LatticeTiling) CosetIndex(p lattice.Point) (int, error) {
	k, ok := lt.ct.slotOf(p)
	if !ok {
		return 0, fmt.Errorf("%w: point %v has dimension %d, want %d",
			ErrTiling, p, len(p), lt.tile.Dim())
	}
	return k, nil
}

// TranslateOf returns the unique t ∈ T with p ∈ t + N.
func (lt *LatticeTiling) TranslateOf(p lattice.Point) (lattice.Point, error) {
	k, err := lt.CosetIndex(p)
	if err != nil {
		return nil, err
	}
	return p.Sub(lt.tile.Points()[k]), nil
}

// InTranslateSet reports whether t belongs to the translate set T (the
// sublattice).
func (lt *LatticeTiling) InTranslateSet(t lattice.Point) (bool, error) {
	return intmat.InLattice(lt.period, t.Int64())
}

// VerifyWindow checks conditions T1 and T2 explicitly on a finite window:
// every window point must be covered by exactly one translate t + N with
// t ∈ T. It is redundant given the group-theoretic construction, but
// provides an independent, paper-literal validation used by the tests and
// the experiment harness.
func (lt *LatticeTiling) VerifyWindow(w lattice.Window) error {
	if w.Dim() != lt.tile.Dim() {
		return fmt.Errorf("%w: window dimension %d ≠ tile dimension %d", ErrTiling, w.Dim(), lt.tile.Dim())
	}
	size, err := w.SizeChecked()
	if err != nil {
		return err
	}
	cover := make([]int32, size)
	// Candidate translates: any t with (t + N) ∩ window ≠ ∅ lies within
	// the window expanded by the tile's bounding box.
	lo, hi := lt.tile.BoundingBox()
	expLo := w.Lo.Sub(hi)
	expHi := w.Hi.Sub(lo)
	ext, err := lattice.NewWindow(expLo, expHi)
	if err != nil {
		return err
	}
	tilePts := lt.tile.Points()
	buf := make(lattice.Point, 0, w.Dim())
	var verr error
	ext.Each(func(t lattice.Point) bool {
		in, err := lt.InTranslateSet(t)
		if err != nil {
			verr = err
			return false
		}
		if !in {
			return true
		}
		for _, n := range tilePts {
			buf = t.AddInto(n, buf[:0])
			if i, ok := w.IndexOf(buf); ok {
				cover[i]++
			}
		}
		return true
	})
	if verr != nil {
		return verr
	}
	for i, c := range cover {
		switch {
		case c == 0:
			return fmt.Errorf("%w: T1 violated, %v uncovered", ErrTiling, w.PointAt(i))
		case c > 1:
			return fmt.Errorf("%w: T2 violated, %v covered %d times", ErrTiling, w.PointAt(i), c)
		}
	}
	return nil
}

// String summarizes the tiling.
func (lt *LatticeTiling) String() string {
	return fmt.Sprintf("tiling{%s, period %s}", lt.tile.Name(), lt.period)
}
