package tiling

import (
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

func TestNewTorusTilingO(t *testing.T) {
	o := prototile.MustTetromino("O")
	places := []Placement{
		{TileIndex: 0, Offset: lattice.Pt(0, 0)},
		{TileIndex: 0, Offset: lattice.Pt(2, 0)},
		{TileIndex: 0, Offset: lattice.Pt(0, 2)},
		{TileIndex: 0, Offset: lattice.Pt(2, 2)},
	}
	tt, err := NewTorusTiling([]int{4, 4}, []*prototile.Tile{o}, places)
	if err != nil {
		t.Fatalf("NewTorusTiling: %v", err)
	}
	if !tt.Respectable() {
		t.Error("single-prototile tiling must be respectable")
	}
	counts := tt.TileCounts()
	if counts[0] != 4 {
		t.Errorf("TileCounts = %v, want [4]", counts)
	}
}

func TestNewTorusTilingRejectsOverlap(t *testing.T) {
	o := prototile.MustTetromino("O")
	places := []Placement{
		{TileIndex: 0, Offset: lattice.Pt(0, 0)},
		{TileIndex: 0, Offset: lattice.Pt(1, 0)}, // overlaps
		{TileIndex: 0, Offset: lattice.Pt(0, 2)},
		{TileIndex: 0, Offset: lattice.Pt(2, 2)},
	}
	if _, err := NewTorusTiling([]int{4, 4}, []*prototile.Tile{o}, places); err == nil {
		t.Error("overlapping placements accepted (GT2)")
	}
}

func TestNewTorusTilingRejectsGaps(t *testing.T) {
	o := prototile.MustTetromino("O")
	places := []Placement{
		{TileIndex: 0, Offset: lattice.Pt(0, 0)},
		{TileIndex: 0, Offset: lattice.Pt(2, 0)},
		{TileIndex: 0, Offset: lattice.Pt(0, 2)},
	}
	if _, err := NewTorusTiling([]int{4, 4}, []*prototile.Tile{o}, places); err == nil {
		t.Error("partial cover accepted (GT1)")
	}
}

func TestNewTorusTilingValidation(t *testing.T) {
	o := prototile.MustTetromino("O")
	if _, err := NewTorusTiling(nil, []*prototile.Tile{o}, nil); err == nil {
		t.Error("empty dims accepted")
	}
	if _, err := NewTorusTiling([]int{4, 0}, []*prototile.Tile{o}, nil); err == nil {
		t.Error("zero side accepted")
	}
	if _, err := NewTorusTiling([]int{4, 4}, nil, nil); err == nil {
		t.Error("no prototiles accepted")
	}
	seg := prototile.MustNew("seg", lattice.Pt(0))
	if _, err := NewTorusTiling([]int{4, 4}, []*prototile.Tile{seg}, nil); err == nil {
		t.Error("dimension mismatch accepted")
	}
	if _, err := NewTorusTiling([]int{2, 2}, []*prototile.Tile{o},
		[]Placement{{TileIndex: 1, Offset: lattice.Pt(0, 0)}}); err == nil {
		t.Error("out-of-range tile index accepted")
	}
}

func TestSolveTorusO(t *testing.T) {
	o := prototile.MustTetromino("O")
	sols, err := SolveTorus([]int{4, 4}, []*prototile.Tile{o}, SolveOptions{})
	if err != nil {
		t.Fatalf("SolveTorus: %v", err)
	}
	if len(sols) == 0 {
		t.Fatal("no O tilings of the 4x4 torus")
	}
	for _, s := range sols {
		if got := s.TileCounts()[0]; got != 4 {
			t.Errorf("solution uses %d tiles, want 4", got)
		}
	}
}

func TestSolveTorusS(t *testing.T) {
	// The S tetromino tiles the 4x4 torus (its plane tiling with period
	// ⟨(1,2),(0,4)⟩ projects onto the torus).
	s := prototile.MustTetromino("S")
	sols, err := SolveTorus([]int{4, 4}, []*prototile.Tile{s}, SolveOptions{MaxSolutions: 5})
	if err != nil {
		t.Fatalf("SolveTorus: %v", err)
	}
	if len(sols) == 0 {
		t.Fatal("no S tilings of the 4x4 torus")
	}
}

func TestSolveTorusMaxSolutions(t *testing.T) {
	o := prototile.MustTetromino("O")
	sols, err := SolveTorus([]int{4, 4}, []*prototile.Tile{o}, SolveOptions{MaxSolutions: 1})
	if err != nil {
		t.Fatalf("SolveTorus: %v", err)
	}
	if len(sols) != 1 {
		t.Errorf("got %d solutions, want 1", len(sols))
	}
}

func TestSolveTorusMixedSZ(t *testing.T) {
	// Mixed S/Z tilings exist on the 4x4 torus (the Figure 5 ingredient
	// shapes); verify all solutions pass GT1/GT2 and that pure-S
	// solutions appear when no constraint is given.
	s := prototile.MustTetromino("S")
	z := prototile.MustTetromino("Z")
	sols, err := SolveTorus([]int{4, 4}, []*prototile.Tile{s, z}, SolveOptions{})
	if err != nil {
		t.Fatalf("SolveTorus: %v", err)
	}
	if len(sols) == 0 {
		t.Fatal("no S/Z tilings found")
	}
	var sawPureS, sawMixed bool
	for _, sol := range sols {
		counts := sol.TileCounts()
		if counts[0]+counts[1] != 4 {
			t.Errorf("solution has %v tiles, want 4 total", counts)
		}
		if counts[1] == 0 {
			sawPureS = true
		}
		if counts[0] > 0 && counts[1] > 0 {
			sawMixed = true
		}
		if sol.Respectable() {
			t.Error("S/Z tiling reported respectable (neither contains the other)")
		}
	}
	if !sawPureS {
		t.Error("expected a pure-S tiling among solutions")
	}
	_ = sawMixed // mixed tilings may or may not exist on this small torus
}

func TestSolveTorusAcceptFilter(t *testing.T) {
	s := prototile.MustTetromino("S")
	z := prototile.MustTetromino("Z")
	sols, err := SolveTorus([]int{4, 4}, []*prototile.Tile{s, z}, SolveOptions{
		Accept: func(counts []int) bool { return counts[1] == 0 },
	})
	if err != nil {
		t.Fatalf("SolveTorus: %v", err)
	}
	for _, sol := range sols {
		if sol.TileCounts()[1] != 0 {
			t.Error("Accept filter ignored")
		}
	}
	if len(sols) == 0 {
		t.Error("no pure-S solutions under filter")
	}
}

func TestOwnerAndTileAt(t *testing.T) {
	o := prototile.MustTetromino("O")
	sols, err := SolveTorus([]int{4, 4}, []*prototile.Tile{o}, SolveOptions{MaxSolutions: 1})
	if err != nil || len(sols) == 0 {
		t.Fatalf("SolveTorus: %v (%d sols)", err, len(sols))
	}
	tt := sols[0]
	for _, p := range mustWindow(t, 4, 4).Points() {
		pl, err := tt.OwnerOf(p)
		if err != nil {
			t.Fatalf("OwnerOf(%v): %v", p, err)
		}
		// p must be one of the placement's covered cells.
		found := false
		for _, n := range o.Points() {
			if tt.Wrap(pl.Offset.Add(n)).Equal(tt.Wrap(p)) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("placement %v does not cover %v", pl, p)
		}
		ti, err := tt.TileAt(p)
		if err != nil {
			t.Fatalf("TileAt: %v", err)
		}
		if ti != o {
			t.Error("TileAt returned wrong prototile")
		}
	}
}

func TestOwnerOfWrapsAndChecksDim(t *testing.T) {
	o := prototile.MustTetromino("O")
	sols, _ := SolveTorus([]int{4, 4}, []*prototile.Tile{o}, SolveOptions{MaxSolutions: 1})
	tt := sols[0]
	a, err := tt.OwnerOf(lattice.Pt(5, -3))
	if err != nil {
		t.Fatalf("OwnerOf wrapped: %v", err)
	}
	b, err := tt.OwnerOf(lattice.Pt(1, 1))
	if err != nil {
		t.Fatalf("OwnerOf: %v", err)
	}
	if !a.Offset.Equal(b.Offset) || a.TileIndex != b.TileIndex {
		t.Error("wrapping changed the owner")
	}
	if _, err := tt.OwnerOf(lattice.Pt(1)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestRespectablePair(t *testing.T) {
	// Moore ball ⊃ cross: a tiling listing them in that order is
	// respectable by definition when it validates.
	moore := prototile.ChebyshevBall(2, 1)
	cross := prototile.Cross(2, 1)
	tt := &TorusTiling{tiles: []*prototile.Tile{moore, cross}}
	if !tt.Respectable() {
		t.Error("Moore/cross pair should be respectable")
	}
	tt2 := &TorusTiling{tiles: []*prototile.Tile{cross, moore}}
	if tt2.Respectable() {
		t.Error("cross cannot respect the Moore ball")
	}
}

func mustWindow(t *testing.T, sides ...int) lattice.Window {
	t.Helper()
	w, err := lattice.BoxWindow(sides...)
	if err != nil {
		t.Fatalf("BoxWindow: %v", err)
	}
	return w
}
