package tiling

import (
	"testing"

	"tilingsched/internal/intmat"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

// TestCosetIndexMatchesStringMapSemantics rebuilds the pre-dense
// implementation — a map from the canonical coset representative's string
// key to the tile-point index — and checks the dense residue table agrees
// point for point on a window.
func TestCosetIndexMatchesStringMapSemantics(t *testing.T) {
	tiles := []*prototile.Tile{
		prototile.Cross(2, 1),
		prototile.ChebyshevBall(2, 1),
		prototile.MustTetromino("S"),
		prototile.LTromino(),
		prototile.ChebyshevBall(3, 1),
	}
	for _, ti := range tiles {
		lt, ok := FindLatticeTiling(ti)
		if !ok {
			t.Fatalf("no lattice tiling for %s", ti.Name())
		}
		h := lt.Period()
		ref := make(map[string]int, ti.Size())
		for i, p := range ti.Points() {
			rep, err := intmat.Reduce(h, p.Int64())
			if err != nil {
				t.Fatalf("Reduce: %v", err)
			}
			ref[lattice.FromInt64(rep).Key()] = i
		}
		w := lattice.CenteredWindow(ti.Dim(), 4)
		w.Each(func(p lattice.Point) bool {
			rep, err := intmat.Reduce(h, p.Int64())
			if err != nil {
				t.Fatalf("Reduce: %v", err)
			}
			want, ok := ref[lattice.FromInt64(rep).Key()]
			if !ok {
				t.Fatalf("%s: reference map has no slot for %v", ti.Name(), p)
			}
			got, err := lt.CosetIndex(p)
			if err != nil {
				t.Fatalf("%s: CosetIndex(%v): %v", ti.Name(), p, err)
			}
			if got != want {
				t.Fatalf("%s: CosetIndex(%v) = %d, want %d", ti.Name(), p, got, want)
			}
			return true
		})
		// Dimension mismatch is still an error.
		if _, err := lt.CosetIndex(lattice.Origin(ti.Dim() + 1)); err == nil {
			t.Errorf("%s: CosetIndex accepted a wrong-dimension point", ti.Name())
		}
	}
}

// TestCosetIndexSemantics cross-checks the algebraic meaning: slot k at p
// implies p - n_k lies in the translate sublattice.
func TestCosetIndexSemantics(t *testing.T) {
	ti := prototile.Cross(2, 1)
	lt, ok := FindLatticeTiling(ti)
	if !ok {
		t.Fatal("no tiling")
	}
	pts := ti.Points()
	w := lattice.CenteredWindow(2, 5)
	w.Each(func(p lattice.Point) bool {
		k, err := lt.CosetIndex(p)
		if err != nil {
			t.Fatalf("CosetIndex(%v): %v", p, err)
		}
		in, err := lt.InTranslateSet(p.Sub(pts[k]))
		if err != nil {
			t.Fatalf("InTranslateSet: %v", err)
		}
		if !in {
			t.Fatalf("p=%v slot %d: p - n_k not in T", p, k)
		}
		return true
	})
}

// TestPeriodicTilingDenseParity does the same string-map comparison for
// the coset (non-lattice) tilings.
func TestPeriodicTilingDenseParity(t *testing.T) {
	gap := prototile.MustNew("gap", lattice.Pt(0, 0), lattice.Pt(2, 0))
	pt, ok := FindPeriodicTiling(gap, 2)
	if !ok {
		t.Fatal("no periodic tiling for the gap cluster")
	}
	h := pt.Period()
	ref := make(map[string]int)
	for _, off := range pt.Offsets() {
		for k, n := range gap.Points() {
			rep, err := intmat.Reduce(h, off.Add(n).Int64())
			if err != nil {
				t.Fatalf("Reduce: %v", err)
			}
			ref[lattice.FromInt64(rep).Key()] = k
		}
	}
	w := lattice.CenteredWindow(2, 5)
	w.Each(func(p lattice.Point) bool {
		rep, err := intmat.Reduce(h, p.Int64())
		if err != nil {
			t.Fatalf("Reduce: %v", err)
		}
		want, ok := ref[lattice.FromInt64(rep).Key()]
		if !ok {
			t.Fatalf("reference map misses residue of %v", p)
		}
		got, err := pt.CosetIndex(p)
		if err != nil {
			t.Fatalf("CosetIndex(%v): %v", p, err)
		}
		if got != want {
			t.Fatalf("CosetIndex(%v) = %d, want %d", p, got, want)
		}
		return true
	})
}

// TestTorusOwnerDenseParity checks the dense owner table against the
// wrapped-coordinate definition of cell ownership.
func TestTorusOwnerDenseParity(t *testing.T) {
	s := prototile.MustTetromino("S")
	z := prototile.MustTetromino("Z")
	sols, err := SolveTorus([]int{4, 4}, []*prototile.Tile{s, z}, SolveOptions{MaxSolutions: 3})
	if err != nil || len(sols) == 0 {
		t.Fatalf("SolveTorus: %v (%d solutions)", err, len(sols))
	}
	for _, tt := range sols {
		// Rebuild ownership from placements the slow way.
		ref := make(map[string]int)
		tiles := tt.Tiles()
		for pi, pl := range tt.Placements() {
			for _, n := range tiles[pl.TileIndex].Points() {
				ref[tt.Wrap(pl.Offset.Add(n)).Key()] = pi
			}
		}
		w, err := lattice.BoxWindow(tt.Dims()...)
		if err != nil {
			t.Fatal(err)
		}
		w.Each(func(p lattice.Point) bool {
			pl, err := tt.OwnerOf(p)
			if err != nil {
				t.Fatalf("OwnerOf(%v): %v", p, err)
			}
			want := tt.Placements()[ref[p.Key()]]
			if pl.TileIndex != want.TileIndex || !pl.Offset.Equal(want.Offset) {
				t.Fatalf("OwnerOf(%v) = %+v, want %+v", p, pl, want)
			}
			return true
		})
	}
}
