package tiling

import (
	"fmt"

	"tilingsched/internal/intmat"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

// PeriodicTiling generalizes LatticeTiling to translate sets that are
// unions of cosets: T = {t_1, …, t_k} + P for a full-rank sublattice P of
// index k·|N|. Every periodic tiling of Z^d has this shape; searching over
// small k decides exactness for clusters that tile only non-lattice-
// periodically (the paper's Section 3 cites Szegedy's algorithm for such
// clusters — e.g. {0, 2} ⊂ Z tiles only with T = {0, 1} + 4Z).
//
// A PeriodicTiling still yields a Theorem 1 schedule with |N| slots: the
// sensors at {t_i + n_k : i} ∪ P broadcast in slot k.
type PeriodicTiling struct {
	tile    *prototile.Tile
	period  *intmat.Matrix
	offsets []lattice.Point
	// ct maps each residue of Z^d / P (by dense mixed-radix index) to the
	// index k of the tile point covering it; lookups are allocation-free.
	ct *cosetTable
}

// NewPeriodicTiling validates that the translates {t_i + N} partition
// Z^d / P, i.e. the k·|N| points t_i + n are pairwise incongruent mod P
// and P has index exactly k·|N|.
func NewPeriodicTiling(t *prototile.Tile, period *intmat.Matrix, offsets []lattice.Point) (*PeriodicTiling, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("%w: no offsets", ErrTiling)
	}
	if period.Rows() != t.Dim() || period.Cols() != t.Dim() {
		return nil, fmt.Errorf("%w: period is %dx%d for dimension %d",
			ErrTiling, period.Rows(), period.Cols(), t.Dim())
	}
	h, _ := intmat.HNF(period)
	if !intmat.IsSquareFullRankHNF(h) {
		return nil, fmt.Errorf("%w: period basis is singular", ErrTiling)
	}
	ct, err := newCosetTable(h)
	if err != nil {
		return nil, err
	}
	want := len(offsets) * t.Size()
	if ct.size() != want {
		return nil, fmt.Errorf("%w: period index %d ≠ k·|N| = %d", ErrTiling, ct.size(), want)
	}
	canonical := make([]lattice.Point, len(offsets))
	tilePts := t.Points()
	buf := make(lattice.Point, 0, t.Dim())
	for i, off := range offsets {
		if off.Dim() != t.Dim() {
			return nil, fmt.Errorf("%w: offset %v has dimension %d", ErrTiling, off, off.Dim())
		}
		canonical[i], err = ct.representative(off)
		if err != nil {
			return nil, err
		}
		for k, n := range tilePts {
			buf = off.AddInto(n, buf[:0])
			_, dup, err := ct.assign(buf, k)
			if err != nil {
				return nil, err
			}
			if dup {
				return nil, fmt.Errorf("%w: residue of %v covered twice", ErrTiling, buf)
			}
		}
	}
	return &PeriodicTiling{tile: t, period: h, offsets: canonical, ct: ct}, nil
}

// FindPeriodicTiling searches for a periodic tiling with at most
// maxCosets coset translates (k = 1 recovers the lattice-tiling search).
// The search runs exact cover over the quotient group Z^d / P for every
// sublattice P of index k·|N|: the smallest uncovered residue is covered
// by each candidate translate in turn.
func FindPeriodicTiling(t *prototile.Tile, maxCosets int) (*PeriodicTiling, bool) {
	for k := 1; k <= maxCosets; k++ {
		index := int64(k) * int64(t.Size())
		for _, h := range intmat.SublatticesOfIndex(t.Dim(), index) {
			if pt, ok := solveQuotientCover(t, h, k); ok {
				return pt, true
			}
		}
	}
	return nil, false
}

// solveQuotientCover attempts to partition Z^d / P into k translates of
// the tile by depth-first exact cover over residues. Residues are indexed
// densely: the canonical representatives are exactly the points of the
// fundamental box ∏_i [0, P_ii), whose lexicographic order matches the
// cosetTable's mixed-radix index.
func solveQuotientCover(t *prototile.Tile, h *intmat.Matrix, k int) (*PeriodicTiling, bool) {
	ct, err := newCosetTable(h)
	if err != nil {
		return nil, false
	}
	dim := t.Dim()
	sides := make([]int, dim)
	for i := 0; i < dim; i++ {
		sides[i] = int(h.At(i, i))
	}
	box, err := lattice.BoxWindow(sides...)
	if err != nil {
		return nil, false
	}
	covered := make([]bool, ct.size())
	var offsets []lattice.Point
	tilePts := t.Points()
	buf := make(lattice.Point, 0, dim)
	var dfs func(used int) bool
	dfs = func(used int) bool {
		target := -1
		for i, c := range covered {
			if !c {
				target = i
				break
			}
		}
		if target == -1 {
			return used == k
		}
		if used == k {
			return false
		}
		// The uncovered residue r must be t + n for the new translate t
		// and some tile point n: t = r - n.
		res := box.PointAt(target)
		for _, n := range tilePts {
			off := res.Sub(n)
			idxs := make([]int, 0, len(tilePts))
			ok := true
			for _, nn := range tilePts {
				buf = off.AddInto(nn, buf[:0])
				ri, exists := ct.residueIndex(buf)
				if !exists || covered[ri] {
					ok = false
					break
				}
				idxs = append(idxs, ri)
			}
			if !ok || hasDuplicate(idxs) {
				continue
			}
			for _, ri := range idxs {
				covered[ri] = true
			}
			offCanon, err := ct.representative(off)
			if err != nil {
				return false
			}
			offsets = append(offsets, offCanon)
			if dfs(used + 1) {
				return true
			}
			offsets = offsets[:len(offsets)-1]
			for _, ri := range idxs {
				covered[ri] = false
			}
		}
		return false
	}
	if !dfs(0) {
		return nil, false
	}
	pt, err := NewPeriodicTiling(t, h, offsets)
	if err != nil {
		return nil, false
	}
	return pt, true
}

// Tile returns the prototile.
func (pt *PeriodicTiling) Tile() *prototile.Tile { return pt.tile }

// Period returns the HNF basis of the period sublattice P.
func (pt *PeriodicTiling) Period() *intmat.Matrix { return pt.period.Clone() }

// Offsets returns the coset translates t_1..t_k.
func (pt *PeriodicTiling) Offsets() []lattice.Point { return clonePoints(pt.offsets) }

// CosetIndex returns the slot (index into the tile's points) of the
// translate covering p — the Theorem 1 schedule over the generalized
// tiling.
func (pt *PeriodicTiling) CosetIndex(p lattice.Point) (int, error) {
	k, ok := pt.ct.slotOf(p)
	if !ok {
		return 0, fmt.Errorf("%w: point %v has dimension %d, want %d",
			ErrTiling, p, len(p), pt.tile.Dim())
	}
	return k, nil
}

// VerifyWindow re-checks T1/T2 explicitly on a window, mirroring
// LatticeTiling.VerifyWindow.
func (pt *PeriodicTiling) VerifyWindow(w lattice.Window) error {
	if w.Dim() != pt.tile.Dim() {
		return fmt.Errorf("%w: window dimension %d ≠ tile dimension %d", ErrTiling, w.Dim(), pt.tile.Dim())
	}
	size, err := w.SizeChecked()
	if err != nil {
		return err
	}
	cover := make([]int32, size)
	// t ∈ T exactly when t's residue equals one of the (canonical) offset
	// residues; mark those residues once for O(1) membership tests.
	isOffset := make([]bool, pt.ct.size())
	for _, off := range pt.offsets {
		ri, ok := pt.ct.residueIndex(off)
		if !ok {
			return fmt.Errorf("%w: offset %v has dimension %d", ErrTiling, off, off.Dim())
		}
		isOffset[ri] = true
	}
	lo, hi := pt.tile.BoundingBox()
	ext, err := lattice.NewWindow(w.Lo.Sub(hi), w.Hi.Sub(lo))
	if err != nil {
		return err
	}
	tilePts := pt.tile.Points()
	buf := make(lattice.Point, 0, w.Dim())
	ext.Each(func(t lattice.Point) bool {
		ri, ok := pt.ct.residueIndex(t)
		if !ok || !isOffset[ri] {
			return true
		}
		for _, n := range tilePts {
			buf = t.AddInto(n, buf[:0])
			if i, ok := w.IndexOf(buf); ok {
				cover[i]++
			}
		}
		return true
	})
	for i, c := range cover {
		switch {
		case c == 0:
			return fmt.Errorf("%w: T1 violated, %v uncovered", ErrTiling, w.PointAt(i))
		case c > 1:
			return fmt.Errorf("%w: T2 violated, %v covered %d times", ErrTiling, w.PointAt(i), c)
		}
	}
	return nil
}

// String summarizes the tiling.
func (pt *PeriodicTiling) String() string {
	return fmt.Sprintf("periodic-tiling{%s, period %s, %d cosets}",
		pt.tile.Name(), pt.period, len(pt.offsets))
}

func clonePoints(ps []lattice.Point) []lattice.Point {
	out := make([]lattice.Point, len(ps))
	for i, p := range ps {
		out[i] = p.Clone()
	}
	return out
}
