package tiling

import (
	"fmt"

	"tilingsched/internal/intmat"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

// PeriodicTiling generalizes LatticeTiling to translate sets that are
// unions of cosets: T = {t_1, …, t_k} + P for a full-rank sublattice P of
// index k·|N|. Every periodic tiling of Z^d has this shape; searching over
// small k decides exactness for clusters that tile only non-lattice-
// periodically (the paper's Section 3 cites Szegedy's algorithm for such
// clusters — e.g. {0, 2} ⊂ Z tiles only with T = {0, 1} + 4Z).
//
// A PeriodicTiling still yields a Theorem 1 schedule with |N| slots: the
// sensors at {t_i + n_k : i} ∪ P broadcast in slot k.
type PeriodicTiling struct {
	tile    *prototile.Tile
	period  *intmat.Matrix
	offsets []lattice.Point
	// slot maps each residue (canonical representative of Z^d / P) to
	// the index k of the tile point covering it.
	slot map[string]int
}

// NewPeriodicTiling validates that the translates {t_i + N} partition
// Z^d / P, i.e. the k·|N| points t_i + n are pairwise incongruent mod P
// and P has index exactly k·|N|.
func NewPeriodicTiling(t *prototile.Tile, period *intmat.Matrix, offsets []lattice.Point) (*PeriodicTiling, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("%w: no offsets", ErrTiling)
	}
	if period.Rows() != t.Dim() || period.Cols() != t.Dim() {
		return nil, fmt.Errorf("%w: period is %dx%d for dimension %d",
			ErrTiling, period.Rows(), period.Cols(), t.Dim())
	}
	h, _ := intmat.HNF(period)
	if !intmat.IsSquareFullRankHNF(h) {
		return nil, fmt.Errorf("%w: period basis is singular", ErrTiling)
	}
	idx, err := intmat.Index(h)
	if err != nil {
		return nil, err
	}
	want := int64(len(offsets)) * int64(t.Size())
	if idx != want {
		return nil, fmt.Errorf("%w: period index %d ≠ k·|N| = %d", ErrTiling, idx, want)
	}
	slot := make(map[string]int, want)
	canonical := make([]lattice.Point, len(offsets))
	for i, off := range offsets {
		if off.Dim() != t.Dim() {
			return nil, fmt.Errorf("%w: offset %v has dimension %d", ErrTiling, off, off.Dim())
		}
		rep, err := intmat.Reduce(h, off.Int64())
		if err != nil {
			return nil, err
		}
		canonical[i] = lattice.FromInt64(rep)
		for k, n := range t.Points() {
			rep, err := intmat.Reduce(h, off.Add(n).Int64())
			if err != nil {
				return nil, err
			}
			key := lattice.FromInt64(rep).Key()
			if _, dup := slot[key]; dup {
				return nil, fmt.Errorf("%w: residue %s covered twice", ErrTiling, key)
			}
			slot[key] = k
		}
	}
	return &PeriodicTiling{tile: t, period: h, offsets: canonical, slot: slot}, nil
}

// FindPeriodicTiling searches for a periodic tiling with at most
// maxCosets coset translates (k = 1 recovers the lattice-tiling search).
// The search runs exact cover over the quotient group Z^d / P for every
// sublattice P of index k·|N|: the smallest uncovered residue is covered
// by each candidate translate in turn.
func FindPeriodicTiling(t *prototile.Tile, maxCosets int) (*PeriodicTiling, bool) {
	for k := 1; k <= maxCosets; k++ {
		index := int64(k) * int64(t.Size())
		for _, h := range intmat.SublatticesOfIndex(t.Dim(), index) {
			if pt, ok := solveQuotientCover(t, h, k); ok {
				return pt, true
			}
		}
	}
	return nil, false
}

// solveQuotientCover attempts to partition Z^d / P into k translates of
// the tile by depth-first exact cover over residues.
func solveQuotientCover(t *prototile.Tile, h *intmat.Matrix, k int) (*PeriodicTiling, bool) {
	reduceKey := func(p lattice.Point) (string, lattice.Point) {
		rep, err := intmat.Reduce(h, p.Int64())
		if err != nil {
			panic("tiling: reduce failed on validated HNF: " + err.Error())
		}
		q := lattice.FromInt64(rep)
		return q.Key(), q
	}
	// Enumerate all residues in canonical (fundamental box) order.
	dim := t.Dim()
	sides := make([]int, dim)
	for i := 0; i < dim; i++ {
		sides[i] = int(h.At(i, i))
	}
	box, err := lattice.BoxWindow(sides...)
	if err != nil {
		return nil, false
	}
	var residues []lattice.Point
	resIdx := map[string]int{}
	for _, p := range box.Points() {
		key, q := reduceKey(p)
		if _, seen := resIdx[key]; !seen {
			resIdx[key] = len(residues)
			residues = append(residues, q)
		}
	}
	covered := make([]bool, len(residues))
	var offsets []lattice.Point
	tilePts := t.Points()
	var dfs func(used int) bool
	dfs = func(used int) bool {
		target := -1
		for i, c := range covered {
			if !c {
				target = i
				break
			}
		}
		if target == -1 {
			return used == k
		}
		if used == k {
			return false
		}
		// The uncovered residue r must be t + n for the new translate t
		// and some tile point n: t = r - n.
		for _, n := range tilePts {
			off := residues[target].Sub(n)
			idxs := make([]int, 0, len(tilePts))
			ok := true
			for _, nn := range tilePts {
				key, _ := reduceKey(off.Add(nn))
				ri, exists := resIdx[key]
				if !exists || covered[ri] {
					ok = false
					break
				}
				idxs = append(idxs, ri)
			}
			if !ok || hasDuplicate(idxs) {
				continue
			}
			for _, ri := range idxs {
				covered[ri] = true
			}
			_, offCanon := reduceKey(off)
			offsets = append(offsets, offCanon)
			if dfs(used + 1) {
				return true
			}
			offsets = offsets[:len(offsets)-1]
			for _, ri := range idxs {
				covered[ri] = false
			}
		}
		return false
	}
	if !dfs(0) {
		return nil, false
	}
	pt, err := NewPeriodicTiling(t, h, offsets)
	if err != nil {
		return nil, false
	}
	return pt, true
}

// Tile returns the prototile.
func (pt *PeriodicTiling) Tile() *prototile.Tile { return pt.tile }

// Period returns the HNF basis of the period sublattice P.
func (pt *PeriodicTiling) Period() *intmat.Matrix { return pt.period.Clone() }

// Offsets returns the coset translates t_1..t_k.
func (pt *PeriodicTiling) Offsets() []lattice.Point { return clonePoints(pt.offsets) }

// CosetIndex returns the slot (index into the tile's points) of the
// translate covering p — the Theorem 1 schedule over the generalized
// tiling.
func (pt *PeriodicTiling) CosetIndex(p lattice.Point) (int, error) {
	rep, err := intmat.Reduce(pt.period, p.Int64())
	if err != nil {
		return 0, err
	}
	k, ok := pt.slot[lattice.FromInt64(rep).Key()]
	if !ok {
		return 0, fmt.Errorf("%w: point %v has no residue slot (invariant broken)", ErrTiling, p)
	}
	return k, nil
}

// VerifyWindow re-checks T1/T2 explicitly on a window, mirroring
// LatticeTiling.VerifyWindow.
func (pt *PeriodicTiling) VerifyWindow(w lattice.Window) error {
	if w.Dim() != pt.tile.Dim() {
		return fmt.Errorf("%w: window dimension %d ≠ tile dimension %d", ErrTiling, w.Dim(), pt.tile.Dim())
	}
	cover := make(map[string]int, w.Size())
	lo, hi := pt.tile.BoundingBox()
	ext, err := lattice.NewWindow(w.Lo.Sub(hi), w.Hi.Sub(lo))
	if err != nil {
		return err
	}
	for _, t := range ext.Points() {
		in := false
		rep, err := intmat.Reduce(pt.period, t.Int64())
		if err != nil {
			return err
		}
		repPt := lattice.FromInt64(rep)
		for _, off := range pt.offsets {
			if repPt.Equal(off) {
				in = true
				break
			}
		}
		if !in {
			continue
		}
		for _, n := range pt.tile.Points() {
			p := t.Add(n)
			if w.Contains(p) {
				cover[p.Key()]++
			}
		}
	}
	for _, p := range w.Points() {
		switch c := cover[p.Key()]; {
		case c == 0:
			return fmt.Errorf("%w: T1 violated, %v uncovered", ErrTiling, p)
		case c > 1:
			return fmt.Errorf("%w: T2 violated, %v covered %d times", ErrTiling, p, c)
		}
	}
	return nil
}

// String summarizes the tiling.
func (pt *PeriodicTiling) String() string {
	return fmt.Sprintf("periodic-tiling{%s, period %s, %d cosets}",
		pt.tile.Name(), pt.period, len(pt.offsets))
}

func clonePoints(ps []lattice.Point) []lattice.Point {
	out := make([]lattice.Point, len(ps))
	for i, p := range ps {
		out[i] = p.Clone()
	}
	return out
}
