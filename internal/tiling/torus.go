package tiling

import (
	"fmt"
	"sort"
	"strings"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

// Placement positions one prototile on a torus: prototile index and the
// translation offset (the image of the tile's origin).
type Placement struct {
	TileIndex int
	Offset    lattice.Point
}

// TorusTiling is an exact cover of the torus Z_{d1} × … × Z_{dk} by
// placements of prototiles N_1..N_n. Lifted periodically to Z^d it is a
// tiling in the sense of conditions GT1/GT2 of Section 4: the translate
// sets T_k = {offsets of tile k} + diag(dims)·Z^d are pairwise disjoint
// (distinct placements occupy distinct cells) and the translates cover
// every lattice point exactly once.
type TorusTiling struct {
	dims   []int
	tiles  []*prototile.Tile
	places []Placement
	// owner maps each torus cell — by the mixed-radix index of its wrapped
	// coordinates, last axis fastest — to the placement covering it.
	owner []int32
}

// CellIndex returns the dense index of p's wrapped cell in lexicographic
// order over the fundamental box ∏_i [0, dims_i), and whether p has the
// torus dimension. It allocates nothing and is the hot-path replacement
// for string-keyed cell maps.
func (tt *TorusTiling) CellIndex(p lattice.Point) (int, bool) {
	return cellIndexOf(tt.dims, p)
}

// Cells returns the number of torus cells.
func (tt *TorusTiling) Cells() int { return len(tt.owner) }

func cellIndexOf(dims []int, p lattice.Point) (int, bool) {
	if len(p) != len(dims) {
		return 0, false
	}
	idx := 0
	for i, d := range dims {
		c := p[i] % d
		if c < 0 {
			c += d
		}
		idx = idx*d + c
	}
	return idx, true
}

// NewTorusTiling validates that the placements exactly cover the torus.
func NewTorusTiling(dims []int, tiles []*prototile.Tile, places []Placement) (*TorusTiling, error) {
	if len(dims) == 0 {
		return nil, fmt.Errorf("%w: empty dims", ErrTiling)
	}
	cells := 1
	for _, d := range dims {
		if d <= 0 {
			return nil, fmt.Errorf("%w: non-positive torus side %d", ErrTiling, d)
		}
		cells *= d
	}
	if len(tiles) == 0 {
		return nil, fmt.Errorf("%w: no prototiles", ErrTiling)
	}
	for _, t := range tiles {
		if t.Dim() != len(dims) {
			return nil, fmt.Errorf("%w: tile %s dimension %d ≠ torus dimension %d",
				ErrTiling, t.Name(), t.Dim(), len(dims))
		}
	}
	tt := &TorusTiling{
		dims:   append([]int(nil), dims...),
		tiles:  append([]*prototile.Tile(nil), tiles...),
		places: append([]Placement(nil), places...),
		owner:  make([]int32, cells),
	}
	for i := range tt.owner {
		tt.owner[i] = -1
	}
	covered := 0
	buf := make(lattice.Point, 0, len(dims))
	for pi, pl := range places {
		if pl.TileIndex < 0 || pl.TileIndex >= len(tiles) {
			return nil, fmt.Errorf("%w: placement %d references tile %d", ErrTiling, pi, pl.TileIndex)
		}
		if pl.Offset.Dim() != len(dims) {
			return nil, fmt.Errorf("%w: placement %d offset %v has dimension %d",
				ErrTiling, pi, pl.Offset, pl.Offset.Dim())
		}
		for _, n := range tiles[pl.TileIndex].Points() {
			buf = pl.Offset.AddInto(n, buf[:0])
			ci, _ := tt.CellIndex(buf)
			if other := tt.owner[ci]; other >= 0 {
				return nil, fmt.Errorf("%w: GT2 violated, cell %v covered by placements %d and %d",
					ErrTiling, tt.Wrap(buf), other, pi)
			}
			tt.owner[ci] = int32(pi)
			covered++
		}
	}
	if covered != cells {
		return nil, fmt.Errorf("%w: GT1 violated, covered %d of %d cells", ErrTiling, covered, cells)
	}
	return tt, nil
}

// Dims returns the torus side lengths.
func (tt *TorusTiling) Dims() []int { return append([]int(nil), tt.dims...) }

// Tiles returns the prototiles.
func (tt *TorusTiling) Tiles() []*prototile.Tile {
	return append([]*prototile.Tile(nil), tt.tiles...)
}

// Placements returns the placements.
func (tt *TorusTiling) Placements() []Placement {
	return append([]Placement(nil), tt.places...)
}

// Wrap reduces a point modulo the torus dimensions into the fundamental
// box.
func (tt *TorusTiling) Wrap(p lattice.Point) lattice.Point {
	q := p.Clone()
	for i, d := range tt.dims {
		q[i] = ((q[i] % d) + d) % d
	}
	return q
}

// OwnerOf returns the placement covering the (wrapped) point p.
func (tt *TorusTiling) OwnerOf(p lattice.Point) (Placement, error) {
	ci, ok := tt.CellIndex(p)
	if !ok {
		return Placement{}, fmt.Errorf("%w: point dimension %d ≠ torus dimension %d",
			ErrTiling, len(p), len(tt.dims))
	}
	return tt.places[tt.owner[ci]], nil
}

// TileAt returns the prototile whose placement covers p — the neighborhood
// type of a sensor deployed at p under the paper's deployment rule D1.
func (tt *TorusTiling) TileAt(p lattice.Point) (*prototile.Tile, error) {
	pl, err := tt.OwnerOf(p)
	if err != nil {
		return nil, err
	}
	return tt.tiles[pl.TileIndex], nil
}

// Respectable reports whether the first prototile contains every other
// prototile — the hypothesis of Theorem 2 under which the schedule with
// |N_1| slots is optimal.
func (tt *TorusTiling) Respectable() bool {
	for _, t := range tt.tiles[1:] {
		if !tt.tiles[0].ContainsTile(t) {
			return false
		}
	}
	return true
}

// TileCounts returns how many placements use each prototile.
func (tt *TorusTiling) TileCounts() []int {
	counts := make([]int, len(tt.tiles))
	for _, pl := range tt.places {
		counts[pl.TileIndex]++
	}
	return counts
}

// CanonicalKey is a deterministic signature of the placement set, used to
// deduplicate solver output.
func (tt *TorusTiling) CanonicalKey() string {
	parts := make([]string, len(tt.places))
	for i, pl := range tt.places {
		parts[i] = fmt.Sprintf("%d@%s", pl.TileIndex, tt.Wrap(pl.Offset).Key())
	}
	sort.Strings(parts)
	return strings.Join(parts, ";")
}

// SolveOptions bounds the torus backtracking search.
type SolveOptions struct {
	// MaxSolutions stops the search after this many distinct tilings
	// (0 means find all).
	MaxSolutions int
	// Accept, when non-nil, filters completed tilings by their per-tile
	// placement counts (e.g. "exactly two Z tetrominoes").
	Accept func(counts []int) bool
}

// SolveTorus enumerates exact covers of the torus with the given
// prototiles by depth-first search: the first uncovered cell in scan order
// is covered by every possible placement in turn. Solutions are
// deduplicated by placement-set signature.
func SolveTorus(dims []int, tiles []*prototile.Tile, opt SolveOptions) ([]*TorusTiling, error) {
	if len(tiles) == 0 {
		return nil, fmt.Errorf("%w: no prototiles", ErrTiling)
	}
	for _, t := range tiles {
		if t.Dim() != len(dims) {
			return nil, fmt.Errorf("%w: tile %s dimension %d ≠ torus dimension %d",
				ErrTiling, t.Name(), t.Dim(), len(dims))
		}
	}
	w, err := lattice.BoxWindow(dims...)
	if err != nil {
		return nil, err
	}
	// Cells are indexed densely by wrapped mixed-radix coordinates; the
	// order agrees with the window's lexicographic point order.
	cellOrder := w.Points()
	wrap := func(p lattice.Point) lattice.Point {
		q := p.Clone()
		for i, d := range dims {
			q[i] = ((q[i] % d) + d) % d
		}
		return q
	}
	covered := make([]bool, len(cellOrder))
	var places []Placement
	var out []*TorusTiling
	seen := map[string]bool{}
	counts := make([]int, len(tiles))
	buf := make(lattice.Point, 0, len(dims)) // transient scratch for cell indexing

	var dfs func(from int) bool // returns true to stop the whole search
	dfs = func(from int) bool {
		// Find first uncovered cell.
		target := -1
		for i := from; i < len(cellOrder); i++ {
			if !covered[i] {
				target = i
				break
			}
		}
		if target == -1 {
			if opt.Accept != nil && !opt.Accept(counts) {
				return false
			}
			tt, err := NewTorusTiling(dims, tiles, places)
			if err != nil {
				return false // over-wrapped placement slipped through; skip
			}
			key := tt.CanonicalKey()
			if seen[key] {
				return false
			}
			seen[key] = true
			out = append(out, tt)
			return opt.MaxSolutions > 0 && len(out) >= opt.MaxSolutions
		}
		cell := cellOrder[target]
		for ti, tile := range tiles {
			tilePts := tile.Points()
			for _, anchor := range tilePts {
				offset := wrap(cell.Sub(anchor))
				// Check that all cells of tile+offset are free.
				ok := true
				idxs := make([]int, 0, tile.Size())
				for _, n := range tilePts {
					buf = offset.AddInto(n, buf[:0])
					ci, _ := cellIndexOf(dims, buf)
					if covered[ci] {
						ok = false
						break
					}
					idxs = append(idxs, ci)
				}
				if !ok {
					continue
				}
				// A tile larger than the torus could wrap onto
				// itself; distinct idxs guarantee it does not.
				if hasDuplicate(idxs) {
					continue
				}
				for _, ci := range idxs {
					covered[ci] = true
				}
				places = append(places, Placement{TileIndex: ti, Offset: offset})
				counts[ti]++
				if dfs(target + 1) {
					return true
				}
				counts[ti]--
				places = places[:len(places)-1]
				for _, ci := range idxs {
					covered[ci] = false
				}
			}
		}
		return false
	}
	dfs(0)
	return out, nil
}

func hasDuplicate(xs []int) bool {
	for i := 0; i < len(xs); i++ {
		for j := i + 1; j < len(xs); j++ {
			if xs[i] == xs[j] {
				return true
			}
		}
	}
	return false
}
