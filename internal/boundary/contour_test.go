package boundary

import (
	"strings"
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

func TestContourMonomino(t *testing.T) {
	ti := prototile.MustNew("dot", lattice.Pt(0, 0))
	w, err := ContourWord(ti)
	if err != nil {
		t.Fatalf("ContourWord: %v", err)
	}
	if w != "ruld" {
		t.Errorf("monomino contour = %q, want ruld", w)
	}
}

func TestContourDomino(t *testing.T) {
	ti := prototile.MustNew("domino", lattice.Pt(0, 0), lattice.Pt(1, 0))
	w, err := ContourWord(ti)
	if err != nil {
		t.Fatalf("ContourWord: %v", err)
	}
	if w != "rrulld" {
		t.Errorf("domino contour = %q, want rrulld", w)
	}
}

func TestContourProperties(t *testing.T) {
	// For every catalog polyomino: the contour is closed, CCW with area
	// equal to the cell count, and has length = perimeter (even).
	names := []string{"I", "O", "T", "S", "Z", "L", "J"}
	for _, name := range names {
		ti := prototile.MustTetromino(name)
		w, err := ContourWord(ti)
		if err != nil {
			t.Fatalf("ContourWord(%s): %v", name, err)
		}
		if !IsClosed(w) {
			t.Errorf("%s contour not closed: %q", name, w)
		}
		if len(w)%2 != 0 {
			t.Errorf("%s contour length odd: %q", name, w)
		}
		area, err := EnclosedArea(w)
		if err != nil {
			t.Fatalf("EnclosedArea(%s): %v", name, err)
		}
		if area != ti.Size() {
			t.Errorf("%s contour area = %d, want %d (word %q)", name, area, ti.Size(), w)
		}
	}
}

func TestContourPerimeterKnown(t *testing.T) {
	// Perimeter of a w×h rectangle is 2(w+h).
	for _, c := range []struct{ w, h int }{{1, 1}, {2, 4}, {3, 3}, {5, 2}} {
		r := prototile.Rect(c.w, c.h)
		word, err := ContourWord(r)
		if err != nil {
			t.Fatalf("ContourWord: %v", err)
		}
		if len(word) != 2*(c.w+c.h) {
			t.Errorf("Rect(%d,%d) perimeter = %d, want %d", c.w, c.h, len(word), 2*(c.w+c.h))
		}
	}
}

func TestContourRejectsHoles(t *testing.T) {
	ring, err := prototile.FromASCII("ring", "XXX\nX.X\nXXX")
	if err != nil {
		t.Fatalf("FromASCII: %v", err)
	}
	if _, err := ContourWord(ring); err == nil {
		t.Error("contour of holed tile accepted")
	}
}

func TestContourRejectsDisconnected(t *testing.T) {
	ti := prototile.MustNew("disc", lattice.Pt(0, 0), lattice.Pt(3, 0))
	if _, err := ContourWord(ti); err == nil {
		t.Error("contour of disconnected tile accepted")
	}
}

func TestContourRejectsNon2D(t *testing.T) {
	ti := prototile.MustNew("seg", lattice.Pt(0), lattice.Pt(1))
	if _, err := ContourWord(ti); err == nil {
		t.Error("contour of 1-dim tile accepted")
	}
}

func TestTileFromWordRoundTrip(t *testing.T) {
	for _, name := range []string{"I", "O", "T", "S", "Z", "L", "J"} {
		ti := prototile.MustTetromino(name)
		w, err := ContourWord(ti)
		if err != nil {
			t.Fatalf("ContourWord(%s): %v", name, err)
		}
		back, err := TileFromWord(name, w)
		if err != nil {
			t.Fatalf("TileFromWord(%s): %v", name, err)
		}
		if !back.Normalize().Equal(ti.Normalize()) {
			t.Errorf("%s round trip: got %v want %v (word %q)", name, back, ti, w)
		}
	}
}

func TestTileFromWordErrors(t *testing.T) {
	if _, err := TileFromWord("open", "ru"); err == nil {
		t.Error("open word accepted")
	}
	if _, err := TileFromWord("cw", "urdl"); err == nil {
		t.Error("clockwise word accepted")
	}
	if _, err := TileFromWord("bad", "xyz"); err == nil {
		t.Error("invalid word accepted")
	}
}

func TestStaircaseContour(t *testing.T) {
	// Build an n-step staircase polyomino and check the contour length
	// grows linearly — the workload shape used by the exactness bench.
	st := Staircase(4)
	w, err := ContourWord(st)
	if err != nil {
		t.Fatalf("ContourWord: %v", err)
	}
	if !IsClosed(w) {
		t.Error("staircase contour not closed")
	}
	if strings.Count(w, "r")+strings.Count(w, "l") == 0 {
		t.Error("degenerate staircase contour")
	}
	area, err := EnclosedArea(w)
	if err != nil {
		t.Fatalf("EnclosedArea: %v", err)
	}
	if area != st.Size() {
		t.Errorf("staircase area = %d, want %d", area, st.Size())
	}
}
