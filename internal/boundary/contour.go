package boundary

import (
	"fmt"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

// ContourWord traces the boundary of a simply connected two-dimensional
// polyomino counterclockwise (interior kept on the left) and returns the
// resulting word over {u, d, l, r}. Cell (x, y) occupies the unit square
// with corners (x, y) and (x+1, y+1).
//
// The walk is deterministic: it starts at the bottom-left corner of the
// lexicographically smallest cell of the bottom row, heading right. For
// hole-free polyominoes every corner has exactly one valid continuation
// (a pinch corner would imply a hole), so the trace is well defined.
func ContourWord(t *prototile.Tile) (string, error) {
	if t.Dim() != 2 {
		return "", fmt.Errorf("%w: contour needs dimension 2, got %d", ErrWord, t.Dim())
	}
	simply, err := t.SimplyConnected()
	if err != nil {
		return "", err
	}
	if !simply {
		return "", fmt.Errorf("%w: tile %s is not a simply connected polyomino", ErrWord, t.Name())
	}
	start := bottomLeftCorner(t)
	pos := start
	dir := byte(Right)
	var word []byte
	for {
		word = append(word, dir)
		pos = pos.Add(Step(dir))
		if pos.Equal(start) {
			break
		}
		next, ok := nextDirection(t, pos)
		if !ok {
			return "", fmt.Errorf("%w: contour stuck at %v (tile %s)", ErrWord, pos, t.Name())
		}
		dir = next
		if len(word) > 4*t.Size()+8 {
			return "", fmt.Errorf("%w: contour did not close (tile %s)", ErrWord, t.Name())
		}
	}
	return string(word), nil
}

// bottomLeftCorner returns the bottom-left corner of the leftmost cell of
// the bottom row.
func bottomLeftCorner(t *prototile.Tile) lattice.Point {
	var best lattice.Point
	for _, p := range t.Points() {
		if best == nil || p[1] < best[1] || (p[1] == best[1] && p[0] < best[0]) {
			best = p
		}
	}
	return best
}

// nextDirection picks the unique valid outgoing edge at a corner for a
// counterclockwise (interior-left) traversal. An edge is valid when the
// cell on its left is inside the tile and the cell on its right is not.
func nextDirection(t *prototile.Tile, corner lattice.Point) (byte, bool) {
	cx, cy := corner[0], corner[1]
	ne := t.Contains(lattice.Pt(cx, cy))
	nw := t.Contains(lattice.Pt(cx-1, cy))
	sw := t.Contains(lattice.Pt(cx-1, cy-1))
	se := t.Contains(lattice.Pt(cx, cy-1))
	var out byte
	found := false
	pick := func(d byte, ok bool) bool {
		if !ok {
			return true
		}
		if found {
			return false // ambiguous corner: pinch (hole) — cannot happen post-validation
		}
		out, found = d, true
		return true
	}
	if !pick(Right, ne && !se) {
		return 0, false
	}
	if !pick(Up, nw && !ne) {
		return 0, false
	}
	if !pick(Left, sw && !nw) {
		return 0, false
	}
	if !pick(Down, se && !sw) {
		return 0, false
	}
	return out, found
}

// TileFromWord reconstructs the polyomino enclosed by a counterclockwise
// closed boundary word; useful for tests and for the boundary-length
// benchmark workloads. The result is anchored at its smallest cell.
func TileFromWord(name, w string) (*prototile.Tile, error) {
	if err := Validate(w); err != nil {
		return nil, err
	}
	if !IsClosed(w) {
		return nil, fmt.Errorf("%w: word is not closed", ErrWord)
	}
	area, err := EnclosedArea(w)
	if err != nil {
		return nil, err
	}
	if area <= 0 {
		return nil, fmt.Errorf("%w: word is not counterclockwise (area %d)", ErrWord, area)
	}
	// Collect cells by a scanline parity fill over the vertical boundary
	// edges: a cell (x, y) is inside when the number of upward/downward
	// boundary edges strictly to its right on row y is odd (crossing
	// parity).
	type edge struct{ x, y, dir int } // vertical edge at x, spanning [y, y+1]
	var edges []edge
	pts := Path(w)
	minX, maxX := 0, 0
	minY, maxY := 0, 0
	for i := 0; i+1 < len(pts); i++ {
		a, b := pts[i], pts[i+1]
		if a[0] == b[0] { // vertical step
			y := a[1]
			if b[1] < a[1] {
				y = b[1]
			}
			edges = append(edges, edge{x: a[0], y: y, dir: b[1] - a[1]})
		}
		for _, p := range []lattice.Point{a, b} {
			if p[0] < minX {
				minX = p[0]
			}
			if p[0] > maxX {
				maxX = p[0]
			}
			if p[1] < minY {
				minY = p[1]
			}
			if p[1] > maxY {
				maxY = p[1]
			}
		}
	}
	cells := lattice.NewSet()
	for y := minY; y < maxY; y++ {
		for x := minX; x < maxX; x++ {
			crossings := 0
			for _, e := range edges {
				if e.y == y && e.x > x {
					crossings++
				}
			}
			if crossings%2 == 1 {
				cells.Add(lattice.Pt(x, y))
			}
		}
	}
	if cells.Size() != area {
		return nil, fmt.Errorf("%w: reconstructed %d cells, area says %d (self-intersecting word?)",
			ErrWord, cells.Size(), area)
	}
	return prototile.FromSet(name, cells)
}
