package boundary

import (
	"fmt"
	"math/rand"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
)

// Staircase returns the 2n-cell staircase polyomino with cells (i, i) and
// (i+1, i) for 0 ≤ i < n — the length-n generalization of the S-tetromino
// (n = 2 gives exactly the paper's Figure 5 S shape). Staircases are exact
// for every n, which makes them a scalable positive workload for the
// exactness benchmarks.
func Staircase(n int) *prototile.Tile {
	if n < 1 {
		panic(fmt.Sprintf("boundary: Staircase(%d)", n))
	}
	s := lattice.NewSet()
	for i := 0; i < n; i++ {
		s.Add(lattice.Pt(i, i))
		s.Add(lattice.Pt(i+1, i))
	}
	t, err := prototile.FromSet(fmt.Sprintf("staircase-%d", n), s)
	if err != nil {
		panic(err)
	}
	return t
}

// NotchedRect returns a w×h rectangle with the cell (w/2, h-1) removed —
// a dented shape whose boundary length matches the rectangle's while
// (for w ≥ 3, h ≥ 2) failing to tile the plane, giving a scalable
// negative workload for the exactness benchmarks.
func NotchedRect(w, h int) (*prototile.Tile, error) {
	if w < 3 || h < 2 {
		return nil, fmt.Errorf("%w: NotchedRect(%d, %d) needs w ≥ 3, h ≥ 2", ErrWord, w, h)
	}
	s := lattice.NewSet()
	for x := 0; x < w; x++ {
		for y := 0; y < h; y++ {
			if x == w/2 && y == h-1 {
				continue
			}
			s.Add(lattice.Pt(x, y))
		}
	}
	return prototile.FromSet(fmt.Sprintf("notched-%dx%d", w, h), s)
}

// RandomPolyomino grows a connected polyomino of n cells by repeatedly
// attaching a uniformly random neighbor cell, using the given source of
// randomness. The result may contain holes; callers that need simple
// connectivity should test and retry.
func RandomPolyomino(rng *rand.Rand, n int) *prototile.Tile {
	if n < 1 {
		panic(fmt.Sprintf("boundary: RandomPolyomino(%d)", n))
	}
	cells := lattice.NewSet(lattice.Pt(0, 0))
	for cells.Size() < n {
		frontier := lattice.NewSet()
		for _, c := range cells.Points() {
			for _, d := range []lattice.Point{
				lattice.Pt(1, 0), lattice.Pt(-1, 0), lattice.Pt(0, 1), lattice.Pt(0, -1),
			} {
				q := c.Add(d)
				if !cells.Contains(q) {
					frontier.Add(q)
				}
			}
		}
		candidates := frontier.Points()
		cells.Add(candidates[rng.Intn(len(candidates))])
	}
	t, err := prototile.FromSet(fmt.Sprintf("random-%d", n), cells)
	if err != nil {
		panic(err)
	}
	return t
}

// RandomSimplePolyomino is RandomPolyomino restricted to simply connected
// results; it retries until one is found (hole probability is modest for
// the sizes used in tests and benchmarks).
func RandomSimplePolyomino(rng *rand.Rand, n int) *prototile.Tile {
	for {
		t := RandomPolyomino(rng, n)
		ok, err := t.SimplyConnected()
		if err != nil {
			panic(err)
		}
		if ok {
			return t
		}
	}
}
