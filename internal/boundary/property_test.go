package boundary

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// randomWord builds a word over {u,d,l,r} from raw bytes.
func randomWord(raw []byte) string {
	letters := []byte{Right, Up, Left, Down}
	out := make([]byte, len(raw))
	for i, b := range raw {
		out[i] = letters[int(b)%4]
	}
	return string(out)
}

// Property: Hat is an involution and reverses path endpoints.
func TestHatInvolutionProperty(t *testing.T) {
	f := func(raw []byte) bool {
		w := randomWord(raw)
		if Hat(Hat(w)) != w {
			return false
		}
		// The hat path ends where the negated original ends.
		pw := Path(w)
		ph := Path(Hat(w))
		endW := pw[len(pw)-1]
		endH := ph[len(ph)-1]
		return endH.Equal(endW.Neg())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: rotation preserves closure and length.
func TestRotationPreservesClosure(t *testing.T) {
	f := func(raw []byte, k uint8) bool {
		w := randomWord(raw)
		r := Rotate(w, int(k))
		if len(r) != len(w) {
			return false
		}
		return IsClosed(w) == IsClosed(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: a factorization found by either algorithm always reassembles
// to a rotation of the input.
func TestFactorizationAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 50; trial++ {
		ti := RandomSimplePolyomino(rng, 2+rng.Intn(7))
		w, err := ContourWord(ti)
		if err != nil {
			t.Fatalf("ContourWord: %v", err)
		}
		if f, ok := FactorizeNaive(w); ok && !f.Valid(w) {
			t.Fatalf("naive produced invalid factorization on %q", w)
		}
		if f, ok := FactorizeFast(w); ok && !f.Valid(w) {
			t.Fatalf("fast produced invalid factorization on %q", w)
		}
	}
}

// Property: contour words of random simply connected polyominoes are
// closed, have even length ≥ 4, and enclose exactly the cell count.
func TestContourInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 60; trial++ {
		ti := RandomSimplePolyomino(rng, 1+rng.Intn(10))
		w, err := ContourWord(ti)
		if err != nil {
			t.Fatalf("ContourWord: %v", err)
		}
		if !IsClosed(w) || len(w) < 4 || len(w)%2 != 0 {
			t.Fatalf("bad contour %q for\n%s", w, ti.ASCII())
		}
		area, err := EnclosedArea(w)
		if err != nil {
			t.Fatalf("EnclosedArea: %v", err)
		}
		if area != ti.Size() {
			t.Fatalf("area %d ≠ cells %d for\n%s", area, ti.Size(), ti.ASCII())
		}
	}
}

// Property: exactness is invariant under the symmetries of the square
// lattice — a rotated or mirrored polyomino tiles iff the original does.
func TestExactnessSymmetryInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 30; trial++ {
		ti := RandomSimplePolyomino(rng, 2+rng.Intn(6))
		base, _, err := IsExactPolyomino(ti)
		if err != nil {
			t.Fatalf("IsExactPolyomino: %v", err)
		}
		rot, err := ti.Rotate90()
		if err != nil {
			t.Fatalf("Rotate90: %v", err)
		}
		rotExact, _, err := IsExactPolyomino(rot)
		if err != nil {
			t.Fatalf("IsExactPolyomino: %v", err)
		}
		if base != rotExact {
			t.Fatalf("exactness changed under rotation:\n%s", ti.ASCII())
		}
		mir, err := ti.ReflectX()
		if err != nil {
			t.Fatalf("ReflectX: %v", err)
		}
		mirExact, _, err := IsExactPolyomino(mir)
		if err != nil {
			t.Fatalf("IsExactPolyomino: %v", err)
		}
		if base != mirExact {
			t.Fatalf("exactness changed under reflection:\n%s", ti.ASCII())
		}
	}
}

// Property: TileFromWord(ContourWord(t)) is the identity on translation
// classes for random polyominoes.
func TestContourRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		ti := RandomSimplePolyomino(rng, 1+rng.Intn(9))
		w, err := ContourWord(ti)
		if err != nil {
			t.Fatalf("ContourWord: %v", err)
		}
		back, err := TileFromWord("back", w)
		if err != nil {
			t.Fatalf("TileFromWord(%q): %v", w, err)
		}
		if back.CanonicalKey() != ti.CanonicalKey() {
			t.Fatalf("round trip changed tile:\n%s\nvs\n%s", ti.ASCII(), back.ASCII())
		}
	}
}
