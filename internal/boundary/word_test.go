package boundary

import (
	"testing"

	"tilingsched/internal/lattice"
)

func TestComplement(t *testing.T) {
	pairs := map[byte]byte{Right: Left, Left: Right, Up: Down, Down: Up}
	for a, b := range pairs {
		if Complement(a) != b {
			t.Errorf("Complement(%c) = %c, want %c", a, Complement(a), b)
		}
		if Complement(Complement(a)) != a {
			t.Errorf("Complement not involutive at %c", a)
		}
	}
}

func TestComplementPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Complement of bad letter did not panic")
		}
	}()
	Complement('x')
}

func TestValidate(t *testing.T) {
	if err := Validate("ruldruld"); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if err := Validate("rux"); err == nil {
		t.Error("bad letter accepted")
	}
	if err := Validate(""); err != nil {
		t.Errorf("empty word rejected: %v", err)
	}
}

func TestHat(t *testing.T) {
	if got := Hat("ru"); got != "dl" {
		t.Errorf("Hat(ru) = %q, want dl", got)
	}
	if got := Hat(""); got != "" {
		t.Errorf("Hat of empty = %q", got)
	}
	// Hat is an involution.
	for _, w := range []string{"ruld", "rrulld", "udlr"} {
		if Hat(Hat(w)) != w {
			t.Errorf("Hat not involutive on %q", w)
		}
	}
}

func TestIsClosedAndPath(t *testing.T) {
	if !IsClosed("ruld") {
		t.Error("ruld should be closed")
	}
	if IsClosed("ru") {
		t.Error("ru should not be closed")
	}
	p := Path("ru")
	want := []lattice.Point{lattice.Pt(0, 0), lattice.Pt(1, 0), lattice.Pt(1, 1)}
	if len(p) != 3 {
		t.Fatalf("Path length = %d", len(p))
	}
	for i := range want {
		if !p[i].Equal(want[i]) {
			t.Errorf("Path[%d] = %v, want %v", i, p[i], want[i])
		}
	}
}

func TestEnclosedArea(t *testing.T) {
	cases := []struct {
		w    string
		want int
	}{
		{"ruld", 1},     // unit square CCW
		{"rrulld", 2},   // domino
		{"rruulldd", 4}, // 2x2 square
		{"urdl", -1},    // clockwise unit square
	}
	for _, c := range cases {
		got, err := EnclosedArea(c.w)
		if err != nil {
			t.Fatalf("EnclosedArea(%q): %v", c.w, err)
		}
		if got != c.want {
			t.Errorf("EnclosedArea(%q) = %d, want %d", c.w, got, c.want)
		}
	}
	if _, err := EnclosedArea("ru"); err == nil {
		t.Error("open word accepted")
	}
	if _, err := EnclosedArea("rx"); err == nil {
		t.Error("invalid word accepted")
	}
}

func TestRotate(t *testing.T) {
	if got := Rotate("abcd", 1); got != "bcda" {
		t.Errorf("Rotate 1 = %q", got)
	}
	if got := Rotate("abcd", -1); got != "dabc" {
		t.Errorf("Rotate -1 = %q", got)
	}
	if got := Rotate("abcd", 4); got != "abcd" {
		t.Errorf("Rotate 4 = %q", got)
	}
	if got := Rotate("", 3); got != "" {
		t.Errorf("Rotate empty = %q", got)
	}
}

func TestFactorizationApplyValid(t *testing.T) {
	f := Factorization{A: "r", B: "u", C: ""}
	if got := f.Apply(); got != "ruld" {
		t.Errorf("Apply = %q, want ruld", got)
	}
	if !f.Valid("ruld") {
		t.Error("valid factorization rejected")
	}
	if f.Valid("rudl") {
		t.Error("wrong word accepted")
	}
	g := Factorization{A: "r", B: "", C: ""}
	if g.Valid("rl") {
		t.Error("two empty factors accepted")
	}
}
