package boundary

import (
	"fmt"

	"tilingsched/internal/prototile"
)

// FactorizeNaive searches for a Beauquier–Nivat factorization of the
// closed boundary word w by direct string comparison: every rotation and
// every pair of cut points is tried, costing O(n⁴). It is the reference
// implementation against which FactorizeFast is property-checked.
func FactorizeNaive(w string) (Factorization, bool) {
	n := len(w)
	if n == 0 || n%2 != 0 {
		return Factorization{}, false
	}
	half := n / 2
	for off := 0; off < n; off++ {
		rot := Rotate(w, off)
		first, second := rot[:half], rot[half:]
		// Cut the first half into A = first[:i], B = first[i:j],
		// C = first[j:]; the second half must be Â·B̂·Ĉ.
		for i := 0; i <= half; i++ {
			for j := i; j <= half; j++ {
				f := Factorization{A: first[:i], B: first[i:j], C: first[j:], Offset: off}
				if f.countEmpty() > 1 {
					continue
				}
				if second == Hat(f.A)+Hat(f.B)+Hat(f.C) {
					return f, true
				}
			}
		}
	}
	return Factorization{}, false
}

// FactorizeFast searches for a Beauquier–Nivat factorization using O(1)
// substring comparisons backed by double polynomial hashing; every
// candidate that passes the hash test is re-verified by direct comparison,
// so the result is exact regardless of hash collisions. The enumeration
// over (rotation, cut, cut) costs O(n³) hash probes versus the naive
// algorithm's O(n⁴) character work; the paper cites Gambini–Vuillon for a
// still faster O(n²) bound.
func FactorizeFast(w string) (Factorization, bool) {
	n := len(w)
	if n == 0 || n%2 != 0 {
		return Factorization{}, false
	}
	half := n / 2
	// hat(W[i..j)) = VR[n-j..n-i) where VR is the reverse complement of
	// the whole word. Cyclic substrings are handled by doubling.
	vr := Hat(w)
	hw := newHasher(w + w)
	hv := newHasher(vr + vr)
	// For the rotation starting at off, the two halves are
	// W[off..off+half) and W[off+half..off+n). The factor equations, for
	// cuts i ≤ j within [0, half]:
	//   W[off+half .. off+half+i)       = hat(W[off .. off+i))
	//   W[off+half+i .. off+half+j)     = hat(W[off+i .. off+j))
	//   W[off+half+j .. off+n)          = hat(W[off+j .. off+half))
	// Each hat(...) is a VR substring via the identity above, with the
	// start index taken modulo n into the doubled string.
	eq := func(wStart, vStart, length int) bool {
		if length == 0 {
			return true
		}
		wStart %= n
		vStart = ((vStart % n) + n) % n
		return hw.hash(wStart, length) == hv.hash(vStart, length)
	}
	for off := 0; off < n; off++ {
		rot := Rotate(w, off)
		for i := 0; i <= half; i++ {
			// Prune: the condition for factor A must hold before
			// scanning the second cut.
			if !eq(off+half, n-(off+i), i) {
				continue
			}
			for j := i; j <= half; j++ {
				empty := 0
				if i == 0 {
					empty++
				}
				if j == i {
					empty++
				}
				if j == half {
					empty++
				}
				if empty > 1 {
					continue
				}
				if !eq(off+half+i, n-(off+j), j-i) {
					continue
				}
				if !eq(off+half+j, n-(off+half), half-j) {
					continue
				}
				// Hash match: confirm exactly before returning.
				f := Factorization{A: rot[:i], B: rot[i:j], C: rot[j:half], Offset: off}
				if f.Valid(w) {
					return f, true
				}
			}
		}
	}
	return Factorization{}, false
}

// IsExactPolyomino decides whether a simply connected polyomino tiles the
// plane by translation, via the Beauquier–Nivat criterion on its boundary
// word. It answers the paper's question Q1 for polyominoes in the square
// lattice.
func IsExactPolyomino(t *prototile.Tile) (bool, Factorization, error) {
	w, err := ContourWord(t)
	if err != nil {
		return false, Factorization{}, err
	}
	f, ok := FactorizeFast(w)
	return ok, f, nil
}

// hasher provides O(1) polynomial substring hashes with two independent
// moduli (fixed bases; inputs here are 4-letter words, so collisions
// essentially cannot occur, and all hits are re-verified anyway).
type hasher struct {
	n          int
	pre1, pre2 []uint64
	pow1, pow2 []uint64
}

const (
	hashMod1  = 1_000_000_007
	hashMod2  = 998_244_353
	hashBase1 = 131
	hashBase2 = 137
)

func newHasher(s string) *hasher {
	n := len(s)
	h := &hasher{
		n:    n,
		pre1: make([]uint64, n+1),
		pre2: make([]uint64, n+1),
		pow1: make([]uint64, n+1),
		pow2: make([]uint64, n+1),
	}
	h.pow1[0], h.pow2[0] = 1, 1
	for i := 0; i < n; i++ {
		c := uint64(s[i])
		h.pre1[i+1] = (h.pre1[i]*hashBase1 + c) % hashMod1
		h.pre2[i+1] = (h.pre2[i]*hashBase2 + c) % hashMod2
		h.pow1[i+1] = h.pow1[i] * hashBase1 % hashMod1
		h.pow2[i+1] = h.pow2[i] * hashBase2 % hashMod2
	}
	return h
}

// hash returns the combined hash of s[start : start+length].
func (h *hasher) hash(start, length int) uint64 {
	if start+length > h.n {
		panic(fmt.Sprintf("boundary: hash range [%d, %d) exceeds %d", start, start+length, h.n))
	}
	h1 := (h.pre1[start+length] + hashMod1*hashMod1 - h.pre1[start]*h.pow1[length]%hashMod1) % hashMod1
	h2 := (h.pre2[start+length] + hashMod2*hashMod2 - h.pre2[start]*h.pow2[length]%hashMod2) % hashMod2
	return h1<<32 | h2
}
