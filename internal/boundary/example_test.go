package boundary_test

import (
	"fmt"

	"tilingsched/internal/boundary"
	"tilingsched/internal/prototile"
)

// ExampleContourWord traces the boundary of the L tromino.
func ExampleContourWord() {
	word, err := boundary.ContourWord(prototile.LTromino())
	if err != nil {
		panic(err)
	}
	fmt.Println(word)
	// Output:
	// rrululdd
}

// ExampleFactorizeFast exhibits a Beauquier–Nivat factorization proving
// the S tetromino tiles the plane by translation.
func ExampleFactorizeFast() {
	word, err := boundary.ContourWord(prototile.MustTetromino("S"))
	if err != nil {
		panic(err)
	}
	f, ok := boundary.FactorizeFast(word)
	fmt.Println("exact:", ok)
	fmt.Println("valid:", f.Valid(word))
	// Output:
	// exact: true
	// valid: true
}

// ExampleHat shows the reverse-complement operation on boundary words.
func ExampleHat() {
	fmt.Println(boundary.Hat("rru"))
	// Output:
	// dll
}
