// Package boundary implements boundary words of polyominoes and the
// Beauquier–Nivat exactness criterion from Section 3 of the paper.
//
// The boundary of a simply connected polyomino in the square lattice is a
// closed curve described by a word over {u, d, l, r} (up, down, left,
// right). Beauquier and Nivat showed a polyomino tiles the plane by
// translation (is "exact") precisely when some cyclic rotation of its
// boundary word factors as A·B·C·Â·B̂·Ĉ, where X̂ denotes the reverse
// complement (path reversal) and at most one factor is empty. The package
// provides a reference O(n⁴) decision procedure and an accelerated search
// using O(1) substring comparisons via double polynomial hashing (verified
// candidates are re-checked directly, so hashing never affects
// correctness).
package boundary

import (
	"errors"
	"fmt"
	"strings"

	"tilingsched/internal/lattice"
)

// ErrWord indicates a malformed boundary word.
var ErrWord = errors.New("boundary: invalid word")

// Letters of the Freeman chain code used for boundary words.
const (
	Right = 'r'
	Up    = 'u'
	Left  = 'l'
	Down  = 'd'
)

// Complement maps each step letter to its reverse direction: r↔l, u↔d.
func Complement(c byte) byte {
	switch c {
	case Right:
		return Left
	case Left:
		return Right
	case Up:
		return Down
	case Down:
		return Up
	default:
		panic(fmt.Sprintf("boundary: bad letter %q", c))
	}
}

// Validate checks that the word uses only the four step letters.
func Validate(w string) error {
	for i := 0; i < len(w); i++ {
		switch w[i] {
		case Right, Up, Left, Down:
		default:
			return fmt.Errorf("%w: letter %q at %d", ErrWord, w[i], i)
		}
	}
	return nil
}

// Hat returns the reverse complement X̂ of a word: the same path walked
// backwards.
func Hat(w string) string {
	b := make([]byte, len(w))
	for i := 0; i < len(w); i++ {
		b[len(w)-1-i] = Complement(w[i])
	}
	return string(b)
}

// Step returns the unit vector of a letter.
func Step(c byte) lattice.Point {
	switch c {
	case Right:
		return lattice.Pt(1, 0)
	case Left:
		return lattice.Pt(-1, 0)
	case Up:
		return lattice.Pt(0, 1)
	case Down:
		return lattice.Pt(0, -1)
	default:
		panic(fmt.Sprintf("boundary: bad letter %q", c))
	}
}

// IsClosed reports whether the path returns to its starting point.
func IsClosed(w string) bool {
	x, y := 0, 0
	for i := 0; i < len(w); i++ {
		s := Step(w[i])
		x += s[0]
		y += s[1]
	}
	return x == 0 && y == 0
}

// Path returns the corner positions visited by the word, starting at the
// origin; it has len(w)+1 entries (first == last for closed words).
func Path(w string) []lattice.Point {
	out := make([]lattice.Point, 0, len(w)+1)
	cur := lattice.Pt(0, 0)
	out = append(out, cur)
	for i := 0; i < len(w); i++ {
		cur = cur.Add(Step(w[i]))
		out = append(out, cur)
	}
	return out
}

// EnclosedArea returns the signed area enclosed by a closed word via the
// shoelace formula; counterclockwise boundaries give positive area equal
// to the polyomino's cell count.
func EnclosedArea(w string) (int, error) {
	if err := Validate(w); err != nil {
		return 0, err
	}
	if !IsClosed(w) {
		return 0, fmt.Errorf("%w: not closed", ErrWord)
	}
	pts := Path(w)
	area2 := 0
	for i := 0; i+1 < len(pts); i++ {
		area2 += pts[i][0]*pts[i+1][1] - pts[i+1][0]*pts[i][1]
	}
	return area2 / 2, nil
}

// Rotate returns the cyclic rotation of w starting at offset k.
func Rotate(w string, k int) string {
	if len(w) == 0 {
		return w
	}
	k = ((k % len(w)) + len(w)) % len(w)
	return w[k:] + w[:k]
}

// Factorization is a Beauquier–Nivat factorization A·B·C·Â·B̂·Ĉ of some
// rotation of a boundary word. C may be empty (pseudo-square); the
// rotation offset records which cyclic shift factors.
type Factorization struct {
	A, B, C string
	Offset  int
}

// String renders the factorization compactly.
func (f Factorization) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "A=%q B=%q C=%q (offset %d)", f.A, f.B, f.C, f.Offset)
	return b.String()
}

// Apply reconstructs the factored rotation A·B·C·Â·B̂·Ĉ.
func (f Factorization) Apply() string {
	return f.A + f.B + f.C + Hat(f.A) + Hat(f.B) + Hat(f.C)
}

// countEmpty reports how many of the three factors are empty.
func (f Factorization) countEmpty() int {
	n := 0
	for _, s := range []string{f.A, f.B, f.C} {
		if s == "" {
			n++
		}
	}
	return n
}

// Valid re-checks the factorization against the original word w by direct
// string comparison.
func (f Factorization) Valid(w string) bool {
	if f.countEmpty() > 1 {
		return false
	}
	return Rotate(w, f.Offset) == f.Apply()
}
