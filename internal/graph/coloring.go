package graph

import (
	"math/bits"
	"math/rand"
	"sort"
)

// GreedyColoring colors vertices in the given order, assigning each the
// smallest color unused by its already-colored neighbors. Returns the
// coloring and the number of colors used. With the identity order this is
// the textbook first-fit heuristic.
func GreedyColoring(g *Graph, order []int) ([]int, int) {
	colors := make([]int, g.N())
	for i := range colors {
		colors[i] = -1
	}
	maxColor := -1
	taken := make([]bool, g.N()+1)
	for _, u := range order {
		for _, v := range g.Neighbors(u) {
			if colors[v] >= 0 {
				taken[colors[v]] = true
			}
		}
		c := 0
		for taken[c] {
			c++
		}
		colors[u] = c
		if c > maxColor {
			maxColor = c
		}
		for _, v := range g.Neighbors(u) {
			if colors[v] >= 0 {
				taken[colors[v]] = false
			}
		}
	}
	return colors, maxColor + 1
}

// IdentityOrder returns 0..n-1.
func IdentityOrder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// RandomOrder returns a permutation of 0..n-1 drawn from rng.
func RandomOrder(rng *rand.Rand, n int) []int {
	out := IdentityOrder(n)
	rng.Shuffle(n, func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// DegreeOrder returns vertices sorted by decreasing degree (Welsh–Powell
// order).
func DegreeOrder(g *Graph) []int {
	out := IdentityOrder(g.N())
	sort.SliceStable(out, func(a, b int) bool { return g.Degree(out[a]) > g.Degree(out[b]) })
	return out
}

// DSATUR colors the graph with the saturation-degree heuristic: repeatedly
// color the uncolored vertex with the most distinctly-colored neighbors
// (ties broken by degree, then index). Returns coloring and color count.
//
// Saturation sets are per-vertex bitsets over at most Δ+1 colors (greedy
// never needs more). Selection runs through a bucket queue keyed by
// saturation degree: buckets[s] is a lazy min-heap (by static tie-break
// rank) of the vertices whose saturation last reached s, so each pick is
// O(log n) instead of the O(n) scan the bucket queue replaced, and a
// vertex is (re)pushed at most once per saturation increment — O(E)
// pushes over the whole run.
func DSATUR(g *Graph) ([]int, int) {
	n := g.N()
	colors := make([]int, n)
	if n == 0 {
		return colors, 0
	}
	for i := range colors {
		colors[i] = -1
	}
	// Degrees are materialized once: the sort below compares them
	// O(n log n) times, and in periodic mode each Degree call is a
	// stencil scan rather than a pointer difference.
	deg := make([]int32, n)
	maxDeg := 0
	for i := range deg {
		d := g.Degree(i)
		deg[i] = int32(d)
		if d > maxDeg {
			maxDeg = d
		}
	}
	words := (maxDeg + 1 + 63) / 64
	sat := make([]uint64, n*words) // vertex u's neighbor-color bitset
	satCount := make([]int, n)     // popcount cache of sat rows

	// rank is the static tie-break order within one saturation level:
	// higher degree first, then lower index — exactly the order the
	// linear scan this replaces settled on. A sorted slice is already a
	// valid min-heap, so bucket 0 starts heapified.
	byRank := IdentityOrder(n)
	sort.SliceStable(byRank, func(a, b int) bool { return deg[byRank[a]] > deg[byRank[b]] })
	rank := make([]int32, n)
	bucket0 := make([]int32, n)
	for i, v := range byRank {
		rank[v] = int32(i)
		bucket0[i] = int32(v)
	}
	// buckets[s] holds vertices with saturation s, with lazy deletion:
	// entries go stale when their vertex is colored or its saturation
	// moved on, and are discarded at pop time. Every uncolored vertex
	// has exactly one live entry, at buckets[satCount[v]].
	buckets := make([][]int32, maxDeg+1)
	buckets[0] = bucket0
	top := 0 // highest level with a live entry is never above top

	maxColor := -1
	for step := 0; step < n; step++ {
		// Pick the uncolored vertex with maximum saturation.
		var best int
		for {
			if len(buckets[top]) == 0 {
				top--
				continue
			}
			v := int(heapPop(buckets[top], rank))
			buckets[top] = buckets[top][:len(buckets[top])-1]
			if colors[v] >= 0 || satCount[v] != top {
				continue // stale entry
			}
			best = v
			break
		}
		// Smallest color absent from neighbors: first zero bit of the row.
		row := sat[best*words : (best+1)*words]
		c := 0
		for w, bitsWord := range row {
			if inv := ^bitsWord; inv != 0 {
				c = w*64 + bits.TrailingZeros64(inv)
				break
			}
			c = (w + 1) * 64
		}
		colors[best] = c
		if c > maxColor {
			maxColor = c
		}
		word, bit := c/64, uint64(1)<<(c%64)
		for _, v := range g.Neighbors(best) {
			if colors[v] < 0 && sat[v*words+word]&bit == 0 {
				sat[v*words+word] |= bit
				satCount[v]++
				s := satCount[v]
				buckets[s] = heapPush(buckets[s], rank, int32(v))
				if s > top {
					top = s
				}
			}
		}
	}
	return colors, maxColor + 1
}

// heapPush adds v to the min-heap h ordered by rank and returns it.
func heapPush(h []int32, rank []int32, v int32) []int32 {
	h = append(h, v)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if rank[h[parent]] <= rank[h[i]] {
			break
		}
		h[parent], h[i] = h[i], h[parent]
		i = parent
	}
	return h
}

// heapPop returns the min-rank element of h, moving the last element into
// the root and sifting down; the caller truncates h by one.
func heapPop(h []int32, rank []int32) int32 {
	min := h[0]
	last := len(h) - 1
	h[0] = h[last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && rank[h[l]] < rank[h[smallest]] {
			smallest = l
		}
		if r < last && rank[h[r]] < rank[h[smallest]] {
			smallest = r
		}
		if smallest == i {
			break
		}
		h[i], h[smallest] = h[smallest], h[i]
		i = smallest
	}
	return min
}

// ChromaticResult reports the outcome of an exact chromatic-number search.
type ChromaticResult struct {
	// Colors is a proper coloring using NumColors colors.
	Colors []int
	// NumColors is the best color count found.
	NumColors int
	// Proven is true when NumColors is certified optimal (the search
	// either matched the clique lower bound or exhausted all smaller
	// counts within budget).
	Proven bool
}

// ChromaticNumber computes the chromatic number of g by branch and bound:
// a greedy clique certifies the lower bound, DSATUR gives the upper bound,
// and backtracking searches each intermediate count. nodeBudget bounds the
// search tree size to keep worst cases deterministic and fast; when the
// budget trips, the result carries the best coloring found with
// Proven=false.
func ChromaticNumber(g *Graph, nodeBudget int) ChromaticResult {
	if g.N() == 0 {
		return ChromaticResult{Colors: []int{}, NumColors: 0, Proven: true}
	}
	lb := CliqueLowerBound(g)
	bestColors, ub := DSATUR(g)
	if lb == ub {
		return ChromaticResult{Colors: bestColors, NumColors: ub, Proven: true}
	}
	order := DegreeOrder(g)
	for k := lb; k < ub; k++ {
		colors := make([]int, g.N())
		for i := range colors {
			colors[i] = -1
		}
		budget := nodeBudget
		switch tryColor(g, order, colors, 0, k, &budget) {
		case searchFound:
			return ChromaticResult{Colors: colors, NumColors: k, Proven: true}
		case searchExhausted:
			continue // no k-coloring exists; try k+1
		case searchBudget:
			return ChromaticResult{Colors: bestColors, NumColors: ub, Proven: false}
		}
	}
	return ChromaticResult{Colors: bestColors, NumColors: ub, Proven: true}
}

type searchOutcome int

const (
	searchFound searchOutcome = iota
	searchExhausted
	searchBudget
)

func tryColor(g *Graph, order, colors []int, pos, k int, budget *int) searchOutcome {
	if pos == len(order) {
		return searchFound
	}
	if *budget <= 0 {
		return searchBudget
	}
	*budget--
	u := order[pos]
	// Symmetry pruning: u may use at most one color beyond the current
	// maximum.
	maxUsed := -1
	for i := 0; i < pos; i++ {
		if colors[order[i]] > maxUsed {
			maxUsed = colors[order[i]]
		}
	}
	limit := maxUsed + 1
	if limit >= k {
		limit = k - 1
	}
	budgetTripped := false
	for c := 0; c <= limit; c++ {
		ok := true
		for _, v := range g.Neighbors(u) {
			if colors[v] == c {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		colors[u] = c
		switch tryColor(g, order, colors, pos+1, k, budget) {
		case searchFound:
			return searchFound
		case searchBudget:
			budgetTripped = true
		}
		colors[u] = -1
		if budgetTripped {
			return searchBudget
		}
	}
	return searchExhausted
}
