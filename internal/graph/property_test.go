package graph

import (
	"math/rand"
	"testing"

	"tilingsched/internal/lattice"
)

func randomGraph(rng *rand.Rand, n int, p float64) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				g.AddEdge(i, j)
			}
		}
	}
	return g
}

// Property: every coloring routine produces a proper coloring on random
// graphs, and color counts respect greedy ≥ DSATUR-ish bounds vs the
// exact optimum.
func TestColoringsProperOnRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 60; trial++ {
		n := 2 + rng.Intn(14)
		g := randomGraph(rng, n, 0.4)
		if colors, k := GreedyColoring(g, IdentityOrder(n)); !g.ValidColoring(colors) || k < 1 {
			t.Fatalf("greedy invalid on n=%d", n)
		}
		if colors, _ := GreedyColoring(g, RandomOrder(rng, n)); !g.ValidColoring(colors) {
			t.Fatalf("random-order greedy invalid on n=%d", n)
		}
		if colors, _ := GreedyColoring(g, DegreeOrder(g)); !g.ValidColoring(colors) {
			t.Fatalf("degree-order greedy invalid on n=%d", n)
		}
		dsColors, dsK := DSATUR(g)
		if !g.ValidColoring(dsColors) {
			t.Fatalf("DSATUR invalid on n=%d", n)
		}
		res := ChromaticNumber(g, 200_000)
		if !g.ValidColoring(res.Colors) {
			t.Fatalf("exact search returned invalid coloring on n=%d", n)
		}
		if res.Proven {
			if res.NumColors > dsK {
				t.Fatalf("exact %d above DSATUR %d", res.NumColors, dsK)
			}
			if lb := CliqueLowerBound(g); res.NumColors < lb {
				t.Fatalf("exact %d below clique bound %d", res.NumColors, lb)
			}
		}
		anColors, anK := AnnealColoring(g, rng, AnnealOptions{Iterations: 2000})
		if !g.ValidColoring(anColors) {
			t.Fatalf("annealing invalid on n=%d", n)
		}
		if res.Proven && anK < res.NumColors {
			t.Fatalf("annealing %d beat proven optimum %d", anK, res.NumColors)
		}
	}
}

// Property: every coloring algorithm produces a proper coloring on
// random *conflict graphs* — graphs of randomized deployments, built in
// both adjacency modes — and exact/heuristic counts stay ordered. This
// is the end-to-end guard that the bitset/CSR rewrite preserved every
// baseline the paper's schedules are compared against.
func TestColoringsProperOnRandomConflictGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 3; trial++ {
		for _, dep := range parityDeployments(rng) {
			w := lattice.CenteredWindow(2, 2+trial%2)
			for _, mode := range []Mode{Bitset, CSR} {
				g, _, err := conflictGraph(dep, w, mode)
				if err != nil {
					t.Fatalf("conflictGraph: %v", err)
				}
				n := g.N()
				if colors, _ := GreedyColoring(g, IdentityOrder(n)); !g.ValidColoring(colors) {
					t.Fatalf("%v: greedy invalid", mode)
				}
				if colors, _ := GreedyColoring(g, RandomOrder(rng, n)); !g.ValidColoring(colors) {
					t.Fatalf("%v: random-order greedy invalid", mode)
				}
				if colors, _ := GreedyColoring(g, DegreeOrder(g)); !g.ValidColoring(colors) {
					t.Fatalf("%v: degree-order greedy invalid", mode)
				}
				dsColors, dsK := DSATUR(g)
				if !g.ValidColoring(dsColors) {
					t.Fatalf("%v: DSATUR invalid", mode)
				}
				res := ChromaticNumber(g, 50_000)
				if !g.ValidColoring(res.Colors) {
					t.Fatalf("%v: exact search invalid", mode)
				}
				if res.Proven && res.NumColors > dsK {
					t.Fatalf("%v: exact %d above DSATUR %d", mode, res.NumColors, dsK)
				}
				if lb := CliqueLowerBound(g); res.Proven && res.NumColors < lb {
					t.Fatalf("%v: exact %d below clique bound %d", mode, res.NumColors, lb)
				}
				if colors, _ := AnnealColoring(g, rng, AnnealOptions{Iterations: 1500}); !g.ValidColoring(colors) {
					t.Fatalf("%v: annealing invalid", mode)
				}
			}
		}
	}
}

// Property: greedy coloring never uses more than maxDegree+1 colors
// (Brooks-style bound for first-fit).
func TestGreedyDegreeBound(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for trial := 0; trial < 80; trial++ {
		n := 1 + rng.Intn(15)
		g := randomGraph(rng, n, 0.5)
		_, k := GreedyColoring(g, IdentityOrder(n))
		if k > g.MaxDegree()+1 {
			t.Fatalf("greedy used %d colors, max degree %d", k, g.MaxDegree())
		}
	}
}

// Property: ColorsUsed agrees with the reported counts.
func TestColorsUsedAgrees(t *testing.T) {
	rng := rand.New(rand.NewSource(79))
	for trial := 0; trial < 50; trial++ {
		g := randomGraph(rng, 2+rng.Intn(10), 0.3)
		colors, k := DSATUR(g)
		if used := ColorsUsed(colors); used != k {
			t.Fatalf("ColorsUsed %d ≠ reported %d", used, k)
		}
	}
}
