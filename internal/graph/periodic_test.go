package graph

// Explicit-vs-implicit differential tests: the Periodic adjacency mode
// must agree edge-for-edge with the explicit bitset/CSR builds and the
// pairwise schedule.Conflict oracle on deployments where the periodicity
// contract holds, and DSATUR must color all three modes identically.

import (
	"errors"
	"math/rand"
	"slices"
	"testing"

	"tilingsched/internal/intmat"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

// TestPeriodicConflictGraphParity builds the conflict graph of random
// homogeneous deployments implicitly and checks it — via the shared
// parity harness — against the map-of-sets oracle fed by the pairwise
// conflict test, then pins DSATUR colorings across bitset, CSR, and
// periodic modes.
func TestPeriodicConflictGraphParity(t *testing.T) {
	rng := rand.New(rand.NewSource(5511))
	for trial := 0; trial < 4; trial++ {
		for _, dep := range parityDeployments(rng) {
			hom, ok := dep.(*schedule.Homogeneous)
			if !ok {
				t.Fatal("parity deployment pool is expected to be homogeneous")
			}
			var w lattice.Window
			if trial%2 == 0 {
				w = lattice.CenteredWindow(2, 2+rng.Intn(2))
			} else {
				var err error
				w, err = lattice.BoxWindow(3+rng.Intn(4), 3+rng.Intn(4))
				if err != nil {
					t.Fatalf("BoxWindow: %v", err)
				}
			}
			gP, err := HomogeneousConflictGraph(hom, w)
			if err != nil {
				t.Fatalf("HomogeneousConflictGraph: %v", err)
			}
			if gP.Mode() != Periodic {
				t.Fatalf("mode = %v, want periodic", gP.Mode())
			}
			if pw, ok := gP.Window(); !ok || !pw.Lo.Equal(w.Lo) || !pw.Hi.Equal(w.Hi) {
				t.Fatalf("Window() = %v, %v; want %v", pw, ok, w)
			}
			pts := w.Points()
			ng := newNaiveGraph(len(pts))
			for i := 0; i < len(pts); i++ {
				for j := i + 1; j < len(pts); j++ {
					if schedule.Conflict(dep, pts[i], pts[j]) {
						ng.addEdge(i, j)
					}
				}
			}
			checkGraphParity(t, "conflict/periodic", gP, ng, rng)

			gBit, _, err := conflictGraph(dep, w, Bitset)
			if err != nil {
				t.Fatalf("conflictGraph bitset: %v", err)
			}
			gCSR, _, err := conflictGraph(dep, w, CSR)
			if err != nil {
				t.Fatalf("conflictGraph csr: %v", err)
			}
			cP, kP := DSATUR(gP)
			cBit, kBit := DSATUR(gBit)
			cCSR, kCSR := DSATUR(gCSR)
			if kP != kBit || kP != kCSR || !slices.Equal(cP, cBit) || !slices.Equal(cP, cCSR) {
				t.Fatalf("DSATUR diverges across modes: periodic %d, bitset %d, csr %d colors",
					kP, kBit, kCSR)
			}
			if !gP.ValidColoring(cP) || !ng.validColoring(cP) {
				t.Fatal("periodic DSATUR coloring rejected")
			}
		}
	}
}

// TestPeriodicD1Parity exercises the multi-class stencil path: the D1
// deployment of a 2×2 torus tiling is periodic modulo diag(2, 2), so
// the 4-class implicit graph must match the explicit build and the
// pairwise oracle.
func TestPeriodicD1Parity(t *testing.T) {
	domino := prototile.MustNew("domino", lattice.Pt(0, 0), lattice.Pt(1, 0))
	mono := prototile.MustNew("mono", lattice.Pt(0, 0))
	tt, err := tiling.NewTorusTiling([]int{2, 2},
		[]*prototile.Tile{domino, mono},
		[]tiling.Placement{
			{TileIndex: 0, Offset: lattice.Pt(0, 0)},
			{TileIndex: 1, Offset: lattice.Pt(0, 1)},
			{TileIndex: 1, Offset: lattice.Pt(1, 1)},
		})
	if err != nil {
		t.Fatalf("NewTorusTiling: %v", err)
	}
	dep := schedule.NewD1(tt)
	res, err := tiling.NewResidues(intmat.MustFromRows([][]int64{{2, 0}, {0, 2}}))
	if err != nil {
		t.Fatalf("NewResidues: %v", err)
	}
	if res.Classes() != 4 {
		t.Fatalf("classes = %d, want 4", res.Classes())
	}
	rng := rand.New(rand.NewSource(88))
	for _, w := range []lattice.Window{
		lattice.CenteredWindow(2, 3),
		mustBoxWindow(t, 6, 7),
		mustBoxWindow(t, 5, 4),
	} {
		gP, err := PeriodicConflictGraph(dep, res, w)
		if err != nil {
			t.Fatalf("PeriodicConflictGraph: %v", err)
		}
		pts := w.Points()
		ng := newNaiveGraph(len(pts))
		for i := 0; i < len(pts); i++ {
			for j := i + 1; j < len(pts); j++ {
				if schedule.Conflict(dep, pts[i], pts[j]) {
					ng.addEdge(i, j)
				}
			}
		}
		checkGraphParity(t, "conflict/periodic-d1", gP, ng, rng)
		gCSR, _, err := conflictGraph(dep, w, CSR)
		if err != nil {
			t.Fatalf("conflictGraph: %v", err)
		}
		cP, kP := DSATUR(gP)
		cE, kE := DSATUR(gCSR)
		if kP != kE || !slices.Equal(cP, cE) {
			t.Fatalf("DSATUR diverges: periodic %d vs explicit %d colors", kP, kE)
		}
	}
}

func mustBoxWindow(t *testing.T, sides ...int) lattice.Window {
	t.Helper()
	w, err := lattice.BoxWindow(sides...)
	if err != nil {
		t.Fatalf("BoxWindow%v: %v", sides, err)
	}
	return w
}

// TestPeriodicVerifySchedule drives the graph-side verifier in both
// explicit and implicit modes: the Theorem 1 tiling schedule and plain
// TDMA must verify collision-free, a constant-slot schedule must be
// rejected with a collision witness, and the witnesses must agree with
// schedule.VerifyCollisionFree.
func TestPeriodicVerifySchedule(t *testing.T) {
	tile := prototile.Cross(2, 1)
	lt, ok := tiling.FindLatticeTiling(tile)
	if !ok {
		t.Fatal("no lattice tiling for the cross")
	}
	s := schedule.FromLatticeTiling(lt)
	dep := schedule.NewHomogeneous(tile)
	w := lattice.CenteredWindow(2, 12) // 25² = 625 sensors
	gP, err := HomogeneousConflictGraph(dep, w)
	if err != nil {
		t.Fatalf("HomogeneousConflictGraph: %v", err)
	}
	gE, _, err := ConflictGraph(dep, w)
	if err != nil {
		t.Fatalf("ConflictGraph: %v", err)
	}
	for _, tc := range []struct {
		name string
		g    *Graph
	}{{"periodic", gP}, {"explicit", gE}} {
		if err := VerifySchedule(tc.g, w, s); err != nil {
			t.Fatalf("%s: Theorem 1 schedule rejected: %v", tc.name, err)
		}
		if err := VerifySchedule(tc.g, w, schedule.PlainTDMA(w)); err != nil {
			t.Fatalf("%s: TDMA rejected: %v", tc.name, err)
		}
		pts := w.Points()
		bad, err := schedule.NewMapSchedule(1, pts, make([]int, len(pts)))
		if err != nil {
			t.Fatalf("NewMapSchedule: %v", err)
		}
		verr := VerifySchedule(tc.g, w, bad)
		var cw schedule.CollisionWitness
		if !errors.As(verr, &cw) {
			t.Fatalf("%s: constant schedule accepted (err = %v)", tc.name, verr)
		}
		if cw.Slot != 0 || !schedule.Conflict(dep, cw.P, cw.Q) {
			t.Fatalf("%s: witness %v is not a real conflict", tc.name, cw)
		}
	}
	// The schedule-side verifier agrees on the positive case.
	if err := schedule.VerifyCollisionFree(s, dep, w); err != nil {
		t.Fatalf("VerifyCollisionFree: %v", err)
	}
	// Vertex-count mismatch is an error, not a silent pass.
	if err := VerifySchedule(gP, lattice.CenteredWindow(2, 3), s); err == nil {
		t.Fatal("window/graph size mismatch accepted")
	}
}

// TestPeriodicImmutable pins the AddEdge panic: implicit graphs cannot
// be mutated.
func TestPeriodicImmutable(t *testing.T) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	g, err := HomogeneousConflictGraph(dep, lattice.CenteredWindow(2, 2))
	if err != nil {
		t.Fatalf("HomogeneousConflictGraph: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("AddEdge on a periodic graph did not panic")
		}
	}()
	g.AddEdge(0, 1)
}

// TestPeriodicModeString pins the diagnostic name and the Window
// accessor's explicit-mode behavior.
func TestPeriodicModeString(t *testing.T) {
	if Periodic.String() != "periodic" {
		t.Fatalf("Periodic.String() = %q", Periodic.String())
	}
	if _, ok := New(4).Window(); ok {
		t.Fatal("explicit graph reported a window")
	}
}

// TestPeriodicMemoryFootprint asserts the point of the mode: the
// implicit representation of a large homogeneous window stores no
// per-vertex or per-edge adjacency state.
func TestPeriodicMemoryFootprint(t *testing.T) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	w := lattice.CenteredWindow(2, 500) // 1001² ≈ 1M vertices
	g, err := HomogeneousConflictGraph(dep, w)
	if err != nil {
		t.Fatalf("HomogeneousConflictGraph: %v", err)
	}
	if g.N() != 1001*1001 {
		t.Fatalf("N = %d", g.N())
	}
	// The cross of radius 1 has |N−N \ {0}| = 12 conflict offsets.
	if len(g.stOff) != 12*2 || g.stPtr[len(g.stPtr)-1] != 12 {
		t.Fatalf("stencil stores %d ints (%d offsets), want 24 (12)", len(g.stOff), g.stPtr[len(g.stPtr)-1])
	}
	if g.col != nil || g.buf != nil || g.adj != nil || g.bits != nil {
		t.Fatal("periodic graph materialized explicit adjacency state")
	}
	// Interior degree matches the stencil size; corners clip.
	center, _ := w.IndexOf(lattice.Pt(0, 0))
	if d := g.Degree(center); d != 12 {
		t.Fatalf("interior degree = %d, want 12", d)
	}
	corner, _ := w.IndexOf(lattice.Pt(-500, -500))
	if d := g.Degree(corner); d != 5 {
		t.Fatalf("corner degree = %d, want 5", d)
	}
}
