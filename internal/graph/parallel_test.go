package graph

// Shard-count invariance: the parallel builder must produce a frozen
// CSR that is bit-identical to the serial build for every shard count —
// sharding partitions the edge set by smaller endpoint and Freeze
// canonicalizes row order, so any divergence is a bug.

import (
	"math/rand"
	"runtime"
	"slices"
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
)

// TestConflictGraphShardInvariance pins rowPtr/col equality across
// shard counts 1, 2, 3, 8 and the serial path, for several deployments
// including asymmetric and disconnected neighborhoods.
func TestConflictGraphShardInvariance(t *testing.T) {
	deps := []schedule.Deployment{
		schedule.NewHomogeneous(prototile.Cross(2, 1)),
		schedule.NewHomogeneous(prototile.MustTetromino("S")),
		schedule.NewHomogeneous(prototile.Directional()),
	}
	for _, dep := range deps {
		w := mustBoxWindow(t, 37, 41) // 1517 vertices
		serial, pts, err := conflictGraph(dep, w, CSR)
		if err != nil {
			t.Fatalf("conflictGraph: %v", err)
		}
		for _, shards := range []int{1, 2, 3, 8} {
			g, ptsS, err := conflictGraphShards(dep, w, CSR, shards)
			if err != nil {
				t.Fatalf("shards=%d: %v", shards, err)
			}
			if len(ptsS) != len(pts) {
				t.Fatalf("shards=%d: %d points, serial %d", shards, len(ptsS), len(pts))
			}
			if !slices.Equal(g.rowPtr, serial.rowPtr) || !slices.Equal(g.col, serial.col) {
				t.Fatalf("shards=%d: frozen CSR differs from serial build", shards)
			}
		}
		// Forced-bitset sharded build agrees row-for-row too.
		gB, _, err := conflictGraphShards(dep, w, Bitset, 4)
		if err != nil {
			t.Fatalf("bitset shards: %v", err)
		}
		for u := 0; u < serial.N(); u++ {
			got := slices.Clone(gB.Neighbors(u))
			slices.Sort(got)
			if !slices.Equal(got, serial.Neighbors(u)) {
				t.Fatalf("bitset sharded Neighbors(%d) = %v, serial %v", u, got, serial.Neighbors(u))
			}
		}
	}
}

// TestConflictGraphShardsPublic checks the exported entry point across
// the bitset/CSR crossover and degenerate shard counts (0, negative,
// more shards than vertices).
func TestConflictGraphShardsPublic(t *testing.T) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 2))
	small := lattice.CenteredWindow(2, 3) // 49 vertices — auto resolves to bitset
	for _, shards := range []int{-1, 0, 1, 4, 1000} {
		g, pts, err := ConflictGraphShards(dep, small, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if g.Mode() != Bitset {
			t.Fatalf("shards=%d: mode %v below the crossover, want bitset", shards, g.Mode())
		}
		ref, _, err := ConflictGraph(dep, small)
		if err != nil {
			t.Fatalf("ConflictGraph: %v", err)
		}
		if g.Edges() != ref.Edges() || len(pts) != ref.N() {
			t.Fatalf("shards=%d: %d edges, want %d", shards, g.Edges(), ref.Edges())
		}
	}
	big := mustBoxWindow(t, 70, 70) // 4900 > BitsetCrossover — auto resolves to CSR
	serial, _, err := conflictGraph(dep, big, CSR)
	if err != nil {
		t.Fatalf("conflictGraph: %v", err)
	}
	g, _, err := ConflictGraphShards(dep, big, 8)
	if err != nil {
		t.Fatalf("ConflictGraphShards: %v", err)
	}
	if g.Mode() != CSR {
		t.Fatalf("mode %v above the crossover, want CSR", g.Mode())
	}
	if !slices.Equal(g.rowPtr, serial.rowPtr) || !slices.Equal(g.col, serial.col) {
		t.Fatal("public sharded build differs from serial CSR")
	}
}

// TestConflictGraphAutoParallel forces GOMAXPROCS above 1 so the
// automatic ConflictGraph path takes the sharded builder at
// ParallelThreshold vertices, and checks it against the serial build.
// Excluded under -short: the window must exceed the threshold, so the
// build is ~100k box scans.
func TestConflictGraphAutoParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("threshold-sized window; skipped with -short")
	}
	prev := runtime.GOMAXPROCS(4)
	defer runtime.GOMAXPROCS(prev)
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	w := mustBoxWindow(t, 182, 182) // 33124 ≥ ParallelThreshold
	if w.Size() < ParallelThreshold {
		t.Fatalf("test window too small: %d < %d", w.Size(), ParallelThreshold)
	}
	g, pts, err := ConflictGraph(dep, w)
	if err != nil {
		t.Fatalf("ConflictGraph: %v", err)
	}
	serial, _, err := conflictGraph(dep, w, CSR)
	if err != nil {
		t.Fatalf("conflictGraph: %v", err)
	}
	if len(pts) != serial.N() {
		t.Fatalf("points = %d, want %d", len(pts), serial.N())
	}
	if !slices.Equal(g.rowPtr, serial.rowPtr) || !slices.Equal(g.col, serial.col) {
		t.Fatal("auto-parallel build differs from serial CSR")
	}
	// Spot-check structure against the oracle at a few random pairs.
	rng := rand.New(rand.NewSource(4))
	ptsAll := w.Points()
	for probe := 0; probe < 50; probe++ {
		i, j := rng.Intn(len(ptsAll)), rng.Intn(len(ptsAll))
		if i == j {
			continue
		}
		want := schedule.Conflict(dep, ptsAll[i], ptsAll[j])
		if g.HasEdge(i, j) != want {
			t.Fatalf("edge %v–%v = %v, oracle %v", ptsAll[i], ptsAll[j], g.HasEdge(i, j), want)
		}
	}
}
