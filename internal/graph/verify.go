package graph

import (
	"fmt"

	"tilingsched/internal/lattice"
	"tilingsched/internal/schedule"
)

// VerifySchedule checks that a schedule restricted to a window is
// collision-free against a conflict graph built over that window: no
// edge of g may join two same-slot vertices. It is the graph-side twin
// of schedule.VerifyCollisionFree and works in every adjacency mode
// through EachNeighbor — in particular, a Periodic graph verifies a
// million-vertex homogeneous window in O(n · |stencil|) time and O(n)
// memory, with no edge ever materialized.
//
// g's vertices must be w's points in lexicographic order (the
// convention of every conflict-graph constructor in this package). A
// nil return means collision-free; a collision is reported as a
// schedule.CollisionWitness naming the offending pair and slot.
func VerifySchedule(g *Graph, w lattice.Window, s schedule.Schedule) error {
	n, err := w.SizeChecked()
	if err != nil {
		return fmt.Errorf("%w: verification window too large: %v", ErrGraph, err)
	}
	if n != g.N() {
		return fmt.Errorf("%w: window has %d points but graph has %d vertices", ErrGraph, n, g.N())
	}
	slots := make([]int32, n)
	i := 0
	var serr error
	w.Each(func(p lattice.Point) bool {
		k, err := s.SlotOf(p)
		if err != nil {
			serr = fmt.Errorf("graph: verifying %v: %w", p, err)
			return false
		}
		if k < 0 || k >= s.Slots() {
			serr = fmt.Errorf("%w: slot %d of %v outside [0, %d)", ErrGraph, k, p, s.Slots())
			return false
		}
		slots[i] = int32(k)
		i++
		return true
	})
	if serr != nil {
		return serr
	}
	for u := 0; u < n; u++ {
		ku := slots[u]
		collision := -1
		g.EachNeighbor(u, func(v int) bool {
			// Each edge is checked once, from its smaller endpoint.
			if v > u && slots[v] == ku {
				collision = v
				return false
			}
			return true
		})
		if collision >= 0 {
			return schedule.CollisionWitness{P: w.PointAt(u), Q: w.PointAt(collision), Slot: int(ku)}
		}
	}
	return nil
}
