package graph

import (
	"math/rand"
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
)

func TestAnnealTriangle(t *testing.T) {
	g := triangle()
	rng := rand.New(rand.NewSource(1))
	colors, k := AnnealColoring(g, rng, AnnealOptions{})
	if k != 3 {
		t.Errorf("anneal on triangle = %d colors, want 3", k)
	}
	if !g.ValidColoring(colors) {
		t.Error("anneal returned improper coloring")
	}
}

func TestAnnealImprovesOnGreedyWorstCase(t *testing.T) {
	// Crown graph: identity-order greedy needs 3+, DSATUR/annealing find 2.
	b := New(8)
	for i := 0; i < 4; i++ {
		for j := 4; j < 8; j++ {
			if j-4 != i {
				b.AddEdge(i, j)
			}
		}
	}
	rng := rand.New(rand.NewSource(2))
	colors, k := AnnealColoring(b, rng, AnnealOptions{Iterations: 5000})
	if k > 2 {
		t.Errorf("anneal on crown = %d colors, want 2", k)
	}
	if !b.ValidColoring(colors) {
		t.Error("improper coloring")
	}
}

func TestAnnealOnConflictGraphReachesOptimum(t *testing.T) {
	// On the cross deployment the optimum is |N| = 5; annealing should
	// reach it on a small window (it only needs to match the clique).
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	g, _, err := ConflictGraph(dep, lattice.CenteredWindow(2, 3))
	if err != nil {
		t.Fatalf("ConflictGraph: %v", err)
	}
	rng := rand.New(rand.NewSource(3))
	colors, k := AnnealColoring(g, rng, AnnealOptions{Iterations: 40000})
	if !g.ValidColoring(colors) {
		t.Fatal("improper coloring")
	}
	if k < 5 {
		t.Fatalf("anneal beat the clique bound: %d < 5", k)
	}
	if k > 7 {
		t.Errorf("anneal = %d colors, expected near 5", k)
	}
}

func TestAnnealDeterministic(t *testing.T) {
	dep := schedule.NewHomogeneous(prototile.MustTetromino("S"))
	g, _, err := ConflictGraph(dep, lattice.CenteredWindow(2, 2))
	if err != nil {
		t.Fatalf("ConflictGraph: %v", err)
	}
	c1, k1 := AnnealColoring(g, rand.New(rand.NewSource(7)), AnnealOptions{Iterations: 3000})
	c2, k2 := AnnealColoring(g, rand.New(rand.NewSource(7)), AnnealOptions{Iterations: 3000})
	if k1 != k2 {
		t.Fatalf("non-deterministic color count: %d vs %d", k1, k2)
	}
	for i := range c1 {
		if c1[i] != c2[i] {
			t.Fatal("non-deterministic coloring")
		}
	}
}

func TestAnnealEmptyAndTrivial(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, k := AnnealColoring(New(0), rng, AnnealOptions{}); k != 0 {
		t.Errorf("empty graph colors = %d, want 0", k)
	}
	if _, k := AnnealColoring(New(3), rng, AnnealOptions{}); k != 1 {
		t.Errorf("edgeless graph colors = %d, want 1", k)
	}
}
