package graph

// Differential test harness for the two adjacency representations: a
// reference map-of-sets oracle plus randomized edge streams and
// randomized deployments check that bitset mode, CSR mode, and the
// oracle agree on HasEdge, degrees, edge counts, and coloring validity —
// on both sides of the crossover and across freeze/thaw interleavings.

import (
	"math/rand"
	"slices"
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
)

// naiveGraph is the parity oracle: the obviously-correct map-of-sets
// adjacency, mirroring Graph's AddEdge guard rules.
type naiveGraph struct {
	n   int
	adj []map[int]bool
}

func newNaiveGraph(n int) *naiveGraph {
	adj := make([]map[int]bool, n)
	for i := range adj {
		adj[i] = map[int]bool{}
	}
	return &naiveGraph{n: n, adj: adj}
}

func (ng *naiveGraph) addEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= ng.n || v >= ng.n {
		return
	}
	ng.adj[u][v] = true
	ng.adj[v][u] = true
}

func (ng *naiveGraph) hasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= ng.n || v >= ng.n {
		return false
	}
	return ng.adj[u][v]
}

func (ng *naiveGraph) edges() int {
	total := 0
	for _, m := range ng.adj {
		total += len(m)
	}
	return total / 2
}

// validColoring is the oracle's independent notion of a proper coloring.
func (ng *naiveGraph) validColoring(colors []int) bool {
	if len(colors) != ng.n {
		return false
	}
	for u := 0; u < ng.n; u++ {
		if colors[u] < 0 {
			return false
		}
		for v := range ng.adj[u] {
			if colors[u] == colors[v] {
				return false
			}
		}
	}
	return true
}

// checkGraphParity compares one Graph against the oracle vertex by
// vertex and probes HasEdge on present, absent, and out-of-range pairs.
func checkGraphParity(t *testing.T, label string, g *Graph, ng *naiveGraph, rng *rand.Rand) {
	t.Helper()
	if g.N() != ng.n {
		t.Fatalf("%s: N = %d, oracle %d", label, g.N(), ng.n)
	}
	if g.Edges() != ng.edges() {
		t.Fatalf("%s: Edges = %d, oracle %d", label, g.Edges(), ng.edges())
	}
	maxDeg := 0
	for u := 0; u < ng.n; u++ {
		if g.Degree(u) != len(ng.adj[u]) {
			t.Fatalf("%s: Degree(%d) = %d, oracle %d", label, u, g.Degree(u), len(ng.adj[u]))
		}
		if len(ng.adj[u]) > maxDeg {
			maxDeg = len(ng.adj[u])
		}
		nbrs := slices.Clone(g.Neighbors(u))
		slices.Sort(nbrs)
		want := make([]int, 0, len(ng.adj[u]))
		for v := range ng.adj[u] {
			want = append(want, v)
		}
		slices.Sort(want)
		if !slices.Equal(nbrs, want) {
			t.Fatalf("%s: Neighbors(%d) = %v, oracle %v", label, u, nbrs, want)
		}
		// EachNeighbor visits exactly the same row.
		visited := 0
		g.EachNeighbor(u, func(v int) bool {
			if !ng.adj[u][v] {
				t.Fatalf("%s: EachNeighbor(%d) visited non-neighbor %d", label, u, v)
			}
			visited++
			return true
		})
		if visited != len(ng.adj[u]) {
			t.Fatalf("%s: EachNeighbor(%d) visited %d of %d", label, u, visited, len(ng.adj[u]))
		}
	}
	if g.MaxDegree() != maxDeg {
		t.Fatalf("%s: MaxDegree = %d, oracle %d", label, g.MaxDegree(), maxDeg)
	}
	// Every oracle edge, then random probes (hitting mostly non-edges),
	// then out-of-range endpoints.
	for u := 0; u < ng.n; u++ {
		for v := range ng.adj[u] {
			if !g.HasEdge(u, v) {
				t.Fatalf("%s: HasEdge(%d, %d) = false, oracle true", label, u, v)
			}
		}
	}
	for probe := 0; probe < 500 && ng.n > 0; probe++ {
		u, v := rng.Intn(ng.n), rng.Intn(ng.n)
		if g.HasEdge(u, v) != ng.hasEdge(u, v) {
			t.Fatalf("%s: HasEdge(%d, %d) = %v, oracle %v", label, u, v, g.HasEdge(u, v), ng.hasEdge(u, v))
		}
	}
	for _, pair := range [][2]int{{-1, 0}, {0, -1}, {ng.n, 0}, {0, ng.n}, {-3, ng.n + 3}} {
		if g.HasEdge(pair[0], pair[1]) {
			t.Fatalf("%s: HasEdge%v out of range reported true", label, pair)
		}
	}
}

// TestAdjacencyParityRandomEdges drives identical randomized edge
// streams — duplicates, self-loops, and out-of-range endpoints included —
// into the oracle and both Graph modes, on both sides of the crossover,
// and checks full adjacency equality. CSR graphs additionally absorb
// mid-build reads, exercising the freeze/thaw split.
func TestAdjacencyParityRandomEdges(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	sizes := []int{0, 1, 2, 3, 17, 64, 257, BitsetCrossover - 1, BitsetCrossover + 1}
	for _, n := range sizes {
		ng := newNaiveGraph(n)
		gBit := NewMode(n, Bitset)
		gCSR := NewMode(n, CSR)
		m := 4 * n
		for e := 0; e < m; e++ {
			// Biased into range but occasionally invalid.
			u := rng.Intn(n+3) - 1
			v := rng.Intn(n+3) - 1
			if e%7 == 0 {
				v = u // self-loop
			}
			ng.addEdge(u, v)
			gBit.AddEdge(u, v)
			gCSR.AddEdge(u, v)
			if e%5 == 2 {
				// Duplicate insert through both graphs.
				ng.addEdge(v, u)
				gBit.AddEdge(v, u)
				gCSR.AddEdge(v, u)
			}
			if n > 0 && e == m/2 {
				// Mid-build read freezes the CSR graph; the next AddEdge
				// must thaw it without losing edges.
				q := rng.Intn(n)
				if gCSR.Degree(q) != len(ng.adj[q]) {
					t.Fatalf("n=%d: mid-build CSR Degree(%d) = %d, oracle %d",
						n, q, gCSR.Degree(q), len(ng.adj[q]))
				}
			}
		}
		if gBit.Mode() != Bitset || gCSR.Mode() != CSR {
			t.Fatalf("n=%d: forced modes not honored: %v / %v", n, gBit.Mode(), gCSR.Mode())
		}
		checkGraphParity(t, "bitset", gBit, ng, rng)
		checkGraphParity(t, "csr", gCSR, ng, rng)

		// Coloring validity must agree across all three: DSATUR colorings
		// are order-independent given equal adjacency, so both modes
		// produce the identical proper coloring, and corrupting it is
		// rejected everywhere.
		cBit, kBit := DSATUR(gBit)
		cCSR, kCSR := DSATUR(gCSR)
		if kBit != kCSR || !slices.Equal(cBit, cCSR) {
			t.Fatalf("n=%d: DSATUR diverges across modes: %d vs %d colors", n, kBit, kCSR)
		}
		if !gBit.ValidColoring(cBit) || !gCSR.ValidColoring(cCSR) || !ng.validColoring(cBit) {
			t.Fatalf("n=%d: DSATUR coloring rejected by a representation", n)
		}
		if ng.edges() > 0 {
			bad := slices.Clone(cBit)
			// Corrupt one endpoint of some oracle edge.
			for u := 0; u < n; u++ {
				if len(ng.adj[u]) > 0 {
					for v := range ng.adj[u] {
						bad[u] = bad[v]
						break
					}
					break
				}
			}
			if gBit.ValidColoring(bad) || gCSR.ValidColoring(bad) || ng.validColoring(bad) {
				t.Fatalf("n=%d: corrupted coloring accepted", n)
			}
		}
	}
}

// parityDeployments is the randomized deployment pool for conflict-graph
// parity: catalog tiles spanning symmetric, asymmetric, and disconnected
// neighborhoods, plus a fresh random tile per call.
func parityDeployments(rng *rand.Rand) []schedule.Deployment {
	deps := []schedule.Deployment{
		schedule.NewHomogeneous(prototile.Cross(2, 1)),
		schedule.NewHomogeneous(prototile.Cross(2, 2)),
		schedule.NewHomogeneous(prototile.ChebyshevBall(2, 1)),
		schedule.NewHomogeneous(prototile.MustTetromino("S")),
		schedule.NewHomogeneous(prototile.Directional()),
		schedule.NewHomogeneous(prototile.LTromino()),
	}
	// Random tile: origin plus a handful of points within reach 2.
	pts := []lattice.Point{lattice.Pt(0, 0)}
	for len(pts) < 2+rng.Intn(5) {
		pts = append(pts, lattice.Pt(rng.Intn(5)-2, rng.Intn(5)-2))
	}
	ti, err := prototile.New("random", pts...)
	if err == nil {
		deps = append(deps, schedule.NewHomogeneous(ti))
	}
	return deps
}

// TestConflictGraphModeParity builds the conflict graph of randomized
// deployments in both adjacency modes and checks them edge-for-edge
// against the schedule.Conflict pairwise oracle; DSATUR must color both
// modes identically and the coloring must be proper under the oracle's
// own adjacency.
func TestConflictGraphModeParity(t *testing.T) {
	rng := rand.New(rand.NewSource(977))
	for trial := 0; trial < 6; trial++ {
		for _, dep := range parityDeployments(rng) {
			var w lattice.Window
			if trial%2 == 0 {
				w = lattice.CenteredWindow(2, 2+rng.Intn(2))
			} else {
				var err error
				w, err = lattice.BoxWindow(3+rng.Intn(4), 3+rng.Intn(4))
				if err != nil {
					t.Fatalf("BoxWindow: %v", err)
				}
			}
			gBit, pts, err := conflictGraph(dep, w, Bitset)
			if err != nil {
				t.Fatalf("conflictGraph bitset: %v", err)
			}
			gCSR, ptsCSR, err := conflictGraph(dep, w, CSR)
			if err != nil {
				t.Fatalf("conflictGraph csr: %v", err)
			}
			if len(pts) != len(ptsCSR) || gBit.N() != gCSR.N() {
				t.Fatal("mode-dependent vertex sets")
			}
			ng := newNaiveGraph(len(pts))
			for i := 0; i < len(pts); i++ {
				for j := i + 1; j < len(pts); j++ {
					if schedule.Conflict(dep, pts[i], pts[j]) {
						ng.addEdge(i, j)
					}
				}
			}
			checkGraphParity(t, "conflict/bitset", gBit, ng, rng)
			checkGraphParity(t, "conflict/csr", gCSR, ng, rng)

			cBit, kBit := DSATUR(gBit)
			cCSR, kCSR := DSATUR(gCSR)
			if kBit != kCSR || !slices.Equal(cBit, cCSR) {
				t.Fatalf("DSATUR diverges across conflict-graph modes: %d vs %d", kBit, kCSR)
			}
			if !ng.validColoring(cBit) {
				t.Fatal("DSATUR coloring improper under the conflict oracle")
			}
			if colors, _ := GreedyColoring(gCSR, IdentityOrder(gCSR.N())); !ng.validColoring(colors) {
				t.Fatal("greedy coloring on CSR improper under the conflict oracle")
			}
		}
	}
}

// TestAutoCrossover pins the automatic mode choice to the documented
// crossover constant.
func TestAutoCrossover(t *testing.T) {
	if New(BitsetCrossover).Mode() != Bitset {
		t.Errorf("New(%d) not bitset", BitsetCrossover)
	}
	if New(BitsetCrossover+1).Mode() != CSR {
		t.Errorf("New(%d) not CSR", BitsetCrossover+1)
	}
	if NewDense(BitsetCrossover+1).Mode() != Bitset {
		t.Error("NewDense did not force bitset mode")
	}
}
