// Package graph provides the interference/conflict graphs of sensor
// deployments and the distance-2 coloring machinery the paper positions
// its tiling schedules against.
//
// The paper (Related Work) recalls that an optimal collision-free schedule
// corresponds to a distance-2 coloring of the interference digraph, a
// problem NP-complete in general (McCormick; Lloyd–Ramanathan). This
// package builds the equivalent undirected conflict graph — sensors s, t
// conflict when (s+N(s)) ∩ (t+N(t)) ≠ ∅ — and offers greedy, DSATUR,
// exact branch-and-bound, and simulated-annealing colorings (the last in
// the spirit of Wang–Ansari's annealing heuristic) as baselines for the
// tiling schedule.
package graph

import (
	"errors"
	"fmt"
	"sort"

	"tilingsched/internal/lattice"
	"tilingsched/internal/schedule"
)

// ErrGraph indicates invalid graph construction or use.
var ErrGraph = errors.New("graph: invalid graph")

// Graph is a simple undirected graph on vertices 0..n-1.
type Graph struct {
	n   int
	adj [][]int
	has []bool // n×n adjacency matrix
}

// New returns an empty graph on n vertices.
func New(n int) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: New(%d)", n))
	}
	return &Graph{n: n, adj: make([][]int, n), has: make([]bool, n*n)}
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// AddEdge inserts the undirected edge {u, v}; self-loops and duplicates
// are ignored.
func (g *Graph) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return
	}
	if g.has[u*g.n+v] {
		return
	}
	g.has[u*g.n+v] = true
	g.has[v*g.n+u] = true
	g.adj[u] = append(g.adj[u], v)
	g.adj[v] = append(g.adj[v], u)
}

// HasEdge reports adjacency.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n {
		return false
	}
	return g.has[u*g.n+v]
}

// Degree returns the number of neighbors of u.
func (g *Graph) Degree(u int) int { return len(g.adj[u]) }

// Neighbors returns the adjacency list of u (shared slice; callers must
// not mutate).
func (g *Graph) Neighbors(u int) []int { return g.adj[u] }

// Edges returns the number of edges.
func (g *Graph) Edges() int {
	total := 0
	for _, a := range g.adj {
		total += len(a)
	}
	return total / 2
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for u := 0; u < g.n; u++ {
		if len(g.adj[u]) > d {
			d = len(g.adj[u])
		}
	}
	return d
}

// ValidColoring reports whether colors is a proper coloring: every vertex
// colored ≥ 0 and no edge monochromatic.
func (g *Graph) ValidColoring(colors []int) bool {
	if len(colors) != g.n {
		return false
	}
	for u := 0; u < g.n; u++ {
		if colors[u] < 0 {
			return false
		}
		for _, v := range g.adj[u] {
			if colors[u] == colors[v] {
				return false
			}
		}
	}
	return true
}

// ColorsUsed returns the number of distinct colors in a coloring.
func ColorsUsed(colors []int) int {
	seen := map[int]bool{}
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}

// ConflictGraph builds the conflict graph of a deployment restricted to a
// window: one vertex per window point (in lexicographic order), an edge
// whenever the two sensors' interference neighborhoods intersect. A proper
// coloring of this graph is exactly a collision-free slot assignment, and
// its chromatic number is the minimal number of slots for the finite
// deployment.
func ConflictGraph(dep schedule.Deployment, w lattice.Window) (*Graph, []lattice.Point, error) {
	if w.Dim() != dep.Dim() {
		return nil, nil, fmt.Errorf("%w: window dimension %d ≠ deployment dimension %d",
			ErrGraph, w.Dim(), dep.Dim())
	}
	pts := w.Points()
	n := len(pts)
	// Precompute every sensor's neighborhood once (the deployment
	// recomputes them per call) and test intersection with an epoch-
	// stamped grid over the window expanded by the reach, so the inner
	// pair loop is pure integer indexing — no sets, no string keys.
	nbh := make([][]lattice.Point, n)
	for i, p := range pts {
		nbh[i] = dep.NeighborhoodOf(p)
	}
	reach := dep.Reach()
	extLo := w.Lo.Clone()
	extHi := w.Hi.Clone()
	for a := range extLo {
		extLo[a] -= reach
		extHi[a] += reach
	}
	ext, err := lattice.NewWindow(extLo, extHi)
	if err != nil {
		return nil, nil, err
	}
	extSize, err := ext.SizeChecked()
	if err != nil {
		return nil, nil, fmt.Errorf("%w: conflict window too large: %v", ErrGraph, err)
	}
	stamp := make([]int32, extSize)
	for i := range stamp {
		stamp[i] = -1
	}
	g := New(n)
	lo := make(lattice.Point, w.Dim())
	hi := make(lattice.Point, w.Dim())
	for i, p := range pts {
		epoch := int32(i)
		for _, x := range nbh[i] {
			if xi, ok := ext.IndexOf(x); ok {
				stamp[xi] = epoch
			}
		}
		copy(lo, p)
		copy(hi, p)
		for a := range lo {
			lo[a] -= 2 * reach
			hi[a] += 2 * reach
			if lo[a] < w.Lo[a] {
				lo[a] = w.Lo[a]
			}
			if hi[a] > w.Hi[a] {
				hi[a] = w.Hi[a]
			}
		}
		box, err := lattice.NewWindow(lo, hi)
		if err != nil {
			continue
		}
		box.Each(func(q lattice.Point) bool {
			j, _ := w.IndexOf(q)
			if j <= i {
				return true
			}
			for _, x := range nbh[j] {
				if xi, ok := ext.IndexOf(x); ok && stamp[xi] == epoch {
					g.AddEdge(i, j)
					break
				}
			}
			return true
		})
	}
	return g, pts, nil
}

// OptimalSchedule constructs the minimal-slot collision-free schedule for
// a finite deployment by exact coloring of its conflict graph. The
// returned proven flag is true when the slot count is certified minimal
// (clique bound met or search exhausted within nodeBudget). This is the
// strongest finite-window baseline the tiling schedule competes against —
// and, per Theorem 1, matches it whenever the window contains N+N.
func OptimalSchedule(dep schedule.Deployment, w lattice.Window, nodeBudget int) (*schedule.MapSchedule, bool, error) {
	g, pts, err := ConflictGraph(dep, w)
	if err != nil {
		return nil, false, err
	}
	res := ChromaticNumber(g, nodeBudget)
	ms, err := schedule.NewMapSchedule(res.NumColors, pts, res.Colors)
	if err != nil {
		return nil, false, err
	}
	return ms, res.Proven, nil
}

// CliqueLowerBound finds a large clique greedily (best over all seed
// vertices, extending by highest-degree candidates) and returns its size —
// a certified lower bound on the chromatic number. For homogeneous
// deployments whose window contains the prototile, the clique recovers
// the paper's bound |N| (all sensors inside one neighborhood pairwise
// conflict).
func CliqueLowerBound(g *Graph) int {
	best := 0
	if g.n == 0 {
		return 0
	}
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.Degree(order[a]) > g.Degree(order[b]) })
	for _, seed := range order {
		clique := []int{seed}
		// Candidates: neighbors of everything in the clique.
		cand := append([]int(nil), g.adj[seed]...)
		sort.Slice(cand, func(a, b int) bool { return g.Degree(cand[a]) > g.Degree(cand[b]) })
		for _, v := range cand {
			ok := true
			for _, u := range clique {
				if !g.HasEdge(u, v) {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, v)
			}
		}
		if len(clique) > best {
			best = len(clique)
		}
	}
	return best
}
