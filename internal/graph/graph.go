// Package graph provides the interference/conflict graphs of sensor
// deployments and the distance-2 coloring machinery the paper positions
// its tiling schedules against.
//
// The paper (Related Work) recalls that an optimal collision-free schedule
// corresponds to a distance-2 coloring of the interference digraph, a
// problem NP-complete in general (McCormick; Lloyd–Ramanathan). This
// package builds the equivalent undirected conflict graph — sensors s, t
// conflict when (s+N(s)) ∩ (t+N(t)) ≠ ∅ — and offers greedy, DSATUR,
// exact branch-and-bound, and simulated-annealing colorings (the last in
// the spirit of Wang–Ansari's annealing heuristic) as baselines for the
// tiling schedule.
//
// # Adjacency representation
//
// Graphs are stored in one of three modes (see Mode). The two explicit
// modes are chosen by vertex count: small graphs keep per-vertex bitset
// rows (an n×n bit matrix, O(1) AddEdge/HasEdge) next to append-order
// adjacency lists; large graphs buffer edges and freeze them into sorted
// compressed sparse rows (CSR), O(n + m) memory with binary-search
// HasEdge. The third, Periodic, never materializes an edge at all: for
// translation-periodic deployments it stores one conflict-offset stencil
// per residue class of the period lattice — O(det(H) · |stencil|) memory
// for a window of any size — and answers every query by translating the
// stencil (periodic.go). All modes answer the same API, so every
// coloring runs unchanged on explicit and implicit graphs alike.
//
// Explicit construction is sharded across goroutines at
// ParallelThreshold vertices (parallel.go); the frozen CSR is
// bit-identical for every shard count. Freeze-before-read rule: a
// CSR-mode graph is safe for concurrent readers only after Freeze — the
// package's constructors all return frozen graphs — and periodic graphs
// are born frozen (but see the Neighbors scratch-buffer contract).
package graph

import (
	"errors"
	"fmt"
	"math"
	"runtime"
	"slices"
	"sort"

	"tilingsched/internal/lattice"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

// ErrGraph indicates invalid graph construction or use.
var ErrGraph = errors.New("graph: invalid graph")

// Mode selects a Graph's adjacency representation.
type Mode uint8

const (
	// Auto picks Bitset for at most BitsetCrossover vertices and CSR
	// above it.
	Auto Mode = iota
	// Bitset keeps an n×n bit matrix plus append-order adjacency lists:
	// constant-time AddEdge and HasEdge at n²/8 bytes — the right trade
	// below the crossover, where the matrix stays within a couple of
	// megabytes.
	Bitset
	// CSR buffers edges during construction and Freeze compiles them
	// into sorted compressed sparse rows: O(n + m) memory and
	// O(log deg) HasEdge — the only representation that fits very large
	// windows (an n×n matrix at 20k vertices is already ~400 MB as
	// bools, 50 MB as bits; at 100k vertices neither fits a CI runner).
	CSR
	// Periodic is the implicit adjacency of translation-periodic
	// deployments (periodic.go): no edge is ever materialized — the
	// graph stores one conflict-offset stencil per residue class of the
	// deployment's period lattice and answers HasEdge/Neighbors by
	// translating the stencil to the queried vertex. Memory is
	// O(det(H) · |stencil|) instead of O(n + m). Periodic graphs are
	// built only by PeriodicConflictGraph / HomogeneousConflictGraph
	// (never NewMode), are immutable (AddEdge panics), and are always
	// frozen.
	Periodic
)

// String names the mode for tests and diagnostics.
func (m Mode) String() string {
	switch m {
	case Auto:
		return "auto"
	case Bitset:
		return "bitset"
	case CSR:
		return "csr"
	case Periodic:
		return "periodic"
	}
	return fmt.Sprintf("Mode(%d)", uint8(m))
}

// BitsetCrossover is the largest vertex count for which Auto keeps the
// bitset matrix: 4096 vertices cap the bit matrix at 2 MB (4096²/8
// bytes). One step above, the matrix grows quadratically while CSR stays
// linear in the edge count.
const BitsetCrossover = 4096

// Graph is a simple undirected graph on vertices 0..n-1, stored in one
// of three adjacency modes (see Mode). Explicit graphs are mutable via
// AddEdge; CSR-mode graphs are compiled by Freeze (called implicitly by
// the first read) and transparently reopened by a later AddEdge.
// Periodic-mode graphs are implicit and immutable.
//
// Concurrency: because CSR reads lazily freeze, a freshly built graph is
// NOT safe for concurrent readers until Freeze has been called once.
// Call Freeze after construction before sharing a graph across
// goroutines (the package's constructors — ConflictGraph,
// ConflictGraphShards, PeriodicConflictGraph, BroadcastConflictGraph —
// all return frozen graphs); after that, any number of goroutines may
// read concurrently as long as none calls AddEdge. The one exception is
// periodic-mode Neighbors, which fills a per-graph scratch buffer —
// concurrent periodic readers must use EachNeighbor/HasEdge/Degree.
type Graph struct {
	n    int
	mode Mode

	// Bitset mode.
	words int      // uint64 words per bit-matrix row
	bits  []uint64 // n×words bit matrix
	adj   [][]int  // append-order adjacency lists

	// CSR mode.
	buf    []csrEdge // pre-freeze edge buffer (u < v; may hold duplicates)
	rowPtr []int     // len n+1 once frozen; row u is col[rowPtr[u]:rowPtr[u+1]]
	col    []int     // concatenated sorted neighbor rows
	frozen bool

	// Periodic mode (periodic.go): vertex i is pw.PointAt(i); class c's
	// conflict offsets are stOff[stPtr[c]*dim : stPtr[c+1]*dim],
	// lex-sorted so translated rows come out in ascending index order.
	pw         lattice.Window
	res        *tiling.Residues
	stPtr      []int
	stOff      []int
	nbrScratch []int // Neighbors result buffer; see the Neighbors contract
}

// csrEdge is one buffered undirected edge, normalized u < v. int32
// endpoints keep the pre-freeze buffer at 8 bytes per AddEdge.
type csrEdge struct{ u, v int32 }

// New returns an empty graph on n vertices in the automatic mode: bitset
// up to BitsetCrossover vertices, CSR above.
func New(n int) *Graph { return NewMode(n, Auto) }

// NewDense returns an empty graph on n vertices forced into bitset mode,
// for callers that need constant-time HasEdge during construction and
// accept the n²/8-byte matrix.
func NewDense(n int) *Graph { return NewMode(n, Bitset) }

// NewMode returns an empty graph on n vertices in the given mode; Auto
// resolves by the crossover. Tests use explicit modes to exercise both
// representations on either side of the crossover. Periodic is not a
// constructible mode here — implicit graphs carry a stencil, not edges,
// and are built only by PeriodicConflictGraph / HomogeneousConflictGraph
// (passing Periodic panics).
func NewMode(n int, mode Mode) *Graph {
	if n < 0 {
		panic(fmt.Sprintf("graph: NewMode(%d)", n))
	}
	if mode == Auto {
		if n <= BitsetCrossover {
			mode = Bitset
		} else {
			mode = CSR
		}
	}
	g := &Graph{n: n, mode: mode}
	switch mode {
	case Bitset:
		g.words = (n + 63) / 64
		g.bits = make([]uint64, n*g.words)
		g.adj = make([][]int, n)
	case CSR:
		if n > math.MaxInt32 {
			panic(fmt.Sprintf("graph: NewMode(%d) exceeds CSR vertex limit", n))
		}
	default:
		panic(fmt.Sprintf("graph: NewMode(%d, %v)", n, mode))
	}
	return g
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// Mode returns the resolved adjacency mode (never Auto).
func (g *Graph) Mode() Mode { return g.mode }

// AddEdge inserts the undirected edge {u, v}; self-loops, duplicates,
// and out-of-range endpoints are ignored. In CSR mode duplicates are
// buffered and removed by Freeze. Periodic-mode graphs are immutable —
// their edges are defined by the stencil, not stored — so AddEdge on
// one panics.
func (g *Graph) AddEdge(u, v int) {
	if g.mode == Periodic {
		panic("graph: AddEdge on an implicit periodic graph (immutable by construction)")
	}
	if u == v || u < 0 || v < 0 || u >= g.n || v >= g.n {
		return
	}
	if g.mode == Bitset {
		word, bit := g.words*u+v/64, uint64(1)<<(v%64)
		if g.bits[word]&bit != 0 {
			return
		}
		g.bits[word] |= bit
		g.bits[g.words*v+u/64] |= uint64(1) << (u % 64)
		g.adj[u] = append(g.adj[u], v)
		g.adj[v] = append(g.adj[v], u)
		return
	}
	if g.frozen {
		g.thaw()
	}
	if u > v {
		u, v = v, u
	}
	g.buf = append(g.buf, csrEdge{int32(u), int32(v)})
}

// Freeze compiles a CSR-mode graph's buffered edges into sorted rows via
// a two-pass counting construction (count degrees, prefix-sum, scatter),
// then sorts and deduplicates each row in place. It is idempotent, a
// no-op in the bitset and periodic modes (periodic graphs are born
// frozen), and called implicitly by the first read; callers that finish
// construction may call it eagerly to drop the edge buffer — and must
// call it before sharing a CSR graph across goroutines (the
// freeze-before-read rule).
func (g *Graph) Freeze() {
	if g.mode != CSR || g.frozen {
		g.frozen = true
		return
	}
	// Pass 1: per-vertex counts (duplicates included), shifted by one so
	// the prefix sum lands directly in rowPtr.
	rowPtr := make([]int, g.n+1)
	for _, e := range g.buf {
		rowPtr[e.u+1]++
		rowPtr[e.v+1]++
	}
	for i := 0; i < g.n; i++ {
		rowPtr[i+1] += rowPtr[i]
	}
	// Pass 2: scatter both directions.
	col := make([]int, rowPtr[g.n])
	next := make([]int, g.n)
	copy(next, rowPtr[:g.n])
	for _, e := range g.buf {
		col[next[e.u]] = int(e.v)
		next[e.u]++
		col[next[e.v]] = int(e.u)
		next[e.v]++
	}
	// Sort and deduplicate each row, compacting the column array. The
	// write cursor never passes the read cursor, so compaction is safe
	// in place.
	write, start := 0, 0
	for u := 0; u < g.n; u++ {
		end := rowPtr[u+1]
		row := col[start:end]
		slices.Sort(row)
		rowStart := write
		prev := -1
		for _, v := range row {
			if v != prev {
				col[write] = v
				write++
				prev = v
			}
		}
		start = end
		rowPtr[u] = rowStart
	}
	rowPtr[g.n] = write
	g.rowPtr, g.col = rowPtr, col[:write:write]
	g.buf = nil
	g.frozen = true
}

// thaw reopens a frozen CSR graph for mutation by spilling its rows back
// into the edge buffer. Amortized: an AddEdge/read interleaving pays one
// spill per alternation, and the package's constructors freeze exactly
// once at the end.
func (g *Graph) thaw() {
	buf := make([]csrEdge, 0, len(g.col)/2+1)
	for u := 0; u < g.n; u++ {
		for _, v := range g.col[g.rowPtr[u]:g.rowPtr[u+1]] {
			if v > u {
				buf = append(buf, csrEdge{int32(u), int32(v)})
			}
		}
	}
	g.buf, g.rowPtr, g.col, g.frozen = buf, nil, nil, false
}

// ensure makes CSR reads see the frozen rows.
func (g *Graph) ensure() {
	if g.mode == CSR && !g.frozen {
		g.Freeze()
	}
}

// HasEdge reports adjacency: O(1) in bitset mode, binary search of the
// shorter endpoint row in CSR mode, a stencil scan (O(|stencil| · dim),
// no memory touched beyond the stencil) in periodic mode.
func (g *Graph) HasEdge(u, v int) bool {
	if u < 0 || v < 0 || u >= g.n || v >= g.n || u == v {
		return false
	}
	if g.mode == Bitset {
		return g.bits[g.words*u+v/64]&(uint64(1)<<(v%64)) != 0
	}
	if g.mode == Periodic {
		return g.periodicHasEdge(u, v)
	}
	g.ensure()
	if g.rowPtr[u+1]-g.rowPtr[u] > g.rowPtr[v+1]-g.rowPtr[v] {
		u, v = v, u
	}
	_, found := slices.BinarySearch(g.col[g.rowPtr[u]:g.rowPtr[u+1]], v)
	return found
}

// Degree returns the number of neighbors of u. In periodic mode it
// counts the in-window translates of u's stencil (stateless, safe for
// concurrent callers).
func (g *Graph) Degree(u int) int {
	if g.mode == Bitset {
		return len(g.adj[u])
	}
	if g.mode == Periodic {
		return g.periodicDegree(u)
	}
	g.ensure()
	return g.rowPtr[u+1] - g.rowPtr[u]
}

// Neighbors returns the adjacency row of u as a shared slice — callers
// must not mutate it. All modes answer without allocating: bitset mode
// returns the append-order list, CSR mode the sorted row, and periodic
// mode computes the row (ascending) into a single per-graph scratch
// buffer that the NEXT Neighbors call overwrites. Periodic-mode callers
// that read a graph from several goroutines, or that need two rows
// alive at once, must use EachNeighbor / HasEdge / Degree instead —
// those are stateless in every mode.
func (g *Graph) Neighbors(u int) []int {
	if g.mode == Bitset {
		return g.adj[u]
	}
	if g.mode == Periodic {
		return g.periodicNeighbors(u)
	}
	g.ensure()
	return g.col[g.rowPtr[u]:g.rowPtr[u+1]]
}

// EachNeighbor calls f for every neighbor of u until f returns false.
// Equivalent to ranging over Neighbors without exposing the shared
// slice; in periodic mode it iterates the stencil directly without
// touching the scratch buffer, so it is the concurrent-safe way to walk
// implicit rows.
func (g *Graph) EachNeighbor(u int, f func(v int) bool) {
	if g.mode == Periodic {
		g.periodicEachNeighbor(u, f)
		return
	}
	for _, v := range g.Neighbors(u) {
		if !f(v) {
			return
		}
	}
}

// Edges returns the number of edges. Explicit modes answer from stored
// adjacency; periodic mode sums window-clipped stencil degrees on every
// call — O(n · |stencil|), cheap enough at a million vertices but worth
// hoisting out of loops.
func (g *Graph) Edges() int {
	if g.mode == Bitset {
		total := 0
		for _, a := range g.adj {
			total += len(a)
		}
		return total / 2
	}
	if g.mode == Periodic {
		total := 0
		for u := 0; u < g.n; u++ {
			total += g.periodicDegree(u)
		}
		return total / 2
	}
	g.ensure()
	return len(g.col) / 2
}

// MaxDegree returns the maximum vertex degree (0 for the empty graph).
func (g *Graph) MaxDegree() int {
	d := 0
	for u := 0; u < g.n; u++ {
		if deg := g.Degree(u); deg > d {
			d = deg
		}
	}
	return d
}

// ValidColoring reports whether colors is a proper coloring: every vertex
// colored ≥ 0 and no edge monochromatic.
func (g *Graph) ValidColoring(colors []int) bool {
	if len(colors) != g.n {
		return false
	}
	for u := 0; u < g.n; u++ {
		if colors[u] < 0 {
			return false
		}
		for _, v := range g.Neighbors(u) {
			if colors[u] == colors[v] {
				return false
			}
		}
	}
	return true
}

// ColorsUsed returns the number of distinct colors in a coloring.
func ColorsUsed(colors []int) int {
	seen := map[int]bool{}
	for _, c := range colors {
		seen[c] = true
	}
	return len(seen)
}

// ConflictGraph builds the conflict graph of a deployment restricted to a
// window: one vertex per window point (in lexicographic order), an edge
// whenever the two sensors' interference neighborhoods intersect. A proper
// coloring of this graph is exactly a collision-free slot assignment, and
// its chromatic number is the minimal number of slots for the finite
// deployment. The graph's adjacency mode follows the crossover, so very
// large windows build into CSR with O(n + m) peak adjacency memory; at
// ParallelThreshold vertices and above, edge generation is sharded across
// GOMAXPROCS goroutines (see ConflictGraphShards). The returned graph is
// frozen and safe for concurrent readers.
func ConflictGraph(dep schedule.Deployment, w lattice.Window) (*Graph, []lattice.Point, error) {
	if w.Size() >= ParallelThreshold {
		if p := runtime.GOMAXPROCS(0); p > 1 {
			return conflictGraphShards(dep, w, Auto, p)
		}
	}
	return conflictGraph(dep, w, Auto)
}

// ConflictGraphMode is ConflictGraph with the explicit adjacency mode
// forced: Bitset or CSR build serially into the requested representation
// regardless of the crossover, and Auto behaves exactly like
// ConflictGraph (crossover + sharding). Periodic is not buildable here —
// implicit graphs carry a stencil, not edges; use PeriodicConflictGraph.
// The differential harnesses (internal/graph parity tests and the
// internal/dynamic oracle) use this to pin every representation against
// the same deployment; the dynamic Mutator uses it to honor a base-mode
// preference. The returned graph is frozen and safe for concurrent
// readers.
func ConflictGraphMode(dep schedule.Deployment, w lattice.Window, mode Mode) (*Graph, []lattice.Point, error) {
	if mode == Auto {
		return ConflictGraph(dep, w)
	}
	if mode == Periodic {
		return nil, nil, fmt.Errorf("%w: periodic graphs are built by PeriodicConflictGraph, not ConflictGraphMode", ErrGraph)
	}
	return conflictGraph(dep, w, mode)
}

// conflictGraph is ConflictGraph's serial path with an explicit adjacency
// mode, so the parity tests can build the same deployment into both
// explicit representations. Edge generation is one conflictScanner pass
// over the full vertex range (see scan.go for the cost model).
func conflictGraph(dep schedule.Deployment, w lattice.Window, mode Mode) (*Graph, []lattice.Point, error) {
	sc, err := newConflictScanner(dep, w, 1)
	if err != nil {
		return nil, nil, err
	}
	g := NewMode(len(sc.pts), mode)
	sc.scanRange(0, len(sc.pts), sc.newStamp(), g.AddEdge)
	g.Freeze()
	return g, sc.pts, nil
}

// OptimalSchedule constructs the minimal-slot collision-free schedule for
// a finite deployment by exact coloring of its conflict graph. The
// returned proven flag is true when the slot count is certified minimal
// (clique bound met or search exhausted within nodeBudget). This is the
// strongest finite-window baseline the tiling schedule competes against —
// and, per Theorem 1, matches it whenever the window contains N+N.
func OptimalSchedule(dep schedule.Deployment, w lattice.Window, nodeBudget int) (*schedule.MapSchedule, bool, error) {
	g, pts, err := ConflictGraph(dep, w)
	if err != nil {
		return nil, false, err
	}
	res := ChromaticNumber(g, nodeBudget)
	ms, err := schedule.NewMapSchedule(res.NumColors, pts, res.Colors)
	if err != nil {
		return nil, false, err
	}
	return ms, res.Proven, nil
}

// CliqueLowerBound finds a large clique greedily (best over all seed
// vertices, extending by highest-degree candidates) and returns its size —
// a certified lower bound on the chromatic number. For homogeneous
// deployments whose window contains the prototile, the clique recovers
// the paper's bound |N| (all sensors inside one neighborhood pairwise
// conflict).
func CliqueLowerBound(g *Graph) int {
	best := 0
	if g.n == 0 {
		return 0
	}
	order := make([]int, g.n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return g.Degree(order[a]) > g.Degree(order[b]) })
	var cand []int
	for _, seed := range order {
		clique := []int{seed}
		// Candidates: neighbors of everything in the clique.
		cand = append(cand[:0], g.Neighbors(seed)...)
		sort.Slice(cand, func(a, b int) bool { return g.Degree(cand[a]) > g.Degree(cand[b]) })
		for _, v := range cand {
			ok := true
			for _, u := range clique {
				if !g.HasEdge(u, v) {
					ok = false
					break
				}
			}
			if ok {
				clique = append(clique, v)
			}
		}
		if len(clique) > best {
			best = len(clique)
		}
	}
	return best
}
