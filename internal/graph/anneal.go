package graph

import (
	"math"
	"math/rand"
)

// AnnealOptions parameterizes the simulated-annealing coloring search.
type AnnealOptions struct {
	// Iterations per target color count (default 20000).
	Iterations int
	// StartTemp is the initial temperature (default 2.0).
	StartTemp float64
	// Cooling multiplies the temperature each iteration (default chosen
	// so the temperature decays to ~1e-3 over the run).
	Cooling float64
}

func (o AnnealOptions) withDefaults() AnnealOptions {
	if o.Iterations <= 0 {
		o.Iterations = 20000
	}
	if o.StartTemp <= 0 {
		o.StartTemp = 2.0
	}
	if o.Cooling <= 0 || o.Cooling >= 1 {
		o.Cooling = math.Pow(1e-3/o.StartTemp, 1/float64(o.Iterations))
	}
	return o
}

// AnnealColoring searches for colorings with successively fewer colors by
// simulated annealing, in the spirit of the mean-field annealing heuristic
// of Wang–Ansari cited by the paper. Starting from the DSATUR solution
// with k colors, it repeatedly attempts k-1: vertices are recolored at
// random, moves are accepted by the Metropolis rule on the number of
// monochromatic edges, and success (zero conflicts) lowers k. Returns the
// best proper coloring found and its color count.
//
// The search is deterministic given the random source.
func AnnealColoring(g *Graph, rng *rand.Rand, opts AnnealOptions) ([]int, int) {
	opts = opts.withDefaults()
	best, k := DSATUR(g)
	if g.N() == 0 || k <= 1 {
		return best, k
	}
	for target := k - 1; target >= 1; target-- {
		colors, ok := annealTarget(g, rng, target, opts)
		if !ok {
			break
		}
		best, k = colors, target
	}
	return best, k
}

// annealTarget seeks a proper coloring with exactly `target` colors.
func annealTarget(g *Graph, rng *rand.Rand, target int, opts AnnealOptions) ([]int, bool) {
	n := g.N()
	colors := make([]int, n)
	for i := range colors {
		colors[i] = rng.Intn(target)
	}
	conflicts := 0
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(u) {
			if v > u && colors[u] == colors[v] {
				conflicts++
			}
		}
	}
	temp := opts.StartTemp
	for it := 0; it < opts.Iterations && conflicts > 0; it++ {
		u := rng.Intn(n)
		newColor := rng.Intn(target)
		if newColor == colors[u] {
			temp *= opts.Cooling
			continue
		}
		delta := 0
		for _, v := range g.Neighbors(u) {
			if colors[v] == colors[u] {
				delta--
			}
			if colors[v] == newColor {
				delta++
			}
		}
		if delta <= 0 || rng.Float64() < math.Exp(-float64(delta)/temp) {
			colors[u] = newColor
			conflicts += delta
		}
		temp *= opts.Cooling
	}
	if conflicts > 0 {
		return nil, false
	}
	return colors, true
}
