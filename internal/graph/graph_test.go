package graph

import (
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
)

func TestGraphBasics(t *testing.T) {
	g := New(4)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 1)  // duplicate
	g.AddEdge(2, 2)  // self-loop ignored
	g.AddEdge(-1, 3) // out of range ignored
	if g.Edges() != 2 {
		t.Errorf("Edges = %d, want 2", g.Edges())
	}
	if !g.HasEdge(1, 0) || g.HasEdge(0, 2) {
		t.Error("HasEdge wrong")
	}
	if g.Degree(1) != 2 || g.Degree(3) != 0 {
		t.Error("Degree wrong")
	}
	if g.MaxDegree() != 2 {
		t.Errorf("MaxDegree = %d", g.MaxDegree())
	}
}

func TestValidColoring(t *testing.T) {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	if !g.ValidColoring([]int{0, 1, 0}) {
		t.Error("proper coloring rejected")
	}
	if g.ValidColoring([]int{0, 0, 1}) {
		t.Error("improper coloring accepted")
	}
	if g.ValidColoring([]int{0, 1}) {
		t.Error("short coloring accepted")
	}
	if g.ValidColoring([]int{0, -1, 0}) {
		t.Error("uncolored vertex accepted")
	}
}

func triangle() *Graph {
	g := New(3)
	g.AddEdge(0, 1)
	g.AddEdge(1, 2)
	g.AddEdge(0, 2)
	return g
}

func TestGreedyColoring(t *testing.T) {
	g := triangle()
	colors, k := GreedyColoring(g, IdentityOrder(3))
	if k != 3 {
		t.Errorf("triangle greedy colors = %d, want 3", k)
	}
	if !g.ValidColoring(colors) {
		t.Error("greedy produced improper coloring")
	}
	// Path graph colors with 2.
	p := New(4)
	p.AddEdge(0, 1)
	p.AddEdge(1, 2)
	p.AddEdge(2, 3)
	_, k = GreedyColoring(p, IdentityOrder(4))
	if k != 2 {
		t.Errorf("path greedy colors = %d, want 2", k)
	}
}

func TestDSATUR(t *testing.T) {
	g := triangle()
	colors, k := DSATUR(g)
	if k != 3 || !g.ValidColoring(colors) {
		t.Errorf("DSATUR on triangle: k=%d valid=%v", k, g.ValidColoring(colors))
	}
	// Bipartite crown: DSATUR finds 2.
	b := New(6)
	for i := 0; i < 3; i++ {
		for j := 3; j < 6; j++ {
			if j-3 != i {
				b.AddEdge(i, j)
			}
		}
	}
	_, k = DSATUR(b)
	if k != 2 {
		t.Errorf("DSATUR on crown = %d, want 2", k)
	}
}

func TestCliqueLowerBound(t *testing.T) {
	if got := CliqueLowerBound(triangle()); got != 3 {
		t.Errorf("clique of triangle = %d, want 3", got)
	}
	empty := New(5)
	if got := CliqueLowerBound(empty); got != 1 {
		t.Errorf("clique of empty graph = %d, want 1", got)
	}
	if got := CliqueLowerBound(New(0)); got != 0 {
		t.Errorf("clique of null graph = %d, want 0", got)
	}
}

func TestChromaticNumberSmall(t *testing.T) {
	cases := []struct {
		build func() *Graph
		want  int
	}{
		{func() *Graph { return triangle() }, 3},
		{func() *Graph { return New(4) }, 1},
		{func() *Graph { // 5-cycle: chromatic 3, clique 2 (forces real search)
			g := New(5)
			for i := 0; i < 5; i++ {
				g.AddEdge(i, (i+1)%5)
			}
			return g
		}, 3},
		{func() *Graph { // K4
			g := New(4)
			for i := 0; i < 4; i++ {
				for j := i + 1; j < 4; j++ {
					g.AddEdge(i, j)
				}
			}
			return g
		}, 4},
	}
	for i, c := range cases {
		g := c.build()
		res := ChromaticNumber(g, 1_000_000)
		if !res.Proven {
			t.Errorf("case %d: not proven", i)
		}
		if res.NumColors != c.want {
			t.Errorf("case %d: chromatic = %d, want %d", i, res.NumColors, c.want)
		}
		if !g.ValidColoring(res.Colors) {
			t.Errorf("case %d: invalid coloring", i)
		}
	}
}

func TestChromaticBudget(t *testing.T) {
	// With a tiny budget on a graph with a clique/chromatic gap, the
	// search falls back to the DSATUR bound unproven.
	g := New(5)
	for i := 0; i < 5; i++ {
		g.AddEdge(i, (i+1)%5)
	}
	res := ChromaticNumber(g, 1)
	if res.Proven {
		t.Error("budget-limited search claims proof")
	}
	if !g.ValidColoring(res.Colors) {
		t.Error("fallback coloring invalid")
	}
}

func TestConflictGraphMatchesPaperClique(t *testing.T) {
	// For a homogeneous deployment whose window contains N, the sensors
	// of N form a clique (the paper's optimality argument), so the
	// clique lower bound reaches |N|.
	for _, ti := range []*prototile.Tile{
		prototile.Cross(2, 1),
		prototile.MustTetromino("S"),
		prototile.ChebyshevBall(2, 1),
	} {
		dep := schedule.NewHomogeneous(ti)
		g, pts, err := ConflictGraph(dep, lattice.CenteredWindow(2, 3))
		if err != nil {
			t.Fatalf("ConflictGraph: %v", err)
		}
		if len(pts) != g.N() {
			t.Fatal("point list length mismatch")
		}
		if lb := CliqueLowerBound(g); lb < ti.Size() {
			t.Errorf("%s: clique bound %d < |N| = %d", ti.Name(), lb, ti.Size())
		}
	}
}

func TestConflictGraphEdgesAreConflicts(t *testing.T) {
	ti := prototile.Cross(2, 1)
	dep := schedule.NewHomogeneous(ti)
	w := lattice.CenteredWindow(2, 2)
	g, pts, err := ConflictGraph(dep, w)
	if err != nil {
		t.Fatalf("ConflictGraph: %v", err)
	}
	for i := 0; i < g.N(); i++ {
		for j := i + 1; j < g.N(); j++ {
			want := schedule.Conflict(dep, pts[i], pts[j])
			if g.HasEdge(i, j) != want {
				t.Fatalf("edge(%v, %v) = %v, want %v", pts[i], pts[j], g.HasEdge(i, j), want)
			}
		}
	}
}

func TestConflictGraphDimMismatch(t *testing.T) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	if _, _, err := ConflictGraph(dep, lattice.CenteredWindow(3, 1)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}
