package graph

import (
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
)

func TestOptimalScheduleMatchesTiling(t *testing.T) {
	// On a window containing N+N, the exact finite-window schedule uses
	// exactly |N| slots and verifies collision-free — Theorem 1 seen
	// from the coloring side.
	ti := prototile.Cross(2, 1)
	dep := schedule.NewHomogeneous(ti)
	w := lattice.CenteredWindow(2, 4)
	ms, proven, err := OptimalSchedule(dep, w, 1_000_000)
	if err != nil {
		t.Fatalf("OptimalSchedule: %v", err)
	}
	if !proven {
		t.Error("small window should be proven")
	}
	if ms.Slots() != ti.Size() {
		t.Errorf("optimal slots = %d, want %d", ms.Slots(), ti.Size())
	}
	if err := schedule.VerifyCollisionFree(ms, dep, w); err != nil {
		t.Errorf("optimal schedule collides: %v", err)
	}
}

func TestOptimalScheduleBeatsTilingOnTinyWindow(t *testing.T) {
	// On a 2x2 window the cross deployment needs only 4 slots (every
	// pair conflicts), fewer than m = 5: the finite optimum can undercut
	// the infinite-lattice optimum when N+N does not fit (Conclusions).
	ti := prototile.Cross(2, 1)
	dep := schedule.NewHomogeneous(ti)
	w, err := lattice.BoxWindow(2, 2)
	if err != nil {
		t.Fatalf("BoxWindow: %v", err)
	}
	ms, proven, err := OptimalSchedule(dep, w, 1_000_000)
	if err != nil {
		t.Fatalf("OptimalSchedule: %v", err)
	}
	if !proven {
		t.Fatal("tiny window should be proven")
	}
	if ms.Slots() != 4 {
		t.Errorf("2x2 optimal slots = %d, want 4", ms.Slots())
	}
	if err := schedule.VerifyCollisionFree(ms, dep, w); err != nil {
		t.Errorf("optimal schedule collides: %v", err)
	}
}

func TestOptimalScheduleDimMismatch(t *testing.T) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	if _, _, err := OptimalSchedule(dep, lattice.CenteredWindow(3, 1), 1000); err == nil {
		t.Error("dimension mismatch accepted")
	}
}
