package graph

import (
	"sync"

	"tilingsched/internal/lattice"
	"tilingsched/internal/schedule"
)

// ParallelThreshold is the vertex count at which ConflictGraph switches
// from the serial builder to the sharded parallel builder (when
// GOMAXPROCS > 1). Below it the per-shard setup — one reach-expanded
// stamp array per goroutine plus the final buffer merge — costs more
// than the scan it parallelizes; above it the scan dominates and splits
// embarrassingly. The threshold sits far above BitsetCrossover, so the
// bitset mode and everything below the crossover are untouched.
const ParallelThreshold = 32768

// ConflictGraphShards is ConflictGraph with an explicit shard count:
// edge generation splits the window's vertex range into `shards`
// contiguous ranges scanned by one goroutine each. Every shard owns a
// private stamp array over the reach-expanded window (extSize × 4 bytes
// apiece — the memory cost of parallelism) and a private edge buffer;
// buffers are concatenated and frozen into the canonical sorted CSR, so
// the frozen graph is bit-identical for every shard count (the
// shard-invariance tests pin this). shards ≤ 1 selects the serial path.
//
// The deployment's NeighborhoodOf must be safe for concurrent calls;
// both in-repo deployments (Homogeneous, D1) are, as they only read
// state cached at construction.
func ConflictGraphShards(dep schedule.Deployment, w lattice.Window, shards int) (*Graph, []lattice.Point, error) {
	return conflictGraphShards(dep, w, Auto, shards)
}

// conflictGraphShards is the sharded builder with an explicit adjacency
// mode for the parity and invariance tests.
func conflictGraphShards(dep schedule.Deployment, w lattice.Window, mode Mode, shards int) (*Graph, []lattice.Point, error) {
	if shards <= 1 {
		return conflictGraph(dep, w, mode)
	}
	sc, err := newConflictScanner(dep, w, shards)
	if err != nil {
		return nil, nil, err
	}
	n := len(sc.pts)
	if shards > n {
		shards = n
	}
	if shards <= 1 {
		g := NewMode(n, mode)
		sc.scanRange(0, n, sc.newStamp(), g.AddEdge)
		g.Freeze()
		return g, sc.pts, nil
	}
	bufs := make([][]csrEdge, shards)
	var wg sync.WaitGroup
	for s := 0; s < shards; s++ {
		lo, hi := shardRange(n, shards, s)
		wg.Add(1)
		go func(s, lo, hi int) {
			defer wg.Done()
			// Size the buffer for the shard's share of a typical edge
			// count; it grows as needed.
			buf := make([]csrEdge, 0, (hi-lo)*4)
			sc.scanRange(lo, hi, sc.newStamp(), func(u, v int) {
				// scanRange emits u < v, matching csrEdge normalization.
				buf = append(buf, csrEdge{int32(u), int32(v)})
			})
			bufs[s] = buf
		}(s, lo, hi)
	}
	wg.Wait()
	g := NewMode(n, mode)
	if g.mode == Bitset {
		// Forced-bitset builds (tests below the crossover) replay the
		// buffers; the bitset path is otherwise untouched by sharding.
		for _, buf := range bufs {
			for _, e := range buf {
				g.AddEdge(int(e.u), int(e.v))
			}
		}
		g.Freeze()
		return g, sc.pts, nil
	}
	total := 0
	for _, buf := range bufs {
		total += len(buf)
	}
	merged := make([]csrEdge, 0, total)
	for _, buf := range bufs {
		merged = append(merged, buf...)
	}
	g.buf = merged
	g.Freeze()
	return g, sc.pts, nil
}
