package graph

import (
	"fmt"

	"tilingsched/internal/lattice"
	"tilingsched/internal/schedule"
)

// Digraph is the paper's interference digraph (Related Work): an edge
// v → u means u is affected by the radio communication of v, i.e.
// u ∈ v + N(v), u ≠ v. A valid broadcast schedule is a distance-2
// coloring of this digraph; BroadcastConflictGraph realizes that
// condition as an undirected graph, and the package's colorings apply.
//
// Arcs are stored as out-lists only — out-degrees are bounded by the
// neighborhood size |N|, so duplicate suppression is a short linear scan
// and no n×n matrix is ever allocated.
type Digraph struct {
	n   int
	out [][]int
}

// NewDigraph returns an empty digraph on n vertices.
func NewDigraph(n int) *Digraph {
	if n < 0 {
		panic(fmt.Sprintf("graph: NewDigraph(%d)", n))
	}
	return &Digraph{n: n, out: make([][]int, n)}
}

// N returns the vertex count.
func (d *Digraph) N() int { return d.n }

// AddArc inserts the arc u → v; self-loops, duplicates, and
// out-of-range endpoints are ignored. Duplicate detection scans the
// out-list of u, which interference digraphs keep at |N|-ish length.
func (d *Digraph) AddArc(u, v int) {
	if u == v || u < 0 || v < 0 || u >= d.n || v >= d.n {
		return
	}
	for _, x := range d.out[u] {
		if x == v {
			return
		}
	}
	d.out[u] = append(d.out[u], v)
}

// HasArc reports whether u → v exists.
func (d *Digraph) HasArc(u, v int) bool {
	if u < 0 || v < 0 || u >= d.n || v >= d.n {
		return false
	}
	for _, x := range d.out[u] {
		if x == v {
			return true
		}
	}
	return false
}

// Out returns the out-neighbors of u (shared slice; callers must not
// mutate).
func (d *Digraph) Out(u int) []int { return d.out[u] }

// Arcs returns the arc count.
func (d *Digraph) Arcs() int {
	total := 0
	for _, o := range d.out {
		total += len(o)
	}
	return total
}

// InterferenceDigraph builds the paper's digraph over a window: an arc
// from each sensor to every other in-window sensor it affects.
func InterferenceDigraph(dep schedule.Deployment, w lattice.Window) (*Digraph, []lattice.Point, error) {
	if w.Dim() != dep.Dim() {
		return nil, nil, fmt.Errorf("%w: window dimension %d ≠ deployment dimension %d",
			ErrGraph, w.Dim(), dep.Dim())
	}
	pts := w.Points()
	d := NewDigraph(len(pts))
	for i, p := range pts {
		for _, q := range dep.NeighborhoodOf(p) {
			if j, ok := w.IndexOf(q); ok && j != i {
				d.AddArc(i, j)
			}
		}
	}
	return d, pts, nil
}

// BroadcastConflictGraph converts the digraph into the undirected
// broadcast-scheduling conflict graph: u and v conflict when either hears
// the other (primary conflict) or they share an out-neighbor (secondary /
// hidden-terminal conflict). A proper coloring of this graph is exactly a
// distance-2 coloring of the digraph in the sense of the paper's Related
// Work, and — because every sensor hears itself — it coincides with the
// neighborhood-intersection conflict graph built by ConflictGraph.
//
// Each vertex u enumerates its conflict partners v > u directly — its
// out- and in-neighbors, plus the in-neighbors of its out-neighbors — and
// an epochMarks array (the dedup primitive shared with the
// conflictScanner, scan.go) deduplicates them, so every edge is emitted
// to the graph exactly once and the construction carries no quadratic
// state.
func BroadcastConflictGraph(d *Digraph) *Graph {
	g := New(d.n)
	// Reverse adjacency for the "hears u" and shared-out-neighbor scans.
	in := make([][]int, d.n)
	for u := 0; u < d.n; u++ {
		for _, v := range d.out[u] {
			in[v] = append(in[v], u)
		}
	}
	mark := newEpochMarks(d.n)
	for u := 0; u < d.n; u++ {
		emit := func(v int) {
			if v > u && mark.mark(v, int32(u)) {
				g.AddEdge(u, v)
			}
		}
		for _, v := range d.out[u] {
			emit(v)
		}
		for _, v := range in[u] {
			emit(v)
		}
		for _, w := range d.out[u] {
			for _, v := range in[w] {
				emit(v)
			}
		}
	}
	g.Freeze()
	return g
}
