package graph

import (
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
)

func TestDigraphBasics(t *testing.T) {
	d := NewDigraph(3)
	d.AddArc(0, 1)
	d.AddArc(0, 1) // duplicate
	d.AddArc(1, 1) // self-loop ignored
	d.AddArc(-1, 2)
	if d.Arcs() != 1 {
		t.Errorf("Arcs = %d, want 1", d.Arcs())
	}
	if !d.HasArc(0, 1) || d.HasArc(1, 0) {
		t.Error("HasArc wrong (arcs are directed)")
	}
	if len(d.Out(0)) != 1 {
		t.Error("Out wrong")
	}
}

func TestBroadcastConflictPrimary(t *testing.T) {
	// u → v alone is a conflict (v cannot receive while u transmits if
	// they share a slot).
	d := NewDigraph(2)
	d.AddArc(0, 1)
	g := BroadcastConflictGraph(d)
	if !g.HasEdge(0, 1) {
		t.Error("primary conflict missing")
	}
}

func TestBroadcastConflictHiddenTerminal(t *testing.T) {
	// u → w ← v with no arc between u and v: the classic hidden-terminal
	// pair still conflicts.
	d := NewDigraph(3)
	d.AddArc(0, 2)
	d.AddArc(1, 2)
	g := BroadcastConflictGraph(d)
	if !g.HasEdge(0, 1) {
		t.Error("hidden-terminal conflict missing")
	}
}

func TestDigraphSymmetricForBalls(t *testing.T) {
	// Symmetric neighborhoods give symmetric digraphs.
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	d, _, err := InterferenceDigraph(dep, lattice.CenteredWindow(2, 2))
	if err != nil {
		t.Fatalf("InterferenceDigraph: %v", err)
	}
	for u := 0; u < d.N(); u++ {
		for _, v := range d.Out(u) {
			if !d.HasArc(v, u) {
				t.Fatalf("asymmetric arc %d→%d for a symmetric ball", u, v)
			}
		}
	}
}

func TestDigraphAsymmetricForDirectional(t *testing.T) {
	// The 2×4 directional tile is asymmetric: some arcs have no reverse.
	dep := schedule.NewHomogeneous(prototile.Directional())
	d, _, err := InterferenceDigraph(dep, lattice.CenteredWindow(2, 3))
	if err != nil {
		t.Fatalf("InterferenceDigraph: %v", err)
	}
	asym := 0
	for u := 0; u < d.N(); u++ {
		for _, v := range d.Out(u) {
			if !d.HasArc(v, u) {
				asym++
			}
		}
	}
	if asym == 0 {
		t.Error("directional deployment produced a symmetric digraph")
	}
}

func TestBroadcastConflictEqualsNeighborhoodIntersection(t *testing.T) {
	// The paper's two formulations coincide on the infinite lattice:
	// distance-2 conflicts of the interference digraph = pairwise
	// neighborhood intersection (this holds for asymmetric neighborhoods
	// too because 0 ∈ N). On a finite window the digraph misses
	// out-of-window intersection witnesses, so compare only pairs whose
	// full neighborhoods lie inside the window: build both graphs on the
	// full window and restrict the comparison to interior vertices.
	for _, ti := range []*prototile.Tile{
		prototile.Cross(2, 1),
		prototile.Directional(),
		prototile.MustTetromino("S"),
	} {
		dep := schedule.NewHomogeneous(ti)
		w := lattice.CenteredWindow(2, 2+2*dep.Reach())
		inner := lattice.CenteredWindow(2, 2)
		d, pts, err := InterferenceDigraph(dep, w)
		if err != nil {
			t.Fatalf("InterferenceDigraph: %v", err)
		}
		viaDigraph := BroadcastConflictGraph(d)
		direct, _, err := ConflictGraph(dep, w)
		if err != nil {
			t.Fatalf("ConflictGraph: %v", err)
		}
		if viaDigraph.N() != direct.N() {
			t.Fatalf("%s: vertex counts differ", ti.Name())
		}
		compared := 0
		for u := 0; u < direct.N(); u++ {
			if !inner.Contains(pts[u]) {
				continue
			}
			for v := u + 1; v < direct.N(); v++ {
				if !inner.Contains(pts[v]) {
					continue
				}
				if viaDigraph.HasEdge(u, v) != direct.HasEdge(u, v) {
					t.Fatalf("%s: edge (%v,%v) digraph=%v direct=%v",
						ti.Name(), pts[u], pts[v], viaDigraph.HasEdge(u, v), direct.HasEdge(u, v))
				}
				compared++
			}
		}
		if compared == 0 {
			t.Fatalf("%s: no interior pairs compared", ti.Name())
		}
	}
}

func TestInterferenceDigraphDimMismatch(t *testing.T) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	if _, _, err := InterferenceDigraph(dep, lattice.CenteredWindow(3, 1)); err == nil {
		t.Error("dimension mismatch accepted")
	}
}
