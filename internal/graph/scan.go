package graph

import (
	"fmt"
	"math"

	"tilingsched/internal/lattice"
	"tilingsched/internal/schedule"
)

// epochMarks is the shared deduplication primitive of the conflict-graph
// builders: a flat int32 array whose entries record the epoch in which
// they were last marked, so clearing between epochs is free. One array
// serves a whole build — ConflictGraph stamps neighborhood points with
// the scanning vertex as the epoch, BroadcastConflictGraph marks emitted
// partners the same way — and membership is a single integer compare.
//
// Epochs must be non-negative; a fresh array answers false for every
// (index, epoch) pair.
type epochMarks []int32

// newEpochMarks returns a mark array over n indexes with no epoch seen.
func newEpochMarks(n int) epochMarks {
	m := make(epochMarks, n)
	for i := range m {
		m[i] = -1
	}
	return m
}

// mark records index i as seen in the given epoch, reporting whether it
// was unseen before the call (the "emit exactly once" test).
func (m epochMarks) mark(i int, epoch int32) bool {
	if m[i] == epoch {
		return false
	}
	m[i] = epoch
	return true
}

// seen reports whether index i was marked in the given epoch.
func (m epochMarks) seen(i int, epoch int32) bool { return m[i] == epoch }

// conflictScanner is the single bounding-box neighborhood-scan
// implementation behind every explicit conflict-graph build — the serial
// ConflictGraph path and each shard of the parallel builder run the same
// scanRange code over different vertex ranges.
//
// Construction resolves every interference neighborhood exactly once
// into dense indexes of the reach-expanded window ext (a flat CSR-style
// int32 table, per the dense-indexing rule of DESIGN.md §3). A scan then
// stamps vertex i's neighborhood row into an epochMarks array over ext
// and enumerates candidate partners j > i from the bounding box
// p_i ± 2·reach clipped to the window — sensors further apart cannot
// share a neighborhood point — so the inner loop is pure integer
// compares: O(n · box · |N|) total instead of the all-pairs
// O(n² · |N|²) scan.
//
// The scanner itself is immutable after construction; concurrent
// scanRange calls are safe as long as each goroutine owns its stamp
// array (see newStamp), which is what makes the scan shardable.
type conflictScanner struct {
	w       lattice.Window
	pts     []lattice.Point
	ext     lattice.Window // w expanded by reach on every side
	extSize int
	reach   int
	dim     int
	// Neighborhood table in CSR layout: vertex i's interference points,
	// as ext indexes, are nbhIdx[nbhPtr[i]:nbhPtr[i+1]].
	nbhPtr []int
	nbhIdx []int32
}

// newConflictScanner validates the deployment/window pair and builds the
// neighborhood index tables, splitting the table construction across
// `workers` goroutines when workers > 1 (NeighborhoodOf must then be
// safe for concurrent calls, which both in-repo deployments are: they
// only read state cached at construction).
func newConflictScanner(dep schedule.Deployment, w lattice.Window, workers int) (*conflictScanner, error) {
	if w.Dim() != dep.Dim() {
		return nil, fmt.Errorf("%w: window dimension %d ≠ deployment dimension %d",
			ErrGraph, w.Dim(), dep.Dim())
	}
	reach := dep.Reach()
	extLo := w.Lo.Clone()
	extHi := w.Hi.Clone()
	for a := range extLo {
		extLo[a] -= reach
		extHi[a] += reach
	}
	ext, err := lattice.NewWindow(extLo, extHi)
	if err != nil {
		return nil, err
	}
	extSize, err := ext.SizeChecked()
	if err != nil {
		return nil, fmt.Errorf("%w: conflict window too large: %v", ErrGraph, err)
	}
	if extSize > math.MaxInt32 {
		return nil, fmt.Errorf("%w: conflict window too large: %d points", ErrGraph, extSize)
	}
	sc := &conflictScanner{
		w:       w,
		pts:     w.Points(),
		ext:     ext,
		extSize: extSize,
		reach:   reach,
		dim:     w.Dim(),
	}
	n := len(sc.pts)
	sc.nbhPtr = make([]int, n+1)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		// Serial table build. Points outside ext — possible only when a
		// deployment breaks its Reach contract — are skipped on both the
		// stamping and the scanning side, keeping the two consistent.
		sc.nbhIdx = make([]int32, 0, n)
		for i, p := range sc.pts {
			for _, x := range dep.NeighborhoodOf(p) {
				if xi, ok := ext.IndexOf(x); ok {
					sc.nbhIdx = append(sc.nbhIdx, int32(xi))
				}
			}
			sc.nbhPtr[i+1] = len(sc.nbhIdx)
		}
		return sc, nil
	}
	// Parallel table build: each worker resolves the neighborhoods of one
	// contiguous vertex range into a private buffer, recording per-row
	// lengths into its disjoint nbhPtr slots; a serial prefix sum plus
	// in-order concatenation then stitches the global CSR layout.
	parts := make([][]int32, workers)
	done := make(chan struct{}, workers)
	for s := 0; s < workers; s++ {
		lo, hi := shardRange(n, workers, s)
		go func(s, lo, hi int) {
			defer func() { done <- struct{}{} }()
			local := make([]int32, 0, hi-lo)
			for i := lo; i < hi; i++ {
				rowStart := len(local)
				for _, x := range dep.NeighborhoodOf(sc.pts[i]) {
					if xi, ok := ext.IndexOf(x); ok {
						local = append(local, int32(xi))
					}
				}
				sc.nbhPtr[i+1] = len(local) - rowStart // length; prefix-summed below
			}
			parts[s] = local
		}(s, lo, hi)
	}
	for s := 0; s < workers; s++ {
		<-done
	}
	for i := 0; i < n; i++ {
		sc.nbhPtr[i+1] += sc.nbhPtr[i]
	}
	sc.nbhIdx = make([]int32, 0, sc.nbhPtr[n])
	for _, part := range parts {
		sc.nbhIdx = append(sc.nbhIdx, part...)
	}
	return sc, nil
}

// SiteScanner is the single-site face of the conflict scan: it answers
// "does a sensor at q conflict with the sensor at site?" for candidates q
// near one mutation site, using the same dense ext-window indexing and
// epoch-mark deduplication as the full conflictScanner — O(|N|) per
// Reset, O(|N|) integer compares per Conflicts call, and no allocation
// after construction. It is the patch builder of the dynamic-deployment
// overlay (internal/dynamic): a Join event resets the scanner to the
// joining point and probes only the p ± 2·reach bounding box instead of
// rebuilding the graph.
//
// A SiteScanner is single-goroutine state (one stamp array, one current
// site); concurrent mutators must each own one.
type SiteScanner struct {
	dep   schedule.Deployment
	reach int
	dim   int
	ext   lattice.Window // current site ± 3·reach; re-centered by Reset
	marks epochMarks     // sized (6·reach+1)^dim once, epoch-cleared
	epoch int32
}

// NewSiteScanner builds a reusable scanner for the deployment. The stamp
// array covers a (6·reach+1)^dim box — candidates live within 2·reach of
// the site and their neighborhood points within a further reach — so the
// memory cost is that of a single conflictScanner row, independent of
// any window.
func NewSiteScanner(dep schedule.Deployment) (*SiteScanner, error) {
	dim := dep.Dim()
	reach := dep.Reach()
	box := lattice.CenteredWindow(dim, 3*reach)
	size, err := box.SizeChecked()
	if err != nil || size > math.MaxInt32 {
		return nil, fmt.Errorf("%w: site scan box too large (reach %d, dim %d)", ErrGraph, reach, dim)
	}
	return &SiteScanner{
		dep:   dep,
		reach: reach,
		dim:   dim,
		marks: newEpochMarks(size),
		epoch: -1,
	}, nil
}

// Reach returns the deployment's reach, cached at construction.
func (s *SiteScanner) Reach() int { return s.reach }

// Reset re-centers the scanner on a mutation site, stamping the site's
// interference neighborhood into the mark array. Clearing is free: the
// epoch counter advances instead of wiping the stamps.
func (s *SiteScanner) Reset(site lattice.Point) error {
	if len(site) != s.dim {
		return fmt.Errorf("%w: site %v has dimension %d, want %d", ErrGraph, site, len(site), s.dim)
	}
	s.epoch++
	if s.epoch == math.MaxInt32 {
		// Epoch wrapped: re-zero the marks and restart the counter.
		for i := range s.marks {
			s.marks[i] = -1
		}
		s.epoch = 0
	}
	lo := make(lattice.Point, s.dim)
	hi := make(lattice.Point, s.dim)
	for a := 0; a < s.dim; a++ {
		lo[a] = site[a] - 3*s.reach
		hi[a] = site[a] + 3*s.reach
	}
	s.ext = lattice.Window{Lo: lo, Hi: hi}
	for _, x := range s.dep.NeighborhoodOf(site) {
		if xi, ok := s.ext.IndexOf(x); ok {
			s.marks.mark(xi, s.epoch)
		}
	}
	return nil
}

// Conflicts reports whether a sensor at q would conflict with the sensor
// at the current site: some point of q's neighborhood carries the site's
// stamp. Candidates farther than 2·reach (Chebyshev) cannot conflict and
// answer false without touching the marks.
func (s *SiteScanner) Conflicts(q lattice.Point) bool {
	for _, x := range s.dep.NeighborhoodOf(q) {
		if xi, ok := s.ext.IndexOf(x); ok && s.marks.seen(xi, s.epoch) {
			return true
		}
	}
	return false
}

// shardRange splits [0, n) into `shards` near-equal contiguous ranges and
// returns the s-th as [lo, hi).
func shardRange(n, shards, s int) (lo, hi int) {
	lo = s * n / shards
	hi = (s + 1) * n / shards
	return lo, hi
}

// newStamp returns a fresh epoch-mark array sized for the scanner's
// expanded window; every concurrent scanRange caller must own one.
func (sc *conflictScanner) newStamp() epochMarks { return newEpochMarks(sc.extSize) }

// scanRange emits every conflict edge {i, j} with i in [lo, hi) and
// j > i, calling emit(i, j) exactly once per edge: vertex i's
// neighborhood row is stamped into the caller-owned mark array with
// epoch i, and each candidate j from the clipped bounding box joins i
// when one of its neighborhood points carries the stamp. Edges are
// owned by their smaller endpoint, so scans over disjoint ranges
// partition the edge set — the property the sharded builder relies on.
func (sc *conflictScanner) scanRange(lo, hi int, stamp epochMarks, emit func(u, v int)) {
	dim := sc.dim
	boxLo := make(lattice.Point, dim)
	boxHi := make(lattice.Point, dim)
	q := make(lattice.Point, dim)
	w := sc.w
	for i := lo; i < hi; i++ {
		p := sc.pts[i]
		epoch := int32(i)
		for _, xi := range sc.nbhIdx[sc.nbhPtr[i]:sc.nbhPtr[i+1]] {
			stamp.mark(int(xi), epoch)
		}
		// Bounding box of possible partners, clipped to the window.
		for a := 0; a < dim; a++ {
			boxLo[a] = max(p[a]-2*sc.reach, w.Lo[a])
			boxHi[a] = min(p[a]+2*sc.reach, w.Hi[a])
		}
		// Odometer over the box; every q is inside w by construction.
		copy(q, boxLo)
		for {
			j, _ := w.IndexOf(q)
			if j > i {
				for _, xi := range sc.nbhIdx[sc.nbhPtr[j]:sc.nbhPtr[j+1]] {
					if stamp.seen(int(xi), epoch) {
						emit(i, j)
						break
					}
				}
			}
			a := dim - 1
			for a >= 0 {
				q[a]++
				if q[a] <= boxHi[a] {
					break
				}
				q[a] = boxLo[a]
				a--
			}
			if a < 0 {
				break
			}
		}
	}
}
