package graph

import (
	"fmt"
	"math/bits"
	"math/rand"
	"testing"
)

// dsaturReference is the pre-bucket-queue DSATUR with the O(n²) linear
// selection scan, kept verbatim as the parity oracle: the bucket-queue
// implementation must reproduce its vertex choices — and therefore its
// colorings — exactly.
func dsaturReference(g *Graph) ([]int, int) {
	n := g.N()
	colors := make([]int, n)
	if n == 0 {
		return colors, 0
	}
	for i := range colors {
		colors[i] = -1
	}
	words := (g.MaxDegree() + 1 + 63) / 64
	sat := make([]uint64, n*words)
	satCount := make([]int, n)
	maxColor := -1
	for step := 0; step < n; step++ {
		best := -1
		for u := 0; u < n; u++ {
			if colors[u] >= 0 {
				continue
			}
			if best == -1 {
				best = u
				continue
			}
			if satCount[u] > satCount[best] ||
				(satCount[u] == satCount[best] && g.Degree(u) > g.Degree(best)) {
				best = u
			}
		}
		row := sat[best*words : (best+1)*words]
		c := 0
		for w, bitsWord := range row {
			if inv := ^bitsWord; inv != 0 {
				c = w*64 + bits.TrailingZeros64(inv)
				break
			}
			c = (w + 1) * 64
		}
		colors[best] = c
		if c > maxColor {
			maxColor = c
		}
		word, bit := c/64, uint64(1)<<(c%64)
		for _, v := range g.Neighbors(best) {
			if sat[v*words+word]&bit == 0 {
				sat[v*words+word] |= bit
				satCount[v]++
			}
		}
	}
	return colors, maxColor + 1
}

func TestDSATURMatchesReference(t *testing.T) {
	// The bucket queue must reproduce the linear-scan reference in both
	// adjacency modes: its choices depend only on saturation counts,
	// degrees, and indexes, never on neighbor iteration order (bitset
	// rows are append-ordered, CSR rows sorted).
	for _, mode := range []Mode{Bitset, CSR} {
		rng := rand.New(rand.NewSource(7))
		for trial := 0; trial < 60; trial++ {
			n := 1 + rng.Intn(60)
			g := NewMode(n, mode)
			p := []float64{0.05, 0.2, 0.5, 0.9}[trial%4]
			for u := 0; u < n; u++ {
				for v := u + 1; v < n; v++ {
					if rng.Float64() < p {
						g.AddEdge(u, v)
					}
				}
			}
			wantColors, wantK := dsaturReference(g)
			gotColors, gotK := DSATUR(g)
			if gotK != wantK {
				t.Fatalf("%v trial %d (n=%d p=%.2f): %d colors, reference %d", mode, trial, n, p, gotK, wantK)
			}
			for v := range wantColors {
				if gotColors[v] != wantColors[v] {
					t.Fatalf("%v trial %d (n=%d p=%.2f): vertex %d colored %d, reference %d",
						mode, trial, n, p, v, gotColors[v], wantColors[v])
				}
			}
			if !g.ValidColoring(gotColors) {
				t.Fatalf("%v trial %d: invalid coloring", mode, trial)
			}
		}
	}
}

// BenchmarkDSATURSelection compares the bucket-queue selection against
// the linear-scan reference as the vertex count grows; the gap is the
// O(n²) scan cost the bucket queue removes.
func BenchmarkDSATURSelection(b *testing.B) {
	for _, n := range []int{256, 1024, 4096} {
		g := randomGraph(rand.New(rand.NewSource(11)), n, 8/float64(n)) // sparse: ~4 avg degree
		b.Run(fmt.Sprintf("bucket/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				DSATUR(g)
			}
		})
		b.Run(fmt.Sprintf("scan/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				dsaturReference(g)
			}
		})
	}
}

func TestDSATUREdgeCases(t *testing.T) {
	// Empty graph, singleton, and edgeless graphs.
	for _, n := range []int{0, 1, 5} {
		g := New(n)
		colors, k := DSATUR(g)
		wantK := 0
		if n > 0 {
			wantK = 1
		}
		if k != wantK || len(colors) != n {
			t.Errorf("edgeless n=%d: %d colors (want %d), %d entries", n, k, wantK, len(colors))
		}
	}
	// Complete graph needs n colors.
	g := New(6)
	for u := 0; u < 6; u++ {
		for v := u + 1; v < 6; v++ {
			g.AddEdge(u, v)
		}
	}
	if _, k := DSATUR(g); k != 6 {
		t.Errorf("K6: %d colors, want 6", k)
	}
}
