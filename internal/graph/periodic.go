package graph

import (
	"fmt"

	"tilingsched/internal/lattice"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

// This file implements the Periodic adjacency mode: implicit conflict
// graphs for deployments whose interference structure repeats with a
// period lattice. For such deployments the conflict relation is
// translation-invariant within each residue class — whether p and q
// conflict depends only on p's class and the offset q − p — so the
// whole graph compresses to one conflict-offset stencil per class:
// O(det(H) · |stencil|) integers for a window of any size, against the
// O(n + m) of the explicit CSR build. A million-vertex homogeneous
// window stores 1 class × |N−N| offsets instead of ~6 million edges.
//
// Why translation-invariance holds only for periodic deployments: the
// conflict condition (p + N(p)) ∩ (q + N(q)) ≠ ∅ rewrites as
// q − p ∈ N(p) − N(q). When N is constant (homogeneous), the right side
// is the fixed difference set N − N; when N depends on p only through
// p mod H, it depends only on (class(p), q − p). A deployment whose
// neighborhoods vary freely admits no such compression, which is why
// the explicit builders remain the general path.

// periodicInlineDim bounds the dimension for which periodic-mode
// queries run entirely on stack buffers; higher dimensions fall back to
// heap scratch. Matches the inline bound of the tiling coset tables.
const periodicInlineDim = 16

// PeriodicConflictGraph builds the implicit conflict graph of a
// periodic deployment over a window. The deployment must be periodic
// modulo res's period lattice H: NeighborhoodOf(p + h) = h +
// NeighborhoodOf(p) for every h ∈ HZ^d — true by construction for
// Homogeneous (any period, use HomogeneousConflictGraph) and for D1
// with the torus dimensions as the period. The contract is the
// caller's to uphold; the differential parity tests pin it for the
// in-repo deployments.
//
// Vertices are the window's points in lexicographic order, identified
// through w.PointAt / w.IndexOf exactly as in ConflictGraph, but no
// point slice, edge list, or per-vertex state is materialized:
// construction extracts one conflict-offset stencil per residue class
// by brute force over the offset box [-2·reach, 2·reach]^d —
// O(det(H) · box · |N|) work independent of the window size — and every
// query translates a stencil row to the queried vertex. The returned
// graph is frozen, immutable, and safe for concurrent readers through
// the stateless accessors (see Neighbors for the one scratch-buffer
// exception).
func PeriodicConflictGraph(dep schedule.Deployment, res *tiling.Residues, w lattice.Window) (*Graph, error) {
	if w.Dim() != dep.Dim() {
		return nil, fmt.Errorf("%w: window dimension %d ≠ deployment dimension %d",
			ErrGraph, w.Dim(), dep.Dim())
	}
	if res.Dim() != dep.Dim() {
		return nil, fmt.Errorf("%w: residue dimension %d ≠ deployment dimension %d",
			ErrGraph, res.Dim(), dep.Dim())
	}
	n, err := w.SizeChecked()
	if err != nil {
		return nil, fmt.Errorf("%w: conflict window too large: %v", ErrGraph, err)
	}
	dim := w.Dim()
	reach := dep.Reach()
	box := lattice.CenteredWindow(dim, 2*reach)
	classes := res.Classes()
	stPtr := make([]int, classes+1)
	var stOff []int
	maxStencil := 0
	for c := 0; c < classes; c++ {
		rep := res.Representative(c)
		nbh := lattice.NewSet(dep.NeighborhoodOf(rep)...)
		start := len(stOff) / dim
		// Lex order over the box keeps each stencil row sorted, which
		// makes translated neighbor rows come out in ascending index
		// order (translation preserves the window's lex order).
		box.Each(func(d lattice.Point) bool {
			if d.IsOrigin() {
				return true
			}
			q := rep.Add(d)
			for _, x := range dep.NeighborhoodOf(q) {
				if nbh.Contains(x) {
					stOff = append(stOff, d...)
					break
				}
			}
			return true
		})
		stPtr[c+1] = len(stOff) / dim
		if s := stPtr[c+1] - start; s > maxStencil {
			maxStencil = s
		}
	}
	return &Graph{
		n:          n,
		mode:       Periodic,
		frozen:     true,
		pw:         w,
		res:        res,
		stPtr:      stPtr,
		stOff:      stOff,
		nbrScratch: make([]int, maxStencil),
	}, nil
}

// HomogeneousConflictGraph builds the implicit conflict graph of a
// homogeneous deployment over a window: a single residue class whose
// stencil is the difference set (N − N) \ {0}. This is the
// million-sensor path — a window of any size costs |N − N| stored
// offsets.
func HomogeneousConflictGraph(dep *schedule.Homogeneous, w lattice.Window) (*Graph, error) {
	return PeriodicConflictGraph(dep, tiling.IdentityResidues(dep.Dim()), w)
}

// Window returns the window whose points are the graph's vertices
// (periodic mode only; ok is false in the explicit modes, which carry
// no window).
func (g *Graph) Window() (lattice.Window, bool) {
	if g.mode != Periodic {
		return lattice.Window{}, false
	}
	return g.pw, true
}

// periodicPoint materializes vertex u into buf (stack-sized by the
// callers for dimensions up to periodicInlineDim).
func (g *Graph) periodicPoint(u int, buf []int) lattice.Point {
	var dst lattice.Point
	if g.pw.Dim() <= len(buf) {
		dst = buf[:g.pw.Dim()]
	} else {
		dst = make(lattice.Point, g.pw.Dim())
	}
	return g.pw.PointAtInto(u, dst)
}

// ConflictOffsets returns the flattened conflict-offset stencil row of
// p's residue class: every offset d (dim ints per offset) such that a
// sensor at p conflicts with one at p+d. The row is valid for ANY
// point p — inside the graph's window or not — because the periodicity
// contract (NeighborhoodOf(p+h) = h + NeighborhoodOf(p) for h ∈ HZ^d)
// holds on the whole lattice, which is what lets internal/dynamic
// patch out-of-window joins and moves by pure translation instead of
// re-probing neighborhoods. Periodic mode only; ok is false in the
// explicit modes or when p's dimension does not match. The returned
// slice aliases the frozen stencil table and must not be modified.
func (g *Graph) ConflictOffsets(p lattice.Point) ([]int, bool) {
	if g.mode != Periodic {
		return nil, false
	}
	c, ok := g.res.ClassOf(p)
	if !ok {
		return nil, false
	}
	dim := g.pw.Dim()
	return g.stOff[g.stPtr[c]*dim : g.stPtr[c+1]*dim], true
}

// stencilRow returns the flattened conflict offsets of vertex u's
// residue class.
func (g *Graph) stencilRow(p lattice.Point) []int {
	c, ok := g.res.ClassOf(p)
	if !ok {
		panic(fmt.Sprintf("graph: periodic vertex %v has dimension %d, want %d", p, len(p), g.res.Dim()))
	}
	dim := g.pw.Dim()
	return g.stOff[g.stPtr[c]*dim : g.stPtr[c+1]*dim]
}

func (g *Graph) periodicHasEdge(u, v int) bool {
	var bufU, bufV [periodicInlineDim]int
	pu := g.periodicPoint(u, bufU[:])
	pv := g.periodicPoint(v, bufV[:])
	dim := len(pu)
	row := g.stencilRow(pu)
	for k := 0; k < len(row); k += dim {
		match := true
		for a := 0; a < dim; a++ {
			if pv[a]-pu[a] != row[k+a] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

func (g *Graph) periodicDegree(u int) int {
	var buf [periodicInlineDim]int
	p := g.periodicPoint(u, buf[:])
	dim := len(p)
	row := g.stencilRow(p)
	deg := 0
	for k := 0; k < len(row); k += dim {
		in := true
		for a := 0; a < dim; a++ {
			if c := p[a] + row[k+a]; c < g.pw.Lo[a] || c > g.pw.Hi[a] {
				in = false
				break
			}
		}
		if in {
			deg++
		}
	}
	return deg
}

// periodicEachNeighbor walks u's translated stencil row in ascending
// index order without touching shared state.
func (g *Graph) periodicEachNeighbor(u int, f func(v int) bool) {
	if u < 0 || u >= g.n {
		return
	}
	var bufP, bufQ [periodicInlineDim]int
	p := g.periodicPoint(u, bufP[:])
	dim := len(p)
	var q lattice.Point
	if dim <= len(bufQ) {
		q = lattice.Point(bufQ[:dim])
	} else {
		q = make(lattice.Point, dim)
	}
	row := g.stencilRow(p)
offsets:
	for k := 0; k < len(row); k += dim {
		for a := 0; a < dim; a++ {
			c := p[a] + row[k+a]
			if c < g.pw.Lo[a] || c > g.pw.Hi[a] {
				continue offsets
			}
			q[a] = c
		}
		v, _ := g.pw.IndexOf(q)
		if !f(v) {
			return
		}
	}
}

func (g *Graph) periodicNeighbors(u int) []int {
	// The scratch buffer is pre-sized to the largest stencil, so the
	// appends never reallocate.
	out := g.nbrScratch[:0]
	g.periodicEachNeighbor(u, func(v int) bool {
		out = append(out, v)
		return true
	})
	return out
}
