package graph

import (
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
)

// TestConflictGraphLargeWindow builds the conflict graph of a
// 100k-sensor window — the size at which the old n×n bool matrix alone
// was ~10 GB and unbuildable in CI — and checks structure and coloring.
// With CSR adjacency the peak graph memory is O(n + m). Excluded under
// -short (the race CI job) to keep quick runs quick.
func TestConflictGraphLargeWindow(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-vertex window; skipped with -short")
	}
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	w := lattice.CenteredWindow(2, 158) // 317² = 100489 vertices
	g, pts, err := ConflictGraph(dep, w)
	if err != nil {
		t.Fatalf("ConflictGraph: %v", err)
	}
	n := 317 * 317
	if g.N() != n || len(pts) != n {
		t.Fatalf("N = %d, want %d", g.N(), n)
	}
	if g.Mode() != CSR {
		t.Fatalf("mode = %v, want CSR above the crossover", g.Mode())
	}
	// Two crosses of radius 1 conflict iff their centers differ by a
	// point of N − N: the L1 ball of radius 2, 13 points. Interior
	// vertices therefore have exactly 12 neighbors, and a corner vertex
	// (quadrant clipped) has 5.
	center, ok := w.IndexOf(lattice.Pt(0, 0))
	if !ok {
		t.Fatal("origin not indexed")
	}
	if d := g.Degree(center); d != 12 {
		t.Fatalf("interior degree = %d, want 12", d)
	}
	corner, _ := w.IndexOf(lattice.Pt(-158, -158))
	if d := g.Degree(corner); d != 5 {
		t.Fatalf("corner degree = %d, want 5", d)
	}
	// Total edges: each vertex pairs with the in-window part of its
	// difference ball; count via the degree sum.
	sum := 0
	for u := 0; u < n; u++ {
		sum += g.Degree(u)
	}
	if sum%2 != 0 || g.Edges() != sum/2 {
		t.Fatalf("edge count inconsistent: Σdeg = %d, Edges = %d", sum, g.Edges())
	}
	// Spot-check adjacency against the conflict oracle near the origin
	// and across the boundary.
	for _, probe := range []struct{ p, q lattice.Point }{
		{lattice.Pt(0, 0), lattice.Pt(1, 1)},
		{lattice.Pt(0, 0), lattice.Pt(2, 0)},
		{lattice.Pt(0, 0), lattice.Pt(2, 1)},
		{lattice.Pt(0, 0), lattice.Pt(3, 0)},
		{lattice.Pt(157, 157), lattice.Pt(158, 158)},
		{lattice.Pt(-158, 0), lattice.Pt(-157, 1)},
	} {
		i, ok1 := w.IndexOf(probe.p)
		j, ok2 := w.IndexOf(probe.q)
		if !ok1 || !ok2 {
			t.Fatalf("probe %v–%v not in window", probe.p, probe.q)
		}
		want := schedule.Conflict(dep, probe.p, probe.q)
		if g.HasEdge(i, j) != want {
			t.Fatalf("edge %v–%v = %v, oracle %v", probe.p, probe.q, g.HasEdge(i, j), want)
		}
	}
	// The graph must still color: DSATUR runs the bucket queue over CSR
	// rows; the cross tiles the plane with 5 slots, and the clique bound
	// certifies ≥ 5, so DSATUR lands in [5, 13).
	colors, k := DSATUR(g)
	if !g.ValidColoring(colors) {
		t.Fatal("DSATUR produced an improper coloring at 100k vertices")
	}
	if k < 5 || k > 12 {
		t.Fatalf("DSATUR colors = %d, want within [5, 12]", k)
	}
}
