package dynamic

import (
	"errors"
	"testing"

	"tilingsched/internal/graph"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

func crossMutator(t *testing.T, w lattice.Window, opts Options) (*Mutator, *schedule.Theorem1) {
	t.Helper()
	tile := prototile.Cross(2, 1)
	lt, ok := tiling.FindLatticeTiling(tile)
	if !ok {
		t.Fatal("no tiling for cross")
	}
	plan := schedule.FromLatticeTiling(lt)
	m, err := NewMutator(schedule.NewHomogeneous(tile), w, plan, opts)
	if err != nil {
		t.Fatalf("NewMutator: %v", err)
	}
	return m, plan
}

// TestZeroDisruptionRejoin: with the Theorem 1 seed, leave/rejoin churn
// inside the window never reassigns an existing sensor — the tiling
// schedule is closed under removal, so the freed slot is always free
// again at rejoin time.
func TestZeroDisruptionRejoin(t *testing.T) {
	w := lattice.CenteredWindow(2, 6)
	m, _ := crossMutator(t, w, Options{})
	pts := []lattice.Point{lattice.Pt(0, 0), lattice.Pt(3, -2), lattice.Pt(-6, 6), lattice.Pt(1, 1)}
	for round := 0; round < 3; round++ {
		for _, p := range pts {
			d, changed, err := m.Apply([]Event{{Kind: Leave, P: p}})
			if err != nil {
				t.Fatalf("leave %v: %v", p, err)
			}
			if d.Reassigned != 0 || d.Departed != 1 || len(changed) != 1 || changed[0].Slot != -1 {
				t.Fatalf("leave %v: disruption %+v changes %v", p, d, changed)
			}
			d, changed, err = m.Apply([]Event{{Kind: Join, P: p}})
			if err != nil {
				t.Fatalf("rejoin %v: %v", p, err)
			}
			if d.Reassigned != 0 || d.Joined != 1 || d.FullRecolor {
				t.Fatalf("rejoin %v disrupted: %+v", p, d)
			}
			if len(changed) != 1 || changed[0].Slot < 0 || !changed[0].P.Equal(p) {
				t.Fatalf("rejoin %v changes %v", p, changed)
			}
		}
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
	if m.Slots() != 5 {
		t.Fatalf("palette grew to %d under pure rejoin churn", m.Slots())
	}
}

// TestBoundedDisruptionLargeWindow is the acceptance property at scale:
// one join into a 10k-sensor deployment reassigns at most the damage
// region — orders of magnitude below n — and the graph stays the base
// graph (no rebuild happened: same overlay, zero added vertices).
func TestBoundedDisruptionLargeWindow(t *testing.T) {
	w, err := lattice.BoxWindow(100, 100)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := crossMutator(t, w, Options{Residues: tiling.IdentityResidues(2)})
	n := m.AliveCount()
	if n != 10000 {
		t.Fatalf("alive = %d", n)
	}
	// Out-of-window join: the only path that can disturb anything.
	p := lattice.Pt(100, 50)
	d, _, err := m.Apply([]Event{{Kind: Join, P: p}})
	if err != nil {
		t.Fatal(err)
	}
	if d.FullRecolor {
		t.Fatalf("single join forced a full recolor: %+v", d)
	}
	// Cross conflict degree is ≤ 12; damage-region repair may touch at
	// most that many existing sensors.
	if d.Reassigned > 12 {
		t.Fatalf("join reassigned %d sensors (n = %d)", d.Reassigned, n)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestEventErrors pins the failure contract: bad events error without
// corrupting state, and a failed batch reports the prefix it applied.
func TestEventErrors(t *testing.T) {
	w := lattice.CenteredWindow(2, 2)
	m, _ := crossMutator(t, w, Options{})
	cases := []struct {
		name string
		ev   Event
	}{
		{"join occupied", Event{Kind: Join, P: lattice.Pt(0, 0)}},
		{"leave missing", Event{Kind: Leave, P: lattice.Pt(9, 9)}},
		{"fail missing", Event{Kind: Fail, P: lattice.Pt(9, 9)}},
		{"move from missing", Event{Kind: Move, P: lattice.Pt(9, 9), To: lattice.Pt(10, 10)}},
		{"move onto occupied", Event{Kind: Move, P: lattice.Pt(0, 0), To: lattice.Pt(1, 1)}},
		{"move to wrong dimension", Event{Kind: Move, P: lattice.Pt(0, 0), To: lattice.Pt(1, 2, 3)}},
		{"wrong dimension", Event{Kind: Join, P: lattice.Pt(1, 2, 3)}},
	}
	for _, c := range cases {
		if _, _, err := m.Apply([]Event{c.ev}); !errors.Is(err, ErrDynamic) {
			t.Errorf("%s: err = %v, want ErrDynamic", c.name, err)
		}
		if err := m.Verify(); err != nil {
			t.Errorf("%s corrupted state: %v", c.name, err)
		}
	}
	// A failed Move is a full no-op: the source sensor must still be
	// scheduled (the half-applied leave would silently drop it).
	if _, err := m.SlotOf(lattice.Pt(0, 0)); err != nil {
		t.Fatalf("failed moves dropped the source sensor: %v", err)
	}
	// Batch stops at the failing event, keeping the applied prefix.
	d, changed, err := m.Apply([]Event{
		{Kind: Leave, P: lattice.Pt(0, 0)},
		{Kind: Join, P: lattice.Pt(0, 0)},
		{Kind: Join, P: lattice.Pt(0, 0)}, // occupied again: fails
	})
	if !errors.Is(err, ErrDynamic) || d.Events != 2 {
		t.Fatalf("partial batch: events=%d err=%v", d.Events, err)
	}
	if len(changed) != 1 || changed[0].Slot < 0 {
		t.Fatalf("partial batch changes %v", changed)
	}
	if err := m.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestBatchDeltaMerging: a position touched several times in one batch
// appears once in the deltas, with its final state.
func TestBatchDeltaMerging(t *testing.T) {
	w := lattice.CenteredWindow(2, 3)
	m, _ := crossMutator(t, w, Options{})
	p, q := lattice.Pt(0, 0), lattice.Pt(4, 0) // q outside the window
	d, changed, err := m.Apply([]Event{
		{Kind: Leave, P: p},
		{Kind: Join, P: p}, // rejoin: departure canceled
		{Kind: Join, P: q},
		{Kind: Leave, P: q}, // added then gone: only the departure remains
	})
	if err != nil {
		t.Fatal(err)
	}
	if d.Events != 4 || d.Joined != 2 || d.Departed != 2 {
		t.Fatalf("disruption %+v", d)
	}
	got := map[string]int{}
	for _, ch := range changed {
		if _, dup := got[ch.P.Key()]; dup {
			t.Fatalf("position %v appears twice in %v", ch.P, changed)
		}
		got[ch.P.Key()] = ch.Slot
	}
	if s, ok := got[p.Key()]; !ok || s < 0 {
		t.Fatalf("rejoined %v missing or departed in deltas: %v", p, changed)
	}
	if s, ok := got[q.Key()]; !ok || s != -1 {
		t.Fatalf("departed %v missing or live in deltas: %v", q, changed)
	}
}

// TestMoveAtomicity: a move is one event — source freed, destination
// colored, one departure and one join in the disruption.
func TestMoveAtomicity(t *testing.T) {
	w := lattice.CenteredWindow(2, 3)
	m, _ := crossMutator(t, w, Options{})
	from, to := lattice.Pt(2, 2), lattice.Pt(5, 5)
	d, _, err := m.Apply([]Event{{Kind: Move, P: from, To: to}})
	if err != nil {
		t.Fatal(err)
	}
	if d.Joined != 1 || d.Departed != 1 {
		t.Fatalf("move disruption %+v", d)
	}
	if _, err := m.SlotOf(from); err == nil {
		t.Fatal("source still scheduled after move")
	}
	if _, err := m.SlotOf(to); err != nil {
		t.Fatalf("destination unscheduled after move: %v", err)
	}
	if m.Stats().Moves != 1 {
		t.Fatalf("stats %+v", m.Stats())
	}
}

// TestEachAssignment walks every live sensor exactly once with its
// current slot.
func TestEachAssignment(t *testing.T) {
	w := lattice.CenteredWindow(2, 2)
	m, plan := crossMutator(t, w, Options{})
	if _, _, err := m.Apply([]Event{
		{Kind: Leave, P: lattice.Pt(0, 0)},
		{Kind: Join, P: lattice.Pt(3, 3)},
	}); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	m.EachAssignment(func(p lattice.Point, slot int) bool {
		if _, dup := seen[p.Key()]; dup {
			t.Fatalf("%v visited twice", p)
		}
		seen[p.Key()] = slot
		return true
	})
	if len(seen) != m.AliveCount() {
		t.Fatalf("visited %d, alive %d", len(seen), m.AliveCount())
	}
	if _, ok := seen[lattice.Pt(0, 0).Key()]; ok {
		t.Fatal("departed sensor visited")
	}
	if s, ok := seen[lattice.Pt(1, 1).Key()]; !ok {
		t.Fatal("untouched sensor missing")
	} else if want, _ := plan.SlotOf(lattice.Pt(1, 1)); s != want {
		t.Fatalf("untouched sensor drifted: %d ≠ %d", s, want)
	}
}

// TestSiteScannerAgainstConflict pins the SiteScanner probe to the
// reference pairwise oracle over a dense candidate box.
func TestSiteScannerAgainstConflict(t *testing.T) {
	for _, tile := range []*prototile.Tile{
		prototile.Cross(2, 1),
		prototile.ChebyshevBall(2, 1),
		prototile.Directional(),
	} {
		dep := schedule.NewHomogeneous(tile)
		sc, err := graph.NewSiteScanner(dep)
		if err != nil {
			t.Fatalf("%s: NewSiteScanner: %v", tile.Name(), err)
		}
		for _, site := range []lattice.Point{lattice.Pt(0, 0), lattice.Pt(-3, 5)} {
			if err := sc.Reset(site); err != nil {
				t.Fatalf("Reset: %v", err)
			}
			box := lattice.CenteredWindow(2, 2*dep.Reach()+2)
			box.Each(func(d lattice.Point) bool {
				q := site.Add(d)
				want := schedule.Conflict(dep, site, q)
				if got := sc.Conflicts(q); got != want {
					t.Fatalf("%s: Conflicts(%v vs %v) = %v, want %v", tile.Name(), site, q, got, want)
				}
				return true
			})
		}
	}
}

// TestConflictGraphModeRejectsPeriodic: the explicit-mode constructor
// must refuse the implicit mode rather than mis-build it.
func TestConflictGraphModeRejectsPeriodic(t *testing.T) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	if _, _, err := graph.ConflictGraphMode(dep, lattice.CenteredWindow(2, 2), graph.Periodic); err == nil {
		t.Fatal("ConflictGraphMode(Periodic) succeeded")
	}
}
