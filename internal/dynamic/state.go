package dynamic

// Checkpoint support: a Mutator's churn state — which positions are
// alive and which slot each holds — can be captured as a State and
// rebuilt later with NewMutatorFromState. This is the assignment form
// the service layer's session persistence (snapshot + replay WAL)
// serializes: a snapshot is exactly a compacted deployment, so the
// restore path shares the invariants of Overlay.compact — the state
// window is the bounding box of the live sensors, every live sensor is
// a base vertex of that window, and dead positions are tombstones.

import (
	"fmt"

	"tilingsched/internal/lattice"
	"tilingsched/internal/schedule"
)

// State is a point-in-time checkpoint of a Mutator: the bounding window
// of the live deployment and one slot per window position (-1 where no
// live sensor sits). Capture it with Mutator.State, rebuild with
// NewMutatorFromState. A State is a value snapshot — it shares no
// memory with the mutator that produced it.
type State struct {
	// Window is the bounding window of the live sensors at capture time
	// (the mutator's current window when no sensor is alive).
	Window lattice.Window
	// Slots holds one entry per Window position in Window.IndexOf
	// order: the live sensor's slot, or -1 for a tombstone.
	Slots []int32
	// Palette is the slot-count high-water mark (every live slot is in
	// [0, Palette)).
	Palette int
	// Budget is the repair colorer's slot budget at capture time, so a
	// restored mutator repairs within the same bound.
	Budget int
}

// State captures the mutator's current churn state. The caller must not
// run it concurrently with Apply (single-writer contract).
func (m *Mutator) State() State {
	st := State{Palette: m.palette, Budget: m.budget}
	dim := m.ov.w.Dim()
	var lo, hi lattice.Point
	n := m.ov.NumVertices()
	for v := 0; v < n; v++ {
		if !m.ov.Alive(v) {
			continue
		}
		p := m.ov.PointOf(v)
		if lo == nil {
			lo, hi = p.Clone(), p.Clone()
			continue
		}
		for a := 0; a < dim; a++ {
			if p[a] < lo[a] {
				lo[a] = p[a]
			}
			if p[a] > hi[a] {
				hi[a] = p[a]
			}
		}
	}
	if lo == nil {
		// Nothing alive: keep the current window as the frame so a
		// restore still knows where the deployment lived.
		st.Window = m.ov.w
		st.Slots = make([]int32, m.ov.w.Size())
		for i := range st.Slots {
			st.Slots[i] = -1
		}
		return st
	}
	w, err := lattice.NewWindow(lo, hi)
	if err != nil {
		// Unreachable: lo ≤ hi by construction.
		panic(fmt.Sprintf("dynamic: state window: %v", err))
	}
	st.Window = w
	st.Slots = make([]int32, w.Size())
	for i := range st.Slots {
		st.Slots[i] = -1
	}
	for v := 0; v < n; v++ {
		if !m.ov.Alive(v) {
			continue
		}
		i, ok := w.IndexOf(m.ov.PointOf(v))
		if !ok {
			panic(fmt.Sprintf("dynamic: live vertex %d escaped its bounding window", v))
		}
		st.Slots[i] = m.colors[v]
	}
	return st
}

// NewMutatorFromState rebuilds a mutator from a captured State: the base
// graph is built over the state window (respecting opts.BaseMode /
// opts.Residues exactly as NewMutator does), positions with slot -1 are
// tombstoned, and the live coloring is restored verbatim. The state must
// be internally consistent — every live slot in [0, Palette) — or an
// ErrDynamic-wrapped error is returned; collision-freedom is trusted the
// same way NewMutator trusts its seed schedule (Verify checks on
// demand).
func NewMutatorFromState(dep schedule.Deployment, st State, opts Options) (*Mutator, error) {
	size, err := st.Window.SizeChecked()
	if err != nil {
		return nil, fmt.Errorf("%w: state window: %v", ErrDynamic, err)
	}
	if len(st.Slots) != size {
		return nil, fmt.Errorf("%w: state has %d slots for a %d-point window",
			ErrDynamic, len(st.Slots), size)
	}
	if st.Palette < 0 {
		return nil, fmt.Errorf("%w: negative palette %d", ErrDynamic, st.Palette)
	}
	for i, c := range st.Slots {
		if c >= 0 && int(c) >= st.Palette || c < -1 {
			return nil, fmt.Errorf("%w: state slot %d at index %d outside [0, %d)",
				ErrDynamic, c, i, st.Palette)
		}
	}
	ov, err := newOverlay(dep, st.Window, opts.BaseMode, opts.Residues)
	if err != nil {
		return nil, err
	}
	ov.met = opts.Metrics
	m := &Mutator{ov: ov, thresh: opts.CompactThreshold, met: opts.Metrics}
	if m.thresh == 0 {
		m.thresh = DefaultCompactThreshold
	}
	m.colors = make([]int32, ov.baseN)
	for i, c := range st.Slots {
		m.colors[i] = c
		if c < 0 {
			ov.setAlive(i, false)
		}
	}
	m.palette = st.Palette
	m.budget = opts.ColorBudget
	if m.budget <= 0 {
		m.budget = st.Budget
	}
	if m.budget <= 0 {
		m.budget = m.palette
	}
	return m, nil
}
