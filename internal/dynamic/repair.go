package dynamic

import (
	"fmt"
	"math/bits"

	"tilingsched/internal/graph"
	"tilingsched/internal/schedule"
)

// This file is the bounded-disruption repair colorer. A Join whose live
// neighbors exhaust the color budget does not trigger a fresh DSATUR
// over the whole deployment; instead the damage region — the joining
// vertex plus the saturated neighbors blocking it — is uncolored and
// re-extended by a DSATUR restricted to that region, with every color
// outside the region held fixed. Only when the region itself admits no
// budget-respecting extension does the Mutator recolor the whole live
// subgraph (materialized once into an explicit graph so the tuned
// graph.DSATUR runs unchanged).

// repairRegion attempts the bounded repair around a just-joined,
// still-uncolored vertex v. On success it returns the damage region and
// how many previously-colored sensors changed slot; on failure every
// prior color is restored and ok is false.
func (m *Mutator) repairRegion(v int) (damage []int, reassigned int, ok bool) {
	damage = []int{v}
	old := []int32{-1}
	m.ov.EachNeighbor(v, func(u int) bool {
		if m.colors[u] >= 0 {
			damage = append(damage, u)
			old = append(old, m.colors[u])
			m.colors[u] = -1
		}
		return true
	})
	if !m.repairColors(damage) {
		for i, u := range damage {
			m.colors[u] = old[i]
		}
		return nil, 0, false
	}
	for i, u := range damage {
		if old[i] >= 0 && m.colors[u] != old[i] {
			reassigned++
		}
		if c := int(m.colors[u]) + 1; c > m.palette {
			m.palette = c
		}
	}
	return damage, reassigned, true
}

// repairColors DSATUR-extends the uncolored damage vertices within the
// budget, keeping every color outside the region fixed. The region is
// small (a vertex and its neighbors), so selection is a plain
// max-saturation scan and intra-region adjacency uses HasEdge directly.
func (m *Mutator) repairColors(damage []int) bool {
	k := len(damage)
	words := (m.budget + 63) / 64
	sat := make([]uint64, k*words)
	satCount := make([]int, k)
	done := make([]bool, k)
	// Exterior saturation: colors of live neighbors outside the region.
	for i, u := range damage {
		row := sat[i*words : (i+1)*words]
		m.ov.EachNeighbor(u, func(n int) bool {
			if c := m.colors[n]; c >= 0 && int(c) < m.budget {
				if row[c/64]&(1<<(c%64)) == 0 {
					row[c/64] |= 1 << (c % 64)
					satCount[i]++
				}
			}
			return true
		})
	}
	for step := 0; step < k; step++ {
		best := -1
		for i := 0; i < k; i++ {
			if !done[i] && (best < 0 || satCount[i] > satCount[best]) {
				best = i
			}
		}
		row := sat[best*words : (best+1)*words]
		c := -1
		for w, word := range row {
			if inv := ^word; inv != 0 {
				if cand := w*64 + bits.TrailingZeros64(inv); cand < m.budget {
					c = cand
				}
				break
			}
		}
		if c < 0 {
			return false
		}
		u := damage[best]
		m.colors[u] = int32(c)
		done[best] = true
		for j, w := range damage {
			if done[j] || !m.ov.HasEdge(u, w) {
				continue
			}
			jrow := sat[j*words : (j+1)*words]
			if jrow[c/64]&(1<<(c%64)) == 0 {
				jrow[c/64] |= 1 << (c % 64)
				satCount[j]++
			}
		}
	}
	return true
}

// fullRecolor recolors the whole live deployment: the alive-induced
// subgraph is materialized into an explicit graph.Graph once and colored
// by graph.DSATUR. The palette (and, when provably necessary, the
// budget) floats up to what DSATUR used; every sensor whose slot moved
// lands in touched. Returns the number of previously-colored sensors
// reassigned (the just-joined vertex, colored for the first time, is
// not one).
func (m *Mutator) fullRecolor(joined int, touched map[int]struct{}) (int, error) {
	g, ids := m.materializeAlive()
	cs, k := graph.DSATUR(g)
	reassigned := 0
	for li, v := range ids {
		c := int32(cs[li])
		if m.colors[v] != c {
			if m.colors[v] >= 0 && v != joined {
				reassigned++
			}
			m.colors[v] = c
			touched[v] = struct{}{}
		}
	}
	touched[joined] = struct{}{}
	if k > m.palette {
		m.palette = k
	}
	if k > m.budget {
		m.budget = k
	}
	return reassigned, nil
}

// materializeAlive freezes the alive-induced subgraph into an explicit
// graph (Auto mode: bitset small, CSR large) with ids mapping local
// vertices back to overlay ids — the once-per-fallback cost that lets
// the repair path reuse the tuned colorings of internal/graph.
func (m *Mutator) materializeAlive() (*graph.Graph, []int) {
	ids := make([]int, 0, m.ov.AliveCount())
	local := make([]int32, m.ov.NumVertices())
	for v := range local {
		local[v] = -1
	}
	for v := 0; v < m.ov.NumVertices(); v++ {
		if m.ov.Alive(v) {
			local[v] = int32(len(ids))
			ids = append(ids, v)
		}
	}
	g := graph.New(len(ids))
	for li, v := range ids {
		m.ov.EachNeighbor(v, func(u int) bool {
			if u > v {
				g.AddEdge(li, int(local[u]))
			}
			return true
		})
	}
	g.Freeze()
	return g, ids
}

// Verify independently checks the maintained schedule: every live sensor
// holds a slot in [0, Slots()) and no live conflict edge is
// monochromatic. It walks the overlay exactly as a client would, so it
// is the package's self-check in tests, examples, and demos. A nil
// return means collision-free; a collision reports the offending pair as
// a schedule.CollisionWitness.
func (m *Mutator) Verify() error {
	n := m.ov.NumVertices()
	for u := 0; u < n; u++ {
		if !m.ov.Alive(u) {
			continue
		}
		cu := m.colors[u]
		if cu < 0 || int(cu) >= m.palette {
			return fmt.Errorf("%w: live sensor %v has slot %d outside [0, %d)",
				ErrDynamic, m.ov.PointOf(u), cu, m.palette)
		}
		var witness error
		m.ov.EachNeighbor(u, func(v int) bool {
			if v > u && m.colors[v] == cu {
				witness = schedule.CollisionWitness{P: m.ov.PointOf(u), Q: m.ov.PointOf(v), Slot: int(cu)}
				return false
			}
			return true
		})
		if witness != nil {
			return witness
		}
	}
	return nil
}

// trailingZeros is bits.TrailingZeros64, aliased so dynamic.go stays
// free of a direct math/bits import.
func trailingZeros(x uint64) int { return bits.TrailingZeros64(x) }
