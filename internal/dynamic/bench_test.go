package dynamic

// Benchmarks behind BENCH_<date>_dynamic.json: the incremental mutation
// path against the full rebuild it replaces, at 100k and 1M vertices,
// and the damage-region repair colorer against a full DSATUR. Generate
// the summary with:
//
//	scripts/bench.sh -bench Dynamic -pkg ./... -out BENCH_<date>_dynamic.json

import (
	"testing"

	"tilingsched/internal/graph"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

// benchWindow100k is the 317×317 = 100489-sensor window of the
// large-graph benchmarks (PR 3's BenchmarkConflictGraphLarge scale).
func benchWindow100k(b *testing.B) lattice.Window {
	b.Helper()
	w, err := lattice.BoxWindow(317, 317)
	if err != nil {
		b.Fatal(err)
	}
	return w
}

// benchWindow1M is the million-sensor window (PR 4 scale).
func benchWindow1M(b *testing.B) lattice.Window {
	b.Helper()
	return lattice.CenteredWindow(2, 500) // 1001² = 1_002_001
}

func benchMutator(b *testing.B, w lattice.Window, opts Options) *Mutator {
	b.Helper()
	tile := prototile.Cross(2, 1)
	lt, ok := tiling.FindLatticeTiling(tile)
	if !ok {
		b.Fatal("no tiling for cross")
	}
	m, err := NewMutator(schedule.NewHomogeneous(tile), w, schedule.FromLatticeTiling(lt), opts)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// joinLeaveRound is one churn round trip: activate a sensor just outside
// the base window, then deactivate it — the single-sensor mutation the
// acceptance criterion compares against a full rebuild.
func joinLeaveRound(b *testing.B, m *Mutator, p lattice.Point) {
	b.Helper()
	join := []Event{{Kind: Join, P: p}}
	leave := []Event{{Kind: Leave, P: p}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := m.Apply(join); err != nil {
			b.Fatal(err)
		}
		if _, _, err := m.Apply(leave); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicJoinLeave100k: join + leave round trip on a
// 100k-vertex CSR-base overlay. Compare BenchmarkDynamicRebuild100k —
// the cost a static system pays for the same event.
func BenchmarkDynamicJoinLeave100k(b *testing.B) {
	m := benchMutator(b, benchWindow100k(b), Options{BaseMode: graph.CSR})
	joinLeaveRound(b, m, lattice.Pt(317, 158))
}

// BenchmarkDynamicRebuild100k is the comparator: a from-scratch explicit
// ConflictGraph build of the same 100k-vertex window.
func BenchmarkDynamicRebuild100k(b *testing.B) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	w := benchWindow100k(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := graph.ConflictGraph(dep, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicJoinLeave1M: the same round trip on a million-vertex
// implicit periodic base — the overlay demotes stencils to explicit
// patches only inside the damage region.
func BenchmarkDynamicJoinLeave1M(b *testing.B) {
	m := benchMutator(b, benchWindow1M(b), Options{Residues: tiling.IdentityResidues(2)})
	joinLeaveRound(b, m, lattice.Pt(501, 0))
}

// BenchmarkDynamicRebuild1M is the million-vertex comparator: the
// explicit CSR rebuild (what a non-periodic deployment would pay).
func BenchmarkDynamicRebuild1M(b *testing.B) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	w := benchWindow1M(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := graph.ConflictGraph(dep, w); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDynamicSitePatch is the cold-join kernel: re-centering the
// SiteScanner on a mutation site and probing the full p ± 2·reach
// bounding box — the edge-patch computation a brand-new added vertex
// pays once.
func BenchmarkDynamicSitePatch(b *testing.B) {
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	sc, err := graph.NewSiteScanner(dep)
	if err != nil {
		b.Fatal(err)
	}
	site := lattice.Pt(317, 158)
	box := lattice.CenteredWindow(2, 2*dep.Reach())
	q := make(lattice.Point, 2)
	hits := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sc.Reset(site); err != nil {
			b.Fatal(err)
		}
		box.Each(func(d lattice.Point) bool {
			q[0], q[1] = site[0]+d[0], site[1]+d[1]
			if sc.Conflicts(q) {
				hits++
			}
			return true
		})
	}
	if hits == 0 {
		b.Fatal("probe found no conflicts")
	}
}

// BenchmarkDynamicRepairRecolor: the DSATUR-repair of one damage region
// (a vertex plus its live neighbors) on a 10201-sensor deployment —
// what a budget-exhausted join costs before the full-recolor fallback.
func BenchmarkDynamicRepairRecolor(b *testing.B) {
	w, err := lattice.BoxWindow(101, 101)
	if err != nil {
		b.Fatal(err)
	}
	m := benchMutator(b, w, Options{Residues: tiling.IdentityResidues(2)})
	v, ok := m.Overlay().IndexOf(lattice.Pt(50, 50))
	if !ok {
		b.Fatal("center vertex missing")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.colors[v] = -1
		if _, _, ok := m.repairRegion(v); !ok {
			b.Fatal("repair failed")
		}
	}
	b.StopTimer()
	if err := m.Verify(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkDynamicFullDSATUR is the repair comparator: a full DSATUR
// over the same 10201-sensor graph — the recolor cost the damage-region
// repair avoids.
func BenchmarkDynamicFullDSATUR(b *testing.B) {
	w, err := lattice.BoxWindow(101, 101)
	if err != nil {
		b.Fatal(err)
	}
	dep := schedule.NewHomogeneous(prototile.Cross(2, 1))
	g, err := graph.HomogeneousConflictGraph(dep, w)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, k := graph.DSATUR(g); k != 5 {
			b.Fatalf("DSATUR used %d colors", k)
		}
	}
}
