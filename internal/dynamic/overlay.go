package dynamic

import (
	"fmt"

	"tilingsched/internal/graph"
	"tilingsched/internal/lattice"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

// Overlay is the incremental conflict graph of a churning deployment: a
// frozen base graph (any adjacency mode of internal/graph — bitset, CSR,
// or implicit periodic) over a base window, plus a delta overlay that
// mutation events edit in place. The overlay has three parts:
//
//   - a tombstone bitset: every vertex is alive or dead; Leave/Fail clear
//     the bit, Join sets it. Dead vertices keep their base adjacency —
//     queries filter by liveness — so a departed sensor rejoins in O(1).
//   - added vertices: Join events outside the base window append fresh
//     vertices (ids ≥ the base vertex count) with explicit positions.
//   - edge patches: every edge incident to an added vertex is stored
//     explicitly in symmetric patch rows, computed at join time by a
//     graph.SiteScanner probe of the p ± 2·reach bounding box — the only
//     region a single join can change. Base–base edges never need a
//     patch: the base graph already encodes the conflict relation for
//     every pair of base-window positions (conflicts are determined by
//     position alone), including pairs involving dead vertices. In
//     periodic base mode this is exactly the issue's stencil demotion:
//     implicit stencil translation keeps answering every query outside
//     the damage region, and only the patch rows are explicit.
//
// The overlay therefore answers HasEdge / EachNeighbor for the current
// deployment exactly as a from-scratch rebuild would (the oracle tests
// pin this), while a single mutation costs O(box · |N|) instead of the
// full O(n · box · |N|) rebuild. Compact re-freezes the overlay into a
// fresh base when the added set exceeds a threshold.
//
// An Overlay is single-writer state: mutations (driven by Mutator) must
// be serialized, and readers must not run concurrently with them.
type Overlay struct {
	dep   schedule.Deployment
	res   *tiling.Residues // non-nil: compaction re-freezes periodic
	mode  graph.Mode       // explicit base-mode preference for compaction
	w     lattice.Window
	base  *graph.Graph
	baseN int

	alive      []uint64
	aliveCount int
	deadBase   int // dead base-window vertices (overlay-size input)

	added    []lattice.Point // ids baseN+k, positions outside w
	addedIdx map[string]int  // Point.Key() → id (event-rate cold path)

	patch      map[int][]int32 // symmetric rows; every edge touches an added vertex
	patchEdges int

	site *graph.SiteScanner

	met *Metrics // nil disables telemetry; survives compaction
}

// newOverlay builds the overlay's base graph over the window in the
// requested mode (res non-nil selects the implicit periodic mode) with
// every window vertex alive.
func newOverlay(dep schedule.Deployment, w lattice.Window, mode graph.Mode, res *tiling.Residues) (*Overlay, error) {
	var base *graph.Graph
	var err error
	if res != nil {
		base, err = graph.PeriodicConflictGraph(dep, res, w)
	} else {
		base, _, err = graph.ConflictGraphMode(dep, w, mode)
	}
	if err != nil {
		return nil, err
	}
	site, err := graph.NewSiteScanner(dep)
	if err != nil {
		return nil, err
	}
	n := base.N()
	o := &Overlay{
		dep:      dep,
		res:      res,
		mode:     mode,
		w:        w,
		base:     base,
		baseN:    n,
		alive:    make([]uint64, (n+63)/64),
		addedIdx: make(map[string]int),
		patch:    make(map[int][]int32),
		site:     site,
	}
	for i := 0; i < n; i++ {
		o.alive[i/64] |= 1 << (i % 64)
	}
	o.aliveCount = n
	return o, nil
}

// NumVertices returns the overlay's vertex-id space size: base window
// points plus added vertices, dead or alive.
func (o *Overlay) NumVertices() int { return o.baseN + len(o.added) }

// AliveCount returns the number of live sensors.
func (o *Overlay) AliveCount() int { return o.aliveCount }

// BaseMode returns the adjacency mode of the current base graph.
func (o *Overlay) BaseMode() graph.Mode { return o.base.Mode() }

// Window returns the current base window (vertex i < baseN is its i-th
// point in lexicographic order). Compaction replaces it.
func (o *Overlay) Window() lattice.Window { return o.w }

// Alive reports whether vertex v currently hosts a sensor.
func (o *Overlay) Alive(v int) bool {
	if v < 0 || v >= o.baseN+len(o.added) {
		return false
	}
	return o.alive[v/64]&(1<<(v%64)) != 0
}

func (o *Overlay) setAlive(v int, up bool) {
	word, bit := v/64, uint64(1)<<(v%64)
	was := o.alive[word]&bit != 0
	if was == up {
		return
	}
	if up {
		o.alive[word] |= bit
		o.aliveCount++
		if v < o.baseN {
			o.deadBase--
		}
	} else {
		o.alive[word] &^= bit
		o.aliveCount--
		if v < o.baseN {
			o.deadBase++
		}
	}
}

// PointOf returns the position of vertex v (base vertices resolve
// through the window, added vertices through the overlay table).
func (o *Overlay) PointOf(v int) lattice.Point {
	if v < o.baseN {
		return o.w.PointAt(v)
	}
	return o.added[v-o.baseN]
}

// IndexOf returns the vertex id of position p: its dense window index
// inside the base window, or its added-vertex id outside. ok is false
// when p was never part of the deployment.
func (o *Overlay) IndexOf(p lattice.Point) (int, bool) {
	if i, ok := o.w.IndexOf(p); ok {
		return i, true
	}
	if id, ok := o.addedIdx[p.Key()]; ok {
		return id, true
	}
	return 0, false
}

// OverlaySize measures the delta the overlay carries on top of the
// frozen base: added vertices plus dead base vertices. Compaction
// triggers on it.
func (o *Overlay) OverlaySize() int { return len(o.added) + o.deadBase }

// HasEdge reports whether the live sensors at vertices u and v conflict:
// false unless both are alive, then the base answer for base–base pairs
// and a patch-row scan for pairs involving an added vertex.
func (o *Overlay) HasEdge(u, v int) bool {
	if u == v || !o.Alive(u) || !o.Alive(v) {
		return false
	}
	if u < o.baseN && v < o.baseN {
		return o.base.HasEdge(u, v)
	}
	// Scan the added endpoint's patch row (bounded by the join-time
	// bounding box plus its added-added partners).
	if u < o.baseN {
		u, v = v, u
	}
	for _, x := range o.patch[u] {
		if int(x) == v {
			return true
		}
	}
	return false
}

// EachNeighbor calls f with every live conflict partner of vertex u (in
// no particular order) until f returns false. Dead vertices have no
// neighbors. The base row comes first, then the patch row; the two are
// disjoint by construction (patch rows only hold edges incident to an
// added vertex).
func (o *Overlay) EachNeighbor(u int, f func(v int) bool) {
	if !o.Alive(u) {
		return
	}
	stopped := false
	if u < o.baseN {
		o.base.EachNeighbor(u, func(v int) bool {
			if o.Alive(v) && !f(v) {
				stopped = true
				return false
			}
			return true
		})
	}
	if stopped {
		return
	}
	for _, x := range o.patch[u] {
		if o.Alive(int(x)) && !f(int(x)) {
			return
		}
	}
}

// Degree returns the number of live conflict partners of vertex u.
func (o *Overlay) Degree(u int) int {
	d := 0
	o.EachNeighbor(u, func(int) bool { d++; return true })
	return d
}

// join activates a sensor at p, returning its vertex id. In-window
// joins and rejoins of previously-added positions revive the tombstoned
// vertex in O(1) (their edges are already known); a genuinely new
// outside position appends an added vertex and computes its patch rows.
//
// Patch-row cost depends on the base mode. Over a periodic base the
// conflict partners of p are exactly p + d for the stencil offsets d of
// p's residue class — valid outside the window too, since periodicity
// holds on the whole lattice — so the row is O(|stencil|) translations
// (the Move fast path: a departing-and-rejoining sensor never re-probes
// neighborhoods). Explicit bases fall back to a SiteScanner probe of
// the p ± 2·reach box, O(box · |N|).
func (o *Overlay) join(p lattice.Point) (int, error) {
	if p.Dim() != o.w.Dim() {
		return 0, fmt.Errorf("%w: join %v has dimension %d, want %d", ErrDynamic, p, p.Dim(), o.w.Dim())
	}
	if id, ok := o.IndexOf(p); ok {
		if o.Alive(id) {
			return 0, fmt.Errorf("%w: join %v: position already hosts a sensor", ErrDynamic, p)
		}
		o.setAlive(id, true)
		return id, nil
	}
	id := o.baseN + len(o.added)
	q := p.Clone()
	o.added = append(o.added, q)
	o.addedIdx[q.Key()] = id
	if id >= len(o.alive)*64 {
		o.alive = append(o.alive, 0)
	}
	o.setAlive(id, true)
	reach := o.site.Reach()
	dim := o.w.Dim()
	if row, ok := o.base.ConflictOffsets(q); ok {
		// Periodic fast path: translate the stencil row of q's residue
		// class. Base candidates are the translated offsets that land in
		// the window (dead ones get patch edges too, so a later rejoin
		// needs no rescan); added candidates check offset membership
		// behind a Chebyshev prefilter.
		c := make(lattice.Point, dim)
		for k := 0; k < len(row); k += dim {
			for a := 0; a < dim; a++ {
				c[a] = q[a] + row[k+a]
			}
			if j, ok := o.w.IndexOf(c); ok {
				o.addPatch(id, j)
			}
		}
		for k, a := range o.added {
			v := o.baseN + k
			if v == id {
				continue
			}
			if chebyshevDist(q, a) <= 2*reach && offsetInRow(row, q, a) {
				o.addPatch(id, v)
			}
		}
		o.met.recordPatchRow(len(o.patch[id]))
		return id, nil
	}
	if err := o.site.Reset(q); err != nil {
		return 0, err
	}
	// Base-window candidates: the bounding box p ± 2·reach clipped to the
	// window, probed point by point. Dead candidates get patch edges too,
	// so a later rejoin needs no rescan.
	boxLo := make(lattice.Point, dim)
	boxHi := make(lattice.Point, dim)
	empty := false
	for a := 0; a < dim; a++ {
		boxLo[a] = max(q[a]-2*reach, o.w.Lo[a])
		boxHi[a] = min(q[a]+2*reach, o.w.Hi[a])
		if boxLo[a] > boxHi[a] {
			empty = true
			break
		}
	}
	if !empty {
		box := lattice.Window{Lo: boxLo, Hi: boxHi}
		box.Each(func(c lattice.Point) bool {
			if o.site.Conflicts(c) {
				j, _ := o.w.IndexOf(c)
				o.addPatch(id, j)
			}
			return true
		})
	}
	// Added-vertex candidates: linear scan with a Chebyshev prefilter;
	// compaction bounds the added set, keeping this O(threshold).
	for k, a := range o.added {
		v := o.baseN + k
		if v == id {
			continue
		}
		if chebyshevDist(q, a) <= 2*reach && o.site.Conflicts(a) {
			o.addPatch(id, v)
		}
	}
	o.met.recordPatchRow(len(o.patch[id]))
	return id, nil
}

// addPatch records the undirected patch edge {u, v} in both rows.
func (o *Overlay) addPatch(u, v int) {
	o.patch[u] = append(o.patch[u], int32(v))
	o.patch[v] = append(o.patch[v], int32(u))
	o.patchEdges++
}

// leave deactivates the sensor at p, returning its vertex id. The
// vertex is tombstoned, not removed: adjacency stays intact for a later
// rejoin, and compaction reclaims the space.
func (o *Overlay) leave(p lattice.Point) (int, error) {
	id, ok := o.IndexOf(p)
	if !ok || !o.Alive(id) {
		return 0, fmt.Errorf("%w: leave %v: no sensor at this position", ErrDynamic, p)
	}
	o.setAlive(id, false)
	return id, nil
}

// offsetInRow reports whether the offset a − q appears in the
// flattened stencil row (dim = len(q) ints per offset).
func offsetInRow(row []int, q, a lattice.Point) bool {
	dim := len(q)
	for k := 0; k < len(row); k += dim {
		match := true
		for x := 0; x < dim; x++ {
			if a[x]-q[x] != row[k+x] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// chebyshevDist is the L∞ distance between same-dimension points.
func chebyshevDist(p, q lattice.Point) int {
	d := 0
	for i := range p {
		c := p[i] - q[i]
		if c < 0 {
			c = -c
		}
		if c > d {
			d = c
		}
	}
	return d
}

// compact re-freezes the overlay: a fresh base graph is built over the
// bounding window of all live sensors (in the overlay's preferred mode),
// tombstones are re-derived, and the added/patch tables are dropped.
// Vertex ids change; the returned remap slice maps every old id to its
// new id, or -1 for positions outside the new window (possible only for
// dead added vertices). A no-op returning nil when no sensor is alive.
func (o *Overlay) compact() ([]int32, error) {
	if o.aliveCount == 0 {
		return nil, nil
	}
	dim := o.w.Dim()
	var lo, hi lattice.Point
	oldN := o.NumVertices()
	for v := 0; v < oldN; v++ {
		if !o.Alive(v) {
			continue
		}
		p := o.PointOf(v)
		if lo == nil {
			lo, hi = p.Clone(), p.Clone()
			continue
		}
		for a := 0; a < dim; a++ {
			if p[a] < lo[a] {
				lo[a] = p[a]
			}
			if p[a] > hi[a] {
				hi[a] = p[a]
			}
		}
	}
	w, err := lattice.NewWindow(lo, hi)
	if err != nil {
		return nil, err
	}
	if _, err := w.SizeChecked(); err != nil {
		return nil, fmt.Errorf("%w: compaction window too large: %v", ErrDynamic, err)
	}
	fresh, err := newOverlay(o.dep, w, o.mode, o.res)
	if err != nil {
		return nil, err
	}
	// Re-derive tombstones: only previously-live positions stay alive.
	for i := 0; i < fresh.baseN; i++ {
		fresh.setAlive(i, false)
	}
	remap := make([]int32, oldN)
	for v := 0; v < oldN; v++ {
		remap[v] = -1
		if !o.Alive(v) {
			continue
		}
		j, ok := w.IndexOf(o.PointOf(v))
		if !ok {
			return nil, fmt.Errorf("%w: live vertex %d escaped its bounding window", ErrDynamic, v)
		}
		fresh.setAlive(j, true)
		remap[v] = int32(j)
	}
	// The fresh overlay was built without a Metrics handle; carry the
	// old one over so telemetry survives the re-freeze.
	fresh.met = o.met
	*o = *fresh
	return remap, nil
}
