package dynamic

import (
	"time"

	"tilingsched/internal/obs"
)

// Metrics is the package's telemetry hook: a set of pre-resolved
// internal/obs handles the Mutator and Overlay record into as events
// apply. Construct one with NewMetrics and pass it via Options; a nil
// Metrics disables recording entirely (every record method is
// nil-receiver safe), so library users pay nothing unless they opt in.
//
// Recording costs one to three atomic adds per call — safe on the
// event hot path and from the serving layer's request handlers.
type Metrics struct {
	events      [4]*obs.Counter // indexed by EventKind
	repairs     [3]*obs.Counter // indexed by repair tier
	reassigned  *obs.Histogram  // Disruption.Reassigned per Apply batch
	compactions *obs.Counter
	compactNs   *obs.Histogram // wall time of each overlay re-freeze
	patchRow    *obs.Histogram // patch-row edges per new added vertex
}

// Repair tiers, cheapest first: the smallest-free scan, the bounded
// DSATUR region repair, and the full live recolor.
const (
	tierSmallest = iota
	tierRegion
	tierFull
)

// NewMetrics registers the package's metric families in r and returns
// the recording handles. Families:
//
//	latticed_dynamic_events_total{op="join"|"leave"|"fail"|"move"}
//	latticed_dynamic_repairs_total{tier="smallest"|"region"|"full"}
//	latticed_dynamic_reassigned        (histogram, sensors per batch)
//	latticed_dynamic_compactions_total
//	latticed_dynamic_compaction_ns     (histogram)
//	latticed_dynamic_patch_row_edges   (histogram, per added vertex)
func NewMetrics(r *obs.Registry) *Metrics {
	m := &Metrics{}
	for k := Join; k <= Move; k++ {
		m.events[k] = r.Counter(`latticed_dynamic_events_total{op="` + k.String() + `"}`)
	}
	for i, tier := range []string{"smallest", "region", "full"} {
		m.repairs[i] = r.Counter(`latticed_dynamic_repairs_total{tier="` + tier + `"}`)
	}
	m.reassigned = r.Histogram("latticed_dynamic_reassigned")
	m.compactions = r.Counter("latticed_dynamic_compactions_total")
	m.compactNs = r.Histogram("latticed_dynamic_compaction_ns")
	m.patchRow = r.Histogram("latticed_dynamic_patch_row_edges")
	return m
}

// recordEvent tallies one applied event by op.
func (mm *Metrics) recordEvent(k EventKind) {
	if mm == nil || k > Move {
		return
	}
	mm.events[k].Inc()
}

// recordRepair tallies which coloring tier resolved a join.
func (mm *Metrics) recordRepair(tier int) {
	if mm == nil {
		return
	}
	mm.repairs[tier].Inc()
}

// recordApply records one batch's reassignment disruption.
func (mm *Metrics) recordApply(reassigned int) {
	if mm == nil {
		return
	}
	mm.reassigned.Record(uint64(reassigned))
}

// recordCompaction records one overlay re-freeze and its wall time.
func (mm *Metrics) recordCompaction(d time.Duration) {
	if mm == nil {
		return
	}
	mm.compactions.Inc()
	mm.compactNs.Record(uint64(d))
}

// recordPatchRow records the patch-row size of a newly added vertex.
func (mm *Metrics) recordPatchRow(edges int) {
	if mm == nil {
		return
	}
	mm.patchRow.Record(uint64(edges))
}
