// Package dynamic maintains schedules for churning sensor deployments:
// nodes join, leave, move, or fail, and both the conflict graph and the
// slot assignment are repaired incrementally instead of rebuilt.
//
// The paper schedules a fixed deployment once. This package is the
// dynamic axis on top of it: a Mutator wraps a frozen conflict graph
// (any adjacency mode of internal/graph) in a delta Overlay — tombstone
// bitset, added vertices, edge patches computed by a bounded
// graph.SiteScanner probe — and keeps a valid coloring across events
// with bounded disruption. A Join is colored with the smallest slot free
// among its live neighbors; when none fits the color budget, a
// DSATUR-repair recolors only the damage region (the joining vertex plus
// its saturated neighbors), and only when even that fails does the
// Mutator fall back to a full recolor. Every Apply reports a Disruption
// (how many existing sensors were reassigned, how the palette moved) and
// the changed slot assignments, which the service layer forwards to
// clients as deltas.
//
// Cost model: one mutation touches the p ± 2·reach bounding box —
// O(box · |N|) probes — against the O(n · box · |N|) of a from-scratch
// ConflictGraph build, a ≥100× gap at 100k vertices (see
// BENCH_<date>_dynamic.json). The differential oracle tests pin the
// overlay edge-identical to a rebuild across all three base modes.
//
// Concurrency: a Mutator is single-writer. Serialize Apply calls and do
// not read (SlotOf, Verify, the Overlay) concurrently with one.
package dynamic

import (
	"errors"
	"fmt"
	"time"

	"tilingsched/internal/graph"
	"tilingsched/internal/lattice"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

// ErrDynamic indicates an invalid mutation or mutator construction.
var ErrDynamic = errors.New("dynamic: invalid mutation")

// EventKind enumerates deployment mutations.
type EventKind uint8

const (
	// Join activates a sensor at Event.P — a tombstoned position
	// revives in O(1), a new position outside the base window becomes an
	// added vertex with patched edges.
	Join EventKind = iota
	// Leave deactivates the sensor at Event.P (planned departure, e.g.
	// duty-cycling for lifetime).
	Leave
	// Fail deactivates the sensor at Event.P (unplanned death); it is
	// Leave for the graph and the schedule, counted separately in Stats.
	Fail
	// Move relocates the sensor at Event.P to Event.To: a Leave followed
	// by a Join applied atomically within one event.
	Move
)

// String names the event kind for logs and wire encodings.
func (k EventKind) String() string {
	switch k {
	case Join:
		return "join"
	case Leave:
		return "leave"
	case Fail:
		return "fail"
	case Move:
		return "move"
	}
	return fmt.Sprintf("EventKind(%d)", uint8(k))
}

// Event is one deployment mutation.
type Event struct {
	// Kind selects the mutation.
	Kind EventKind
	// P is the position the event acts on.
	P lattice.Point
	// To is the destination of a Move (ignored otherwise).
	To lattice.Point
}

// SlotChange is one delta entry: the sensor at P now holds Slot, or has
// departed when Slot is -1. A batch's changes are exactly what a client
// must apply to its local copy of the schedule.
type SlotChange struct {
	P    lattice.Point
	Slot int
}

// Disruption quantifies how much of the schedule one Apply call
// disturbed — the bounded-disruption contract is Reassigned ≪ n for
// single-sensor events.
type Disruption struct {
	// Events is the number of events applied (the whole batch unless an
	// event errored).
	Events int
	// Joined and Departed count sensors activated and deactivated.
	Joined, Departed int
	// Reassigned counts previously-scheduled sensors whose slot changed
	// (fresh joins are not reassignments).
	Reassigned int
	// ColorsDelta is the palette high-water growth across the batch.
	ColorsDelta int
	// FullRecolor reports that some event exhausted DSATUR-repair and
	// the whole live deployment was recolored.
	FullRecolor bool
	// Compacted reports that the overlay was re-frozen into a fresh base
	// graph after the batch.
	Compacted bool
}

// Stats accumulates mutation traffic over a Mutator's lifetime.
type Stats struct {
	Joins, Leaves, Fails, Moves int64
	Repairs                     int64 // DSATUR-repair invocations
	FullRecolors                int64
	Compactions                 int64
}

// Options configures a Mutator. The zero value is ready to use.
type Options struct {
	// BaseMode forces the base graph's explicit adjacency mode (Auto
	// resolves by the crossover and shards large builds). Ignored when
	// Residues is set.
	BaseMode graph.Mode
	// Residues, when non-nil, builds the base graph in the implicit
	// periodic mode (graph.PeriodicConflictGraph): the deployment must
	// be periodic modulo the residues' period lattice, and compaction
	// re-freezes periodically too.
	Residues *tiling.Residues
	// ColorBudget is the slot count the repair colorer works within; 0
	// means the seed coloring's palette. A full recolor that provably
	// needs more colors floats the budget up to what it used.
	ColorBudget int
	// CompactThreshold triggers overlay re-freezing when the delta
	// (added vertices + dead base vertices) exceeds it; 0 means
	// DefaultCompactThreshold, negative disables auto-compaction.
	CompactThreshold int
	// Metrics, when non-nil, receives the mutator's telemetry (event
	// counts by op, repair-tier counts, disruption and compaction
	// histograms). Nil disables recording at zero cost.
	Metrics *Metrics
}

// DefaultCompactThreshold is the overlay size (added vertices plus dead
// base vertices) beyond which Apply re-freezes the base graph. Tuning it
// trades patch-scan and tombstone-filter overhead against rebuild
// spikes; see ROADMAP (compaction tuning is an open follow-up).
const DefaultCompactThreshold = 4096

// Mutator applies deployment mutations, maintaining the conflict graph
// incrementally (Overlay) and the slot assignment by bounded-disruption
// repair coloring. Single-writer: see the package comment.
type Mutator struct {
	ov      *Overlay
	colors  []int32 // per vertex id; -1 dead or uncolored
	palette int     // high-water slot count
	budget  int
	thresh  int
	stats   Stats
	met     *Metrics // nil disables telemetry
}

// NewMutator builds a mutator over the deployment restricted to the
// window, with every window position initially hosting a sensor. init
// seeds the slot assignment (e.g. the plan's Theorem 1 schedule, which
// makes every in-window rejoin zero-disruption); a nil init seeds with a
// DSATUR coloring of the base graph. The seed coloring is trusted to be
// collision-free — Verify checks it on demand, and the oracle tests pin
// the maintained coloring valid after every event.
func NewMutator(dep schedule.Deployment, w lattice.Window, init schedule.Schedule, opts Options) (*Mutator, error) {
	ov, err := newOverlay(dep, w, opts.BaseMode, opts.Residues)
	if err != nil {
		return nil, err
	}
	m := &Mutator{ov: ov, thresh: opts.CompactThreshold, met: opts.Metrics}
	ov.met = opts.Metrics
	if m.thresh == 0 {
		m.thresh = DefaultCompactThreshold
	}
	m.colors = make([]int32, ov.baseN)
	if init != nil {
		i := 0
		var serr error
		w.Each(func(p lattice.Point) bool {
			var s int
			s, serr = init.SlotOf(p)
			if serr != nil {
				return false
			}
			m.colors[i] = int32(s)
			if s+1 > m.palette {
				m.palette = s + 1
			}
			i++
			return true
		})
		if serr != nil {
			return nil, fmt.Errorf("%w: seeding from schedule: %v", ErrDynamic, serr)
		}
	} else {
		cs, k := graph.DSATUR(ov.base)
		for i, c := range cs {
			m.colors[i] = int32(c)
		}
		m.palette = k
	}
	m.budget = opts.ColorBudget
	if m.budget <= 0 {
		m.budget = m.palette
	}
	return m, nil
}

// Overlay exposes the maintained conflict graph for verification and
// inspection. Do not mutate the deployment through it.
func (m *Mutator) Overlay() *Overlay { return m.ov }

// Slots returns the palette high-water mark: every assigned slot is in
// [0, Slots()).
func (m *Mutator) Slots() int { return m.palette }

// AliveCount returns the number of live sensors.
func (m *Mutator) AliveCount() int { return m.ov.AliveCount() }

// Stats returns the lifetime mutation counters.
func (m *Mutator) Stats() Stats { return m.stats }

// SlotOf returns the current slot of the sensor at p; an error when no
// live sensor is there.
func (m *Mutator) SlotOf(p lattice.Point) (int, error) {
	id, ok := m.ov.IndexOf(p)
	if !ok || !m.ov.Alive(id) {
		return 0, fmt.Errorf("%w: no sensor at %v", ErrDynamic, p)
	}
	return int(m.colors[id]), nil
}

// EachAssignment calls f with every live sensor's position and slot
// until f returns false — the full-resync path of the service layer.
// The point is a shared buffer for base vertices; clone to retain.
func (m *Mutator) EachAssignment(f func(p lattice.Point, slot int) bool) {
	buf := make(lattice.Point, m.ov.w.Dim())
	for v := 0; v < m.ov.NumVertices(); v++ {
		if !m.ov.Alive(v) {
			continue
		}
		var p lattice.Point
		if v < m.ov.baseN {
			p = m.ov.w.PointAtInto(v, buf)
		} else {
			p = m.ov.added[v-m.ov.baseN]
		}
		if !f(p, int(m.colors[v])) {
			return
		}
	}
}

// Apply runs a batch of events in order. Each event either fully applies
// or fails; on failure the batch stops with the events so far applied,
// the partial disruption and changes, and the error. Changes report the
// post-batch slot of every touched position (−1 for departures); a
// position touched twice appears once with its final state.
func (m *Mutator) Apply(events []Event) (Disruption, []SlotChange, error) {
	var d Disruption
	startPalette := m.palette
	touched := make(map[int]struct{}) // vertex ids with changed assignment
	departed := make(map[int]lattice.Point)
	for _, ev := range events {
		if err := m.applyOne(ev, &d, touched, departed); err != nil {
			d.ColorsDelta = m.palette - startPalette
			return d, m.changes(touched, departed), err
		}
		d.Events++
	}
	d.ColorsDelta = m.palette - startPalette
	m.met.recordApply(d.Reassigned)
	// Materialize the deltas before any compaction: the touched set holds
	// vertex ids, which a compaction renumbers.
	changed := m.changes(touched, departed)
	if m.thresh > 0 && m.ov.OverlaySize() > m.thresh {
		compactStart := time.Now()
		remap, err := m.ov.compact()
		if err != nil {
			return d, changed, err
		}
		if remap != nil {
			fresh := make([]int32, m.ov.baseN)
			for i := range fresh {
				fresh[i] = -1
			}
			for old, now := range remap {
				if now >= 0 {
					fresh[now] = m.colors[old]
				}
			}
			m.colors = fresh
			d.Compacted = true
			m.stats.Compactions++
			m.met.recordCompaction(time.Since(compactStart))
		}
	}
	return d, changed, nil
}

// changes materializes the touched/departed sets into SlotChange deltas.
// Touched ids are resolved by position so the list survives compaction.
func (m *Mutator) changes(touched map[int]struct{}, departed map[int]lattice.Point) []SlotChange {
	out := make([]SlotChange, 0, len(touched)+len(departed))
	for _, p := range departed {
		out = append(out, SlotChange{P: p, Slot: -1})
	}
	for id := range touched {
		p := m.ov.PointOf(id)
		if !m.ov.Alive(id) {
			continue // re-departed later in the batch; departed map covers it
		}
		out = append(out, SlotChange{P: p.Clone(), Slot: int(m.colors[id])})
	}
	return out
}

// applyOne applies a single event to the overlay and repairs the
// coloring.
func (m *Mutator) applyOne(ev Event, d *Disruption, touched map[int]struct{}, departed map[int]lattice.Point) error {
	switch ev.Kind {
	case Leave, Fail:
		id, err := m.ov.leave(ev.P)
		if err != nil {
			return err
		}
		m.colors[id] = -1
		d.Departed++
		delete(touched, id)
		departed[id] = ev.P.Clone()
		if ev.Kind == Fail {
			m.stats.Fails++
		} else {
			m.stats.Leaves++
		}
		m.met.recordEvent(ev.Kind)
		return nil
	case Join:
		if err := m.joinAndColor(ev.P, d, touched, departed); err != nil {
			return err
		}
		m.stats.Joins++
		m.met.recordEvent(Join)
		return nil
	case Move:
		// Leave + Join as one event: validate the destination — right
		// dimension, not occupied — before tearing the source down, so a
		// bad Move is a no-op.
		if ev.To.Dim() != m.ov.w.Dim() {
			return fmt.Errorf("%w: move to %v: dimension %d, want %d",
				ErrDynamic, ev.To, ev.To.Dim(), m.ov.w.Dim())
		}
		if to, ok := m.ov.IndexOf(ev.To); ok && m.ov.Alive(to) && !ev.To.Equal(ev.P) {
			return fmt.Errorf("%w: move to %v: position already hosts a sensor", ErrDynamic, ev.To)
		}
		id, err := m.ov.leave(ev.P)
		if err != nil {
			return err
		}
		m.colors[id] = -1
		d.Departed++
		delete(touched, id)
		departed[id] = ev.P.Clone()
		if err := m.joinAndColor(ev.To, d, touched, departed); err != nil {
			return err
		}
		m.stats.Moves++
		m.met.recordEvent(Move)
		return nil
	}
	return fmt.Errorf("%w: unknown event kind %d", ErrDynamic, ev.Kind)
}

// joinAndColor activates a sensor and assigns it a slot: smallest free
// within budget, else DSATUR-repair of the damage region, else full
// recolor.
func (m *Mutator) joinAndColor(p lattice.Point, d *Disruption, touched map[int]struct{}, departed map[int]lattice.Point) error {
	id, err := m.ov.join(p)
	if err != nil {
		return err
	}
	delete(departed, id) // a rejoin within the batch is not a departure
	for id >= len(m.colors) {
		m.colors = append(m.colors, -1)
	}
	d.Joined++
	if c, ok := m.smallestFree(id); ok {
		m.colors[id] = int32(c)
		if c+1 > m.palette {
			m.palette = c + 1
		}
		touched[id] = struct{}{}
		m.met.recordRepair(tierSmallest)
		return nil
	}
	m.stats.Repairs++
	if damage, reassigned, ok := m.repairRegion(id); ok {
		d.Reassigned += reassigned
		for _, v := range damage {
			touched[v] = struct{}{}
		}
		m.met.recordRepair(tierRegion)
		return nil
	}
	m.stats.FullRecolors++
	m.met.recordRepair(tierFull)
	d.FullRecolor = true
	reassigned, err := m.fullRecolor(id, touched)
	if err != nil {
		return err
	}
	d.Reassigned += reassigned
	return nil
}

// smallestFree returns the smallest slot below the budget unused by v's
// live neighbors.
func (m *Mutator) smallestFree(v int) (int, bool) {
	words := (m.budget + 63) / 64
	var inline [4]uint64
	var taken []uint64
	if words <= len(inline) {
		taken = inline[:words]
		clear(taken)
	} else {
		taken = make([]uint64, words)
	}
	m.ov.EachNeighbor(v, func(u int) bool {
		if c := m.colors[u]; c >= 0 && int(c) < m.budget {
			taken[c/64] |= 1 << (c % 64)
		}
		return true
	})
	for w, word := range taken {
		if inv := ^word; inv != 0 {
			c := w*64 + trailingZeros(inv)
			if c < m.budget {
				return c, true
			}
			return 0, false
		}
	}
	return 0, false
}
