package dynamic

// Differential oracle: after every mutation batch the overlay graph must
// be edge-identical to a from-scratch ConflictGraph rebuild of the same
// mutated deployment, and the repaired slot assignment must verify
// Theorem-1-valid through graph.VerifySchedule on the rebuilt graph.
// The streams are randomized and run across all three base adjacency
// modes (bitset, CSR, periodic) so any future divergence between the
// incremental and batch paths trips here first — the dynamic twin of
// internal/graph/parity_test.go.

import (
	"fmt"
	"math/rand"
	"testing"

	"tilingsched/internal/graph"
	"tilingsched/internal/intmat"
	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/schedule"
	"tilingsched/internal/tiling"
)

// oracleCheck rebuilds the mutated deployment from scratch and compares:
// every pair of live positions must agree on adjacency with the overlay,
// and the maintained coloring must pass graph.VerifySchedule on the
// rebuilt graph. Dead positions of the rebuild window are padded with
// unique slots beyond the palette, so only live-live edges constrain.
func oracleCheck(t *testing.T, m *Mutator, dep schedule.Deployment) {
	t.Helper()
	ov := m.Overlay()
	var live []lattice.Point
	liveID := map[string]int{}
	for v := 0; v < ov.NumVertices(); v++ {
		if ov.Alive(v) {
			p := ov.PointOf(v).Clone()
			live = append(live, p)
			liveID[p.Key()] = v
		}
	}
	if len(live) == 0 {
		return
	}
	// Bounding window of the mutated deployment.
	lo, hi := live[0].Clone(), live[0].Clone()
	for _, p := range live[1:] {
		for a := range p {
			if p[a] < lo[a] {
				lo[a] = p[a]
			}
			if p[a] > hi[a] {
				hi[a] = p[a]
			}
		}
	}
	w, err := lattice.NewWindow(lo, hi)
	if err != nil {
		t.Fatalf("oracle window: %v", err)
	}
	rebuilt, pts, err := graph.ConflictGraph(dep, w)
	if err != nil {
		t.Fatalf("oracle rebuild: %v", err)
	}
	// Edge parity over every live pair.
	for i, p := range live {
		pi, _ := w.IndexOf(p)
		for _, q := range live[i+1:] {
			qi, _ := w.IndexOf(q)
			want := rebuilt.HasEdge(pi, qi)
			got := ov.HasEdge(liveID[p.Key()], liveID[q.Key()])
			if want != got {
				t.Fatalf("edge parity: %v–%v overlay=%v rebuild=%v (base %v, %d live)",
					p, q, got, want, ov.BaseMode(), len(live))
			}
		}
	}
	// Schedule validity through graph.VerifySchedule: live positions keep
	// their maintained slot, dead window positions get unique padding
	// slots ≥ the palette (they collide with nothing).
	assign := make([]int, len(pts))
	next := m.Slots()
	for i, p := range pts {
		if v, ok := liveID[p.Key()]; ok {
			assign[i] = int(m.colors[v])
			continue
		}
		assign[i] = next
		next++
	}
	ms, err := schedule.NewMapSchedule(next, pts, assign)
	if err != nil {
		t.Fatalf("oracle schedule: %v", err)
	}
	if err := graph.VerifySchedule(rebuilt, w, ms); err != nil {
		t.Fatalf("repaired schedule invalid against rebuild: %v (base %v)", err, ov.BaseMode())
	}
}

// driveStream feeds random single- and multi-event batches from a point
// pool through the mutator, oracle-checking after every batch.
func driveStream(t *testing.T, m *Mutator, dep schedule.Deployment, pool []lattice.Point, events int, rng *rand.Rand, maxRepair int) {
	t.Helper()
	active := func(p lattice.Point) bool {
		id, ok := m.Overlay().IndexOf(p)
		return ok && m.Overlay().Alive(id)
	}
	applied := 0
	for applied < events {
		var evs []Event
		p := pool[rng.Intn(len(pool))]
		switch {
		case !active(p):
			evs = append(evs, Event{Kind: Join, P: p})
		case rng.Intn(4) == 0:
			q := pool[rng.Intn(len(pool))]
			if !active(q) && !q.Equal(p) {
				evs = append(evs, Event{Kind: Move, P: p, To: q})
			} else {
				evs = append(evs, Event{Kind: Fail, P: p})
			}
		default:
			evs = append(evs, Event{Kind: Leave, P: p})
		}
		d, changed, err := m.Apply(evs)
		if err != nil {
			t.Fatalf("Apply(%v): %v", evs, err)
		}
		applied += d.Events
		// Bounded disruption: outside the full-recolor fallback, a repair
		// may touch only the damage region — the joining vertex's
		// neighborhood, whose size is bounded by the deployment's maximum
		// conflict degree.
		if !d.FullRecolor && d.Reassigned > maxRepair {
			t.Fatalf("repair disruption unbounded: %d reassigned (> %d) for %v", d.Reassigned, maxRepair, evs)
		}
		// Deltas must reflect reality: every reported change matches the
		// mutator's current answer.
		for _, ch := range changed {
			got, err := m.SlotOf(ch.P)
			if ch.Slot < 0 {
				if err == nil {
					t.Fatalf("delta says %v departed but SlotOf answers %d", ch.P, got)
				}
				continue
			}
			if err != nil || got != ch.Slot {
				t.Fatalf("delta %v=%d but SlotOf says (%d, %v)", ch.P, ch.Slot, got, err)
			}
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("Verify after %v: %v", evs, err)
		}
		oracleCheck(t, m, dep)
	}
}

// poolWindow returns the points of the base window expanded by margin on
// every side — in-window churn plus out-of-window growth.
func poolWindow(t *testing.T, w lattice.Window, margin int) []lattice.Point {
	t.Helper()
	lo, hi := w.Lo.Clone(), w.Hi.Clone()
	for a := range lo {
		lo[a] -= margin
		hi[a] += margin
	}
	ext, err := lattice.NewWindow(lo, hi)
	if err != nil {
		t.Fatalf("pool window: %v", err)
	}
	return ext.Points()
}

// TestOracleHomogeneous runs randomized event streams over the cross
// deployment against every base mode, with seeds and budgets chosen so
// the fast path, the DSATUR-repair path, and the full-recolor fallback
// all fire.
func TestOracleHomogeneous(t *testing.T) {
	tile := prototile.Cross(2, 1)
	dep := schedule.NewHomogeneous(tile)
	lt, ok := tiling.FindLatticeTiling(tile)
	if !ok {
		t.Fatal("no tiling for cross")
	}
	plan := schedule.FromLatticeTiling(lt)
	w, err := lattice.BoxWindow(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		init schedule.Schedule
		opts Options
	}{
		{"bitset/tiling-seed", plan, Options{BaseMode: graph.Bitset}},
		{"csr/dsatur-seed/tight-budget", nil, Options{BaseMode: graph.CSR, ColorBudget: 3}},
		{"periodic/tiling-seed", plan, Options{Residues: tiling.IdentityResidues(2), ColorBudget: 4}},
		{"auto/compacting", nil, Options{CompactThreshold: 3}},
	}
	var repairs, fulls, compactions int64
	for i, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			m, err := NewMutator(dep, w, c.init, c.opts)
			if err != nil {
				t.Fatalf("NewMutator: %v", err)
			}
			rng := rand.New(rand.NewSource(int64(1000 + i)))
			driveStream(t, m, dep, poolWindow(t, w, 2), 150, rng, 12)
			s := m.Stats()
			repairs += s.Repairs
			fulls += s.FullRecolors
			compactions += s.Compactions
		})
	}
	if repairs == 0 {
		t.Error("no stream exercised the DSATUR-repair path")
	}
	if fulls == 0 {
		t.Error("no stream exercised the full-recolor fallback")
	}
	if compactions == 0 {
		t.Error("no stream exercised compaction")
	}
}

// TestOracleD1Periodic runs the multi-class stencil path: a D1
// deployment over a 2×2 torus tiling, periodic modulo diag(2, 2), with
// the overlay on an implicit periodic base.
func TestOracleD1Periodic(t *testing.T) {
	domino := prototile.MustNew("domino", lattice.Pt(0, 0), lattice.Pt(1, 0))
	mono := prototile.MustNew("mono", lattice.Pt(0, 0))
	tt, err := tiling.NewTorusTiling([]int{2, 2},
		[]*prototile.Tile{domino, mono},
		[]tiling.Placement{
			{TileIndex: 0, Offset: lattice.Pt(0, 0)},
			{TileIndex: 1, Offset: lattice.Pt(0, 1)},
			{TileIndex: 1, Offset: lattice.Pt(1, 1)},
		})
	if err != nil {
		t.Fatalf("NewTorusTiling: %v", err)
	}
	dep := schedule.NewD1(tt)
	res, err := tiling.NewResidues(intmat.MustFromRows([][]int64{{2, 0}, {0, 2}}))
	if err != nil {
		t.Fatalf("NewResidues: %v", err)
	}
	w, err := lattice.BoxWindow(5, 4)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 3; seed++ {
		m, err := NewMutator(dep, w, nil, Options{Residues: res})
		if err != nil {
			t.Fatalf("NewMutator: %v", err)
		}
		rng := rand.New(rand.NewSource(2000 + seed))
		driveStream(t, m, dep, poolWindow(t, w, 2), 100, rng, 30)
	}
}

// TestOracleCompactionParity forces frequent compactions and checks the
// re-frozen overlay still answers identically (positions survive the id
// renumbering).
func TestOracleCompactionParity(t *testing.T) {
	tile := prototile.ChebyshevBall(2, 1)
	dep := schedule.NewHomogeneous(tile)
	w, err := lattice.BoxWindow(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMutator(dep, w, nil, Options{CompactThreshold: 2})
	if err != nil {
		t.Fatalf("NewMutator: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	driveStream(t, m, dep, poolWindow(t, w, 3), 120, rng, 24)
	if m.Stats().Compactions == 0 {
		t.Fatal("threshold 2 never compacted")
	}
}

// ringPool returns the points of the margin-expanded window that lie
// strictly outside the base window — the out-of-window destinations a
// periodic base must patch by stencil translation rather than by
// scanning.
func ringPool(t *testing.T, w lattice.Window, margin int) []lattice.Point {
	t.Helper()
	var out []lattice.Point
	for _, p := range poolWindow(t, w, margin) {
		if !w.Contains(p) {
			out = append(out, p)
		}
	}
	return out
}

// driveMoves shuttles sensors across the window boundary: the stream is
// dominated by Move events alternating inner→outer and outer→inner, so
// on a periodic base every batch runs the ConflictOffsets translation
// fast path — for base-window vertices, for far-outside added vertices,
// and for rejoins of previously tombstoned added positions.
func driveMoves(t *testing.T, m *Mutator, dep schedule.Deployment, inner, outer []lattice.Point, steps int, rng *rand.Rand) {
	t.Helper()
	ov := m.Overlay()
	active := func(p lattice.Point) bool {
		id, ok := ov.IndexOf(p)
		return ok && ov.Alive(id)
	}
	pick := func(pool []lattice.Point, want bool) (lattice.Point, bool) {
		for tries := 0; tries < 64; tries++ {
			p := pool[rng.Intn(len(pool))]
			if active(p) == want {
				return p, true
			}
		}
		return nil, false
	}
	moves := 0
	for s := 0; s < steps; s++ {
		from, to := inner, outer
		if s%2 == 1 {
			from, to = outer, inner
		}
		p, okP := pick(from, true)
		q, okQ := pick(to, false)
		var evs []Event
		switch {
		case okP && okQ:
			evs = []Event{{Kind: Move, P: p, To: q}}
			moves++
		case okQ:
			evs = []Event{{Kind: Join, P: q}}
		case okP:
			evs = []Event{{Kind: Leave, P: p}}
		default:
			continue
		}
		if _, _, err := m.Apply(evs); err != nil {
			t.Fatalf("Apply(%v): %v", evs, err)
		}
		if err := m.Verify(); err != nil {
			t.Fatalf("Verify after %v: %v", evs, err)
		}
		oracleCheck(t, m, dep)
	}
	if moves < steps/3 {
		t.Fatalf("stream degenerated: only %d/%d steps were moves", moves, steps)
	}
}

// TestOraclePeriodicMoveHeavy stresses the periodic join/Move fast path
// against the from-scratch oracle: on a periodic base, joins (and the
// join half of every Move) patch conflict edges by translating the
// residue class's stencil row instead of probing neighborhoods with a
// SiteScanner — including for destinations outside the base window,
// where no vertex existed at freeze time. Runs both the single-class
// homogeneous case and the multi-class D1 torus case.
func TestOraclePeriodicMoveHeavy(t *testing.T) {
	t.Run("homogeneous", func(t *testing.T) {
		tile := prototile.Cross(2, 1)
		dep := schedule.NewHomogeneous(tile)
		w, err := lattice.BoxWindow(4, 4)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMutator(dep, w, nil, Options{Residues: tiling.IdentityResidues(2)})
		if err != nil {
			t.Fatalf("NewMutator: %v", err)
		}
		if m.Overlay().BaseMode() != graph.Periodic {
			t.Fatalf("base mode %v, want Periodic", m.Overlay().BaseMode())
		}
		rng := rand.New(rand.NewSource(41))
		driveMoves(t, m, dep, w.Points(), ringPool(t, w, 3), 120, rng)
	})
	t.Run("d1-torus", func(t *testing.T) {
		domino := prototile.MustNew("domino", lattice.Pt(0, 0), lattice.Pt(1, 0))
		mono := prototile.MustNew("mono", lattice.Pt(0, 0))
		tt, err := tiling.NewTorusTiling([]int{2, 2},
			[]*prototile.Tile{domino, mono},
			[]tiling.Placement{
				{TileIndex: 0, Offset: lattice.Pt(0, 0)},
				{TileIndex: 1, Offset: lattice.Pt(0, 1)},
				{TileIndex: 1, Offset: lattice.Pt(1, 1)},
			})
		if err != nil {
			t.Fatalf("NewTorusTiling: %v", err)
		}
		dep := schedule.NewD1(tt)
		res, err := tiling.NewResidues(intmat.MustFromRows([][]int64{{2, 0}, {0, 2}}))
		if err != nil {
			t.Fatalf("NewResidues: %v", err)
		}
		w, err := lattice.BoxWindow(5, 4)
		if err != nil {
			t.Fatal(err)
		}
		m, err := NewMutator(dep, w, nil, Options{Residues: res})
		if err != nil {
			t.Fatalf("NewMutator: %v", err)
		}
		if m.Overlay().BaseMode() != graph.Periodic {
			t.Fatalf("base mode %v, want Periodic", m.Overlay().BaseMode())
		}
		rng := rand.New(rand.NewSource(43))
		driveMoves(t, m, dep, w.Points(), ringPool(t, w, 3), 120, rng)
	})
}

// assignmentMap collects a mutator's live assignment as key→slot.
func assignmentMap(m *Mutator) map[string]int {
	out := map[string]int{}
	m.EachAssignment(func(p lattice.Point, slot int) bool {
		out[p.Key()] = slot
		return true
	})
	return out
}

// requireStateIdentical asserts two mutators describe the same
// deployment: identical live point sets with identical slots, and
// identical adjacency over every live pair — the restore contract of
// the service layer's snapshot persistence.
func requireStateIdentical(t *testing.T, label string, want, got *Mutator) {
	t.Helper()
	wa, ga := assignmentMap(want), assignmentMap(got)
	if len(wa) != len(ga) {
		t.Fatalf("%s: %d live sensors, want %d", label, len(ga), len(wa))
	}
	for k, slot := range wa {
		if ga[k] != slot {
			t.Fatalf("%s: slot of %s = %d, want %d", label, k, ga[k], slot)
		}
	}
	// Edge parity over live pairs, through each overlay's own ids.
	var pts []lattice.Point
	want.EachAssignment(func(p lattice.Point, _ int) bool {
		pts = append(pts, p.Clone())
		return true
	})
	wantID := func(p lattice.Point) int { v, _ := want.ov.IndexOf(p); return v }
	gotID := func(p lattice.Point) int { v, _ := got.ov.IndexOf(p); return v }
	for i, p := range pts {
		for _, q := range pts[i+1:] {
			we := want.ov.HasEdge(wantID(p), wantID(q))
			ge := got.ov.HasEdge(gotID(p), gotID(q))
			if we != ge {
				t.Fatalf("%s: edge parity %v–%v: got %v, want %v", label, p, q, ge, we)
			}
		}
	}
}

// TestOracleStateRoundTrip is the persist/restore leg of the oracle: a
// churned mutator's State must rebuild — via NewMutatorFromState, the
// path session snapshots restore through — into a mutator that is
// slot- and edge-identical to the original, verifies, matches the
// from-scratch oracle rebuild, and stays oracle-valid under further
// churn.
func TestOracleStateRoundTrip(t *testing.T) {
	tile := prototile.Cross(2, 1)
	dep := schedule.NewHomogeneous(tile)
	lt, ok := tiling.FindLatticeTiling(tile)
	if !ok {
		t.Fatal("no tiling for cross")
	}
	plan := schedule.FromLatticeTiling(lt)
	w, err := lattice.BoxWindow(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 3; seed++ {
		opts := Options{Residues: tiling.IdentityResidues(2)}
		m, err := NewMutator(dep, w, plan, opts)
		if err != nil {
			t.Fatalf("NewMutator: %v", err)
		}
		rng := rand.New(rand.NewSource(5000 + seed))
		driveStream(t, m, dep, poolWindow(t, w, 2), 60, rng, 12)

		st := m.State()
		restored, err := NewMutatorFromState(dep, st, opts)
		if err != nil {
			t.Fatalf("NewMutatorFromState: %v", err)
		}
		requireStateIdentical(t, fmt.Sprintf("seed %d", seed), m, restored)
		if err := restored.Verify(); err != nil {
			t.Fatalf("restored mutator invalid: %v", err)
		}
		oracleCheck(t, restored, dep)

		// A checkpoint is a value: churning the original must not leak
		// into the captured state or the restored twin.
		before := assignmentMap(restored)
		driveStream(t, m, dep, poolWindow(t, w, 2), 10, rng, 12)
		if len(assignmentMap(restored)) != len(before) {
			t.Fatal("churning the source mutated the restored twin")
		}

		// And the restored twin must hold up under its own churn.
		driveStream(t, restored, dep, poolWindow(t, restored.State().Window, 2), 40, rng, 12)
	}

	// Empty-deployment checkpoint: capture after everything leaves,
	// restore, rejoin.
	m, err := NewMutator(dep, w, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var evs []Event
	for _, p := range w.Points() {
		evs = append(evs, Event{Kind: Leave, P: p})
	}
	if _, _, err := m.Apply(evs); err != nil {
		t.Fatal(err)
	}
	restored, err := NewMutatorFromState(dep, m.State(), Options{})
	if err != nil {
		t.Fatalf("restore of empty deployment: %v", err)
	}
	if restored.AliveCount() != 0 {
		t.Fatalf("empty restore has %d live sensors", restored.AliveCount())
	}
	if _, _, err := restored.Apply([]Event{{Kind: Join, P: lattice.Pt(1, 1)}}); err != nil {
		t.Fatalf("rejoin after empty restore: %v", err)
	}
	if err := restored.Verify(); err != nil {
		t.Fatal(err)
	}
}

// TestOracleManyStreams fuzzes wider: several seeds over a Moore
// deployment with default options, ensuring no stream ever diverges.
func TestOracleManyStreams(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized stream sweep")
	}
	tile := prototile.ChebyshevBall(2, 1)
	dep := schedule.NewHomogeneous(tile)
	lt, ok := tiling.FindLatticeTiling(tile)
	if !ok {
		t.Fatal("no tiling for Moore ball")
	}
	plan := schedule.FromLatticeTiling(lt)
	w, err := lattice.BoxWindow(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			m, err := NewMutator(dep, w, plan, Options{})
			if err != nil {
				t.Fatalf("NewMutator: %v", err)
			}
			rng := rand.New(rand.NewSource(3000 + seed))
			driveStream(t, m, dep, poolWindow(t, w, 2), 120, rng, 24)
		})
	}
}
