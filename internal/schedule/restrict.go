package schedule

import (
	"fmt"

	"tilingsched/internal/lattice"
)

// Restrict materializes any schedule over a finite window as an explicit
// MapSchedule — the paper's Conclusions operation of restricting the
// infinite-lattice schedule to a deployment region D. The slot count is
// preserved (restriction can only relax constraints, never violate them),
// and by the Conclusions the restriction stays optimal whenever D
// contains a translate of N+N.
func Restrict(s Schedule, w lattice.Window) (*MapSchedule, error) {
	assign := make(map[string]int, w.Size())
	for _, p := range w.Points() {
		k, err := s.SlotOf(p)
		if err != nil {
			return nil, fmt.Errorf("schedule: restricting at %v: %w", p, err)
		}
		assign[p.Key()] = k
	}
	return NewMapSchedule(s.Slots(), assign)
}
