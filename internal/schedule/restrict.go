package schedule

import (
	"fmt"

	"tilingsched/internal/lattice"
)

// Restrict materializes any schedule over a finite window as an explicit
// MapSchedule — the paper's Conclusions operation of restricting the
// infinite-lattice schedule to a deployment region D. The slot count is
// preserved (restriction can only relax constraints, never violate them),
// and by the Conclusions the restriction stays optimal whenever D
// contains a translate of N+N.
func Restrict(s Schedule, w lattice.Window) (*MapSchedule, error) {
	size, err := w.SizeChecked()
	if err != nil {
		return nil, fmt.Errorf("%w: restriction window too large: %v", ErrSchedule, err)
	}
	table := make([]int32, size)
	i := 0
	var rerr error
	w.Each(func(p lattice.Point) bool {
		k, err := s.SlotOf(p)
		if err != nil {
			rerr = fmt.Errorf("schedule: restricting at %v: %w", p, err)
			return false
		}
		if k < 0 || k >= s.Slots() {
			rerr = fmt.Errorf("%w: slot %d of %v outside [0, %d)", ErrSchedule, k, p, s.Slots())
			return false
		}
		table[i] = int32(k)
		i++
		return true
	})
	if rerr != nil {
		return nil, rerr
	}
	return newWindowSchedule(s.Slots(), w, table), nil
}
