package schedule

import (
	"math/rand"
	"testing"

	"tilingsched/internal/boundary"
	"tilingsched/internal/lattice"
	"tilingsched/internal/tiling"
)

// Property: for every random exact polyomino, the Theorem 1 schedule is
// collision-free on a window and uses exactly |N| slots — the paper's
// main theorem, checked over a randomized corpus rather than a fixed
// catalog.
func TestTheorem1OnRandomPolyominoes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	verified := 0
	for trial := 0; trial < 120 && verified < 25; trial++ {
		ti := boundary.RandomSimplePolyomino(rng, 2+rng.Intn(6))
		lt, ok := tiling.FindLatticeTiling(ti)
		if !ok {
			continue // not exact; skip
		}
		s := FromLatticeTiling(lt)
		if s.Slots() != ti.Size() {
			t.Fatalf("%s: slots %d ≠ |N| %d", ti.Name(), s.Slots(), ti.Size())
		}
		dep := s.Deployment()
		w := lattice.CenteredWindow(2, 2*dep.Reach()+2)
		if err := VerifyCollisionFree(s, dep, w); err != nil {
			t.Fatalf("random tile\n%s\nschedule collides: %v", ti.ASCII(), err)
		}
		verified++
	}
	if verified < 10 {
		t.Fatalf("only %d random exact polyominoes verified; corpus too thin", verified)
	}
}

// Property: the slot histogram of a Theorem 1 schedule over a period-
// aligned window is perfectly balanced — each coset has equal density.
func TestTheorem1SlotBalance(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		ti := boundary.RandomSimplePolyomino(rng, 2+rng.Intn(5))
		lt, ok := tiling.FindLatticeTiling(ti)
		if !ok {
			continue
		}
		s := FromLatticeTiling(lt)
		period := lt.Period()
		// Window [0, a·c) × [0, c·c)… use the box [0, det) in each axis:
		// it is a union of fundamental domains only when axis-aligned
		// with the HNF diagonal; use lcm-style box [0, d) × [0, d) where
		// d = det — always a disjoint union of |N| equal cosets.
		d := int(period.At(0, 0) * period.At(1, 1))
		w, err := lattice.BoxWindow(d, d)
		if err != nil {
			t.Fatalf("BoxWindow: %v", err)
		}
		hist, err := SlotHistogram(s, w)
		if err != nil {
			t.Fatalf("SlotHistogram: %v", err)
		}
		want := w.Size() / ti.Size()
		for k, c := range hist {
			if c != want {
				t.Fatalf("tile %s: slot %d has %d sensors, want %d", ti.Name(), k, c, want)
			}
		}
	}
}

// Property: conflicting sensors never share a slot under Theorem 1, and
// non-conflicting, same-slot sensors really have disjoint neighborhoods —
// the exact biconditional, sampled.
func TestTheorem1ConflictBiconditional(t *testing.T) {
	lt, ok := tiling.FindLatticeTiling(boundary.Staircase(3))
	if !ok {
		t.Fatal("staircase-3 should tile")
	}
	s := FromLatticeTiling(lt)
	dep := s.Deployment()
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 400; trial++ {
		p := lattice.Pt(rng.Intn(17)-8, rng.Intn(17)-8)
		q := lattice.Pt(rng.Intn(17)-8, rng.Intn(17)-8)
		if p.Equal(q) {
			continue
		}
		kp, err := s.SlotOf(p)
		if err != nil {
			t.Fatalf("SlotOf: %v", err)
		}
		kq, err := s.SlotOf(q)
		if err != nil {
			t.Fatalf("SlotOf: %v", err)
		}
		if kp == kq && Conflict(dep, p, q) {
			t.Fatalf("same-slot sensors %v, %v conflict", p, q)
		}
	}
}
