package schedule

import (
	"fmt"

	"tilingsched/internal/lattice"
)

// Conflict reports whether two sensors may not share a slot: their
// interference neighborhoods intersect. This is the paper's condition
// "(s+N) ∩ (t+N) ≠ ∅"; note p conflicts with itself (p ∈ p+N).
func Conflict(dep Deployment, p, q lattice.Point) bool {
	np := lattice.NewSet(dep.NeighborhoodOf(p)...)
	for _, x := range dep.NeighborhoodOf(q) {
		if np.Contains(x) {
			return true
		}
	}
	return false
}

// CollisionWitness is a pair of same-slot sensors with intersecting
// neighborhoods, proving a schedule is not collision-free.
type CollisionWitness struct {
	P, Q lattice.Point
	Slot int
}

// Error renders the witness as the verification error message.
func (cw CollisionWitness) Error() string {
	return fmt.Sprintf("schedule: collision in slot %d between %s and %s", cw.Slot, cw.P, cw.Q)
}

// VerifyCollisionFree checks that no two sensors inside the window that
// share a slot have intersecting neighborhoods. Sensor pairs farther apart
// than twice the deployment reach cannot conflict and are skipped; within
// that radius the neighborhoods are compared exactly. A nil return means
// the schedule restricted to the window is collision-free.
func VerifyCollisionFree(s Schedule, dep Deployment, w lattice.Window) error {
	if w.Dim() != dep.Dim() {
		return fmt.Errorf("%w: window dimension %d ≠ deployment dimension %d",
			ErrSchedule, w.Dim(), dep.Dim())
	}
	pts := w.Points()
	slots := make(map[string]int, len(pts))
	for _, p := range pts {
		k, err := s.SlotOf(p)
		if err != nil {
			return fmt.Errorf("schedule: verifying %v: %w", p, err)
		}
		if k < 0 || k >= s.Slots() {
			return fmt.Errorf("%w: slot %d of %v outside [0, %d)", ErrSchedule, k, p, s.Slots())
		}
		slots[p.Key()] = k
	}
	reach := dep.Reach()
	for _, p := range pts {
		kp := slots[p.Key()]
		// Scan the forward half-neighborhood to test each pair once.
		for _, q := range neighborsWithin(p, 2*reach, w) {
			if !p.Less(q) {
				continue
			}
			if slots[q.Key()] != kp {
				continue
			}
			if Conflict(dep, p, q) {
				return CollisionWitness{P: p, Q: q, Slot: kp}
			}
		}
	}
	return nil
}

// neighborsWithin lists window points within Chebyshev distance r of p,
// excluding p itself.
func neighborsWithin(p lattice.Point, r int, w lattice.Window) []lattice.Point {
	lo := p.Clone()
	hi := p.Clone()
	for i := range lo {
		lo[i] -= r
		hi[i] += r
		if lo[i] < w.Lo[i] {
			lo[i] = w.Lo[i]
		}
		if hi[i] > w.Hi[i] {
			hi[i] = w.Hi[i]
		}
	}
	box, err := lattice.NewWindow(lo, hi)
	if err != nil {
		return nil
	}
	var out []lattice.Point
	for _, q := range box.Points() {
		if !q.Equal(p) {
			out = append(out, q)
		}
	}
	return out
}

// SlotHistogram counts how many window sensors use each slot — useful for
// fairness/utilization reporting in the experiment harness.
func SlotHistogram(s Schedule, w lattice.Window) ([]int, error) {
	hist := make([]int, s.Slots())
	for _, p := range w.Points() {
		k, err := s.SlotOf(p)
		if err != nil {
			return nil, err
		}
		if k < 0 || k >= len(hist) {
			return nil, fmt.Errorf("%w: slot %d outside [0, %d)", ErrSchedule, k, len(hist))
		}
		hist[k]++
	}
	return hist, nil
}
