package schedule

import (
	"fmt"

	"tilingsched/internal/lattice"
)

// Conflict reports whether two sensors may not share a slot: their
// interference neighborhoods intersect. This is the paper's condition
// "(s+N) ∩ (t+N) ≠ ∅"; note p conflicts with itself (p ∈ p+N).
func Conflict(dep Deployment, p, q lattice.Point) bool {
	np := lattice.NewSet(dep.NeighborhoodOf(p)...)
	for _, x := range dep.NeighborhoodOf(q) {
		if np.Contains(x) {
			return true
		}
	}
	return false
}

// CollisionWitness is a pair of same-slot sensors with intersecting
// neighborhoods, proving a schedule is not collision-free.
type CollisionWitness struct {
	P, Q lattice.Point
	Slot int
}

// Error renders the witness as the verification error message.
func (cw CollisionWitness) Error() string {
	return fmt.Sprintf("schedule: collision in slot %d between %s and %s", cw.Slot, cw.P, cw.Q)
}

// VerifyCollisionFree checks that no two sensors inside the window that
// share a slot have intersecting neighborhoods. Sensor pairs farther apart
// than twice the deployment reach cannot conflict and are skipped; within
// that radius the neighborhoods are compared exactly. A nil return means
// the schedule restricted to the window is collision-free.
func VerifyCollisionFree(s Schedule, dep Deployment, w lattice.Window) error {
	if w.Dim() != dep.Dim() {
		return fmt.Errorf("%w: window dimension %d ≠ deployment dimension %d",
			ErrSchedule, w.Dim(), dep.Dim())
	}
	size, err := w.SizeChecked()
	if err != nil {
		return fmt.Errorf("%w: verification window too large: %v", ErrSchedule, err)
	}
	pts := w.Points()
	slots := make([]int32, size)
	for i, p := range pts {
		k, err := s.SlotOf(p)
		if err != nil {
			return fmt.Errorf("schedule: verifying %v: %w", p, err)
		}
		if k < 0 || k >= s.Slots() {
			return fmt.Errorf("%w: slot %d of %v outside [0, %d)", ErrSchedule, k, p, s.Slots())
		}
		slots[i] = int32(k)
	}
	reach := dep.Reach()
	var witness *CollisionWitness
	for i, p := range pts {
		kp := slots[i]
		// Scan the forward half-neighborhood to test each pair once.
		eachNeighborWithin(p, 2*reach, w, func(q lattice.Point) bool {
			if !p.Less(q) {
				return true
			}
			j, _ := w.IndexOf(q)
			if slots[j] != kp {
				return true
			}
			if Conflict(dep, p, q) {
				witness = &CollisionWitness{P: p, Q: q.Clone(), Slot: int(kp)}
				return false
			}
			return true
		})
		if witness != nil {
			return *witness
		}
	}
	return nil
}

// eachNeighborWithin visits the window points within Chebyshev distance r
// of p, excluding p itself, until f returns false. The point passed to f
// is a reused buffer (see Window.Each).
func eachNeighborWithin(p lattice.Point, r int, w lattice.Window, f func(q lattice.Point) bool) {
	lo := p.Clone()
	hi := p.Clone()
	for i := range lo {
		lo[i] -= r
		hi[i] += r
		if lo[i] < w.Lo[i] {
			lo[i] = w.Lo[i]
		}
		if hi[i] > w.Hi[i] {
			hi[i] = w.Hi[i]
		}
	}
	box, err := lattice.NewWindow(lo, hi)
	if err != nil {
		return
	}
	box.Each(func(q lattice.Point) bool {
		if q.Equal(p) {
			return true
		}
		return f(q)
	})
}

// SlotHistogram counts how many window sensors use each slot — useful for
// fairness/utilization reporting in the experiment harness.
func SlotHistogram(s Schedule, w lattice.Window) ([]int, error) {
	hist := make([]int, s.Slots())
	var herr error
	w.Each(func(p lattice.Point) bool {
		k, err := s.SlotOf(p)
		if err != nil {
			herr = err
			return false
		}
		if k < 0 || k >= len(hist) {
			herr = fmt.Errorf("%w: slot %d outside [0, %d)", ErrSchedule, k, len(hist))
			return false
		}
		hist[k]++
		return true
	})
	if herr != nil {
		return nil, herr
	}
	return hist, nil
}
