package schedule

import (
	"fmt"

	"tilingsched/internal/lattice"
	"tilingsched/internal/tiling"
)

// The Section 4 ground rules for non-respectable tilings: every translate
// of a prototile uses the same slot pattern (a map from tile cell to
// slot), and the patterns of different prototile classes are chosen
// independently. Under these rules the slot of a sensor depends only on
// (class, cell index) of the tile covering it, so collision-freeness
// compiles into a constraint graph over those pairs: two pairs conflict
// when some two sensors realizing them have intersecting neighborhoods.
// The minimal number of slots is the chromatic number of that graph —
// computed exactly below, reproducing Figure 5's m = 6 vs m = 4.

// PatternVar identifies one cell of one prototile class.
type PatternVar struct {
	Class int
	Cell  int
}

// PatternConstraints is the compiled conflict structure of a torus tiling
// under the per-class ground rules.
type PatternConstraints struct {
	tt   *tiling.TorusTiling
	vars []PatternVar
	adj  [][]bool
}

// CompilePatternConstraints scans all sensor pairs within interference
// range (one fundamental domain × its neighborhood, by periodicity) and
// records which (class, cell) pairs may not share a slot.
func CompilePatternConstraints(tt *tiling.TorusTiling) (*PatternConstraints, error) {
	dep := NewD1(tt)
	tiles := tt.Tiles()
	// Enumerate variables.
	var vars []PatternVar
	varIdx := map[[2]int]int{}
	for k, t := range tiles {
		for i := 0; i < t.Size(); i++ {
			varIdx[[2]int{k, i}] = len(vars)
			vars = append(vars, PatternVar{Class: k, Cell: i})
		}
	}
	adj := make([][]bool, len(vars))
	for i := range adj {
		adj[i] = make([]bool, len(vars))
	}
	// Cells of one tile instance pairwise conflict (for n', n'' ∈ N the
	// point s+n'+n'' lies in both neighborhoods), so each class's cells
	// form a clique. Seeding these edges also keeps patterns of unused
	// classes injective, which the schedule constructor requires.
	for i, vi := range vars {
		for j, vj := range vars {
			if i != j && vi.Class == vj.Class {
				adj[i][j] = true
			}
		}
	}
	// classCell locates the variable of an absolute sensor position.
	classCell := func(p lattice.Point) (int, error) {
		pl, err := tt.OwnerOf(p)
		if err != nil {
			return 0, err
		}
		n := tt.Wrap(p.Sub(pl.Offset))
		for i, cand := range tiles[pl.TileIndex].Points() {
			if tt.Wrap(cand).Equal(n) {
				return varIdx[[2]int{pl.TileIndex, i}], nil
			}
		}
		return 0, fmt.Errorf("%w: cell of %v not located", ErrSchedule, p)
	}
	dims := tt.Dims()
	base, err := lattice.BoxWindow(dims...)
	if err != nil {
		return nil, err
	}
	reach := dep.Reach()
	for _, p := range base.Points() {
		vp, err := classCell(p)
		if err != nil {
			return nil, err
		}
		lo := p.Clone()
		hi := p.Clone()
		for i := range lo {
			lo[i] -= 2 * reach
			hi[i] += 2 * reach
		}
		box, err := lattice.NewWindow(lo, hi)
		if err != nil {
			return nil, err
		}
		for _, q := range box.Points() {
			if q.Equal(p) {
				continue
			}
			vq, err := classCell(q)
			if err != nil {
				return nil, err
			}
			if adj[vp][vq] {
				continue
			}
			if Conflict(dep, p, q) {
				if vp == vq {
					return nil, fmt.Errorf("%w: same-pattern sensors %v and %v conflict "+
						"(GT2 must be violated)", ErrSchedule, p, q)
				}
				adj[vp][vq] = true
				adj[vq][vp] = true
			}
		}
	}
	return &PatternConstraints{tt: tt, vars: vars, adj: adj}, nil
}

// Vars returns the pattern variables.
func (pc *PatternConstraints) Vars() []PatternVar {
	return append([]PatternVar(nil), pc.vars...)
}

// Conflicts reports whether two variables may not share a slot.
func (pc *PatternConstraints) Conflicts(i, j int) bool { return pc.adj[i][j] }

// MinSlots returns the smallest m admitting a valid per-class slot
// assignment (the chromatic number of the constraint graph), together with
// the patterns: patterns[class][cell] = slot. maxM bounds the search.
func (pc *PatternConstraints) MinSlots(maxM int) (int, [][]int, error) {
	lower := 0
	for _, t := range pc.tt.Tiles() {
		if t.Size() > lower {
			lower = t.Size()
		}
	}
	for m := lower; m <= maxM; m++ {
		colors := make([]int, len(pc.vars))
		for i := range colors {
			colors[i] = -1
		}
		if pc.color(colors, 0, m) {
			patterns := make([][]int, len(pc.tt.Tiles()))
			for k, t := range pc.tt.Tiles() {
				patterns[k] = make([]int, t.Size())
			}
			for vi, v := range pc.vars {
				patterns[v.Class][v.Cell] = colors[vi]
			}
			return m, patterns, nil
		}
	}
	return 0, nil, fmt.Errorf("%w: no per-class schedule with ≤ %d slots", ErrSchedule, maxM)
}

// color performs backtracking graph coloring with m colors.
func (pc *PatternConstraints) color(colors []int, v, m int) bool {
	if v == len(pc.vars) {
		return true
	}
	// Symmetry pruning: the first vertex may only take color 0, and in
	// general a vertex may use at most one color beyond the maximum used
	// so far.
	maxUsed := -1
	for i := 0; i < v; i++ {
		if colors[i] > maxUsed {
			maxUsed = colors[i]
		}
	}
	limit := maxUsed + 1
	if limit >= m {
		limit = m - 1
	}
	for c := 0; c <= limit; c++ {
		ok := true
		for u := 0; u < v; u++ {
			if pc.adj[v][u] && colors[u] == c {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		colors[v] = c
		if pc.color(colors, v+1, m) {
			return true
		}
		colors[v] = -1
	}
	return false
}

// PerClassSchedule realizes a pattern assignment as a Schedule over the
// whole lattice (lifted periodically from the torus tiling).
type PerClassSchedule struct {
	tt       *tiling.TorusTiling
	patterns [][]int
	slots    int
}

// NewPerClassSchedule validates shapes and slot ranges and builds the
// schedule. It does not verify collision-freeness; use
// VerifyCollisionFree or obtain patterns from MinSlots.
func NewPerClassSchedule(tt *tiling.TorusTiling, slots int, patterns [][]int) (*PerClassSchedule, error) {
	tiles := tt.Tiles()
	if len(patterns) != len(tiles) {
		return nil, fmt.Errorf("%w: %d patterns for %d prototiles", ErrSchedule, len(patterns), len(tiles))
	}
	for k, t := range tiles {
		if len(patterns[k]) != t.Size() {
			return nil, fmt.Errorf("%w: pattern %d has %d entries for %d cells",
				ErrSchedule, k, len(patterns[k]), t.Size())
		}
		seen := map[int]bool{}
		for _, s := range patterns[k] {
			if s < 0 || s >= slots {
				return nil, fmt.Errorf("%w: slot %d outside [0, %d)", ErrSchedule, s, slots)
			}
			if seen[s] {
				return nil, fmt.Errorf("%w: pattern %d reuses slot %d within one tile", ErrSchedule, k, s)
			}
			seen[s] = true
		}
	}
	cp := make([][]int, len(patterns))
	for i, p := range patterns {
		cp[i] = append([]int(nil), p...)
	}
	return &PerClassSchedule{tt: tt, patterns: cp, slots: slots}, nil
}

// Slots returns the period m.
func (s *PerClassSchedule) Slots() int { return s.slots }

// SlotOf returns patterns[class][cell] for the tile covering p.
func (s *PerClassSchedule) SlotOf(p lattice.Point) (int, error) {
	pl, err := s.tt.OwnerOf(p)
	if err != nil {
		return 0, err
	}
	n := s.tt.Wrap(p.Sub(pl.Offset))
	tile := s.tt.Tiles()[pl.TileIndex]
	for i, cand := range tile.Points() {
		if s.tt.Wrap(cand).Equal(n) {
			return s.patterns[pl.TileIndex][i], nil
		}
	}
	return 0, fmt.Errorf("%w: %v not aligned with its placement", ErrSchedule, p)
}
