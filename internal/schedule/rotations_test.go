package schedule

import (
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/tiling"
)

// Section 4 motivates multi-prototile tilings by rotated antenna patterns.
// Tile a torus with two rotations of the L tromino (a non-respectable
// pair: neither contains the other) and check the per-class machinery
// produces a verified schedule whose slot count sits between the clique
// bound (3) and the Theorem 2 union bound.
func TestRotatedTrominoTiling(t *testing.T) {
	rots, err := prototile.LTromino().Rotations()
	if err != nil {
		t.Fatalf("Rotations: %v", err)
	}
	if len(rots) != 4 {
		t.Fatalf("L tromino has %d rotations, want 4", len(rots))
	}
	pair := []*prototile.Tile{rots[0], rots[2]} // 180°-rotated pair
	sols, err := tiling.SolveTorus([]int{3, 4}, pair, tiling.SolveOptions{
		MaxSolutions: 10,
		Accept: func(counts []int) bool {
			return counts[0] > 0 && counts[1] > 0 // genuinely mixed
		},
	})
	if err != nil {
		t.Fatalf("SolveTorus: %v", err)
	}
	if len(sols) == 0 {
		t.Skip("no mixed rotated-tromino tiling on the 3x4 torus")
	}
	for _, sol := range sols {
		if sol.Respectable() {
			t.Error("rotated pair reported respectable")
		}
		pc, err := CompilePatternConstraints(sol)
		if err != nil {
			t.Fatalf("CompilePatternConstraints: %v", err)
		}
		m, patterns, err := pc.MinSlots(12)
		if err != nil {
			t.Fatalf("MinSlots: %v", err)
		}
		if m < 3 {
			t.Errorf("per-class optimum %d below the 3-clique bound", m)
		}
		th2, err := FromTorusTiling(sol)
		if err != nil {
			t.Fatalf("FromTorusTiling: %v", err)
		}
		if m > th2.Slots() {
			t.Errorf("per-class optimum %d above the Theorem 2 union bound %d", m, th2.Slots())
		}
		ps, err := NewPerClassSchedule(sol, m, patterns)
		if err != nil {
			t.Fatalf("NewPerClassSchedule: %v", err)
		}
		if err := VerifyCollisionFree(ps, NewD1(sol), lattice.CenteredWindow(2, 5)); err != nil {
			t.Errorf("rotated-tromino schedule collides: %v", err)
		}
	}
}

func TestRestrictPreservesSchedule(t *testing.T) {
	lt, ok := tiling.FindLatticeTiling(prototile.Cross(2, 1))
	if !ok {
		t.Fatal("no tiling")
	}
	s := FromLatticeTiling(lt)
	w := lattice.CenteredWindow(2, 3)
	r, err := Restrict(s, w)
	if err != nil {
		t.Fatalf("Restrict: %v", err)
	}
	if r.Slots() != s.Slots() {
		t.Errorf("restriction changed slot count: %d vs %d", r.Slots(), s.Slots())
	}
	for _, p := range w.Points() {
		ks, err := s.SlotOf(p)
		if err != nil {
			t.Fatalf("SlotOf: %v", err)
		}
		kr, err := r.SlotOf(p)
		if err != nil {
			t.Fatalf("restricted SlotOf: %v", err)
		}
		if ks != kr {
			t.Fatalf("slots differ at %v", p)
		}
	}
	// Outside the window, the restriction knows nothing.
	if _, err := r.SlotOf(lattice.Pt(99, 99)); err == nil {
		t.Error("restricted schedule answered outside its window")
	}
	// The restriction remains collision-free on its window.
	if err := VerifyCollisionFree(r, s.Deployment(), w); err != nil {
		t.Errorf("restricted schedule collides: %v", err)
	}
}
