package schedule

import (
	"testing"

	"tilingsched/internal/lattice"
	"tilingsched/internal/prototile"
	"tilingsched/internal/tiling"
)

// respectableDominoTiling builds a tiny respectable two-prototile tiling:
// N1 = domino {(0,0),(1,0)}, N2 = monomino {(0,0)} ⊂ N1, on a 2x2 torus
// with one domino and two monominoes.
func respectableDominoTiling(t *testing.T) *tiling.TorusTiling {
	t.Helper()
	domino := prototile.MustNew("domino", lattice.Pt(0, 0), lattice.Pt(1, 0))
	mono := prototile.MustNew("mono", lattice.Pt(0, 0))
	tt, err := tiling.NewTorusTiling([]int{2, 2},
		[]*prototile.Tile{domino, mono},
		[]tiling.Placement{
			{TileIndex: 0, Offset: lattice.Pt(0, 0)},
			{TileIndex: 1, Offset: lattice.Pt(0, 1)},
			{TileIndex: 1, Offset: lattice.Pt(1, 1)},
		})
	if err != nil {
		t.Fatalf("NewTorusTiling: %v", err)
	}
	return tt
}

func TestTheorem2Respectable(t *testing.T) {
	tt := respectableDominoTiling(t)
	if !tt.Respectable() {
		t.Fatal("tiling should be respectable")
	}
	s, err := FromTorusTiling(tt)
	if err != nil {
		t.Fatalf("FromTorusTiling: %v", err)
	}
	// m = |N1| = 2 for respectable tilings.
	if s.Slots() != 2 {
		t.Errorf("slots = %d, want 2", s.Slots())
	}
	if s.LowerBound() != 2 {
		t.Errorf("lower bound = %d, want 2", s.LowerBound())
	}
	if err := VerifyCollisionFree(s, s.Deployment(), lattice.CenteredWindow(2, 4)); err != nil {
		t.Errorf("Theorem 2 schedule not collision-free: %v", err)
	}
}

func TestTheorem2PureS(t *testing.T) {
	// A single-prototile torus tiling is trivially respectable; the
	// Theorem 2 schedule then coincides with a 4-slot schedule.
	s4 := prototile.MustTetromino("S")
	sols, err := tiling.SolveTorus([]int{4, 4}, []*prototile.Tile{s4}, tiling.SolveOptions{MaxSolutions: 1})
	if err != nil || len(sols) == 0 {
		t.Fatalf("SolveTorus: %v (%d)", err, len(sols))
	}
	sched, err := FromTorusTiling(sols[0])
	if err != nil {
		t.Fatalf("FromTorusTiling: %v", err)
	}
	if sched.Slots() != 4 {
		t.Errorf("slots = %d, want 4", sched.Slots())
	}
	if err := VerifyCollisionFree(sched, sched.Deployment(), lattice.CenteredWindow(2, 6)); err != nil {
		t.Errorf("pure-S Theorem 2 schedule collides: %v", err)
	}
}

func TestTheorem2SlotsPeriodic(t *testing.T) {
	tt := respectableDominoTiling(t)
	s, err := FromTorusTiling(tt)
	if err != nil {
		t.Fatalf("FromTorusTiling: %v", err)
	}
	// Slots repeat with the torus period.
	for _, p := range lattice.CenteredWindow(2, 3).Points() {
		k1, err := s.SlotOf(p)
		if err != nil {
			t.Fatalf("SlotOf(%v): %v", p, err)
		}
		k2, err := s.SlotOf(p.Add(lattice.Pt(2, 0)))
		if err != nil {
			t.Fatalf("SlotOf: %v", err)
		}
		k3, err := s.SlotOf(p.Add(lattice.Pt(0, 2)))
		if err != nil {
			t.Fatalf("SlotOf: %v", err)
		}
		if k1 != k2 || k1 != k3 {
			t.Fatalf("slots not periodic at %v: %d %d %d", p, k1, k2, k3)
		}
	}
}

func TestPatternConstraintsPureS(t *testing.T) {
	// Figure 5 right: the symmetric all-S tiling admits an optimal
	// 4-slot per-class schedule.
	s4 := prototile.MustTetromino("S")
	sols, err := tiling.SolveTorus([]int{4, 4}, []*prototile.Tile{s4}, tiling.SolveOptions{MaxSolutions: 3})
	if err != nil || len(sols) == 0 {
		t.Fatalf("SolveTorus: %v", err)
	}
	for _, sol := range sols {
		pc, err := CompilePatternConstraints(sol)
		if err != nil {
			t.Fatalf("CompilePatternConstraints: %v", err)
		}
		m, patterns, err := pc.MinSlots(16)
		if err != nil {
			t.Fatalf("MinSlots: %v", err)
		}
		if m != 4 {
			t.Errorf("pure-S per-class optimum = %d, want 4 (Fig 5 right)", m)
		}
		ps, err := NewPerClassSchedule(sol, m, patterns)
		if err != nil {
			t.Fatalf("NewPerClassSchedule: %v", err)
		}
		if err := VerifyCollisionFree(ps, NewD1(sol), lattice.CenteredWindow(2, 6)); err != nil {
			t.Errorf("per-class schedule collides: %v", err)
		}
	}
}

func TestPatternConstraintsRespectableDomino(t *testing.T) {
	tt := respectableDominoTiling(t)
	pc, err := CompilePatternConstraints(tt)
	if err != nil {
		t.Fatalf("CompilePatternConstraints: %v", err)
	}
	m, patterns, err := pc.MinSlots(8)
	if err != nil {
		t.Fatalf("MinSlots: %v", err)
	}
	// Theorem 2 promises |N1| = 2 slots; the per-class optimum cannot
	// beat the lower bound (the domino is a 2-clique).
	if m != 2 {
		t.Errorf("per-class optimum = %d, want 2", m)
	}
	ps, err := NewPerClassSchedule(tt, m, patterns)
	if err != nil {
		t.Fatalf("NewPerClassSchedule: %v", err)
	}
	if err := VerifyCollisionFree(ps, NewD1(tt), lattice.CenteredWindow(2, 5)); err != nil {
		t.Errorf("per-class schedule collides: %v", err)
	}
}

func TestTheorem2UpperBoundsPerClass(t *testing.T) {
	// The Theorem 2 construction is itself a per-class assignment, so
	// the per-class optimum never exceeds |∪N_k|.
	s4 := prototile.MustTetromino("S")
	z4 := prototile.MustTetromino("Z")
	sols, err := tiling.SolveTorus([]int{4, 4}, []*prototile.Tile{s4, z4},
		tiling.SolveOptions{MaxSolutions: 6})
	if err != nil || len(sols) == 0 {
		t.Fatalf("SolveTorus: %v", err)
	}
	for _, sol := range sols {
		th2, err := FromTorusTiling(sol)
		if err != nil {
			t.Fatalf("FromTorusTiling: %v", err)
		}
		if err := VerifyCollisionFree(th2, th2.Deployment(), lattice.CenteredWindow(2, 6)); err != nil {
			t.Errorf("Theorem 2 schedule collides on %v: %v", sol.TileCounts(), err)
			continue
		}
		pc, err := CompilePatternConstraints(sol)
		if err != nil {
			t.Fatalf("CompilePatternConstraints: %v", err)
		}
		m, _, err := pc.MinSlots(th2.Slots())
		if err != nil {
			t.Fatalf("MinSlots: %v", err)
		}
		if m > th2.Slots() {
			t.Errorf("per-class optimum %d exceeds Theorem 2 slots %d", m, th2.Slots())
		}
		if m < 4 {
			t.Errorf("per-class optimum %d below the 4-clique bound", m)
		}
	}
}

func TestPerClassScheduleValidation(t *testing.T) {
	tt := respectableDominoTiling(t)
	if _, err := NewPerClassSchedule(tt, 2, [][]int{{0, 1}}); err == nil {
		t.Error("wrong pattern count accepted")
	}
	if _, err := NewPerClassSchedule(tt, 2, [][]int{{0}, {0}}); err == nil {
		t.Error("short pattern accepted")
	}
	if _, err := NewPerClassSchedule(tt, 2, [][]int{{0, 5}, {0}}); err == nil {
		t.Error("out-of-range slot accepted")
	}
	if _, err := NewPerClassSchedule(tt, 2, [][]int{{1, 1}, {0}}); err == nil {
		t.Error("repeated slot within a tile accepted")
	}
	ps, err := NewPerClassSchedule(tt, 2, [][]int{{0, 1}, {0}})
	if err != nil {
		t.Fatalf("valid per-class schedule rejected: %v", err)
	}
	if ps.Slots() != 2 {
		t.Errorf("Slots = %d", ps.Slots())
	}
}
